module mssr

go 1.22
