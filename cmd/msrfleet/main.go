// Command msrfleet is the fleet coordinator: it shards msrd simulation
// jobs across a ring of worker daemons by content-addressed rendezvous
// hashing and serves the same /v1 API a single daemon does, so existing
// clients (msrbench -remote, internal/client) point at a fleet
// unchanged (see internal/fleet).
//
// Usage:
//
//	msrfleet -workers http://10.0.0.1:8371,http://10.0.0.2:8371
//	msrfleet -addr :8370                  # workers join via msrd -register
//	msrfleet -chunk 8 -max-attempts 6 -health-interval 2s
//
// Scrape /metrics for the fleet-wide exposition (coordinator msrfleet_*
// series plus every worker's msrd_* series under worker="addr" labels);
// GET /fleet/v1/workers for ring membership; stop with SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mssr/internal/cli"
	"mssr/internal/dash"
	"mssr/internal/fleet"
)

func main() {
	var (
		addr           = flag.String("addr", ":8370", "listen address")
		workers        = flag.String("workers", "", "comma-separated worker addresses (more can join via msrd -register)")
		chunk          = flag.Int("chunk", 16, "specs dispatched to a worker as one sub-job")
		queue          = flag.Int("queue", 4096, "admitted-and-unresolved spec bound; submissions beyond it get 429")
		maxAttempts    = flag.Int("max-attempts", 4, "dispatch attempts per spec before it completes with an error")
		retryBackoff   = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay before re-dispatching after a worker failure")
		healthInterval = flag.Duration("health-interval", time.Second, "worker liveness probe period")
		healthFailures = flag.Int("health-failures", 2, "consecutive probe failures that demote a worker")
		ready          = flag.Int("ready-threshold", 0, "pending specs that flip /readyz to saturated (0 = queue limit)")
		dashboard      = flag.Bool("dashboard", false, "serve the live telemetry dashboard at /dashboard")
		drain          = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline")
		logLevel       = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off")
		logFormat      = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	logger, err := cli.BuildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrfleet:", err)
		os.Exit(2)
	}

	var ring []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			ring = append(ring, w)
		}
	}

	co := fleet.New(fleet.Config{
		Workers:        ring,
		ChunkSize:      *chunk,
		QueueLimit:     *queue,
		MaxAttempts:    *maxAttempts,
		RetryBackoff:   *retryBackoff,
		HealthInterval: *healthInterval,
		HealthFailures: *healthFailures,
		ReadyThreshold: *ready,
		Logger:         logger,
	})
	var handler http.Handler = co
	if *dashboard {
		mux := http.NewServeMux()
		mux.Handle("/dashboard", dash.Handler())
		mux.Handle("/", co)
		handler = mux
		log.Printf("msrfleet: dashboard enabled at /dashboard")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("msrfleet: draining (deadline %s)", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := co.Shutdown(ctx); err != nil {
			log.Printf("msrfleet: drain deadline hit: %v", err)
		}
		_ = httpSrv.Shutdown(context.Background())
	}()

	log.Printf("msrfleet: serving on %s (%d static workers, chunk %d, queue %d)", *addr, len(ring), *chunk, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("msrfleet: %v", err)
	}
}
