// Command msrtail is a headless subscriber for the live event bus: it
// dials an msrd daemon's or msrfleet coordinator's /v1/ws endpoint,
// writes every frame as one NDJSON line (deterministic bus encoding),
// and optionally asserts per-job lifecycle ordering — the harness
// scripts use it to capture and validate the event stream of a sweep
// without a browser.
//
// Usage:
//
//	msrtail -addr 127.0.0.1:8371                     # firehose to stdout
//	msrtail -addr 127.0.0.1:8370 -job f1             # one job only
//	msrtail -addr coord:8370 -out events.ndjson -assert-order -jobs 2
//
// With -jobs N it exits after N jobs finish; otherwise it runs until
// the stream closes or SIGINT/SIGTERM. With -assert-order it verifies
// every job's events arrive queued -> start -> done/failed and that
// hub sequence numbers are monotonic, exiting 1 on violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mssr/internal/client"
	"mssr/internal/events"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8371", "daemon or coordinator address")
		job         = flag.String("job", "", "filter to one job id (empty = firehose)")
		out         = flag.String("out", "", "write NDJSON here (empty = stdout)")
		assertOrder = flag.Bool("assert-order", false, "verify queued -> start -> done per job and monotonic seq")
		jobLimit    = flag.Int("jobs", 0, "exit after this many jobs finish (0 = run until the stream closes)")
		timeout     = flag.Duration("timeout", 0, "overall deadline (0 = none)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrtail:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()

	// Lifecycle stages per job, for -assert-order: queued(1) ->
	// started(2) -> finished(3). Telemetry frames (interval, window,
	// spec_*) do not advance the stage.
	const (
		stQueued   = 1
		stStarted  = 2
		stFinished = 3
	)
	stage := make(map[string]int)
	var violations []string
	var lastSeq uint64
	finished := 0

	cl := client.New(*addr)
	var buf []byte
	err := cl.Events(ctx, *job, func(ev events.Event) error {
		buf = ev.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
		if *assertOrder {
			if ev.Seq <= lastSeq {
				violations = append(violations, fmt.Sprintf("seq %d after %d (type %s)", ev.Seq, lastSeq, ev.Type))
			}
			lastSeq = ev.Seq
			switch ev.Type {
			case events.TypeJobQueued:
				if stage[ev.Job] != 0 {
					violations = append(violations, fmt.Sprintf("job %s queued twice", ev.Job))
				}
				stage[ev.Job] = stQueued
			case events.TypeJobStart:
				if stage[ev.Job] != stQueued {
					violations = append(violations, fmt.Sprintf("job %s started from stage %d", ev.Job, stage[ev.Job]))
				}
				stage[ev.Job] = stStarted
			case events.TypeJobDone, events.TypeJobFailed:
				if stage[ev.Job] != stStarted {
					violations = append(violations, fmt.Sprintf("job %s finished from stage %d", ev.Job, stage[ev.Job]))
				}
				stage[ev.Job] = stFinished
			}
		}
		if ev.Type == events.TypeJobDone || ev.Type == events.TypeJobFailed {
			finished++
			if *jobLimit > 0 && finished >= *jobLimit {
				return client.ErrStopEvents
			}
		}
		return nil
	})
	// Cancellation (signal or deadline after capturing what we wanted) is
	// a normal way to stop tailing, not a failure.
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "msrtail:", err)
		os.Exit(2)
	}
	if ctx.Err() == context.DeadlineExceeded && *jobLimit > 0 && finished < *jobLimit {
		fmt.Fprintf(os.Stderr, "msrtail: deadline hit with %d/%d jobs finished\n", finished, *jobLimit)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "msrtail: order violation:", v)
		}
		os.Exit(1)
	}
	if *assertOrder {
		fmt.Fprintf(os.Stderr, "msrtail: order ok (%d jobs finished, seq through %d)\n", finished, lastSeq)
	}
}
