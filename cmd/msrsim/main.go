// Command msrsim runs one workload on the out-of-order core under a chosen
// squash-reuse engine and prints the headline statistics.
//
// Usage:
//
//	msrsim -workload bfs -engine rgid -streams 4 -entries 64
//	msrsim -workload nested-mispred -engine ri -sets 64 -ways 4
//	msrsim -list
//	msrsim -asm prog.s            # run an assembly file instead
package main

import (
	"flag"
	"fmt"
	"os"

	"mssr/internal/asm"
	"mssr/internal/core"
	"mssr/internal/emu"
	"mssr/internal/isa"
	"mssr/internal/reuse"
	"mssr/internal/stats"
	"mssr/internal/trace"
	"mssr/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads and exit")
		workload = flag.String("workload", "nested-mispred", "workload name (see -list)")
		asmFile  = flag.String("asm", "", "run an assembly file instead of a named workload")
		scale    = flag.Int("scale", 1, "workload scale factor")
		engine   = flag.String("engine", "rgid", "reuse engine: none, rgid, ri")
		streams  = flag.Int("streams", 4, "rgid: squashed streams tracked (N)")
		entries  = flag.Int("entries", 64, "rgid: squash log entries per stream (P)")
		sets     = flag.Int("sets", 64, "ri: reuse table sets")
		ways     = flag.Int("ways", 4, "ri: reuse table ways")
		loadPol  = flag.String("loads", "verify", "reused-load policy: verify, bloom, none")
		check    = flag.Bool("check", false, "run the lockstep functional checker")
		verbose  = flag.Bool("v", false, "print the full counter set")
		traceN   = flag.Int("trace", 0, "print a pipeline diagram of the last N instructions")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-16s %-9s %s\n", w.Name, w.Suite, w.Description)
		}
		return
	}

	prog, err := loadProgram(*asmFile, *workload, *scale)
	if err != nil {
		fatal(err)
	}

	cfg, err := buildConfig(*engine, *streams, *entries, *sets, *ways, *loadPol)
	if err != nil {
		fatal(err)
	}
	cfg.DebugCheck = *check
	var pipe *trace.Pipeline
	if *traceN > 0 {
		pipe = trace.NewPipeline(*traceN)
		cfg.Tracer = pipe
	}

	c := core.New(prog, cfg)
	if err := c.Run(); err != nil {
		fatal(err)
	}
	st := c.Stats
	fmt.Printf("%s on %s (%s)\n", prog.Name, cfg.Reuse, c.EngineName())
	fmt.Printf("  %s\n", st)
	if *verbose {
		printVerbose(st)
	}
	if pipe != nil {
		fmt.Printf("pipeline diagram (last %d instructions):\n%s", *traceN, pipe.Render(*traceN))
	}

	// Cross-check the final state against the functional emulator.
	want, err := emu.RunProgram(prog, 1<<40)
	if err != nil {
		fatal(fmt.Errorf("emulator: %w", err))
	}
	if got := c.Result(); got != want {
		fatal(fmt.Errorf("ARCHITECTURAL MISMATCH:\ncore: %+v\nemu:  %+v", got, want))
	}
	fmt.Println("  architectural state verified against the functional emulator")
}

func loadProgram(asmFile, workload string, scale int) (*isa.Program, error) {
	if asmFile != "" {
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(asmFile, string(src))
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	return w.BuildScaled(scale), nil
}

func buildConfig(engine string, streams, entries, sets, ways int, loadPol string) (core.Config, error) {
	var lp reuse.LoadPolicy
	switch loadPol {
	case "verify":
		lp = reuse.LoadVerify
	case "bloom":
		lp = reuse.LoadBloom
	case "none":
		lp = reuse.LoadNoReuse
	default:
		return core.Config{}, fmt.Errorf("unknown load policy %q", loadPol)
	}
	switch engine {
	case "none":
		return core.DefaultConfig(), nil
	case "rgid":
		cfg := core.MultiStreamConfig(streams, entries)
		cfg.MS.LoadPolicy = lp
		return cfg, nil
	case "ri":
		cfg := core.RIConfigOf(sets, ways)
		cfg.RI.LoadPolicy = lp
		return cfg, nil
	case "dir-value", "dir":
		cfg := core.DIRConfigOf(sets, ways, reuse.DIRValue)
		cfg.DIR.LoadPolicy = lp
		return cfg, nil
	case "dir-name":
		cfg := core.DIRConfigOf(sets, ways, reuse.DIRName)
		cfg.DIR.LoadPolicy = lp
		return cfg, nil
	}
	return core.Config{}, fmt.Errorf("unknown engine %q (none, rgid, ri, dir-value, dir-name)", engine)
}

func printVerbose(st *stats.Stats) {
	fmt.Printf("  fetched=%d flushes=%d branches=%d mispredicts=%d (%.2f%%) jumps-mispredicted=%d MPKI=%.2f\n",
		st.Fetched, st.Flushes, st.Branches, st.BranchMispredicts, 100*st.MispredictRate(), st.JumpMispredicts, st.MPKI())
	fmt.Printf("  streams=%d reconvergences=%d (simple=%d sw=%d hw=%d) timeouts=%d divergences=%d\n",
		st.SquashedStreams, st.Reconvergences,
		st.ReconvByType[stats.ReconvSimple], st.ReconvByType[stats.ReconvSoftware], st.ReconvByType[stats.ReconvHardware],
		st.StreamTimeouts, st.Divergences)
	fmt.Printf("  reuse: tests=%d hits=%d loads=%d failRGID=%d failNotDone=%d failKind=%d bloomRejects=%d\n",
		st.ReuseTests, st.ReuseHits, st.ReusedLoads, st.ReuseFailRGID, st.ReuseFailNotDone, st.ReuseFailKind, st.BloomFilterRejects)
	fmt.Printf("  memory: verifications=%d violations=%d  rgidResets=%d  riHits=%d riInvalidates=%d\n",
		st.LoadVerifications, st.MemOrderViolations, st.RGIDResets, st.RIHits, st.RIInvalidates)
	fmt.Printf("  distance histogram: %v\n", st.ReconvDistance)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msrsim:", err)
	os.Exit(1)
}
