// Command msrsim runs one workload on the out-of-order core under a chosen
// squash-reuse engine and prints the headline statistics.
//
// Usage:
//
//	msrsim -workload bfs -engine rgid -streams 4 -entries 64
//	msrsim -workload nested-mispred -engine ri -sets 64 -ways 4
//	msrsim -list
//	msrsim -asm prog.s            # run an assembly file instead
//	msrsim -workload bfs -stats-interval 4096 -stats-out bfs.ndjson
//	msrsim -workload bfs -trace-out events.log
//	msrsim -workload mcf -ff 4505 -window 287 -periods 48 -warm
//	                              # multi-fidelity: functional fast-forward
//	                              # with cache/predictor warming, sampled
//	                              # detailed windows, extrapolated IPC
//	msrsim -workload mcf -ff 4505 -window 287 -periods 48 -phase kmeans
//	                              # phase-aware sampling: one representative
//	                              # window per k-means program phase
//	msrsim -workload mcf -ff 4505 -window 287 -periods 48 -max-err 0.02
//	                              # adaptive stopping at 2% relative
//	                              # standard error
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mssr/internal/asm"
	"mssr/internal/obs"
	"mssr/internal/profiles"
	"mssr/internal/sim"
	"mssr/internal/stats"
	"mssr/internal/trace"
	"mssr/internal/workloads"
)

func main() { os.Exit(run()) }

// run returns the exit code so the deferred profile writers fire on
// every path (os.Exit would skip them).
func run() int {
	var (
		list     = flag.Bool("list", false, "list available workloads and exit")
		workload = flag.String("workload", "nested-mispred", "workload name (see -list)")
		asmFile  = flag.String("asm", "", "run an assembly file instead of a named workload")
		scale    = flag.Int("scale", 1, "workload scale factor")
		engine   = flag.String("engine", "rgid", "reuse engine: none, rgid, ri, dir-value, dir-name")
		streams  = flag.Int("streams", 4, "rgid: squashed streams tracked (N)")
		entries  = flag.Int("entries", 64, "rgid: squash log entries per stream (P)")
		sets     = flag.Int("sets", 64, "ri: reuse table sets")
		ways     = flag.Int("ways", 4, "ri: reuse table ways")
		loadPol  = flag.String("loads", "verify", "reused-load policy: verify, bloom, none")
		check    = flag.Bool("check", false, "run the lockstep functional checker")
		ff       = flag.Uint64("ff", 0, "fast-forward this many instructions functionally before each detailed window (0 = full detail)")
		window   = flag.Uint64("window", 0, "detailed-window length in instructions (0 with -ff = run detailed to completion after one skip)")
		periods  = flag.Int("periods", 1, "number of {fast-forward, detailed window} sample periods")
		warm     = flag.Bool("warm", false, "warm the caches and branch predictor during fast-forward")
		phase    = flag.String("phase", "uniform", "sample-window placement: uniform, kmeans (one representative window per program phase)")
		maxErr   = flag.Float64("max-err", 0, "stop sampling once the IPC estimate's relative standard error reaches this bound (0 = run every period)")
		noCkpt   = flag.Bool("no-ckpt", false, "disable the checkpoint store: re-emulate every functional prefix")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this wall time (0 = none)")
		verbose  = flag.Bool("v", false, "print the full counter set")
		traceN   = flag.Int("trace", 0, "print a pipeline diagram of the last N instructions")
		traceOut = flag.String("trace-out", "", "stream the full pipeline event log to this file (- = stdout)")
		statsIv  = flag.Uint64("stats-interval", 0, "sample interval telemetry every N cycles (0 = off; implied 4096 by -stats-out)")
		statsWin = flag.Int("stats-window", 0, "retain at most this many intervals (0 = default)")
		statsOut = flag.String("stats-out", "", "write interval telemetry to this file: NDJSON, or CSV when the name ends in .csv (- = stdout)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-16s %-9s %s\n", w.Name, w.Suite, w.Description)
		}
		return 0
	}

	stopProfiles, err := profiles.Start(*cpuProf, *memProf)
	if err != nil {
		return fatal(err)
	}
	defer stopProfiles()

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return fatal(err)
	}
	lp, err := sim.ParseLoadPolicy(*loadPol)
	if err != nil {
		return fatal(err)
	}
	pm, err := sim.ParsePhaseMode(*phase)
	if err != nil {
		return fatal(err)
	}
	spec := sim.Spec{
		Workload: *workload,
		Scale:    *scale,
		Engine:   eng,
		Streams:  *streams,
		Entries:  *entries,
		Sets:     *sets,
		Ways:     *ways,
		Loads:    lp,
		Check:    *check,
		Timeout:  *timeout,
		// Cross-check the final state against the functional emulator.
		VerifyArch: true,

		FastForward:    *ff,
		DetailedWindow: *window,
		SamplePeriods:  *periods,
		Warm:           *warm,
		PhaseSelect:    pm,
		MaxErr:         *maxErr,
		NoCheckpoint:   *noCkpt,
	}
	if *asmFile != "" {
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			return fatal(err)
		}
		prog, err := asm.Assemble(*asmFile, string(src))
		if err != nil {
			return fatal(err)
		}
		spec.Workload = ""
		spec.Program = prog
	}
	if *statsOut != "" && *statsIv == 0 {
		*statsIv = 4096
	}
	spec.SampleInterval = *statsIv
	spec.SampleWindow = *statsWin

	var tracers trace.Multi
	var pipe *trace.Pipeline
	if *traceN > 0 {
		pipe = trace.NewPipeline(*traceN)
		tracers = append(tracers, pipe)
	}
	if *traceOut != "" {
		w, closeTrace, err := openOut(*traceOut)
		if err != nil {
			return fatal(err)
		}
		defer func() {
			if err := closeTrace(); err != nil {
				fmt.Fprintln(os.Stderr, "msrsim: closing trace log:", err)
			}
		}()
		tracers = append(tracers, &trace.Writer{W: w})
	}
	if len(tracers) > 0 {
		spec.Tracer = tracers
	}

	res, err := sim.Run(context.Background(), spec)
	if err != nil {
		return fatal(err)
	}
	st := res.Stats
	fmt.Printf("%s on %s (%s)\n", res.Program, spec.Engine, res.EngineName)
	fmt.Printf("  %s (%.1fms wall, %.2f MIPS)\n", st, float64(res.Wall)/float64(time.Millisecond), res.MIPS)
	if res.FastForwarded > 0 || res.Extrapolated {
		fmt.Printf("  multi-fidelity: %d detailed windows, %d retired in detail, %d fast-forwarded, %d total\n",
			res.Windows, st.Retired, res.FastForwarded, res.TotalRetired)
		if res.ExtrapolatedIPC > 0 {
			fmt.Printf("  extrapolated IPC %.4f (relative standard error %.2f%%)\n",
				res.ExtrapolatedIPC, 100*res.IPCErrorEst)
		}
		if res.CkptHits > 0 || res.CkptMisses > 0 {
			fmt.Printf("  checkpoints: %d restored, %d missed, %d functional instructions executed\n",
				res.CkptHits, res.CkptMisses, res.FFExecuted)
		}
	}
	if *statsOut != "" {
		if err := writeIntervals(*statsOut, res.Intervals); err != nil {
			return fatal(err)
		}
		fmt.Printf("  %d intervals (%d dropped) -> %s\n", len(res.Intervals), res.IntervalsDropped, *statsOut)
	}
	if *verbose {
		printVerbose(st)
	}
	if pipe != nil {
		fmt.Printf("pipeline diagram (last %d instructions):\n%s", *traceN, pipe.Render(*traceN))
	}
	if res.Extrapolated {
		// Sampled mode has no end-of-program core state to cross-check;
		// the recorded final state is the emulator's.
		fmt.Println("  final architectural state recorded from the functional emulator (sampled mode)")
	} else {
		fmt.Println("  architectural state verified against the functional emulator")
	}
	return 0
}

func printVerbose(st *stats.Stats) {
	fmt.Printf("  fetched=%d flushes=%d branches=%d mispredicts=%d (%.2f%%) jumps-mispredicted=%d MPKI=%.2f\n",
		st.Fetched, st.Flushes, st.Branches, st.BranchMispredicts, 100*st.MispredictRate(), st.JumpMispredicts, st.MPKI())
	fmt.Printf("  streams=%d reconvergences=%d (simple=%d sw=%d hw=%d) timeouts=%d divergences=%d\n",
		st.SquashedStreams, st.Reconvergences,
		st.ReconvByType[stats.ReconvSimple], st.ReconvByType[stats.ReconvSoftware], st.ReconvByType[stats.ReconvHardware],
		st.StreamTimeouts, st.Divergences)
	fmt.Printf("  reuse: tests=%d hits=%d loads=%d failRGID=%d failNotDone=%d failKind=%d bloomRejects=%d\n",
		st.ReuseTests, st.ReuseHits, st.ReusedLoads, st.ReuseFailRGID, st.ReuseFailNotDone, st.ReuseFailKind, st.BloomFilterRejects)
	fmt.Printf("  memory: verifications=%d violations=%d  rgidResets=%d  riHits=%d riInvalidates=%d\n",
		st.LoadVerifications, st.MemOrderViolations, st.RGIDResets, st.RIHits, st.RIInvalidates)
	fmt.Printf("  distance histogram: %v\n", st.ReconvDistance)
}

// openOut opens path for buffered writing; "-" means stdout. The
// returned close function flushes the buffer.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		bw := bufio.NewWriter(os.Stdout)
		return bw, bw.Flush, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	return bw, func() error {
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// writeIntervals writes the run's interval telemetry to path: CSV when
// the name ends in .csv, NDJSON otherwise.
func writeIntervals(path string, ivs []obs.Interval) error {
	w, closeOut, err := openOut(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = obs.WriteCSV(w, ivs)
	} else {
		err = obs.WriteNDJSON(w, ivs)
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "msrsim:", err)
	return 1
}
