// Command msrd is the simulation daemon: it serves the internal/sim
// layer over HTTP with a content-addressed result cache, in-flight
// dedup, bounded admission and Prometheus metrics (see internal/server).
//
// Usage:
//
//	msrd                            # serve on :8371
//	msrd -addr 127.0.0.1:9000 -jobs 8 -queue 128 -cache 8192
//	msrd -timeout 2m -job-timeout 30m -drain 1m
//	msrd -store /var/lib/msrd -store-max-mb 2048   # persistent result store, warm restarts
//	msrd -ckpt /var/lib/msrd-ckpt                  # persistent checkpoint store: multi-fidelity
//	                                               # sweeps skip their functional fast-forward
//	msrd -addr 127.0.0.1:9001 -register http://coord:8370   # join an msrfleet ring
//	msrd -selfbench                 # in-process cold-vs-cache benchmark, JSON on stdout
//
// Submit work with `msrbench -remote host:port` or POST /v1/jobs
// directly; scrape /metrics; stop with SIGINT/SIGTERM — the daemon
// drains running simulations for up to -drain before cancelling them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mssr/internal/api"
	"mssr/internal/ckpt"
	"mssr/internal/cli"
	"mssr/internal/client"
	"mssr/internal/dash"
	"mssr/internal/server"
	"mssr/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8371", "listen address")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "max concurrently running simulations per job")
		workers    = flag.Int("workers", 1, "jobs executing concurrently")
		queue      = flag.Int("queue", 64, "admission queue bound; submissions beyond it get 429")
		cacheSize  = flag.Int("cache", 4096, "result cache entries (negative disables caching)")
		timeout    = flag.Duration("timeout", 0, "per-simulation wall-time limit (0 = none)")
		jobTimeout = flag.Duration("job-timeout", 0, "whole-job wall-time limit (0 = none)")
		batch      = flag.Bool("batch", true, "group a job's same-workload specs into lockstep batch runs over a shared instruction stream")
		retryAfter = flag.Duration("retry-after", time.Second, "backoff hint sent with 429 responses")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline before cancelling running simulations")
		storeDir   = flag.String("store", "", "persistent result store directory (empty disables; survives restarts warm)")
		storeMaxMB = flag.Int64("store-max-mb", 1024, "result store size bound in MiB before LRU eviction")
		ckptDir    = flag.String("ckpt", "", "persistent checkpoint store directory (empty keeps checkpoints in memory only)")
		ckptMaxMB  = flag.Int64("ckpt-max-mb", 1024, "checkpoint store disk size bound in MiB before LRU eviction")
		register   = flag.String("register", "", "msrfleet coordinator URL to register with (empty disables)")
		advertise  = flag.String("advertise", "", "address workers advertise to the coordinator (default derives from -addr; required when -addr has no host)")
		selfbench  = flag.Bool("selfbench", false, "serve in-process, benchmark cold vs cached sweeps plus a saturating burst, print JSON and exit")
		dashboard  = flag.Bool("dashboard", false, "serve the live telemetry dashboard at /dashboard")
		withPprof  = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	logger, err := cli.BuildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrd:", err)
		os.Exit(2)
	}

	cfg := server.Config{
		SimJobs:        *jobs,
		Workers:        *workers,
		QueueLimit:     *queue,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		JobTimeout:     *jobTimeout,
		Batch:          *batch,
		RetryAfter:     *retryAfter,
		Logger:         logger,
	}

	if *selfbench {
		if err := runSelfbench(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "msrd:", err)
			os.Exit(1)
		}
		return
	}

	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, *storeMaxMB<<20, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrd: opening result store:", err)
			os.Exit(1)
		}
		cfg.Store = st
		log.Printf("msrd: result store %s (%d results, %.1f MiB, bound %d MiB)",
			*storeDir, st.Len(), float64(st.Size())/(1<<20), *storeMaxMB)
	}

	var ck *ckpt.Store
	if *ckptDir != "" {
		ck, err = ckpt.Open(*ckptDir, 0, *ckptMaxMB<<20, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrd: opening checkpoint store:", err)
			os.Exit(1)
		}
		cfg.Checkpoints = ck
		log.Printf("msrd: checkpoint store %s (%d checkpoints, %.1f MiB on disk, bound %d MiB)",
			*ckptDir, ck.DiskLen(), float64(ck.DiskSize())/(1<<20), *ckptMaxMB)
	}

	srv := server.New(cfg)
	var handler http.Handler = srv
	if *dashboard {
		// Same pattern as pprof below: the page exists only when asked
		// for, mounted on a wrapping mux in front of the API.
		mux := http.NewServeMux()
		mux.Handle("/dashboard", dash.Handler())
		mux.Handle("/", handler)
		handler = mux
		log.Printf("msrd: dashboard enabled at /dashboard")
	}
	if *withPprof {
		// Mount the pprof handlers explicitly on our own mux rather than
		// importing the package for its DefaultServeMux side effect: the
		// endpoints exist only when asked for, and only here.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("msrd: pprof endpoints enabled under /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("msrd: draining (deadline %s)", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("msrd: drain deadline hit, running simulations cancelled: %v", err)
		}
		_ = httpSrv.Shutdown(context.Background())
	}()

	if *register != "" {
		adv, err := advertiseAddr(*advertise, *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrd:", err)
			os.Exit(2)
		}
		go registerLoop(*register, adv)
	}

	log.Printf("msrd: serving on %s (sim jobs %d, queue %d, cache %d)", *addr, *jobs, *queue, *cacheSize)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("msrd: %v", err)
	}
	if st != nil {
		// The server's drain already flushed the write-behind queue;
		// Close joins the writer so nothing is torn mid-rename.
		st.Close()
	}
	if ck != nil {
		ck.Close()
	}
}

// advertiseAddr resolves the address this daemon announces to the
// coordinator: the explicit -advertise, else -addr when it names a host.
func advertiseAddr(advertise, addr string) (string, error) {
	if advertise != "" {
		return advertise, nil
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" || host == "0.0.0.0" || host == "::" {
		return "", fmt.Errorf("-register needs -advertise: listen address %q has no dialable host", addr)
	}
	return addr, nil
}

// registerLoop announces this worker to the fleet coordinator and keeps
// re-announcing so a restarted coordinator rediscovers the worker
// (registration is idempotent on the coordinator side).
func registerLoop(coordinator, advertise string) {
	const (
		retryEvery      = 2 * time.Second
		reannounceEvery = 30 * time.Second
	)
	cl := client.New(coordinator)
	announced, warned := false, false
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := cl.RegisterWorker(ctx, advertise)
		cancel()
		if err != nil {
			// Log the first failure of each outage, not every retry.
			if !warned {
				log.Printf("msrd: fleet registration with %s failing (retrying): %v", coordinator, err)
				warned = true
			}
			announced = false
			time.Sleep(retryEvery)
			continue
		}
		warned = false
		if !announced {
			log.Printf("msrd: registered with fleet coordinator %s as %s", coordinator, advertise)
			announced = true
		}
		time.Sleep(reannounceEvery)
	}
}

// selfbenchReport is the JSON the -selfbench mode emits; CI archives it
// as BENCH_PR2.json to track the daemon's performance trajectory.
type selfbenchReport struct {
	Specs          int     `json:"specs"`
	ColdMS         float64 `json:"cold_ms"`
	WarmMS         float64 `json:"warm_ms"`
	Speedup        float64 `json:"speedup"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	ColdJobsPerSec float64 `json:"cold_jobs_per_sec"`
	WarmJobsPerSec float64 `json:"warm_jobs_per_sec"`
	BurstSubmitted int     `json:"burst_submitted"`
	BurstShed      int     `json:"burst_shed"`
}

// runSelfbench starts the daemon on a loopback port, runs one sweep
// cold, repeats it against the warm cache, then fires a saturating
// burst to demonstrate 429 load shedding.
func runSelfbench(cfg server.Config) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// A small queue makes the burst's load shedding visible.
	cfg.QueueLimit = 4
	cfg.RetryAfter = 50 * time.Millisecond
	srv := server.New(cfg)
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	c := client.New(ln.Addr().String())
	c.PollInterval = 2 * time.Millisecond
	ctx := context.Background()

	var specs []api.Spec
	for _, wl := range []string{"nested-mispred", "linear-mispred", "bfs", "cc", "astar"} {
		specs = append(specs,
			api.Spec{Workload: wl, Scale: 0},
			api.Spec{Workload: wl, Scale: 0, Engine: "rgid", Streams: 4, Entries: 64},
			api.Spec{Workload: wl, Scale: 0, Engine: "ri", Sets: 64, Ways: 4},
		)
	}

	sweep := func() (time.Duration, *api.JobStatus, error) {
		start := time.Now()
		sub, err := c.Submit(ctx, specs)
		if err != nil {
			return 0, nil, err
		}
		st, err := c.Wait(ctx, sub.JobID)
		if err != nil {
			return 0, nil, err
		}
		return time.Since(start), st, nil
	}

	cold, _, err := sweep()
	if err != nil {
		return fmt.Errorf("cold sweep: %w", err)
	}
	warm, warmStatus, err := sweep()
	if err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}

	// Saturating burst: far more simultaneous submissions than
	// worker+queue slots, each an uncached spec so nothing resolves
	// instantly, without client-side retries — the overflow is shed
	// with 429 instead of queueing unboundedly.
	burst := cfg.QueueLimit * 4
	noRetry := client.New(ln.Addr().String())
	noRetry.SubmitRetries = -1
	noRetry.PollInterval = 2 * time.Millisecond
	type submitResult struct {
		id  string
		err error
	}
	outcomes := make(chan submitResult, burst)
	for i := 0; i < burst; i++ {
		i := i
		go func() {
			sub, err := noRetry.Submit(ctx, []api.Spec{{
				Workload: "pr", Scale: 0, Engine: "rgid",
				Streams: 1 + i%8, Entries: 16 * (1 + i%16),
			}})
			if err != nil {
				outcomes <- submitResult{err: err}
				return
			}
			outcomes <- submitResult{id: sub.JobID}
		}()
	}
	shed := 0
	for i := 0; i < burst; i++ {
		o := <-outcomes
		if o.err != nil {
			shed++
			continue
		}
		if _, err := noRetry.Wait(ctx, o.id); err != nil {
			return fmt.Errorf("draining burst job %s: %w", o.id, err)
		}
	}

	rep := selfbenchReport{
		Specs:          len(specs),
		ColdMS:         float64(cold.Microseconds()) / 1e3,
		WarmMS:         float64(warm.Microseconds()) / 1e3,
		CacheHitRate:   float64(warmStatus.CacheHits) / float64(len(specs)),
		BurstSubmitted: burst,
		BurstShed:      shed,
	}
	if warm > 0 {
		rep.Speedup = float64(cold) / float64(warm)
		rep.WarmJobsPerSec = float64(time.Second) / float64(warm)
	}
	if cold > 0 {
		rep.ColdJobsPerSec = float64(time.Second) / float64(cold)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
