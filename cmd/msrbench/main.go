// Command msrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	msrbench                      # run everything at standard scale
//	msrbench -exp table1,fig10    # run a subset
//	msrbench -scale 2             # larger workloads
//	msrbench -jobs 4 -progress    # cap parallelism, report per-run progress
//	msrbench -json results.jsonl  # machine-readable per-run result stream
//	msrbench -remote :8371        # submit every sweep to an msrd daemon;
//	                              # repeated regenerations are served from
//	                              # its content-addressed result cache
//	msrbench -remote :8370        # the same flag pointed at an msrfleet
//	                              # coordinator shards the sweeps across
//	                              # the whole worker ring transparently
//	msrbench -exp perf            # simulator-throughput benchmark; writes
//	                              # BENCH_PR6.json (see -perf-out); use
//	                              # -perf-min-mcf to fail on regression
//	msrbench -batch=false         # disable lockstep batch grouping of
//	                              # same-workload specs within a sweep
//	msrbench -exp phases -stats-interval 4096 -stats-out phases.ndjson
//	                              # phase-behaviour table plus the raw
//	                              # per-interval telemetry stream (CSV when
//	                              # the file name ends in .csv)
//	msrbench -exp fidelity        # multi-fidelity accuracy/throughput
//	                              # benchmark; writes BENCH_PR8.json (see
//	                              # -fidelity-out); -fidelity-max-err and
//	                              # -fidelity-min-speedup gate the result
//	msrbench -exp checkpointed    # checkpoint-warm phase-selected sampling
//	                              # benchmark; writes BENCH_PR10.json (see
//	                              # -ckpt-out); -ckpt-max-err and
//	                              # -ckpt-min-speedup gate the result
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"mssr/internal/client"
	"mssr/internal/events"
	"mssr/internal/experiments"
	"mssr/internal/profiles"
	"mssr/internal/sim"
)

func main() { os.Exit(run()) }

// run is the real main; returning an exit code (instead of calling
// os.Exit inline) lets the deferred profile writers run on every path.
func run() int {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiments: table1,table2,table3,table4,fig3,fig4,fig10,fig11,fig12,baselines,phases,perf,fidelity,checkpointed or all")
		scale    = flag.Int("scale", 1, "workload scale factor")
		asCSV    = flag.Bool("csv", false, "emit table1/fig10 in the artifact rollup CSV format (CFG,BM,CYCLES,diff)")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "max concurrently running simulations")
		progress = flag.Bool("progress", false, "report per-simulation progress on stderr")
		jsonOut  = flag.String("json", "", `append one JSON object per simulation to this file ("-" = stdout)`)
		timeout  = flag.Duration("timeout", 0, "per-simulation wall-time limit (0 = none)")
		remote   = flag.String("remote", "", "msrd daemon or msrfleet coordinator address; sweeps are submitted there instead of simulating locally")
		follow   = flag.Bool("follow", false, "with -remote: tail the service's live event bus on stderr while the sweeps run")
		batch    = flag.Bool("batch", true, "group a sweep's same-workload specs into lockstep batch runs over a shared instruction stream (in-process runs; for -remote see msrd -batch)")
		statsIv  = flag.Uint64("stats-interval", 0, "attach interval telemetry to every sweep, sampled every N cycles (0 = off; implied 4096 by -stats-out)")
		statsOut = flag.String("stats-out", "", `write the per-interval telemetry of every run to this file: NDJSON, or CSV when the name ends in .csv ("-" = stdout)`)
		perfOut  = flag.String("perf-out", "BENCH_PR6.json", "write the perf experiment's JSON document here")
		perfMin  = flag.Float64("perf-min-mcf", 0, "fail the perf experiment if mcf's pooled MIPS falls below this floor (0 = no check)")
		fidOut   = flag.String("fidelity-out", "BENCH_PR8.json", "write the fidelity experiment's JSON document here")
		fidErr   = flag.Float64("fidelity-max-err", 0, "fail the fidelity experiment if any workload's sampled IPC misses full detail by more than this many percent (0 = no check)")
		fidSpd   = flag.Float64("fidelity-min-speedup", 0, "fail the fidelity experiment if the same-host effective-throughput multiple over full detail falls below this floor (0 = no check)")
		ckptOut  = flag.String("ckpt-out", "BENCH_PR10.json", "write the checkpointed experiment's JSON document here")
		ckptErr  = flag.Float64("ckpt-max-err", 0, "fail the checkpointed experiment if any workload's phase-selected IPC misses full detail by more than this many percent (0 = no check)")
		ckptSpd  = flag.Float64("ckpt-min-speedup", 0, "fail the checkpointed experiment if the checkpoint-warm throughput multiple over the uniform warm baseline falls below this floor (0 = no check)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiles.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrbench:", err)
		return 1
	}
	defer stopProfiles()

	var obs []sim.Observer
	if *progress {
		obs = append(obs, sim.NewProgress(os.Stderr))
	}
	var js *sim.JSONStream
	if *jsonOut != "" {
		w, closeJSON, err := openOut(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrbench:", err)
			return 1
		}
		defer closeJSON()
		js = sim.NewJSONStream(w)
		obs = append(obs, js)
	}
	if *statsOut != "" && *statsIv == 0 {
		*statsIv = 4096
	}
	experiments.SetSampling(*statsIv)
	var ivs *sim.IntervalStream
	if *statsOut != "" {
		w, closeStats, err := openOut(*statsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrbench:", err)
			return 1
		}
		defer closeStats()
		if strings.HasSuffix(*statsOut, ".csv") {
			ivs = sim.NewIntervalCSVStream(w)
		} else {
			ivs = sim.NewIntervalStream(w)
		}
		obs = append(obs, ivs)
	}
	if *remote != "" {
		experiments.SetRunner(&client.Remote{
			Client:   client.New(*remote),
			Observer: sim.Observers(obs...),
		})
		if *follow {
			go followEvents(*remote)
		}
	} else {
		experiments.SetRunner(&sim.Runner{
			Jobs:     *jobs,
			Timeout:  *timeout,
			Observer: sim.Observers(obs...),
			Batching: *batch,
		})
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	// perf, fidelity and checkpointed are host-throughput benchmarks, not
	// paper artifacts, so "all" does not imply them.
	sel := func(name string) bool {
		return (all && name != "perf" && name != "fidelity" && name != "checkpointed") || want[name]
	}

	type experiment struct {
		name string
		run  func() (string, error)
	}
	list := []experiment{
		{"table1", func() (string, error) {
			r, err := experiments.Table1(*scale)
			if err != nil {
				return "", err
			}
			if *asCSV {
				return r.CSV(), nil
			}
			return r.Render(), nil
		}},
		{"table2", func() (string, error) { return experiments.Table2(), nil }},
		{"table3", func() (string, error) { return experiments.Table3(), nil }},
		{"table4", func() (string, error) { return experiments.Table4(), nil }},
		{"fig3", func() (string, error) { r, err := experiments.Figure3(*scale); return render(r, err) }},
		{"fig4", func() (string, error) { r, err := experiments.Figure4(*scale); return render(r, err) }},
		{"fig10", func() (string, error) {
			r, err := experiments.Figure10(*scale)
			if err != nil {
				return "", err
			}
			if *asCSV {
				return r.CSV(), nil
			}
			return r.Render(), nil
		}},
		{"fig11", func() (string, error) { r, err := experiments.Figure11(*scale); return render(r, err) }},
		{"fig12", func() (string, error) { r, err := experiments.Figure12(*scale); return render(r, err) }},
		{"baselines", func() (string, error) { r, err := experiments.Baselines(*scale); return render(r, err) }},
		{"phases", func() (string, error) { r, err := experiments.Phases(*scale); return render(r, err) }},
		{"perf", func() (string, error) {
			r, err := experiments.Perf(*scale)
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(*perfOut, []byte(r.JSON()), 0o644); err != nil {
				return "", err
			}
			out := r.Render() + "wrote " + *perfOut + "\n"
			if *perfMin > 0 {
				if err := r.CheckFloor("mcf", *perfMin); err != nil {
					return out, err
				}
				out += fmt.Sprintf("mcf throughput floor %.3f MIPS: ok\n", *perfMin)
			}
			return out, nil
		}},
		{"fidelity", func() (string, error) {
			r, err := experiments.Fidelity(*scale)
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(*fidOut, []byte(r.JSON()), 0o644); err != nil {
				return "", err
			}
			out := r.Render() + "wrote " + *fidOut + "\n"
			if *fidErr > 0 {
				if err := r.CheckError(*fidErr); err != nil {
					return out, err
				}
				out += fmt.Sprintf("IPC error bound %.2f%%: ok\n", *fidErr)
			}
			if *fidSpd > 0 {
				if err := r.CheckSpeedup(*fidSpd); err != nil {
					return out, err
				}
				out += fmt.Sprintf("effective-throughput floor %.2fx full detail: ok\n", *fidSpd)
			}
			return out, nil
		}},
		{"checkpointed", func() (string, error) {
			r, err := experiments.Checkpointed(*scale)
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(*ckptOut, []byte(r.JSON()), 0o644); err != nil {
				return "", err
			}
			out := r.Render() + "wrote " + *ckptOut + "\n"
			// The warm-path contract (every boundary restored, zero
			// functional re-execution) is structural, so it always gates.
			if err := r.CheckWarmPath(); err != nil {
				return out, err
			}
			out += "warm path: every checkpoint restored, 0 functional instructions re-executed\n"
			if *ckptErr > 0 {
				if err := r.CheckError(*ckptErr); err != nil {
					return out, err
				}
				out += fmt.Sprintf("IPC error bound %.2f%%: ok\n", *ckptErr)
			}
			if *ckptSpd > 0 {
				if err := r.CheckSpeedup(*ckptSpd); err != nil {
					return out, err
				}
				out += fmt.Sprintf("checkpoint-warm floor %.2fx uniform baseline: ok\n", *ckptSpd)
			}
			return out, nil
		}},
	}

	ran := 0
	for _, e := range list {
		if !sel(e.name) {
			continue
		}
		ran++
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "msrbench: %s: %v\n", e.name, err)
			return 1
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "msrbench: no experiment selected by -exp %q\n", *exps)
		return 1
	}
	// A truncated -json or -stats-out stream must not masquerade as a
	// complete one.
	if js != nil {
		if err := js.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "msrbench: result stream incomplete: %v\n", err)
			return 1
		}
	}
	if ivs != nil {
		if err := ivs.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "msrbench: interval stream incomplete: %v\n", err)
			return 1
		}
	}
	return 0
}

// openOut opens path for writing; "-" means stdout (whose close is a
// no-op).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// followEvents tails the remote service's live event bus on stderr for
// the life of the process: one compact line per lifecycle event
// (interval frames are summarized per window, not printed). Best
// effort — a daemon predating /v1/ws just logs one notice.
func followEvents(addr string) {
	cl := client.New(addr)
	err := cl.Events(context.Background(), "", func(ev events.Event) error {
		if ev.Type == events.TypeInterval {
			return nil // too chatty for narration; use msrtail to capture
		}
		line := "msrbench: " + ev.Type
		if ev.Job != "" {
			line += " job=" + ev.Job
		}
		if ev.Key != "" {
			line += " key=" + ev.Key
		}
		if ev.Worker != "" {
			line += " worker=" + ev.Worker
		}
		if ev.Window > 0 {
			line += fmt.Sprintf(" window=%d/%d", ev.Window, ev.Windows)
		}
		if ev.Source != "" {
			line += " source=" + ev.Source
		}
		if ev.WallMS > 0 {
			line += fmt.Sprintf(" wall_ms=%.1f", ev.WallMS)
		}
		if ev.Error != "" {
			line += " error=" + ev.Error
		}
		fmt.Fprintln(os.Stderr, line)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msrbench: -follow event stream unavailable: %v\n", err)
	}
}
