// Package mssr_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md's experiment
// index) plus the ablation studies DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the full experiment per iteration and reports
// the experiment's headline effect sizes as custom metrics (percentages),
// so regressions in either simulation speed or reproduction shape are
// visible from the bench output alone. The rendered tables themselves are
// produced by cmd/msrbench and recorded in EXPERIMENTS.md. All runs go
// through the internal/sim orchestration layer, like every other
// entrypoint.
package mssr_test

import (
	"context"
	"fmt"
	"testing"

	"mssr/internal/core"
	"mssr/internal/experiments"
	"mssr/internal/sim"
	"mssr/internal/stats"
	"mssr/internal/storage"
	"mssr/internal/synth"
	"mssr/internal/workloads"
)

// benchScale keeps bench iterations affordable while exercising the full
// standard workloads.
const benchScale = 1

// BenchmarkTable1 regenerates the microbenchmark comparison (Table 1).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Speedup["nested-mispred"]["rgid-4"], "%nested-rgid4")
		b.ReportMetric(100*r.Speedup["nested-mispred"]["rgid-1"], "%nested-rgid1")
		b.ReportMetric(100*r.Speedup["nested-mispred"]["ri-4w"], "%nested-ri4w")
	}
}

// BenchmarkTable2 evaluates the storage model (Table 2).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bits := storage.Compute(storage.Default()).Total()
		b.ReportMetric(storage.KB(bits), "KB")
	}
}

// BenchmarkTable4 evaluates the synthesis model (Table 4).
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := synth.Reconvergence(4, 64)
		b.ReportMetric(float64(r.LogicLevels), "levels-4x64")
		b.ReportMetric(r.AreaUm2, "um2-4x64")
	}
}

// BenchmarkFigure3 regenerates the RI replacement-frequency study.
func BenchmarkFigure3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Total("nested-mispred", 1)), "repl-1way")
		b.ReportMetric(float64(r.Total("nested-mispred", 4)), "repl-4way")
	}
}

// BenchmarkFigure4 regenerates the reconvergence-type breakdown.
func BenchmarkFigure4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var ms float64
		for _, w := range r.Workloads {
			ms += r.MultiStreamFraction(w)
		}
		b.ReportMetric(100*ms/float64(len(r.Workloads)), "%multi-stream-avg")
	}
}

// BenchmarkFigure10 regenerates the stream-configuration sweep.
func BenchmarkFigure10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Average("4x64", "gap"), "%gap-4x64")
		b.ReportMetric(100*r.Average("4x64", "spec2006"), "%spec06-4x64")
		b.ReportMetric(100*r.Average("1x16", "gap"), "%gap-1x16")
	}
}

// BenchmarkFigure11 regenerates the stream-distance profile.
func BenchmarkFigure11(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var within1, within3 float64
		var n int
		for _, w := range r.Workloads {
			if r.Cumulative(w, 1) == 0 && r.Cumulative(w, 8) == 0 {
				continue // no reconvergence observed
			}
			within1 += r.Cumulative(w, 1)
			within3 += r.Cumulative(w, 3)
			n++
		}
		if n > 0 {
			b.ReportMetric(100*within1/float64(n), "%within-1")
			b.ReportMetric(100*within3/float64(n), "%within-3")
		}
	}
}

// BenchmarkFigure12 regenerates the RGID-vs-RI GAP comparison.
func BenchmarkFigure12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var rgid, ri float64
		for _, w := range r.Workloads {
			rgid += r.Improvement[w]["rgid-2x64"]
			ri += r.Improvement[w]["ri-64s2w"]
		}
		n := float64(len(r.Workloads))
		b.ReportMetric(100*rgid/n, "%rgid-2x64")
		b.ReportMetric(100*ri/n, "%ri-64s2w")
	}
}

// runPair measures one workload under baseline and spec, reporting
// speedup. Both runs execute through the sim layer on a two-worker pool,
// like a tiny sweep.
func runPair(b *testing.B, name string, spec sim.Spec) {
	b.Helper()
	b.ReportAllocs()
	p, err := workloads.Build(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	spec.Program = p
	base := sim.Spec{Program: p}
	r := sim.Runner{Jobs: 2}
	for i := 0; i < b.N; i++ {
		res, err := r.Run(context.Background(), []sim.Spec{base, spec})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*stats.Speedup(res[0].Stats, res[1].Stats), "%speedup")
		b.ReportMetric(res[1].Stats.IPC(), "IPC")
	}
}

// rgid4x64 is the paper's standard mechanism configuration, the starting
// point of every ablation.
func rgid4x64() sim.Spec {
	return sim.Spec{Engine: sim.EngineRGID, Streams: 4, Entries: 64}
}

// --- Ablations (DESIGN.md §6) -------------------------------------------

// BenchmarkAblationVPN compares full-width vs VPN-restricted
// reconvergence detection.
func BenchmarkAblationVPN(b *testing.B) {
	b.ReportAllocs()
	for _, restrict := range []bool{true, false} {
		restrict := restrict
		name := "restricted"
		if !restrict {
			name = "full-width"
		}
		b.Run(name, func(b *testing.B) {
			spec := rgid4x64()
			spec.TuneKey = "vpn-" + name
			spec.Tune = func(c *core.Config) { c.MS.VPNRestrict = restrict }
			runPair(b, "nested-mispred", spec)
		})
	}
}

// BenchmarkAblationLoadPolicy compares the reused-load protection schemes
// on cc, whose frequent label stores make reused loads hazardous.
func BenchmarkAblationLoadPolicy(b *testing.B) {
	b.ReportAllocs()
	for _, pol := range []sim.LoadPolicy{sim.LoadVerify, sim.LoadBloom, sim.LoadNoReuse} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			spec := rgid4x64()
			spec.Loads = pol
			runPair(b, "cc", spec)
		})
	}
}

// BenchmarkAblationRGIDWidth sweeps the generation-tag width: narrow tags
// saturate quickly and trigger the global reset protocol, throttling
// stream capture.
func BenchmarkAblationRGIDWidth(b *testing.B) {
	b.ReportAllocs()
	for _, bits := range []int{4, 6, 8, 12} {
		bits := bits
		b.Run(fmt.Sprintf("%dbits", bits), func(b *testing.B) {
			spec := rgid4x64()
			spec.TuneKey = fmt.Sprintf("rgid-%dbits", bits)
			spec.Tune = func(c *core.Config) { c.RGIDBits = bits }
			runPair(b, "nested-mispred", spec)
		})
	}
}

// BenchmarkAblationTimeout sweeps the WPB no-reconvergence timeout.
func BenchmarkAblationTimeout(b *testing.B) {
	b.ReportAllocs()
	for _, timeout := range []int{128, 1024, 8192} {
		timeout := timeout
		b.Run(fmt.Sprintf("%dinstrs", timeout), func(b *testing.B) {
			spec := rgid4x64()
			spec.TuneKey = fmt.Sprintf("timeout-%d", timeout)
			spec.Tune = func(c *core.Config) { c.MS.TimeoutInstrs = timeout }
			runPair(b, "bfs", spec)
		})
	}
}

// BenchmarkAblationMultiBlockFetch measures the §3.9.1 multiple-block
// fetching extension.
func BenchmarkAblationMultiBlockFetch(b *testing.B) {
	b.ReportAllocs()
	for _, blocks := range []int{1, 2} {
		blocks := blocks
		b.Run([]string{"", "one-block", "two-block"}[blocks], func(b *testing.B) {
			spec := rgid4x64()
			spec.TuneKey = fmt.Sprintf("blocks-%d", blocks)
			spec.Tune = func(c *core.Config) { c.BlocksPerCycle = blocks }
			runPair(b, "astar", spec)
		})
	}
}

// BenchmarkAblationCheckpoints sweeps the rename-checkpoint budget: zero
// forces a full rollback walk on every flush, the Table 2 budget of 32
// makes recovery single-cycle for nearly all branches.
func BenchmarkAblationCheckpoints(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{0, 4, 32} {
		n := n
		b.Run(fmt.Sprintf("%dckpts", n), func(b *testing.B) {
			spec := rgid4x64()
			spec.TuneKey = fmt.Sprintf("ckpts-%d", n)
			spec.Tune = func(c *core.Config) { c.RATCheckpoints = n }
			runPair(b, "gobmk", spec)
		})
	}
}

// BenchmarkAblationRISerialization measures what Register Integration
// loses when its table accesses serialize (§3.7.3): the idealized model
// completes all 8 integration tests per cycle, a realistic one only a
// couple. The RGID reuse test parallelizes (§3.5) and needs no such cap.
func BenchmarkAblationRISerialization(b *testing.B) {
	b.ReportAllocs()
	for _, tests := range []int{0, 2, 1} {
		tests := tests
		name := fmt.Sprintf("%d-per-cycle", tests)
		if tests == 0 {
			name = "ideal"
		}
		b.Run(name, func(b *testing.B) {
			spec := sim.Spec{Engine: sim.EngineRI, Sets: 64, Ways: 4,
				TuneKey: "ri-" + name,
				Tune:    func(c *core.Config) { c.RITestsPerCycle = tests }}
			runPair(b, "nested-mispred", spec)
		})
	}
}

// BenchmarkBaselines compares all engines (DIR value/name, RI, RGID) on
// the nested microbenchmark.
func BenchmarkBaselines(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Baselines(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Improvement["nested-mispred"]["rgid-4x64"], "%rgid")
		b.ReportMetric(100*r.Improvement["nested-mispred"]["dir-value"], "%dir-value")
		b.ReportMetric(100*r.Improvement["nested-mispred"]["ri-64s4w"], "%ri")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// cycles and instructions per wall second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	p, err := workloads.Build("gobmk", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	spec := rgid4x64()
	spec.Program = p
	ctx := context.Background()
	var cycles, instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
		instrs += res.Stats.Retired
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(cycles)/sec, "sim-cycles/s")
		b.ReportMetric(float64(instrs)/sec, "sim-instrs/s")
	}
}
