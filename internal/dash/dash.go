// Package dash serves the embedded live-telemetry dashboard: one
// dependency-free HTML page that subscribes to the /v1/ws event
// firehose and renders job lifecycle, per-spec sparklines (IPC, reuse
// rate, MPKI) and — against a fleet coordinator — the worker ring with
// health and queue depths. The same page works against a single msrd
// daemon (the ring section hides itself when /fleet/v1/workers 404s)
// and an msrfleet coordinator.
package dash

import (
	_ "embed"
	"net/http"
)

//go:embed dashboard.html
var page []byte

// Handler serves the dashboard page. Mount it at /dashboard on the
// daemon's or coordinator's mux (both gate it behind a -dashboard
// flag).
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_, _ = w.Write(page)
	})
}
