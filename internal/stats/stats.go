// Package stats collects the counters the paper's evaluation reports:
// cycles/IPC, branch behaviour, squash-reuse activity, reconvergence-type
// breakdowns (Figure 4), stream-distance histograms (Figure 11) and reuse
// structure maintenance events (Figure 3).
package stats

import "fmt"

// MaxStreamDistance bounds the stream-distance histogram; distances at or
// beyond the bound accumulate in the last bucket.
const MaxStreamDistance = 8

// ReconvType classifies a detected reconvergence by which squashed stream
// the corrected path merged onto, following §2.2.5 of the paper.
type ReconvType int

// Reconvergence types.
const (
	// ReconvSimple: merged onto the squashed path of the diverging branch
	// itself.
	ReconvSimple ReconvType = iota
	// ReconvSoftware: merged onto the squashed path of an elder branch
	// (software-induced multi-stream reconvergence).
	ReconvSoftware
	// ReconvHardware: merged onto the squashed path of a younger branch
	// (hardware-induced multi-stream reconvergence, from out-of-order
	// branch resolution).
	ReconvHardware
	numReconvTypes
)

func (t ReconvType) String() string {
	switch t {
	case ReconvSimple:
		return "simple"
	case ReconvSoftware:
		return "software-induced"
	case ReconvHardware:
		return "hardware-induced"
	}
	return fmt.Sprintf("reconv(%d)", int(t))
}

// Stats aggregates one simulation's counters. The zero value is ready to
// use.
type Stats struct {
	// Core progress.
	Cycles  uint64
	Retired uint64
	Fetched uint64 // instructions entering the pipeline, incl. wrong path
	Flushes uint64 // full pipeline flushes (mispredicts + violations)

	// Branches (counted at retirement).
	Branches          uint64
	BranchMispredicts uint64
	JumpMispredicts   uint64 // indirect target mispredictions

	// Squash reuse.
	SquashedStreams  uint64 // streams captured into WPB/Squash Log
	Reconvergences   uint64 // reconvergence points detected
	ReuseTests       uint64 // instructions tested against the squash log
	ReuseHits        uint64 // instructions whose results were reused
	ReusedLoads      uint64
	ReuseFailRGID    uint64 // source RGID mismatch
	ReuseFailNotDone uint64 // squashed counterpart had not executed
	ReuseFailKind    uint64 // op not eligible (stores, etc.)
	Divergences      uint64 // reuse window terminated by path divergence
	StreamTimeouts   uint64 // WPB invalidated by the 1024-instruction timeout
	RGIDResets       uint64 // global RGID resets (§3.3.2)

	// Memory ordering.
	LoadVerifications   uint64 // reused loads re-executed for verification
	MemOrderViolations  uint64 // verification mismatches -> flush
	BloomFilterRejects  uint64 // reuse blocked by the Bloom filter variant
	StoreSetPredictions uint64

	// Memory hierarchy, mirrored from internal/mem by the core at every
	// telemetry sample and at run end (the counters accumulate inside
	// mem.Cache; these fields make them part of every result).
	L1DHits      uint64
	L1DMisses    uint64
	L1DEvictions uint64
	L2Hits       uint64
	L2Misses     uint64
	L2Evictions  uint64
	DRAMAccesses uint64

	// Reconvergence classification (Figure 4).
	ReconvByType [numReconvTypes]uint64

	// Stream distance histogram (Figure 11): ReconvDistance[d] counts
	// reconvergences whose squashed stream was d intermediate squash
	// events away (0 == neighbouring stream).
	ReconvDistance [MaxStreamDistance]uint64

	// Register Integration maintenance (Figure 3): per-set replacement
	// counts, sized by the engine when RI is active.
	RIReplacements []uint64
	RIHits         uint64
	RIInvalidates  uint64 // transitive invalidations
}

// Reset zeroes every counter in place, keeping the RIReplacements
// backing array (sized once by the engine) so pooled cores never
// reallocate it between runs.
func (s *Stats) Reset() {
	ri := s.RIReplacements
	*s = Stats{}
	if ri != nil {
		clear(ri)
		s.RIReplacements = ri
	}
}

// Clone returns a deep copy, detaching the RIReplacements backing so the
// copy survives a later Reset of the original (results extracted from
// pooled cores must not alias pooled state).
func (s *Stats) Clone() *Stats {
	c := *s
	if s.RIReplacements != nil {
		c.RIReplacements = append([]uint64(nil), s.RIReplacements...)
	}
	return &c
}

// Add accumulates o's counters into s field by field — the aggregation a
// multi-fidelity run uses to fold successive detailed windows into one
// result. Histograms add element-wise; RIReplacements grows to o's length
// if needed (the engine sizes it identically for every window of a run).
func (s *Stats) Add(o *Stats) {
	if len(o.RIReplacements) > len(s.RIReplacements) {
		grown := make([]uint64, len(o.RIReplacements))
		copy(grown, s.RIReplacements)
		s.RIReplacements = grown
	}
	for i, v := range o.RIReplacements {
		s.RIReplacements[i] += v
	}
	s.Cycles += o.Cycles
	s.Retired += o.Retired
	s.Fetched += o.Fetched
	s.Flushes += o.Flushes
	s.Branches += o.Branches
	s.BranchMispredicts += o.BranchMispredicts
	s.JumpMispredicts += o.JumpMispredicts
	s.SquashedStreams += o.SquashedStreams
	s.Reconvergences += o.Reconvergences
	s.ReuseTests += o.ReuseTests
	s.ReuseHits += o.ReuseHits
	s.ReusedLoads += o.ReusedLoads
	s.ReuseFailRGID += o.ReuseFailRGID
	s.ReuseFailNotDone += o.ReuseFailNotDone
	s.ReuseFailKind += o.ReuseFailKind
	s.Divergences += o.Divergences
	s.StreamTimeouts += o.StreamTimeouts
	s.RGIDResets += o.RGIDResets
	s.LoadVerifications += o.LoadVerifications
	s.MemOrderViolations += o.MemOrderViolations
	s.BloomFilterRejects += o.BloomFilterRejects
	s.StoreSetPredictions += o.StoreSetPredictions
	s.L1DHits += o.L1DHits
	s.L1DMisses += o.L1DMisses
	s.L1DEvictions += o.L1DEvictions
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.L2Evictions += o.L2Evictions
	s.DRAMAccesses += o.DRAMAccesses
	for i := range s.ReconvByType {
		s.ReconvByType[i] += o.ReconvByType[i]
	}
	for i := range s.ReconvDistance {
		s.ReconvDistance[i] += o.ReconvDistance[i]
	}
	s.RIHits += o.RIHits
	s.RIInvalidates += o.RIInvalidates
}

// CopyFrom makes s a deep copy of o, reusing s's histogram capacity when
// it suffices — the snapshot a multi-fidelity run takes at a measurement
// boundary without allocating in the steady state.
func (s *Stats) CopyFrom(o *Stats) {
	ri := s.RIReplacements
	*s = *o
	if cap(ri) < len(o.RIReplacements) {
		ri = make([]uint64, len(o.RIReplacements))
	}
	ri = ri[:len(o.RIReplacements)]
	copy(ri, o.RIReplacements)
	s.RIReplacements = ri
}

// Sub removes o's counters from s field by field — the inverse of Add,
// used to exclude a detailed-warmup prefix from a sample window's
// measurement. o must be an earlier snapshot of the same run, so every
// counter in s is at least its counterpart in o.
func (s *Stats) Sub(o *Stats) {
	for i, v := range o.RIReplacements {
		s.RIReplacements[i] -= v
	}
	s.Cycles -= o.Cycles
	s.Retired -= o.Retired
	s.Fetched -= o.Fetched
	s.Flushes -= o.Flushes
	s.Branches -= o.Branches
	s.BranchMispredicts -= o.BranchMispredicts
	s.JumpMispredicts -= o.JumpMispredicts
	s.SquashedStreams -= o.SquashedStreams
	s.Reconvergences -= o.Reconvergences
	s.ReuseTests -= o.ReuseTests
	s.ReuseHits -= o.ReuseHits
	s.ReusedLoads -= o.ReusedLoads
	s.ReuseFailRGID -= o.ReuseFailRGID
	s.ReuseFailNotDone -= o.ReuseFailNotDone
	s.ReuseFailKind -= o.ReuseFailKind
	s.Divergences -= o.Divergences
	s.StreamTimeouts -= o.StreamTimeouts
	s.RGIDResets -= o.RGIDResets
	s.LoadVerifications -= o.LoadVerifications
	s.MemOrderViolations -= o.MemOrderViolations
	s.BloomFilterRejects -= o.BloomFilterRejects
	s.StoreSetPredictions -= o.StoreSetPredictions
	s.L1DHits -= o.L1DHits
	s.L1DMisses -= o.L1DMisses
	s.L1DEvictions -= o.L1DEvictions
	s.L2Hits -= o.L2Hits
	s.L2Misses -= o.L2Misses
	s.L2Evictions -= o.L2Evictions
	s.DRAMAccesses -= o.DRAMAccesses
	for i := range s.ReconvByType {
		s.ReconvByType[i] -= o.ReconvByType[i]
	}
	for i := range s.ReconvDistance {
		s.ReconvDistance[i] -= o.ReconvDistance[i]
	}
	s.RIHits -= o.RIHits
	s.RIInvalidates -= o.RIInvalidates
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MispredictRate returns the fraction of retired conditional branches that
// mispredicted.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.BranchMispredicts) / float64(s.Branches)
}

// MPKI returns branch mispredictions per kilo-instruction.
func (s *Stats) MPKI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return 1000 * float64(s.BranchMispredicts+s.JumpMispredicts) / float64(s.Retired)
}

// ReuseRate returns the fraction of retired instructions that were reused.
func (s *Stats) ReuseRate() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.ReuseHits) / float64(s.Retired)
}

// L1DMissRate returns the fraction of L1D accesses that missed.
func (s *Stats) L1DMissRate() float64 {
	if s.L1DHits+s.L1DMisses == 0 {
		return 0
	}
	return float64(s.L1DMisses) / float64(s.L1DHits+s.L1DMisses)
}

// AddReconv records one detected reconvergence of type t at stream distance
// d (0 = neighbouring stream).
func (s *Stats) AddReconv(t ReconvType, d int) {
	s.Reconvergences++
	s.ReconvByType[t]++
	if d < 0 {
		d = 0
	}
	if d >= MaxStreamDistance {
		d = MaxStreamDistance - 1
	}
	s.ReconvDistance[d]++
}

// ReconvFraction returns the fraction of reconvergences of type t.
func (s *Stats) ReconvFraction(t ReconvType) float64 {
	if s.Reconvergences == 0 {
		return 0
	}
	return float64(s.ReconvByType[t]) / float64(s.Reconvergences)
}

// DistanceFraction returns the cumulative fraction of reconvergences whose
// stream distance is <= d.
func (s *Stats) DistanceFraction(d int) float64 {
	if s.Reconvergences == 0 {
		return 0
	}
	var n uint64
	for i := 0; i <= d && i < MaxStreamDistance; i++ {
		n += s.ReconvDistance[i]
	}
	return float64(n) / float64(s.Reconvergences)
}

// String summarizes the headline counters.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d retired=%d IPC=%.3f mispredicts=%d (%.2f%%) reuse=%d (%.2f%%) reconv=%d",
		s.Cycles, s.Retired, s.IPC(),
		s.BranchMispredicts, 100*s.MispredictRate(),
		s.ReuseHits, 100*s.ReuseRate(), s.Reconvergences)
}

// Speedup returns the relative IPC improvement of s over base, as a
// fraction (0.05 == 5% faster). Both runs must have retired the same
// workload for the comparison to be meaningful.
func Speedup(base, s *Stats) float64 {
	if base.Cycles == 0 || s.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles)/float64(s.Cycles) - 1
}
