package stats

import (
	"strings"
	"testing"
)

func TestRates(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MispredictRate() != 0 || s.MPKI() != 0 || s.ReuseRate() != 0 {
		t.Error("zero-value rates must be zero")
	}
	s.Cycles = 100
	s.Retired = 250
	s.Branches = 50
	s.BranchMispredicts = 5
	s.JumpMispredicts = 5
	s.ReuseHits = 25
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.MispredictRate() != 0.1 {
		t.Errorf("MispredictRate = %v", s.MispredictRate())
	}
	if s.MPKI() != 40 {
		t.Errorf("MPKI = %v", s.MPKI())
	}
	if s.ReuseRate() != 0.1 {
		t.Errorf("ReuseRate = %v", s.ReuseRate())
	}
}

func TestAddReconv(t *testing.T) {
	var s Stats
	s.AddReconv(ReconvSimple, 0)
	s.AddReconv(ReconvSoftware, 1)
	s.AddReconv(ReconvHardware, 2)
	s.AddReconv(ReconvHardware, -3) // clamps to 0
	s.AddReconv(ReconvSimple, 100)  // clamps to last bucket
	if s.Reconvergences != 5 {
		t.Fatalf("Reconvergences = %d", s.Reconvergences)
	}
	if s.ReconvByType[ReconvSimple] != 2 || s.ReconvByType[ReconvHardware] != 2 {
		t.Errorf("type counts = %v", s.ReconvByType)
	}
	if s.ReconvDistance[0] != 2 || s.ReconvDistance[MaxStreamDistance-1] != 1 {
		t.Errorf("distance histogram = %v", s.ReconvDistance)
	}
	if got := s.ReconvFraction(ReconvSimple); got != 0.4 {
		t.Errorf("simple fraction = %v", got)
	}
	if got := s.DistanceFraction(1); got != 0.6 {
		t.Errorf("cumulative distance(1) = %v", got)
	}
	if got := s.DistanceFraction(MaxStreamDistance + 5); got != 1.0 {
		t.Errorf("cumulative distance(all) = %v", got)
	}
}

func TestReconvTypeString(t *testing.T) {
	if ReconvSimple.String() != "simple" ||
		ReconvSoftware.String() != "software-induced" ||
		ReconvHardware.String() != "hardware-induced" {
		t.Error("bad reconvergence type names")
	}
	if !strings.Contains(ReconvType(9).String(), "9") {
		t.Error("unknown type should include the number")
	}
}

func TestSpeedup(t *testing.T) {
	base := &Stats{Cycles: 110, Retired: 100}
	fast := &Stats{Cycles: 100, Retired: 100}
	got := Speedup(base, fast)
	if got < 0.0999 || got > 0.1001 {
		t.Errorf("Speedup = %v, want 0.1", got)
	}
	if Speedup(&Stats{}, fast) != 0 || Speedup(base, &Stats{}) != 0 {
		t.Error("speedup with zero cycles must be 0")
	}
}

func TestString(t *testing.T) {
	s := &Stats{Cycles: 10, Retired: 20}
	if !strings.Contains(s.String(), "IPC=2.000") {
		t.Errorf("String() = %q", s.String())
	}
}
