package sim

import (
	"strings"
	"testing"

	"mssr/internal/core"
	"mssr/internal/reuse"
	"mssr/internal/workloads"
)

func TestSpecKeyCanonical(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Workload: "bfs", Scale: 1}, "bfs/none"},
		{Spec{Workload: "bfs", Scale: 1, Engine: EngineRGID, Streams: 4, Entries: 64}, "bfs/rgid-4x64"},
		{Spec{Workload: "bfs", Scale: 1, Engine: EngineRGID}, "bfs/rgid-4x64"}, // defaults fill in
		{Spec{Workload: "bfs", Scale: 2, Engine: EngineRI, Sets: 128, Ways: 2}, "bfs@s2/ri-128s2w"},
		{Spec{Workload: "cc", Scale: 1, Engine: EngineDIRValue}, "cc/dir-value-64s4w"},
		{Spec{Workload: "cc", Scale: 1, Engine: EngineDIRName, Loads: LoadBloom}, "cc/dir-name-64s4w+loads=bloom"},
		{Spec{Workload: "bfs", Scale: 1, Check: true}, "bfs/none+check"},
		{Spec{Workload: "bfs", Scale: 1, TuneKey: "wide", Tune: func(*core.Config) {}}, "bfs/none+wide"},
		{Spec{Label: "override", Workload: "bfs"}, "override"},
	}
	for _, c := range cases {
		if got := c.spec.Key(); got != c.want {
			t.Errorf("Key() = %q, want %q", got, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	p, err := workloads.Build("nested-mispred", 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		spec Spec
	}{
		{"empty", Spec{}},
		{"both program and workload", Spec{Workload: "bfs", Program: p}},
		{"unknown workload", Spec{Workload: "no-such-benchmark"}},
		{"unknown engine", Spec{Workload: "bfs", Engine: Engine(42)}},
		{"negative streams", Spec{Workload: "bfs", Engine: EngineRGID, Streams: -1}},
		{"negative scale", Spec{Workload: "bfs", Scale: -2}},
		{"negative timeout", Spec{Workload: "bfs", Timeout: -1}},
		{"tune without key", Spec{Workload: "bfs", Tune: func(*core.Config) {}}},
		{"window without fast-forward", Spec{Workload: "bfs", DetailedWindow: 1000}},
		{"periods without window", Spec{Workload: "bfs", FastForward: 1000, SamplePeriods: 4}},
		{"negative sample periods", Spec{Workload: "bfs", FastForward: 1000, DetailedWindow: 100, SamplePeriods: -1}},
		{"warm without fast-forward", Spec{Workload: "bfs", Warm: true}},
	}
	for _, c := range bad {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
	good := []Spec{
		{Workload: "bfs"},
		{Program: p, Engine: EngineRGID, Streams: 2, Entries: 32},
		{Workload: "cc", Engine: EngineDIRName, Loads: LoadNoReuse, Check: true},
		{Workload: "bfs", FastForward: 1000}, // exact skip-then-detail
		{Workload: "bfs", FastForward: 1000, DetailedWindow: 100, SamplePeriods: 8, Warm: true},
		{Workload: "bfs", FastForward: 1000, SamplePeriods: 1}, // 1 == the default single period
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good[%d]: Validate() = %v", i, err)
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, e := range []Engine{EngineNone, EngineRGID, EngineRI, EngineDIRValue, EngineDIRName} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e, got, err)
		}
	}
	if _, err := ParseEngine("warp-drive"); err == nil {
		t.Error("ParseEngine accepted nonsense")
	}
	for _, s := range []string{"verify", "bloom", "none"} {
		p, err := ParseLoadPolicy(s)
		if err != nil || p.String() != s {
			t.Errorf("ParseLoadPolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParseLoadPolicy("yolo"); err == nil {
		t.Error("ParseLoadPolicy accepted nonsense")
	}
}

func TestSpecConfig(t *testing.T) {
	s := Spec{Workload: "bfs", Engine: EngineRGID, Streams: 2, Entries: 128, Loads: LoadBloom, Check: true}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Reuse != core.ReuseMultiStream || cfg.MS.Streams != 2 || cfg.MS.LogEntries != 128 {
		t.Errorf("rgid config wrong: %+v", cfg.MS)
	}
	if cfg.MS.WPBEntries != 32 {
		t.Errorf("WPBEntries = %d, want logEntries/4", cfg.MS.WPBEntries)
	}
	if cfg.MS.LoadPolicy != reuse.LoadBloom || !cfg.DebugCheck {
		t.Error("load policy / checker not applied")
	}

	s = Spec{Workload: "bfs", Engine: EngineRI, Sets: 128, Ways: 1}
	cfg, err = s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Reuse != core.ReuseRI || cfg.RI.Sets != 128 || cfg.RI.Ways != 1 {
		t.Errorf("ri config wrong: %+v", cfg.RI)
	}

	s = Spec{Workload: "bfs", Engine: EngineDIRName, TuneKey: "tiny-rob", Tune: func(c *core.Config) { c.ROBSize = 16 }}
	cfg, err = s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Reuse != core.ReuseDIR || cfg.DIR.Scheme != reuse.DIRName {
		t.Errorf("dir config wrong: %+v", cfg.DIR)
	}
	if cfg.ROBSize != 16 {
		t.Error("Tune not applied")
	}
}

func TestSpecBuildProgram(t *testing.T) {
	s := Spec{Workload: "nested-mispred", Scale: 0}
	p, err := s.BuildProgram()
	if err != nil || p == nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	s2 := Spec{Program: p}
	p2, err := s2.BuildProgram()
	if err != nil || p2 != p {
		t.Fatal("pre-built program not returned verbatim")
	}
	s3 := Spec{Workload: "no-such-benchmark"}
	if _, err := s3.BuildProgram(); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown workload error = %v", err)
	}
}
