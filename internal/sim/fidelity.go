package sim

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"mssr/internal/ckpt"
	"mssr/internal/core"
	"mssr/internal/emu"
	"mssr/internal/isa"
	"mssr/internal/obs"
	"mssr/internal/stats"
)

// runFidelity executes one multi-fidelity job (Spec.FastForward > 0) on an
// already-acquired core. Uniform runs tile {fast-forward, detailed window}
// pairs across the program sequentially; phase-selected runs (PhaseKMeans)
// jump straight to k-means-chosen representative windows of a one-time
// profiling pass. Both restore sample-period boundary states from the
// Runner's checkpoint store when they can and capture the states they had
// to emulate, so repeated sweeps over the same program skip the functional
// prefix entirely (Result.FFExecuted == 0 on a fully warm run).
//
// The caller (runOne) owns core pooling, wall-clock accounting and the
// observer; runFidelity fills res in place.
func (r *Runner) runFidelity(ctx context.Context, s *Spec, prog *isa.Program, c *core.Core, res *Result) {
	store := r.ckptStore(s)
	if s.PhaseSelect == PhaseKMeans {
		prof, err := r.profileFor(ctx, s, prog, store)
		if err != nil {
			res.Err = err
			return
		}
		r.runPhased(ctx, s, prog, c, res, store, prof)
		return
	}
	r.runSequential(ctx, s, prog, c, res, store, nil)
}

// boundaryKey names the checkpoint of the architectural state reached
// after pos functionally executed instructions. The deterministic
// emulator makes that state a function of (program, pos) alone, so the
// key carries nothing else.
func boundaryKey(ckey string, pos uint64) string {
	return ckey + "#" + strconv.FormatUint(pos, 10)
}

// endKey names the checkpoint of the program's final state.
func endKey(ckey string) string { return ckey + "#end" }

// restoreBoundary restores em from the named checkpoint, counting the
// hit or miss on res. A blob that fails verification counts as a miss
// and the caller re-emulates.
func restoreBoundary(store *ckpt.Store, key string, em *emu.Emulator, res *Result) bool {
	if blob, ok := store.Get(key); ok {
		if err := em.RestoreBinary(blob); err == nil {
			res.CkptHits++
			return true
		}
	}
	res.CkptMisses++
	return false
}

// captureBoundary writes em's current state into the store unless it is
// already present (checkpoint contents are deterministic per key, so a
// re-encode would be pure churn).
func captureBoundary(store *ckpt.Store, key string, em *emu.Emulator) {
	if store == nil || store.Contains(key) {
		return
	}
	st := em.State()
	store.Put(key, st.AppendBinary(nil))
}

// runSequential is the uniform-tiling execution path: for each sample
// period it obtains the boundary state — restored from the checkpoint
// store, or emulated by replaying the previous window's detailed
// retirements and fast-forwarding the skip (optionally warming the
// core's caches and branch predictor through the hook) — seeds the core,
// runs one detailed window behind a measurement-excluded detailed-warmup
// prefix, and folds the measured counters into the aggregate. Caches and
// predictors persist across periods (ResetWindow), as they would in a
// contiguous run. With DetailedWindow == 0 the single window runs to
// HALT and the run is exact; otherwise the remaining tail finishes on
// the emulator (or restores the program-end checkpoint) and the result
// is an extrapolation from the sampled windows.
//
// sample, when non-nil, marks a profiling pass: it receives each
// window's warmup-checkpoint position, boundary position and measured
// counters, and the live OnInterval/OnWindow hooks stay quiet (the pass
// is internal, not a job the caller submitted). A profiling pass also
// captures a checkpoint warmupLead instructions before each boundary,
// where phase-selected runs restore to re-train the core before
// measuring.
func (r *Runner) runSequential(ctx context.Context, s *Spec, prog *isa.Program, c *core.Core, res *Result, store *ckpt.Store, sample func(pre, pos uint64, win *stats.Stats)) {
	em := emu.New(prog)
	periods := s.SamplePeriods
	if periods <= 0 {
		periods = 1
	}
	var hook func(*emu.StepInfo)
	if s.Warm {
		hook = c.WarmStep
	}
	// Warm runs must execute every skip — warming the core is the skip's
	// point — so they capture boundaries for later runs but never
	// restore. Cold runs restore freely: a restored boundary is
	// byte-identical to the emulated one.
	useRestore := store != nil && !s.Warm
	ckey := s.CheckpointKey()

	agg := &stats.Stats{}
	var intervals []obs.Interval
	var winIPC []float64
	var pre, win stats.Stats
	var detailRetired, detailCycles uint64
	windows, dropped := 0, 0
	detailedToEnd := false
	// A quarter-window detailed-warmup prefix runs in full detail before
	// each measured window but is excluded from its counters (and lumped
	// into FastForwarded), so short windows are not biased by their
	// cold-pipeline transient.
	warmup := s.DetailedWindow / 4
	minWin := 8
	if periods < minWin {
		minWin = periods
	}

	// The live tap needs the fidelity annotations the final Result gets
	// post hoc, so the hook stamps Mode/Window at fire time. curWin is
	// advanced before each RunWindow; ResetWindow preserves the hook, so
	// one installation covers every sample period.
	curWin := 0
	if r.OnInterval != nil && sample == nil {
		c.SetIntervalHook(func(iv *obs.Interval) {
			live := *iv
			live.Mode = obs.ModeDetail
			live.Window = curWin
			r.OnInterval(res.Index, res.Key, live)
		})
	}

	// pendingReplay defers the functional replay of the previous
	// window's detailed retirements until a boundary actually has to
	// emulate forward; a restored boundary skips replay and skip alike.
	var pendingReplay uint64
	pos := uint64(0) // the emulator's current functional position
	for k := 0; k < periods; k++ {
		if k > 0 {
			// Keep the caches and predictors warmed so far; only the
			// pipeline, architectural state and counters restart.
			c.ResetWindow(prog)
		}
		want := pos + pendingReplay + s.FastForward
		// prePos is where a phase-selected run will restore to warm up
		// before measuring this tile's window; the profiling pass captures
		// it on the way past.
		lead := warmupLead(s)
		if avail := want - pos; lead > avail {
			lead = avail
		}
		prePos := want - lead
		seeded := false
		if useRestore {
			seeded = restoreBoundary(store, boundaryKey(ckey, want), em, res)
		}
		if !seeded {
			if pendingReplay > 0 {
				// Replay the previous period's detailed retirements
				// (warmup prefix included) so the emulator sits exactly
				// where this skip starts.
				em.FastForward(pendingReplay, nil)
				res.FFExecuted += pendingReplay
			}
			before := em.Retired
			if sample != nil && prePos > em.Retired {
				em.FastForward(prePos-em.Retired, hook)
				if !em.Halted && em.Retired == prePos {
					captureBoundary(store, boundaryKey(ckey, prePos), em)
				}
			}
			if want > em.Retired {
				em.FastForward(want-em.Retired, hook)
			}
			res.FFExecuted += em.Retired - before
			if !em.Halted && em.Retired == want {
				captureBoundary(store, boundaryKey(ckey, want), em)
			}
		}
		pendingReplay = 0
		pos = em.Retired
		if em.Halted {
			break // the program ended inside the skip; nothing left to measure
		}
		c.EndWarmup()
		st := em.State()
		c.SeedFrom(&st)
		curWin = windows + 1
		if r.OnWindow != nil && sample == nil {
			r.OnWindow(res.Index, res.Key, curWin, periods)
		}
		runErr := c.RunWindow(ctx, warmup, s.DetailedWindow, &pre, &win)
		agg.Add(&win)
		windows++
		detailRetired += win.Retired
		detailCycles += win.Cycles
		if win.Cycles > 0 {
			winIPC = append(winIPC, float64(win.Retired)/float64(win.Cycles))
		}
		if sample != nil {
			sample(prePos, pos, &win)
		}
		for _, iv := range c.Intervals() {
			iv.Mode = obs.ModeDetail
			iv.Window = windows
			intervals = append(intervals, iv)
		}
		dropped += c.IntervalsDropped()
		if runErr != nil {
			res.Stats, res.Intervals, res.IntervalsDropped = agg, intervals, dropped
			res.Windows = windows
			res.Err = runErr
			return
		}
		if c.Halted() {
			detailedToEnd = true
			break
		}
		pendingReplay = c.Stats.Retired
		if converged(s.MaxErr, winIPC, minWin) {
			break // the estimate already meets the requested error bound
		}
	}

	res.Stats, res.Intervals, res.IntervalsDropped = agg, intervals, dropped
	res.Windows = windows

	if detailedToEnd {
		// The detailed core committed HALT: the end state is exact.
		got := c.Result()
		res.TotalRetired = got.Retired
		res.FastForwarded = got.Retired - detailRetired
		if s.DetailedWindow > 0 {
			// The final bounded window happened to reach HALT: the totals
			// are exact, but the IPC figures are still window samples, so
			// keep reporting the sampled estimate and its error bar.
			finalizeSampling(res, winIPC, nil, detailRetired, detailCycles)
		}
		if s.VerifyArch {
			want, err := emu.RunProgram(prog, 1<<40)
			if err != nil {
				res.Err = fmt.Errorf("emulator: %w", err)
				return
			}
			if got != want {
				res.Err = fmt.Errorf("architectural mismatch:\ncore: %+v\nemu:  %+v", got, want)
				return
			}
			res.Arch = got
		}
		return
	}

	// Sampled mode: obtain the program's end state — restored when the
	// store holds it, finished functionally otherwise — and extrapolate
	// from the measured windows.
	seededEnd := false
	if useRestore {
		seededEnd = restoreBoundary(store, endKey(ckey), em, res)
	}
	if !seededEnd {
		if pendingReplay > 0 {
			em.FastForward(pendingReplay, nil)
			res.FFExecuted += pendingReplay
		}
		before := em.Retired
		if err := em.Run(1 << 40); err != nil {
			res.Err = fmt.Errorf("emulator: %w", err)
			return
		}
		res.FFExecuted += em.Retired - before
		captureBoundary(store, endKey(ckey), em)
	}
	res.Extrapolated = true
	res.TotalRetired = em.Retired
	res.FastForwarded = em.Retired - detailRetired
	finalizeSampling(res, winIPC, nil, detailRetired, detailCycles)
	if s.VerifyArch {
		// No mid-pipeline core state exists to compare in sampled mode; the
		// commit-time checker (Spec.Check) covers the windows. Record the
		// program's final architectural state from the emulator.
		res.Arch = em.Result()
	}
}

// finalizeSampling fills the sampled-estimate fields every sampled
// completion path shares — the single place the IPC estimate and its
// confidence figure are defined. With weights (phase-selected runs) the
// estimate is the cluster-population-weighted harmonic mean of the
// window IPC samples — tiles hold equal instruction counts, so their
// cycles (and the aggregate IPC) add harmonically, matching the pooled
// ratio the uniform path computes; without weights, it is the pooled
// retire/cycle ratio of the uniform windows directly. IPCErrorEst is
// the relative standard error of the (unweighted) window samples in
// both cases — the figure adaptive stopping drives to the requested
// bound.
func finalizeSampling(res *Result, winIPC, weights []float64, detailRetired, detailCycles uint64) {
	if weights != nil {
		var cpi, wsum float64
		for i, ipc := range winIPC {
			if ipc <= 0 {
				continue
			}
			cpi += weights[i] / ipc
			wsum += weights[i]
		}
		if cpi > 0 {
			res.ExtrapolatedIPC = wsum / cpi
		}
	} else if detailCycles > 0 {
		res.ExtrapolatedIPC = float64(detailRetired) / float64(detailCycles)
	}
	res.IPCErrorEst = relStdErr(winIPC)
}

// converged is the adaptive-stopping predicate: sampling may stop once
// at least minWindows IPC samples exist and their relative standard
// error has reached the requested bound. maxErr == 0 (no bound) never
// stops early.
func converged(maxErr float64, winIPC []float64, minWindows int) bool {
	return maxErr > 0 && len(winIPC) >= minWindows && relStdErr(winIPC) <= maxErr
}

// relStdErr returns the relative standard error of the sample mean
// (stddev / sqrt(n) / mean), the reported confidence figure for the
// window-sampled IPC estimate. 0 with fewer than two samples or a zero
// mean.
func relStdErr(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/(n-1)) / math.Sqrt(n) / mean
}
