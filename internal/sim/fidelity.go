package sim

import (
	"context"
	"fmt"
	"math"

	"mssr/internal/core"
	"mssr/internal/emu"
	"mssr/internal/isa"
	"mssr/internal/obs"
	"mssr/internal/stats"
)

// runFidelity executes one multi-fidelity job (Spec.FastForward > 0) on an
// already-acquired core: for each sample period it fast-forwards the
// functional emulator (optionally warming the core's caches and branch
// predictor through the hook), seeds the core with the emulator's
// architectural state, runs one detailed window behind a measurement-
// excluded detailed-warmup prefix, folds the measured counters into the
// aggregate, and replays the period's detailed retirements on the
// emulator to keep the two in sync. Caches and predictors persist across
// periods (ResetWindow), as they would in a contiguous run. With
// DetailedWindow == 0 the single window runs to HALT and the run is
// exact; otherwise the remaining tail finishes on the emulator and the
// result is an extrapolation from the sampled windows.
//
// The caller (runOne) owns core pooling, wall-clock accounting and the
// observer; runFidelity fills res in place.
func (r *Runner) runFidelity(ctx context.Context, s *Spec, prog *isa.Program, c *core.Core, res *Result) {
	em := emu.New(prog)
	periods := s.SamplePeriods
	if periods <= 0 {
		periods = 1
	}
	var hook func(*emu.StepInfo)
	if s.Warm {
		hook = c.WarmStep
	}

	agg := &stats.Stats{}
	var intervals []obs.Interval
	var winIPC []float64
	var pre, win stats.Stats
	var detailRetired, detailCycles uint64
	windows, dropped := 0, 0
	detailedToEnd := false
	// A quarter-window detailed-warmup prefix runs in full detail before
	// each measured window but is excluded from its counters (and lumped
	// into FastForwarded), so short windows are not biased by their
	// cold-pipeline transient.
	warmup := s.DetailedWindow / 4

	// The live tap needs the fidelity annotations the final Result gets
	// post hoc, so the hook stamps Mode/Window at fire time. curWin is
	// advanced before each RunWindow; ResetWindow preserves the hook, so
	// one installation covers every sample period.
	curWin := 0
	if r.OnInterval != nil {
		c.SetIntervalHook(func(iv *obs.Interval) {
			live := *iv
			live.Mode = obs.ModeDetail
			live.Window = curWin
			r.OnInterval(res.Index, res.Key, live)
		})
	}

	for k := 0; k < periods; k++ {
		if k > 0 {
			// Keep the caches and predictors warmed so far; only the
			// pipeline, architectural state and counters restart.
			c.ResetWindow(prog)
		}
		em.FastForward(s.FastForward, hook)
		if em.Halted {
			break // the program ended inside the skip; nothing left to measure
		}
		c.EndWarmup()
		st := em.State()
		c.SeedFrom(&st)
		curWin = windows + 1
		if r.OnWindow != nil {
			r.OnWindow(res.Index, res.Key, curWin, periods)
		}
		runErr := c.RunWindow(ctx, warmup, s.DetailedWindow, &pre, &win)
		agg.Add(&win)
		windows++
		detailRetired += win.Retired
		detailCycles += win.Cycles
		if win.Cycles > 0 {
			winIPC = append(winIPC, float64(win.Retired)/float64(win.Cycles))
		}
		for _, iv := range c.Intervals() {
			iv.Mode = obs.ModeDetail
			iv.Window = windows
			intervals = append(intervals, iv)
		}
		dropped += c.IntervalsDropped()
		if runErr != nil {
			res.Stats, res.Intervals, res.IntervalsDropped = agg, intervals, dropped
			res.Windows = windows
			res.Err = runErr
			return
		}
		if c.Halted() {
			detailedToEnd = true
			break
		}
		// Replay the period's detailed retirements (warmup prefix included)
		// functionally so the emulator sits exactly where the next skip
		// starts (or where the tail resumes).
		em.FastForward(c.Stats.Retired, nil)
	}

	res.Stats, res.Intervals, res.IntervalsDropped = agg, intervals, dropped
	res.Windows = windows

	if detailedToEnd {
		// The detailed core committed HALT: the end state is exact.
		got := c.Result()
		res.TotalRetired = got.Retired
		res.FastForwarded = got.Retired - detailRetired
		if s.DetailedWindow > 0 && detailCycles > 0 {
			// The final bounded window happened to reach HALT: the totals
			// are exact, but the IPC figures are still window samples, so
			// keep reporting the sampled estimate and its error bar.
			res.ExtrapolatedIPC = float64(detailRetired) / float64(detailCycles)
			res.IPCErrorEst = relStdErr(winIPC)
		}
		if s.VerifyArch {
			want, err := emu.RunProgram(prog, 1<<40)
			if err != nil {
				res.Err = fmt.Errorf("emulator: %w", err)
				return
			}
			if got != want {
				res.Err = fmt.Errorf("architectural mismatch:\ncore: %+v\nemu:  %+v", got, want)
				return
			}
			res.Arch = got
		}
		return
	}

	// Sampled mode: finish the program functionally and extrapolate from
	// the measured windows.
	if err := em.Run(1 << 40); err != nil {
		res.Err = fmt.Errorf("emulator: %w", err)
		return
	}
	res.Extrapolated = true
	res.TotalRetired = em.Retired
	res.FastForwarded = em.Retired - detailRetired
	if detailCycles > 0 {
		res.ExtrapolatedIPC = float64(detailRetired) / float64(detailCycles)
	}
	res.IPCErrorEst = relStdErr(winIPC)
	if s.VerifyArch {
		// No mid-pipeline core state exists to compare in sampled mode; the
		// commit-time checker (Spec.Check) covers the windows. Record the
		// program's final architectural state from the emulator.
		res.Arch = em.Result()
	}
}

// relStdErr returns the relative standard error of the sample mean
// (stddev / sqrt(n) / mean), the reported confidence figure for the
// window-sampled IPC estimate. 0 with fewer than two samples or a zero
// mean.
func relStdErr(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/(n-1)) / math.Sqrt(n) / mean
}
