package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mssr/internal/obs"
)

// sampledSpec is tinySpec with interval telemetry attached at a period
// short enough that even the tiny workloads produce several intervals.
func sampledSpec() Spec {
	s := tinySpec()
	s.SampleInterval = 64
	return s
}

func TestSpecSamplingKeys(t *testing.T) {
	plain := tinySpec()
	sampled := sampledSpec()
	if !strings.Contains(sampled.CanonicalKey(), "+iv64") {
		t.Errorf("sampled canonical key lacks interval tag: %q", sampled.CanonicalKey())
	}
	if plain.CanonicalKey() == sampled.CanonicalKey() {
		t.Error("sampling does not change the canonical key; cached results would be unsound")
	}
	if plain.poolKey() == sampled.poolKey() {
		t.Error("sampling does not change the pool key; sampled jobs would draw unsampled cores")
	}
	windowed := sampledSpec()
	windowed.SampleWindow = 128
	if !strings.Contains(windowed.CanonicalKey(), "+iv64w128") {
		t.Errorf("windowed canonical key lacks window tag: %q", windowed.CanonicalKey())
	}
	bad := tinySpec()
	bad.SampleWindow = 128 // window without interval
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted SampleWindow without SampleInterval")
	}
}

func TestResultCarriesIntervals(t *testing.T) {
	res, err := Run(context.Background(), sampledSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("sampled run produced no intervals")
	}
	last := res.Intervals[len(res.Intervals)-1]
	if last.End != res.Stats.Cycles {
		t.Errorf("interval stream ends at cycle %d, run ended at %d (missing Flush?)", last.End, res.Stats.Cycles)
	}
	if res.IntervalsDropped == 0 {
		var retired uint64
		for _, iv := range res.Intervals {
			retired += iv.Retired
		}
		if retired != res.Stats.Retired {
			t.Errorf("interval deltas sum to %d retired, run retired %d", retired, res.Stats.Retired)
		}
	}
	// Unsampled runs must stay interval-free.
	plain, err := Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Intervals != nil {
		t.Errorf("unsampled run carries %d intervals", len(plain.Intervals))
	}
}

// TestPooledIntervalDeterminism extends the pooling guard to telemetry:
// the interval stream of a sweep served by pooled cores must be
// byte-identical to the same sweep on fresh cores.
func TestPooledIntervalDeterminism(t *testing.T) {
	sweep := func() []Spec {
		var specs []Spec
		for i := 0; i < 6; i++ {
			s := sampledSpec()
			if i%2 == 1 {
				s.Workload = "linear-mispred"
			}
			specs = append(specs, s)
		}
		return specs
	}
	render := func(results []Result) []byte {
		var buf bytes.Buffer
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Key, r.Err)
			}
			if err := obs.WriteNDJSON(&buf, r.Intervals); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	ctx := context.Background()
	fresh, err := (&Runner{Jobs: 1, FreshCores: true}).Run(ctx, sweep())
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := (&Runner{Jobs: 1}).Run(ctx, sweep())
	if err != nil {
		t.Fatal(err)
	}
	want, got := render(fresh), render(pooled)
	if len(want) == 0 {
		t.Fatal("sweep produced no interval bytes")
	}
	if !bytes.Equal(want, got) {
		t.Error("pooled interval NDJSON diverges from fresh cores")
	}
}

func TestIntervalStreamFormats(t *testing.T) {
	var nd, csv bytes.Buffer
	ndStream := NewIntervalStream(&nd)
	csvStream := NewIntervalCSVStream(&csv)
	r := &Runner{Jobs: 1, Observer: Observers(ndStream, csvStream)}
	if _, err := r.Run(context.Background(), []Spec{sampledSpec()}); err != nil {
		t.Fatal(err)
	}
	if err := ndStream.Err(); err != nil {
		t.Fatal(err)
	}
	if err := csvStream.Err(); err != nil {
		t.Fatal(err)
	}

	ndLines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	if len(ndLines) == 0 || ndLines[0] == "" {
		t.Fatal("NDJSON stream is empty")
	}
	spec := sampledSpec()
	wantKey := spec.Key()
	for i, line := range ndLines {
		var rec struct {
			Key string `json:"key"`
			obs.Interval
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("NDJSON line %d does not parse: %v", i, err)
		}
		if rec.Key != wantKey {
			t.Errorf("NDJSON line %d key %q, want %q", i, rec.Key, wantKey)
		}
		if rec.Index != i {
			t.Errorf("NDJSON line %d has interval index %d", i, rec.Index)
		}
	}

	csvLines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if csvLines[0] != "key,"+obs.CSVHeader() {
		t.Errorf("CSV header wrong: %q", csvLines[0])
	}
	if len(csvLines) != len(ndLines)+1 {
		t.Errorf("CSV has %d rows for %d intervals", len(csvLines)-1, len(ndLines))
	}
	for i, line := range csvLines[1:] {
		if cols := strings.Split(line, ","); len(cols) != len(strings.Split(csvLines[0], ",")) {
			t.Errorf("CSV row %d has %d columns, header has %d", i, len(cols), len(strings.Split(csvLines[0], ",")))
		}
		if !strings.HasPrefix(line, wantKey+",") {
			t.Errorf("CSV row %d lacks key prefix: %q", i, line)
		}
	}
}
