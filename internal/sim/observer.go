package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"mssr/internal/stats"
)

// Observer receives per-job notifications from a Runner. Callbacks run
// on the pool's worker goroutines and must be safe for concurrent use.
type Observer interface {
	// OnStart fires when job index (of total) begins running.
	OnStart(index, total int, key string)
	// OnFinish fires when job index (of total) completes, in completion
	// order (not spec order).
	OnFinish(index, total int, r Result)
}

// Observers fans notifications out to several observers.
func Observers(obs ...Observer) Observer {
	flat := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	return flat
}

type multiObserver []Observer

func (m multiObserver) OnStart(index, total int, key string) {
	for _, o := range m {
		o.OnStart(index, total, key)
	}
}

func (m multiObserver) OnFinish(index, total int, r Result) {
	for _, o := range m {
		o.OnFinish(index, total, r)
	}
}

// Progress prints one line per finished job — counted in completion
// order — with its headline metrics, implementing msrbench's -progress
// mode.
type Progress struct {
	mu   sync.Mutex
	w    io.Writer
	done int
}

// NewProgress returns a Progress writing to w.
func NewProgress(w io.Writer) *Progress { return &Progress{w: w} }

// OnStart implements Observer.
func (p *Progress) OnStart(index, total int, key string) {}

// OnFinish implements Observer.
func (p *Progress) OnFinish(index, total int, r Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if r.Err != nil {
		fmt.Fprintf(p.w, "[%d/%d] %-40s FAILED (%s): %v\n", p.done, total, r.Key, r.Wall.Round(time.Millisecond), r.Err)
		return
	}
	fmt.Fprintf(p.w, "[%d/%d] %-40s cycles=%-12d ipc=%-6.3f wall=%s\n",
		p.done, total, r.Key, r.Stats.Cycles, r.Stats.IPC(), r.Wall.Round(time.Millisecond))
}

// JSONStream emits one JSON object per finished job, giving sweeps a
// machine-readable result stream. Encoding failures (a full disk, a
// closed pipe) do not panic the worker pool; the first one is recorded
// and reported by Err, so callers can distinguish a complete stream from
// a truncated file that merely looks complete.
type JSONStream struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONStream returns a JSONStream writing to w.
func NewJSONStream(w io.Writer) *JSONStream { return &JSONStream{enc: json.NewEncoder(w)} }

// jobJSON is the wire shape of one job result.
type jobJSON struct {
	Key     string       `json:"key"`
	Program string       `json:"program,omitempty"`
	Engine  string       `json:"engine,omitempty"`
	Cycles  uint64       `json:"cycles,omitempty"`
	Retired uint64       `json:"retired,omitempty"`
	IPC     float64      `json:"ipc,omitempty"`
	MIPS    float64      `json:"mips,omitempty"`
	WallNS  int64        `json:"wall_ns"`
	Error   string       `json:"error,omitempty"`
	Stats   *stats.Stats `json:"stats,omitempty"`
}

// OnStart implements Observer.
func (j *JSONStream) OnStart(index, total int, key string) {}

// OnFinish implements Observer.
func (j *JSONStream) OnFinish(index, total int, r Result) {
	rec := jobJSON{
		Key:     r.Key,
		Program: r.Program,
		Engine:  r.EngineName,
		MIPS:    r.MIPS,
		WallNS:  r.Wall.Nanoseconds(),
		Stats:   r.Stats,
	}
	if r.Stats != nil {
		rec.Cycles = r.Stats.Cycles
		rec.Retired = r.Stats.Retired
		rec.IPC = r.Stats.IPC()
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(rec); err != nil && j.err == nil {
		j.err = fmt.Errorf("sim: json stream: encoding %s: %w", r.Key, err)
	}
}

// Err returns the first encoding failure of the stream, nil if every
// record was written. Check it after the sweep: a non-nil error means
// the output file is truncated.
func (j *JSONStream) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
