package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"mssr/internal/obs"
	"mssr/internal/stats"
)

// Observer receives per-job notifications from a Runner. Callbacks run
// on the pool's worker goroutines and must be safe for concurrent use.
type Observer interface {
	// OnStart fires when job index (of total) begins running.
	OnStart(index, total int, key string)
	// OnFinish fires when job index (of total) completes, in completion
	// order (not spec order).
	OnFinish(index, total int, r Result)
}

// Observers fans notifications out to several observers.
func Observers(obs ...Observer) Observer {
	flat := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	return flat
}

type multiObserver []Observer

func (m multiObserver) OnStart(index, total int, key string) {
	for _, o := range m {
		o.OnStart(index, total, key)
	}
}

func (m multiObserver) OnFinish(index, total int, r Result) {
	for _, o := range m {
		o.OnFinish(index, total, r)
	}
}

// Progress prints one line per finished job — counted in completion
// order — with its headline metrics, implementing msrbench's -progress
// mode.
type Progress struct {
	mu   sync.Mutex
	w    io.Writer
	done int
}

// NewProgress returns a Progress writing to w.
func NewProgress(w io.Writer) *Progress { return &Progress{w: w} }

// OnStart implements Observer.
func (p *Progress) OnStart(index, total int, key string) {}

// OnFinish implements Observer.
func (p *Progress) OnFinish(index, total int, r Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if r.Err != nil {
		fmt.Fprintf(p.w, "[%d/%d] %-40s FAILED (%s): %v\n", p.done, total, r.Key, r.Wall.Round(time.Millisecond), r.Err)
		return
	}
	fmt.Fprintf(p.w, "[%d/%d] %-40s cycles=%-12d ipc=%-6.3f wall=%s\n",
		p.done, total, r.Key, r.Stats.Cycles, r.Stats.IPC(), r.Wall.Round(time.Millisecond))
}

// JSONStream emits one JSON object per finished job, giving sweeps a
// machine-readable result stream. Encoding failures (a full disk, a
// closed pipe) do not panic the worker pool; the first one is recorded
// and reported by Err, so callers can distinguish a complete stream from
// a truncated file that merely looks complete.
type JSONStream struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONStream returns a JSONStream writing to w.
func NewJSONStream(w io.Writer) *JSONStream { return &JSONStream{enc: json.NewEncoder(w)} }

// jobJSON is the wire shape of one job result.
type jobJSON struct {
	Key              string         `json:"key"`
	Program          string         `json:"program,omitempty"`
	Engine           string         `json:"engine,omitempty"`
	Cycles           uint64         `json:"cycles,omitempty"`
	Retired          uint64         `json:"retired,omitempty"`
	IPC              float64        `json:"ipc,omitempty"`
	MIPS             float64        `json:"mips,omitempty"`
	WallNS           int64          `json:"wall_ns"`
	Error            string         `json:"error,omitempty"`
	Stats            *stats.Stats   `json:"stats,omitempty"`
	Intervals        []obs.Interval `json:"intervals,omitempty"`
	IntervalsDropped int            `json:"intervals_dropped,omitempty"`
	// Multi-fidelity outcome; all omitted for full-detail runs, keeping
	// their stream records byte-identical to earlier versions.
	Extrapolated    bool    `json:"extrapolated,omitempty"`
	Windows         int     `json:"windows,omitempty"`
	FastForwarded   uint64  `json:"fast_forwarded,omitempty"`
	TotalRetired    uint64  `json:"total_retired,omitempty"`
	ExtrapolatedIPC float64 `json:"extrapolated_ipc,omitempty"`
	IPCErrorEst     float64 `json:"ipc_error_est,omitempty"`
}

// OnStart implements Observer.
func (j *JSONStream) OnStart(index, total int, key string) {}

// OnFinish implements Observer.
func (j *JSONStream) OnFinish(index, total int, r Result) {
	rec := jobJSON{
		Key:              r.Key,
		Program:          r.Program,
		Engine:           r.EngineName,
		MIPS:             r.MIPS,
		WallNS:           r.Wall.Nanoseconds(),
		Stats:            r.Stats,
		Intervals:        r.Intervals,
		IntervalsDropped: r.IntervalsDropped,
		Extrapolated:     r.Extrapolated,
		Windows:          r.Windows,
		FastForwarded:    r.FastForwarded,
		TotalRetired:     r.TotalRetired,
		ExtrapolatedIPC:  r.ExtrapolatedIPC,
		IPCErrorEst:      r.IPCErrorEst,
	}
	if r.Stats != nil {
		rec.Cycles = r.Stats.Cycles
		rec.Retired = r.Stats.Retired
		rec.IPC = r.Stats.IPC()
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(rec); err != nil && j.err == nil {
		j.err = fmt.Errorf("sim: json stream: encoding %s: %w", r.Key, err)
	}
}

// Err returns the first encoding failure of the stream, nil if every
// record was written. Check it after the sweep: a non-nil error means
// the output file is truncated.
func (j *JSONStream) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// IntervalStream emits every finished job's interval-telemetry records
// (Result.Intervals), each annotated with the job key so one file can
// carry a whole sweep. The NDJSON form writes one object per interval;
// the CSV form writes one header plus one row per interval with the key
// as the first column. Like JSONStream, the first write failure is
// recorded and reported by Err rather than panicking the worker pool.
type IntervalStream struct {
	mu          sync.Mutex
	w           io.Writer
	csv         bool
	wroteHeader bool
	err         error
}

// NewIntervalStream returns an IntervalStream writing NDJSON to w.
func NewIntervalStream(w io.Writer) *IntervalStream { return &IntervalStream{w: w} }

// NewIntervalCSVStream returns an IntervalStream writing CSV to w.
func NewIntervalCSVStream(w io.Writer) *IntervalStream { return &IntervalStream{w: w, csv: true} }

// keyedInterval is the NDJSON wire shape: the interval's own fields plus
// the job key.
type keyedInterval struct {
	Key string `json:"key"`
	obs.Interval
}

// OnStart implements Observer.
func (s *IntervalStream) OnStart(index, total int, key string) {}

// OnFinish implements Observer.
func (s *IntervalStream) OnFinish(index, total int, r Result) {
	if len(r.Intervals) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if s.csv {
		s.err = s.writeCSV(r)
		return
	}
	enc := json.NewEncoder(s.w)
	for i := range r.Intervals {
		if err := enc.Encode(&keyedInterval{Key: r.Key, Interval: r.Intervals[i]}); err != nil {
			s.err = fmt.Errorf("sim: interval stream: encoding %s: %w", r.Key, err)
			return
		}
	}
}

func (s *IntervalStream) writeCSV(r Result) error {
	if !s.wroteHeader {
		if _, err := fmt.Fprintln(s.w, "key,"+obs.CSVHeader()); err != nil {
			return fmt.Errorf("sim: interval stream: writing header: %w", err)
		}
		s.wroteHeader = true
	}
	for i := range r.Intervals {
		if _, err := fmt.Fprintln(s.w, r.Key+","+r.Intervals[i].CSVRow()); err != nil {
			return fmt.Errorf("sim: interval stream: writing %s: %w", r.Key, err)
		}
	}
	return nil
}

// Err returns the first write failure of the stream, nil if every record
// was written.
func (s *IntervalStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
