package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"mssr/internal/ckpt"
	"mssr/internal/core"
	"mssr/internal/emu"
	"mssr/internal/isa"
	"mssr/internal/obs"
	"mssr/internal/stats"
)

// This file is the phase-selection half of checkpointed multi-fidelity
// sampling: a one-time profiling pass tiles the program uniformly and
// records each tile's signature vector (IPC, reuse rate, MPKI, branch
// MPKI), small-k k-means clusters the tiles into phases, and the job run
// simulates one representative window per phase — weighted by cluster
// population, SimPoint-style — instead of every uniform tile. The
// profiling pass captures a checkpoint at every tile boundary and
// persists its summary through the checkpoint store, so a warm sweep
// does no profiling (and no functional fast-forward) at all.

// profileVersion guards the persisted profile blob; readers discard
// versions they do not know and re-profile.
const profileVersion = 1

// phaseK is the clustering arity: enough clusters to separate the
// workloads' coarse phases at the standard 48-tile profile without
// over-fragmenting small-period runs. k is clamped to the tile count.
const phaseK = 8

// phaseProfile is the persisted outcome of one profiling pass over one
// program + fidelity geometry: where each uniform tile's window starts
// (a functional instruction position, which is also its checkpoint
// name), the tile signature vectors, and the program totals a
// phase-selected run reports without re-running the tail.
type phaseProfile struct {
	Version        int      `json:"version"`
	FastForward    uint64   `json:"fast_forward"`
	DetailedWindow uint64   `json:"detailed_window"`
	Periods        int      `json:"periods"`
	Pos            []uint64 `json:"pos"`
	// Pre is each tile's warmup checkpoint position: warmupLead
	// instructions before the window start, where a phase-selected run
	// restores and re-trains the caches and predictors in excluded
	// detail before measuring the window itself.
	Pre   []uint64  `json:"pre"`
	IPC   []float64 `json:"ipc"`
	Reuse []float64 `json:"reuse"`
	MPKI  []float64 `json:"mpki"`
	// JumpIPC is the calibration measurement: each representative tile's
	// window IPC at the canonical profiling configuration, measured the
	// way a phase-selected run measures it (checkpoint jump plus detailed
	// warmup lead) rather than the way the sequential profiling pass does
	// (warmed functional skip). A sweep divides its own measurement by
	// this figure to isolate the config effect from the jump treatment.
	// Zero at non-representative tiles.
	JumpIPC      []float64  `json:"jump_ipc"`
	BranchMPKI   []float64  `json:"branch_mpki"`
	TotalRetired uint64     `json:"total_retired"`
	Arch         emu.Result `json:"arch"`
}

// valid reports whether a decoded profile is usable: current version,
// matching geometry, and coherent per-tile arrays.
func (p *phaseProfile) valid(s *Spec) bool {
	n := len(p.Pos)
	return p.Version == profileVersion && n > 0 &&
		p.FastForward == s.FastForward && p.DetailedWindow == s.DetailedWindow &&
		p.Periods == s.SamplePeriods && len(p.Pre) == n && len(p.JumpIPC) == n &&
		len(p.IPC) == n && len(p.Reuse) == n && len(p.MPKI) == n && len(p.BranchMPKI) == n
}

// warmupLead is how many instructions of excluded detailed execution
// precede each phase-selected measurement window: the jump lands with
// the previous representative's (unrelated) cache and predictor state,
// and the lead re-trains them on the window's own approach path. Two
// windows' worth keeps a representative's total detail at 3x a uniform
// period's 1.25x while recovering most of the warmed-skip accuracy.
func warmupLead(s *Spec) uint64 { return 2 * s.DetailedWindow }

// profileKey returns the checkpoint-store key of the spec's phase
// profile. Unlike raw checkpoints, a profile depends on the fidelity
// geometry (it describes the uniform tiling), so the key carries it.
func profileKey(s *Spec) string {
	var sb strings.Builder
	s.writeProgramKey(&sb)
	fmt.Fprintf(&sb, "#profile%d+ff%d+dw%d+sp%d", profileVersion, s.FastForward, s.DetailedWindow, s.SamplePeriods)
	return sb.String()
}

// profileFor returns the phase profile for the spec's program + fidelity
// geometry, computing it at most once per Runner (single-flight) and
// reusing a profile persisted in the checkpoint store when one exists.
func (r *Runner) profileFor(ctx context.Context, s *Spec, prog *isa.Program, store *ckpt.Store) (*phaseProfile, error) {
	key := profileKey(s)
	for {
		r.profMu.Lock()
		if p, ok := r.profiles[key]; ok {
			r.profMu.Unlock()
			return p, nil
		}
		if ch, running := r.profRuns[key]; running {
			r.profMu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue // the flight finished; re-check the cache
		}
		if r.profiles == nil {
			r.profiles = make(map[string]*phaseProfile)
			r.profRuns = make(map[string]chan struct{})
		}
		ch := make(chan struct{})
		r.profRuns[key] = ch
		r.profMu.Unlock()

		p, err := r.buildProfile(ctx, s, prog, store, key)
		r.profMu.Lock()
		if err == nil {
			r.profiles[key] = p
		}
		delete(r.profRuns, key)
		close(ch)
		r.profMu.Unlock()
		return p, err
	}
}

// buildProfile loads a persisted profile or runs the profiling pass: a
// uniform sequential run of the canonical profiling configuration (the
// default multi-stream engine, warmed functional skips), which captures
// a checkpoint at every tile boundary and warmup position as a side
// effect, followed by a calibration pass that re-measures each selected
// representative the way a phase-selected run will (checkpoint jump
// plus detailed warmup lead). The profile's features only steer
// clustering and its IPC figures only anchor the ratio estimate — the
// job's own windows are measured with the job's configuration — so one
// canonical profile serves every config sweeping the program.
func (r *Runner) buildProfile(ctx context.Context, s *Spec, prog *isa.Program, store *ckpt.Store, key string) (*phaseProfile, error) {
	if store != nil {
		if blob, ok := store.Get(key); ok {
			var p phaseProfile
			if err := json.Unmarshal(blob, &p); err == nil && p.valid(s) {
				return &p, nil
			}
		}
	}
	ps := Spec{
		Workload:       s.Workload,
		Program:        s.Program,
		Scale:          s.Scale,
		Engine:         EngineRGID,
		VerifyArch:     true, // records the program's final state in the profile
		Warm:           true, // warmed skips: the tile IPCs anchor the estimate
		FastForward:    s.FastForward,
		DetailedWindow: s.DetailedWindow,
		SamplePeriods:  s.SamplePeriods,
	}
	p := &phaseProfile{
		Version:        profileVersion,
		FastForward:    s.FastForward,
		DetailedWindow: s.DetailedWindow,
		Periods:        s.SamplePeriods,
	}
	c := core.New(prog, core.MultiStreamConfig(4, 64))
	var pres Result
	r.runSequential(ctx, &ps, prog, c, &pres, store, func(pre, pos uint64, win *stats.Stats) {
		var br float64
		if win.Retired > 0 {
			br = 1000 * float64(win.BranchMispredicts) / float64(win.Retired)
		}
		p.Pos = append(p.Pos, pos)
		p.Pre = append(p.Pre, pre)
		p.IPC = append(p.IPC, win.IPC())
		p.Reuse = append(p.Reuse, win.ReuseRate())
		p.MPKI = append(p.MPKI, win.MPKI())
		p.BranchMPKI = append(p.BranchMPKI, br)
	})
	if pres.Err != nil {
		return nil, fmt.Errorf("phase profiling: %w", pres.Err)
	}
	if len(p.Pos) == 0 {
		return nil, fmt.Errorf("phase profiling: no sample windows (ff=%d exceeds the program)", s.FastForward)
	}
	p.TotalRetired = pres.TotalRetired
	p.Arch = pres.Arch

	// Calibration pass: measure each representative's window at the
	// canonical configuration exactly the way a phase-selected run will —
	// jump to the warmup checkpoint, re-train over the lead in excluded
	// detail, measure the window. The sweep's ratio of measured over
	// calibrated IPC then isolates the config effect: a sweep at the
	// canonical configuration reproduces this execution bit for bit, its
	// ratios come out exactly 1, and the estimate collapses to the
	// warm-profiled cluster means.
	p.JumpIPC = make([]float64, len(p.Pos))
	ckey := s.CheckpointKey()
	cem := emu.New(prog)
	cc := core.New(prog, core.MultiStreamConfig(4, 64))
	for i, rep := range selectPhases(p, phaseK) {
		if i > 0 {
			cc.ResetWindow(prog)
		}
		prePos, pos := p.Pre[rep.Tile], p.Pos[rep.Tile]
		if err := jumpTo(store, ckey, prePos, prog, cem, &pres); err != nil {
			return nil, fmt.Errorf("phase calibration: %w", err)
		}
		cc.EndWarmup()
		st := cem.State()
		cc.SeedFrom(&st)
		var warmStats, win stats.Stats
		if err := cc.RunWindow(ctx, pos-prePos, s.DetailedWindow, &warmStats, &win); err != nil {
			return nil, fmt.Errorf("phase calibration: %w", err)
		}
		if win.Cycles > 0 {
			p.JumpIPC[rep.Tile] = float64(win.Retired) / float64(win.Cycles)
		}
	}

	if store != nil {
		if blob, err := json.Marshal(p); err == nil {
			store.Put(key, blob)
		}
	}
	return p, nil
}

// jumpTo places the functional emulator at a phase window's warmup
// position: restored from the store when the checkpoint exists, emulated
// forward from the nearest point behind it otherwise (counting the
// executed instructions into res.FFExecuted) and captured for later
// runs.
func jumpTo(store *ckpt.Store, ckey string, prePos uint64, prog *isa.Program, em *emu.Emulator, res *Result) error {
	if store != nil && restoreBoundary(store, boundaryKey(ckey, prePos), em, res) {
		return nil
	}
	if em.Halted || em.Retired > prePos {
		em.Reset(prog)
	}
	delta := prePos - em.Retired
	em.FastForward(delta, nil)
	res.FFExecuted += delta
	if em.Retired != prePos || em.Halted {
		return fmt.Errorf("program ended before position %d (profile stale?)", prePos)
	}
	captureBoundary(store, boundaryKey(ckey, prePos), em)
	return nil
}

// phaseRep is one selected representative window: the uniform tile that
// sits closest to its cluster's centroid, weighted by how many tiles the
// cluster holds. MeanIPC carries the cluster's harmonic-mean profile
// IPC — tiles hold equal instruction counts, so cycles (and the
// program's aggregate IPC) add harmonically — and the phased estimate
// scales it by the representative's measured-over-calibrated ratio (a
// ratio estimator), so within-cluster IPC spread the clustering could
// not separate still reaches the weighted estimate.
type phaseRep struct {
	Tile    int
	Weight  int
	MeanIPC float64
}

func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		t := a[i] - b[i]
		d += t * t
	}
	return d
}

// selectPhases clusters the profile's per-tile signature vectors with
// deterministic small-k k-means — z-scored features, farthest-point
// (maximin) initialization from tile 0, Lloyd iterations with
// lowest-index tie-breaks, no randomness anywhere — and returns one
// representative per cluster, ordered most-populous first: the
// confidence order adaptive stopping consumes (the heaviest clusters
// dominate the weighted estimate, so they are sampled before any early
// stop).
func selectPhases(p *phaseProfile, k int) []phaseRep {
	n := len(p.Pos)
	if k > n {
		k = n
	}
	// z-score each signature dimension so no unit dominates the distance;
	// a constant dimension carries no phase signal and drops out.
	dims := [][]float64{p.IPC, p.Reuse, p.MPKI, p.BranchMPKI}
	feat := make([][]float64, n)
	for i := range feat {
		feat[i] = make([]float64, len(dims))
	}
	for d, col := range dims {
		var mean float64
		for _, v := range col {
			mean += v
		}
		mean /= float64(n)
		var ss float64
		for _, v := range col {
			ss += (v - mean) * (v - mean)
		}
		if ss == 0 {
			continue
		}
		std := math.Sqrt(ss / float64(n))
		for i, v := range col {
			feat[i][d] = (v - mean) / std
		}
	}

	// Maximin initialization: start from tile 0, then repeatedly add the
	// tile farthest from its nearest chosen centroid (strict > keeps the
	// lowest index on ties). Duplicate-feature tiles stop the growth —
	// fewer distinct signatures than k means fewer clusters.
	chosen := []int{0}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = dist2(feat[i], feat[0])
	}
	for len(chosen) < k {
		best, bestD := -1, 0.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		for i := range minDist {
			if d := dist2(feat[i], feat[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	k = len(chosen)
	cent := make([][]float64, k)
	for j, t := range chosen {
		cent[j] = append([]float64(nil), feat[t]...)
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, dist2(feat[i], cent[0])
			for j := 1; j < k; j++ {
				if d := dist2(feat[i], cent[j]); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for j := range sums {
			sums[j] = make([]float64, len(dims))
		}
		for i := 0; i < n; i++ {
			counts[assign[i]]++
			for d := range feat[i] {
				sums[assign[i]][d] += feat[i][d]
			}
		}
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				continue // an emptied cluster keeps its centroid
			}
			for d := range sums[j] {
				cent[j][d] = sums[j][d] / float64(counts[j])
			}
		}
	}

	var reps []phaseRep
	for j := 0; j < k; j++ {
		best, bestD, w := -1, 0.0, 0
		var cpiSum float64
		cpiN := 0
		for i := 0; i < n; i++ {
			if assign[i] != j {
				continue
			}
			w++
			if p.IPC[i] > 0 {
				cpiSum += 1 / p.IPC[i]
				cpiN++
			}
			if d := dist2(feat[i], cent[j]); best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			rep := phaseRep{Tile: best, Weight: w}
			if cpiSum > 0 {
				rep.MeanIPC = float64(cpiN) / cpiSum
			}
			reps = append(reps, rep)
		}
	}
	sort.Slice(reps, func(a, b int) bool {
		if reps[a].Weight != reps[b].Weight {
			return reps[a].Weight > reps[b].Weight
		}
		return reps[a].Tile < reps[b].Tile
	})
	return reps
}

// runPhased is the phase-selected execution path: the representative
// windows run in cluster-weight order, each seeded by restoring its
// warmup checkpoint — warmupLead instructions before the measured
// window — or, cold, by fast-forwarding the functional emulator
// straight to that recorded position (never replaying detail). The
// lead runs in measurement-excluded detail to re-train the caches and
// predictors on the window's own approach path. The program totals
// come from the profile, so a fully warm phased run emulates zero
// functional instructions.
func (r *Runner) runPhased(ctx context.Context, s *Spec, prog *isa.Program, c *core.Core, res *Result, store *ckpt.Store, prof *phaseProfile) {
	reps := selectPhases(prof, phaseK)
	em := emu.New(prog)
	ckey := s.CheckpointKey()

	agg := &stats.Stats{}
	var intervals []obs.Interval
	var winIPC, weights []float64
	var warmStats, win stats.Stats
	var detailRetired, detailCycles uint64
	windows, dropped := 0, 0
	minWin := 4
	if len(reps) < minWin {
		minWin = len(reps)
	}

	curWin := 0
	if r.OnInterval != nil {
		c.SetIntervalHook(func(iv *obs.Interval) {
			live := *iv
			live.Mode = obs.ModeDetail
			live.Window = curWin
			r.OnInterval(res.Index, res.Key, live)
		})
	}

	for _, rep := range reps {
		if windows > 0 {
			c.ResetWindow(prog)
		}
		// The window measures the profiled tile exactly; the run restores
		// (or cold-jumps to) the tile's warmup checkpoint and re-trains
		// the caches and predictors over the lead in excluded detail.
		prePos, pos := prof.Pre[rep.Tile], prof.Pos[rep.Tile]
		warmup := pos - prePos
		if err := jumpTo(store, ckey, prePos, prog, em, res); err != nil {
			res.Stats, res.Intervals, res.IntervalsDropped = agg, intervals, dropped
			res.Windows = windows
			res.Err = fmt.Errorf("phase jump: %w", err)
			return
		}
		c.EndWarmup()
		st := em.State()
		c.SeedFrom(&st)
		curWin = windows + 1
		if r.OnWindow != nil {
			r.OnWindow(res.Index, res.Key, curWin, len(reps))
		}
		runErr := c.RunWindow(ctx, warmup, s.DetailedWindow, &warmStats, &win)
		agg.Add(&win)
		windows++
		detailRetired += win.Retired
		detailCycles += win.Cycles
		if win.Cycles > 0 {
			ipc := float64(win.Retired) / float64(win.Cycles)
			// Ratio estimate: the measured window stands in for its whole
			// cluster, so project the cluster's mean warm-profiled IPC
			// through the representative's measured-over-calibrated ratio —
			// the jump treatment divides out, leaving the config effect.
			if j := prof.JumpIPC[rep.Tile]; j > 0 && rep.MeanIPC > 0 {
				ipc = rep.MeanIPC * ipc / j
			}
			winIPC = append(winIPC, ipc)
			weights = append(weights, float64(rep.Weight))
		}
		for _, iv := range c.Intervals() {
			iv.Mode = obs.ModeDetail
			iv.Window = windows
			intervals = append(intervals, iv)
		}
		dropped += c.IntervalsDropped()
		if runErr != nil {
			res.Stats, res.Intervals, res.IntervalsDropped = agg, intervals, dropped
			res.Windows = windows
			res.Err = runErr
			return
		}
		if converged(s.MaxErr, winIPC, minWin) {
			break
		}
	}

	res.Stats, res.Intervals, res.IntervalsDropped = agg, intervals, dropped
	res.Windows = windows
	res.Extrapolated = true
	res.TotalRetired = prof.TotalRetired
	if prof.TotalRetired >= detailRetired {
		res.FastForwarded = prof.TotalRetired - detailRetired
	}
	finalizeSampling(res, winIPC, weights, detailRetired, detailCycles)
	if s.VerifyArch {
		// The profile recorded the program's final architectural state
		// when it finished the reference emulation.
		res.Arch = prof.Arch
	}
}
