package sim

import (
	"testing"
	"time"

	"mssr/internal/core"
)

// TestCanonicalKeyGolden pins the exact canonical-key strings for a
// representative spec grid. These strings are a persistence format, not
// just an in-memory identity: the daemon's result cache, the on-disk
// store (internal/store) and the fleet's shard placement
// (internal/fleet) are all keyed on them, so changing how a key renders
// silently invalidates every stored result and re-homes every shard.
// Any diff here must be deliberate and release-noted; it is never a
// harmless refactor.
func TestCanonicalKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"workload only, smoke scale", Spec{Workload: "mcf"}, "mcf@s0/none"},
		{"paper scale elides the suffix", Spec{Workload: "mcf", Scale: 1}, "mcf/none"},
		{"explicit larger scale", Spec{Workload: "mcf", Scale: 3}, "mcf@s3/none"},
		{"rgid default geometry", Spec{Workload: "bfs", Engine: EngineRGID}, "bfs@s0/rgid-4x64"},
		{"rgid explicit default geometry renders identically",
			Spec{Workload: "bfs", Engine: EngineRGID, Streams: 4, Entries: 64}, "bfs@s0/rgid-4x64"},
		{"rgid wide geometry", Spec{Workload: "bfs", Engine: EngineRGID, Streams: 8, Entries: 128}, "bfs@s0/rgid-8x128"},
		{"ri default geometry", Spec{Workload: "pr", Engine: EngineRI}, "pr@s0/ri-64s4w"},
		{"dir-value", Spec{Workload: "astar", Engine: EngineDIRValue, Sets: 32, Ways: 2}, "astar@s0/dir-value-32s2w"},
		{"dir-name", Spec{Workload: "astar", Engine: EngineDIRName, Sets: 32, Ways: 2}, "astar@s0/dir-name-32s2w"},
		{"verified loads", Spec{Workload: "mcf", Engine: EngineRGID, Loads: LoadVerify}, "mcf@s0/rgid-4x64+loads=verify"},
		{"bloom loads", Spec{Workload: "mcf", Engine: EngineRGID, Loads: LoadBloom}, "mcf@s0/rgid-4x64+loads=bloom"},
		{"no load reuse", Spec{Workload: "mcf", Engine: EngineRGID, Loads: LoadNoReuse}, "mcf@s0/rgid-4x64+loads=none"},
		{"lockstep checker", Spec{Workload: "mcf", Engine: EngineRGID, Check: true}, "mcf@s0/rgid-4x64+check"},
		{"architectural verify", Spec{Workload: "mcf", Engine: EngineRGID, VerifyArch: true}, "mcf@s0/rgid-4x64+verify"},
		{"sampled", Spec{Workload: "mcf", Engine: EngineRGID, SampleInterval: 4096}, "mcf@s0/rgid-4x64+iv4096"},
		{"sampled with window",
			Spec{Workload: "mcf", Engine: EngineRGID, SampleInterval: 4096, SampleWindow: 32}, "mcf@s0/rgid-4x64+iv4096w32"},
		{"every modifier at once",
			Spec{Workload: "nested-mispred", Scale: 2, Engine: EngineRGID, Streams: 4, Entries: 64,
				Loads: LoadVerify, Check: true, VerifyArch: true, SampleInterval: 1024, SampleWindow: 8},
			"nested-mispred@s2/rgid-4x64+loads=verify+check+verify+iv1024w8"},
		{"fast-forward only (exact skip-then-detail)",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000}, "mcf@s0/rgid-4x64+ff50000"},
		{"fast-forward with one bounded window",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000},
			"mcf@s0/rgid-4x64+ff50000+dw5000"},
		{"sampled periods",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000, SamplePeriods: 8},
			"mcf@s0/rgid-4x64+ff50000+dw5000+sp8"},
		{"single period elides the sp suffix",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000, SamplePeriods: 1},
			"mcf@s0/rgid-4x64+ff50000+dw5000"},
		{"warmed fast-forward",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000, SamplePeriods: 8, Warm: true},
			"mcf@s0/rgid-4x64+ff50000+dw5000+sp8+warm"},
		{"fidelity composes after sampling, before tune",
			Spec{Workload: "mcf", Engine: EngineRGID, SampleInterval: 4096, FastForward: 50000,
				DetailedWindow: 5000, SamplePeriods: 4, Warm: true, TuneKey: "wide", Tune: func(c *core.Config) {}},
			"mcf@s0/rgid-4x64+iv4096+ff50000+dw5000+sp4+warm+wide"},
		{"label never leaks into the key",
			Spec{Label: "table1-row3", Workload: "mcf", Engine: EngineRGID}, "mcf@s0/rgid-4x64"},
		{"timeout never leaks into the key",
			Spec{Workload: "mcf", Engine: EngineRGID, Timeout: time.Minute}, "mcf@s0/rgid-4x64"},
		{"phase-selected sampling",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000,
				SamplePeriods: 48, PhaseSelect: PhaseKMeans},
			"mcf@s0/rgid-4x64+ff50000+dw5000+sp48+phase=kmeans"},
		{"uniform phase mode elides the suffix",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000,
				SamplePeriods: 48, PhaseSelect: PhaseUniform},
			"mcf@s0/rgid-4x64+ff50000+dw5000+sp48"},
		{"adaptive stopping bound",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000,
				SamplePeriods: 48, MaxErr: 0.02},
			"mcf@s0/rgid-4x64+ff50000+dw5000+sp48+maxerr0.02"},
		{"checkpoints disabled",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000,
				SamplePeriods: 48, Warm: true, NoCheckpoint: true},
			"mcf@s0/rgid-4x64+ff50000+dw5000+sp48+warm+nockpt"},
		{"every fidelity modifier at once",
			Spec{Workload: "mcf", Scale: 2, Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000,
				SamplePeriods: 48, Warm: true, PhaseSelect: PhaseKMeans, MaxErr: 0.015, NoCheckpoint: true},
			"mcf@s2/rgid-4x64+ff50000+dw5000+sp48+warm+phase=kmeans+maxerr0.015+nockpt"},
	}
	for _, tc := range cases {
		if got := tc.spec.CanonicalKey(); got != tc.want {
			t.Errorf("%s: CanonicalKey() = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestCheckpointKeyGolden pins the checkpoint-family and shard keys.
// CheckpointKey names persisted functional states (the daemon's disk
// tier outlives processes), and ShardKey decides fleet placement, so
// both render formats are as frozen as the canonical key itself.
func TestCheckpointKeyGolden(t *testing.T) {
	cases := []struct {
		name                string
		spec                Spec
		wantCkpt, wantShard string
	}{
		{"program identity only, config stripped",
			Spec{Workload: "mcf", Engine: EngineRGID, Streams: 8, Entries: 128,
				FastForward: 50000, DetailedWindow: 5000, SamplePeriods: 48, Warm: true},
			"mcf@s0", "mcf@s0"},
		{"paper scale elides the suffix",
			Spec{Workload: "mcf", Scale: 1, Engine: EngineRGID, FastForward: 50000},
			"mcf", "mcf"},
		{"phase selection and bounds stay out of the checkpoint family",
			Spec{Workload: "astar", Scale: 2, Engine: EngineRI, FastForward: 50000,
				DetailedWindow: 5000, SamplePeriods: 48, PhaseSelect: PhaseKMeans, MaxErr: 0.02},
			"astar@s2", "astar@s2"},
		{"full-detail work shards on the canonical key",
			Spec{Workload: "mcf", Engine: EngineRGID},
			"mcf@s0", "mcf@s0/rgid-4x64"},
		{"opting out of checkpoints shards on the canonical key",
			Spec{Workload: "mcf", Engine: EngineRGID, FastForward: 50000, DetailedWindow: 5000,
				SamplePeriods: 48, NoCheckpoint: true},
			"mcf@s0", "mcf@s0/rgid-4x64+ff50000+dw5000+sp48+nockpt"},
	}
	for _, tc := range cases {
		if got := tc.spec.CheckpointKey(); got != tc.wantCkpt {
			t.Errorf("%s: CheckpointKey() = %q, want %q", tc.name, got, tc.wantCkpt)
		}
		if got := tc.spec.ShardKey(); got != tc.wantShard {
			t.Errorf("%s: ShardKey() = %q, want %q", tc.name, got, tc.wantShard)
		}
	}
}
