package sim

import (
	"context"
	"testing"

	"mssr/internal/trace"
)

type discardTracer struct{}

func (discardTracer) Emit(trace.Event) {}

// poolSweep builds a sweep that exercises core reuse: more jobs than
// workers, alternating between two workloads under the same geometry so
// pooled cores are Reset onto different programs back-to-back.
func poolSweep() []Spec {
	var specs []Spec
	for i := 0; i < 6; i++ {
		s := tinySpec()
		if i%2 == 1 {
			s.Workload = "linear-mispred"
		}
		s.VerifyArch = true
		specs = append(specs, s)
	}
	return specs
}

// TestPooledDeterminism is the end-to-end guard on the core pool: a
// sweep served by pooled (Reset) cores must be byte-identical, stat for
// stat, to the same sweep with pooling disabled, and every pooled run
// must still pass the architectural cross-check against the emulator.
func TestPooledDeterminism(t *testing.T) {
	ctx := context.Background()
	fresh, err := (&Runner{Jobs: 1, FreshCores: true}).Run(ctx, poolSweep())
	if err != nil {
		t.Fatal(err)
	}
	// Jobs=1 forces every job through the same worker, so after the
	// first job each run reuses the pooled core from the previous one —
	// the hardest case for Reset hygiene (A, B, A, B, ...).
	pooled, err := (&Runner{Jobs: 1}).Run(ctx, poolSweep())
	if err != nil {
		t.Fatal(err)
	}
	for i := range pooled {
		want, got := statsBytes(t, fresh[i]), statsBytes(t, pooled[i])
		if string(got) != string(want) {
			t.Errorf("job %d: pooled stats diverge from fresh core:\nfresh:  %s\npooled: %s", i, want, got)
		}
		if pooled[i].Arch.Retired == 0 || pooled[i].Arch != fresh[i].Arch {
			t.Errorf("job %d: architectural state diverged on pooled core", i)
		}
		if pooled[i].MIPS <= 0 {
			t.Errorf("job %d: MIPS not computed: %v", i, pooled[i].MIPS)
		}
	}

	// A parallel pooled sweep must agree with the serial one too (the
	// -race build of this test is what certifies the pool's concurrency).
	parallel, err := (&Runner{Jobs: 4}).Run(ctx, poolSweep())
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel {
		if string(statsBytes(t, parallel[i])) != string(statsBytes(t, fresh[i])) {
			t.Errorf("job %d: parallel pooled stats diverge", i)
		}
	}

	// Batched: the alternating sweep forms two lockstep groups (the even
	// jobs share one workload, the odd jobs the other), served by pooled
	// cores and one shared VerifyArch reference per group. Every result
	// must stay byte-identical to the unbatched fresh run.
	batched, err := (&Runner{Jobs: 1, Batching: true}).Run(ctx, poolSweep())
	if err != nil {
		t.Fatal(err)
	}
	for i := range batched {
		if string(statsBytes(t, batched[i])) != string(statsBytes(t, fresh[i])) {
			t.Errorf("job %d: batched stats diverge from fresh core:\nfresh:   %s\nbatched: %s",
				i, statsBytes(t, fresh[i]), statsBytes(t, batched[i]))
		}
		if batched[i].Arch.Retired == 0 || batched[i].Arch != fresh[i].Arch {
			t.Errorf("job %d: architectural state diverged under batching", i)
		}
		if batched[i].MIPS <= 0 {
			t.Errorf("job %d: batched MIPS not computed: %v", i, batched[i].MIPS)
		}
	}
}

// TestBatchedRunSubmissionOrder pins the ordering contract under batch
// grouping: grouping pulls non-adjacent specs (same workload) into one
// execution unit, but Run must still return results positionally — the
// i-th result describes the i-th submitted spec.
func TestBatchedRunSubmissionOrder(t *testing.T) {
	specs := poolSweep() // workloads interleave A,B,A,B,... so groups reorder execution
	r := &Runner{Jobs: 2, Batching: true}
	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i := range results {
		if results[i].Index != i {
			t.Errorf("result %d carries Index %d", i, results[i].Index)
		}
		if results[i].Key != specs[i].Key() {
			t.Errorf("result %d keyed %q, want %q", i, results[i].Key, specs[i].Key())
		}
		if results[i].Program == "" || results[i].Stats == nil {
			t.Errorf("result %d incomplete: program=%q stats=%v", i, results[i].Program, results[i].Stats)
		}
	}
}

// TestPoolKeyTracerUnpoolable pins the one spec class that must bypass
// the pool: traced runs, whose observer wiring is per-run.
func TestPoolKeyTracerUnpoolable(t *testing.T) {
	s := tinySpec()
	if key := s.poolKey(); key == "" {
		t.Fatal("plain spec should be poolable")
	}
	s.Tracer = discardTracer{}
	if key := s.poolKey(); key != "" {
		t.Fatalf("traced spec got pool key %q, want unpoolable", key)
	}
}
