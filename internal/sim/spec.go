// Package sim is the orchestration layer every entrypoint runs
// simulations through: cmd/msrsim, cmd/msrbench, internal/experiments and
// the top-level benchmarks all construct typed run specifications (Spec)
// and execute them on a bounded, cancellable worker pool (Runner).
//
// The package owns the plumbing the entrypoints used to duplicate —
// workload lookup, engine/config construction, parallel scheduling — and
// adds what ad-hoc goroutine pools lacked: deterministic result ordering,
// per-job panic recovery and timeouts, aggregation of every job error
// (not just the first), and observer hooks for progress reporting and
// machine-readable result streams.
package sim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"mssr/internal/core"
	"mssr/internal/isa"
	"mssr/internal/reuse"
	"mssr/internal/trace"
	"mssr/internal/workloads"
)

// Engine selects the squash-reuse engine of a run. The zero value is the
// no-reuse baseline.
type Engine int

// Engines.
const (
	// EngineNone is the no-reuse baseline core.
	EngineNone Engine = iota
	// EngineRGID is the paper's multi-stream mechanism (Streams/Entries).
	EngineRGID
	// EngineRI is the Register Integration baseline (Sets/Ways).
	EngineRI
	// EngineDIRValue is Dynamic Instruction Reuse, value scheme (Sets/Ways).
	EngineDIRValue
	// EngineDIRName is Dynamic Instruction Reuse, name scheme (Sets/Ways).
	EngineDIRName
)

func (e Engine) String() string {
	switch e {
	case EngineNone:
		return "none"
	case EngineRGID:
		return "rgid"
	case EngineRI:
		return "ri"
	case EngineDIRValue:
		return "dir-value"
	case EngineDIRName:
		return "dir-name"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine maps the command-line engine names onto Engine values.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "none", "":
		return EngineNone, nil
	case "rgid":
		return EngineRGID, nil
	case "ri":
		return EngineRI, nil
	case "dir", "dir-value":
		return EngineDIRValue, nil
	case "dir-name":
		return EngineDIRName, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (none, rgid, ri, dir-value, dir-name)", s)
}

// LoadPolicy selects the reused-load protection of a run. The zero value
// keeps the engine's default (verification).
type LoadPolicy int

// Load policies.
const (
	// LoadDefault keeps the engine's default policy.
	LoadDefault LoadPolicy = iota
	// LoadVerify re-executes reused loads and compares values.
	LoadVerify
	// LoadBloom blocks reuse of loads hitting the store Bloom filter.
	LoadBloom
	// LoadNoReuse never reuses loads.
	LoadNoReuse
)

func (p LoadPolicy) String() string {
	switch p {
	case LoadDefault:
		return "default"
	case LoadVerify:
		return "verify"
	case LoadBloom:
		return "bloom"
	case LoadNoReuse:
		return "none"
	}
	return fmt.Sprintf("loads(%d)", int(p))
}

// ParseLoadPolicy maps the command-line policy names onto LoadPolicy
// values.
func ParseLoadPolicy(s string) (LoadPolicy, error) {
	switch s {
	case "", "default":
		return LoadDefault, nil
	case "verify":
		return LoadVerify, nil
	case "bloom":
		return LoadBloom, nil
	case "none":
		return LoadNoReuse, nil
	}
	return 0, fmt.Errorf("sim: unknown load policy %q (verify, bloom, none)", s)
}

func (p LoadPolicy) reuse() (reuse.LoadPolicy, bool) {
	switch p {
	case LoadVerify:
		return reuse.LoadVerify, true
	case LoadBloom:
		return reuse.LoadBloom, true
	case LoadNoReuse:
		return reuse.LoadNoReuse, true
	}
	return 0, false
}

// PhaseMode selects how a multi-fidelity run places its sample windows.
// The zero value is the uniform tiling every release before phase
// selection used.
type PhaseMode int

// Phase-selection modes.
const (
	// PhaseUniform tiles SamplePeriods windows uniformly across the
	// program (one {fast-forward, window} pair per period).
	PhaseUniform PhaseMode = iota
	// PhaseKMeans clusters the uniform tiles' signature vectors (IPC,
	// reuse rate, MPKI, branch MPKI, from a one-time checkpointed
	// profiling pass) with small-k k-means and simulates one
	// representative window per cluster, weighted by cluster population —
	// SimPoint-style region selection.
	PhaseKMeans
)

func (m PhaseMode) String() string {
	switch m {
	case PhaseUniform:
		return "uniform"
	case PhaseKMeans:
		return "kmeans"
	}
	return fmt.Sprintf("phase(%d)", int(m))
}

// ParsePhaseMode maps the command-line mode names onto PhaseMode values.
func ParsePhaseMode(s string) (PhaseMode, error) {
	switch s {
	case "", "uniform":
		return PhaseUniform, nil
	case "kmeans":
		return PhaseKMeans, nil
	}
	return 0, fmt.Errorf("sim: unknown phase mode %q (uniform, kmeans)", s)
}

// Spec is one fully-described simulation: which program to run and how to
// configure the core. A Spec is a value — copying it is cheap and safe —
// and Key() derives a canonical string identity used for result keying
// and error reporting.
type Spec struct {
	// Label, when non-empty, overrides the canonical key. The experiment
	// drivers use it to keep their "workload/config" result keys.
	Label string

	// Workload names a registry workload (built at Scale); Program is a
	// pre-built program. Exactly one must be set. Sharing one *isa.Program
	// across specs of a sweep is safe: the core never mutates it.
	Workload string
	Program  *isa.Program
	// Scale is the workload scale factor passed to the registry builder
	// (1 = the paper's standard scale; <1 selects the tiny validation
	// size). Ignored when Program is set.
	Scale int

	// Engine and its geometry. Zero geometry fields take the paper's
	// defaults (4x64 streams/entries, 64x4 sets/ways).
	Engine  Engine
	Streams int // EngineRGID: squashed streams tracked (N)
	Entries int // EngineRGID: squash-log entries per stream (P)
	Sets    int // EngineRI / EngineDIR*: table sets
	Ways    int // EngineRI / EngineDIR*: table ways

	// Loads selects the reused-load protection policy.
	Loads LoadPolicy
	// Check runs the lockstep functional checker at commit.
	Check bool
	// VerifyArch compares the final architectural state against the
	// functional emulator after the run; a mismatch is a job error.
	VerifyArch bool

	// SampleInterval, when positive, attaches the interval-telemetry
	// sampler (internal/obs): the core snapshots its counters every
	// SampleInterval cycles and the Result carries the derived per-interval
	// rates. Zero disables sampling.
	SampleInterval uint64
	// SampleWindow bounds the retained interval ring (0 = obs.DefaultWindow).
	SampleWindow int

	// Multi-fidelity execution (gem5-style mode switching). FastForward,
	// when positive, architecturally executes that many instructions on the
	// functional emulator before each detailed window instead of simulating
	// them cycle by cycle. DetailedWindow bounds each detailed window to
	// that many retired instructions; zero means the single window runs to
	// completion (an exact skip-then-measure run, still bit-for-bit
	// equivalent to full detail at the end state). SamplePeriods repeats
	// the {fast-forward, window} pair SimPoint-style (0 or 1 = one period);
	// with windows the run's Result is Extrapolated from the sampled
	// windows and carries an IPC-error estimate. Warm replays fast-forward
	// instructions into the cache hierarchy and branch predictor so each
	// window starts warm. All four are part of CanonicalKey: cached,
	// stored and fleet-sharded results stay content-sound.
	FastForward    uint64
	DetailedWindow uint64
	SamplePeriods  int
	Warm           bool

	// PhaseSelect places the sample windows: uniformly (the default), or
	// on k-means-selected representative phases weighted by cluster
	// population (PhaseKMeans, requiring SamplePeriods > 1). Part of
	// CanonicalKey: phase-selected results extrapolate differently.
	PhaseSelect PhaseMode
	// MaxErr, when positive, enables adaptive stopping: the run grows
	// sample windows in confidence order only until its own IPCErrorEst
	// (the relative standard error of the window IPC samples) drops to
	// MaxErr or below, instead of always running all SamplePeriods.
	// Requires SamplePeriods > 1. Part of CanonicalKey: the stopping
	// target changes which windows a result measured.
	MaxErr float64
	// NoCheckpoint opts the run out of the Runner's checkpoint store:
	// no boundary state is restored or captured and the functional
	// prefix is always re-emulated. Requires FastForward > 0. Part of
	// CanonicalKey so checkpoint accounting stays truthful per key.
	NoCheckpoint bool

	// Timeout bounds the job's wall time (0 = the Runner's default).
	Timeout time.Duration
	// Tracer, when set, receives pipeline events.
	Tracer trace.Tracer

	// Tune is an escape hatch applied to the built core.Config last, for
	// ablation knobs the typed fields do not cover. TuneKey names the
	// tuning in the canonical key and is required when Tune is set, so
	// tuned specs remain distinguishable.
	Tune    func(*core.Config)
	TuneKey string
}

// Validate reports whether the spec describes a runnable simulation.
func (s *Spec) Validate() error {
	var errs []error
	if s.Workload == "" && s.Program == nil {
		errs = append(errs, errors.New("no workload or program"))
	}
	if s.Workload != "" && s.Program != nil {
		errs = append(errs, errors.New("both workload and program set"))
	}
	if s.Workload != "" {
		if _, err := workloads.ByName(s.Workload); err != nil {
			errs = append(errs, err)
		}
	}
	if s.Scale < 0 {
		errs = append(errs, fmt.Errorf("negative scale %d", s.Scale))
	}
	switch s.Engine {
	case EngineNone, EngineRGID, EngineRI, EngineDIRValue, EngineDIRName:
	default:
		errs = append(errs, fmt.Errorf("unknown engine %d", int(s.Engine)))
	}
	for _, g := range []struct {
		name string
		v    int
	}{{"streams", s.Streams}, {"entries", s.Entries}, {"sets", s.Sets}, {"ways", s.Ways}} {
		if g.v < 0 {
			errs = append(errs, fmt.Errorf("negative %s %d", g.name, g.v))
		}
	}
	if _, ok := s.Loads.reuse(); !ok && s.Loads != LoadDefault {
		errs = append(errs, fmt.Errorf("unknown load policy %d", int(s.Loads)))
	}
	if s.SampleWindow < 0 {
		errs = append(errs, fmt.Errorf("negative sample window %d", s.SampleWindow))
	}
	if s.SampleWindow > 0 && s.SampleInterval == 0 {
		errs = append(errs, errors.New("SampleWindow set without SampleInterval"))
	}
	if s.DetailedWindow > 0 && s.FastForward == 0 {
		errs = append(errs, errors.New("DetailedWindow set without FastForward"))
	}
	if s.SamplePeriods < 0 {
		errs = append(errs, fmt.Errorf("negative sample periods %d", s.SamplePeriods))
	}
	if s.SamplePeriods > 1 && s.DetailedWindow == 0 {
		errs = append(errs, errors.New("SamplePeriods set without DetailedWindow"))
	}
	if s.Warm && s.FastForward == 0 {
		errs = append(errs, errors.New("Warm set without FastForward"))
	}
	switch s.PhaseSelect {
	case PhaseUniform:
	case PhaseKMeans:
		if s.SamplePeriods <= 1 {
			errs = append(errs, errors.New("PhaseKMeans needs SamplePeriods > 1"))
		}
	default:
		errs = append(errs, fmt.Errorf("unknown phase mode %d", int(s.PhaseSelect)))
	}
	if s.MaxErr < 0 {
		errs = append(errs, fmt.Errorf("negative max error %g", s.MaxErr))
	}
	if s.MaxErr > 0 && s.SamplePeriods <= 1 {
		errs = append(errs, errors.New("MaxErr needs SamplePeriods > 1"))
	}
	if s.NoCheckpoint && s.FastForward == 0 {
		errs = append(errs, errors.New("NoCheckpoint set without FastForward"))
	}
	if s.Timeout < 0 {
		errs = append(errs, fmt.Errorf("negative timeout %s", s.Timeout))
	}
	if s.Tune != nil && s.TuneKey == "" {
		errs = append(errs, errors.New("Tune set without TuneKey"))
	}
	if len(errs) > 0 {
		return fmt.Errorf("sim: invalid spec %s: %w", s.Key(), errors.Join(errs...))
	}
	return nil
}

// Key returns the spec's identity: the Label when set, otherwise the
// canonical key.
func (s *Spec) Key() string {
	if s.Label != "" {
		return s.Label
	}
	return s.CanonicalKey()
}

// CanonicalKey returns the spec's content identity — a canonical
// "program@scale/engine-geometry[+modifiers]" string that ignores the
// display Label, so two specs describing the same simulation share one
// key regardless of how their sweeps chose to label them. The serving
// layer's result cache and in-flight dedup are keyed on it; for
// workload-based specs it is a complete description of the run (the
// registry builders are deterministic), which is what makes cached
// results safe to share across jobs.
func (s *Spec) CanonicalKey() string {
	var sb strings.Builder
	s.writeProgramKey(&sb)
	sb.WriteByte('/')
	switch s.Engine {
	case EngineRGID:
		fmt.Fprintf(&sb, "rgid-%dx%d", s.streams(), s.entries())
	case EngineRI, EngineDIRValue, EngineDIRName:
		fmt.Fprintf(&sb, "%s-%ds%dw", s.Engine, s.sets(), s.ways())
	default:
		sb.WriteString(s.Engine.String())
	}
	if s.Loads != LoadDefault {
		fmt.Fprintf(&sb, "+loads=%s", s.Loads)
	}
	if s.Check {
		sb.WriteString("+check")
	}
	if s.VerifyArch {
		sb.WriteString("+verify")
	}
	// Sampling is part of the content identity: sampled results carry the
	// interval stream, so a cached unsampled result must not satisfy a
	// sampled request (and vice versa).
	if s.SampleInterval > 0 {
		fmt.Fprintf(&sb, "+iv%d", s.SampleInterval)
		if s.SampleWindow > 0 {
			fmt.Fprintf(&sb, "w%d", s.SampleWindow)
		}
	}
	// Fidelity parameters change what the result means (sampled windows vs
	// full detail), so they are content identity too: a cached full-detail
	// result must never satisfy a fast-forwarded request, and distinct
	// window geometries shard to their own fleet homes.
	if s.FastForward > 0 {
		fmt.Fprintf(&sb, "+ff%d", s.FastForward)
		if s.DetailedWindow > 0 {
			fmt.Fprintf(&sb, "+dw%d", s.DetailedWindow)
		}
		if s.SamplePeriods > 1 {
			fmt.Fprintf(&sb, "+sp%d", s.SamplePeriods)
		}
		if s.Warm {
			sb.WriteString("+warm")
		}
		if s.PhaseSelect != PhaseUniform {
			fmt.Fprintf(&sb, "+phase=%s", s.PhaseSelect)
		}
		if s.MaxErr > 0 {
			fmt.Fprintf(&sb, "+maxerr%s", strconv.FormatFloat(s.MaxErr, 'g', -1, 64))
		}
		if s.NoCheckpoint {
			sb.WriteString("+nockpt")
		}
	}
	if s.TuneKey != "" {
		sb.WriteString("+" + s.TuneKey)
	}
	return sb.String()
}

// writeProgramKey writes the spec's program identity — the leading
// component every derived key shares.
func (s *Spec) writeProgramKey(sb *strings.Builder) {
	switch {
	case s.Workload != "":
		sb.WriteString(s.Workload)
		if s.Scale != 1 {
			fmt.Fprintf(sb, "@s%d", s.Scale)
		}
	case s.Program != nil && s.Program.Name != "":
		sb.WriteString(s.Program.Name)
	default:
		sb.WriteString("?")
	}
}

// CheckpointKey returns the identity the checkpoint store keys off: the
// canonical key minus everything that varies within a sweep — engine,
// geometry, load policy, checking, sampling, warming and the fidelity
// suffix itself. A checkpoint is a functional architectural state at an
// absolute instruction position, and the deterministic emulator makes
// that state a function of the program alone, so every config of a
// batch, every re-run and every fidelity geometry over the same
// program+scale shares one checkpoint family. Individual entries append
// "#<position>" (the functional instruction count at the boundary) or
// "#end" (the program's final state).
//
// Like CanonicalKey, pre-built Programs are identified by Name: two
// distinct programs sharing a name would collide, so checkpointing is
// disabled for anonymous programs (see Runner).
func (s *Spec) CheckpointKey() string {
	var sb strings.Builder
	s.writeProgramKey(&sb)
	return sb.String()
}

// ShardKey returns the key fleet coordinators rendezvous-hash on: the
// CheckpointKey for checkpoint-eligible multi-fidelity specs, so every
// config sweeping the same program+scale homes to the same worker and
// warms that worker's checkpoint store, and the CanonicalKey for
// everything else (full-detail work keeps spreading across the fleet).
func (s *Spec) ShardKey() string {
	if s.FastForward > 0 && !s.NoCheckpoint {
		return s.CheckpointKey()
	}
	return s.CanonicalKey()
}

// poolKey identifies the spec's core construction for the Runner's core
// pooling: two specs with equal, non-empty pool keys build identical
// core.Configs, so a core built for one can be Reset and reused for the
// other. It is the CanonicalKey minus the program identity (pooled cores
// are re-targeted at a new program by Reset) and minus VerifyArch (a
// post-run comparison outside the core). Traced specs return "" — the
// tracer is per-run state baked into the config — which disables pooling
// for them.
func (s *Spec) poolKey() string {
	if s.Tracer != nil {
		return ""
	}
	var sb strings.Builder
	switch s.Engine {
	case EngineRGID:
		fmt.Fprintf(&sb, "rgid-%dx%d", s.streams(), s.entries())
	case EngineRI, EngineDIRValue, EngineDIRName:
		fmt.Fprintf(&sb, "%s-%ds%dw", s.Engine, s.sets(), s.ways())
	default:
		sb.WriteString(s.Engine.String())
	}
	if s.Loads != LoadDefault {
		fmt.Fprintf(&sb, "+loads=%s", s.Loads)
	}
	if s.Check {
		sb.WriteString("+check")
	}
	// The sampler is preallocated at construction, so sampled and
	// unsampled cores (and different geometries) are different builds.
	if s.SampleInterval > 0 {
		fmt.Fprintf(&sb, "+iv%d", s.SampleInterval)
		if s.SampleWindow > 0 {
			fmt.Fprintf(&sb, "w%d", s.SampleWindow)
		}
	}
	if s.TuneKey != "" {
		sb.WriteString("+" + s.TuneKey)
	}
	return sb.String()
}

// batchKey identifies which lockstep batch group the spec may join: all
// specs with the same key run the same instruction stream (one built
// program, one shared architectural replay, one VerifyArch reference)
// and are free to differ in everything per-variant — engine, geometry,
// load policy, sampling, tuning. ok=false marks the spec unbatchable:
// traced specs carry per-run state, per-spec timeouts have no meaning
// inside a group that shares a clock, and fast-forwarded specs do not
// retire the program from its entry (the lockstep batch shares one
// from-the-start architectural replay stream), so they always run as
// singletons through the sequential path even with Batching enabled.
func (s *Spec) batchKey() (string, bool) {
	if s.Tracer != nil || s.Timeout != 0 || s.FastForward > 0 {
		return "", false
	}
	switch {
	case s.Workload != "":
		return fmt.Sprintf("%s@s%d", s.Workload, s.Scale), true
	case s.Program != nil:
		// Pointer identity: two distinct Program values are never assumed
		// equal, even with matching names.
		return fmt.Sprintf("prog:%p", s.Program), true
	}
	return "", false
}

func (s *Spec) streams() int {
	if s.Streams > 0 {
		return s.Streams
	}
	return 4
}

func (s *Spec) entries() int {
	if s.Entries > 0 {
		return s.Entries
	}
	return 64
}

func (s *Spec) sets() int {
	if s.Sets > 0 {
		return s.Sets
	}
	return 64
}

func (s *Spec) ways() int {
	if s.Ways > 0 {
		return s.Ways
	}
	return 4
}

// BuildProgram resolves the spec's program: the pre-built Program if set,
// otherwise the named registry workload built at Scale.
func (s *Spec) BuildProgram() (*isa.Program, error) {
	if s.Program != nil {
		return s.Program, nil
	}
	return workloads.Build(s.Workload, s.Scale)
}

// Config builds the core configuration the spec describes.
func (s *Spec) Config() (core.Config, error) {
	var cfg core.Config
	switch s.Engine {
	case EngineNone:
		cfg = core.DefaultConfig()
	case EngineRGID:
		cfg = core.MultiStreamConfig(s.streams(), s.entries())
	case EngineRI:
		cfg = core.RIConfigOf(s.sets(), s.ways())
	case EngineDIRValue:
		cfg = core.DIRConfigOf(s.sets(), s.ways(), reuse.DIRValue)
	case EngineDIRName:
		cfg = core.DIRConfigOf(s.sets(), s.ways(), reuse.DIRName)
	default:
		return core.Config{}, fmt.Errorf("sim: unknown engine %d", int(s.Engine))
	}
	if lp, ok := s.Loads.reuse(); ok {
		cfg.MS.LoadPolicy = lp
		cfg.RI.LoadPolicy = lp
		cfg.DIR.LoadPolicy = lp
	}
	cfg.DebugCheck = s.Check
	cfg.SampleInterval = s.SampleInterval
	cfg.SampleWindow = s.SampleWindow
	cfg.Tracer = s.Tracer
	if s.Tune != nil {
		s.Tune(&cfg)
	}
	return cfg, nil
}
