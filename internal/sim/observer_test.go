package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// failAfterWriter accepts n writes, then fails every subsequent one
// with a distinct error so the test can check which failure is kept.
type failAfterWriter struct {
	n    int
	errs []error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n > 0 {
		w.n--
		return len(p), nil
	}
	err := errors.New("disk full")
	if len(w.errs) > 0 {
		err = w.errs[0]
		w.errs = w.errs[1:]
	}
	return 0, err
}

func TestJSONStreamStickyError(t *testing.T) {
	first := errors.New("disk full")
	second := errors.New("pipe closed")
	js := NewJSONStream(&failAfterWriter{n: 1, errs: []error{first, second}})

	ok := Result{Key: "a", Wall: time.Millisecond}
	js.OnFinish(0, 3, ok)
	if err := js.Err(); err != nil {
		t.Fatalf("Err() after successful write = %v, want nil", err)
	}

	js.OnFinish(1, 3, Result{Key: "b"})
	err := js.Err()
	if err == nil {
		t.Fatal("Err() = nil after a failed write")
	}
	if !errors.Is(err, first) {
		t.Errorf("Err() = %v, want wrapped %v", err, first)
	}
	if !strings.Contains(err.Error(), "b") {
		t.Errorf("Err() = %v, want the failing record's key in the message", err)
	}

	// Later failures must not displace the first: the stream was
	// truncated at the first failure, so that is the error to report.
	js.OnFinish(2, 3, Result{Key: "c"})
	if got := js.Err(); !errors.Is(got, first) {
		t.Errorf("Err() after second failure = %v, want sticky %v", got, first)
	}
}

func TestJSONStreamCompleteStream(t *testing.T) {
	var buf bytes.Buffer
	js := NewJSONStream(&buf)
	js.OnFinish(0, 2, Result{Key: "x", Err: errors.New("sim blew up")})
	js.OnFinish(1, 2, Result{Key: "y"})
	if err := js.Err(); err != nil {
		t.Fatalf("Err() = %v on a healthy writer", err)
	}
	dec := json.NewDecoder(&buf)
	var recs []map[string]any
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("decoding stream: %v", err)
		}
		recs = append(recs, m)
	}
	if len(recs) != 2 {
		t.Fatalf("stream has %d records, want 2", len(recs))
	}
	if recs[0]["error"] != "sim blew up" {
		t.Errorf("failed job's record = %v, want its error embedded", recs[0])
	}
}
