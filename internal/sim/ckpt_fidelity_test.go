package sim

import (
	"context"
	"reflect"
	"testing"

	"mssr/internal/ckpt"
	"mssr/internal/emu"
	"mssr/internal/workloads"
)

// contentOnly strips the execution-path observables (wall clock, MIPS,
// checkpoint hit/miss accounting, FFExecuted) and the identity fields
// that legitimately differ between a checkpoint-enabled spec and its
// NoCheckpoint reference, leaving exactly the result content the
// byte-identity contract covers: stats, intervals, windows,
// extrapolation figures and the architectural end state.
func contentOnly(r Result) Result {
	r.Index, r.Key, r.Spec = 0, "", Spec{}
	r.Wall, r.MIPS = 0, 0
	r.CkptHits, r.CkptMisses, r.FFExecuted = 0, 0, 0
	return r
}

// TestCheckpointDifferentialGrid pins the central soundness claim of
// checkpointed multi-fidelity sampling: across a 12-config grid (four
// engines × uniform / phase-selected / adaptive-stopping sampling), a
// run that restores its boundaries from the checkpoint store is
// byte-identical — stats, intervals, extrapolation, architectural end
// state — to the equivalent run that re-emulates every functional
// prefix, and a fully warm second run re-executes zero fast-forward
// instructions.
func TestCheckpointDifferentialGrid(t *testing.T) {
	engines := []Engine{EngineNone, EngineRGID, EngineRI, EngineDIRValue}
	modes := []struct {
		name   string
		phase  PhaseMode
		maxErr float64
	}{
		{"uniform", PhaseUniform, 0},
		{"kmeans", PhaseKMeans, 0},
		{"adaptive", PhaseUniform, 0.05},
	}
	for _, eng := range engines {
		for _, mode := range modes {
			t.Run(eng.String()+"/"+mode.name, func(t *testing.T) {
				spec := Spec{
					Workload: "mcf", Scale: 0, Engine: eng,
					FastForward: 1000, DetailedWindow: 500, SamplePeriods: 5,
					PhaseSelect: mode.phase, MaxErr: mode.maxErr,
					VerifyArch: true,
				}
				refSpec := spec
				refSpec.NoCheckpoint = true

				refRunner := &Runner{Jobs: 1}
				refRes, err := refRunner.Run(context.Background(), []Spec{refSpec})
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				ref := refRes[0]

				ck := &Runner{Jobs: 1, Checkpoints: ckpt.NewMemory(-1)}
				coldRes, err := ck.Run(context.Background(), []Spec{spec})
				if err != nil {
					t.Fatalf("cold checkpointed run: %v", err)
				}
				cold := coldRes[0]
				warmRes, err := ck.Run(context.Background(), []Spec{spec})
				if err != nil {
					t.Fatalf("warm checkpointed run: %v", err)
				}
				warm := warmRes[0]

				if !reflect.DeepEqual(contentOnly(ref), contentOnly(cold)) {
					t.Errorf("cold checkpointed result differs from re-emulated reference:\nref:  %+v\ncold: %+v",
						contentOnly(ref), contentOnly(cold))
				}
				if !reflect.DeepEqual(contentOnly(ref), contentOnly(warm)) {
					t.Errorf("warm checkpointed result differs from re-emulated reference:\nref:  %+v\nwarm: %+v",
						contentOnly(ref), contentOnly(warm))
				}
				if ref.CkptHits != 0 || ref.CkptMisses != 0 || warm.Windows == 0 {
					t.Fatalf("reference touched the checkpoint store (hits %d, misses %d) or warm run measured nothing",
						ref.CkptHits, ref.CkptMisses)
				}
				if warm.CkptHits == 0 {
					t.Errorf("warm run restored no checkpoints")
				}
				if warm.CkptMisses != 0 {
					t.Errorf("warm run missed %d boundaries the cold run should have captured", warm.CkptMisses)
				}
				if warm.FFExecuted != 0 {
					t.Errorf("warm run re-executed %d functional fast-forward instructions, want 0", warm.FFExecuted)
				}
			})
		}
	}
}

// TestSelectPhasesDeterministic pins the clustering: same profile, same
// representatives, weights that partition the tile count, and the
// most-populous-first order adaptive stopping relies on.
func TestSelectPhasesDeterministic(t *testing.T) {
	p := &phaseProfile{
		Pos:        []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120},
		IPC:        []float64{1.0, 1.1, 1.0, 3.0, 3.1, 3.0, 1.05, 3.05, 1.0, 0.2, 0.21, 0.2},
		Reuse:      []float64{0.1, 0.1, 0.1, 0.5, 0.5, 0.5, 0.1, 0.5, 0.1, 0.0, 0.0, 0.0},
		MPKI:       []float64{5, 5, 5, 1, 1, 1, 5, 1, 5, 20, 20, 20},
		BranchMPKI: []float64{4, 4, 4, 1, 1, 1, 4, 1, 4, 18, 18, 18},
	}
	a := selectPhases(p, phaseK)
	b := selectPhases(p, phaseK)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("selectPhases is nondeterministic:\n%v\n%v", a, b)
	}
	total := 0
	for i, rep := range a {
		total += rep.Weight
		if rep.Weight <= 0 || rep.Tile < 0 || rep.Tile >= len(p.Pos) {
			t.Fatalf("rep %d out of range: %+v", i, rep)
		}
		if i > 0 && a[i-1].Weight < rep.Weight {
			t.Fatalf("reps not in weight order: %v", a)
		}
	}
	if total != len(p.Pos) {
		t.Fatalf("cluster weights sum to %d, want %d (a partition of the tiles)", total, len(p.Pos))
	}
	// The three synthetic phases are well separated: clustering must not
	// collapse them into one.
	if len(a) < 3 {
		t.Fatalf("expected at least 3 clusters for 3 well-separated phases, got %d: %v", len(a), a)
	}
}

// TestAdaptiveStoppingStopsEarly: a loose error target must end a
// sampled run before all periods, and the reported estimate must meet
// the target it stopped at.
func TestAdaptiveStoppingStopsEarly(t *testing.T) {
	spec := Spec{
		Workload: "mcf", Scale: 0, Engine: EngineRGID,
		FastForward: 500, DetailedWindow: 250, SamplePeriods: 16,
		MaxErr: 0.5, // essentially "stop as soon as the floor allows"
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows >= 16 {
		t.Fatalf("adaptive stopping never fired: %d windows of 16", res.Windows)
	}
	if res.IPCErrorEst > spec.MaxErr {
		t.Fatalf("stopped with IPCErrorEst %.4f above the %.2f target", res.IPCErrorEst, spec.MaxErr)
	}
	if !res.Extrapolated || res.TotalRetired == 0 {
		t.Fatalf("early-stopped run lost its extrapolation: %+v", res)
	}
}

// TestCheckpointRestoreZeroAlloc is the sim-level allocation guard on
// the warm restore path: fetching a boundary from the store's memory
// tier and installing it into a warm emulator must not allocate, so
// checkpoint-warm sweeps cannot regress the core's steady-state
// discipline (TestSteadyStateZeroAllocs).
func TestCheckpointRestoreZeroAlloc(t *testing.T) {
	prog, err := workloads.Build("mcf", 0)
	if err != nil {
		t.Fatal(err)
	}
	em := emu.New(prog)
	em.FastForward(2000, nil)
	st := em.State()
	store := ckpt.NewMemory(-1)
	store.Put("mcf@s0#2000", st.AppendBinary(nil))

	if allocs := testing.AllocsPerRun(50, func() {
		blob, ok := store.Get("mcf@s0#2000")
		if !ok {
			t.Fatal("miss")
		}
		if err := em.RestoreBinary(blob); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm checkpoint restore allocates %.1f times per boundary", allocs)
	}
}

// BenchmarkCheckpointRestore measures the end-to-end warm boundary
// restore — store lookup plus emulator install — the operation that
// replaces O(instructions) of functional fast-forward on warm sweeps.
func BenchmarkCheckpointRestore(b *testing.B) {
	prog, err := workloads.Build("mcf", 0)
	if err != nil {
		b.Fatal(err)
	}
	em := emu.New(prog)
	em.FastForward(2000, nil)
	st := em.State()
	blob := st.AppendBinary(nil)
	store := ckpt.NewMemory(-1)
	store.Put("mcf@s0#2000", blob)
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok := store.Get("mcf@s0#2000")
		if !ok {
			b.Fatal("miss")
		}
		if err := em.RestoreBinary(got); err != nil {
			b.Fatal(err)
		}
	}
}
