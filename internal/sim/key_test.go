package sim

import (
	"testing"

	"mssr/internal/core"
)

// TestCanonicalKeyDistinct pins the contract the serving layer's
// content-addressed cache rests on: semantically distinct validated
// specs must never share a canonical key, because a collision would
// silently serve one configuration's cached result for another. The
// sweep enumerates workloads, scales, every engine with in-range
// geometries, load policies, the checker, architectural verification
// and tune keys — only key-relevant fields are varied, and geometry
// zeros (which mean "engine default") are excluded so every generated
// spec is pairwise distinct in meaning.
func TestCanonicalKeyDistinct(t *testing.T) {
	type geometry struct{ streams, entries, sets, ways int }
	engineGeoms := map[Engine][]geometry{
		EngineNone: {{}},
	}
	for _, streams := range []int{1, 2, 4, 8} {
		for _, entries := range []int{16, 64, 1024} {
			engineGeoms[EngineRGID] = append(engineGeoms[EngineRGID], geometry{streams: streams, entries: entries})
		}
	}
	for _, e := range []Engine{EngineRI, EngineDIRValue, EngineDIRName} {
		for _, sets := range []int{16, 64, 128} {
			for _, ways := range []int{1, 2, 4} {
				engineGeoms[e] = append(engineGeoms[e], geometry{sets: sets, ways: ways})
			}
		}
	}

	tune := func(*core.Config) {}
	seen := map[string]Spec{}
	count := 0
	for _, workload := range []string{"nested-mispred", "bfs", "astar"} {
		for _, scale := range []int{0, 1, 2} {
			for engine, geoms := range engineGeoms {
				for _, g := range geoms {
					for _, loads := range []LoadPolicy{LoadDefault, LoadVerify, LoadBloom, LoadNoReuse} {
						for _, check := range []bool{false, true} {
							for _, verify := range []bool{false, true} {
								for _, tuneKey := range []string{"", "wide-rob"} {
									s := Spec{
										Workload:   workload,
										Scale:      scale,
										Engine:     engine,
										Streams:    g.streams,
										Entries:    g.entries,
										Sets:       g.sets,
										Ways:       g.ways,
										Loads:      loads,
										Check:      check,
										VerifyArch: verify,
										TuneKey:    tuneKey,
									}
									if tuneKey != "" {
										s.Tune = tune
									}
									if err := s.Validate(); err != nil {
										t.Fatalf("sweep generated invalid spec: %v", err)
									}
									key := s.CanonicalKey()
									if prev, dup := seen[key]; dup {
										t.Fatalf("canonical key collision %q:\n  %+v\n  %+v", key, prev, s)
									}
									seen[key] = s
									count++
								}
							}
						}
					}
				}
			}
		}
	}
	if count != len(seen) || count == 0 {
		t.Fatalf("swept %d specs, got %d distinct keys", count, len(seen))
	}
	t.Logf("%d semantically distinct specs, %d distinct canonical keys", count, len(seen))
}

// TestCanonicalKeyIgnoresLabel pins that a display label never leaks
// into the cache identity, while Key() still honours it.
func TestCanonicalKeyIgnoresLabel(t *testing.T) {
	plain := Spec{Workload: "bfs", Scale: 1, Engine: EngineRGID, Streams: 2, Entries: 64}
	labelled := plain
	labelled.Label = "sweep-point-7"
	if plain.CanonicalKey() != labelled.CanonicalKey() {
		t.Errorf("label changed the canonical key: %q vs %q", plain.CanonicalKey(), labelled.CanonicalKey())
	}
	if labelled.Key() != "sweep-point-7" {
		t.Errorf("Key() = %q, want the label", labelled.Key())
	}
	if plain.Key() != plain.CanonicalKey() {
		t.Errorf("unlabelled Key() %q differs from canonical %q", plain.Key(), plain.CanonicalKey())
	}
}
