package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"mssr/internal/ckpt"
	"mssr/internal/core"
	"mssr/internal/emu"
	"mssr/internal/obs"
	"mssr/internal/stats"
)

// Result is the outcome of one spec's run. Results come back in spec
// order regardless of the completion order of the pool's workers.
type Result struct {
	// Index is the spec's position in the Run input.
	Index int
	// Key is the spec's resolved key (Spec.Key).
	Key string
	// Spec is the spec that produced this result.
	Spec Spec
	// Program is the resolved program name.
	Program string
	// EngineName is the constructed engine's self-description.
	EngineName string
	// Stats holds the run's counters. On a cycle-limit or cancellation
	// error it holds the counters up to the abort; on earlier failures it
	// is nil.
	Stats *stats.Stats
	// Intervals is the run's interval-telemetry stream, populated when the
	// spec set SampleInterval (nil otherwise). The slice is a copy — it
	// never aliases pooled-core state.
	Intervals []obs.Interval
	// IntervalsDropped counts intervals the sampler's bounded ring
	// overwrote before the run finished (0 = complete stream).
	IntervalsDropped int
	// Arch is the final architectural state (populated when VerifyArch is
	// set and the run completed).
	Arch emu.Result
	// Wall is the job's wall-clock duration.
	Wall time.Duration
	// Multi-fidelity outcome, populated only when the spec set FastForward
	// (all zero-valued otherwise, so full-detail results — and their JSON —
	// are unchanged). Stats then covers the measured detailed windows
	// only; TotalRetired is the whole program's dynamic instruction count
	// and FastForwarded the rest — the functional skips plus each window's
	// measurement-excluded detailed-warmup prefix — so Stats.Retired +
	// FastForwarded == TotalRetired always holds.
	//
	// Extrapolated marks a sampled run (DetailedWindow > 0): the program
	// finished on the functional emulator and ExtrapolatedIPC is the
	// window-sampled IPC estimate with IPCErrorEst its relative standard
	// error (0 with fewer than two windows). A fast-forward-only run
	// (DetailedWindow == 0) is exact, not extrapolated: the detailed core
	// ran to HALT and the architectural end state is bit-for-bit the
	// full-detail one.
	Extrapolated    bool
	Windows         int
	FastForwarded   uint64
	TotalRetired    uint64
	ExtrapolatedIPC float64
	IPCErrorEst     float64
	// Checkpoint accounting for multi-fidelity runs. CkptHits counts
	// sample-period boundaries (and the program-end state) restored from
	// the checkpoint store; CkptMisses counts lookups that had to
	// re-emulate instead. FFExecuted counts the functional instructions
	// this run actually emulated — skips, window replays and the tail —
	// as opposed to FastForwarded, which counts the instructions the
	// result did not measure in detail regardless of how their state was
	// obtained. A fully checkpoint-warm run reports FFExecuted == 0.
	// These are execution-path observables, not result content: byte
	// identity between cold and warm runs is defined over everything
	// else.
	CkptHits   int
	CkptMisses int
	FFExecuted uint64
	// MIPS is the job's simulated throughput: retired instructions per
	// host wall-clock microsecond (millions of simulated instructions
	// per second). Zero when the job failed before producing stats.
	MIPS float64
	// Err is the job's failure, nil on success. Panics inside the job are
	// recovered into errors; a timeout satisfies
	// errors.Is(Err, context.DeadlineExceeded).
	Err error
}

// Backend executes a batch of specs and returns one Result per spec, in
// spec order. *Runner is the in-process implementation; client.Remote
// submits the batch to an msrd daemon instead. Consumers that only sweep
// (the experiment drivers) depend on this interface so the same driver
// code runs locally or against a daemon.
type Backend interface {
	Run(ctx context.Context, specs []Spec) ([]Result, error)
}

// Runner executes specs on a bounded worker pool. The zero value is
// ready to use: NumCPU workers, no default timeout, no observer.
type Runner struct {
	// Jobs bounds concurrently running simulations (<=0 = NumCPU).
	Jobs int
	// Timeout bounds each job's wall time unless the spec sets its own
	// (0 = unbounded).
	Timeout time.Duration
	// Observer, when set, receives per-job start/finish notifications.
	Observer Observer
	// FreshCores disables core pooling: every job builds a new core.
	// Pooling relies on fresh==Reset equivalence (core.New initializes
	// through Core.Reset), so this exists for benchmarking the pooling
	// win, not for correctness escape hatches.
	FreshCores bool
	// OnInterval, when set, receives every telemetry interval live, at
	// the moment the core's sampler records it — before the run (or even
	// its current sample window) completes. index is the spec's position
	// in the Run input and key its resolved Spec.Key(). Multi-fidelity
	// runs arrive already annotated (Mode/Window), matching the records
	// the final Result carries. The callback fires on simulation worker
	// goroutines, possibly concurrently for different specs: it must be
	// thread-safe and must not block (events.Hub.Publish satisfies both).
	OnInterval func(index int, key string, iv obs.Interval)
	// OnWindow, when set, fires as each detailed window of a
	// multi-fidelity run begins: window is the 1-based sample period,
	// windows the configured period count. Same concurrency contract as
	// OnInterval.
	OnWindow func(index int, key string, window, windows int)

	// Batching groups compatible specs — same workload+scale (or the same
	// pre-built Program), no tracer, no per-spec timeout — into lockstep
	// batch groups executed by core.Batch: the program is built once per
	// group, every member core steps the shared instruction stream in
	// retire-count strides, commit-time checking consumes one shared
	// architectural replay, and VerifyArch runs the reference emulation
	// once per group. Per-spec results are bit-identical to unbatched
	// execution (the members are fully independent cores) and come back
	// in submission order regardless of how grouping reorders execution.
	// Result.Wall for a batch member is its own in-pipeline time, so
	// per-job MIPS accounting stays truthful. When the Runner has a
	// default Timeout it bounds each batch group at Timeout × group size
	// (members share one clock, so the per-job budget is pooled).
	Batching bool

	// Checkpoints is the store multi-fidelity jobs restore sample-period
	// boundary states from (and capture them into), keyed by
	// Spec.CheckpointKey. Nil selects a process-wide default bounded
	// in-memory store, created lazily and shared by every Runner, so
	// repeated sweeps warm each other even through the per-job Runners
	// the server constructs. Point it at a ckpt.Open store to persist
	// checkpoints across processes.
	Checkpoints *ckpt.Store

	// pools caches fully-built cores per pool key (engine + geometry +
	// config modifiers) so successive jobs with the same configuration
	// reuse the core's PRF/ROB/predictor-table allocations. Workers own
	// a core exclusively between Get and Put, which keeps the pooling
	// race-free.
	pools sync.Map // string -> *sync.Pool of *core.Core

	// profiles caches phase profiles (one per program + fidelity
	// geometry) with single-flight computation, backed by the checkpoint
	// store for cross-process reuse.
	profMu   sync.Mutex
	profiles map[string]*phaseProfile
	profRuns map[string]chan struct{}
}

// defaultCkpt is the process-wide fallback checkpoint store. Sharing one
// bounded in-memory store across Runners is what makes checkpoints
// effective under the server, which builds a fresh Runner per job.
var (
	defaultCkptOnce sync.Once
	defaultCkpt     *ckpt.Store
)

// ckptStore resolves the checkpoint store a spec's run uses: nil when
// the spec opted out or has no stable program identity to key off.
func (r *Runner) ckptStore(s *Spec) *ckpt.Store {
	if s.NoCheckpoint {
		return nil
	}
	if s.Workload == "" && (s.Program == nil || s.Program.Name == "") {
		return nil // anonymous programs would collide in the store
	}
	if r.Checkpoints != nil {
		return r.Checkpoints
	}
	defaultCkptOnce.Do(func() { defaultCkpt = ckpt.NewMemory(0) })
	return defaultCkpt
}

// pool returns the core pool for key, creating it on first use.
func (r *Runner) pool(key string) *sync.Pool {
	if p, ok := r.pools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := r.pools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// Run executes every spec and returns one Result per spec, in spec
// order. All specs are validated up front; nothing runs if any is
// invalid. Job failures (errors, panics, timeouts) do not stop the
// sweep: every remaining job still runs, and the returned error joins
// every failure wrapped with its job key, so callers see all failures
// and still have the successful results.
func (r *Runner) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	var verrs []error
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			verrs = append(verrs, err)
		}
	}
	if len(verrs) > 0 {
		return nil, errors.Join(verrs...)
	}
	if len(specs) == 0 {
		return nil, nil
	}

	results := make([]Result, len(specs))
	jobs := r.groupJobs(specs)
	workers := r.Jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				if job := jobs[j]; len(job) == 1 {
					i := job[0]
					key := specs[i].Key()
					if r.Observer != nil {
						r.Observer.OnStart(i, len(specs), key)
					}
					results[i] = r.runOne(ctx, i, specs[i])
					if r.Observer != nil {
						r.Observer.OnFinish(i, len(specs), results[i])
					}
				} else {
					r.runBatch(ctx, specs, job, results)
				}
			}
		}()
	}

	next := 0
dispatch:
	for ; next < len(jobs); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	// Jobs the cancellation prevented from starting still get a keyed
	// result so the output stays positional.
	for j := next; j < len(jobs); j++ {
		for _, i := range jobs[j] {
			results[i] = Result{Index: i, Key: specs[i].Key(), Spec: specs[i], Err: ctx.Err()}
		}
	}

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", results[i].Key, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// groupJobs partitions the spec indices into execution jobs: singleton
// jobs run through runOne exactly as an unbatched Runner would, and
// multi-member jobs run as one lockstep batch group. Without Batching
// every spec is its own job. Grouping never changes result positions —
// each job carries the original submission indices and results are
// written positionally.
func (r *Runner) groupJobs(specs []Spec) [][]int {
	jobs := make([][]int, 0, len(specs))
	if !r.Batching {
		for i := range specs {
			jobs = append(jobs, []int{i})
		}
		return jobs
	}
	groups := make(map[string]int) // batch key -> index into jobs
	for i := range specs {
		key, ok := specs[i].batchKey()
		if !ok {
			jobs = append(jobs, []int{i})
			continue
		}
		if j, seen := groups[key]; seen {
			jobs[j] = append(jobs[j], i)
			continue
		}
		groups[key] = len(jobs)
		jobs = append(jobs, []int{i})
	}
	return jobs
}

// runBatch executes one batch group — specs that share a program — in
// lockstep on a core.Batch, writing each member's Result at its original
// submission index. Per-member semantics match runOne: stats are cloned
// before pooled cores return, errors stay per-member, a member's MIPS is
// derived from its own in-pipeline wall time, and VerifyArch compares
// against a reference emulation that runs once for the whole group.
func (r *Runner) runBatch(ctx context.Context, specs []Spec, idxs []int, results []Result) {
	for _, i := range idxs {
		results[i] = Result{Index: i, Key: specs[i].Key(), Spec: specs[i]}
		if r.Observer != nil {
			r.Observer.OnStart(i, len(specs), results[i].Key)
		}
	}
	if t := r.Timeout; t > 0 {
		// Members share one clock, so the group pools its per-job budgets.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t*time.Duration(len(idxs)))
		defer cancel()
	}
	defer func() {
		p := recover()
		for _, i := range idxs {
			res := &results[i]
			if p != nil && res.Err == nil && res.Stats == nil {
				// A panic aborts the whole group; members without a
				// completed result share the failure.
				res.Err = fmt.Errorf("batch panic: %v\n%s", p, debug.Stack())
			}
			if res.Stats != nil && res.Wall > 0 {
				res.MIPS = float64(res.Stats.Retired) / res.Wall.Seconds() / 1e6
			}
			if r.Observer != nil {
				r.Observer.OnFinish(i, len(specs), *res)
			}
		}
	}()

	prog, err := specs[idxs[0]].BuildProgram()
	if err != nil {
		for _, i := range idxs {
			results[i].Err = err
		}
		return
	}
	cores := make([]*core.Core, 0, len(idxs))
	members := make([]int, 0, len(idxs))
	pools := make([]*sync.Pool, 0, len(idxs))
	for _, i := range idxs {
		s := &specs[i]
		results[i].Program = prog.Name
		cfg, err := s.Config()
		if err != nil {
			results[i].Err = err
			continue
		}
		var pl *sync.Pool
		if !r.FreshCores {
			if key := s.poolKey(); key != "" {
				pl = r.pool(key)
			}
		}
		var c *core.Core
		if pl != nil {
			if v := pl.Get(); v != nil {
				c = v.(*core.Core)
				c.Reset(prog)
			}
		}
		if c == nil {
			c = core.New(prog, cfg)
		}
		results[i].EngineName = c.EngineName()
		if r.OnInterval != nil {
			hi, hk := i, results[i].Key
			c.SetIntervalHook(func(iv *obs.Interval) { r.OnInterval(hi, hk, *iv) })
		}
		cores = append(cores, c)
		members = append(members, i)
		pools = append(pools, pl)
	}
	if len(cores) == 0 {
		return
	}
	b, err := core.NewBatch(cores, 0)
	if err != nil {
		for _, i := range members {
			results[i].Err = err
		}
		return
	}
	errs := b.Run(ctx)
	walls := b.Walls()

	var want emu.Result
	var wantErr error
	verified := false
	for k, i := range members {
		c := cores[k]
		res := &results[i]
		res.Stats = c.Stats.Clone()
		res.Intervals = c.Intervals()
		res.IntervalsDropped = c.IntervalsDropped()
		res.Wall = walls[k]
		runErr := errs[k]
		var got emu.Result
		if runErr == nil && specs[i].VerifyArch {
			got = c.Result()
		}
		c.SetIntervalHook(nil)
		if pools[k] != nil {
			pools[k].Put(c)
		}
		if runErr != nil {
			res.Err = runErr
			continue
		}
		if specs[i].VerifyArch {
			if !verified {
				want, wantErr = emu.RunProgram(prog, 1<<40)
				verified = true
			}
			if wantErr != nil {
				res.Err = fmt.Errorf("emulator: %w", wantErr)
				continue
			}
			if got != want {
				res.Err = fmt.Errorf("architectural mismatch:\ncore: %+v\nemu:  %+v", got, want)
				continue
			}
			res.Arch = got
		}
	}
}

// runOne executes a single spec, converting panics into job errors.
func (r *Runner) runOne(ctx context.Context, i int, s Spec) (res Result) {
	res = Result{Index: i, Key: s.Key(), Spec: s}
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
		res.Wall = time.Since(start)
		if res.Stats != nil && res.Wall > 0 {
			// Multi-fidelity jobs report effective throughput: every
			// program instruction retired (functionally or in detail) per
			// wall second, which is the figure the mode exists to improve.
			retired := res.Stats.Retired
			if res.TotalRetired > 0 {
				retired = res.TotalRetired
			}
			res.MIPS = float64(retired) / res.Wall.Seconds() / 1e6
		}
	}()

	prog, err := s.BuildProgram()
	if err != nil {
		res.Err = err
		return res
	}
	res.Program = prog.Name
	cfg, err := s.Config()
	if err != nil {
		res.Err = err
		return res
	}
	if t := s.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	} else if t := r.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}

	// Draw a pooled core when the spec is poolable, else build fresh. A
	// core that panicked mid-run is never returned to the pool (the
	// recover above exits before any Put).
	var pl *sync.Pool
	if !r.FreshCores {
		if key := s.poolKey(); key != "" {
			pl = r.pool(key)
		}
	}
	var c *core.Core
	if pl != nil {
		if v := pl.Get(); v != nil {
			c = v.(*core.Core)
			c.Reset(prog)
		}
	}
	if c == nil {
		c = core.New(prog, cfg)
	}
	// The result must not alias pooled-core state, which the next job
	// resets: clone the stats, and read the architectural state before
	// the core returns to the pool.
	res.EngineName = c.EngineName()
	if s.FastForward > 0 {
		r.runFidelity(ctx, &s, prog, c, &res)
		c.SetIntervalHook(nil)
		if pl != nil {
			pl.Put(c)
		}
		return res
	}
	if r.OnInterval != nil {
		hi, hk := i, res.Key
		c.SetIntervalHook(func(iv *obs.Interval) { r.OnInterval(hi, hk, *iv) })
	}
	runErr := c.RunContext(ctx)
	c.SetIntervalHook(nil)
	res.Stats = c.Stats.Clone()
	res.Intervals = c.Intervals()
	res.IntervalsDropped = c.IntervalsDropped()
	var got emu.Result
	if runErr == nil && s.VerifyArch {
		got = c.Result()
	}
	if pl != nil {
		pl.Put(c)
	}
	if runErr != nil {
		res.Err = runErr
		return res
	}
	if s.VerifyArch {
		want, err := emu.RunProgram(prog, 1<<40)
		if err != nil {
			res.Err = fmt.Errorf("emulator: %w", err)
			return res
		}
		if got != want {
			res.Err = fmt.Errorf("architectural mismatch:\ncore: %+v\nemu:  %+v", got, want)
			return res
		}
		res.Arch = got
	}
	return res
}

// Run executes a single spec synchronously and returns its result. The
// error is the result's Err wrapped with the job key.
func Run(ctx context.Context, spec Spec) (Result, error) {
	res, err := (&Runner{Jobs: 1}).Run(ctx, []Spec{spec})
	if err != nil {
		if len(res) == 1 {
			return res[0], err
		}
		return Result{Key: spec.Key(), Spec: spec}, err
	}
	return res[0], nil
}
