package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"mssr/internal/core"
	"mssr/internal/emu"
	"mssr/internal/obs"
	"mssr/internal/stats"
)

// Result is the outcome of one spec's run. Results come back in spec
// order regardless of the completion order of the pool's workers.
type Result struct {
	// Index is the spec's position in the Run input.
	Index int
	// Key is the spec's resolved key (Spec.Key).
	Key string
	// Spec is the spec that produced this result.
	Spec Spec
	// Program is the resolved program name.
	Program string
	// EngineName is the constructed engine's self-description.
	EngineName string
	// Stats holds the run's counters. On a cycle-limit or cancellation
	// error it holds the counters up to the abort; on earlier failures it
	// is nil.
	Stats *stats.Stats
	// Intervals is the run's interval-telemetry stream, populated when the
	// spec set SampleInterval (nil otherwise). The slice is a copy — it
	// never aliases pooled-core state.
	Intervals []obs.Interval
	// IntervalsDropped counts intervals the sampler's bounded ring
	// overwrote before the run finished (0 = complete stream).
	IntervalsDropped int
	// Arch is the final architectural state (populated when VerifyArch is
	// set and the run completed).
	Arch emu.Result
	// Wall is the job's wall-clock duration.
	Wall time.Duration
	// MIPS is the job's simulated throughput: retired instructions per
	// host wall-clock microsecond (millions of simulated instructions
	// per second). Zero when the job failed before producing stats.
	MIPS float64
	// Err is the job's failure, nil on success. Panics inside the job are
	// recovered into errors; a timeout satisfies
	// errors.Is(Err, context.DeadlineExceeded).
	Err error
}

// Backend executes a batch of specs and returns one Result per spec, in
// spec order. *Runner is the in-process implementation; client.Remote
// submits the batch to an msrd daemon instead. Consumers that only sweep
// (the experiment drivers) depend on this interface so the same driver
// code runs locally or against a daemon.
type Backend interface {
	Run(ctx context.Context, specs []Spec) ([]Result, error)
}

// Runner executes specs on a bounded worker pool. The zero value is
// ready to use: NumCPU workers, no default timeout, no observer.
type Runner struct {
	// Jobs bounds concurrently running simulations (<=0 = NumCPU).
	Jobs int
	// Timeout bounds each job's wall time unless the spec sets its own
	// (0 = unbounded).
	Timeout time.Duration
	// Observer, when set, receives per-job start/finish notifications.
	Observer Observer
	// FreshCores disables core pooling: every job builds a new core.
	// Pooling relies on fresh==Reset equivalence (core.New initializes
	// through Core.Reset), so this exists for benchmarking the pooling
	// win, not for correctness escape hatches.
	FreshCores bool

	// pools caches fully-built cores per pool key (engine + geometry +
	// config modifiers) so successive jobs with the same configuration
	// reuse the core's PRF/ROB/predictor-table allocations. Workers own
	// a core exclusively between Get and Put, which keeps the pooling
	// race-free.
	pools sync.Map // string -> *sync.Pool of *core.Core
}

// pool returns the core pool for key, creating it on first use.
func (r *Runner) pool(key string) *sync.Pool {
	if p, ok := r.pools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := r.pools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// Run executes every spec and returns one Result per spec, in spec
// order. All specs are validated up front; nothing runs if any is
// invalid. Job failures (errors, panics, timeouts) do not stop the
// sweep: every remaining job still runs, and the returned error joins
// every failure wrapped with its job key, so callers see all failures
// and still have the successful results.
func (r *Runner) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	var verrs []error
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			verrs = append(verrs, err)
		}
	}
	if len(verrs) > 0 {
		return nil, errors.Join(verrs...)
	}
	if len(specs) == 0 {
		return nil, nil
	}

	results := make([]Result, len(specs))
	workers := r.Jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				key := specs[i].Key()
				if r.Observer != nil {
					r.Observer.OnStart(i, len(specs), key)
				}
				results[i] = r.runOne(ctx, i, specs[i])
				if r.Observer != nil {
					r.Observer.OnFinish(i, len(specs), results[i])
				}
			}
		}()
	}

	next := 0
dispatch:
	for ; next < len(specs); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	// Jobs the cancellation prevented from starting still get a keyed
	// result so the output stays positional.
	for i := next; i < len(specs); i++ {
		results[i] = Result{Index: i, Key: specs[i].Key(), Spec: specs[i], Err: ctx.Err()}
	}

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", results[i].Key, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// runOne executes a single spec, converting panics into job errors.
func (r *Runner) runOne(ctx context.Context, i int, s Spec) (res Result) {
	res = Result{Index: i, Key: s.Key(), Spec: s}
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
		res.Wall = time.Since(start)
		if res.Stats != nil && res.Wall > 0 {
			res.MIPS = float64(res.Stats.Retired) / res.Wall.Seconds() / 1e6
		}
	}()

	prog, err := s.BuildProgram()
	if err != nil {
		res.Err = err
		return res
	}
	res.Program = prog.Name
	cfg, err := s.Config()
	if err != nil {
		res.Err = err
		return res
	}
	if t := s.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	} else if t := r.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}

	// Draw a pooled core when the spec is poolable, else build fresh. A
	// core that panicked mid-run is never returned to the pool (the
	// recover above exits before any Put).
	var pl *sync.Pool
	if !r.FreshCores {
		if key := s.poolKey(); key != "" {
			pl = r.pool(key)
		}
	}
	var c *core.Core
	if pl != nil {
		if v := pl.Get(); v != nil {
			c = v.(*core.Core)
			c.Reset(prog)
		}
	}
	if c == nil {
		c = core.New(prog, cfg)
	}
	// The result must not alias pooled-core state, which the next job
	// resets: clone the stats, and read the architectural state before
	// the core returns to the pool.
	res.EngineName = c.EngineName()
	runErr := c.RunContext(ctx)
	res.Stats = c.Stats.Clone()
	res.Intervals = c.Intervals()
	res.IntervalsDropped = c.IntervalsDropped()
	var got emu.Result
	if runErr == nil && s.VerifyArch {
		got = c.Result()
	}
	if pl != nil {
		pl.Put(c)
	}
	if runErr != nil {
		res.Err = runErr
		return res
	}
	if s.VerifyArch {
		want, err := emu.RunProgram(prog, 1<<40)
		if err != nil {
			res.Err = fmt.Errorf("emulator: %w", err)
			return res
		}
		if got != want {
			res.Err = fmt.Errorf("architectural mismatch:\ncore: %+v\nemu:  %+v", got, want)
			return res
		}
		res.Arch = got
	}
	return res
}

// Run executes a single spec synchronously and returns its result. The
// error is the result's Err wrapped with the job key.
func Run(ctx context.Context, spec Spec) (Result, error) {
	res, err := (&Runner{Jobs: 1}).Run(ctx, []Spec{spec})
	if err != nil {
		if len(res) == 1 {
			return res[0], err
		}
		return Result{Key: spec.Key(), Spec: spec}, err
	}
	return res[0], nil
}
