package sim

import (
	"context"
	"reflect"
	"testing"

	"mssr/internal/obs"
)

// TestFidelityExactMatchesFullDetail: a fast-forward-only spec (no
// window) is an exact run — the detailed core finishes the program and
// the architectural end state and total retired count are bit-for-bit
// the full-detail ones. VerifyArch performs that comparison inside the
// runner; this test additionally pins the fidelity accounting fields.
func TestFidelityExactMatchesFullDetail(t *testing.T) {
	r := &Runner{Jobs: 1}
	full, err := r.Run(context.Background(), []Spec{
		{Workload: "mcf", Scale: 0, Engine: EngineRGID, VerifyArch: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), []Spec{
		{Workload: "mcf", Scale: 0, Engine: EngineRGID, VerifyArch: true, Check: true, FastForward: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res[0]
	if f.Extrapolated {
		t.Error("ff-only run reported Extrapolated")
	}
	if f.Windows != 1 {
		t.Errorf("Windows = %d, want 1", f.Windows)
	}
	if f.Arch != full[0].Arch {
		t.Errorf("architectural state differs from full detail:\nfidelity: %+v\nfull:     %+v", f.Arch, full[0].Arch)
	}
	if f.TotalRetired != full[0].Stats.Retired {
		t.Errorf("TotalRetired = %d, want %d", f.TotalRetired, full[0].Stats.Retired)
	}
	if f.FastForwarded != 2000 {
		t.Errorf("FastForwarded = %d, want 2000", f.FastForwarded)
	}
	if f.Stats.Retired != f.TotalRetired-f.FastForwarded {
		t.Errorf("detailed retired %d != total %d - skipped %d", f.Stats.Retired, f.TotalRetired, f.FastForwarded)
	}
}

// TestFidelityExtrapolated pins the sampled mode: several
// {skip, window} periods, a functional tail, and an extrapolated IPC
// with an error estimate.
func TestFidelityExtrapolated(t *testing.T) {
	spec := Spec{
		Workload: "mcf", Scale: 0, Engine: EngineRGID, Check: true, Warm: true,
		FastForward: 1000, DetailedWindow: 500, SamplePeriods: 5,
		SampleInterval: 256,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Extrapolated {
		t.Fatal("windowed run not marked Extrapolated")
	}
	if res.Windows != 5 {
		t.Errorf("Windows = %d, want 5", res.Windows)
	}
	if res.TotalRetired != 14412 { // mcf@s0's dynamic length
		t.Errorf("TotalRetired = %d, want 14412", res.TotalRetired)
	}
	if res.Stats.Retired+res.FastForwarded != res.TotalRetired {
		t.Errorf("detailed %d + skipped %d != total %d", res.Stats.Retired, res.FastForwarded, res.TotalRetired)
	}
	if res.ExtrapolatedIPC <= 0 {
		t.Errorf("ExtrapolatedIPC = %v, want > 0", res.ExtrapolatedIPC)
	}
	if res.IPCErrorEst < 0 {
		t.Errorf("IPCErrorEst = %v, want >= 0", res.IPCErrorEst)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("sampled fidelity run produced no intervals")
	}
	windows := map[int]bool{}
	for _, iv := range res.Intervals {
		if iv.Mode != obs.ModeDetail {
			t.Fatalf("interval mode %q, want %q", iv.Mode, obs.ModeDetail)
		}
		windows[iv.Window] = true
	}
	for w := 1; w <= res.Windows; w++ {
		if !windows[w] {
			t.Errorf("no interval annotated for window %d", w)
		}
	}
}

// TestFidelityPooledDeterminism: a pooled, reused core must produce the
// same multi-fidelity result as fresh cores — the Reset+SeedFrom path
// leaks nothing between periods or jobs.
func TestFidelityPooledDeterminism(t *testing.T) {
	specs := []Spec{
		{Workload: "mcf", Scale: 0, Engine: EngineRGID, Check: true, Warm: true,
			FastForward: 1000, DetailedWindow: 500, SamplePeriods: 5, SampleInterval: 256},
		{Workload: "mcf", Scale: 0, Engine: EngineRGID, Check: true, Warm: true,
			FastForward: 1000, DetailedWindow: 500, SamplePeriods: 5, SampleInterval: 256},
		{Workload: "cc", Scale: 0, Engine: EngineRGID, Check: true, Warm: true,
			FastForward: 1000, DetailedWindow: 500, SamplePeriods: 5, SampleInterval: 256},
	}
	pooled, err := (&Runner{Jobs: 1}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := (&Runner{Jobs: 1, FreshCores: true}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		p, f := pooled[i], fresh[i]
		if !reflect.DeepEqual(p.Stats, f.Stats) {
			t.Errorf("%s: pooled stats differ from fresh", p.Key)
		}
		if !reflect.DeepEqual(p.Intervals, f.Intervals) {
			t.Errorf("%s: pooled intervals differ from fresh", p.Key)
		}
		if p.ExtrapolatedIPC != f.ExtrapolatedIPC || p.IPCErrorEst != f.IPCErrorEst ||
			p.TotalRetired != f.TotalRetired || p.Windows != f.Windows {
			t.Errorf("%s: pooled fidelity fields differ from fresh", p.Key)
		}
	}
	// The two identical specs must agree with each other too (the second
	// drew the first's pooled core).
	if !reflect.DeepEqual(pooled[0].Stats, pooled[1].Stats) {
		t.Error("identical fidelity specs disagree under pooling")
	}
}

// TestFidelitySpecsRunAsSingletonsUnderBatching: fast-forwarded specs
// cannot join a lockstep batch (the batch shares one from-the-start
// instruction stream), so with Batching on they run alone — and their
// results match a batching-off runner bit for bit, while sitting in the
// same sweep as batchable full-detail specs.
func TestFidelitySpecsRunAsSingletonsUnderBatching(t *testing.T) {
	if key, ok := (&Spec{Workload: "mcf", FastForward: 100}).batchKey(); ok {
		t.Fatalf("fast-forwarded spec joined batch group %q", key)
	}
	specs := []Spec{
		{Workload: "mcf", Scale: 0, Engine: EngineNone},
		{Workload: "mcf", Scale: 0, Engine: EngineRGID,
			FastForward: 1000, DetailedWindow: 500, SamplePeriods: 3},
		{Workload: "mcf", Scale: 0, Engine: EngineRGID},
	}
	batched, err := (&Runner{Jobs: 1, Batching: true}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := (&Runner{Jobs: 1}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(batched[i].Stats, plain[i].Stats) {
			t.Errorf("%s: batched sweep stats differ from unbatched", batched[i].Key)
		}
	}
	if batched[1].ExtrapolatedIPC != plain[1].ExtrapolatedIPC {
		t.Error("fidelity member differs between batched and unbatched sweeps")
	}
}
