package sim

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mssr/internal/core"
)

// tinySpec is a fast-simulating run used throughout the pool tests.
func tinySpec() Spec {
	return Spec{Workload: "nested-mispred", Scale: 0, Engine: EngineRGID, Streams: 2, Entries: 32}
}

// statsBytes canonicalizes a result's counters for byte-identity checks.
func statsBytes(t *testing.T, r Result) []byte {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("%s: %v", r.Key, r.Err)
	}
	b, err := json.Marshal(r.Stats)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterminism guards against shared mutable state between
// concurrently running cores: the same spec run serially and inside a
// parallel sweep must yield byte-identical stats.
func TestDeterminism(t *testing.T) {
	ctx := context.Background()
	serial1, err := Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	serial2, err := Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	want := statsBytes(t, serial1)
	if string(statsBytes(t, serial2)) != string(want) {
		t.Fatal("two serial runs of the same spec differ")
	}
	if serial1.Stats.Cycles == 0 || serial1.Stats.Retired == 0 || serial1.Stats.ReuseHits == 0 {
		t.Fatalf("degenerate run: %+v", serial1.Stats)
	}

	// A parallel sweep of identical specs, each building its own program.
	specs := make([]Spec, 8)
	for i := range specs {
		specs[i] = tinySpec()
	}
	res, err := (&Runner{Jobs: 4}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if got := statsBytes(t, res[i]); string(got) != string(want) {
			t.Errorf("parallel run %d differs from the serial run", i)
		}
	}

	// The same sweep over one shared pre-built program (the experiment
	// drivers' pattern) must agree too.
	shared := tinySpec()
	p, err := shared.BuildProgram()
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		specs[i].Workload, specs[i].Scale, specs[i].Program = "", 0, p
	}
	res, err = (&Runner{Jobs: 4}).Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if got := statsBytes(t, res[i]); string(got) != string(want) {
			t.Errorf("shared-program parallel run %d differs from the serial run", i)
		}
	}
}

// TestResultOrderingAndKeys checks results come back in spec order.
func TestResultOrderingAndKeys(t *testing.T) {
	var specs []Spec
	labels := []string{"a", "b", "c", "d", "e"}
	for _, l := range labels {
		s := tinySpec()
		s.Label = l
		specs = append(specs, s)
	}
	res, err := (&Runner{Jobs: 3}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Index != i || r.Key != labels[i] {
			t.Errorf("result %d = (index %d, key %q), want (%d, %q)", i, r.Index, r.Key, i, labels[i])
		}
	}
}

// TestPanicAndErrorAggregation injects a panicking job and a
// cycle-limited job into a sweep: both must surface in the aggregate
// error by key, and every healthy job must still complete with results —
// the bug the old experiments.runAll had (first error only, successes
// dropped).
func TestPanicAndErrorAggregation(t *testing.T) {
	good1, good2 := tinySpec(), tinySpec()
	good1.Label, good2.Label = "good-1", "good-2"
	boom := tinySpec()
	boom.Label = "boom"
	boom.TuneKey = "boom"
	boom.Tune = func(*core.Config) { panic("injected failure") }
	limited := tinySpec()
	limited.Label = "limited"
	limited.TuneKey = "limit"
	limited.Tune = func(c *core.Config) { c.MaxCycles = 64 }

	res, err := (&Runner{Jobs: 2}).Run(context.Background(), []Spec{good1, boom, limited, good2})
	if err == nil {
		t.Fatal("sweep with failing jobs returned nil error")
	}
	for _, key := range []string{"boom", "limited"} {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("aggregate error does not name %q: %v", key, err)
		}
	}
	if !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("panic message lost: %v", err)
	}
	if !errors.Is(err, core.ErrCycleLimit) {
		t.Errorf("cycle-limit error not preserved through errors.Join: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	for _, i := range []int{0, 3} {
		if res[i].Err != nil || res[i].Stats == nil || res[i].Stats.Retired == 0 {
			t.Errorf("healthy job %s did not complete: err=%v", res[i].Key, res[i].Err)
		}
	}
	if res[1].Err == nil || res[2].Err == nil {
		t.Error("failing jobs reported no error")
	}
	if !errors.Is(res[2].Err, core.ErrCycleLimit) {
		t.Errorf("limited job error = %v", res[2].Err)
	}
}

// TestPerJobTimeout checks a pathological job times out as a per-job
// error while its siblings still finish.
func TestPerJobTimeout(t *testing.T) {
	slow := Spec{Workload: "gobmk", Scale: 1, Label: "slow", Timeout: time.Nanosecond}
	good := tinySpec()
	good.Label = "good"
	res, err := (&Runner{Jobs: 2}).Run(context.Background(), []Spec{slow, good})
	if err == nil {
		t.Fatal("timed-out sweep returned nil error")
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want DeadlineExceeded", res[0].Err)
	}
	if res[0].Stats == nil {
		t.Error("timed-out job lost its progress counters")
	}
	if res[1].Err != nil || res[1].Stats == nil {
		t.Errorf("sibling job failed: %v", res[1].Err)
	}
}

// TestCancellation checks an already-cancelled context stops the sweep
// immediately, reporting every job as cancelled.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := make([]Spec, 16)
	for i := range specs {
		specs[i] = tinySpec()
	}
	start := time.Now()
	res, err := (&Runner{Jobs: 2}).Run(ctx, specs)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want Canceled", err)
	}
	if len(res) != len(specs) {
		t.Fatalf("got %d results, want %d", len(res), len(specs))
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancelled sweep still took %s", d)
	}
}

// TestValidationFailsFast checks invalid specs abort the sweep before
// any simulation runs, naming every invalid spec.
func TestValidationFailsFast(t *testing.T) {
	bad1 := Spec{Label: "bad-1"}
	bad2 := Spec{Label: "bad-2", Workload: "no-such-benchmark"}
	res, err := (&Runner{}).Run(context.Background(), []Spec{tinySpec(), bad1, bad2})
	if err == nil {
		t.Fatal("invalid specs accepted")
	}
	for _, key := range []string{"bad-1", "bad-2"} {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("validation error does not name %q: %v", key, err)
		}
	}
	if res != nil {
		t.Error("results returned despite validation failure")
	}
}

// countingObserver records start/finish callbacks.
type countingObserver struct {
	mu                sync.Mutex
	starts, finishes  int
	totals            map[int]bool
	failed, succeeded int
}

func (o *countingObserver) OnStart(index, total int, key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.starts++
	if o.totals == nil {
		o.totals = map[int]bool{}
	}
	o.totals[total] = true
}

func (o *countingObserver) OnFinish(index, total int, r Result) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finishes++
	if r.Err != nil {
		o.failed++
	} else {
		o.succeeded++
	}
}

// TestObserver checks every job produces exactly one start and one
// finish notification carrying the job outcome.
func TestObserver(t *testing.T) {
	obs := &countingObserver{}
	boom := tinySpec()
	boom.Label = "boom"
	boom.TuneKey = "boom"
	boom.Tune = func(*core.Config) { panic("pop") }
	specs := []Spec{tinySpec(), boom, tinySpec()}
	_, err := (&Runner{Jobs: 2, Observer: Observers(obs)}).Run(context.Background(), specs)
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	if obs.starts != 3 || obs.finishes != 3 {
		t.Errorf("starts=%d finishes=%d, want 3/3", obs.starts, obs.finishes)
	}
	if obs.failed != 1 || obs.succeeded != 2 {
		t.Errorf("failed=%d succeeded=%d, want 1/2", obs.failed, obs.succeeded)
	}
	if !obs.totals[3] || len(obs.totals) != 1 {
		t.Errorf("totals seen: %v, want {3}", obs.totals)
	}
}

// TestJSONStream checks the machine-readable stream emits one valid JSON
// object per job with the headline fields.
func TestJSONStream(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	stream := NewJSONStream(syncWriter{&mu, &sb})
	specs := []Spec{tinySpec(), tinySpec()}
	if _, err := (&Runner{Jobs: 2, Observer: stream}).Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2", len(lines))
	}
	for _, line := range lines {
		var rec struct {
			Key    string  `json:"key"`
			Engine string  `json:"engine"`
			Cycles uint64  `json:"cycles"`
			IPC    float64 `json:"ipc"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if rec.Key == "" || rec.Cycles == 0 || rec.IPC == 0 {
			t.Errorf("incomplete record: %+v", rec)
		}
	}
}

type syncWriter struct {
	mu *sync.Mutex
	sb *strings.Builder
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

// TestProgressObserver checks the -progress renderer counts completions.
func TestProgressObserver(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	prog := NewProgress(syncWriter{&mu, &sb})
	specs := []Spec{tinySpec(), tinySpec(), tinySpec()}
	if _, err := (&Runner{Jobs: 3, Observer: prog}).Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"[1/3]", "[2/3]", "[3/3]", "cycles="} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

// TestVerifyArch checks the emulator cross-check passes for a healthy
// run and is recorded on the result.
func TestVerifyArch(t *testing.T) {
	s := tinySpec()
	s.VerifyArch = true
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arch.Retired == 0 {
		t.Error("architectural state not captured")
	}
	if res.Arch.Retired != res.Stats.Retired {
		t.Errorf("arch retired %d != stats retired %d", res.Arch.Retired, res.Stats.Retired)
	}
}

// TestEmptySweep checks a zero-spec run is a no-op.
func TestEmptySweep(t *testing.T) {
	res, err := (&Runner{}).Run(context.Background(), nil)
	if err != nil || res != nil {
		t.Fatalf("empty sweep: %v, %v", res, err)
	}
}
