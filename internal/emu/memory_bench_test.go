package emu

import "testing"

// benchWords is larger than one page so the benchmarks cross page
// boundaries, and fixed so steady-state iterations touch only
// already-materialized pages (the pooling-relevant regime).
const benchWords = 4 * pageWords

func benchMemory() *Memory {
	m := NewMemory()
	for i := 0; i < benchWords; i++ {
		m.Write(uint64(i)*8, uint64(i)+1)
	}
	return m
}

func BenchmarkMemoryRead(b *testing.B) {
	m := benchMemory()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Read(uint64(i%benchWords) * 8)
	}
	_ = sink
}

func BenchmarkMemoryWrite(b *testing.B) {
	m := benchMemory()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write(uint64(i%benchWords)*8, uint64(i))
	}
}

// BenchmarkMemoryWriteSparse touches one word per page across a wide
// address range: the regime where the old sorted-key Digest made every
// hash O(n log n) and where page granularity pays or doesn't.
func BenchmarkMemoryWriteSparse(b *testing.B) {
	m := NewMemory()
	const pages = 256
	for i := 0; i < pages; i++ {
		m.Write(uint64(i)*PageBytes, uint64(i)+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write(uint64(i%pages)*PageBytes, uint64(i)+1)
	}
}

func BenchmarkMemoryHash(b *testing.B) {
	m := benchMemory()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= m.Hash()
	}
	_ = sink
}
