// Package emu implements the functional (ISA-level) emulator used as the
// golden reference: every timing simulation must retire the same dynamic
// instruction stream and produce the same final architectural state as this
// emulator, regardless of which squash-reuse mechanism is enabled.
package emu

import (
	"hash/fnv"
	"sort"

	"mssr/internal/isa"
)

// Memory is a sparse 64-bit word-addressable data memory. Accesses are
// aligned down to 8-byte boundaries; unwritten locations read as zero.
// The same type backs both the functional emulator's architectural memory
// and the timing core's committed memory, which guarantees identical
// semantics on both sides of the equivalence tests.
type Memory struct {
	words map[uint64]uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{words: make(map[uint64]uint64)} }

// Load loads the initialized data segments of p.
func (m *Memory) Load(p *isa.Program) {
	for _, seg := range p.Data {
		for i, w := range seg.Words {
			m.Write(seg.Addr+uint64(i)*8, w)
		}
	}
}

// Clear erases all contents, keeping the map's bucket storage so a
// cleared memory refills without rehashing-driven allocation.
func (m *Memory) Clear() { clear(m.words) }

// Read returns the word at addr (aligned down to 8 bytes).
func (m *Memory) Read(addr uint64) uint64 { return m.words[addr&^7] }

// Write stores val at addr (aligned down to 8 bytes). Writing zero erases
// the backing entry so memories that have converged compare equal.
func (m *Memory) Write(addr, val uint64) {
	a := addr &^ 7
	if val == 0 {
		delete(m.words, a)
		return
	}
	m.words[a] = val
}

// Len reports how many non-zero words the memory holds.
func (m *Memory) Len() int { return len(m.words) }

// Clone returns a deep copy of the memory.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for a, v := range m.words {
		c.words[a] = v
	}
	return c
}

// Digest returns an order-independent-stable FNV-1a hash of memory
// contents, used by equivalence tests to compare final states cheaply.
func (m *Memory) Digest() uint64 {
	addrs := make([]uint64, 0, len(m.words))
	for a := range m.words {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h := fnv.New64a()
	var buf [16]byte
	for _, a := range addrs {
		v := m.words[a]
		for i := 0; i < 8; i++ {
			buf[i] = byte(a >> (8 * i))
			buf[8+i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.words) != len(o.words) {
		return false
	}
	for a, v := range m.words {
		if o.words[a] != v {
			return false
		}
	}
	return true
}
