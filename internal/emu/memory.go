// Package emu implements the functional (ISA-level) emulator used as the
// golden reference: every timing simulation must retire the same dynamic
// instruction stream and produce the same final architectural state as this
// emulator, regardless of which squash-reuse mechanism is enabled.
package emu

import (
	"hash/fnv"
	"sort"

	"mssr/internal/isa"
)

// Page geometry of the sparse memory. 4 KB pages (512 words) match the
// usual OS granule and keep one page comfortably inside the L2 of any
// host, so a page-local burst of simulated accesses stays cache-resident.
const (
	// PageBytes is the backing-page size of the sparse memory.
	PageBytes = 4096
	pageWords = PageBytes / 8
	pageShift = 9 // log2(pageWords): word-index bits per page
	pageMask  = pageWords - 1
)

// page is one fixed-size block of backing storage. live counts the
// nonzero words, so Hash/Equal/Len can skip fully-zero pages and a zero
// write keeps memories that converged comparing equal.
type page struct {
	words [pageWords]uint64
	live  int
}

// Memory is a sparse 64-bit word-addressable data memory. Accesses are
// aligned down to 8-byte boundaries; unwritten locations read as zero.
// The same type backs both the functional emulator's architectural memory
// and the timing core's committed memory, which guarantees identical
// semantics on both sides of the equivalence tests.
//
// Storage is paged: a page table maps page number (word address >>
// pageShift) to fixed-size pages, so Read and Write are a shift, a mask
// and (on the sequential-access patterns the workloads produce) usually a
// single-entry page-cache hit rather than a map probe per access. Pages
// freed by Clear are pooled and handed back zeroed, so a pooled core's
// next run refills the same footprint without allocating.
type Memory struct {
	pages map[uint64]*page
	// order holds the allocated page numbers in ascending order
	// (maintained on the rare allocation path), giving Hash, Equal and
	// Snapshot a deterministic page-ordered walk without sorting per
	// call.
	order []uint64
	free  []*page // zeroed pages pooled by Clear
	live  int     // total nonzero words

	// Single-entry page cache: page number and pointer of the last page
	// touched. Word-adjacent accesses — the common case for the array
	// kernels — bypass the page table entirely.
	cachedNum  uint64
	cachedPage *page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64]*page)} }

// Load loads the initialized data segments of p.
func (m *Memory) Load(p *isa.Program) {
	for _, seg := range p.Data {
		for i, w := range seg.Words {
			m.Write(seg.Addr+uint64(i)*8, w)
		}
	}
}

// Clear erases all contents. Pages are zeroed and moved to the free pool
// and the page table keeps its buckets, so a cleared memory refills the
// same footprint without allocating.
func (m *Memory) Clear() {
	for _, pn := range m.order {
		p := m.pages[pn]
		if p.live > 0 {
			clear(p.words[:])
			p.live = 0
		}
		m.free = append(m.free, p)
	}
	clear(m.pages)
	m.order = m.order[:0]
	m.live = 0
	m.cachedPage = nil
	m.cachedNum = 0
}

// lookup returns the page holding word index w, or nil if never written.
func (m *Memory) lookup(pn uint64) *page {
	if m.cachedPage != nil && m.cachedNum == pn {
		return m.cachedPage
	}
	p := m.pages[pn]
	if p != nil {
		m.cachedNum, m.cachedPage = pn, p
	}
	return p
}

// ensure returns the page holding word index w, allocating it if needed.
func (m *Memory) ensure(pn uint64) *page {
	if p := m.lookup(pn); p != nil {
		return p
	}
	var p *page
	if n := len(m.free); n > 0 {
		p = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		p = new(page)
	}
	m.pages[pn] = p
	// Keep order sorted: binary-search the insertion point. Page
	// allocation is rare (once per 4 KB of footprint), so the memmove
	// never shows up in profiles.
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] > pn })
	m.order = append(m.order, 0)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = pn
	m.cachedNum, m.cachedPage = pn, p
	return p
}

// Read returns the word at addr (aligned down to 8 bytes).
func (m *Memory) Read(addr uint64) uint64 {
	w := addr >> 3
	p := m.lookup(w >> pageShift)
	if p == nil {
		return 0
	}
	return p.words[w&pageMask]
}

// Write stores val at addr (aligned down to 8 bytes). Writing zero clears
// the backing word and the page's live count, so memories that have
// converged compare equal regardless of write history.
func (m *Memory) Write(addr, val uint64) {
	w := addr >> 3
	pn := w >> pageShift
	p := m.lookup(pn)
	if p == nil {
		if val == 0 {
			return // already zero
		}
		p = m.ensure(pn)
	}
	i := w & pageMask
	old := p.words[i]
	if old == val {
		return
	}
	if old == 0 {
		p.live++
		m.live++
	} else if val == 0 {
		p.live--
		m.live--
	}
	p.words[i] = val
}

// Len reports how many non-zero words the memory holds.
func (m *Memory) Len() int { return m.live }

// Clone returns a deep copy of the memory.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	c.order = append(c.order, m.order...)
	c.live = m.live
	for _, pn := range m.order {
		p := new(page)
		*p = *m.pages[pn]
		c.pages[pn] = p
	}
	return c
}

// CopyFrom makes m an exact deep copy of o, reusing m's pooled pages.
// In steady state (same footprint run to run, as when a pooled core is
// reseeded from successive fast-forward states) it allocates nothing.
func (m *Memory) CopyFrom(o *Memory) {
	m.Clear()
	m.order = append(m.order, o.order...)
	m.live = o.live
	for _, pn := range o.order {
		var p *page
		if n := len(m.free); n > 0 {
			p = m.free[n-1]
			m.free = m.free[:n-1]
		} else {
			p = new(page)
		}
		*p = *o.pages[pn]
		m.pages[pn] = p
	}
}

// Word is one (address, value) pair of a Snapshot.
type Word struct {
	Addr, Val uint64
}

// Snapshot returns every non-zero word in ascending address order. It is
// the slow, allocating form of the page-ordered walk behind Hash and
// Equal, intended for tests and tooling.
func (m *Memory) Snapshot() []Word {
	out := make([]Word, 0, m.live)
	for _, pn := range m.order {
		p := m.pages[pn]
		if p.live == 0 {
			continue
		}
		base := pn << pageShift
		for i, v := range p.words {
			if v != 0 {
				out = append(out, Word{Addr: (base + uint64(i)) << 3, Val: v})
			}
		}
	}
	return out
}

// Hash returns an order-stable FNV-1a hash of memory contents, used by
// equivalence tests to compare final states cheaply. The walk follows the
// sorted page list rather than sorting a key set per call; the digest is
// bit-identical to hashing every (address, value) pair in ascending
// address order.
func (m *Memory) Hash() uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, pn := range m.order {
		p := m.pages[pn]
		if p.live == 0 {
			continue
		}
		base := pn << pageShift
		for i, v := range p.words {
			if v == 0 {
				continue
			}
			a := (base + uint64(i)) << 3
			for b := 0; b < 8; b++ {
				buf[b] = byte(a >> (8 * b))
				buf[8+b] = byte(v >> (8 * b))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Equal reports whether two memories hold identical contents. Pages that
// exist on one side but hold only zeros are equal to pages the other side
// never allocated.
func (m *Memory) Equal(o *Memory) bool {
	if m.live != o.live {
		return false
	}
	for _, pn := range m.order {
		p := m.pages[pn]
		if p.live == 0 {
			continue
		}
		op := o.pages[pn]
		if op == nil {
			return false // m has nonzero words here, o reads zero
		}
		if p.words != op.words {
			// Word arrays differ; with equal global live counts this can
			// only be a real content difference.
			return false
		}
	}
	return true
}
