package emu

import (
	"errors"
	"fmt"

	"mssr/internal/isa"
)

// ErrInstructionLimit is returned by Run when the program has not halted
// within the allowed number of instructions.
var ErrInstructionLimit = errors.New("emu: instruction limit exceeded")

// Emulator executes a program at architectural (ISA) level, one instruction
// per Step, with no timing. It is the semantic oracle for the repository.
type Emulator struct {
	Prog *isa.Program
	Regs [isa.NumArchRegs]uint64
	Mem  *Memory
	PC   uint64
	// Halted reports that a HALT instruction has retired.
	Halted bool
	// Retired counts architecturally executed instructions.
	Retired uint64
}

// New returns an emulator with the program's data segments loaded and the
// PC at the program base.
func New(p *isa.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: NewMemory(), PC: p.Base}
	e.Mem.Load(p)
	return e
}

// Reset reinitializes the emulator in place to run p from scratch,
// keeping the memory's pooled page storage.
func (e *Emulator) Reset(p *isa.Program) {
	e.Prog = p
	e.Regs = [isa.NumArchRegs]uint64{}
	e.Mem.Clear()
	e.Mem.Load(p)
	e.PC = p.Base
	e.Halted = false
	e.Retired = 0
}

// StepInfo describes one architecturally executed instruction; the timing
// simulators' built-in retirement checkers compare against it.
type StepInfo struct {
	PC      uint64
	Instr   isa.Instruction
	Outcome isa.Outcome
	NextPC  uint64
}

// Step executes the instruction at the current PC. Calling Step on a halted
// emulator is a no-op that returns the final state of the HALT.
func (e *Emulator) Step() StepInfo {
	if e.Halted {
		return StepInfo{PC: e.PC, Instr: isa.Instruction{Op: isa.HALT}, NextPC: e.PC}
	}
	in := e.Prog.MustAt(e.PC)
	var rs1v, rs2v uint64
	if n := in.NumSources(); n > 0 {
		rs1v = e.Regs[in.Src(0)]
		if n > 1 {
			rs2v = e.Regs[in.Src(1)]
		}
	}
	out := isa.Evaluate(in, e.PC, rs1v, rs2v)
	switch {
	case in.IsLoad():
		out.Result = e.Mem.Read(out.MemAddr)
	case in.IsStore():
		e.Mem.Write(out.MemAddr, out.Result)
	}
	if in.HasDest() {
		e.Regs[in.Rd] = out.Result
	}
	info := StepInfo{PC: e.PC, Instr: in, Outcome: out}
	switch {
	case out.Halt:
		e.Halted = true
		info.NextPC = e.PC
	case out.Taken:
		e.PC = out.Target
		info.NextPC = out.Target
	default:
		e.PC += isa.InstrBytes
		info.NextPC = e.PC
	}
	e.Retired++
	return info
}

// Run executes until HALT or until maxInstrs instructions have retired,
// returning ErrInstructionLimit in the latter case.
func (e *Emulator) Run(maxInstrs uint64) error {
	for !e.Halted {
		if e.Retired >= maxInstrs {
			return fmt.Errorf("%w (%d instructions, PC=0x%x)", ErrInstructionLimit, maxInstrs, e.PC)
		}
		e.Step()
	}
	return nil
}

// Result is the final architectural state in comparable form.
type Result struct {
	Regs      [isa.NumArchRegs]uint64
	MemDigest uint64
	Retired   uint64
}

// Result captures the current architectural state.
func (e *Emulator) Result() Result {
	return Result{Regs: e.Regs, MemDigest: e.Mem.Hash(), Retired: e.Retired}
}

// RunProgram is a convenience wrapper: execute p to completion and return
// the final state.
func RunProgram(p *isa.Program, maxInstrs uint64) (Result, error) {
	e := New(p)
	if err := e.Run(maxInstrs); err != nil {
		return Result{}, err
	}
	return e.Result(), nil
}
