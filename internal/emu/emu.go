package emu

import (
	"errors"
	"fmt"

	"mssr/internal/isa"
)

// ErrInstructionLimit is returned by Run when the program has not halted
// within the allowed number of instructions.
var ErrInstructionLimit = errors.New("emu: instruction limit exceeded")

// Emulator executes a program at architectural (ISA) level, one instruction
// per Step, with no timing. It is the semantic oracle for the repository.
type Emulator struct {
	Prog *isa.Program
	Regs [isa.NumArchRegs]uint64
	Mem  *Memory
	PC   uint64
	// Halted reports that a HALT instruction has retired.
	Halted bool
	// Retired counts architecturally executed instructions.
	Retired uint64
}

// New returns an emulator with the program's data segments loaded and the
// PC at the program base.
func New(p *isa.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: NewMemory(), PC: p.Base}
	e.Mem.Load(p)
	return e
}

// Reset reinitializes the emulator in place to run p from scratch,
// keeping the memory's pooled page storage.
func (e *Emulator) Reset(p *isa.Program) {
	e.Prog = p
	e.Regs = [isa.NumArchRegs]uint64{}
	e.Mem.Clear()
	e.Mem.Load(p)
	e.PC = p.Base
	e.Halted = false
	e.Retired = 0
}

// StepInfo describes one architecturally executed instruction; the timing
// simulators' built-in retirement checkers compare against it.
type StepInfo struct {
	PC      uint64
	Instr   isa.Instruction
	Outcome isa.Outcome
	NextPC  uint64
}

// Step executes the instruction at the current PC. Calling Step on a halted
// emulator is a no-op that returns the final state of the HALT.
func (e *Emulator) Step() StepInfo {
	var info StepInfo
	e.stepInto(&info)
	return info
}

// stepInto is Step writing its record through a caller-owned pointer, so a
// hot loop (FastForward with a warming hook) reuses one StepInfo instead of
// copying the ~80-byte struct twice per instruction.
func (e *Emulator) stepInto(info *StepInfo) {
	if e.Halted {
		*info = StepInfo{PC: e.PC, Instr: isa.Instruction{Op: isa.HALT}, NextPC: e.PC}
		return
	}
	in := e.Prog.MustAt(e.PC)
	var rs1v, rs2v uint64
	// Sources occupy Rs1 first (isa.Instruction.Src); reading the fields
	// directly keeps the per-instruction cost a pair of loads.
	switch in.NumSources() {
	case 2:
		rs2v = e.Regs[in.Rs2]
		fallthrough
	case 1:
		rs1v = e.Regs[in.Rs1]
	}
	out := isa.Evaluate(in, e.PC, rs1v, rs2v)
	switch {
	case in.IsLoad():
		out.Result = e.Mem.Read(out.MemAddr)
	case in.IsStore():
		e.Mem.Write(out.MemAddr, out.Result)
	}
	if in.HasDest() {
		e.Regs[in.Rd] = out.Result
	}
	info.PC, info.Instr, info.Outcome = e.PC, in, out
	switch {
	case out.Halt:
		e.Halted = true
		info.NextPC = e.PC
	case out.Taken:
		e.PC = out.Target
		info.NextPC = out.Target
	default:
		e.PC += isa.InstrBytes
		info.NextPC = e.PC
	}
	e.Retired++
}

// step is Step without the StepInfo: the fast path for Run and hook-free
// FastForward, where the caller discards the per-instruction record and
// materializing the ~80-byte struct is pure copy cost. It must stay
// semantically identical to Step.
func (e *Emulator) step() {
	in := e.Prog.MustAt(e.PC)
	var rs1v, rs2v uint64
	switch in.NumSources() {
	case 2:
		rs2v = e.Regs[in.Rs2]
		fallthrough
	case 1:
		rs1v = e.Regs[in.Rs1]
	}
	out := isa.Evaluate(in, e.PC, rs1v, rs2v)
	switch {
	case in.IsLoad():
		out.Result = e.Mem.Read(out.MemAddr)
	case in.IsStore():
		e.Mem.Write(out.MemAddr, out.Result)
	}
	if in.HasDest() {
		e.Regs[in.Rd] = out.Result
	}
	switch {
	case out.Halt:
		e.Halted = true
	case out.Taken:
		e.PC = out.Target
	default:
		e.PC += isa.InstrBytes
	}
	e.Retired++
}

// Run executes until HALT or until maxInstrs instructions have retired,
// returning ErrInstructionLimit in the latter case.
func (e *Emulator) Run(maxInstrs uint64) error {
	for !e.Halted {
		if e.Retired >= maxInstrs {
			return fmt.Errorf("%w (%d instructions, PC=0x%x)", ErrInstructionLimit, maxInstrs, e.PC)
		}
		e.step()
	}
	return nil
}

// ArchState is an exported architectural machine state: everything a
// consumer needs to resume execution of the same program mid-stream. It is
// the handoff format between functional fast-forward and a detailed core
// window (Core.SeedFrom).
type ArchState struct {
	Regs    [isa.NumArchRegs]uint64
	Mem     *Memory
	PC      uint64
	Retired uint64
	Halted  bool
}

// State exports the current architectural state. Mem aliases the
// emulator's live memory — no copy is made, so a consumer that keeps the
// state across further emulator steps must deep-copy it (Memory.CopyFrom
// or Memory.Clone).
func (e *Emulator) State() ArchState {
	return ArchState{Regs: e.Regs, Mem: e.Mem, PC: e.PC, Retired: e.Retired, Halted: e.Halted}
}

// SetState restores a previously exported architectural state, deep-copying
// the memory image into the emulator's pooled pages. The loaded program is
// unchanged; st must describe a point in the same program.
func (e *Emulator) SetState(st *ArchState) {
	e.Regs = st.Regs
	e.Mem.CopyFrom(st.Mem)
	e.PC = st.PC
	e.Retired = st.Retired
	e.Halted = st.Halted
}

// FastForward architecturally executes up to n instructions, invoking hook
// (when non-nil) after each one — the seam used for cache and
// branch-predictor warming during functional skip. The StepInfo the hook
// receives is only valid for the duration of the call; a hook that keeps
// it must copy. FastForward returns the number actually retired, which is
// less than n only if the program halts first.
func (e *Emulator) FastForward(n uint64, hook func(*StepInfo)) uint64 {
	var done uint64
	if hook == nil {
		for done < n && !e.Halted {
			e.step()
			done++
		}
		return done
	}
	var info StepInfo
	for done < n && !e.Halted {
		e.stepInto(&info)
		hook(&info)
		done++
	}
	return done
}

// Result is the final architectural state in comparable form.
type Result struct {
	Regs      [isa.NumArchRegs]uint64
	MemDigest uint64
	Retired   uint64
}

// Result captures the current architectural state.
func (e *Emulator) Result() Result {
	return Result{Regs: e.Regs, MemDigest: e.Mem.Hash(), Retired: e.Retired}
}

// RunProgram is a convenience wrapper: execute p to completion and return
// the final state.
func RunProgram(p *isa.Program, maxInstrs uint64) (Result, error) {
	e := New(p)
	if err := e.Run(maxInstrs); err != nil {
		return Result{}, err
	}
	return e.Result(), nil
}
