package emu

import (
	"errors"
	"testing"

	"mssr/internal/randprog"
)

// TestArchStateBinaryRoundTrip is the serialize/restore property test
// behind the checkpoint format: for random programs paused at random
// points, encode -> decode must reproduce the exact architectural state,
// and resuming from the decoded state must finish bit-identically to the
// uninterrupted emulation.
func TestArchStateBinaryRoundTrip(t *testing.T) {
	cfg := randprog.DefaultConfig()
	cfg.MaxDepth = 4
	cfg.MaxStmts = 8
	for seed := int64(0); seed < 10; seed++ {
		p := randprog.Generate(seed, cfg)
		ref := New(p)
		ref.FastForward(1<<40, nil)
		want := ref.Result()
		total := ref.Retired

		for _, cut := range []uint64{0, 1, total / 3, total / 2, total - 1, total} {
			src := New(p)
			src.FastForward(cut, nil)
			st := src.State()
			enc := st.AppendBinary(nil)
			if got := st.EncodedSize(); got != len(enc) {
				t.Fatalf("seed %d cut %d: EncodedSize %d != encoded %d bytes", seed, cut, got, len(enc))
			}
			// Deterministic encoding: equal states encode byte-identically.
			st2 := src.State()
			if enc2 := st2.AppendBinary(nil); string(enc2) != string(enc) {
				t.Fatalf("seed %d cut %d: re-encoding the same state differs", seed, cut)
			}

			var dec ArchState
			if err := DecodeState(enc, &dec); err != nil {
				t.Fatalf("seed %d cut %d: DecodeState: %v", seed, cut, err)
			}
			if dec.PC != st.PC || dec.Retired != st.Retired || dec.Halted != st.Halted || dec.Regs != st.Regs {
				t.Fatalf("seed %d cut %d: decoded scalar state differs", seed, cut)
			}
			if !dec.Mem.Equal(st.Mem) || dec.Mem.Hash() != st.Mem.Hash() {
				t.Fatalf("seed %d cut %d: decoded memory differs", seed, cut)
			}

			resumed := New(p)
			if err := resumed.RestoreBinary(enc); err != nil {
				t.Fatalf("seed %d cut %d: RestoreBinary: %v", seed, cut, err)
			}
			resumed.FastForward(1<<40, nil)
			if got := resumed.Result(); got != want {
				t.Fatalf("seed %d cut %d: resumed run diverged:\n got %+v\nwant %+v", seed, cut, got, want)
			}
		}
	}
}

// TestArchStateBinaryRejectsCorruption: every framing or content fault
// must fail decoding with ErrCorruptState, never decode garbage.
func TestArchStateBinaryRejectsCorruption(t *testing.T) {
	p := randprog.Generate(3, randprog.DefaultConfig())
	e := New(p)
	e.FastForward(500, nil)
	st := e.State()
	enc := st.AppendBinary(nil)

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), enc...))
		var dec ArchState
		if err := DecodeState(b, &dec); !errors.Is(err, ErrCorruptState) {
			t.Errorf("%s: err = %v, want ErrCorruptState", name, err)
		}
	}
	mutate("truncated header", func(b []byte) []byte { return b[:10] })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(b)-9] })
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("unknown version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("flipped register bit", func(b []byte) []byte { b[40] ^= 1; return b })
	mutate("flipped page word", func(b []byte) []byte { b[len(b)-20] ^= 1; return b })
	mutate("flipped checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
}

// TestRestoreBinarySteadyStateZeroAllocs guards the warm restore path:
// decoding a constant-footprint checkpoint into an emulator whose page
// pool already holds the footprint must not allocate, so checkpoint-warm
// sweeps keep the simulator's allocation discipline.
func TestRestoreBinarySteadyStateZeroAllocs(t *testing.T) {
	p := randprog.Generate(7, randprog.DefaultConfig())
	e := New(p)
	e.FastForward(2000, nil)
	st := e.State()
	enc := st.AppendBinary(nil)

	dst := New(p)
	if err := dst.RestoreBinary(enc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := dst.RestoreBinary(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RestoreBinary allocates %.1f times per restore", allocs)
	}
}

// BenchmarkArchStateEncode measures checkpoint capture: one encode of a
// mid-run architectural state into a reused buffer.
func BenchmarkArchStateEncode(b *testing.B) {
	p := randprog.Generate(5, randprog.DefaultConfig())
	e := New(p)
	e.FastForward(1<<16, nil)
	st := e.State()
	buf := st.AppendBinary(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = st.AppendBinary(buf[:0])
	}
}

// BenchmarkArchStateRestore measures the emulator-side restore: one
// RestoreBinary into a warm emulator (pooled pages, zero allocations).
func BenchmarkArchStateRestore(b *testing.B) {
	p := randprog.Generate(5, randprog.DefaultConfig())
	e := New(p)
	e.FastForward(1<<16, nil)
	st := e.State()
	enc := st.AppendBinary(nil)
	dst := New(p)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.RestoreBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}
