package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"mssr/internal/isa"
)

// This file is the checkpoint serialization of ArchState: a versioned,
// checksummed, little-endian binary encoding of the architectural machine
// state (registers plus the paged sparse memory) that internal/ckpt
// stores content-addressed and internal/sim restores instead of
// re-emulating the functional prefix. The format is a persistence
// format — checkpoints written by one process are restored by another —
// so any change must bump stateVersion and is never a harmless refactor.
//
// Layout (all integers little-endian):
//
//	magic   [4]byte  "msrA"
//	version uint32   stateVersion
//	pc      uint64
//	retired uint64
//	flags   uint64   bit 0: halted
//	regs    [NumArchRegs]uint64
//	npages  uint64   count of live (non-zero) pages
//	pages   npages × { pageNum uint64, live uint64, words [pageWords]uint64 }
//	sum     uint64   FNV-1a of every preceding byte
//
// Only pages holding at least one non-zero word are encoded: a page the
// writer allocated but zeroed again reads identically to one never
// allocated, matching Memory.Equal/Hash semantics, so the decoded state
// is execution-equivalent (and digest-identical) to the source.

// stateVersion guards the ArchState binary format; decoders reject
// versions they do not know.
const stateVersion = 1

var stateMagic = [4]byte{'m', 's', 'r', 'A'}

// ErrCorruptState is wrapped by every DecodeState/RestoreBinary failure:
// truncation, bad magic, unknown version or checksum mismatch.
var ErrCorruptState = errors.New("emu: corrupt arch-state encoding")

const (
	stateHeaderBytes = 4 + 4 + 8 + 8 + 8 + isa.NumArchRegs*8 + 8
	statePageBytes   = 8 + 8 + pageWords*8
	stateSumBytes    = 8
)

// EncodedSize returns the exact number of bytes AppendBinary appends for
// the current state.
func (st *ArchState) EncodedSize() int {
	n := 0
	for _, pn := range st.Mem.order {
		if st.Mem.pages[pn].live > 0 {
			n++
		}
	}
	return stateHeaderBytes + n*statePageBytes + stateSumBytes
}

// AppendBinary appends the versioned, checksummed binary encoding of st
// to dst and returns the extended slice. The encoding is deterministic:
// pages are written in ascending page-number order, so equal states
// produce byte-identical encodings (the property that makes checkpoints
// content-addressable).
func (st *ArchState) AppendBinary(dst []byte) []byte {
	base := len(dst)
	need := st.EncodedSize()
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, stateMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, stateVersion)
	dst = binary.LittleEndian.AppendUint64(dst, st.PC)
	dst = binary.LittleEndian.AppendUint64(dst, st.Retired)
	var flags uint64
	if st.Halted {
		flags |= 1
	}
	dst = binary.LittleEndian.AppendUint64(dst, flags)
	for _, r := range st.Regs {
		dst = binary.LittleEndian.AppendUint64(dst, r)
	}
	var npages uint64
	for _, pn := range st.Mem.order {
		if st.Mem.pages[pn].live > 0 {
			npages++
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, npages)
	for _, pn := range st.Mem.order {
		p := st.Mem.pages[pn]
		if p.live == 0 {
			continue
		}
		dst = binary.LittleEndian.AppendUint64(dst, pn)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p.live))
		for _, w := range p.words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	}
	h := fnv.New64a()
	h.Write(dst[base:])
	return binary.LittleEndian.AppendUint64(dst, h.Sum64())
}

// verifyState checks framing and checksum, returning the payload region
// (header + pages, checksum stripped) or an ErrCorruptState-wrapped
// failure.
func verifyState(b []byte) ([]byte, error) {
	if len(b) < stateHeaderBytes+stateSumBytes {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a header", ErrCorruptState, len(b))
	}
	if [4]byte(b[:4]) != stateMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptState, b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != stateVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorruptState, v)
	}
	body, tail := b[:len(b)-stateSumBytes], b[len(b)-stateSumBytes:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptState)
	}
	npages := binary.LittleEndian.Uint64(body[stateHeaderBytes-8:])
	if want := stateHeaderBytes + int(npages)*statePageBytes; len(body) != want {
		return nil, fmt.Errorf("%w: %d pages need %d bytes, have %d", ErrCorruptState, npages, want, len(body))
	}
	return body, nil
}

// decodeInto installs a verified payload into the given state fields,
// reusing mem's pooled pages (steady-state restores of a constant
// footprint allocate nothing).
func decodeInto(body []byte, regs *[isa.NumArchRegs]uint64, mem *Memory, pc, retired *uint64, halted *bool) {
	*pc = binary.LittleEndian.Uint64(body[8:])
	*retired = binary.LittleEndian.Uint64(body[16:])
	*halted = binary.LittleEndian.Uint64(body[24:])&1 != 0
	off := 32
	for i := range regs {
		regs[i] = binary.LittleEndian.Uint64(body[off:])
		off += 8
	}
	npages := int(binary.LittleEndian.Uint64(body[off:]))
	off += 8
	mem.Clear()
	for k := 0; k < npages; k++ {
		pn := binary.LittleEndian.Uint64(body[off:])
		live := int(binary.LittleEndian.Uint64(body[off+8:]))
		off += 16
		// Pages arrive in ascending order (the encoder walks the sorted
		// page list), so appending keeps mem.order sorted without the
		// binary-search insert of the general write path.
		var p *page
		if n := len(mem.free); n > 0 {
			p = mem.free[n-1]
			mem.free = mem.free[:n-1]
		} else {
			p = new(page)
		}
		for i := range p.words {
			p.words[i] = binary.LittleEndian.Uint64(body[off:])
			off += 8
		}
		p.live = live
		mem.pages[pn] = p
		mem.order = append(mem.order, pn)
		mem.live += live
	}
}

// DecodeState decodes a checkpoint produced by AppendBinary into st,
// verifying framing and checksum first. st.Mem is reused when non-nil
// (its pooled pages absorb the footprint), allocated otherwise.
func DecodeState(b []byte, st *ArchState) error {
	body, err := verifyState(b)
	if err != nil {
		return err
	}
	if st.Mem == nil {
		st.Mem = NewMemory()
	}
	decodeInto(body, &st.Regs, st.Mem, &st.PC, &st.Retired, &st.Halted)
	return nil
}

// RestoreBinary installs a checkpoint produced by AppendBinary directly
// into the emulator — the hot restore path of checkpointed multi-fidelity
// runs. It is equivalent to DecodeState followed by SetState but decodes
// straight into the emulator's registers and pooled memory pages, so a
// steady-state restore performs one pass over the encoding and allocates
// nothing. The loaded program is unchanged; b must describe a point in
// the same program.
func (e *Emulator) RestoreBinary(b []byte) error {
	body, err := verifyState(b)
	if err != nil {
		return err
	}
	decodeInto(body, &e.Regs, e.Mem, &e.PC, &e.Retired, &e.Halted)
	return nil
}
