package emu

import (
	"errors"
	"testing"
	"testing/quick"

	"mssr/internal/asm"
	"mssr/internal/isa"
)

func TestMemoryBasics(t *testing.T) {
	m := NewMemory()
	if m.Read(0x100) != 0 {
		t.Error("unwritten memory should read zero")
	}
	m.Write(0x100, 42)
	if m.Read(0x100) != 42 {
		t.Error("readback failed")
	}
	// Aligned-down semantics.
	m.Write(0x105, 7)
	if m.Read(0x100) != 7 {
		t.Error("write should align down to 8 bytes")
	}
	if m.Read(0x107) != 7 {
		t.Error("read should align down to 8 bytes")
	}
	m.Write(0x100, 0)
	if m.Len() != 0 {
		t.Error("writing zero should erase the entry")
	}
}

func TestMemoryHashAndEqual(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	for i := uint64(0); i < 64; i++ {
		a.Write(i*8, i+1)
	}
	for i := int64(63); i >= 0; i-- {
		b.Write(uint64(i)*8, uint64(i)+1)
	}
	if a.Hash() != b.Hash() || !a.Equal(b) {
		t.Error("identical contents must hash equal regardless of write order")
	}
	b.Write(8, 99)
	if a.Hash() == b.Hash() || a.Equal(b) {
		t.Error("different contents must differ")
	}
	b.Write(8, 2)
	b.Write(0x9999999, 1)
	if a.Equal(b) {
		t.Error("extra word must differ")
	}
	c := a.Clone()
	c.Write(0, 123)
	if a.Read(0) == 123 {
		t.Error("clone must not alias")
	}
}

func TestEmulatorCountdown(t *testing.T) {
	p := asm.MustAssemble("countdown", `
    li   t0, 5
    li   a0, 0
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    halt
`)
	res, err := RunProgram(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[isa.A0] != 15 {
		t.Errorf("a0 = %d, want 15", res.Regs[isa.A0])
	}
	// 2 setup + 5 iterations x 3 + halt
	if res.Retired != 2+15+1 {
		t.Errorf("retired = %d", res.Retired)
	}
}

func TestEmulatorMemoryOps(t *testing.T) {
	p := asm.MustAssemble("memops", `
.data 0x4000 10 20 30
    li   s0, 0x4000
    ld   t0, 0(s0)
    ld   t1, 8(s0)
    add  t2, t0, t1
    st   t2, 16(s0)
    ld   a0, 16(s0)
    halt
`)
	e := New(p)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Regs[isa.A0] != 30 {
		t.Errorf("a0 = %d, want 30", e.Regs[isa.A0])
	}
	if e.Mem.Read(0x4010) != 30 {
		t.Errorf("mem[0x4010] = %d", e.Mem.Read(0x4010))
	}
}

func TestEmulatorJalr(t *testing.T) {
	p := asm.MustAssemble("call", `
    li   a0, 1
    jal  ra, fn
    addi a0, a0, 100
    halt
fn:
    addi a0, a0, 10
    ret
`)
	res, err := RunProgram(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[isa.A0] != 111 {
		t.Errorf("a0 = %d, want 111", res.Regs[isa.A0])
	}
}

func TestEmulatorZeroRegister(t *testing.T) {
	p := asm.MustAssemble("zero", `
    li   x0, 77
    addi x0, x0, 5
    add  a0, x0, x0
    halt
`)
	res, err := RunProgram(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[isa.Zero] != 0 || res.Regs[isa.A0] != 0 {
		t.Errorf("x0 must stay zero: x0=%d a0=%d", res.Regs[isa.Zero], res.Regs[isa.A0])
	}
}

func TestEmulatorInstructionLimit(t *testing.T) {
	p := asm.MustAssemble("spin", "loop: j loop\nhalt")
	_, err := RunProgram(p, 100)
	if !errors.Is(err, ErrInstructionLimit) {
		t.Errorf("err = %v, want instruction limit", err)
	}
}

func TestEmulatorStepAfterHalt(t *testing.T) {
	p := asm.MustAssemble("h", "halt")
	e := New(p)
	e.Step()
	if !e.Halted {
		t.Fatal("should halt")
	}
	retired := e.Retired
	info := e.Step()
	if e.Retired != retired || info.Instr.Op != isa.HALT {
		t.Error("step after halt must be a no-op")
	}
}

func TestEmulatorStepInfo(t *testing.T) {
	p := asm.MustAssemble("s", `
    li t0, 1
    beqz t0, skip
    li a0, 2
skip:
    halt
`)
	e := New(p)
	i1 := e.Step()
	if i1.PC != p.Base || i1.NextPC != p.Base+4 {
		t.Errorf("step1 %+v", i1)
	}
	i2 := e.Step()
	if i2.Outcome.Taken {
		t.Error("beqz with t0=1 should not take")
	}
	if i2.NextPC != p.Base+8 {
		t.Errorf("fallthrough NextPC = %#x", i2.NextPC)
	}
}

// Property: the emulator is deterministic — running the same program twice
// yields identical results.
func TestEmulatorDeterminism(t *testing.T) {
	f := func(seed uint16) bool {
		n := int64(seed%97) + 1
		b := asm.NewBuilder("det")
		b.Li(isa.T0, n)
		b.Li(isa.A0, 1)
		b.Label("loop")
		b.Mul(isa.A0, isa.A0, isa.T0)
		b.Andi(isa.A0, isa.A0, 0xffff)
		b.Addi(isa.T0, isa.T0, -1)
		b.Bnez(isa.T0, "loop")
		b.Halt()
		p := b.MustProgram()
		r1, err1 := RunProgram(p, 100000)
		r2, err2 := RunProgram(p, 100000)
		return err1 == nil && err2 == nil && r1 == r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
