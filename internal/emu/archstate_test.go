package emu

import (
	"testing"

	"mssr/internal/randprog"
)

// TestMemoryCopyFrom pins the deep-copy semantics CopyFrom provides to
// the fast-forward handoff: the copy compares equal (contents and
// digest), does not alias the source, and reuses pooled pages across
// successive copies.
func TestMemoryCopyFrom(t *testing.T) {
	src := NewMemory()
	for i := uint64(0); i < 3000; i++ {
		src.Write(i*8, i*i+1)
	}
	src.Write(1<<30, 42) // a sparse far page
	dst := NewMemory()
	dst.Write(0xdead00, 7) // pre-existing contents must vanish
	dst.CopyFrom(src)
	if !dst.Equal(src) || dst.Hash() != src.Hash() || dst.Len() != src.Len() {
		t.Fatal("copy does not match source")
	}
	dst.Write(16, 999)
	if src.Read(16) == 999 {
		t.Fatal("copy aliases source pages")
	}
	// Steady state: same footprint again must come from the page pool.
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("second copy does not match source")
	}
	allocs := testing.AllocsPerRun(10, func() { dst.CopyFrom(src) })
	if allocs != 0 {
		t.Errorf("steady-state CopyFrom allocates %.1f times", allocs)
	}
}

// TestSetStateResumesIdentically: exporting mid-run state from one
// emulator and installing it into another must make the second finish
// with exactly the state the first reaches.
func TestSetStateResumesIdentically(t *testing.T) {
	cfg := randprog.DefaultConfig()
	cfg.MaxDepth = 4
	cfg.MaxStmts = 8
	for seed := int64(0); seed < 8; seed++ {
		p := randprog.Generate(seed, cfg)
		a := New(p)
		a.FastForward(1<<40, nil)
		total := a.Retired

		b := New(p)
		b.FastForward(total/2, nil)
		st := b.State()
		c := New(p)
		c.SetState(&st)
		if c.PC != b.PC || c.Retired != b.Retired || c.Regs != b.Regs || !c.Mem.Equal(b.Mem) {
			t.Fatalf("seed %d: SetState did not reproduce the exported state", seed)
		}
		// State() aliases live memory; mutate the copy, not the source.
		c.FastForward(1<<40, nil)
		if c.Result() != a.Result() {
			t.Fatalf("seed %d: resumed run diverged:\nresumed: %+v\nstraight: %+v", seed, c.Result(), a.Result())
		}
	}
}

// TestFastForwardHook pins the warming seam: the hook sees every stepped
// instruction exactly once, and FastForward reports how many retired.
func TestFastForwardHook(t *testing.T) {
	p := randprog.Generate(3, randprog.DefaultConfig())
	e := New(p)
	var seen uint64
	n := e.FastForward(10, func(*StepInfo) { seen++ })
	if n != 10 || seen != 10 {
		t.Fatalf("FastForward(10) = %d, hook saw %d", n, seen)
	}
	// Running off the end stops at HALT and reports the shortfall.
	rest := e.FastForward(1<<40, func(*StepInfo) { seen++ })
	if !e.Halted {
		t.Fatal("emulator did not halt")
	}
	if seen != 10+rest || e.Retired != 10+rest {
		t.Fatalf("retired %d, hook saw %d, want both %d", e.Retired, seen, 10+rest)
	}
	// A halted emulator fast-forwards zero instructions.
	if e.FastForward(5, nil) != 0 {
		t.Fatal("halted emulator stepped")
	}
}
