package emu

import (
	"hash/fnv"
	"sort"
	"testing"

	"mssr/internal/randprog"
)

// mapMemory is the retained reference implementation of the sparse memory
// contract: the pre-paging map[uint64]uint64 with write-zero-deletes
// semantics. The differential tests below hold the paged Memory to it
// bit-for-bit, including the Hash algorithm (FNV-1a over ascending
// (address, value) pairs), which the paged walk must reproduce exactly.
type mapMemory struct {
	words map[uint64]uint64
}

func newMapMemory() *mapMemory { return &mapMemory{words: make(map[uint64]uint64)} }

func (m *mapMemory) Read(addr uint64) uint64 { return m.words[addr&^7] }

func (m *mapMemory) Write(addr, val uint64) {
	a := addr &^ 7
	if val == 0 {
		delete(m.words, a)
		return
	}
	m.words[a] = val
}

func (m *mapMemory) Len() int { return len(m.words) }

func (m *mapMemory) sortedAddrs() []uint64 {
	addrs := make([]uint64, 0, len(m.words))
	for a := range m.words {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

func (m *mapMemory) Hash() uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, a := range m.sortedAddrs() {
		v := m.words[a]
		for i := 0; i < 8; i++ {
			buf[i] = byte(a >> (8 * i))
			buf[8+i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func (m *mapMemory) Snapshot() []Word {
	out := make([]Word, 0, len(m.words))
	for _, a := range m.sortedAddrs() {
		out = append(out, Word{Addr: a, Val: m.words[a]})
	}
	return out
}

// diffCheck asserts the paged memory and the map reference agree on every
// observable: per-address reads, Len, Hash, Equal-with-clone, and the
// Snapshot contents and ordering.
func diffCheck(t *testing.T, tag string, got *Memory, want *mapMemory) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, reference %d", tag, got.Len(), want.Len())
	}
	if got.Hash() != want.Hash() {
		t.Fatalf("%s: Hash = %#x, reference %#x", tag, got.Hash(), want.Hash())
	}
	gs, ws := got.Snapshot(), want.Snapshot()
	if len(gs) != len(ws) {
		t.Fatalf("%s: Snapshot has %d words, reference %d", tag, len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("%s: Snapshot[%d] = %+v, reference %+v (ordering or content)", tag, i, gs[i], ws[i])
		}
		if i > 0 && gs[i].Addr <= gs[i-1].Addr {
			t.Fatalf("%s: Snapshot not strictly ascending at %d: %#x after %#x", tag, i, gs[i].Addr, gs[i-1].Addr)
		}
	}
	for a, v := range want.words {
		if g := got.Read(a); g != v {
			t.Fatalf("%s: Read(%#x) = %d, reference %d", tag, a, g, v)
		}
	}
	// Probe around every live word (including never-written neighbours
	// and page-boundary crossings) for phantom values.
	for _, w := range ws {
		for _, off := range []uint64{8, 16, PageBytes - 8, PageBytes, PageBytes + 8} {
			for _, a := range []uint64{w.Addr + off, w.Addr - off} {
				if g, r := got.Read(a), want.Read(a); g != r {
					t.Fatalf("%s: Read(%#x) = %d, reference %d", tag, a, g, r)
				}
			}
		}
	}
	if c := got.Clone(); !got.Equal(c) || !c.Equal(got) {
		t.Fatalf("%s: memory not Equal to its own clone", tag)
	}
}

// TestMemoryDifferentialRandprog drives the paged memory and the map
// reference with the store streams of random programs: the functional
// emulator (whose Mem is the paged implementation) executes each program
// while every architectural store is mirrored into the reference.
func TestMemoryDifferentialRandprog(t *testing.T) {
	cfg := randprog.DefaultConfig()
	cfg.DataWords = 2048 // 16 KB: force the data region across several pages
	for seed := int64(0); seed < 25; seed++ {
		p := randprog.Generate(seed, cfg)
		e := New(p)
		ref := newMapMemory()
		for _, seg := range p.Data {
			for i, w := range seg.Words {
				ref.Write(seg.Addr+uint64(i)*8, w)
			}
		}
		steps := 0
		for !e.Halted {
			if steps++; steps > 2_000_000 {
				t.Fatalf("seed %d: program did not halt", seed)
			}
			info := e.Step()
			if info.Instr.IsStore() {
				ref.Write(info.Outcome.MemAddr, info.Outcome.Result)
			}
		}
		diffCheck(t, p.Name, e.Mem, ref)
	}
}

// TestMemoryDifferentialReuse pins the pooled-page path: Clear must
// return a memory to a state indistinguishable from fresh, and a reused
// memory must stay equivalent to the reference on the next program.
func TestMemoryDifferentialReuse(t *testing.T) {
	cfg := randprog.DefaultConfig()
	cfg.DataWords = 1024
	e := New(randprog.Generate(1, cfg))
	for seed := int64(2); seed < 6; seed++ {
		p := randprog.Generate(seed, cfg)
		e.Reset(p) // Clear + Load on the pooled pages
		ref := newMapMemory()
		for _, seg := range p.Data {
			for i, w := range seg.Words {
				ref.Write(seg.Addr+uint64(i)*8, w)
			}
		}
		for !e.Halted {
			info := e.Step()
			if info.Instr.IsStore() {
				ref.Write(info.Outcome.MemAddr, info.Outcome.Result)
			}
		}
		diffCheck(t, p.Name, e.Mem, ref)
	}
}

// TestMemoryZeroWriteErasure is the convergence edge case: writing zero
// must erase the word so memories that reached the same contents through
// different write histories compare equal — including a page that was
// dirtied and fully zeroed versus one never touched.
func TestMemoryZeroWriteErasure(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	// a dirties two pages and then zeroes everything it wrote.
	a.Write(0x100, 5)
	a.Write(0x100+2*PageBytes, 7)
	a.Write(0x100, 0)
	a.Write(0x100+2*PageBytes, 0)
	if a.Len() != 0 {
		t.Fatalf("Len = %d after zeroing every word, want 0", a.Len())
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("fully-zeroed memory must equal a fresh one (both directions)")
	}
	if a.Hash() != b.Hash() {
		t.Error("fully-zeroed memory must hash like a fresh one")
	}
	if n := len(a.Snapshot()); n != 0 {
		t.Errorf("Snapshot has %d words after full erasure, want 0", n)
	}
	// Convergence with surviving words on other pages.
	a.Write(0x9000, 1)
	b.Write(0x9000, 3)
	b.Write(0x9000, 1)
	b.Write(0xABC0, 2)
	b.Write(0xABC0, 0)
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Error("converged contents must compare and hash equal")
	}
	// Zero-writes to untouched locations must not materialize state.
	b.Write(0x50_0000, 0)
	if !a.Equal(b) || b.Len() != 1 {
		t.Error("zero write to untouched address must be a no-op")
	}
}
