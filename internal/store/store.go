// Package store is msrd's persistent content-addressed result store:
// a disk-backed map from a spec's canonical key (sim.Spec.CanonicalKey)
// to its completed wire result, so warm-sweep speedups survive daemon
// restarts and cached simulations become durable, shareable artifacts.
//
// Layout: each result lives in its own file under a two-level fanout of
// the key's SHA-256 — dir/ab/cd/abcdef….json — written as a temp file in
// the same directory and atomically renamed into place, so readers never
// observe a partial write and a crash leaves at worst an orphaned temp
// file (removed at the next Open). The file is a self-describing
// envelope carrying the canonical key and a SHA-256 of the result bytes;
// reads verify both, and any mismatch, decode failure or truncation is
// treated as a miss: the corrupt entry is counted, logged at warn with
// the offending key, and deleted so it cannot fail again.
//
// The store is LRU-bounded by total bytes on disk. Recency is tracked in
// memory and persisted best-effort through file mtimes, which also seed
// the LRU order when Open rebuilds the index from the fanout tree.
// PutAsync is the write-behind path the serving layer's in-memory cache
// drains into: writes are queued to a single writer goroutine and never
// block the request path; a full queue drops the write (counted) rather
// than stalling a simulation result.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mssr/internal/api"
)

// envelope is the on-disk file format: the result bytes plus enough
// self-description to detect corruption and rebuild the index without an
// external manifest.
type envelope struct {
	// Version guards the format; readers reject versions they don't know.
	Version int `json:"version"`
	// Key is the canonical content key the result is stored under.
	Key string `json:"key"`
	// Sum is the hex SHA-256 of the raw Result bytes.
	Sum string `json:"sha256"`
	// Result is the stored wire result, kept raw so the checksum covers
	// exactly the bytes that were written.
	Result json.RawMessage `json:"result"`
}

const (
	envelopeVersion = 1
	fileExt         = ".json"
	tmpPattern      = "put-*.tmp"
)

// Counters is a snapshot of the store's activity counters.
type Counters struct {
	// Hits and Misses count Get outcomes (a corrupt read counts as both
	// a miss and a corruption).
	Hits, Misses uint64
	// Evictions counts entries removed by the size bound.
	Evictions uint64
	// Corrupt counts entries dropped because their file failed
	// verification (at Open or at read time).
	Corrupt uint64
	// Dropped counts PutAsync writes discarded because the write-behind
	// queue was full.
	Dropped uint64
	// WriteErrors counts Put failures (disk full, permissions).
	WriteErrors uint64
}

type entry struct {
	key  string
	size int64
}

// Store is a disk-backed content-addressed result store. All methods are
// safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	log      *slog.Logger

	mu      sync.Mutex
	order   *list.List // front = most recently used; values are *entry
	entries map[string]*list.Element
	size    int64

	hits, misses, evictions, corrupt atomic.Uint64
	dropped, writeErrors             atomic.Uint64

	// qmu serializes write-queue sends against Close, so PutAsync and
	// Flush are safe (and no-ops) on a closed store.
	qmu       sync.Mutex
	qclosed   bool
	wq        chan writeReq
	writerWG  sync.WaitGroup
	closeOnce sync.Once
}

type writeReq struct {
	key   string
	res   api.Result
	flush chan struct{} // non-nil: a flush barrier, not a write
}

// Open loads (or creates) a store rooted at dir, bounded to maxBytes of
// result files on disk (<= 0 = unbounded). The index is rebuilt by
// walking the fanout tree: files that fail verification are counted as
// corrupt and removed, stale temp files from interrupted writes are
// cleaned up, and the LRU order is seeded from file mtimes.
func Open(dir string, maxBytes int64, logger *slog.Logger) (*Store, error) {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		log:      logger,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		wq:       make(chan writeReq, 256),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.enforceBoundLocked(nil)
	s.mu.Unlock()
	s.writerWG.Add(1)
	go s.writer()
	return s, nil
}

// load walks the fanout tree and rebuilds the in-memory index.
func (s *Store) load() error {
	type found struct {
		e     entry
		mtime int64
	}
	var all []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			// Leftover from an interrupted write; the rename never
			// happened, so nothing references it.
			_ = os.Remove(path)
			return nil
		}
		if !strings.HasSuffix(path, fileExt) {
			return nil
		}
		env, raw, verr := readEnvelope(path)
		if verr != nil || s.path(env.Key) != path {
			s.corrupt.Add(1)
			s.log.Warn("store: dropping corrupt entry", "path", path, "key", env.Key, "error", fmt.Sprint(verr))
			_ = os.Remove(path)
			return nil
		}
		info, ierr := d.Info()
		var mtime int64
		if ierr == nil {
			mtime = info.ModTime().UnixNano()
		}
		all = append(all, found{entry{key: env.Key, size: int64(len(raw))}, mtime})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: indexing %s: %w", s.dir, err)
	}
	// Oldest first, so the most recently written entries end up at the
	// front of the LRU order.
	sort.Slice(all, func(i, j int) bool { return all[i].mtime < all[j].mtime })
	for i := range all {
		e := all[i].e
		s.entries[e.key] = s.order.PushFront(&entry{key: e.key, size: e.size})
		s.size += e.size
	}
	return nil
}

// path maps a canonical key onto its fanout file path.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:4], h+fileExt)
}

// readEnvelope reads and verifies one entry file: decodable envelope,
// known version, and a result checksum that matches.
func readEnvelope(path string) (envelope, []byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return envelope{}, nil, err
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return envelope{}, nil, fmt.Errorf("decoding envelope: %w", err)
	}
	if env.Version != envelopeVersion {
		return env, nil, fmt.Errorf("unknown envelope version %d", env.Version)
	}
	if env.Key == "" || len(env.Result) == 0 {
		return env, nil, fmt.Errorf("incomplete envelope")
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return env, nil, fmt.Errorf("result checksum mismatch")
	}
	return env, b, nil
}

// Get returns the stored result for the canonical key. A verification
// failure is treated as a miss: counted as corrupt, logged at warn with
// the offending key, and the entry removed.
func (s *Store) Get(key string) (api.Result, bool) {
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return api.Result{}, false
	}
	path := s.path(key)
	env, _, err := readEnvelope(path)
	if err == nil && env.Key != key {
		err = fmt.Errorf("envelope key %q does not match requested key", env.Key)
	}
	var res api.Result
	if err == nil {
		err = json.Unmarshal(env.Result, &res)
	}
	if err != nil {
		s.removeLocked(el)
		s.mu.Unlock()
		_ = os.Remove(path)
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.log.Warn("store: corrupt entry read", "key", key, "error", err.Error())
		return api.Result{}, false
	}
	s.order.MoveToFront(el)
	s.mu.Unlock()
	s.hits.Add(1)
	// Persist the recency so a restart's mtime-seeded LRU order stays
	// close to the live one. Best-effort: a failure only skews eviction.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return res, true
}

// Contains reports whether the key is present without touching recency.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put durably stores a result under its canonical key, evicting
// least-recently-used entries if the size bound is exceeded.
func (s *Store) Put(key string, res api.Result) error {
	raw, err := json.Marshal(res)
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: encoding result for %q: %w", key, err)
	}
	sum := sha256.Sum256(raw)
	env := envelope{
		Version: envelopeVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Result:  raw,
	}
	b, err := json.Marshal(env)
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: encoding envelope for %q: %w", key, err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	// Write-temp-then-rename in the destination directory keeps the
	// replacement atomic on POSIX filesystems.
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPattern)
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		_ = os.Remove(tmp.Name())
		s.writeErrors.Add(1)
		return fmt.Errorf("store: writing %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		s.writeErrors.Add(1)
		return fmt.Errorf("store: writing %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		s.writeErrors.Add(1)
		return fmt.Errorf("store: installing %q: %w", key, err)
	}

	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*entry)
		s.size += int64(len(b)) - e.size
		e.size = int64(len(b))
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&entry{key: key, size: int64(len(b))})
		s.size += int64(len(b))
	}
	s.enforceBoundLocked(s.entries[key])
	s.mu.Unlock()
	return nil
}

// enforceBoundLocked evicts least-recently-used entries until the size
// bound holds, never evicting keep (the entry just inserted).
func (s *Store) enforceBoundLocked(keep *list.Element) {
	if s.maxBytes <= 0 {
		return
	}
	for s.size > s.maxBytes && s.order.Len() > 0 {
		oldest := s.order.Back()
		if oldest == keep {
			break
		}
		e := oldest.Value.(*entry)
		s.removeLocked(oldest)
		_ = os.Remove(s.path(e.key))
		s.evictions.Add(1)
	}
}

// removeLocked drops one entry from the index (not the file).
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.order.Remove(el)
	delete(s.entries, e.key)
	s.size -= e.size
}

// PutAsync queues a write-behind store of the result. Results already on
// disk are skipped (a key's result is deterministic, so rewriting is
// pointless); a full queue drops the write and counts it rather than
// blocking the caller.
func (s *Store) PutAsync(key string, res api.Result) {
	if s.Contains(key) {
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.qclosed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.wq <- writeReq{key: key, res: res}:
	default:
		s.dropped.Add(1)
	}
}

// writer is the single write-behind goroutine: it drains PutAsync
// requests and flush barriers until Close.
func (s *Store) writer() {
	defer s.writerWG.Done()
	for req := range s.wq {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		if err := s.Put(req.key, req.res); err != nil {
			s.log.Warn("store: write-behind failed", "key", req.key, "error", err.Error())
		}
	}
}

// Flush blocks until every PutAsync accepted before the call has been
// written. A no-op on a closed store (Close already flushed).
func (s *Store) Flush() {
	done := make(chan struct{})
	s.qmu.Lock()
	if s.qclosed {
		s.qmu.Unlock()
		return
	}
	s.wq <- writeReq{flush: done}
	s.qmu.Unlock()
	<-done
}

// Close flushes the write-behind queue and stops the writer. Further
// PutAsync/Flush calls are no-ops.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		s.Flush()
		s.qmu.Lock()
		s.qclosed = true
		close(s.wq)
		s.qmu.Unlock()
		s.writerWG.Wait()
	})
}

// Len returns the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Size returns the total bytes of stored result files.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counters snapshots the activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Corrupt:     s.corrupt.Load(),
		Dropped:     s.dropped.Load(),
		WriteErrors: s.writeErrors.Load(),
	}
}
