package store_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mssr/internal/api"
	"mssr/internal/obs"
	"mssr/internal/stats"
	"mssr/internal/store"
)

func result(key string, cycles uint64) api.Result {
	return api.Result{
		Index:    -1,
		Key:      key,
		CacheKey: key,
		Source:   api.SourceRun,
		Program:  "prog",
		Engine:   "rgid",
		Cycles:   cycles,
		Retired:  cycles / 2,
		IPC:      0.5,
		MIPS:     1.25,
		Stats:    &stats.Stats{Cycles: cycles, Retired: cycles / 2, L1DHits: 7},
		Intervals: []obs.Interval{
			{Index: 0, Start: 0, End: 4096, IPC: 0.517},
			{Index: 1, Start: 4096, End: 8192, IPC: 0.733},
		},
	}
}

func open(t *testing.T, dir string, maxBytes int64) *store.Store {
	t.Helper()
	s, err := store.Open(dir, maxBytes, nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	key := "bfs@s0/rgid-4x64+iv4096"
	want := result(key, 1000)
	if err := s.Put(key, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed a just-stored key")
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Errorf("round trip changed the result:\nput %s\ngot %s", wb, gb)
	}
	if _, ok := s.Get("unknown/none"); ok {
		t.Error("Get hit an unknown key")
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("counters = %+v, want 1 hit, 1 miss", c)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	keys := []string{"a/none", "b/rgid-4x64", "c/ri-64s4w+check"}
	for i, k := range keys {
		if err := s.Put(k, result(k, uint64(100*(i+1)))); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	s.Close()

	s2 := open(t, dir, 0)
	if s2.Len() != len(keys) {
		t.Fatalf("reopened store has %d entries, want %d", s2.Len(), len(keys))
	}
	for i, k := range keys {
		got, ok := s2.Get(k)
		if !ok {
			t.Fatalf("reopened store missed %q", k)
		}
		want := result(k, uint64(100*(i+1)))
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if string(wb) != string(gb) {
			t.Errorf("%q changed across reopen:\nput %s\ngot %s", k, wb, gb)
		}
	}
	if c := s2.Counters(); c.Corrupt != 0 {
		t.Errorf("clean reopen counted %d corrupt entries", c.Corrupt)
	}
}

// entryFiles returns every stored entry file under dir.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	key := "mcf/rgid-4x64"
	if err := s.Put(key, result(key, 1000)); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("found %d entry files, want 1", len(files))
	}
	// Truncate the file mid-JSON: the next read must treat the entry as
	// a miss, count the corruption and remove the file.
	if err := os.WriteFile(files[0], []byte(`{"version":1,"key":"mcf/rgid-4x64","sha256":"00"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	c := s.Counters()
	if c.Corrupt != 1 || c.Misses != 1 {
		t.Errorf("counters = %+v, want 1 corrupt, 1 miss", c)
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt entry file not removed")
	}
	// A subsequent Put repopulates cleanly.
	if err := s.Put(key, result(key, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Error("re-put after corruption missed")
	}
}

func TestTamperedContentRejectedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	key := "omnetpp/dir-value-64s4w"
	if err := s.Put(key, result(key, 500)); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip the stored cycle count without updating the checksum: valid
	// JSON, wrong bytes.
	tampered := strings.Replace(string(b), `"cycles":500`, `"cycles":501`, 1)
	if tampered == string(b) {
		t.Fatal("tampering failed to change the file")
	}
	if err := os.WriteFile(files[0], []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := open(t, dir, 0)
	if s2.Len() != 0 {
		t.Errorf("tampered entry survived reopen (len %d)", s2.Len())
	}
	if c := s2.Counters(); c.Corrupt != 1 {
		t.Errorf("reopen counted %d corrupt entries, want 1", c.Corrupt)
	}
	if len(entryFiles(t, dir)) != 0 {
		t.Error("tampered entry file not removed at open")
	}
}

func TestSizeBoundEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	// Measure one entry's file size so the bound can be set to hold
	// exactly three.
	probe := "probe/none"
	if err := s.Put(probe, result(probe, 1)); err != nil {
		t.Fatal(err)
	}
	per := s.Size()
	s.Close()
	os.RemoveAll(dir)

	s = open(t, dir, 3*per+per/2)
	var keys []string
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("wl%d/none", i)
		keys = append(keys, k)
		if err := s.Put(k, result(k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("store holds %d entries, want 3 under the size bound", got)
	}
	if c := s.Counters(); c.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", c.Evictions)
	}
	// The two oldest are gone, the three newest remain.
	for _, k := range keys[:2] {
		if s.Contains(k) {
			t.Errorf("oldest entry %q survived eviction", k)
		}
	}
	for _, k := range keys[2:] {
		if !s.Contains(k) {
			t.Errorf("recent entry %q evicted", k)
		}
	}
	// Touching the LRU tail protects it from the next eviction.
	if _, ok := s.Get(keys[2]); !ok {
		t.Fatal("expected hit")
	}
	k := "extra/none"
	if err := s.Put(k, result(k, 1)); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(keys[2]) {
		t.Error("recently-used entry evicted ahead of older ones")
	}
	if s.Contains(keys[3]) {
		t.Error("LRU entry survived eviction after a newer entry was touched")
	}
}

func TestWriteBehindFlush(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("async%d/none", i)
		s.PutAsync(k, result(k, uint64(i+1)))
	}
	s.Flush()
	if got := s.Len(); got != 20 {
		t.Fatalf("after flush store holds %d entries, want 20", got)
	}
	// Re-queueing an already-stored key is a no-op, not a rewrite.
	before := entryFiles(t, dir)
	s.PutAsync("async0/none", result("async0/none", 999))
	s.Flush()
	got, ok := s.Get("async0/none")
	if !ok || got.Cycles != 1 {
		t.Errorf("PutAsync overwrote an existing entry: %+v", got)
	}
	if after := entryFiles(t, dir); len(after) != len(before) {
		t.Errorf("entry file count changed: %d -> %d", len(before), len(after))
	}
}

func TestReopenPreservesRecencyOrder(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("r%d/none", i)
		if err := s.Put(k, result(k, 1)); err != nil {
			t.Fatal(err)
		}
		// File mtimes seed the reopened LRU order; keep them distinct
		// even on coarse-mtime filesystems.
		time.Sleep(5 * time.Millisecond)
	}
	per := s.Size() / 3
	s.Close()

	// Reopen with room for only two entries: the oldest by mtime (r0)
	// must be the one evicted.
	s2 := open(t, dir, 2*per+per/2)
	if s2.Len() != 2 {
		t.Fatalf("reopened bounded store holds %d entries, want 2", s2.Len())
	}
	if s2.Contains("r0/none") {
		t.Error("oldest entry survived the reopen bound")
	}
	for _, k := range []string{"r1/none", "r2/none"} {
		if !s2.Contains(k) {
			t.Errorf("recent entry %q lost at reopen", k)
		}
	}
}
