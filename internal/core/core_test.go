package core

import (
	"testing"

	"mssr/internal/asm"
	"mssr/internal/emu"
	"mssr/internal/isa"
	"mssr/internal/reuse"
)

// testConfigs returns the engine configurations every equivalence test
// runs under.
func testConfigs() map[string]Config {
	rgidBloom := MultiStreamConfig(4, 64)
	rgidBloom.MS.LoadPolicy = reuse.LoadBloom
	rgidNoLd := MultiStreamConfig(4, 64)
	rgidNoLd.MS.LoadPolicy = reuse.LoadNoReuse
	tinyRGID := MultiStreamConfig(4, 64)
	tinyRGID.RGIDBits = 3 // forces frequent overflow resets
	return map[string]Config{
		"none":        DefaultConfig(),
		"rgid-1x64":   MultiStreamConfig(1, 64), // DCI-equivalent
		"rgid-2x64":   MultiStreamConfig(2, 64),
		"rgid-4x64":   MultiStreamConfig(4, 64),
		"rgid-4x16":   MultiStreamConfig(4, 16),
		"rgid-bloom":  rgidBloom,
		"rgid-noload": rgidNoLd,
		"rgid-tiny":   tinyRGID,
		"ri-64x4":     RIConfigOf(64, 4),
		"ri-64x1":     RIConfigOf(64, 1),
		"dir-value":   DIRConfigOf(64, 4, reuse.DIRValue),
		"dir-name":    DIRConfigOf(64, 4, reuse.DIRName),
	}
}

// runEquiv runs p on the core under cfg with the lockstep checker enabled
// and verifies the final state matches the functional emulator.
func runEquiv(t *testing.T, name string, p *isa.Program, cfg Config) *Core {
	t.Helper()
	cfg.DebugCheck = true
	cfg.MaxCycles = 50_000_000
	c := New(p, cfg)
	if err := c.Run(); err != nil {
		t.Fatalf("%s/%s: %v", p.Name, name, err)
	}
	want, err := emu.RunProgram(p, 500_000_000)
	if err != nil {
		t.Fatalf("%s: emulator: %v", p.Name, err)
	}
	got := c.Result()
	if got != want {
		t.Fatalf("%s/%s: architectural divergence:\ncore: %+v\nemu:  %+v", p.Name, name, got, want)
	}
	if err := c.AuditRegisters(); err != nil {
		t.Fatalf("%s/%s: register audit: %v", p.Name, name, err)
	}
	return c
}

// hashyProgram builds a loop with a data-dependent (hard-to-predict)
// branch followed by a control-independent tail — the Listing 1 idiom.
func hashyProgram(iters int64) *isa.Program {
	b := asm.NewBuilder("hashy")
	b.Data(0x8000, 7, 13, 21, 9)
	b.Li(isa.S0, 0x8000)
	b.Li(isa.S1, iters) // loop counter
	b.Li(isa.A0, 0)     // accumulator
	b.Li(isa.A1, 0)     // i
	b.Label("loop")
	// data1 = hash(i): two multiply-xor-shift rounds (splitmix-style), so
	// the branch bit is effectively random and defeats TAGE.
	b.Li(isa.T0, -0x61c8864680b583eb) // 0x9e3779b97f4a7c15
	b.Mul(isa.T1, isa.A1, isa.T0)
	b.Srli(isa.T2, isa.T1, 30)
	b.Xor(isa.T1, isa.T1, isa.T2)
	b.Li(isa.T0, -0x40a7b892e31b1a47) // 0xbf58476d1ce4e5b9
	b.Mul(isa.T1, isa.T1, isa.T0)
	b.Srli(isa.T2, isa.T1, 27)
	b.Xor(isa.T1, isa.T1, isa.T2)
	b.Andi(isa.T2, isa.T1, 1)
	b.Beqz(isa.T2, "else")
	// then: modify a2-analogue
	b.Addi(isa.A2, isa.A2, 3)
	b.Mul(isa.A2, isa.A2, isa.T0)
	b.J("merge")
	b.Label("else")
	b.Addi(isa.A2, isa.A2, 5)
	b.Label("merge")
	// CI tail: depends only on i and memory, reusable on mispredicts.
	b.Ld(isa.T3, 0, isa.S0)
	b.Add(isa.T4, isa.A1, isa.T3)
	b.Mul(isa.T5, isa.T4, isa.T4)
	b.Add(isa.A0, isa.A0, isa.T5)
	b.Xor(isa.A0, isa.A0, isa.A2)
	b.Addi(isa.A1, isa.A1, 1)
	b.Addi(isa.S1, isa.S1, -1)
	b.Bnez(isa.S1, "loop")
	b.Halt()
	return b.MustProgram()
}

// aliasProgram builds a loop whose CI tail loads an address that the
// previous iteration stored to — exercising memory-order hazards for
// reused loads (§3.8).
func aliasProgram(iters int64) *isa.Program {
	b := asm.NewBuilder("alias")
	b.Data(0x8000, 100)
	b.Li(isa.S0, 0x8000)
	b.Li(isa.S1, iters)
	b.Li(isa.A1, 1)
	b.Label("loop")
	b.Li(isa.T0, 0x45d9f3b)
	b.Mul(isa.T1, isa.A1, isa.T0)
	b.Srli(isa.T2, isa.T1, 11)
	b.Xor(isa.T1, isa.T1, isa.T2)
	b.Andi(isa.T2, isa.T1, 1)
	b.Beqz(isa.T2, "skip")
	b.Addi(isa.A2, isa.A2, 1)
	b.Label("skip")
	// CI load of a location the loop itself stores to.
	b.Ld(isa.T3, 0, isa.S0)
	b.Add(isa.T3, isa.T3, isa.A1)
	b.St(isa.T3, 0, isa.S0)
	b.Addi(isa.A1, isa.A1, 1)
	b.Addi(isa.S1, isa.S1, -1)
	b.Bnez(isa.S1, "loop")
	b.Ld(isa.A0, 0, isa.S0)
	b.Halt()
	return b.MustProgram()
}

func TestCountdownAllConfigs(t *testing.T) {
	p := asm.MustAssemble("countdown", `
    li   t0, 50
    li   a0, 0
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    halt
`)
	for name, cfg := range testConfigs() {
		runEquiv(t, name, p, cfg)
	}
}

func TestHashyBranchAllConfigs(t *testing.T) {
	p := hashyProgram(300)
	var noneCycles, rgidCycles uint64
	for name, cfg := range testConfigs() {
		c := runEquiv(t, name, p, cfg)
		switch name {
		case "none":
			noneCycles = c.Stats.Cycles
		case "rgid-4x64":
			rgidCycles = c.Stats.Cycles
			if c.Stats.BranchMispredicts < 50 {
				t.Errorf("expected frequent mispredicts, got %d", c.Stats.BranchMispredicts)
			}
			if c.Stats.Reconvergences == 0 {
				t.Error("expected reconvergences on the hashy loop")
			}
			if c.Stats.ReuseHits == 0 {
				t.Error("expected squash reuse hits on the CI tail")
			}
		}
	}
	if rgidCycles == 0 || noneCycles == 0 {
		t.Fatal("missing configs")
	}
	// Shape check: reuse must not be slower by more than noise.
	if float64(rgidCycles) > 1.05*float64(noneCycles) {
		t.Errorf("rgid (%d cycles) much slower than baseline (%d)", rgidCycles, noneCycles)
	}
}

func TestMemoryAliasingAllConfigs(t *testing.T) {
	p := aliasProgram(200)
	for name, cfg := range testConfigs() {
		c := runEquiv(t, name, p, cfg)
		if name == "rgid-4x64" && c.Stats.ReuseHits == 0 {
			t.Error("expected some reuse on the alias loop")
		}
	}
}

func TestCallsAndReturns(t *testing.T) {
	p := asm.MustAssemble("calls", `
    li   s1, 40
    li   a0, 0
loop:
    mv   a1, s1
    jal  fn
    add  a0, a0, a2
    addi s1, s1, -1
    bnez s1, loop
    halt
fn:
    andi t0, a1, 1
    beqz t0, even
    slli a2, a1, 1
    ret
even:
    addi a2, a1, 7
    ret
`)
	for name, cfg := range testConfigs() {
		runEquiv(t, name, p, cfg)
	}
}

func TestIndirectJumps(t *testing.T) {
	// A two-target computed jump driven by a hash: exercises the indirect
	// predictor and JALR mispredictions. Two-pass build: the first pass
	// resolves the jump-table base label, the second bakes it into the li
	// (the instruction count is identical, so addresses are stable).
	build := func(t0case int64) *isa.Program {
		b := asm.NewBuilder("indirect")
		b.Li(isa.T3, t0case)
		b.Li(isa.S1, 60)
		b.Li(isa.A0, 0)
		b.Li(isa.A1, 0)
		b.Label("loop")
		b.Li(isa.T0, 0x2545f491)
		b.Mul(isa.T1, isa.A1, isa.T0)
		b.Srli(isa.T1, isa.T1, 17)
		b.Andi(isa.T1, isa.T1, 1)
		b.Slli(isa.T1, isa.T1, 3) // 0 or 8 bytes: selects one of two cases
		b.Add(isa.T2, isa.T1, isa.T3)
		b.Jalr(isa.Zero, isa.T2, 0)
		b.Label("t0case")
		b.Addi(isa.A0, isa.A0, 1)
		b.J("cont")
		b.Label("t1case")
		b.Addi(isa.A0, isa.A0, 100)
		b.Label("cont")
		b.Addi(isa.A1, isa.A1, 1)
		b.Addi(isa.S1, isa.S1, -1)
		b.Bnez(isa.S1, "loop")
		b.Halt()
		return b.MustProgram()
	}
	p := build(0)
	p = build(int64(p.Symbols["t0case"]))
	for name, cfg := range testConfigs() {
		runEquiv(t, name, p, cfg)
	}
}
