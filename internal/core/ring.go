package core

// ring is a fixed-capacity FIFO over a preallocated backing array. The
// cycle loop's front-popped queues (fetch queue, verification queue) use
// it instead of append/re-slice []T, which leaks capacity through the
// slice header on every pop and forces a reallocation each time append
// catches up — the dominant steady-state allocation pattern this
// refactor removes. Push panics on overflow: every caller checks the
// structural limit before enqueueing, so an overflow is a core bug, not
// backpressure.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// newRing returns a ring holding at most capacity elements.
func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, capacity)}
}

// Len reports the number of queued elements.
func (r *ring[T]) Len() int { return r.n }

// Push enqueues v at the back.
func (r *ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		panic("core: ring overflow")
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

// Front returns a pointer to the oldest element. The pointer is valid
// until the next Push/PopFront/Clear.
func (r *ring[T]) Front() *T {
	if r.n == 0 {
		panic("core: ring empty")
	}
	return &r.buf[r.head]
}

// At returns a pointer to the i-th element from the front (0 = oldest).
// The pointer is valid until the next Push/PopFront/Clear/Filter.
func (r *ring[T]) At(i int) *T {
	if i < 0 || i >= r.n {
		panic("core: ring index out of range")
	}
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

// PopFront dequeues the oldest element.
func (r *ring[T]) PopFront() T {
	if r.n == 0 {
		panic("core: ring empty")
	}
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// Clear drops every element, keeping the backing array.
func (r *ring[T]) Clear() {
	r.head, r.n = 0, 0
}

// Filter keeps only the elements keep reports true for, preserving
// order, in place.
func (r *ring[T]) Filter(keep func(T) bool) {
	kept := 0
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		v := r.buf[j]
		if !keep(v) {
			continue
		}
		k := r.head + kept
		if k >= len(r.buf) {
			k -= len(r.buf)
		}
		r.buf[k] = v
		kept++
	}
	r.n = kept
}
