package core

// ring is a fixed-capacity FIFO over a preallocated backing array. The
// cycle loop's front-popped queues (fetch queue, verification queue, LSQ)
// use it instead of append/re-slice []T, which leaks capacity through the
// slice header on every pop and forces a reallocation each time append
// catches up — the dominant steady-state allocation pattern this
// refactor removes. Push panics on overflow: every caller checks the
// structural limit before enqueueing, so an overflow is a core bug, not
// backpressure.
//
// Every element also has a stable absolute index: the Push count at the
// time it was enqueued. Base()/Tail() delimit the live window and
// AtAbs(abs) resolves an absolute index in O(1), which is what gives the
// LSQ its seq→entry lookup without scanning — an entry's absolute index
// never changes as older entries pop, and Truncate (squash) only ever
// removes a suffix. The physical slot Slot(abs) is stable for the same
// reason, so parallel per-slot state (the store-queue executed bitmap)
// stays valid across pops.
type ring[T any] struct {
	buf  []T
	head int
	n    int
	base uint64 // absolute index of the front element
}

// newRing returns a ring holding at most capacity elements.
func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, capacity)}
}

// Len reports the number of queued elements.
func (r *ring[T]) Len() int { return r.n }

// Base returns the absolute index of the front element.
func (r *ring[T]) Base() uint64 { return r.base }

// Tail returns the absolute index one past the back element; an element
// pushed now would receive this index.
func (r *ring[T]) Tail() uint64 { return r.base + uint64(r.n) }

// Push enqueues v at the back and returns its absolute index.
func (r *ring[T]) Push(v T) uint64 {
	*r.PushSlot() = v
	return r.base + uint64(r.n) - 1
}

// PushSlot enqueues a zero-value-agnostic slot at the back and returns a
// pointer to it, letting hot paths fill large elements in place instead
// of copying a stack temporary in. The slot may hold stale data from a
// previous occupant; the caller must assign every field it reads back.
func (r *ring[T]) PushSlot() *T {
	if r.n == len(r.buf) {
		panic("core: ring overflow")
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.n++
	return &r.buf[i]
}

// Front returns a pointer to the oldest element. The pointer is valid
// until the next Push/PopFront/Clear.
func (r *ring[T]) Front() *T {
	if r.n == 0 {
		panic("core: ring empty")
	}
	return &r.buf[r.head]
}

// At returns a pointer to the i-th element from the front (0 = oldest).
// The pointer is valid until the next Push/PopFront/Clear/Filter.
func (r *ring[T]) At(i int) *T {
	if i < 0 || i >= r.n {
		panic("core: ring index out of range")
	}
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

// AtAbs returns a pointer to the element with absolute index abs.
func (r *ring[T]) AtAbs(abs uint64) *T {
	if abs < r.base || abs >= r.base+uint64(r.n) {
		panic("core: ring absolute index out of range")
	}
	return r.At(int(abs - r.base))
}

// Slot returns the physical backing-array slot of absolute index abs.
// Slots are stable for an element's whole residency: pops advance head
// and base together and Truncate only drops the back.
func (r *ring[T]) Slot(abs uint64) int {
	j := r.head + int(abs-r.base)
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return j
}

// PopFront dequeues the oldest element.
func (r *ring[T]) PopFront() T {
	if r.n == 0 {
		panic("core: ring empty")
	}
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	r.base++
	return v
}

// DropFront dequeues the oldest element without copying it out — the hot
// variant of PopFront for callers that have already read the front (or
// don't need it). The slot's contents stay in place until a PushSlot
// reuses it.
func (r *ring[T]) DropFront() {
	if r.n == 0 {
		panic("core: ring empty")
	}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	r.base++
}

// Truncate drops every element with absolute index >= tail, keeping the
// front of the queue intact — the squash shape: younger entries are
// always a suffix.
func (r *ring[T]) Truncate(tail uint64) {
	if tail < r.base {
		tail = r.base
	}
	if keep := int(tail - r.base); keep < r.n {
		r.n = keep
	}
}

// Clear drops every element, keeping the backing array.
func (r *ring[T]) Clear() {
	r.head, r.n, r.base = 0, 0, 0
}

// Filter keeps only the elements keep reports true for, preserving
// order, in place. Filtering compacts survivors toward the front, so
// absolute indices of moved elements change; only queues that never use
// AtAbs/Slot (the verification queue) may use it.
func (r *ring[T]) Filter(keep func(T) bool) {
	kept := 0
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		v := r.buf[j]
		if !keep(v) {
			continue
		}
		k := r.head + kept
		if k >= len(r.buf) {
			k -= len(r.buf)
		}
		r.buf[k] = v
		kept++
	}
	r.n = kept
}
