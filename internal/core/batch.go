package core

import (
	"context"
	"fmt"
	"time"

	"mssr/internal/emu"
	"mssr/internal/isa"
)

// DefaultBatchStride is the lockstep pacing quantum: each pacing round
// advances every live batch member until it has retired at least this
// many further instructions. Pacing in instruction space (not cycles)
// is what keeps the members aligned on the shared architectural stream
// no matter how differently their microarchitectures perform: after a
// round every live core sits within one stride (plus a commit group) of
// every other, so the stream ring stays small and all members finish
// the program in the same round neighbourhood.
const DefaultBatchStride = 4096

// archStream replays one architectural execution of the shared program
// to every batch member that wants commit-time checking. A single
// emulator steps the program on demand and records each StepInfo in a
// ring indexed by retire count; members read records by their own
// cursor (Core.checkIdx). Because the emulator is deterministic, the
// record a member reads is bit-identical to what its private checker
// would have produced — M lockstep variants consume one architectural
// execution instead of stepping M emulators.
type archStream struct {
	em  *emu.Emulator
	rec ring[emu.StepInfo]
}

// at returns the StepInfo of the idx-th retired instruction, stepping
// the emulator forward as needed. idx must be >= the last trim point;
// the ring is sized for the pacing skew bound, so an overflow is a
// batch-driver bug, not backpressure.
func (s *archStream) at(idx uint64) emu.StepInfo {
	for s.rec.Tail() <= idx {
		*s.rec.PushSlot() = s.em.Step()
	}
	return *s.rec.AtAbs(idx)
}

// trim releases every record below minIdx — the slowest live consumer's
// cursor — keeping the ring's live window within one pacing stride.
func (s *archStream) trim(minIdx uint64) {
	for s.rec.Base() < minIdx {
		s.rec.DropFront()
	}
}

// reset rewinds the stream to replay prog from its first instruction.
func (s *archStream) reset(prog *isa.Program) {
	s.em.Reset(prog)
	s.rec.Clear()
}

// Batch steps M cores in lockstep over one shared instruction stream.
// The members are fully independent microarchitectural variants — each
// owns its ROB/LSQ rings, reuse tables, predictor, caches, stats and
// sampler — so any interleaving of their cycle loops produces results
// bit-identical to running them sequentially; what the batch shares is
// the variant-independent work: the program (built once by the caller),
// the architectural reference execution (one emulator feeding every
// member's commit-time check through archStream), and the cache
// residency of the instruction stream itself, which lockstep pacing
// keeps hot across members instead of re-streaming the whole program M
// times.
//
// A Batch is reusable: construct it once for a set of cores, then for
// each program Reset every core to the same *isa.Program and call Run.
// Steady-state reuse allocates nothing.
type Batch struct {
	cores  []*Core
	stride uint64
	errs   []error
	done   []bool
	walls  []time.Duration
	check  archStream
	nCheck int
}

// NewBatch builds a lockstep driver over cores, all of which must
// currently be loaded with the same program (and must be Reset to a
// common program before every subsequent Run). stride is the pacing
// quantum in retired instructions; 0 selects DefaultBatchStride.
func NewBatch(cores []*Core, stride uint64) (*Batch, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("core: batch needs at least one core")
	}
	if stride == 0 {
		stride = DefaultBatchStride
	}
	maxCW, nCheck := 0, 0
	for i, c := range cores {
		if c.prog != cores[0].prog {
			return nil, fmt.Errorf("core: batch member %d loaded with a different program", i)
		}
		if c.cfg.CommitWidth > maxCW {
			maxCW = c.cfg.CommitWidth
		}
		if c.checker != nil {
			nCheck++
		}
	}
	b := &Batch{
		cores:  cores,
		stride: stride,
		errs:   make([]error, len(cores)),
		done:   make([]bool, len(cores)),
		walls:  make([]time.Duration, len(cores)),
		nCheck: nCheck,
	}
	if nCheck > 0 {
		// Live-window bound: at a round's start every live consumer has
		// retired at least the previous target, and within the round no
		// core passes the current target by more than one commit group,
		// so the ring never holds more than stride + CommitWidth
		// records.
		b.check.em = emu.New(cores[0].prog)
		b.check.rec = newRing[emu.StepInfo](int(stride) + maxCW + 8)
	}
	return b, nil
}

// Run executes every member to completion in lockstep pacing rounds and
// returns per-core errors, indexed like the cores slice (the returned
// slice aliases the Batch's internal buffer and is valid until the next
// Run). Each member's results — Stats, Result, intervals — are
// bit-identical to what Core.RunContext would have produced for it
// alone: stepUntil pauses are invisible to the pipeline, and the shared
// architectural stream replays exactly what a private checker computes.
func (b *Batch) Run(ctx context.Context) []error {
	prog := b.cores[0].prog
	for i, c := range b.cores {
		if c.prog != prog {
			panic(fmt.Sprintf("core: batch member %d reset to a different program", i))
		}
		b.errs[i] = nil
		b.done[i] = false
		b.walls[i] = 0
		if c.checker != nil {
			c.checkStream = &b.check
			c.checkIdx = 0
		}
	}
	if b.nCheck > 0 {
		b.check.reset(prog)
	}
	remaining := len(b.cores)
	for target := b.stride; remaining > 0; target += b.stride {
		if b.nCheck > 0 {
			min := ^uint64(0)
			for i, c := range b.cores {
				if !b.done[i] && c.checkStream != nil && c.checkIdx < min {
					min = c.checkIdx
				}
			}
			if min != ^uint64(0) {
				b.check.trim(min)
			}
		}
		for i, c := range b.cores {
			if b.done[i] {
				continue
			}
			t0 := time.Now()
			err := c.stepUntil(ctx, target)
			b.walls[i] += time.Since(t0)
			if err != nil || c.halted {
				c.finishRun()
				c.checkStream = nil
				b.errs[i] = err
				b.done[i] = true
				remaining--
			}
		}
	}
	return b.errs
}

// Size reports the number of member cores.
func (b *Batch) Size() int { return len(b.cores) }

// Walls reports each member's accumulated in-pipeline wall time from the
// last Run — the time its own stepUntil rounds consumed, excluding the
// other members' turns — indexed like the cores slice. Per-member
// throughput accounting stays truthful under batching because the
// members' walls sum to (almost exactly) the batch's total runtime. The
// returned slice aliases the Batch's internal buffer.
func (b *Batch) Walls() []time.Duration { return b.walls }
