package core

// doneEntry identifies one issued instruction awaiting writeback. The
// fetch sequence rides along as the liveness stamp: rename sequences are
// recycled after a squash, fetch sequences never are, so a wheel entry
// whose fseq no longer matches the ROB is a squash leftover and is
// skipped when its cycle comes up.
type doneEntry struct {
	seq  uint64
	fseq uint64
}

// doneWheel is the ordered completion structure behind writeback: a
// timing wheel of per-cycle buckets keyed by doneAt. Scheduling a
// completion is an append into the bucket doneAt & mask; collecting a
// cycle's finishers is draining exactly one bucket. This replaces the
// former executing-slice scan, which re-selected the oldest finished
// instruction from the whole in-flight set after every single writeback
// (O(n²) per cycle on memory-bound workloads where n rides the ROB size).
//
// Squash safety: squashes never touch the wheel. A squashed entry's
// bucket record goes stale and is filtered at drain time by the fseq
// stamp — cheaper than eagerly deleting from future buckets, and immune
// to the mid-writeback squashes that forced the old implementation to
// re-scan.
type doneWheel struct {
	slots [][]doneEntry
	mask  uint64
}

// newDoneWheel returns a wheel able to schedule completions up to span
// cycles ahead.
func newDoneWheel(span uint64) doneWheel {
	n := uint64(ceilPow2(int(span + 1)))
	return doneWheel{slots: make([][]doneEntry, n), mask: n - 1}
}

// add schedules (seq, fseq) to be drained at cycle doneAt. now is the
// current cycle; doneAt must be in (now, now+mask], which the core
// guarantees by sizing the wheel from the maximum configured latency.
func (w *doneWheel) add(now, doneAt uint64, seq, fseq uint64) {
	if doneAt-now > w.mask {
		panic("core: completion scheduled beyond the wheel span")
	}
	i := doneAt & w.mask
	w.slots[i] = append(w.slots[i], doneEntry{seq: seq, fseq: fseq})
}

// take returns cycle's bucket and leaves it empty (capacity retained).
// The returned slice is owned by the caller until the same bucket index
// comes around again, a full wheel period later.
func (w *doneWheel) take(cycle uint64) []doneEntry {
	i := cycle & w.mask
	s := w.slots[i]
	w.slots[i] = s[:0]
	return s
}

// reset empties every bucket, keeping grown capacity for the pooling
// contract.
func (w *doneWheel) reset() {
	for i := range w.slots {
		w.slots[i] = w.slots[i][:0]
	}
}

// sortBySeq orders a drained bucket oldest-first (insertion sort: buckets
// are small and nearly sorted, and the cycle loop must not allocate).
func sortBySeq(s []doneEntry) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].seq > s[j].seq; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
