package core

import (
	"strings"
	"testing"

	"mssr/internal/trace"
)

// TestTraceIntegration runs the hashy workload with a pipeline tracer and
// checks the core emits the full event vocabulary: fetch through commit,
// squashes, redirects, reconvergence and reuse.
func TestTraceIntegration(t *testing.T) {
	p := hashyProgram(100)
	pipe := trace.NewPipeline(64)
	counts := &countingTracer{}
	cfg := MultiStreamConfig(4, 64)
	cfg.Tracer = trace.Multi{pipe, counts}
	cfg.DebugCheck = true
	c := New(p, cfg)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []trace.Kind{
		trace.KindFetch, trace.KindRename, trace.KindIssue,
		trace.KindWriteback, trace.KindCommit, trace.KindSquash,
		trace.KindRedirect, trace.KindReuse, trace.KindReconverge,
	} {
		if counts.n[k] == 0 {
			t.Errorf("no %v events emitted", k)
		}
	}
	if counts.n[trace.KindCommit] != int(c.Stats.Retired) {
		t.Errorf("commit events = %d, retired = %d", counts.n[trace.KindCommit], c.Stats.Retired)
	}
	if counts.n[trace.KindReuse] != int(c.Stats.ReuseHits) {
		t.Errorf("reuse events = %d, hits = %d", counts.n[trace.KindReuse], c.Stats.ReuseHits)
	}
	out := pipe.Render(32)
	if !strings.Contains(out, "mispredict") {
		t.Error("pipeline render missing redirect notes")
	}
}

type countingTracer struct {
	n [32]int
}

func (c *countingTracer) Emit(e trace.Event) { c.n[e.Kind]++ }

// TestTracingDoesNotPerturbTiming verifies tracing is observation-only.
func TestTracingDoesNotPerturbTiming(t *testing.T) {
	p := hashyProgram(200)
	plain := New(p, MultiStreamConfig(4, 64))
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := MultiStreamConfig(4, 64)
	cfg.Tracer = trace.NewPipeline(16)
	traced := New(p, cfg)
	if err := traced.Run(); err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Cycles != traced.Stats.Cycles || plain.Stats.ReuseHits != traced.Stats.ReuseHits {
		t.Errorf("tracing changed behaviour: %v vs %v cycles", plain.Stats.Cycles, traced.Stats.Cycles)
	}
}
