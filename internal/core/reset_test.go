package core

import (
	"bytes"
	"context"
	"testing"

	"mssr/internal/emu"
	"mssr/internal/events"
	"mssr/internal/isa"
	"mssr/internal/obs"
)

// TestResetEquivalence runs different workloads back-to-back through one
// Reset core under every engine configuration, verifying each run against
// the functional emulator — the state-leak guard for the pooling
// contract: nothing from a previous program may influence the next.
func TestResetEquivalence(t *testing.T) {
	progA := hashyProgram(300)
	progB := aliasProgram(300)
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.DebugCheck = true
			cfg.MaxCycles = 50_000_000
			c := New(progA, cfg)
			for _, p := range []*isa.Program{progA, progB, progA} {
				c.Reset(p)
				if err := c.Run(); err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				want, err := emu.RunProgram(p, 500_000_000)
				if err != nil {
					t.Fatalf("%s: emulator: %v", p.Name, err)
				}
				if got := c.Result(); got != want {
					t.Fatalf("%s: architectural divergence after Reset:\ncore: %+v\nemu:  %+v", p.Name, got, want)
				}
				if err := c.AuditRegisters(); err != nil {
					t.Fatalf("%s: register audit after Reset: %v", p.Name, err)
				}
			}
		})
	}
}

// TestResetMatchesFresh pins the fresh==Reset construction: a core that
// ran one program and was Reset onto another must replay the exact cycle
// count and counters of a core built fresh for it. Any divergence means
// Reset missed a piece of state.
func TestResetMatchesFresh(t *testing.T) {
	progA := aliasProgram(200)
	progB := hashyProgram(400)
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.MaxCycles = 50_000_000
			reset := New(progA, cfg)
			if err := reset.Run(); err != nil {
				t.Fatalf("first run: %v", err)
			}
			reset.Reset(progB)
			if err := reset.Run(); err != nil {
				t.Fatalf("reset run: %v", err)
			}
			fresh := New(progB, cfg)
			if err := fresh.Run(); err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			if reset.Stats.Cycles != fresh.Stats.Cycles ||
				reset.Stats.Retired != fresh.Stats.Retired ||
				reset.Stats.Flushes != fresh.Stats.Flushes ||
				reset.Stats.ReuseHits != fresh.Stats.ReuseHits ||
				reset.Stats.BranchMispredicts != fresh.Stats.BranchMispredicts {
				t.Fatalf("reset core diverged from fresh core:\nreset: %v\nfresh: %v", reset.Stats, fresh.Stats)
			}
			if reset.Result() != fresh.Result() {
				t.Fatalf("architectural state diverged:\nreset: %+v\nfresh: %+v", reset.Result(), fresh.Result())
			}
		})
	}
}

// TestSteadyStateZeroAllocs is the allocation-discipline guard: after a
// warm-up run has grown every structure (map buckets included), a full
// Reset+rerun of the same workload must allocate nothing. hashyProgram is
// squash-heavy (its branch defeats TAGE), so this simultaneously pins the
// regression that squash recovery — formerly a map allocation per event —
// no longer allocates per flush. The sampled variant attaches the
// interval-telemetry sampler (internal/obs), which must record into its
// preallocated ring without breaking the discipline.
func TestSteadyStateZeroAllocs(t *testing.T) {
	prog := hashyProgram(500)
	sampling := map[string]uint64{"": 0, "sampled": 4096}
	for name, cfg := range testConfigs() {
		for variant, interval := range sampling {
			sub := name
			if variant != "" {
				sub = name + "/" + variant
			}
			cfg := cfg
			cfg.SampleInterval = interval
			t.Run(sub, func(t *testing.T) {
				cfg.MaxCycles = 50_000_000
				c := New(prog, cfg)
				if err := c.Run(); err != nil { // warm-up: grow everything once
					t.Fatalf("warm-up: %v", err)
				}
				if c.Stats.Flushes < 100 {
					t.Fatalf("workload not squash-heavy enough to pin recovery allocations: %d flushes", c.Stats.Flushes)
				}
				// 10 runs: AllocsPerRun's integer division absorbs the
				// occasional stray GC-internal allocation landing
				// mid-measurement under suite heap pressure; a real per-run
				// allocation still reads >= 1.
				var runErr error
				allocs := testing.AllocsPerRun(10, func() {
					c.Reset(prog)
					if err := c.Run(); err != nil {
						runErr = err
					}
				})
				if runErr != nil {
					t.Fatalf("measured run: %v", runErr)
				}
				if allocs != 0 {
					t.Errorf("steady-state run allocated %.1f objects (cycles=%d, flushes=%d); want 0",
						allocs, c.Stats.Cycles, c.Stats.Flushes)
				}
			})
		}
	}

	// Batched: all twelve configs stepping the shared stream in lockstep,
	// with commit-time checking consuming the shared architectural replay.
	// The Batch is constructed once; steady-state reuse (reset members +
	// Run) must allocate nothing, stream stepping included.
	t.Run("batched", func(t *testing.T) {
		cfgs := testConfigs()
		names := batchTestNames()
		cores := make([]*Core, len(names))
		for i, name := range names {
			cfg := cfgs[name]
			cfg.DebugCheck = true
			cfg.MaxCycles = 50_000_000
			cores[i] = New(prog, cfg)
		}
		b, err := NewBatch(cores, 0)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var runErrs []error
		run := func() {
			for _, c := range cores {
				c.Reset(prog)
			}
			for _, err := range b.Run(ctx) {
				if err != nil {
					runErrs = append(runErrs, err)
				}
			}
		}
		run() // warm-up: grow every structure, stream ring included
		// 10 runs for the same GC-noise absorption as the per-config loop.
		allocs := testing.AllocsPerRun(10, run)
		if len(runErrs) > 0 {
			t.Fatalf("batched runs failed: %v", runErrs)
		}
		if allocs != 0 {
			t.Errorf("steady-state batched run allocated %.1f objects; want 0", allocs)
		}
	})
}

// TestSteadyStateZeroAllocsWithHub extends the allocation guard to the
// live-telemetry tap: a sampled core whose interval hook publishes onto
// an events.Hub with no subscribers must still run allocation-free —
// the hub's fast path is one atomic load, and the Event is passed by
// value. This is the contract that lets the daemon keep the hub
// attached unconditionally.
func TestSteadyStateZeroAllocsWithHub(t *testing.T) {
	prog := hashyProgram(500)
	hub := &events.Hub{}
	for name, cfg := range testConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.MaxCycles = 50_000_000
			cfg.SampleInterval = 4096
			c := New(prog, cfg)
			// The hook is hoisted so the measured loop only re-installs an
			// existing func value after each Reset (as the runner's pooled
			// path does), rather than allocating a fresh closure.
			hook := func(iv *obs.Interval) {
				hub.Publish(events.Event{Type: events.TypeInterval, Key: prog.Name, Interval: *iv})
			}
			c.SetIntervalHook(hook)
			if err := c.Run(); err != nil {
				t.Fatalf("warm-up: %v", err)
			}
			// 10 runs (vs the 2 elsewhere): AllocsPerRun's integer division
			// then absorbs the occasional stray GC-internal allocation that
			// lands mid-measurement under full-suite heap pressure, while a
			// real per-run allocation still reads >= 1.
			var runErr error
			allocs := testing.AllocsPerRun(10, func() {
				c.Reset(prog) // clears the hook, as pooling does
				c.SetIntervalHook(hook)
				if err := c.Run(); err != nil {
					runErr = err
				}
			})
			if runErr != nil {
				t.Fatalf("measured run: %v", runErr)
			}
			if allocs != 0 {
				t.Errorf("hub-attached steady-state run allocated %.1f objects; want 0", allocs)
			}
			if hub.Published() != 0 {
				t.Errorf("no-subscriber publishes were counted as broadcast: %d", hub.Published())
			}
		})
	}
}

// TestSampledIntervalsPooledVsFresh extends the fresh==Reset contract to
// the telemetry stream: the interval NDJSON emitted by a pooled (Reset)
// core must be byte-identical to the one from a freshly built core, under
// every engine configuration. Any difference means either the sampler
// leaks state across Reset or the simulation itself diverged.
func TestSampledIntervalsPooledVsFresh(t *testing.T) {
	progA := aliasProgram(200)
	progB := hashyProgram(400)
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.MaxCycles = 50_000_000
			cfg.SampleInterval = 256
			cfg.SampleWindow = 4096
			pooled := New(progA, cfg)
			if err := pooled.Run(); err != nil {
				t.Fatalf("pooled first run: %v", err)
			}
			pooled.Reset(progB)
			if err := pooled.Run(); err != nil {
				t.Fatalf("pooled reset run: %v", err)
			}
			fresh := New(progB, cfg)
			if err := fresh.Run(); err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			ivs := fresh.Intervals()
			if len(ivs) == 0 {
				t.Fatal("no intervals recorded; workload too short for interval 256?")
			}
			var pooledOut, freshOut bytes.Buffer
			if err := obs.WriteNDJSON(&pooledOut, pooled.Intervals()); err != nil {
				t.Fatal(err)
			}
			if err := obs.WriteNDJSON(&freshOut, ivs); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pooledOut.Bytes(), freshOut.Bytes()) {
				t.Fatalf("interval NDJSON diverged between pooled and fresh cores:\npooled:\n%s\nfresh:\n%s",
					pooledOut.String(), freshOut.String())
			}
			// The memory-hierarchy mirror must be live: both programs load
			// every iteration, so L1D traffic is guaranteed.
			if fresh.Stats.L1DHits+fresh.Stats.L1DMisses == 0 {
				t.Error("stats carry no L1D activity; syncMemStats not wired?")
			}
		})
	}
}
