package core

import (
	"testing"

	"mssr/internal/emu"
	"mssr/internal/isa"
)

// TestResetEquivalence runs different workloads back-to-back through one
// Reset core under every engine configuration, verifying each run against
// the functional emulator — the state-leak guard for the pooling
// contract: nothing from a previous program may influence the next.
func TestResetEquivalence(t *testing.T) {
	progA := hashyProgram(300)
	progB := aliasProgram(300)
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.DebugCheck = true
			cfg.MaxCycles = 50_000_000
			c := New(progA, cfg)
			for _, p := range []*isa.Program{progA, progB, progA} {
				c.Reset(p)
				if err := c.Run(); err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				want, err := emu.RunProgram(p, 500_000_000)
				if err != nil {
					t.Fatalf("%s: emulator: %v", p.Name, err)
				}
				if got := c.Result(); got != want {
					t.Fatalf("%s: architectural divergence after Reset:\ncore: %+v\nemu:  %+v", p.Name, got, want)
				}
				if err := c.AuditRegisters(); err != nil {
					t.Fatalf("%s: register audit after Reset: %v", p.Name, err)
				}
			}
		})
	}
}

// TestResetMatchesFresh pins the fresh==Reset construction: a core that
// ran one program and was Reset onto another must replay the exact cycle
// count and counters of a core built fresh for it. Any divergence means
// Reset missed a piece of state.
func TestResetMatchesFresh(t *testing.T) {
	progA := aliasProgram(200)
	progB := hashyProgram(400)
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.MaxCycles = 50_000_000
			reset := New(progA, cfg)
			if err := reset.Run(); err != nil {
				t.Fatalf("first run: %v", err)
			}
			reset.Reset(progB)
			if err := reset.Run(); err != nil {
				t.Fatalf("reset run: %v", err)
			}
			fresh := New(progB, cfg)
			if err := fresh.Run(); err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			if reset.Stats.Cycles != fresh.Stats.Cycles ||
				reset.Stats.Retired != fresh.Stats.Retired ||
				reset.Stats.Flushes != fresh.Stats.Flushes ||
				reset.Stats.ReuseHits != fresh.Stats.ReuseHits ||
				reset.Stats.BranchMispredicts != fresh.Stats.BranchMispredicts {
				t.Fatalf("reset core diverged from fresh core:\nreset: %v\nfresh: %v", reset.Stats, fresh.Stats)
			}
			if reset.Result() != fresh.Result() {
				t.Fatalf("architectural state diverged:\nreset: %+v\nfresh: %+v", reset.Result(), fresh.Result())
			}
		})
	}
}

// TestSteadyStateZeroAllocs is the allocation-discipline guard: after a
// warm-up run has grown every structure (map buckets included), a full
// Reset+rerun of the same workload must allocate nothing. hashyProgram is
// squash-heavy (its branch defeats TAGE), so this simultaneously pins the
// regression that squash recovery — formerly a map allocation per event —
// no longer allocates per flush.
func TestSteadyStateZeroAllocs(t *testing.T) {
	prog := hashyProgram(500)
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.MaxCycles = 50_000_000
			c := New(prog, cfg)
			if err := c.Run(); err != nil { // warm-up: grow everything once
				t.Fatalf("warm-up: %v", err)
			}
			if c.Stats.Flushes < 100 {
				t.Fatalf("workload not squash-heavy enough to pin recovery allocations: %d flushes", c.Stats.Flushes)
			}
			var runErr error
			allocs := testing.AllocsPerRun(2, func() {
				c.Reset(prog)
				if err := c.Run(); err != nil {
					runErr = err
				}
			})
			if runErr != nil {
				t.Fatalf("measured run: %v", runErr)
			}
			if allocs != 0 {
				t.Errorf("steady-state run allocated %.1f objects (cycles=%d, flushes=%d); want 0",
					allocs, c.Stats.Cycles, c.Stats.Flushes)
			}
		})
	}
}
