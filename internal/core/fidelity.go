package core

import (
	"context"
	"fmt"

	"mssr/internal/emu"
	"mssr/internal/isa"
	"mssr/internal/stats"
)

// This file is the detailed-core half of the multi-fidelity contract: a
// freshly Reset core can be seeded with an architectural state exported by
// the functional emulator (emu.ArchState) and run a bounded detailed
// window starting mid-program, optionally after the emulator warmed the
// core's caches and branch predictor during the functional skip. The
// orchestration lives in internal/sim; these are the mechanisms.

// SeedFrom installs an architectural state exported by the functional
// emulator into a freshly Reset core, so the next Run starts mid-program
// at st.PC instead of at the program entry. It relies on the RAT's
// identity initial mapping (arch reg i -> preg i): writing the low
// NumArchRegs physical registers is exactly an architectural register
// write. The committed memory is deep-copied from st (pooled pages, no
// steady-state allocation) and the private lockstep checker, when
// configured, is moved to the same point so commit-time checking keeps
// working inside the window.
//
// The core must be at cycle 0 with nothing retired (i.e. just Reset or
// ResetWindow for the same program st was produced from); SeedFrom
// panics otherwise.
func (c *Core) SeedFrom(st *emu.ArchState) {
	if c.cycle != 0 || c.Stats.Retired != 0 {
		panic(fmt.Sprintf("core: SeedFrom on a running core (cycle %d, %d retired)", c.cycle, c.Stats.Retired))
	}
	for i := 0; i < isa.NumArchRegs; i++ {
		c.prf[i] = st.Regs[i]
	}
	c.prf[isa.Zero] = 0
	c.mem.CopyFrom(st.Mem)
	c.fu.Redirect(st.PC)
	c.retiredBase = st.Retired
	c.halted = st.Halted
	if c.checker != nil {
		c.checker.SetState(st)
	}
}

// WarmStep observes one functionally executed instruction and applies its
// side effects to the core's timing-only structures: demand accesses prime
// the cache hierarchy and control flow trains the branch predictor the
// same way commit would on a correctly predicted path (snapshot-then-train
// for conditional branches, indirect-target training and RAS push/pop for
// jumps). Pass it as the hook to emu.Emulator.FastForward to fast-forward
// with warming; it performs no architectural work of its own. The info
// pointer is only read during the call, matching FastForward's reuse
// contract.
func (c *Core) WarmStep(info *emu.StepInfo) {
	switch info.Instr.Class() {
	case isa.ClassLoad, isa.ClassStore:
		c.hier.Access(info.Outcome.MemAddr)
	case isa.ClassBranch:
		s := c.bp.Snapshot()
		c.bp.Train(info.PC, s, info.Outcome.Taken)
		c.bp.ShiftHistory(info.Outcome.Taken)
	case isa.ClassJump:
		if info.Instr.Rd == isa.RA {
			c.bp.PushRAS(info.PC + isa.InstrBytes)
		}
	case isa.ClassJumpR:
		if info.Instr.Rd == isa.Zero && info.Instr.Rs1 == isa.RA {
			c.bp.PopRAS()
			return
		}
		c.bp.TrainIndirect(info.PC, info.NextPC)
		if info.Instr.Rd == isa.RA {
			c.bp.PushRAS(info.PC + isa.InstrBytes)
		}
	}
}

// ResetWindow prepares the core for the next sample period of a
// multi-fidelity run: like Reset, but the timing-only state — cache
// hierarchy contents and branch-predictor tables — survives, the way it
// would across a contiguous detailed run. Without this each period would
// restart with a cold L2 that one skip's worth of warming cannot refill,
// and memory-bound windows would read far slower than the regions they
// sample. The preserved hit/miss counters are re-baselined by the
// EndWarmup that precedes every window.
//
// The committed memory and the lockstep checker are left stale: the
// SeedFrom that must follow overwrites both with the emulator's state,
// so reloading the program image here would be pure waste (for
// memory-heavy workloads the reload would dominate the period).
func (c *Core) ResetWindow(prog *isa.Program) { c.resetPipeline(prog) }

// EndWarmup draws the statistics baseline after functional warming: the
// cache hierarchy keeps every line WarmStep primed but its hit/miss/
// eviction/DRAM counters are zeroed, so the detailed window's measured
// memory behaviour excludes warm-up traffic.
func (c *Core) EndWarmup() {
	c.hier.ResetCounters()
}

// RunFor simulates until n more instructions have retired, the program
// halts, ctx is cancelled, or the cycle limit elapses; n == 0 means run to
// completion. It seals the run's counters exactly like RunContext, so one
// Reset(+SeedFrom) pairs with one RunFor. Pausing at a retire target is
// cycle-identical to an uninterrupted run (see stepUntil), which is what
// makes a fast-forward-then-detail run comparable to the tail of a
// full-detail one.
func (c *Core) RunFor(ctx context.Context, n uint64) error {
	target := ^uint64(0)
	if n > 0 {
		target = c.Stats.Retired + n
	}
	err := c.stepUntil(ctx, target)
	c.finishRun()
	return err
}

// RunWindow runs one detailed sample window with a measurement-excluded
// detailed-warmup prefix: it first retires warmup instructions in full
// detail (letting the pipeline, MSHRs and reuse structures reach steady
// state), snapshots the counters into pre, then retires the window
// (window == 0 means run to completion) and seals the run. win receives
// the measured window alone — the period's counters minus the prefix
// snapshot — which is what makes short sample windows unbiased by their
// cold-start transient. Like RunFor, it pairs with one Reset(+SeedFrom).
func (c *Core) RunWindow(ctx context.Context, warmup, window uint64, pre, win *stats.Stats) error {
	if warmup > 0 && !c.halted {
		if err := c.stepUntil(ctx, c.Stats.Retired+warmup); err != nil {
			c.finishRun()
			win.Reset() // nothing measured
			return err
		}
	}
	c.syncMemStats()
	pre.CopyFrom(c.Stats)
	pre.Cycles = c.cycle
	target := ^uint64(0)
	if window > 0 {
		target = c.Stats.Retired + window
	}
	err := c.stepUntil(ctx, target)
	c.finishRun()
	win.CopyFrom(c.Stats)
	win.Sub(pre)
	return err
}

// Halted reports whether the program's HALT has committed (or the core was
// seeded from an already-halted state).
func (c *Core) Halted() bool { return c.halted }
