package core

import (
	"testing"

	"mssr/internal/randprog"
)

// TestRandomProgramsEquivalence is the repository's central property test:
// random programs full of nested data-dependent branches, loops, loads and
// stores must produce identical architectural results on the timing core —
// under every reuse engine — as on the functional emulator, with the
// lockstep checker armed the whole way.
func TestRandomProgramsEquivalence(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	cfgs := testConfigs()
	for seed := int64(0); seed < seeds; seed++ {
		p := randprog.Generate(seed, randprog.DefaultConfig())
		for name, cfg := range cfgs {
			runEquiv(t, name, p, cfg)
		}
	}
}

// TestRandomProgramsDeepNesting uses deeper nesting and more statements so
// multi-level mispredictions (the multi-stream case) occur.
func TestRandomProgramsDeepNesting(t *testing.T) {
	cfg := randprog.DefaultConfig()
	cfg.MaxDepth = 4
	cfg.MaxStmts = 8
	cfg.MaxLoopIters = 8
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(100); seed < 100+seeds; seed++ {
		p := randprog.Generate(seed, cfg)
		for name, c := range testConfigs() {
			runEquiv(t, name, p, c)
		}
	}
}

// TestRGIDResetsHappenWithNarrowTags forces the overflow/reset protocol to
// run and verifies it preserves correctness.
func TestRGIDResetsHappenWithNarrowTags(t *testing.T) {
	cfg := MultiStreamConfig(4, 64)
	cfg.RGIDBits = 3
	p := randprog.Generate(7, randprog.DefaultConfig())
	c := runEquiv(t, "rgid-tiny", p, cfg)
	if c.Stats.RGIDResets == 0 {
		t.Error("3-bit RGIDs should force at least one global reset")
	}
}
