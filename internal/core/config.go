// Package core implements the execution-driven out-of-order superscalar
// timing model: an 8-wide fetch/rename/commit pipeline with a 256-entry
// ROB, unified physical register file, reservation stations, a load-store
// queue with store-to-load forwarding and violation detection, and real
// wrong-path execution — the substrate the paper's squash-reuse mechanisms
// require (Table 3 configuration).
//
// The core executes speculatively down predicted paths with renamed
// registers and speculative load data, exactly like gem5's execution-driven
// O3 model; on a branch misprediction it captures the squashed stream into
// the configured reuse engine, rolls the RAT (with RGIDs) back, and
// redirects fetch. Reuse grants complete instructions at rename.
package core

import (
	"mssr/internal/bpred"
	"mssr/internal/mem"
	"mssr/internal/reuse"
	"mssr/internal/trace"
)

// ReuseKind selects the squash-reuse engine.
type ReuseKind int

// Reuse engine kinds.
const (
	// ReuseNone is the baseline without squash reuse.
	ReuseNone ReuseKind = iota
	// ReuseMultiStream is the paper's RGID-based multi-stream mechanism.
	// Configured with MS.Streams == 1 it models Dynamic Control
	// Independence (DCI), as in the paper's comparison.
	ReuseMultiStream
	// ReuseRI is the Register Integration table baseline.
	ReuseRI
	// ReuseDIR is the Dynamic Instruction Reuse baseline (value or name
	// scheme, §3.7.1).
	ReuseDIR
)

func (k ReuseKind) String() string {
	switch k {
	case ReuseNone:
		return "none"
	case ReuseMultiStream:
		return "rgid"
	case ReuseRI:
		return "ri"
	case ReuseDIR:
		return "dir"
	}
	return "unknown"
}

// Config parameterizes the core. DefaultConfig reproduces the paper's
// Table 3.
type Config struct {
	// BlocksPerCycle is the number of prediction blocks fetched per cycle
	// (2 models the multiple-block fetching extension of §3.9.1).
	BlocksPerCycle int
	// RenameWidth is the decode/rename width.
	RenameWidth int
	// CommitWidth is the retirement width.
	CommitWidth int
	// FrontendDelay is the fetch-to-rename latency in cycles (the paper's
	// 5-stage frontend).
	FrontendDelay uint64
	// ROBSize is the reorder buffer capacity.
	ROBSize int
	// PhysRegs is the physical register file size.
	PhysRegs int
	// IQSize is the ALU/BRU reservation station capacity.
	IQSize int
	// MemIQSize is the LSU reservation station capacity.
	MemIQSize int
	// LoadQueue and StoreQueue are the LSQ capacities.
	LoadQueue  int
	StoreQueue int
	// ALUs, BRUs and LSUs are per-cycle issue ports per class.
	ALUs int
	BRUs int
	LSUs int
	// MulLat and DivLat are multiply/divide latencies.
	MulLat uint64
	DivLat uint64
	// FwdLat is the store-to-load forwarding latency.
	FwdLat uint64
	// FetchQueue bounds fetched-but-not-renamed instructions.
	FetchQueue int

	// Mem configures the data-cache hierarchy; BP the branch predictors.
	Mem mem.Config
	BP  bpred.Config

	// RATCheckpoints bounds the rename checkpoints available for branch
	// recovery (Table 2 uses 32). A mispredicting branch holding a
	// checkpoint recovers the RAT+RGID state in one cycle; without one,
	// recovery walks the squashed ROB entries at rename width (the
	// paper's checkpoint-plus-rollback scheme, §3.1). Zero disables
	// checkpoints entirely (pure rollback).
	RATCheckpoints int
	// RGIDBits is the generation tag width (the paper's Table 2 uses 6).
	RGIDBits int
	// OverflowResetThreshold triggers a global RGID reset after this many
	// counter wrap events (the paper uses 8).
	OverflowResetThreshold int

	// Reuse selects the engine; MS, RI and DIR configure it.
	Reuse ReuseKind
	MS    reuse.MultiStreamConfig
	RI    reuse.RIConfig
	DIR   reuse.DIRConfig
	// RITestsPerCycle bounds how many Register Integration tests can run
	// per rename cycle (0 = idealized/unlimited). The paper's §3.7.3
	// shows RI's table accesses serialize through the rename dependency
	// chain, so a real implementation completes only a few per cycle;
	// this knob measures what that costs. It does not apply to the RGID
	// engine, whose reuse test §3.5 parallelizes.
	RITestsPerCycle int

	// SampleInterval, when positive, attaches an interval-telemetry
	// sampler (internal/obs) that snapshots the counters every
	// SampleInterval cycles. Zero disables sampling; the disabled path
	// costs one integer compare per cycle and keeps the cycle loop
	// allocation-free either way.
	SampleInterval uint64
	// SampleWindow bounds the retained interval ring (0 = obs.DefaultWindow).
	// Older intervals are overwritten once the run outgrows it.
	SampleWindow int

	// Tracer, when set, receives pipeline events (see internal/trace);
	// nil disables tracing.
	Tracer trace.Tracer
	// DebugCheck runs a functional emulator in lockstep at commit and
	// panics on any architectural divergence. Tests enable it; benchmarks
	// do not.
	DebugCheck bool
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
}

// maxCompletionLatency bounds how many cycles past issue any instruction
// can be scheduled to complete under this configuration; it sizes the
// completion wheel. The worst case is a load that misses every level
// (issue + 1 + L1 + L2 + DRAM); multiply, divide and store-forwarding
// latencies are covered alongside.
func (c *Config) maxCompletionLatency() uint64 {
	memLat := c.Mem.L1Latency + c.Mem.L2Latency + c.Mem.DRAMLat
	lat := uint64(1)
	for _, l := range []uint64{c.MulLat, c.DivLat, 1 + c.FwdLat, 1 + memLat} {
		if l > lat {
			lat = l
		}
	}
	return lat + 1
}

// DefaultConfig returns the paper's Table 3 baseline with squash reuse
// disabled.
func DefaultConfig() Config {
	return Config{
		BlocksPerCycle: 1,
		RenameWidth:    8,
		CommitWidth:    8,
		FrontendDelay:  4, // 5 pipeline stages fetch->rename
		ROBSize:        256,
		PhysRegs:       256,
		IQSize:         64,
		MemIQSize:      64,
		LoadQueue:      96,
		StoreQueue:     96,
		ALUs:           4,
		BRUs:           2,
		LSUs:           2,
		MulLat:         3,
		DivLat:         12,
		FwdLat:         3,
		FetchQueue:     64,
		Mem:            mem.DefaultConfig(),
		BP:             bpred.DefaultConfig(),
		// The paper's Table 2 uses 6-bit RGIDs over 64 architectural
		// registers and SPEC-sized loop bodies. Our synthetic kernels are
		// far smaller (tight loops over ~15 registers), so per-register
		// counters saturate orders of magnitude faster; 12-bit tags keep
		// the overflow/reset rate comparable to the paper's regime. The
		// storage model still reports the 6-bit configuration, and a
		// bench sweeps the width (see bench_test.go ablations).
		RATCheckpoints:         32,
		RGIDBits:               12,
		OverflowResetThreshold: 8,
		Reuse:                  ReuseNone,
		MS:                     reuse.DefaultMultiStreamConfig(),
		RI:                     reuse.DefaultRIConfig(),
		DIR:                    reuse.DefaultDIRConfig(),
		MaxCycles:              2_000_000_000,
	}
}

// MultiStreamConfig returns the Table 3 core with the paper's mechanism at
// the given stream count and squash-log depth (WPB block entries sized at
// one quarter of the log, as in §4.1.2).
func MultiStreamConfig(streams, logEntries int) Config {
	cfg := DefaultConfig()
	cfg.Reuse = ReuseMultiStream
	cfg.MS.Streams = streams
	cfg.MS.LogEntries = logEntries
	cfg.MS.WPBEntries = max(1, logEntries/4)
	return cfg
}

// RIConfigOf returns the Table 3 core with the Register Integration
// baseline at the given geometry.
func RIConfigOf(sets, ways int) Config {
	cfg := DefaultConfig()
	cfg.Reuse = ReuseRI
	cfg.RI.Sets = sets
	cfg.RI.Ways = ways
	return cfg
}

// DIRConfigOf returns the Table 3 core with the Dynamic Instruction Reuse
// baseline at the given geometry and scheme.
func DIRConfigOf(sets, ways int, scheme reuse.DIRScheme) Config {
	cfg := DefaultConfig()
	cfg.Reuse = ReuseDIR
	cfg.DIR.Sets = sets
	cfg.DIR.Ways = ways
	cfg.DIR.Scheme = scheme
	return cfg
}
