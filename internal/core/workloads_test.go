package core

import (
	"testing"

	"mssr/internal/emu"
	"mssr/internal/workloads"
)

// TestWorkloadsEquivalence runs every evaluation workload (tiny scale)
// under a representative set of reuse engines with the lockstep checker
// armed, and verifies the final architectural state against the
// functional emulator. Combined with the workloads package's own tests
// against independent Go references, this closes the loop:
// Go reference == emulator == timing core under every engine.
func TestWorkloadsEquivalence(t *testing.T) {
	cfgNames := []string{"none", "rgid-4x64", "rgid-1x64", "ri-64x4", "rgid-bloom"}
	if testing.Short() {
		cfgNames = []string{"rgid-4x64"}
	}
	cfgs := testConfigs()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.BuildScaled(0) // tiny validation scale
			for _, name := range cfgNames {
				c := runEquiv(t, name, p, cfgs[name])
				_ = c
			}
		})
	}
}

// TestWorkloadChecksumOnCore spot-checks that the core's committed memory
// holds the reference checksum (exercising the Result path end to end).
func TestWorkloadChecksumOnCore(t *testing.T) {
	w, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	p := w.BuildScaled(0)
	cfg := MultiStreamConfig(4, 64)
	cfg.DebugCheck = true
	c := New(p, cfg)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	e := emu.New(p)
	if err := e.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if got, want := c.CommittedMemory().Read(workloads.CheckAddr()), e.Mem.Read(workloads.CheckAddr()); got != want {
		t.Fatalf("checksum = %#x, want %#x", got, want)
	}
}
