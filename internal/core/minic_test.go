package core

import (
	"testing"

	"mssr/internal/minic"
)

// minicBranchy builds a data-dependent branchy kernel through the
// structured layer, closing the loop minic -> asm -> isa -> core.
func minicBranchy(iters int64) *minic.Program {
	p := minic.NewProgram("minic-branchy")
	i := p.Var("i")
	h := p.Var("h")
	acc := p.Var("acc")
	scratch := p.Array(0x90000, make([]uint64, 64))
	p.Assign(acc, minic.Int(0))
	p.For(i, minic.Int(0), minic.Int(iters), func() {
		// splitmix-style mix: the branch below is effectively random.
		p.Assign(h, minic.Mul(i, minic.Int(-0x61c8864680b583eb)))
		p.Assign(h, minic.Xor(h, minic.Shr(h, minic.Int(30))))
		p.Assign(h, minic.Mul(h, minic.Int(-0x40a7b892e31b1a47)))
		p.Assign(h, minic.Xor(h, minic.Shr(h, minic.Int(27))))
		p.IfElse(minic.Eq(minic.And(h, minic.Int(1)), minic.Int(0)),
			func() { p.Assign(acc, minic.Add(acc, minic.Mul(h, minic.Int(3)))) },
			func() { p.Assign(acc, minic.Xor(acc, h)) })
		// Control-independent tail with memory traffic.
		p.SetAt(scratch, minic.And(i, minic.Int(63)), acc)
		p.Assign(acc, minic.Add(acc, scratch.At(minic.And(h, minic.Int(63)))))
	})
	p.Return(acc)
	return p
}

// TestMinicProgramsEquivalence runs a minic-authored kernel under every
// engine with the lockstep checker.
func TestMinicProgramsEquivalence(t *testing.T) {
	prog := minicBranchy(300).MustBuild()
	for name, cfg := range testConfigs() {
		runEquiv(t, name, prog, cfg)
	}
}

// TestMinicKernelGetsReuse sanity-checks that the structured layer
// produces code the mechanism can actually exploit.
func TestMinicKernelGetsReuse(t *testing.T) {
	prog := minicBranchy(2000).MustBuild()
	c := New(prog, MultiStreamConfig(4, 64))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.BranchMispredicts < 200 {
		t.Errorf("expected a hard branch, mispredicts = %d", c.Stats.BranchMispredicts)
	}
	if c.Stats.ReuseHits == 0 {
		t.Error("expected reuse on the CI tail")
	}
}
