package core

import (
	"fmt"
	"testing"

	"mssr/internal/asm"
	"mssr/internal/isa"
	"mssr/internal/randprog"
	"mssr/internal/trace"
)

// TestStoreToLoadForwarding checks a dependent store->load chain computes
// correctly through the store queue (the load must see the in-flight
// store's data, not stale memory).
func TestStoreToLoadForwarding(t *testing.T) {
	p := asm.MustAssemble("fwd", `
.data 0x8000 5
    li   s0, 0x8000
    li   t0, 41
    addi t0, t0, 1
    st   t0, 0(s0)
    ld   a0, 0(s0)
    addi a0, a0, 1
    st   a0, 8(s0)
    ld   a1, 8(s0)
    halt
`)
	c := runEquiv(t, "none", p, DefaultConfig())
	if got := c.Result().Regs[isa.A1]; got != 43 {
		t.Errorf("a1 = %d, want 43", got)
	}
}

// TestMemOrderViolationDetected builds the classic violation: an older
// store whose address resolves late (behind a divide chain) while a
// younger load to the same address executes early with stale data. The
// store-side scan must flush and replay the load.
func TestMemOrderViolationDetected(t *testing.T) {
	// The store address is computed through a divide so it resolves late,
	// while the younger load's address is ready immediately: the load
	// speculates past the store and must be caught and replayed.
	p := asm.MustAssemble("violation", `
.data 0x8000 111
    li   s0, 0x8000
    li   t0, 640
    li   t1, 10
    div  t2, t0, t1      # 64, slowly
    add  t3, s0, t2      # 0x8040, late
    li   t4, 999
    st   t4, 0(t3)       # store to 0x8040, address late
    ld   a0, 0x40(s0)    # younger load to 0x8040, address early -> speculates
    add  a1, a0, a0
    halt
`)
	c := runEquiv(t, "none", p, DefaultConfig())
	if c.Stats.MemOrderViolations == 0 {
		t.Error("expected a store-to-load violation and replay")
	}
	if got := c.Result().Regs[isa.A0]; got != 999 {
		t.Errorf("a0 = %d, want the store's 999 after replay", got)
	}
}

// TestRegisterPressureReclaim shrinks the physical register file so the
// squash-reuse holds exhaust the free list, forcing the §3.3.2
// condition-5 reclaim path — correctness must be unaffected.
func TestRegisterPressureReclaim(t *testing.T) {
	cfg := MultiStreamConfig(4, 64)
	cfg.PhysRegs = isa.NumArchRegs + 24 // very tight
	cfg.ROBSize = 64
	p := hashyProgram(300)
	runEquiv(t, "tight-prf", p, cfg)
}

// TestTinyStructures runs with minimal queues and widths: stalls on every
// structural resource, still architecturally exact.
func TestTinyStructures(t *testing.T) {
	cfg := MultiStreamConfig(2, 16)
	cfg.RenameWidth = 2
	cfg.CommitWidth = 2
	cfg.ROBSize = 16
	cfg.PhysRegs = isa.NumArchRegs + 16
	cfg.IQSize = 4
	cfg.MemIQSize = 4
	cfg.LoadQueue = 4
	cfg.StoreQueue = 4
	cfg.ALUs = 1
	cfg.BRUs = 1
	cfg.LSUs = 1
	cfg.FetchQueue = 16
	for seed := int64(0); seed < 3; seed++ {
		p := randprog.Generate(seed, randprog.DefaultConfig())
		runEquiv(t, "tiny", p, cfg)
	}
}

// TestCommitOrder verifies retirement is strictly in program order and
// cycle-monotonic using the tracer.
func TestCommitOrder(t *testing.T) {
	p := hashyProgram(100)
	ct := &commitOrderTracer{t: t}
	cfg := MultiStreamConfig(4, 64)
	cfg.Tracer = ct
	c := New(p, cfg)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if ct.commits == 0 {
		t.Fatal("no commits observed")
	}
}

type commitOrderTracer struct {
	t        *testing.T
	lastFseq uint64
	lastCyc  uint64
	commits  int
}

func (ct *commitOrderTracer) Emit(e trace.Event) {
	if e.Kind != trace.KindCommit {
		return
	}
	ct.commits++
	if e.Fseq <= ct.lastFseq {
		ct.t.Errorf("commit order violated: fseq %d after %d", e.Fseq, ct.lastFseq)
	}
	if e.Cycle < ct.lastCyc {
		ct.t.Errorf("commit cycle went backwards: %d after %d", e.Cycle, ct.lastCyc)
	}
	ct.lastFseq, ct.lastCyc = e.Fseq, e.Cycle
}

// TestDeepCallChain exercises the RAS through nested calls (with real
// stack spills of the return address) under every engine.
func TestDeepCallChain(t *testing.T) {
	p2 := asm.MustAssemble("deepcalls", `
    li   sp, 0x7100
    li   s1, 30
    li   a0, 0
loop:
    mv   a1, s1
    jal  f1
    add  a0, a0, a2
    addi s1, s1, -1
    bnez s1, loop
    halt
f1:
    addi sp, sp, -8
    st   ra, 0(sp)
    jal  f2
    addi a2, a2, 1
    ld   ra, 0(sp)
    addi sp, sp, 8
    ret
f2:
    addi sp, sp, -8
    st   ra, 0(sp)
    jal  f3
    slli a2, a2, 1
    ld   ra, 0(sp)
    addi sp, sp, 8
    ret
f3:
    andi a2, a1, 7
    ret
`)
	for name, cfg := range testConfigs() {
		runEquiv(t, name, p2, cfg)
	}
}

// TestRGIDSuspensionThrottlesCapture verifies the reset protocol actually
// suspends stream capture: with very narrow tags, captured streams per
// mispredict drop measurably.
func TestRGIDSuspensionThrottlesCapture(t *testing.T) {
	p := hashyProgram(2000)
	wide := MultiStreamConfig(4, 64)
	cWide := New(p, wide)
	if err := cWide.Run(); err != nil {
		t.Fatal(err)
	}
	narrow := MultiStreamConfig(4, 64)
	narrow.RGIDBits = 4
	cNarrow := New(p, narrow)
	if err := cNarrow.Run(); err != nil {
		t.Fatal(err)
	}
	if cNarrow.Stats.RGIDResets == 0 {
		t.Fatal("narrow tags should trigger resets")
	}
	if cNarrow.Stats.SquashedStreams >= cWide.Stats.SquashedStreams {
		t.Errorf("suspension should reduce captured streams: narrow %d vs wide %d",
			cNarrow.Stats.SquashedStreams, cWide.Stats.SquashedStreams)
	}
	if cNarrow.Stats.ReuseHits >= cWide.Stats.ReuseHits {
		t.Errorf("narrow tags should reduce reuse: %d vs %d",
			cNarrow.Stats.ReuseHits, cWide.Stats.ReuseHits)
	}
}

// TestMultiBlockFetchEquivalence checks the §3.9.1 extension.
func TestMultiBlockFetchEquivalence(t *testing.T) {
	cfg := MultiStreamConfig(4, 64)
	cfg.BlocksPerCycle = 2
	for seed := int64(0); seed < 3; seed++ {
		p := randprog.Generate(seed, randprog.DefaultConfig())
		runEquiv(t, "two-block", p, cfg)
	}
}

// TestCheckpointRecoveryTiming verifies the checkpoint budget matters:
// with zero checkpoints every mispredict pays a rollback walk, so the same
// program takes strictly more cycles than with the Table 2 budget of 32.
func TestCheckpointRecoveryTiming(t *testing.T) {
	p := hashyProgram(500)
	with := DefaultConfig()
	cWith := New(p, with)
	if err := cWith.Run(); err != nil {
		t.Fatal(err)
	}
	without := DefaultConfig()
	without.RATCheckpoints = 0
	cWithout := New(p, without)
	if err := cWithout.Run(); err != nil {
		t.Fatal(err)
	}
	if cWithout.Stats.Cycles <= cWith.Stats.Cycles {
		t.Errorf("pure rollback (%d cycles) should be slower than checkpointed recovery (%d)",
			cWithout.Stats.Cycles, cWith.Stats.Cycles)
	}
	// Both remain architecturally exact.
	runEquiv(t, "no-checkpoints", p, without)
}

// TestRISerializationCost verifies the §3.7.3 knob: limiting RI's
// integration tests per cycle reduces its reuse, while leaving
// architectural behaviour exact.
func TestRISerializationCost(t *testing.T) {
	p := hashyProgram(2000)
	ideal := RIConfigOf(64, 4)
	cIdeal := New(p, ideal)
	if err := cIdeal.Run(); err != nil {
		t.Fatal(err)
	}
	limited := RIConfigOf(64, 4)
	limited.RITestsPerCycle = 1
	cLim := runEquiv(t, "ri-serialized", p, limited)
	if cLim.Stats.ReuseHits >= cIdeal.Stats.ReuseHits {
		t.Errorf("serialized RI should reuse less: %d vs %d",
			cLim.Stats.ReuseHits, cIdeal.Stats.ReuseHits)
	}
	if cLim.Stats.Cycles < cIdeal.Stats.Cycles {
		t.Errorf("serialized RI should not be faster: %d vs %d cycles",
			cLim.Stats.Cycles, cIdeal.Stats.Cycles)
	}
}

// TestSimulationDeterminism: identical runs must produce identical
// statistics — the property every experiment in this repository rests on.
func TestSimulationDeterminism(t *testing.T) {
	p := hashyProgram(500)
	cfg := MultiStreamConfig(4, 64)
	a := New(p, cfg)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	b := New(p, cfg)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	sa, sb := *a.Stats, *b.Stats
	sa.RIReplacements, sb.RIReplacements = nil, nil
	if fmt.Sprintf("%+v", sa) != fmt.Sprintf("%+v", sb) {
		t.Errorf("simulation not deterministic:\n%+v\n%+v", sa, sb)
	}
}
