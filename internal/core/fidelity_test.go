package core

import (
	"context"
	"testing"

	"mssr/internal/emu"
	"mssr/internal/isa"
	"mssr/internal/randprog"
)

// runSeeded fast-forwards p on the functional emulator by ff instructions
// (optionally warming c's hierarchy/predictor), seeds a fresh detailed
// core, and runs it to completion. It returns false when the program
// halted inside the skip (nothing detailed to run).
func runSeeded(t *testing.T, name string, p *isa.Program, cfg Config, ff uint64, warm bool) bool {
	t.Helper()
	cfg.DebugCheck = true
	cfg.MaxCycles = 50_000_000
	c := New(p, cfg)
	em := emu.New(p)
	var hook func(*emu.StepInfo)
	if warm {
		hook = c.WarmStep
	}
	em.FastForward(ff, hook)
	if em.Halted {
		return false
	}
	c.EndWarmup()
	st := em.State()
	c.SeedFrom(&st)
	if err := c.RunFor(context.Background(), 0); err != nil {
		t.Fatalf("%s/%s: seeded run: %v", p.Name, name, err)
	}
	want, err := emu.RunProgram(p, 500_000_000)
	if err != nil {
		t.Fatalf("%s: emulator: %v", p.Name, err)
	}
	got := c.Result()
	if got != want {
		t.Fatalf("%s/%s: ff=%d warm=%v: architectural divergence:\nseeded core: %+v\nemu:         %+v",
			p.Name, name, ff, warm, got, want)
	}
	if err := c.AuditRegisters(); err != nil {
		t.Fatalf("%s/%s: register audit: %v", p.Name, name, err)
	}
	return true
}

// TestFastForwardSeedEquivalence is the multi-fidelity counterpart of
// TestRandomProgramsEquivalence: fast-forwarding N instructions
// functionally and then running the detailed core to completion must
// reproduce the full-program architectural state and retired-instruction
// count bit for bit, under every reuse engine, with the lockstep checker
// armed across the seam. This is the property that makes an ff-only spec
// (Spec.FastForward > 0, DetailedWindow == 0) an exact run.
func TestFastForwardSeedEquivalence(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	rcfg := randprog.DefaultConfig()
	rcfg.MaxDepth = 4
	rcfg.MaxStmts = 8
	rcfg.MaxLoopIters = 8
	cfgs := testConfigs()
	for seed := int64(0); seed < seeds; seed++ {
		p := randprog.Generate(seed, rcfg)
		// Seam points proportional to this program's dynamic length, so
		// every case actually exercises a mid-program handoff.
		full, err := emu.RunProgram(p, 500_000_000)
		if err != nil {
			t.Fatalf("seed %d: emulator: %v", seed, err)
		}
		total := full.Retired
		for _, ff := range []uint64{1, total / 4, total / 2, total - 1} {
			if ff == 0 || ff >= total {
				continue
			}
			for name, cfg := range cfgs {
				if !runSeeded(t, name, p, cfg, ff, false) {
					t.Errorf("seed %d ff=%d/%d: skip swallowed the program", seed, ff, total)
				}
			}
		}
	}
}

// TestFastForwardWarmedSeedEquivalence repeats the seam check with
// cache/branch-predictor warming enabled: warming touches timing-only
// state, so the architectural end state must be unchanged.
func TestFastForwardWarmedSeedEquivalence(t *testing.T) {
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	cfgs := testConfigs()
	rcfg := randprog.DefaultConfig()
	rcfg.MaxDepth = 4
	rcfg.MaxStmts = 8
	rcfg.MaxLoopIters = 8
	for seed := int64(50); seed < 50+seeds; seed++ {
		p := randprog.Generate(seed, rcfg)
		full, err := emu.RunProgram(p, 500_000_000)
		if err != nil {
			t.Fatalf("seed %d: emulator: %v", seed, err)
		}
		for name, cfg := range cfgs {
			runSeeded(t, name, p, cfg, full.Retired/2, true)
		}
	}
}

// TestSeedFromRequiresFreshCore pins the misuse guard: seeding a core
// that has already cycled must panic rather than silently corrupt state.
func TestSeedFromRequiresFreshCore(t *testing.T) {
	p := randprog.Generate(1, randprog.DefaultConfig())
	c := New(p, DefaultConfig())
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	em := emu.New(p)
	em.FastForward(16, nil)
	st := em.State()
	defer func() {
		if recover() == nil {
			t.Fatal("SeedFrom on a running core did not panic")
		}
	}()
	c.SeedFrom(&st)
}

// TestSeededWindowRetiredBase pins program-relative retirement counts: a
// window seeded at instruction N reports Result().Retired = N + window
// retirements, and a Reset clears the base.
func TestSeededWindowRetiredBase(t *testing.T) {
	p := hashyProgram(500)
	em := emu.New(p)
	const ff = 512
	if em.FastForward(ff, nil) != ff || em.Halted {
		t.Fatalf("program shorter than %d instructions", ff)
	}
	c := New(p, DefaultConfig())
	st := em.State()
	c.SeedFrom(&st)
	const window = 200
	if err := c.RunFor(context.Background(), window); err != nil {
		t.Fatal(err)
	}
	if got := c.Result().Retired; got != ff+c.Stats.Retired {
		t.Fatalf("Result().Retired = %d, want base %d + window %d", got, ff, c.Stats.Retired)
	}
	// The retire target is checked at cycle granularity, so the window can
	// overshoot by at most one commit group.
	if c.Stats.Retired < window || c.Stats.Retired >= window+uint64(DefaultConfig().CommitWidth) {
		t.Fatalf("window retired %d, want [%d, %d)", c.Stats.Retired, window, window+uint64(DefaultConfig().CommitWidth))
	}
	c.Reset(p)
	if got := c.Result().Retired; got != 0 {
		t.Fatalf("Reset left retiredBase: Result().Retired = %d", got)
	}
}
