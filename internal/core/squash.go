package core

import (
	"fmt"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/reuse"
	"mssr/internal/trace"
)

// mispredictFlush handles a resolved branch misprediction: repair the
// predictor, capture the squashed stream into the reuse engine (the
// paper's FTQ-to-WPB dump plus ROB-to-Squash-Log population), roll the
// rename state back and redirect fetch.
func (c *Core) mispredictFlush(e *robEntry) {
	// Predictor repair: restore the pre-prediction state, then re-apply
	// the resolved outcome.
	c.bp.Restore(e.snapshot)
	if e.instr.IsBranch() {
		c.bp.ShiftHistory(e.taken)
	}
	if e.isCall {
		c.bp.PushRAS(e.pc + isa.InstrBytes)
	}
	if e.isReturn {
		c.bp.PopRAS()
	}

	// Capture the wrong path (younger than the branch) in program order.
	// Stream acceptance is suspended during the RGID reset drain window
	// (§3.3.2).
	// Stream identity uses the fetch sequence: rename sequences are
	// recycled after a squash, fetch sequences are globally unique.
	if c.suspendCommits == 0 {
		// Destination registers of the squash set: source mappings that
		// point at one of these do not survive the rollback (needed by
		// name-keyed reuse schemes). The scratch bitmap on Core is marked
		// here and unmarked below by re-walking the same entries, so
		// squash recovery — the hot path on branchy workloads — never
		// allocates.
		for s := e.seq + 1; s < c.tailSeq(); s++ {
			if se := c.entry(s); se.hasDest {
				c.squashDests[se.destPreg] = true
			}
		}
		c.engine.BeginStream(e.fseq)
		for s := e.seq + 1; s < c.tailSeq(); s++ {
			c.engine.Capture(c.squashedInstr(c.entry(s), c.squashDests))
		}
		c.engine.EndStream()
		for s := e.seq + 1; s < c.tailSeq(); s++ {
			if se := c.entry(s); se.hasDest {
				c.squashDests[se.destPreg] = false
			}
		}
	} else {
		c.engine.AbortWalk()
	}

	target := e.nextPC
	branchFseq := e.fseq
	if c.tracer != nil {
		c.emitTrace(trace.KindRedirect, e, fmt.Sprintf("mispredict -> %#x", target))
	}
	// Recovery timing: a checkpointed branch restores the RAT in one
	// cycle; otherwise the rollback walks the squashed entries at rename
	// width (checkpoint + rollback, §3.1/§3.3.2).
	if !e.hasCheckpoint {
		walked := c.tailSeq() - e.seq - 1
		c.renameBlockedUntil = c.cycle + 1 + walked/uint64(c.cfg.RenameWidth)
	}
	c.squashFrom(e.seq + 1)
	c.fu.Redirect(target)
	c.lastRedirectSeq = branchFseq
	c.Stats.Flushes++
}

// violationFlush squashes from the offending load (inclusive) after a
// memory-order violation: either a store-side scan hit or a reused-load
// verification mismatch. Verification mismatches additionally invalidate
// all reuse state, as the paper specifies (§3.8.3).
func (c *Core) violationFlush(loadSeq uint64, fromReuseVerify bool) {
	e := c.entry(loadSeq)
	pc := e.pc
	c.bp.Restore(e.snapshot)
	c.engine.AbortWalk()
	if fromReuseVerify {
		c.engine.InvalidateAll()
	}
	fseq := e.fseq
	if c.tracer != nil {
		c.emitTrace(trace.KindRedirect, e, fmt.Sprintf("memory-order violation, replay %#x", pc))
	}
	// Loads carry no checkpoints: violation recovery always pays the
	// rollback walk.
	walked := c.tailSeq() - loadSeq
	c.renameBlockedUntil = c.cycle + 1 + walked/uint64(c.cfg.RenameWidth)
	c.squashFrom(loadSeq)
	c.fu.Redirect(pc)
	c.lastRedirectSeq = fseq
	c.Stats.MemOrderViolations++
	c.Stats.Flushes++
}

// squashedInstr converts a ROB entry into the engine capture record.
// squashedDests is the destination-register set of the squash region
// (a bitmap indexed by PhysReg), used to mark which source mappings
// survive the rollback.
func (c *Core) squashedInstr(e *robEntry, squashedDests []bool) reuse.SquashedInstr {
	si := reuse.SquashedInstr{
		Seq:      e.seq,
		PC:       e.pc,
		Instr:    e.instr,
		Executed: e.executed,
		DestPreg: rename.NoPreg,
		DestGen:  rename.NullRGID,
		SrcGens:  e.srcGens,
		SrcPregs: e.srcPregs,
		MemAddr:  e.memAddr,
		Result:   e.result,
	}
	for i := 0; i < e.nsrc; i++ {
		si.SrcSurvives[i] = !squashedDests[e.srcPregs[i]]
	}
	if e.hasDest {
		si.DestPreg = e.destPreg
		si.DestGen = e.destGen
	}
	return si
}

// squashFrom removes every instruction with seq >= firstSeq: the RAT (with
// RGIDs) is rolled back youngest-first, destination registers die (held
// ones survive in the reuse structures), and all scheduler and LSQ state
// younger than the boundary is dropped. The fetch queue is always entirely
// younger than the ROB, so it clears completely.
func (c *Core) squashFrom(firstSeq uint64) {
	for s := c.tailSeq(); s > firstSeq; s-- {
		e := c.entry(s - 1)
		c.emitTrace(trace.KindSquash, e, "")
		if e.hasCheckpoint {
			c.checkpointsInFlight--
		}
		if e.hasDest {
			c.rat.Set(e.instr.Rd, e.oldMap)
			c.tracker.Unlive(e.destPreg)
		}
	}
	c.count = int(firstSeq - c.headSeq)
	c.nextSeq = firstSeq

	// Station lists are seq-ordered, so the squash set is a suffix.
	c.iqs.squashTail(firstSeq)
	c.mems.squashTail(firstSeq)
	// The completion wheel is deliberately not touched: its stale records
	// are filtered at drain time by the ROB-window and fseq checks.
	c.verifQ.Filter(func(s uint64) bool { return s < firstSeq })

	// LSQ entries are in seq order, and the squash set is always a suffix,
	// so recovery truncates from the back — O(squashed) instead of the
	// former full-queue filter. Squashed stores give their executed bits
	// back before their slots can be reused.
	lt := c.loadQ.Tail()
	for lt > c.loadQ.Base() && c.loadQ.AtAbs(lt-1).seq >= firstSeq {
		lt--
	}
	c.loadQ.Truncate(lt)
	st := c.storeQ.Tail()
	for st > c.storeQ.Base() && c.storeQ.AtAbs(st-1).seq >= firstSeq {
		c.unmarkStoreExecuted(st - 1)
		st--
	}
	c.storeQ.Truncate(st)
	c.fetchQ.Clear()
}

// maybeRGIDReset runs the global RGID reset protocol (§3.3.2): triggered
// when overflow events exceed the threshold, or opportunistically when the
// squash logs are unoccupied after any overflow. The reset clears every
// reuse structure, nulls the generation tags of all in-flight state (so
// rollbacks can never resurrect pre-reset tags), restarts the RAT tags and
// counters, and suspends new stream capture until a ROB's worth of
// instructions has committed.
func (c *Core) maybeRGIDReset() {
	if c.cfg.Reuse != ReuseMultiStream {
		return
	}
	over := c.alloc.Overflows
	if over == 0 {
		return
	}
	if over <= c.cfg.OverflowResetThreshold && c.engine.Occupied() {
		return
	}
	c.engine.InvalidateAll()
	for s := c.headSeq; s < c.tailSeq(); s++ {
		e := c.entry(s)
		e.srcGens = [2]rename.RGID{rename.NullRGID, rename.NullRGID}
		e.destGen = rename.NullRGID
		e.oldMap.Gen = rename.NullRGID
	}
	for r := 1; r < isa.NumArchRegs; r++ {
		m := c.rat.Get(isa.Reg(r))
		c.rat.Set(isa.Reg(r), rename.Mapping{Preg: m.Preg, Gen: 0})
	}
	c.alloc.Reset()
	c.suspendCommits = c.cfg.ROBSize
	c.Stats.RGIDResets++
}
