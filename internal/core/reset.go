package core

import (
	"mssr/internal/bpred"
	"mssr/internal/isa"
	"mssr/internal/mem"
	"mssr/internal/obs"
	"mssr/internal/rename"
	"mssr/internal/reuse"
	"mssr/internal/stats"
)

// Resettable is the reuse seam every simulator substrate implements:
// Reset restores the pristine post-construction state in place, without
// reallocating any capacity-dependent structure. Core.Reset composes
// these so a core built once for a Config can run successive programs
// (the pooling contract of internal/sim.Runner): a Reset core must be
// bit-for-bit indistinguishable from a freshly built one.
type Resettable interface {
	Reset()
}

// Compile-time check that every substrate participates in the seam.
var _ = []Resettable{
	(*bpred.Unit)(nil),
	(*mem.Hierarchy)(nil),
	(*obs.Sampler)(nil),
	(*rename.RAT)(nil),
	(*rename.Allocator)(nil),
	(*rename.Tracker)(nil),
	(*stats.Stats)(nil),
	(reuse.Engine)(nil),
}

// Reset reinitializes the core in place to run prog from scratch. Every
// substrate resets through the Resettable seam; nothing capacity-sized
// is reallocated. New routes its own state initialization through Reset,
// which is what makes the pooling contract hold by construction rather
// than by parallel bookkeeping.
func (c *Core) Reset(prog *isa.Program) {
	// The live-interval tap belongs to one run's owner: a pooled core
	// must not fire a stale hook for the next job. ResetWindow
	// (resetPipeline alone) deliberately keeps it so one hook spans all
	// sample periods of a multi-fidelity run.
	c.onInterval = nil
	c.bp.Reset()
	c.hier.Reset()
	c.resetPipeline(prog)
	c.mem.Clear()
	c.mem.Load(prog)
	if c.checker != nil {
		c.checker.Reset(prog)
	}
}

// resetPipeline is Reset minus the timing-only substrates (branch
// predictor, cache hierarchy) and minus the committed-memory and checker
// reload: it clears the pipeline, rename state, register state and
// counters. ResetWindow (internal/core fidelity.go) exposes it so a
// multi-fidelity run's sample periods keep their accumulated cache and
// predictor contents, the way a contiguous run would — and skip the
// program-image reload that the SeedFrom following every ResetWindow
// would overwrite anyway (for memory-heavy workloads that reload
// dominates the period).
func (c *Core) resetPipeline(prog *isa.Program) {
	c.prog = prog
	// The engine resets first: it releases its held physical registers
	// through the tracker, which must still be in the matching state.
	c.engine.Reset()
	c.fu.Reset(prog)
	c.rat.Reset()
	c.alloc.Reset()
	c.tracker.Reset()
	c.Stats.Reset()

	for i := range c.prf {
		c.prf[i] = 0
	}
	for i := range c.prfReady {
		c.prfReady[i] = i < isa.NumArchRegs // initial architectural mappings
	}
	c.headIdx, c.count = 0, 0
	c.headSeq, c.nextSeq = 1, 1
	c.fseq, c.lastRedirectSeq = 0, 0
	c.checkpointsInFlight = 0
	c.renameBlockedUntil = 0
	c.fetchQ.Clear()
	c.verifQ.Clear()
	c.iqs.reset()
	c.mems.reset()
	c.wheel.reset()
	c.loadQ.Clear()
	c.storeQ.Clear()
	clear(c.storeExec)
	c.storeExecCount = 0
	for i := range c.squashDests {
		c.squashDests[i] = false
	}
	c.suspendCommits = 0
	c.sampleAt = ^uint64(0)
	if c.sampler != nil {
		c.sampler.Reset()
		c.sampleAt = c.cfg.SampleInterval
	}
	c.cycle = 0
	c.halted = false
	c.retiredBase = 0
	// Any batch-shared check stream belongs to the previous run; the
	// batch driver re-attaches after Reset.
	c.checkStream = nil
	c.checkIdx = 0
}
