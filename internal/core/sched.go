package core

import "mssr/internal/rename"

// sched is an event-driven reservation station. The former
// implementation kept entries in a slice and re-scanned all of them
// whenever a register wrote back; on stall-heavy workloads almost every
// scan walked dozens of operand-blocked entries to find the one or two
// a wakeup had actually unblocked. Here the scan is inverted into the
// classic wakeup design: each entry counts its unready sources, every
// pending source sits on a per-register waiter list, and a register
// write moves exactly the entries it unblocked onto a seq-ordered ready
// list. Issue then walks only ready entries.
//
// Selection is bit-identical to the scan it replaces: the ready list is
// kept in seq order, which is the order entries sat in the old slice,
// and readiness itself is the same prfReady predicate — a source is
// registered as pending exactly when prfReady was false at dispatch,
// and prfReady never falls while a consumer is resident (a source
// register cannot be recycled under a live reader). Port budgets are
// spent walking the ready list in that same order, so the set of
// instructions issued each cycle, and their order, are unchanged.
//
// All links are slot indices into pool; -1 terminates. Waiter-list
// nodes are (entry, source-slot) pairs encoded as slot*2+k, so an entry
// can wait on both of its sources independently (including the same
// register twice).
type sched struct {
	pool []schedEntry
	free int32 // free-slot list through stNext

	headSt, tailSt   int32 // resident entries, program (seq) order
	headRdy, tailRdy int32 // ready entries, seq order

	waitHead []int32 // per-physical-register waiter list heads
	n        int     // resident entries
}

type schedEntry struct {
	seq      uint64
	srcPregs [2]rename.PhysReg
	nsrc     uint8
	bru      bool // branch/jump-register: competes for BRU ports
	nwait    uint8
	inReady  bool
	pending  [2]bool // source k registered on a waiter list

	stPrev, stNext   int32
	rdyPrev, rdyNext int32
	wPrev, wNext     [2]int32 // waiter-list links, node id = slot*2+k
}

func newSched(size, pregs int) sched {
	s := sched{
		pool:     make([]schedEntry, size),
		waitHead: make([]int32, pregs),
	}
	s.reset()
	return s
}

// reset empties the station; pooled cores call it between runs, so it
// also rebuilds the free list deterministically (slot 0 first).
func (s *sched) reset() {
	for i := range s.pool {
		s.pool[i] = schedEntry{stNext: int32(i + 1)}
	}
	if len(s.pool) > 0 {
		s.pool[len(s.pool)-1].stNext = -1
		s.free = 0
	} else {
		s.free = -1
	}
	s.headSt, s.tailSt = -1, -1
	s.headRdy, s.tailRdy = -1, -1
	for i := range s.waitHead {
		s.waitHead[i] = -1
	}
	s.n = 0
}

// insert dispatches an entry. Callers check Len against the station
// capacity first, exactly as they bounded the former slice.
func (s *sched) insert(seq uint64, srcPregs [2]rename.PhysReg, nsrc uint8, bru bool, prfReady []bool) {
	i := s.free
	e := &s.pool[i]
	s.free = e.stNext

	e.seq = seq
	e.srcPregs = srcPregs
	e.nsrc = nsrc
	e.bru = bru
	e.nwait = 0
	e.inReady = false
	e.pending[0], e.pending[1] = false, false

	// Program-order tail append: seq is allocated in dispatch order.
	e.stPrev, e.stNext = s.tailSt, -1
	if s.tailSt >= 0 {
		s.pool[s.tailSt].stNext = i
	} else {
		s.headSt = i
	}
	s.tailSt = i

	for k := uint8(0); k < nsrc; k++ {
		p := srcPregs[k]
		if prfReady[p] {
			continue
		}
		e.nwait++
		e.pending[k] = true
		nid := i*2 + int32(k)
		e.wPrev[k] = -1
		e.wNext[k] = s.waitHead[p]
		if h := s.waitHead[p]; h >= 0 {
			s.pool[h/2].wPrev[h&1] = nid
		}
		s.waitHead[p] = nid
	}
	if e.nwait == 0 {
		// Highest seq resident, so the ready tail keeps seq order.
		e.inReady = true
		e.rdyPrev, e.rdyNext = s.tailRdy, -1
		if s.tailRdy >= 0 {
			s.pool[s.tailRdy].rdyNext = i
		} else {
			s.headRdy = i
		}
		s.tailRdy = i
	}
	s.n++
}

// wake drains physical register p's waiter list: p just became ready,
// so every pending source naming it resolves, and entries whose last
// pending source this was join the ready list at their seq position.
func (s *sched) wake(p rename.PhysReg) {
	nid := s.waitHead[p]
	if nid < 0 {
		return
	}
	s.waitHead[p] = -1
	for nid >= 0 {
		i, k := nid/2, nid&1
		e := &s.pool[i]
		next := e.wNext[k]
		e.pending[k] = false
		e.nwait--
		if e.nwait == 0 {
			s.insertReady(i)
		}
		nid = next
	}
}

// insertReady places slot i into the ready list at its seq position,
// searching from the tail (woken entries are usually among the oldest
// resident, but the ready list itself is short).
func (s *sched) insertReady(i int32) {
	e := &s.pool[i]
	e.inReady = true
	after := s.tailRdy
	for after >= 0 && s.pool[after].seq > e.seq {
		after = s.pool[after].rdyPrev
	}
	e.rdyPrev = after
	if after >= 0 {
		e.rdyNext = s.pool[after].rdyNext
		s.pool[after].rdyNext = i
	} else {
		e.rdyNext = s.headRdy
		s.headRdy = i
	}
	if e.rdyNext >= 0 {
		s.pool[e.rdyNext].rdyPrev = i
	} else {
		s.tailRdy = i
	}
}

// remove deletes slot i (issued or squashed): unlinks the station
// list, the ready list if present, and any pending waiter nodes.
func (s *sched) remove(i int32) {
	e := &s.pool[i]
	if e.stPrev >= 0 {
		s.pool[e.stPrev].stNext = e.stNext
	} else {
		s.headSt = e.stNext
	}
	if e.stNext >= 0 {
		s.pool[e.stNext].stPrev = e.stPrev
	} else {
		s.tailSt = e.stPrev
	}
	if e.inReady {
		if e.rdyPrev >= 0 {
			s.pool[e.rdyPrev].rdyNext = e.rdyNext
		} else {
			s.headRdy = e.rdyNext
		}
		if e.rdyNext >= 0 {
			s.pool[e.rdyNext].rdyPrev = e.rdyPrev
		} else {
			s.tailRdy = e.rdyPrev
		}
		e.inReady = false
	}
	for k := uint8(0); k < e.nsrc; k++ {
		if !e.pending[k] {
			continue
		}
		e.pending[k] = false
		pv, nx := e.wPrev[k], e.wNext[k]
		if pv >= 0 {
			s.pool[pv/2].wNext[pv&1] = nx
		} else {
			s.waitHead[e.srcPregs[k]] = nx
		}
		if nx >= 0 {
			s.pool[nx/2].wPrev[nx&1] = pv
		}
	}
	e.stNext = s.free
	s.free = i
	s.n--
}

// squashTail drops every resident entry with seq >= firstSeq. The
// station list is seq-ordered, so the squash set is a suffix —
// O(squashed) instead of the former full-station filter.
func (s *sched) squashTail(firstSeq uint64) {
	for s.tailSt >= 0 && s.pool[s.tailSt].seq >= firstSeq {
		s.remove(s.tailSt)
	}
}

// Len reports resident entries (the dispatch structural-hazard bound).
func (s *sched) Len() int { return s.n }
