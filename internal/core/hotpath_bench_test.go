package core

import (
	"testing"

	"mssr/internal/asm"
)

// benchLoadCore returns a core whose store queue is half full of
// executed stores at distinct addresses — the state the forwarding scan
// sees on a memory-bound workload.
func benchLoadCore() *Core {
	p := asm.MustAssemble("bench", `
    halt
`)
	c := New(p, DefaultConfig())
	n := c.cfg.StoreQueue / 2
	for i := 0; i < n; i++ {
		abs := c.storeQ.Push(lsqEntry{
			seq:      uint64(i + 1),
			addr:     uint64(0x1000 + i*8),
			value:    uint64(i),
			executed: true,
		})
		c.markStoreExecuted(abs)
	}
	return c
}

// BenchmarkReadForLoad measures the store-to-load forwarding scan. The
// forward-hit case matches the oldest queued store (worst-case scan
// depth over the executed bitmap); the memory case matches nothing and
// falls through to committed memory via the cache hierarchy.
func BenchmarkReadForLoad(b *testing.B) {
	c := benchLoadCore()
	e := &robEntry{seq: c.storeQ.Tail() + 1, peerBound: c.storeQ.Tail()}
	b.Run("forward-hit", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			v, _, _ := c.readForLoad(e, 0x1000)
			sink += v
		}
		_ = sink
	})
	b.Run("miss-to-memory", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			v, _, _ := c.readForLoad(e, 0x80000)
			sink += v
		}
		_ = sink
	})
}

// BenchmarkWheelScheduleDrain measures the writeback pick structure: one
// cycle's worth of completion scheduling (issue side) plus the bucket
// drain and oldest-first ordering (writeback side). This is the path
// that replaced the O(n²) oldest-finished re-scan.
func BenchmarkWheelScheduleDrain(b *testing.B) {
	cfg := DefaultConfig()
	w := newDoneWheel(cfg.maxCompletionLatency())
	b.ReportAllocs()
	b.ResetTimer()
	var cycle uint64
	var sink int
	for i := 0; i < b.N; i++ {
		cycle++
		for j := uint64(0); j < 8; j++ {
			w.add(cycle, cycle+1+(j&3)*7, uint64(i)*8+j, uint64(i))
		}
		bucket := w.take(cycle)
		sortBySeq(bucket)
		sink += len(bucket)
	}
	_ = sink
}
