package core

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"testing"

	"mssr/internal/isa"
	"mssr/internal/obs"
)

// batchTestNames returns the standard engine configurations in a stable
// order, so batch membership is deterministic across runs.
func batchTestNames() []string {
	cfgs := testConfigs()
	names := make([]string, 0, len(cfgs))
	for name := range cfgs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// batchTestCfg applies the equivalence-suite settings every batch test
// runs under: commit-time checking (so the shared architectural stream
// is exercised), interval sampling (so the NDJSON byte-identity check
// has a stream to compare), and a generous cycle ceiling.
func batchTestCfg(cfg Config) Config {
	cfg.DebugCheck = true
	cfg.MaxCycles = 50_000_000
	cfg.SampleInterval = 256
	return cfg
}

type batchRef struct {
	stats     []byte
	result    string
	intervals []byte
}

func captureRef(t *testing.T, c *Core) batchRef {
	t.Helper()
	st, err := json.Marshal(c.Stats)
	if err != nil {
		t.Fatal(err)
	}
	var iv bytes.Buffer
	if err := obs.WriteNDJSON(&iv, c.Intervals()); err != nil {
		t.Fatal(err)
	}
	res, err := json.Marshal(c.Result())
	if err != nil {
		t.Fatal(err)
	}
	return batchRef{stats: st, result: string(res), intervals: iv.Bytes()}
}

// TestBatchedMatchesSequential is the batch driver's correctness gate:
// stepping all twelve standard configs in one lockstep batch over a
// shared instruction stream must produce Stats, final architectural
// Results and interval NDJSON byte-identical to running each config
// alone, because the members are fully independent cores and the shared
// architectural replay records exactly what a private checker computes.
func TestBatchedMatchesSequential(t *testing.T) {
	prog := hashyProgram(400)
	cfgs := testConfigs()
	names := batchTestNames()

	refs := make(map[string]batchRef, len(names))
	for _, name := range names {
		c := New(prog, batchTestCfg(cfgs[name]))
		if err := c.Run(); err != nil {
			t.Fatalf("sequential %s: %v", name, err)
		}
		refs[name] = captureRef(t, c)
	}

	cores := make([]*Core, len(names))
	for i, name := range names {
		cores[i] = New(prog, batchTestCfg(cfgs[name]))
	}
	b, err := NewBatch(cores, 0)
	if err != nil {
		t.Fatal(err)
	}
	errs := b.Run(context.Background())
	for i, name := range names {
		if errs[i] != nil {
			t.Fatalf("batched %s: %v", name, errs[i])
		}
		got := captureRef(t, cores[i])
		want := refs[name]
		if !bytes.Equal(got.stats, want.stats) {
			t.Errorf("%s: batched stats diverge from sequential:\nbatched:    %s\nsequential: %s", name, got.stats, want.stats)
		}
		if got.result != want.result {
			t.Errorf("%s: batched architectural result diverges:\nbatched:    %s\nsequential: %s", name, got.result, want.result)
		}
		if !bytes.Equal(got.intervals, want.intervals) {
			t.Errorf("%s: batched interval NDJSON diverges from sequential", name)
		}
	}
}

// TestBatchPooledReuse extends the fresh==Reset pooling contract to the
// batch driver: a Batch whose member cores are Reset onto a second
// program must reproduce, byte for byte, what fresh sequential cores
// produce for that program — the shared check stream and per-member
// cursors must carry nothing across Run calls.
func TestBatchPooledReuse(t *testing.T) {
	progA := hashyProgram(300)
	progB := aliasProgram(300)
	cfgs := testConfigs()
	names := batchTestNames()

	cores := make([]*Core, len(names))
	for i, name := range names {
		cores[i] = New(progA, batchTestCfg(cfgs[name]))
	}
	b, err := NewBatch(cores, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range []*isa.Program{progA, progB} {
		for _, c := range cores {
			c.Reset(prog)
		}
		errs := b.Run(context.Background())
		for i, name := range names {
			if errs[i] != nil {
				t.Fatalf("%s/%s: %v", prog.Name, name, errs[i])
			}
			fresh := New(prog, batchTestCfg(cfgs[name]))
			if err := fresh.Run(); err != nil {
				t.Fatalf("%s/%s fresh: %v", prog.Name, name, err)
			}
			got, want := captureRef(t, cores[i]), captureRef(t, fresh)
			if !bytes.Equal(got.stats, want.stats) {
				t.Errorf("%s/%s: reused batch member diverges from fresh core:\nbatch: %s\nfresh: %s",
					prog.Name, name, got.stats, want.stats)
			}
			if got.result != want.result || !bytes.Equal(got.intervals, want.intervals) {
				t.Errorf("%s/%s: reused batch member result/intervals diverge from fresh core", prog.Name, name)
			}
		}
	}
}

// BenchmarkBatchStep measures lockstep batch throughput over the twelve
// standard configs and pins the steady-state allocation discipline
// (ReportAllocs must show 0 allocs/op once warm).
func BenchmarkBatchStep(b *testing.B) {
	prog := hashyProgram(2000)
	cfgs := testConfigs()
	names := batchTestNames()
	cores := make([]*Core, len(names))
	for i, name := range names {
		cfg := cfgs[name]
		cfg.MaxCycles = 500_000_000
		cores[i] = New(prog, cfg)
	}
	batch, err := NewBatch(cores, 0)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	run := func() uint64 {
		for _, c := range cores {
			c.Reset(prog)
		}
		for _, err := range batch.Run(ctx) {
			if err != nil {
				b.Fatal(err)
			}
		}
		var retired uint64
		for _, c := range cores {
			retired += c.Stats.Retired
		}
		return retired
	}
	retired := run() // warm-up: grow every structure once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(retired), "instrs/op")
}
