package core

import (
	"fmt"

	"mssr/internal/emu"
	"mssr/internal/frontend"
	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/reuse"
	"mssr/internal/trace"
)

// fetch forms up to BlocksPerCycle prediction blocks and enqueues their
// instructions toward rename, feeding each block to the reuse engine's
// fetch-side reconvergence detection. The frontend writes each fetched
// instruction straight into its fetch-queue slot (NextBlockInto), so the
// hottest producer loop in the machine copies nothing.
func (c *Core) fetch() {
	for b := 0; b < c.cfg.BlocksPerCycle; b++ {
		if c.fetchQ.Len()+isa.FetchBlockInstrs > c.cfg.FetchQueue {
			return
		}
		firstFseq := c.fseq + 1
		blk, n, ok := c.fu.NextBlockInto(c.fetchSlot)
		if !ok {
			return
		}
		if c.tracer != nil {
			for abs := c.fetchQ.Tail() - uint64(n); abs < c.fetchQ.Tail(); abs++ {
				fe := c.fetchQ.AtAbs(abs)
				c.tracer.Emit(trace.Event{Cycle: c.cycle, Kind: trace.KindFetch, Fseq: fe.fseq, PC: fe.fi.PC, Instr: fe.fi.Instr})
			}
		}
		before := c.Stats.Reconvergences
		c.engine.ObserveBlock(blk.StartPC, blk.EndPC, firstFseq, n, c.lastRedirectSeq)
		if c.tracer != nil && c.Stats.Reconvergences > before {
			c.tracer.Emit(trace.Event{Cycle: c.cycle, Kind: trace.KindReconverge, PC: blk.StartPC,
				Note: fmt.Sprintf("block %#x..%#x", blk.StartPC, blk.EndPC)})
		}
	}
}

// nextFetchSlot is the destination callback fetch hands the frontend: it
// claims the next fetch-queue slot, stamps the fetch sequence and the
// frontend-delay readiness cycle, and exposes the embedded FetchedInstr
// for the frontend to fill in place.
func (c *Core) nextFetchSlot() *frontend.FetchedInstr {
	c.fseq++
	fe := c.fetchQ.PushSlot()
	fe.fseq = c.fseq
	fe.readyAt = c.cycle + c.cfg.FrontendDelay
	return &fe.fi
}

// renameStage renames and dispatches up to RenameWidth instructions,
// performing the squash-reuse test for each one in program order.
func (c *Core) renameStage() {
	if c.cycle < c.renameBlockedUntil {
		return // RAT recovery (rollback walk) in progress
	}
	riTests := 0
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fetchQ.Len() == 0 || c.fetchQ.Front().readyAt > c.cycle {
			break
		}
		if c.count == c.cfg.ROBSize {
			break
		}
		// Pointer into the ring slot: valid through this iteration because
		// rename never pushes to the fetch queue (fetch runs later in the
		// cycle) and PopFront leaves the slot contents in place.
		fe := c.fetchQ.Front()
		in := fe.fi.Instr
		cls := in.Class()

		// Structural hazards: verify every resource this instruction will
		// take before consuming the reuse-engine walk state.
		switch cls {
		case isa.ClassLoad:
			if c.loadQ.Len() >= c.cfg.LoadQueue || c.mems.Len() >= c.cfg.MemIQSize {
				break
			}
		case isa.ClassStore:
			if c.storeQ.Len() >= c.cfg.StoreQueue || c.mems.Len() >= c.cfg.MemIQSize {
				break
			}
		case isa.ClassBranch, isa.ClassJumpR:
			if c.iqs.Len() >= c.cfg.IQSize {
				break
			}
		case isa.ClassNop, isa.ClassHalt, isa.ClassJump:
			// No issue resources needed.
		default:
			if c.iqs.Len() >= c.cfg.IQSize {
				break
			}
		}
		if in.HasDest() && c.tracker.FreeCount() == 0 {
			// Free-list pressure: reclaim squash-reuse reservations
			// (§3.3.2 condition 5), then stall if still dry.
			for c.tracker.FreeCount() == 0 && c.engine.Reclaim() {
			}
			if c.tracker.FreeCount() == 0 {
				break
			}
		}

		// Commit to renaming this instruction. The ROB slot still holds a
		// previous occupant's fields, so every field is stored explicitly —
		// field-by-field rather than via a struct literal, which would
		// build a 224-byte temporary and duffcopy it in (the hottest copy
		// in the profile before this refactor).
		c.fetchQ.DropFront()
		seq := c.nextSeq
		c.nextSeq++
		pos := (c.headIdx + c.count) & c.robMask
		c.count++
		e := &c.rob[pos]
		e.seq = seq
		e.fseq = fe.fseq
		e.pc = fe.fi.PC
		e.instr = in
		e.predTaken = fe.fi.PredTaken
		e.predNext = fe.fi.PredNextPC
		e.snapshot = fe.fi.Snapshot
		e.isCall = fe.fi.IsCall
		e.isReturn = fe.fi.IsReturn
		e.hasDest = false
		e.destPreg = rename.NoPreg
		e.destGen = rename.NullRGID
		e.oldMap = rename.Mapping{}
		e.srcPregs[0], e.srcPregs[1] = 0, 0
		e.srcGens[0], e.srcGens[1] = 0, 0
		e.nsrc = in.NumSources()
		e.inIQ, e.issued, e.executed, e.completed = false, false, false, false
		e.doneAt = 0
		e.reused, e.verifPending, e.verifOK = false, false, false
		e.mispredicted, e.hasCheckpoint = false, false
		e.result, e.taken, e.nextPC = 0, false, 0
		e.memAddr, e.memValue, e.fwdFrom = 0, 0, 0
		e.halt = false
		e.lsqAbs, e.peerBound = 0, 0
		// Source 0 is always Rs1 and source 1 always Rs2; reading the
		// fields directly avoids re-deriving the source count per operand
		// the way Instruction.Src does.
		if e.nsrc > 0 {
			m := c.rat.Get(in.Rs1)
			e.srcPregs[0], e.srcGens[0] = m.Preg, m.Gen
			if e.nsrc > 1 {
				m := c.rat.Get(in.Rs2)
				e.srcPregs[1], e.srcGens[1] = m.Preg, m.Gen
			}
		}
		c.Stats.Fetched++

		var grant reuse.Grant
		var granted bool
		// Serialized RI table access (§3.7.3): beyond the per-cycle test
		// budget, instructions rename without an integration attempt.
		riLimited := c.cfg.Reuse == ReuseRI && c.cfg.RITestsPerCycle > 0 &&
			riTests >= c.cfg.RITestsPerCycle
		if !riLimited {
			if c.cfg.Reuse == ReuseRI {
				// A non-reusable instruction still consumes a serialized
				// table-port slot, exactly as before the call was gated.
				riTests++
			}
			if c.tryAll || (!c.tryNever && reuse.Reusable(in)) {
				grant, granted = c.engine.TryReuse(reuse.Request{
					Seq:      fe.fseq,
					PC:       e.pc,
					Instr:    in,
					SrcGens:  e.srcGens,
					SrcPregs: e.srcPregs,
				})
			}
		}
		if granted && !in.HasDest() {
			panic(fmt.Sprintf("core: engine granted reuse for %v without destination", in))
		}

		if in.HasDest() {
			e.hasDest = true
			switch {
			case granted && grant.ByValue:
				// Value-carrying grant (DIR): allocate a fresh register
				// and deposit the stored result.
				p, ok := c.tracker.Alloc()
				if !ok {
					panic("core: free list empty after pressure check")
				}
				c.prf[p] = grant.Value
				c.prfReady[p] = true
				c.wake(p)
				e.destPreg = p
				e.destGen = c.alloc.Alloc(in.Rd)
				e.result = grant.Value
				e.reused = true
				e.executed = true
				e.completed = true
			case granted:
				p := grant.DestPreg
				// Re-adopt the held register: it becomes this
				// instruction's destination and the engine's reservation
				// is consumed.
				c.tracker.Revive(p)
				c.tracker.Release(p)
				if !c.prfReady[p] {
					panic(fmt.Sprintf("core: granted p%d has no value", p))
				}
				e.destPreg = p
				e.destGen = grant.DestGen
				if e.destGen == rename.NullRGID {
					e.destGen = c.alloc.Alloc(in.Rd)
				}
				e.result = c.prf[p]
				e.reused = true
				e.executed = true
				e.completed = true
			default:
				p, ok := c.tracker.Alloc()
				if !ok {
					panic("core: free list empty after pressure check")
				}
				c.prfReady[p] = false
				e.destPreg = p
				e.destGen = c.alloc.Alloc(in.Rd)
			}
			e.oldMap = c.rat.Set(in.Rd, rename.Mapping{Preg: e.destPreg, Gen: e.destGen})
		}

		switch cls {
		case isa.ClassNop:
			e.executed, e.completed = true, true
		case isa.ClassHalt:
			e.executed, e.completed, e.halt = true, true, true
			e.nextPC = e.pc
		case isa.ClassJump:
			// JAL: target is static and the link value is known here.
			e.executed, e.completed = true, true
			e.taken, e.nextPC = true, in.Target
			if e.hasDest {
				e.result = e.pc + isa.InstrBytes
				c.prf[e.destPreg] = e.result
				c.prfReady[e.destPreg] = true
				c.wake(e.destPreg)
			}
		case isa.ClassLoad:
			e.lsqAbs = c.loadQ.Push(lsqEntry{seq: seq})
			e.peerBound = c.storeQ.Tail()
			if e.reused {
				// Reused load: consumers are unblocked now, but the value
				// must be verified by re-execution before commit (§3.8.3).
				e.memAddr = grant.MemAddr
				e.memValue = e.result
				lq := c.loadQ.AtAbs(e.lsqAbs)
				lq.addr = grant.MemAddr
				lq.value = e.result
				lq.executed = true
				lq.reused = true
				e.completed = false
				e.verifPending = true
				c.verifQ.Push(seq)
			} else {
				c.mems.insert(seq, e.srcPregs, uint8(e.nsrc), false, c.prfReady)
				e.inIQ = true
			}
		case isa.ClassStore:
			e.lsqAbs = c.storeQ.Push(lsqEntry{seq: seq})
			e.peerBound = c.loadQ.Tail()
			c.mems.insert(seq, e.srcPregs, uint8(e.nsrc), false, c.prfReady)
			e.inIQ = true
		case isa.ClassBranch, isa.ClassJumpR:
			if c.checkpointsInFlight < c.cfg.RATCheckpoints {
				e.hasCheckpoint = true
				c.checkpointsInFlight++
			}
			c.iqs.insert(seq, e.srcPregs, uint8(e.nsrc), true, c.prfReady)
			e.inIQ = true
		default:
			if !e.reused {
				c.iqs.insert(seq, e.srcPregs, uint8(e.nsrc), false, c.prfReady)
				e.inIQ = true
			}
		}
		if c.tracer != nil {
			if e.reused {
				c.emitTrace(trace.KindReuse, e, "")
			} else {
				c.emitTrace(trace.KindRename, e, "")
			}
		}
	}
	c.maybeRGIDReset()
}

// issue selects ready instructions within the cycle's functional-unit
// budgets, executes them, and schedules their completion.
//
// Each reservation station keeps its operand-ready entries on a
// seq-ordered ready list (see sched), so issue walks exactly the
// issuable set instead of scanning every resident entry. The walk
// order is the order entries occupied the former slice, and port
// budgets are spent along it, so selection is bit-identical to the
// scan it replaces.
func (c *Core) issue() {
	alu, bru, lsu := c.cfg.ALUs, c.cfg.BRUs, c.cfg.LSUs

	// Verification accesses for reused loads share the LSU ports.
	for c.verifQ.Len() > 0 && lsu > 0 {
		seq := c.verifQ.PopFront()
		lsu--
		e := c.entry(seq)
		val, _, lat := c.readForLoad(e, e.memAddr)
		e.verifOK = val == e.result
		e.doneAt = c.cycle + 1 + lat
		e.issued = true
		c.schedule(e)
	}

	// Memory reservation station: loads and stores on the LSU ports.
	// execute() never mutates station residency or prfReady, so saving
	// the next link before removal keeps the walk safe.
	for i := c.mems.headRdy; i >= 0 && lsu > 0; {
		next := c.mems.pool[i].rdyNext
		seq := c.mems.pool[i].seq
		lsu--
		c.mems.remove(i)
		c.execute(c.entry(seq))
		i = next
	}

	// ALU/BRU reservation station: two port classes share one station,
	// so the walk continues while either budget remains and skips ready
	// entries whose port class is exhausted — exactly the old scan.
	for i := c.iqs.headRdy; i >= 0 && (alu > 0 || bru > 0); {
		e := &c.iqs.pool[i]
		next := e.rdyNext
		if e.bru {
			if bru > 0 {
				bru--
				seq := e.seq
				c.iqs.remove(i)
				c.execute(c.entry(seq))
			}
		} else if alu > 0 {
			alu--
			seq := e.seq
			c.iqs.remove(i)
			c.execute(c.entry(seq))
		}
		i = next
	}
}

// wake propagates the write of physical register p to both stations:
// entries whose last unready source was p move onto the ready lists.
func (c *Core) wake(p rename.PhysReg) {
	c.iqs.wake(p)
	c.mems.wake(p)
}

// schedule books e's completion on the wheel. doneAt is clamped forward
// to the next cycle: writeback has already drained the current cycle's
// bucket by the time issue runs.
func (c *Core) schedule(e *robEntry) {
	at := e.doneAt
	if at <= c.cycle {
		at = c.cycle + 1
	}
	c.wheel.add(c.cycle, at, e.seq, e.fseq)
}

// execute computes an instruction's architectural outcome and schedules
// its writeback.
func (c *Core) execute(e *robEntry) {
	var rs1v, rs2v uint64
	if e.nsrc > 0 {
		rs1v = c.prf[e.srcPregs[0]]
	}
	if e.nsrc > 1 {
		rs2v = c.prf[e.srcPregs[1]]
	}
	out := isa.Evaluate(e.instr, e.pc, rs1v, rs2v)
	switch e.instr.Class() {
	case isa.ClassMul:
		e.result = out.Result
		e.doneAt = c.cycle + c.cfg.MulLat
	case isa.ClassDiv:
		e.result = out.Result
		e.doneAt = c.cycle + c.cfg.DivLat
	case isa.ClassBranch:
		e.taken = out.Taken
		if out.Taken {
			e.nextPC = out.Target
		} else {
			e.nextPC = e.pc + isa.InstrBytes
		}
		e.doneAt = c.cycle + 1
	case isa.ClassJumpR:
		e.taken = true
		e.nextPC = out.Target
		e.result = out.Result
		e.doneAt = c.cycle + 1
	case isa.ClassLoad:
		e.memAddr = out.MemAddr
		val, fwd, lat := c.readForLoad(e, e.memAddr)
		e.result = val
		e.memValue = val
		e.fwdFrom = fwd
		e.doneAt = c.cycle + 1 + lat
		lq := c.loadQ.AtAbs(e.lsqAbs)
		lq.addr = e.memAddr
		lq.value = val
		lq.fwdFrom = fwd
		lq.executed = true
	case isa.ClassStore:
		e.memAddr = out.MemAddr
		e.memValue = out.Result
		e.doneAt = c.cycle + 1
	default:
		e.result = out.Result
		e.doneAt = c.cycle + 1
	}
	e.issued = true
	e.inIQ = false
	c.schedule(e)
	c.emitTrace(trace.KindIssue, e, "")
}

// readForLoad resolves a load's value: store-to-load forwarding from the
// youngest older executed store with a matching address, else committed
// memory through the cache hierarchy. It returns the value, the forwarding
// store's seq (0 = memory), and the access latency.
//
// Older stores are exactly the absolute range [storeQ.Base(), e.peerBound):
// peerBound is the store-queue tail captured when the load renamed, and
// stores below Base have committed to memory already. The scan walks that
// window youngest-first, testing the executed bitmap before touching the
// entry, and skips entirely when no store in the machine has executed.
func (c *Core) readForLoad(e *robEntry, addr uint64) (uint64, uint64, uint64) {
	a := addr &^ 7
	if c.storeExecCount > 0 {
		base := c.storeQ.Base()
		for abs := e.peerBound; abs > base; {
			abs--
			if !c.storeExecuted(abs) {
				continue
			}
			s := c.storeQ.AtAbs(abs)
			if s.addr&^7 == a {
				return s.value, s.seq, c.cfg.FwdLat
			}
		}
	}
	return c.mem.Read(a), 0, c.hier.Access(a)
}

// writeback retires execution results into the PRF, resolves branches
// (flushing on mispredictions), performs store-side violation checks and
// completes reused-load verification.
func (c *Core) writeback() {
	// Every instruction finishing this cycle sits in exactly one wheel
	// bucket: writeback drains all ready completions each cycle and issue
	// (which runs after writeback) schedules no earlier than cycle+1, so
	// nothing ready can hide in another bucket. Draining oldest-first
	// reproduces the former oldest-finished re-scan ordering; squashed
	// leftovers are filtered by the ROB-window and fseq checks, which is
	// what lets mid-writeback flushes leave the wheel untouched.
	bucket := c.wheel.take(c.cycle)
	if len(bucket) == 0 {
		return
	}
	sortBySeq(bucket)
	for _, de := range bucket {
		seq := de.seq
		if seq < c.headSeq || seq >= c.headSeq+uint64(c.count) {
			continue // squashed (or a recycled seq not yet reassigned)
		}
		e := c.entry(seq)
		if e.fseq != de.fseq {
			continue // squashed and the rename seq was recycled
		}

		if e.verifPending {
			// Reused-load verification result (§3.8.3).
			c.Stats.LoadVerifications++
			if e.verifOK {
				e.verifPending = false
				e.completed = true
			} else {
				c.violationFlush(seq, true)
			}
			continue
		}

		if e.hasDest {
			c.prf[e.destPreg] = e.result
			c.prfReady[e.destPreg] = true
			c.wake(e.destPreg)
		}
		e.executed = true
		e.completed = true
		c.emitTrace(trace.KindWriteback, e, "")

		switch e.instr.Class() {
		case isa.ClassStore:
			s := c.storeQ.AtAbs(e.lsqAbs)
			s.addr = e.memAddr
			s.value = e.memValue
			s.executed = true
			c.markStoreExecuted(e.lsqAbs)
			c.engine.NoteStore(e.memAddr)
			if victim, ok := c.storeViolationScan(e); ok {
				c.violationFlush(victim, false)
			}
		case isa.ClassBranch, isa.ClassJumpR:
			if e.nextPC != e.predNext {
				e.mispredicted = true
				c.mispredictFlush(e)
			}
		}
	}
}

// storeViolationScan implements the store-side load-queue search: a
// younger executed load with a matching address that did not get its data
// from this store (or a younger one) read stale data. Younger loads are
// exactly the absolute range [st.peerBound, loadQ.Tail()): peerBound is
// the load-queue tail captured when the store renamed, so the scan never
// touches the older loads the previous full-queue walk had to skip over.
func (c *Core) storeViolationScan(st *robEntry) (uint64, bool) {
	a := st.memAddr &^ 7
	abs := st.peerBound
	if b := c.loadQ.Base(); abs < b {
		abs = b
	}
	for tail := c.loadQ.Tail(); abs < tail; abs++ {
		l := c.loadQ.AtAbs(abs)
		if !l.executed {
			continue
		}
		if l.addr&^7 == a && l.fwdFrom < st.seq {
			return l.seq, true
		}
	}
	return 0, false
}

// commit retires up to CommitWidth completed instructions from the ROB
// head, writing stores to memory, training the predictors, freeing
// previous mappings and running the lockstep checker.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		e := &c.rob[c.headIdx]
		if !e.completed {
			return
		}
		if c.checker != nil {
			c.debugCheck(e)
		}
		switch e.instr.Class() {
		case isa.ClassBranch:
			c.Stats.Branches++
			if e.mispredicted {
				c.Stats.BranchMispredicts++
			}
			c.bp.Train(e.pc, e.snapshot, e.taken)
		case isa.ClassJumpR:
			if e.mispredicted {
				c.Stats.JumpMispredicts++
			}
			if !e.isReturn {
				c.bp.TrainIndirect(e.pc, e.nextPC)
			}
		case isa.ClassLoad:
			if c.loadQ.Len() == 0 || c.loadQ.Front().seq != e.seq {
				panic("core: load queue out of sync at commit")
			}
			c.loadQ.DropFront()
		case isa.ClassStore:
			if c.storeQ.Len() == 0 || c.storeQ.Front().seq != e.seq {
				panic("core: store queue out of sync at commit")
			}
			c.mem.Write(e.memAddr, e.memValue)
			c.hier.Access(e.memAddr)
			c.unmarkStoreExecuted(c.storeQ.Base())
			c.storeQ.DropFront()
		}
		if e.hasCheckpoint {
			c.checkpointsInFlight--
		}
		if e.hasDest {
			// The previous mapping of the destination register is now
			// unreachable; free it (unless a squash log holds it).
			c.tracker.Unlive(e.oldMap.Preg)
		}
		c.emitTrace(trace.KindCommit, e, "")
		c.Stats.Retired++
		if c.suspendCommits > 0 {
			c.suspendCommits--
		}
		halt := e.halt
		c.headIdx = (c.headIdx + 1) & c.robMask
		c.count--
		c.headSeq++
		if halt {
			c.halted = true
			return
		}
	}
}

// debugCheck compares one committing instruction against the lockstep
// architectural reference and panics on divergence — the repository's
// golden invariant that squash reuse never changes architectural
// behaviour. The reference is either the core-private emulator
// (standalone runs) or a batch's shared replay stream; the two are
// bit-identical sources, since the stream records the same emulator's
// StepInfo and Step writes Regs[Rd] = Outcome.Result for every
// destination-carrying instruction.
func (c *Core) debugCheck(e *robEntry) {
	var info emu.StepInfo
	var destWant uint64
	if c.checkStream != nil {
		info = c.checkStream.at(c.checkIdx)
		c.checkIdx++
		destWant = info.Outcome.Result
	} else {
		info = c.checker.Step()
		if e.hasDest {
			destWant = c.checker.Regs[e.instr.Rd]
		}
	}
	fail := func(what string, got, want interface{}) {
		panic(fmt.Sprintf("core: lockstep divergence at pc=0x%x seq=%d (%v): %s = %v, emulator has %v",
			e.pc, e.seq, e.instr, what, got, want))
	}
	if info.PC != e.pc {
		fail("pc", fmt.Sprintf("0x%x", e.pc), fmt.Sprintf("0x%x", info.PC))
	}
	if e.hasDest {
		if e.result != destWant {
			fail("result", e.result, destWant)
		}
	}
	if e.instr.IsStore() {
		if e.memAddr != info.Outcome.MemAddr || e.memValue != info.Outcome.Result {
			fail("store", fmt.Sprintf("[0x%x]=%d", e.memAddr, e.memValue),
				fmt.Sprintf("[0x%x]=%d", info.Outcome.MemAddr, info.Outcome.Result))
		}
	}
	if e.instr.IsControl() && !e.halt {
		if e.nextPC != info.NextPC {
			fail("nextPC", fmt.Sprintf("0x%x", e.nextPC), fmt.Sprintf("0x%x", info.NextPC))
		}
	}
}
