package core

import (
	"fmt"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/reuse"
	"mssr/internal/trace"
)

// fetch forms up to BlocksPerCycle prediction blocks and enqueues their
// instructions toward rename, feeding each block to the reuse engine's
// fetch-side reconvergence detection.
func (c *Core) fetch() {
	for b := 0; b < c.cfg.BlocksPerCycle; b++ {
		if c.fetchQ.Len()+isa.FetchBlockInstrs > c.cfg.FetchQueue {
			return
		}
		blk, ok := c.fu.NextBlock()
		if !ok {
			return
		}
		firstFseq := c.fseq + 1
		for i := range blk.Instrs {
			c.fseq++
			fe := c.fetchQ.PushSlot()
			fe.fi = blk.Instrs[i]
			fe.fseq = c.fseq
			fe.readyAt = c.cycle + c.cfg.FrontendDelay
			if c.tracer != nil {
				c.tracer.Emit(trace.Event{Cycle: c.cycle, Kind: trace.KindFetch, Fseq: c.fseq, PC: fe.fi.PC, Instr: fe.fi.Instr})
			}
		}
		before := c.Stats.Reconvergences
		c.engine.ObserveBlock(blk.StartPC, blk.EndPC, firstFseq, len(blk.Instrs), c.lastRedirectSeq)
		if c.tracer != nil && c.Stats.Reconvergences > before {
			c.tracer.Emit(trace.Event{Cycle: c.cycle, Kind: trace.KindReconverge, PC: blk.StartPC,
				Note: fmt.Sprintf("block %#x..%#x", blk.StartPC, blk.EndPC)})
		}
	}
}

// renameStage renames and dispatches up to RenameWidth instructions,
// performing the squash-reuse test for each one in program order.
func (c *Core) renameStage() {
	if c.cycle < c.renameBlockedUntil {
		return // RAT recovery (rollback walk) in progress
	}
	riTests := 0
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fetchQ.Len() == 0 || c.fetchQ.Front().readyAt > c.cycle {
			break
		}
		if c.count == c.cfg.ROBSize {
			break
		}
		// Pointer into the ring slot: valid through this iteration because
		// rename never pushes to the fetch queue (fetch runs later in the
		// cycle) and PopFront leaves the slot contents in place.
		fe := c.fetchQ.Front()
		in := fe.fi.Instr
		cls := in.Class()

		// Structural hazards: verify every resource this instruction will
		// take before consuming the reuse-engine walk state.
		switch cls {
		case isa.ClassLoad:
			if c.loadQ.Len() >= c.cfg.LoadQueue || len(c.memIQ) >= c.cfg.MemIQSize {
				break
			}
		case isa.ClassStore:
			if c.storeQ.Len() >= c.cfg.StoreQueue || len(c.memIQ) >= c.cfg.MemIQSize {
				break
			}
		case isa.ClassBranch, isa.ClassJumpR:
			if len(c.iq) >= c.cfg.IQSize {
				break
			}
		case isa.ClassNop, isa.ClassHalt, isa.ClassJump:
			// No issue resources needed.
		default:
			if len(c.iq) >= c.cfg.IQSize {
				break
			}
		}
		if in.HasDest() && c.tracker.FreeCount() == 0 {
			// Free-list pressure: reclaim squash-reuse reservations
			// (§3.3.2 condition 5), then stall if still dry.
			for c.tracker.FreeCount() == 0 && c.engine.Reclaim() {
			}
			if c.tracker.FreeCount() == 0 {
				break
			}
		}

		// Commit to renaming this instruction.
		c.fetchQ.PopFront()
		seq := c.nextSeq
		c.nextSeq++
		pos := (c.headIdx + c.count) & c.robMask
		c.count++
		e := &c.rob[pos]
		*e = robEntry{
			seq:       seq,
			fseq:      fe.fseq,
			pc:        fe.fi.PC,
			instr:     in,
			predTaken: fe.fi.PredTaken,
			predNext:  fe.fi.PredNextPC,
			snapshot:  fe.fi.Snapshot,
			isCall:    fe.fi.IsCall,
			isReturn:  fe.fi.IsReturn,
			destPreg:  rename.NoPreg,
			destGen:   rename.NullRGID,
			nsrc:      in.NumSources(),
		}
		for i := 0; i < e.nsrc; i++ {
			m := c.rat.Get(in.Src(i))
			e.srcPregs[i] = m.Preg
			e.srcGens[i] = m.Gen
		}
		c.Stats.Fetched++

		var grant reuse.Grant
		var granted bool
		// Serialized RI table access (§3.7.3): beyond the per-cycle test
		// budget, instructions rename without an integration attempt.
		riLimited := c.cfg.Reuse == ReuseRI && c.cfg.RITestsPerCycle > 0 &&
			riTests >= c.cfg.RITestsPerCycle
		if !riLimited {
			if c.cfg.Reuse == ReuseRI {
				riTests++
			}
			grant, granted = c.engine.TryReuse(reuse.Request{
				Seq:      fe.fseq,
				PC:       e.pc,
				Instr:    in,
				SrcGens:  e.srcGens,
				SrcPregs: e.srcPregs,
			})
		}
		if granted && !in.HasDest() {
			panic(fmt.Sprintf("core: engine granted reuse for %v without destination", in))
		}

		if in.HasDest() {
			e.hasDest = true
			switch {
			case granted && grant.ByValue:
				// Value-carrying grant (DIR): allocate a fresh register
				// and deposit the stored result.
				p, ok := c.tracker.Alloc()
				if !ok {
					panic("core: free list empty after pressure check")
				}
				c.prf[p] = grant.Value
				c.prfReady[p] = true
				e.destPreg = p
				e.destGen = c.alloc.Alloc(in.Rd)
				e.result = grant.Value
				e.reused = true
				e.executed = true
				e.completed = true
			case granted:
				p := grant.DestPreg
				// Re-adopt the held register: it becomes this
				// instruction's destination and the engine's reservation
				// is consumed.
				c.tracker.Revive(p)
				c.tracker.Release(p)
				if !c.prfReady[p] {
					panic(fmt.Sprintf("core: granted p%d has no value", p))
				}
				e.destPreg = p
				e.destGen = grant.DestGen
				if e.destGen == rename.NullRGID {
					e.destGen = c.alloc.Alloc(in.Rd)
				}
				e.result = c.prf[p]
				e.reused = true
				e.executed = true
				e.completed = true
			default:
				p, ok := c.tracker.Alloc()
				if !ok {
					panic("core: free list empty after pressure check")
				}
				c.prfReady[p] = false
				e.destPreg = p
				e.destGen = c.alloc.Alloc(in.Rd)
			}
			e.oldMap = c.rat.Set(in.Rd, rename.Mapping{Preg: e.destPreg, Gen: e.destGen})
		}

		switch cls {
		case isa.ClassNop:
			e.executed, e.completed = true, true
		case isa.ClassHalt:
			e.executed, e.completed, e.halt = true, true, true
			e.nextPC = e.pc
		case isa.ClassJump:
			// JAL: target is static and the link value is known here.
			e.executed, e.completed = true, true
			e.taken, e.nextPC = true, in.Target
			if e.hasDest {
				e.result = e.pc + isa.InstrBytes
				c.prf[e.destPreg] = e.result
				c.prfReady[e.destPreg] = true
			}
		case isa.ClassLoad:
			e.lsqAbs = c.loadQ.Push(lsqEntry{seq: seq})
			e.peerBound = c.storeQ.Tail()
			if e.reused {
				// Reused load: consumers are unblocked now, but the value
				// must be verified by re-execution before commit (§3.8.3).
				e.memAddr = grant.MemAddr
				e.memValue = e.result
				lq := c.loadQ.AtAbs(e.lsqAbs)
				lq.addr = grant.MemAddr
				lq.value = e.result
				lq.executed = true
				lq.reused = true
				e.completed = false
				e.verifPending = true
				c.verifQ.Push(seq)
			} else {
				c.memIQ = append(c.memIQ, rsEntry{seq: seq, srcPregs: e.srcPregs, nsrc: uint8(e.nsrc)})
				e.inIQ = true
			}
		case isa.ClassStore:
			e.lsqAbs = c.storeQ.Push(lsqEntry{seq: seq})
			e.peerBound = c.loadQ.Tail()
			c.memIQ = append(c.memIQ, rsEntry{seq: seq, srcPregs: e.srcPregs, nsrc: uint8(e.nsrc)})
			e.inIQ = true
		case isa.ClassBranch, isa.ClassJumpR:
			if c.checkpointsInFlight < c.cfg.RATCheckpoints {
				e.hasCheckpoint = true
				c.checkpointsInFlight++
			}
			c.iq = append(c.iq, rsEntry{seq: seq, srcPregs: e.srcPregs, nsrc: uint8(e.nsrc), bru: true})
			e.inIQ = true
		default:
			if !e.reused {
				c.iq = append(c.iq, rsEntry{seq: seq, srcPregs: e.srcPregs, nsrc: uint8(e.nsrc)})
				e.inIQ = true
			}
		}
		if c.tracer != nil {
			if e.reused {
				c.emitTrace(trace.KindReuse, e, "")
			} else {
				c.emitTrace(trace.KindRename, e, "")
			}
		}
	}
	c.maybeRGIDReset()
}

// issue selects ready instructions within the cycle's functional-unit
// budgets, executes them, and schedules their completion.
func (c *Core) issue() {
	alu, bru, lsu := c.cfg.ALUs, c.cfg.BRUs, c.cfg.LSUs

	// Verification accesses for reused loads share the LSU ports.
	for c.verifQ.Len() > 0 && lsu > 0 {
		seq := c.verifQ.PopFront()
		lsu--
		e := c.entry(seq)
		val, _, lat := c.readForLoad(e, e.memAddr)
		e.verifOK = val == e.result
		e.doneAt = c.cycle + 1 + lat
		e.issued = true
		c.schedule(e)
	}

	// Memory reservation station: loads and stores on the LSU ports. The
	// wakeup scan touches only the compact rsEntry records; the ROB entry
	// is dereferenced once, at issue.
	for i := 0; i < len(c.memIQ) && lsu > 0; {
		rs := &c.memIQ[i]
		if !c.rsReady(rs) {
			i++
			continue
		}
		lsu--
		c.execute(c.entry(rs.seq))
		c.memIQ = append(c.memIQ[:i], c.memIQ[i+1:]...)
	}

	// ALU/BRU reservation station.
	for i := 0; i < len(c.iq) && (alu > 0 || bru > 0); {
		rs := &c.iq[i]
		if rs.bru && bru == 0 || !rs.bru && alu == 0 {
			i++
			continue
		}
		if !c.rsReady(rs) {
			i++
			continue
		}
		if rs.bru {
			bru--
		} else {
			alu--
		}
		c.execute(c.entry(rs.seq))
		c.iq = append(c.iq[:i], c.iq[i+1:]...)
	}
}

func (c *Core) rsReady(rs *rsEntry) bool {
	for i := 0; i < int(rs.nsrc); i++ {
		if !c.prfReady[rs.srcPregs[i]] {
			return false
		}
	}
	return true
}

// schedule books e's completion on the wheel. doneAt is clamped forward
// to the next cycle: writeback has already drained the current cycle's
// bucket by the time issue runs.
func (c *Core) schedule(e *robEntry) {
	at := e.doneAt
	if at <= c.cycle {
		at = c.cycle + 1
	}
	c.wheel.add(c.cycle, at, e.seq, e.fseq)
}

// execute computes an instruction's architectural outcome and schedules
// its writeback.
func (c *Core) execute(e *robEntry) {
	var rs1v, rs2v uint64
	if e.nsrc > 0 {
		rs1v = c.prf[e.srcPregs[0]]
	}
	if e.nsrc > 1 {
		rs2v = c.prf[e.srcPregs[1]]
	}
	out := isa.Evaluate(e.instr, e.pc, rs1v, rs2v)
	switch e.instr.Class() {
	case isa.ClassMul:
		e.result = out.Result
		e.doneAt = c.cycle + c.cfg.MulLat
	case isa.ClassDiv:
		e.result = out.Result
		e.doneAt = c.cycle + c.cfg.DivLat
	case isa.ClassBranch:
		e.taken = out.Taken
		if out.Taken {
			e.nextPC = out.Target
		} else {
			e.nextPC = e.pc + isa.InstrBytes
		}
		e.doneAt = c.cycle + 1
	case isa.ClassJumpR:
		e.taken = true
		e.nextPC = out.Target
		e.result = out.Result
		e.doneAt = c.cycle + 1
	case isa.ClassLoad:
		e.memAddr = out.MemAddr
		val, fwd, lat := c.readForLoad(e, e.memAddr)
		e.result = val
		e.memValue = val
		e.fwdFrom = fwd
		e.doneAt = c.cycle + 1 + lat
		lq := c.loadQ.AtAbs(e.lsqAbs)
		lq.addr = e.memAddr
		lq.value = val
		lq.fwdFrom = fwd
		lq.executed = true
	case isa.ClassStore:
		e.memAddr = out.MemAddr
		e.memValue = out.Result
		e.doneAt = c.cycle + 1
	default:
		e.result = out.Result
		e.doneAt = c.cycle + 1
	}
	e.issued = true
	e.inIQ = false
	c.schedule(e)
	c.emitTrace(trace.KindIssue, e, "")
}

// readForLoad resolves a load's value: store-to-load forwarding from the
// youngest older executed store with a matching address, else committed
// memory through the cache hierarchy. It returns the value, the forwarding
// store's seq (0 = memory), and the access latency.
//
// Older stores are exactly the absolute range [storeQ.Base(), e.peerBound):
// peerBound is the store-queue tail captured when the load renamed, and
// stores below Base have committed to memory already. The scan walks that
// window youngest-first, testing the executed bitmap before touching the
// entry, and skips entirely when no store in the machine has executed.
func (c *Core) readForLoad(e *robEntry, addr uint64) (uint64, uint64, uint64) {
	a := addr &^ 7
	if c.storeExecCount > 0 {
		base := c.storeQ.Base()
		for abs := e.peerBound; abs > base; {
			abs--
			if !c.storeExecuted(abs) {
				continue
			}
			s := c.storeQ.AtAbs(abs)
			if s.addr&^7 == a {
				return s.value, s.seq, c.cfg.FwdLat
			}
		}
	}
	return c.mem.Read(a), 0, c.hier.Access(a)
}

// writeback retires execution results into the PRF, resolves branches
// (flushing on mispredictions), performs store-side violation checks and
// completes reused-load verification.
func (c *Core) writeback() {
	// Every instruction finishing this cycle sits in exactly one wheel
	// bucket: writeback drains all ready completions each cycle and issue
	// (which runs after writeback) schedules no earlier than cycle+1, so
	// nothing ready can hide in another bucket. Draining oldest-first
	// reproduces the former oldest-finished re-scan ordering; squashed
	// leftovers are filtered by the ROB-window and fseq checks, which is
	// what lets mid-writeback flushes leave the wheel untouched.
	bucket := c.wheel.take(c.cycle)
	if len(bucket) == 0 {
		return
	}
	sortBySeq(bucket)
	for _, de := range bucket {
		seq := de.seq
		if seq < c.headSeq || seq >= c.headSeq+uint64(c.count) {
			continue // squashed (or a recycled seq not yet reassigned)
		}
		e := c.entry(seq)
		if e.fseq != de.fseq {
			continue // squashed and the rename seq was recycled
		}

		if e.verifPending {
			// Reused-load verification result (§3.8.3).
			c.Stats.LoadVerifications++
			if e.verifOK {
				e.verifPending = false
				e.completed = true
			} else {
				c.violationFlush(seq, true)
			}
			continue
		}

		if e.hasDest {
			c.prf[e.destPreg] = e.result
			c.prfReady[e.destPreg] = true
		}
		e.executed = true
		e.completed = true
		c.emitTrace(trace.KindWriteback, e, "")

		switch e.instr.Class() {
		case isa.ClassStore:
			s := c.storeQ.AtAbs(e.lsqAbs)
			s.addr = e.memAddr
			s.value = e.memValue
			s.executed = true
			c.markStoreExecuted(e.lsqAbs)
			c.engine.NoteStore(e.memAddr)
			if victim, ok := c.storeViolationScan(e); ok {
				c.violationFlush(victim, false)
			}
		case isa.ClassBranch, isa.ClassJumpR:
			if e.nextPC != e.predNext {
				e.mispredicted = true
				c.mispredictFlush(e)
			}
		}
	}
}

// storeViolationScan implements the store-side load-queue search: a
// younger executed load with a matching address that did not get its data
// from this store (or a younger one) read stale data. Younger loads are
// exactly the absolute range [st.peerBound, loadQ.Tail()): peerBound is
// the load-queue tail captured when the store renamed, so the scan never
// touches the older loads the previous full-queue walk had to skip over.
func (c *Core) storeViolationScan(st *robEntry) (uint64, bool) {
	a := st.memAddr &^ 7
	abs := st.peerBound
	if b := c.loadQ.Base(); abs < b {
		abs = b
	}
	for tail := c.loadQ.Tail(); abs < tail; abs++ {
		l := c.loadQ.AtAbs(abs)
		if !l.executed {
			continue
		}
		if l.addr&^7 == a && l.fwdFrom < st.seq {
			return l.seq, true
		}
	}
	return 0, false
}

// commit retires up to CommitWidth completed instructions from the ROB
// head, writing stores to memory, training the predictors, freeing
// previous mappings and running the lockstep checker.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		e := &c.rob[c.headIdx]
		if !e.completed {
			return
		}
		if c.checker != nil {
			c.debugCheck(e)
		}
		switch e.instr.Class() {
		case isa.ClassBranch:
			c.Stats.Branches++
			if e.mispredicted {
				c.Stats.BranchMispredicts++
			}
			c.bp.Train(e.pc, e.snapshot, e.taken)
		case isa.ClassJumpR:
			if e.mispredicted {
				c.Stats.JumpMispredicts++
			}
			if !e.isReturn {
				c.bp.TrainIndirect(e.pc, e.nextPC)
			}
		case isa.ClassLoad:
			if c.loadQ.Len() == 0 || c.loadQ.Front().seq != e.seq {
				panic("core: load queue out of sync at commit")
			}
			c.loadQ.PopFront()
		case isa.ClassStore:
			if c.storeQ.Len() == 0 || c.storeQ.Front().seq != e.seq {
				panic("core: store queue out of sync at commit")
			}
			c.mem.Write(e.memAddr, e.memValue)
			c.hier.Access(e.memAddr)
			c.unmarkStoreExecuted(c.storeQ.Base())
			c.storeQ.PopFront()
		}
		if e.hasCheckpoint {
			c.checkpointsInFlight--
		}
		if e.hasDest {
			// The previous mapping of the destination register is now
			// unreachable; free it (unless a squash log holds it).
			c.tracker.Unlive(e.oldMap.Preg)
		}
		c.emitTrace(trace.KindCommit, e, "")
		c.Stats.Retired++
		if c.suspendCommits > 0 {
			c.suspendCommits--
		}
		halt := e.halt
		c.headIdx = (c.headIdx + 1) & c.robMask
		c.count--
		c.headSeq++
		if halt {
			c.halted = true
			return
		}
	}
}

// debugCheck compares one committing instruction against the lockstep
// functional emulator and panics on divergence — the repository's golden
// invariant that squash reuse never changes architectural behaviour.
func (c *Core) debugCheck(e *robEntry) {
	info := c.checker.Step()
	fail := func(what string, got, want interface{}) {
		panic(fmt.Sprintf("core: lockstep divergence at pc=0x%x seq=%d (%v): %s = %v, emulator has %v",
			e.pc, e.seq, e.instr, what, got, want))
	}
	if info.PC != e.pc {
		fail("pc", fmt.Sprintf("0x%x", e.pc), fmt.Sprintf("0x%x", info.PC))
	}
	if e.hasDest {
		if want := c.checker.Regs[e.instr.Rd]; e.result != want {
			fail("result", e.result, want)
		}
	}
	if e.instr.IsStore() {
		if e.memAddr != info.Outcome.MemAddr || e.memValue != info.Outcome.Result {
			fail("store", fmt.Sprintf("[0x%x]=%d", e.memAddr, e.memValue),
				fmt.Sprintf("[0x%x]=%d", info.Outcome.MemAddr, info.Outcome.Result))
		}
	}
	if e.instr.IsControl() && !e.halt {
		if e.nextPC != info.NextPC {
			fail("nextPC", fmt.Sprintf("0x%x", e.nextPC), fmt.Sprintf("0x%x", info.NextPC))
		}
	}
}
