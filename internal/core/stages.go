package core

import (
	"fmt"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/reuse"
	"mssr/internal/trace"
)

// fetch forms up to BlocksPerCycle prediction blocks and enqueues their
// instructions toward rename, feeding each block to the reuse engine's
// fetch-side reconvergence detection.
func (c *Core) fetch() {
	for b := 0; b < c.cfg.BlocksPerCycle; b++ {
		if c.fetchQ.Len()+isa.FetchBlockInstrs > c.cfg.FetchQueue {
			return
		}
		blk, ok := c.fu.NextBlock()
		if !ok {
			return
		}
		firstFseq := c.fseq + 1
		for _, fi := range blk.Instrs {
			c.fseq++
			c.fetchQ.Push(fetchedEntry{
				fi:      fi,
				fseq:    c.fseq,
				readyAt: c.cycle + c.cfg.FrontendDelay,
			})
			if c.tracer != nil {
				c.tracer.Emit(trace.Event{Cycle: c.cycle, Kind: trace.KindFetch, Fseq: c.fseq, PC: fi.PC, Instr: fi.Instr})
			}
		}
		before := c.Stats.Reconvergences
		c.engine.ObserveBlock(blk.StartPC, blk.EndPC, firstFseq, len(blk.Instrs), c.lastRedirectSeq)
		if c.tracer != nil && c.Stats.Reconvergences > before {
			c.tracer.Emit(trace.Event{Cycle: c.cycle, Kind: trace.KindReconverge, PC: blk.StartPC,
				Note: fmt.Sprintf("block %#x..%#x", blk.StartPC, blk.EndPC)})
		}
	}
}

// renameStage renames and dispatches up to RenameWidth instructions,
// performing the squash-reuse test for each one in program order.
func (c *Core) renameStage() {
	if c.cycle < c.renameBlockedUntil {
		return // RAT recovery (rollback walk) in progress
	}
	riTests := 0
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fetchQ.Len() == 0 || c.fetchQ.Front().readyAt > c.cycle {
			break
		}
		if c.count == c.cfg.ROBSize {
			break
		}
		fe := *c.fetchQ.Front()
		in := fe.fi.Instr
		cls := in.Class()

		// Structural hazards: verify every resource this instruction will
		// take before consuming the reuse-engine walk state.
		switch cls {
		case isa.ClassLoad:
			if c.loadQ.Len() >= c.cfg.LoadQueue || len(c.memIQ) >= c.cfg.MemIQSize {
				break
			}
		case isa.ClassStore:
			if c.storeQ.Len() >= c.cfg.StoreQueue || len(c.memIQ) >= c.cfg.MemIQSize {
				break
			}
		case isa.ClassBranch, isa.ClassJumpR:
			if len(c.iq) >= c.cfg.IQSize {
				break
			}
		case isa.ClassNop, isa.ClassHalt, isa.ClassJump:
			// No issue resources needed.
		default:
			if len(c.iq) >= c.cfg.IQSize {
				break
			}
		}
		if in.HasDest() && c.tracker.FreeCount() == 0 {
			// Free-list pressure: reclaim squash-reuse reservations
			// (§3.3.2 condition 5), then stall if still dry.
			for c.tracker.FreeCount() == 0 && c.engine.Reclaim() {
			}
			if c.tracker.FreeCount() == 0 {
				break
			}
		}

		// Commit to renaming this instruction.
		c.fetchQ.PopFront()
		seq := c.nextSeq
		c.nextSeq++
		pos := (c.headIdx + c.count) & c.robMask
		c.count++
		e := &c.rob[pos]
		*e = robEntry{
			seq:       seq,
			fseq:      fe.fseq,
			pc:        fe.fi.PC,
			instr:     in,
			predTaken: fe.fi.PredTaken,
			predNext:  fe.fi.PredNextPC,
			snapshot:  fe.fi.Snapshot,
			isCall:    fe.fi.IsCall,
			isReturn:  fe.fi.IsReturn,
			destPreg:  rename.NoPreg,
			destGen:   rename.NullRGID,
			nsrc:      in.NumSources(),
		}
		for i := 0; i < e.nsrc; i++ {
			m := c.rat.Get(in.Src(i))
			e.srcPregs[i] = m.Preg
			e.srcGens[i] = m.Gen
		}
		c.Stats.Fetched++

		var grant reuse.Grant
		var granted bool
		// Serialized RI table access (§3.7.3): beyond the per-cycle test
		// budget, instructions rename without an integration attempt.
		riLimited := c.cfg.Reuse == ReuseRI && c.cfg.RITestsPerCycle > 0 &&
			riTests >= c.cfg.RITestsPerCycle
		if !riLimited {
			if c.cfg.Reuse == ReuseRI {
				riTests++
			}
			grant, granted = c.engine.TryReuse(reuse.Request{
				Seq:      fe.fseq,
				PC:       e.pc,
				Instr:    in,
				SrcGens:  e.srcGens,
				SrcPregs: e.srcPregs,
			})
		}
		if granted && !in.HasDest() {
			panic(fmt.Sprintf("core: engine granted reuse for %v without destination", in))
		}

		if in.HasDest() {
			e.hasDest = true
			switch {
			case granted && grant.ByValue:
				// Value-carrying grant (DIR): allocate a fresh register
				// and deposit the stored result.
				p, ok := c.tracker.Alloc()
				if !ok {
					panic("core: free list empty after pressure check")
				}
				c.prf[p] = grant.Value
				c.prfReady[p] = true
				e.destPreg = p
				e.destGen = c.alloc.Alloc(in.Rd)
				e.result = grant.Value
				e.reused = true
				e.executed = true
				e.completed = true
			case granted:
				p := grant.DestPreg
				// Re-adopt the held register: it becomes this
				// instruction's destination and the engine's reservation
				// is consumed.
				c.tracker.Revive(p)
				c.tracker.Release(p)
				if !c.prfReady[p] {
					panic(fmt.Sprintf("core: granted p%d has no value", p))
				}
				e.destPreg = p
				e.destGen = grant.DestGen
				if e.destGen == rename.NullRGID {
					e.destGen = c.alloc.Alloc(in.Rd)
				}
				e.result = c.prf[p]
				e.reused = true
				e.executed = true
				e.completed = true
			default:
				p, ok := c.tracker.Alloc()
				if !ok {
					panic("core: free list empty after pressure check")
				}
				c.prfReady[p] = false
				e.destPreg = p
				e.destGen = c.alloc.Alloc(in.Rd)
			}
			e.oldMap = c.rat.Set(in.Rd, rename.Mapping{Preg: e.destPreg, Gen: e.destGen})
		}

		switch cls {
		case isa.ClassNop:
			e.executed, e.completed = true, true
		case isa.ClassHalt:
			e.executed, e.completed, e.halt = true, true, true
			e.nextPC = e.pc
		case isa.ClassJump:
			// JAL: target is static and the link value is known here.
			e.executed, e.completed = true, true
			e.taken, e.nextPC = true, in.Target
			if e.hasDest {
				e.result = e.pc + isa.InstrBytes
				c.prf[e.destPreg] = e.result
				c.prfReady[e.destPreg] = true
			}
		case isa.ClassLoad:
			c.loadQ.Push(lsqEntry{seq: seq})
			if e.reused {
				// Reused load: consumers are unblocked now, but the value
				// must be verified by re-execution before commit (§3.8.3).
				e.memAddr = grant.MemAddr
				e.memValue = e.result
				lq := c.loadQ.At(c.loadQ.Len() - 1)
				lq.addr = grant.MemAddr
				lq.value = e.result
				lq.executed = true
				lq.reused = true
				e.completed = false
				e.verifPending = true
				c.verifQ.Push(seq)
			} else {
				c.memIQ = append(c.memIQ, seq)
				e.inIQ = true
			}
		case isa.ClassStore:
			c.storeQ.Push(lsqEntry{seq: seq})
			c.memIQ = append(c.memIQ, seq)
			e.inIQ = true
		case isa.ClassBranch, isa.ClassJumpR:
			if c.checkpointsInFlight < c.cfg.RATCheckpoints {
				e.hasCheckpoint = true
				c.checkpointsInFlight++
			}
			c.iq = append(c.iq, seq)
			e.inIQ = true
		default:
			if !e.reused {
				c.iq = append(c.iq, seq)
				e.inIQ = true
			}
		}
		if c.tracer != nil {
			if e.reused {
				c.emitTrace(trace.KindReuse, e, "")
			} else {
				c.emitTrace(trace.KindRename, e, "")
			}
		}
	}
	c.maybeRGIDReset()
}

// issue selects ready instructions within the cycle's functional-unit
// budgets, executes them, and schedules their completion.
func (c *Core) issue() {
	alu, bru, lsu := c.cfg.ALUs, c.cfg.BRUs, c.cfg.LSUs

	// Verification accesses for reused loads share the LSU ports.
	for c.verifQ.Len() > 0 && lsu > 0 {
		seq := c.verifQ.PopFront()
		lsu--
		e := c.entry(seq)
		val, _, lat := c.readForLoad(seq, e.memAddr)
		e.verifOK = val == e.result
		e.doneAt = c.cycle + 1 + lat
		e.issued = true
		c.executing = append(c.executing, seq)
	}

	// Memory reservation station: loads and stores on the LSU ports.
	for i := 0; i < len(c.memIQ) && lsu > 0; {
		seq := c.memIQ[i]
		e := c.entry(seq)
		if !c.sourcesReady(e) {
			i++
			continue
		}
		lsu--
		c.execute(e)
		c.memIQ = append(c.memIQ[:i], c.memIQ[i+1:]...)
	}

	// ALU/BRU reservation station.
	for i := 0; i < len(c.iq) && (alu > 0 || bru > 0); {
		seq := c.iq[i]
		e := c.entry(seq)
		isBRU := e.instr.Class() == isa.ClassBranch || e.instr.Class() == isa.ClassJumpR
		if isBRU && bru == 0 || !isBRU && alu == 0 {
			i++
			continue
		}
		if !c.sourcesReady(e) {
			i++
			continue
		}
		if isBRU {
			bru--
		} else {
			alu--
		}
		c.execute(e)
		c.iq = append(c.iq[:i], c.iq[i+1:]...)
	}
}

func (c *Core) sourcesReady(e *robEntry) bool {
	for i := 0; i < e.nsrc; i++ {
		if !c.prfReady[e.srcPregs[i]] {
			return false
		}
	}
	return true
}

// execute computes an instruction's architectural outcome and schedules
// its writeback.
func (c *Core) execute(e *robEntry) {
	var rs1v, rs2v uint64
	if e.nsrc > 0 {
		rs1v = c.prf[e.srcPregs[0]]
	}
	if e.nsrc > 1 {
		rs2v = c.prf[e.srcPregs[1]]
	}
	out := isa.Evaluate(e.instr, e.pc, rs1v, rs2v)
	switch e.instr.Class() {
	case isa.ClassMul:
		e.result = out.Result
		e.doneAt = c.cycle + c.cfg.MulLat
	case isa.ClassDiv:
		e.result = out.Result
		e.doneAt = c.cycle + c.cfg.DivLat
	case isa.ClassBranch:
		e.taken = out.Taken
		if out.Taken {
			e.nextPC = out.Target
		} else {
			e.nextPC = e.pc + isa.InstrBytes
		}
		e.doneAt = c.cycle + 1
	case isa.ClassJumpR:
		e.taken = true
		e.nextPC = out.Target
		e.result = out.Result
		e.doneAt = c.cycle + 1
	case isa.ClassLoad:
		e.memAddr = out.MemAddr
		val, fwd, lat := c.readForLoad(e.seq, e.memAddr)
		e.result = val
		e.memValue = val
		e.fwdFrom = fwd
		e.doneAt = c.cycle + 1 + lat
		lq := c.lsqFind(&c.loadQ, e.seq)
		lq.addr = e.memAddr
		lq.value = val
		lq.fwdFrom = fwd
		lq.executed = true
	case isa.ClassStore:
		e.memAddr = out.MemAddr
		e.memValue = out.Result
		e.doneAt = c.cycle + 1
	default:
		e.result = out.Result
		e.doneAt = c.cycle + 1
	}
	e.issued = true
	e.inIQ = false
	c.executing = append(c.executing, e.seq)
	c.emitTrace(trace.KindIssue, e, "")
}

// readForLoad resolves a load's value: store-to-load forwarding from the
// youngest older executed store with a matching address, else committed
// memory through the cache hierarchy. It returns the value, the forwarding
// store's seq (0 = memory), and the access latency.
func (c *Core) readForLoad(loadSeq, addr uint64) (uint64, uint64, uint64) {
	a := addr &^ 7
	for i := c.storeQ.Len() - 1; i >= 0; i-- {
		s := c.storeQ.At(i)
		if s.seq >= loadSeq {
			continue
		}
		if s.executed && s.addr&^7 == a {
			return s.value, s.seq, c.cfg.FwdLat
		}
	}
	return c.mem.Read(a), 0, c.hier.Access(a)
}

// lsqFind locates the LSQ entry for seq.
func (c *Core) lsqFind(q *ring[lsqEntry], seq uint64) *lsqEntry {
	for i := 0; i < q.Len(); i++ {
		if e := q.At(i); e.seq == seq {
			return e
		}
	}
	panic(fmt.Sprintf("core: LSQ entry for seq %d missing", seq))
}

// writeback retires execution results into the PRF, resolves branches
// (flushing on mispredictions), performs store-side violation checks and
// completes reused-load verification.
func (c *Core) writeback() {
	for {
		// Pick the oldest finished instruction; flushes triggered by one
		// writeback remove squashed entries from c.executing, so
		// re-scanning after each step is required for correctness.
		best := -1
		for i, seq := range c.executing {
			if c.entry(seq).doneAt > c.cycle {
				continue
			}
			if best < 0 || seq < c.executing[best] {
				best = i
			}
		}
		if best < 0 {
			return
		}
		seq := c.executing[best]
		c.executing = append(c.executing[:best], c.executing[best+1:]...)
		e := c.entry(seq)

		if e.verifPending {
			// Reused-load verification result (§3.8.3).
			c.Stats.LoadVerifications++
			if e.verifOK {
				e.verifPending = false
				e.completed = true
			} else {
				c.violationFlush(seq, true)
			}
			continue
		}

		if e.hasDest {
			c.prf[e.destPreg] = e.result
			c.prfReady[e.destPreg] = true
		}
		e.executed = true
		e.completed = true
		c.emitTrace(trace.KindWriteback, e, "")

		switch e.instr.Class() {
		case isa.ClassStore:
			s := c.lsqFind(&c.storeQ, seq)
			s.addr = e.memAddr
			s.value = e.memValue
			s.executed = true
			c.engine.NoteStore(e.memAddr)
			if victim, ok := c.storeViolationScan(e); ok {
				c.violationFlush(victim, false)
			}
		case isa.ClassBranch, isa.ClassJumpR:
			if e.nextPC != e.predNext {
				e.mispredicted = true
				c.mispredictFlush(e)
			}
		}
	}
}

// storeViolationScan implements the store-side load-queue search: a
// younger executed load with a matching address that did not get its data
// from this store (or a younger one) read stale data.
func (c *Core) storeViolationScan(st *robEntry) (uint64, bool) {
	a := st.memAddr &^ 7
	for i := 0; i < c.loadQ.Len(); i++ {
		l := c.loadQ.At(i)
		if l.seq <= st.seq || !l.executed {
			continue
		}
		if l.addr&^7 == a && l.fwdFrom < st.seq {
			return l.seq, true
		}
	}
	return 0, false
}

// commit retires up to CommitWidth completed instructions from the ROB
// head, writing stores to memory, training the predictors, freeing
// previous mappings and running the lockstep checker.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		e := &c.rob[c.headIdx]
		if !e.completed {
			return
		}
		if c.checker != nil {
			c.debugCheck(e)
		}
		switch e.instr.Class() {
		case isa.ClassBranch:
			c.Stats.Branches++
			if e.mispredicted {
				c.Stats.BranchMispredicts++
			}
			c.bp.Train(e.pc, e.snapshot, e.taken)
		case isa.ClassJumpR:
			if e.mispredicted {
				c.Stats.JumpMispredicts++
			}
			if !e.isReturn {
				c.bp.TrainIndirect(e.pc, e.nextPC)
			}
		case isa.ClassLoad:
			if c.loadQ.Len() == 0 || c.loadQ.Front().seq != e.seq {
				panic("core: load queue out of sync at commit")
			}
			c.loadQ.PopFront()
		case isa.ClassStore:
			if c.storeQ.Len() == 0 || c.storeQ.Front().seq != e.seq {
				panic("core: store queue out of sync at commit")
			}
			c.mem.Write(e.memAddr, e.memValue)
			c.hier.Access(e.memAddr)
			c.storeQ.PopFront()
		}
		if e.hasCheckpoint {
			c.checkpointsInFlight--
		}
		if e.hasDest {
			// The previous mapping of the destination register is now
			// unreachable; free it (unless a squash log holds it).
			c.tracker.Unlive(e.oldMap.Preg)
		}
		c.emitTrace(trace.KindCommit, e, "")
		c.Stats.Retired++
		if c.suspendCommits > 0 {
			c.suspendCommits--
		}
		halt := e.halt
		c.headIdx = (c.headIdx + 1) & c.robMask
		c.count--
		c.headSeq++
		if halt {
			c.halted = true
			return
		}
	}
}

// debugCheck compares one committing instruction against the lockstep
// functional emulator and panics on divergence — the repository's golden
// invariant that squash reuse never changes architectural behaviour.
func (c *Core) debugCheck(e *robEntry) {
	info := c.checker.Step()
	fail := func(what string, got, want interface{}) {
		panic(fmt.Sprintf("core: lockstep divergence at pc=0x%x seq=%d (%v): %s = %v, emulator has %v",
			e.pc, e.seq, e.instr, what, got, want))
	}
	if info.PC != e.pc {
		fail("pc", fmt.Sprintf("0x%x", e.pc), fmt.Sprintf("0x%x", info.PC))
	}
	if e.hasDest {
		if want := c.checker.Regs[e.instr.Rd]; e.result != want {
			fail("result", e.result, want)
		}
	}
	if e.instr.IsStore() {
		if e.memAddr != info.Outcome.MemAddr || e.memValue != info.Outcome.Result {
			fail("store", fmt.Sprintf("[0x%x]=%d", e.memAddr, e.memValue),
				fmt.Sprintf("[0x%x]=%d", info.Outcome.MemAddr, info.Outcome.Result))
		}
	}
	if e.instr.IsControl() && !e.halt {
		if e.nextPC != info.NextPC {
			fail("nextPC", fmt.Sprintf("0x%x", e.nextPC), fmt.Sprintf("0x%x", info.NextPC))
		}
	}
}
