package core

import (
	"context"
	"errors"
	"fmt"

	"mssr/internal/bpred"
	"mssr/internal/emu"
	"mssr/internal/frontend"
	"mssr/internal/isa"
	"mssr/internal/mem"
	"mssr/internal/obs"
	"mssr/internal/rename"
	"mssr/internal/reuse"
	"mssr/internal/stats"
	"mssr/internal/trace"
)

// ErrCycleLimit is returned by Run when MaxCycles elapses before HALT
// commits.
var ErrCycleLimit = errors.New("core: cycle limit exceeded")

// robEntry is one in-flight instruction.
type robEntry struct {
	seq   uint64 // rename-order sequence (contiguous in the ROB)
	fseq  uint64 // fetch-order sequence (matches reuse.Request.Seq)
	pc    uint64
	instr isa.Instruction

	// Prediction metadata.
	predTaken bool
	predNext  uint64
	snapshot  bpred.Snapshot
	isCall    bool
	isReturn  bool

	// Rename metadata.
	hasDest  bool
	destPreg rename.PhysReg
	destGen  rename.RGID
	oldMap   rename.Mapping
	srcPregs [2]rename.PhysReg
	srcGens  [2]rename.RGID
	nsrc     int

	// Status.
	inIQ          bool
	issued        bool
	executed      bool
	completed     bool
	doneAt        uint64
	reused        bool
	verifPending  bool
	verifOK       bool
	mispredicted  bool
	hasCheckpoint bool

	// Execution results.
	result   uint64
	taken    bool
	nextPC   uint64 // resolved next PC for control instructions
	memAddr  uint64
	memValue uint64
	fwdFrom  uint64 // seq of the forwarding store; 0 = memory
	halt     bool

	// LSQ back-pointers, set at rename. lsqAbs is this instruction's own
	// absolute index in its load/store queue — the O(1) seq→entry
	// resolution that replaced the linear lsqFind scan. peerBound is the
	// opposite queue's tail at rename time: for a load, the absolute
	// index one past the youngest older store (the forwarding-scan
	// bound); for a store, the absolute index of the oldest younger load
	// (the violation-scan start).
	lsqAbs    uint64
	peerBound uint64
}

// lsqEntry is one load- or store-queue entry.
type lsqEntry struct {
	seq      uint64
	addr     uint64
	value    uint64
	executed bool
	fwdFrom  uint64 // loads: forwarding store seq, 0 = memory
	reused   bool
}

// rsEntry is one reservation-station slot: the few fields the issue scan
// needs, packed contiguously so waking up a stalled station is a walk
// over a compact array instead of a pointer chase through 200-byte ROB
// entries scattered across cache lines.
// Core is the out-of-order processor model executing one program.
type Core struct {
	cfg  Config
	prog *isa.Program

	// Substrates.
	bp      *bpred.Unit
	fu      *frontend.Unit
	hier    *mem.Hierarchy
	rat     *rename.RAT
	alloc   *rename.Allocator
	tracker *rename.Tracker
	engine  reuse.Engine
	// tryAll: the engine's TryReuse must observe every renamed
	// instruction (side effects beyond the reuse test itself); tryNever:
	// TryReuse is a pure no-op. Both let rename skip the call — and the
	// Request construction it pays for — when nothing can come of it;
	// when the call happens, it is unchanged. See Core.renameStage.
	tryAll   bool
	tryNever bool
	Stats    *stats.Stats

	// Physical register file.
	prf      []uint64
	prfReady []bool

	// ROB ring buffer. The backing array is rounded up to a power of two
	// so entry lookup — the hottest address computation in the cycle
	// loop — masks instead of dividing; logical capacity stays
	// cfg.ROBSize.
	rob     []robEntry
	robMask int
	headIdx int
	count   int
	headSeq uint64 // seq of the head entry
	nextSeq uint64 // next rename seq

	// Fetch. fetchSlot is the pre-bound nextFetchSlot method value handed
	// to frontend.NextBlockInto, built once so fetch never allocates.
	fseq            uint64
	fetchQ          ring[fetchedEntry]
	fetchSlot       func() *frontend.FetchedInstr
	lastRedirectSeq uint64

	// Rename checkpoints (Table 2's 32-checkpoint budget) and the
	// recovery stall modelling checkpoint-miss rollback walks.
	checkpointsInFlight int
	renameBlockedUntil  uint64

	// Scheduler. The reservation stations keep their full configured
	// capacity preallocated; issue and squash compact them in place, so
	// the cycle loop never reallocates them. Issued instructions are
	// scheduled on the completion wheel keyed by doneAt; writeback drains
	// exactly one bucket per cycle.
	iqs    sched        // ALU/BRU reservation station (event-driven; see sched)
	mems   sched        // LSU reservation station
	wheel  doneWheel    // issued, bucketed by completion cycle
	verifQ ring[uint64] // reused loads awaiting verification issue

	// LSQ (front-popped at commit, so rings rather than slices).
	loadQ  ring[lsqEntry]
	storeQ ring[lsqEntry]

	// storeExec tracks which store-queue entries have executed, one bit
	// per physical storeQ slot (slots are residency-stable, see
	// ring.Slot). The forwarding scan in readForLoad tests these bits and
	// dereferences only executed stores; storeExecCount lets a scan with
	// no executed stores anywhere skip straight to memory.
	storeExec      []uint64
	storeExecCount int

	// squashDests is the per-squash destination-register scratch bitmap
	// (indexed by PhysReg), marked and fully cleared within each
	// mispredictFlush so recovery never allocates.
	squashDests []bool

	// Committed architectural memory.
	mem *emu.Memory

	// RGID reset protocol (§3.3.2).
	suspendCommits int // stream capture suspended until this many commits

	// Interval telemetry. sampleAt is the next sampling boundary; with
	// no sampler it parks at MaxUint64 so the cycle loop pays a single
	// never-taken compare. onInterval, when set, observes each interval
	// the sampler records, live from the cycle loop (SetIntervalHook).
	sampler    *obs.Sampler
	sampleAt   uint64
	onInterval func(*obs.Interval)

	// Run state. retiredBase is the number of instructions the functional
	// emulator already retired before this core was seeded mid-program
	// (Core.SeedFrom); 0 for a from-entry run. Result folds it in so a
	// seeded window reports program-relative retirement counts.
	cycle       uint64
	halted      bool
	retiredBase uint64

	tracer trace.Tracer

	// Debug lockstep checker. checker is the core-private emulator built
	// when cfg.DebugCheck is set; a batch driver overrides it with a
	// shared replayed stream (checkStream + this core's read cursor
	// checkIdx) so M lockstep variants consume one architectural
	// execution instead of stepping M private emulators.
	checker     *emu.Emulator
	checkStream *archStream
	checkIdx    uint64
}

type fetchedEntry struct {
	fi      frontend.FetchedInstr
	fseq    uint64
	readyAt uint64
}

// New builds a core for prog under cfg. All capacity-dependent
// structures are sized here, once; the initial mutable state is
// installed by Reset, the same path pooled cores take between programs,
// so a fresh core and a Reset one are identical by construction.
func New(prog *isa.Program, cfg Config) *Core {
	robLen := ceilPow2(cfg.ROBSize)
	c := &Core{
		cfg:      cfg,
		bp:       bpred.New(cfg.BP),
		hier:     mem.NewHierarchy(cfg.Mem),
		rat:      rename.NewRAT(),
		alloc:    rename.NewAllocator(cfg.RGIDBits),
		tracker:  rename.NewTracker(cfg.PhysRegs, isa.NumArchRegs),
		Stats:    &stats.Stats{},
		prf:      make([]uint64, cfg.PhysRegs),
		prfReady: make([]bool, cfg.PhysRegs),
		rob:      make([]robEntry, robLen),
		robMask:  robLen - 1,
		fetchQ:   newRing[fetchedEntry](cfg.FetchQueue),
		verifQ:   newRing[uint64](cfg.LoadQueue),
		// In-flight instructions are bounded by the ROB, and the
		// dispatch-side IQSize/MemIQSize tests do not in fact stall (a
		// break inside the hazard switch leaves the switch only), so the
		// station pools must admit a full ROB's worth of entries to
		// reproduce the established model behaviour exactly.
		iqs:         newSched(cfg.ROBSize, cfg.PhysRegs),
		mems:        newSched(cfg.ROBSize, cfg.PhysRegs),
		wheel:       newDoneWheel(cfg.maxCompletionLatency()),
		loadQ:       newRing[lsqEntry](cfg.LoadQueue),
		storeQ:      newRing[lsqEntry](cfg.StoreQueue),
		storeExec:   make([]uint64, (cfg.StoreQueue+63)/64),
		squashDests: make([]bool, cfg.PhysRegs),
		mem:         emu.NewMemory(),
	}
	c.fu = frontend.New(prog, c.bp)
	c.fetchSlot = c.nextFetchSlot
	switch cfg.Reuse {
	case ReuseMultiStream:
		c.engine = reuse.NewMultiStream(cfg.MS, (*kernel)(c), c.Stats)
		// The armed/walk protocol observes every renamed instruction.
		c.tryAll = true
	case ReuseRI:
		c.engine = reuse.NewRegisterIntegration(cfg.RI, (*kernel)(c), c.Stats)
		c.tracker.OnFree = func(p rename.PhysReg) { c.engine.OnPregFreed(p) }
	case ReuseDIR:
		c.engine = reuse.NewDIR(cfg.DIR, (*kernel)(c), c.Stats)
		// The name scheme invalidates entries on every renamed
		// destination, so it too must see every instruction.
		c.tryAll = cfg.DIR.Scheme == reuse.DIRName
	default:
		c.engine = reuse.NewNone()
		c.tryNever = true
	}
	if cfg.DebugCheck {
		c.checker = emu.New(prog)
	}
	if cfg.SampleInterval > 0 {
		c.sampler = obs.NewSampler(cfg.SampleInterval, cfg.SampleWindow)
	}
	c.tracer = cfg.Tracer
	c.Reset(prog)
	return c
}

// ceilPow2 returns the smallest power of two >= n.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// emitTrace sends a pipeline event for e at the current cycle.
func (c *Core) emitTrace(kind trace.Kind, e *robEntry, note string) {
	if c.tracer == nil {
		return
	}
	c.tracer.Emit(trace.Event{
		Cycle: c.cycle, Kind: kind,
		Seq: e.seq, Fseq: e.fseq, PC: e.pc, Instr: e.instr, Note: note,
	})
}

// kernel adapts Core to reuse.Kernel without exporting the methods on Core.
type kernel Core

func (k *kernel) HoldPreg(p rename.PhysReg)    { k.tracker.Hold(p) }
func (k *kernel) ReleasePreg(p rename.PhysReg) { k.tracker.Release(p) }
func (k *kernel) PregLive(p rename.PhysReg) bool {
	return k.tracker.IsLive(p)
}
func (k *kernel) PregValue(p rename.PhysReg) (uint64, bool) {
	return k.prf[p], k.prfReady[p]
}

// entry returns the ROB entry with the given rename seq.
func (c *Core) entry(seq uint64) *robEntry {
	if seq < c.headSeq || seq >= c.headSeq+uint64(c.count) {
		panic(fmt.Sprintf("core: seq %d outside ROB [%d, %d)", seq, c.headSeq, c.headSeq+uint64(c.count)))
	}
	return &c.rob[(c.headIdx+int(seq-c.headSeq))&c.robMask]
}

func (c *Core) tailSeq() uint64 { return c.headSeq + uint64(c.count) }

// storeExecuted reports whether the store at absolute index abs has
// executed, via the per-slot bitmap (no entry dereference).
func (c *Core) storeExecuted(abs uint64) bool {
	s := c.storeQ.Slot(abs)
	return c.storeExec[s>>6]&(1<<uint(s&63)) != 0
}

// markStoreExecuted sets the executed bit for the store at abs. Called
// exactly once per store, at writeback.
func (c *Core) markStoreExecuted(abs uint64) {
	s := c.storeQ.Slot(abs)
	c.storeExec[s>>6] |= 1 << uint(s&63)
	c.storeExecCount++
}

// unmarkStoreExecuted clears the executed bit for the store at abs if
// set (commit and squash paths; squashed stores may not have executed).
func (c *Core) unmarkStoreExecuted(abs uint64) {
	s := c.storeQ.Slot(abs)
	w, b := s>>6, uint64(1)<<uint(s&63)
	if c.storeExec[w]&b != 0 {
		c.storeExec[w] &^= b
		c.storeExecCount--
	}
}

// Run simulates until the program halts, returning ErrCycleLimit if it
// does not.
func (c *Core) Run() error { return c.RunContext(context.Background()) }

// RunContext simulates until the program halts or ctx is done, checking
// for cancellation every 1024 cycles so a sweep's per-job timeouts and
// cancellation take effect promptly without a per-cycle cost. An aborted
// run returns ctx's error (wrapped) with Stats reflecting progress so
// far.
func (c *Core) RunContext(ctx context.Context) error {
	err := c.stepUntil(ctx, ^uint64(0))
	c.finishRun()
	return err
}

// stepUntil advances the pipeline until the core halts, at least
// retireTarget instructions have retired, ctx is cancelled, or the cycle
// limit elapses. It is the resumable inner loop RunContext and the batch
// driver share: pausing at a retire target and resuming is
// cycle-for-cycle identical to an uninterrupted run, because every
// stopping condition is evaluated at the loop head from state the loop
// itself maintains. stepUntil does not seal the run's counters — the
// caller invokes finishRun exactly once, after the final stepUntil call,
// so the sampler's trailing partial interval is flushed a single time.
func (c *Core) stepUntil(ctx context.Context, retireTarget uint64) error {
	done := ctx.Done()
	for !c.halted && c.Stats.Retired < retireTarget {
		if done != nil && c.cycle&1023 == 0 {
			select {
			case <-done:
				return fmt.Errorf("core: aborted after %d cycles (%d retired): %w", c.cycle, c.Stats.Retired, ctx.Err())
			default:
			}
		}
		if c.cycle >= c.cfg.MaxCycles {
			return fmt.Errorf("%w (%d cycles, %d retired)", ErrCycleLimit, c.cycle, c.Stats.Retired)
		}
		c.cycle++
		c.commit()
		if c.halted {
			break
		}
		c.writeback()
		c.issue()
		c.renameStage()
		c.fetch()
		if c.cycle >= c.sampleAt {
			c.takeSample()
		}
	}
	return nil
}

// finishRun seals the run's counters on every RunContext exit path: the
// final cycle count, the memory-hierarchy mirror, and the sampler's
// trailing partial interval.
func (c *Core) finishRun() {
	c.Stats.Cycles = c.cycle
	c.syncMemStats()
	if c.sampler != nil {
		if c.sampler.Flush(obs.SnapshotOf(c.cycle, c.Stats)) && c.onInterval != nil {
			c.onInterval(c.sampler.Last())
		}
	}
}

// takeSample closes the interval ending at the current cycle and arms
// the next boundary. Only called with a sampler attached (the disabled
// path parks sampleAt at MaxUint64).
func (c *Core) takeSample() {
	c.syncMemStats()
	c.sampler.Record(obs.SnapshotOf(c.cycle, c.Stats))
	if c.onInterval != nil {
		c.onInterval(c.sampler.Last())
	}
	c.sampleAt += c.cfg.SampleInterval
}

// SetIntervalHook installs fn to observe every interval the sampler
// records, at the moment it is recorded — the live-telemetry tap. The
// pointer aliases the sampler's ring; fn must copy the record if it
// outlives the call (publishing it by value through an events.Hub
// does). fn runs on the simulation goroutine: it must not block, and a
// nil-subscriber hub publish keeps the cycle loop allocation-free. A
// full Reset clears the hook (pooled cores never leak one run's hook
// into the next job); ResetWindow preserves it, so one hook covers all
// sample periods of a multi-fidelity run. No-op without a sampler.
func (c *Core) SetIntervalHook(fn func(*obs.Interval)) {
	if c.sampler == nil {
		return
	}
	c.onInterval = fn
}

// syncMemStats mirrors the memory-hierarchy counters into Stats. The
// hierarchy owns the live counters; results and telemetry samples read
// them through Stats.
func (c *Core) syncMemStats() {
	st, h := c.Stats, c.hier
	st.L1DHits, st.L1DMisses, st.L1DEvictions = h.L1.Hits, h.L1.Misses, h.L1.Evictions
	st.L2Hits, st.L2Misses, st.L2Evictions = h.L2.Hits, h.L2.Misses, h.L2.Evictions
	st.DRAMAccesses = h.DRAMAccesses
}

// Intervals returns a copy of the run's retained telemetry intervals
// (nil without a configured SampleInterval). The copy never aliases the
// sampler's ring, so it survives a pooled core's next Reset.
func (c *Core) Intervals() []obs.Interval {
	if c.sampler == nil {
		return nil
	}
	return c.sampler.Intervals()
}

// IntervalsDropped reports how many early intervals the sampler's ring
// overwrote (0 without a sampler).
func (c *Core) IntervalsDropped() int {
	if c.sampler == nil {
		return 0
	}
	return c.sampler.Dropped()
}

// Result returns the final architectural state in the same form as the
// functional emulator, enabling direct equivalence checks.
func (c *Core) Result() emu.Result {
	var r emu.Result
	for i := 0; i < isa.NumArchRegs; i++ {
		r.Regs[i] = c.prf[c.rat.Get(isa.Reg(i)).Preg]
	}
	r.Regs[isa.Zero] = 0
	r.MemDigest = c.mem.Hash()
	r.Retired = c.retiredBase + c.Stats.Retired
	return r
}

// Cycles reports the simulated cycle count so far.
func (c *Core) Cycles() uint64 { return c.cycle }

// CommittedMemory exposes the architectural memory (read-only use).
func (c *Core) CommittedMemory() *emu.Memory { return c.mem }

// EngineName reports the active reuse engine for diagnostics.
func (c *Core) EngineName() string { return c.engine.Name() }

// AuditRegisters verifies the physical-register partition invariant
// (used by tests after a run).
func (c *Core) AuditRegisters() error { return c.tracker.Audit() }
