// Package api defines the wire format of the msrd simulation daemon:
// the JSON shapes exchanged by internal/server and internal/client over
// the /v1 HTTP API.
//
// The wire Spec is deliberately a strict subset of sim.Spec — only
// registry workloads (named, built deterministically at a scale) can
// cross the wire, never pre-built programs, tracers or Tune closures.
// That restriction is what makes the daemon's content-addressed result
// cache sound: a wire spec's sim.Spec.CanonicalKey() fully describes
// the simulation it requests, so equal keys mean equal results.
package api

import (
	"errors"
	"fmt"
	"time"

	"mssr/internal/obs"
	"mssr/internal/sim"
	"mssr/internal/stats"
)

// Spec is the wire form of one simulation request.
type Spec struct {
	// Label is the caller's display key for the result (sim.Spec.Label).
	// It never influences caching.
	Label string `json:"label,omitempty"`
	// Workload names a registry workload; required.
	Workload string `json:"workload"`
	// Scale is the workload scale factor (1 = the paper's standard scale).
	Scale int `json:"scale,omitempty"`
	// Engine is the reuse engine name ("" or "none", "rgid", "ri",
	// "dir-value", "dir-name").
	Engine string `json:"engine,omitempty"`
	// Geometry (0 = the engine's default).
	Streams int `json:"streams,omitempty"`
	Entries int `json:"entries,omitempty"`
	Sets    int `json:"sets,omitempty"`
	Ways    int `json:"ways,omitempty"`
	// Loads is the reused-load protection policy ("" or "default",
	// "verify", "bloom", "none").
	Loads string `json:"loads,omitempty"`
	// Check runs the lockstep functional checker at commit.
	Check bool `json:"check,omitempty"`
	// VerifyArch compares the final architectural state with the
	// functional emulator.
	VerifyArch bool `json:"verify_arch,omitempty"`
	// SampleInterval attaches interval telemetry at this cycle period
	// (0 = disabled); SampleWindow bounds the retained interval ring.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	SampleWindow   int    `json:"sample_window,omitempty"`
	// Multi-fidelity execution (sim.Spec.FastForward and friends): skip
	// FastForward instructions functionally before each detailed window of
	// DetailedWindow instructions, SamplePeriods times, optionally warming
	// caches and branch predictor during the skip. All four are part of
	// the canonical cache key.
	FastForward    uint64 `json:"fast_forward,omitempty"`
	DetailedWindow uint64 `json:"detailed_window,omitempty"`
	SamplePeriods  int    `json:"sample_periods,omitempty"`
	Warm           bool   `json:"warm,omitempty"`
	// PhaseSelect picks the sampling placement policy ("" or "uniform",
	// "kmeans"); MaxErr > 0 enables adaptive stopping at that relative
	// standard error; NoCheckpoint opts a run out of the daemon's
	// checkpoint store. All three are part of the canonical cache key.
	PhaseSelect  string  `json:"phase_select,omitempty"`
	MaxErr       float64 `json:"max_err,omitempty"`
	NoCheckpoint bool    `json:"no_checkpoint,omitempty"`
	// TimeoutMS bounds the simulation's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Sim converts the wire spec into a sim.Spec, resolving the engine and
// load-policy names. It does not validate the result; the server
// validates after conversion so the error carries the canonical key.
func (s Spec) Sim() (sim.Spec, error) {
	eng, err := sim.ParseEngine(s.Engine)
	if err != nil {
		return sim.Spec{}, err
	}
	loads, err := sim.ParseLoadPolicy(s.Loads)
	if err != nil {
		return sim.Spec{}, err
	}
	phase, err := sim.ParsePhaseMode(s.PhaseSelect)
	if err != nil {
		return sim.Spec{}, err
	}
	return sim.Spec{
		Label:          s.Label,
		Workload:       s.Workload,
		Scale:          s.Scale,
		Engine:         eng,
		Streams:        s.Streams,
		Entries:        s.Entries,
		Sets:           s.Sets,
		Ways:           s.Ways,
		Loads:          loads,
		Check:          s.Check,
		VerifyArch:     s.VerifyArch,
		SampleInterval: s.SampleInterval,
		SampleWindow:   s.SampleWindow,
		FastForward:    s.FastForward,
		DetailedWindow: s.DetailedWindow,
		SamplePeriods:  s.SamplePeriods,
		Warm:           s.Warm,
		PhaseSelect:    phase,
		MaxErr:         s.MaxErr,
		NoCheckpoint:   s.NoCheckpoint,
		Timeout:        time.Duration(s.TimeoutMS) * time.Millisecond,
	}, nil
}

// FromSim converts a sim.Spec into its wire form. Specs carrying state
// that cannot cross the wire — a pre-built program, a Tune closure, a
// tracer — are rejected; remote consumers must describe runs by
// workload name.
func FromSim(s sim.Spec) (Spec, error) {
	var reasons []error
	if s.Program != nil {
		reasons = append(reasons, errors.New("pre-built Program is not serializable (use a registry Workload)"))
	}
	if s.Tune != nil {
		reasons = append(reasons, errors.New("Tune closure is not serializable"))
	}
	if s.Tracer != nil {
		reasons = append(reasons, errors.New("Tracer is not serializable"))
	}
	if len(reasons) > 0 {
		return Spec{}, fmt.Errorf("api: spec %s not remotable: %w", s.Key(), errors.Join(reasons...))
	}
	ws := Spec{
		Label:          s.Label,
		Workload:       s.Workload,
		Scale:          s.Scale,
		Streams:        s.Streams,
		Entries:        s.Entries,
		Sets:           s.Sets,
		Ways:           s.Ways,
		Check:          s.Check,
		VerifyArch:     s.VerifyArch,
		SampleInterval: s.SampleInterval,
		SampleWindow:   s.SampleWindow,
		FastForward:    s.FastForward,
		DetailedWindow: s.DetailedWindow,
		SamplePeriods:  s.SamplePeriods,
		Warm:           s.Warm,
		MaxErr:         s.MaxErr,
		NoCheckpoint:   s.NoCheckpoint,
		TimeoutMS:      s.Timeout.Milliseconds(),
	}
	if s.Engine != sim.EngineNone {
		ws.Engine = s.Engine.String()
	}
	if s.PhaseSelect != sim.PhaseUniform {
		ws.PhaseSelect = s.PhaseSelect.String()
	}
	if s.Loads != sim.LoadDefault {
		ws.Loads = s.Loads.String()
	}
	return ws, nil
}

// Result sources.
const (
	// SourceRun: the daemon ran the simulation for this request.
	SourceRun = "run"
	// SourceCache: served from the content-addressed result cache.
	SourceCache = "cache"
	// SourceDedup: joined an identical in-flight simulation.
	SourceDedup = "dedup"
	// SourceStore: served from the persistent content-addressed store
	// (typically a result computed before the daemon's last restart).
	SourceStore = "store"
)

// Result is the wire form of one completed simulation.
type Result struct {
	// Index is the spec's position in the submitted batch.
	Index int `json:"index"`
	// Key is the spec's display key (Label or canonical key).
	Key string `json:"key"`
	// CacheKey is the canonical content key the result is cached under.
	CacheKey string `json:"cache_key"`
	// Source records how the daemon produced the result: SourceRun,
	// SourceCache or SourceDedup.
	Source  string  `json:"source"`
	Program string  `json:"program,omitempty"`
	Engine  string  `json:"engine,omitempty"`
	Cycles  uint64  `json:"cycles,omitempty"`
	Retired uint64  `json:"retired,omitempty"`
	IPC     float64 `json:"ipc,omitempty"`
	// MIPS is the simulated throughput on the daemon (retired
	// instructions per host wall second, in millions); carried for
	// cache hits too, reflecting the original run.
	MIPS float64 `json:"mips,omitempty"`
	// WallNS is the simulation's wall time on the daemon (0 for cache
	// hits, which cost no simulation time).
	WallNS int64        `json:"wall_ns"`
	Error  string       `json:"error,omitempty"`
	Stats  *stats.Stats `json:"stats,omitempty"`
	// Intervals is the run's interval-telemetry stream, present when the
	// spec set SampleInterval. Cached results carry the original run's
	// stream (sampling parameters are part of the cache key).
	Intervals []obs.Interval `json:"intervals,omitempty"`
	// IntervalsDropped counts intervals lost to the sampler's bounded
	// ring (0 = complete stream).
	IntervalsDropped int `json:"intervals_dropped,omitempty"`
	// Multi-fidelity outcome (sim.Result fields of the same names); all
	// omitted for full-detail runs so their wire form is unchanged.
	Extrapolated    bool    `json:"extrapolated,omitempty"`
	Windows         int     `json:"windows,omitempty"`
	FastForwarded   uint64  `json:"fast_forwarded,omitempty"`
	TotalRetired    uint64  `json:"total_retired,omitempty"`
	ExtrapolatedIPC float64 `json:"extrapolated_ipc,omitempty"`
	IPCErrorEst     float64 `json:"ipc_error_est,omitempty"`
	// Checkpoint accounting for the run (sim.Result fields of the same
	// names): boundary states restored from / missing in the daemon's
	// checkpoint store, and the functional fast-forward instructions the
	// run actually executed (0 on a fully checkpoint-warm run).
	CkptHits   int    `json:"ckpt_hits,omitempty"`
	CkptMisses int    `json:"ckpt_misses,omitempty"`
	FFExecuted uint64 `json:"ff_executed,omitempty"`
}

// IntervalRecord is one line of the NDJSON interval endpoints
// (GET /v1/jobs/{id}/intervals): an interval annotated with the result
// key and source it belongs to.
type IntervalRecord struct {
	// Key is the owning result's display key.
	Key string `json:"key"`
	// Source mirrors the owning Result.Source.
	Source string `json:"source,omitempty"`
	obs.Interval
}

// ResultFromSim converts a completed sim.Result into its wire form.
func ResultFromSim(r sim.Result, source string) Result {
	out := Result{
		Index:            r.Index,
		Key:              r.Key,
		CacheKey:         r.Spec.CanonicalKey(),
		Source:           source,
		Program:          r.Program,
		Engine:           r.EngineName,
		MIPS:             r.MIPS,
		WallNS:           r.Wall.Nanoseconds(),
		Stats:            r.Stats,
		Intervals:        r.Intervals,
		IntervalsDropped: r.IntervalsDropped,
		Extrapolated:     r.Extrapolated,
		Windows:          r.Windows,
		FastForwarded:    r.FastForwarded,
		TotalRetired:     r.TotalRetired,
		ExtrapolatedIPC:  r.ExtrapolatedIPC,
		IPCErrorEst:      r.IPCErrorEst,
		CkptHits:         r.CkptHits,
		CkptMisses:       r.CkptMisses,
		FFExecuted:       r.FFExecuted,
	}
	if r.Stats != nil {
		out.Cycles = r.Stats.Cycles
		out.Retired = r.Stats.Retired
		out.IPC = r.Stats.IPC()
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// Sim converts the wire result back into a sim.Result for consumers
// (the experiment drivers) that run against either backend.
func (r Result) Sim() sim.Result {
	out := sim.Result{
		Index:            r.Index,
		Key:              r.Key,
		Program:          r.Program,
		EngineName:       r.Engine,
		Stats:            r.Stats,
		Wall:             time.Duration(r.WallNS),
		MIPS:             r.MIPS,
		Intervals:        r.Intervals,
		IntervalsDropped: r.IntervalsDropped,
		Extrapolated:     r.Extrapolated,
		Windows:          r.Windows,
		FastForwarded:    r.FastForwarded,
		TotalRetired:     r.TotalRetired,
		ExtrapolatedIPC:  r.ExtrapolatedIPC,
		IPCErrorEst:      r.IPCErrorEst,
		CkptHits:         r.CkptHits,
		CkptMisses:       r.CkptMisses,
		FFExecuted:       r.FFExecuted,
	}
	if r.Error != "" {
		out.Err = errors.New(r.Error)
	}
	return out
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	Specs []Spec `json:"specs"`
}

// SubmitResponse is the success body of POST /v1/jobs.
type SubmitResponse struct {
	JobID string `json:"job_id"`
	// Total is the number of simulations the job describes.
	Total int `json:"total"`
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Total int    `json:"total"`
	// Done counts completed simulations (any source).
	Done int `json:"done"`
	// CacheHits and DedupJoins count how many of the job's specs were
	// served without running a new simulation.
	CacheHits  int       `json:"cache_hits"`
	DedupJoins int       `json:"dedup_joins"`
	Submitted  time.Time `json:"submitted"`
	// Started and Finished are zero until the state transition happens.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Results holds one entry per spec in submit order; present only
	// when State is StateDone (use the stream endpoint for live
	// completions).
	Results []Result `json:"results,omitempty"`
	// Error is the job-level failure (shutdown, timeout), distinct from
	// per-result errors.
	Error string `json:"error,omitempty"`
}

// RegisterWorkerRequest is the body of POST /fleet/v1/workers on the
// coordinator: a worker daemon announcing the address the coordinator
// should dial it back on.
type RegisterWorkerRequest struct {
	Addr string `json:"addr"`
}

// WorkerInfo describes one fleet worker as the coordinator sees it.
type WorkerInfo struct {
	Addr string `json:"addr"`
	// Healthy reflects the coordinator's liveness probing; unhealthy
	// workers hold no queue and receive no new work.
	Healthy bool `json:"healthy"`
	// Queue is the coordinator-side count of specs sharded to this
	// worker and not yet dispatched.
	Queue int `json:"queue"`
	// Inflight is the count of specs dispatched and not yet resolved.
	Inflight int `json:"inflight"`
	// Dispatched and Completed count specs over the worker's lifetime.
	Dispatched uint64 `json:"dispatched"`
	Completed  uint64 `json:"completed"`
}

// WorkersResponse is the body of GET /fleet/v1/workers.
type WorkersResponse struct {
	Workers []WorkerInfo `json:"workers"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 responses: how long the client should
	// back off before resubmitting (the Retry-After header rounds this
	// up to whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}
