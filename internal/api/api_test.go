package api_test

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"mssr/internal/api"
	"mssr/internal/core"
	"mssr/internal/isa"
	"mssr/internal/sim"
	"mssr/internal/stats"
	"mssr/internal/trace"
)

func TestSpecRoundTrip(t *testing.T) {
	orig := sim.Spec{
		Label:          "bfs/rgid-sweep",
		Workload:       "bfs",
		Scale:          2,
		Engine:         sim.EngineRGID,
		Streams:        8,
		Entries:        128,
		Loads:          sim.LoadBloom,
		Check:          true,
		VerifyArch:     true,
		Timeout:        1500 * time.Millisecond,
		FastForward:    50000,
		DetailedWindow: 5000,
		SamplePeriods:  8,
		Warm:           true,
	}
	if err := orig.Validate(); err != nil {
		t.Fatalf("test spec invalid: %v", err)
	}
	ws, err := api.FromSim(orig)
	if err != nil {
		t.Fatalf("FromSim: %v", err)
	}
	back, err := ws.Sim()
	if err != nil {
		t.Fatalf("Sim: %v", err)
	}
	// Spec holds func fields, so compare the remotable fields piecewise.
	if back.Label != orig.Label || back.Timeout != orig.Timeout ||
		back.Check != orig.Check || back.VerifyArch != orig.VerifyArch {
		t.Errorf("round trip changed the spec:\n  got  %+v\n  want %+v", back, orig)
	}
	if back.FastForward != orig.FastForward || back.DetailedWindow != orig.DetailedWindow ||
		back.SamplePeriods != orig.SamplePeriods || back.Warm != orig.Warm {
		t.Errorf("fidelity fields did not survive the wire:\n  got  %+v\n  want %+v", back, orig)
	}
	if back.CanonicalKey() != orig.CanonicalKey() {
		t.Errorf("round trip changed the canonical key: %q vs %q", back.CanonicalKey(), orig.CanonicalKey())
	}
}

func TestSpecRoundTripDefaults(t *testing.T) {
	// Default engine and load policy are omitted on the wire and must
	// still round-trip to the same canonical key.
	orig := sim.Spec{Workload: "nested-mispred"}
	ws, err := api.FromSim(orig)
	if err != nil {
		t.Fatalf("FromSim: %v", err)
	}
	if ws.Engine != "" || ws.Loads != "" {
		t.Errorf("defaults should be omitted on the wire, got engine=%q loads=%q", ws.Engine, ws.Loads)
	}
	back, err := ws.Sim()
	if err != nil {
		t.Fatalf("Sim: %v", err)
	}
	if back.CanonicalKey() != orig.CanonicalKey() {
		t.Errorf("canonical key changed: %q vs %q", back.CanonicalKey(), orig.CanonicalKey())
	}
}

func TestFromSimRejectsUnserializable(t *testing.T) {
	cases := []struct {
		name string
		spec sim.Spec
		want string
	}{
		{"program", sim.Spec{Program: &isa.Program{Name: "inline"}}, "Program"},
		{"tune", sim.Spec{Workload: "bfs", Tune: func(*core.Config) {}, TuneKey: "x"}, "Tune"},
		{"tracer", sim.Spec{Workload: "bfs", Tracer: &trace.Writer{W: io.Discard}}, "Tracer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := api.FromSim(tc.spec)
			if err == nil {
				t.Fatal("FromSim accepted an unserializable spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending field %q", err, tc.want)
			}
		})
	}
}

func TestSpecSimRejectsBadNames(t *testing.T) {
	if _, err := (api.Spec{Workload: "bfs", Engine: "warp-drive"}).Sim(); err == nil {
		t.Error("unknown engine name accepted")
	}
	if _, err := (api.Spec{Workload: "bfs", Loads: "yolo"}).Sim(); err == nil {
		t.Error("unknown load policy accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	st := &stats.Stats{Cycles: 4200, Retired: 3150}
	sr := sim.Result{
		Index:           3,
		Key:             "bfs/rgid-4x64",
		Program:         "bfs",
		EngineName:      "rgid",
		Stats:           st,
		Wall:            7 * time.Millisecond,
		Spec:            sim.Spec{Workload: "bfs", Engine: sim.EngineRGID, Streams: 4, Entries: 64},
		Extrapolated:    true,
		Windows:         5,
		FastForwarded:   120000,
		TotalRetired:    123150,
		ExtrapolatedIPC: 1.875,
		IPCErrorEst:     0.013,
	}
	wr := api.ResultFromSim(sr, api.SourceRun)
	if wr.Source != api.SourceRun || wr.CacheKey != sr.Spec.CanonicalKey() {
		t.Errorf("wire result mislabelled: %+v", wr)
	}
	if wr.Cycles != 4200 || wr.IPC != st.IPC() {
		t.Errorf("headline metrics not lifted: %+v", wr)
	}
	back := wr.Sim()
	if back.Index != sr.Index || back.Key != sr.Key || back.Stats.Cycles != st.Cycles || back.Wall != sr.Wall {
		t.Errorf("round trip changed the result:\n  got  %+v\n  want %+v", back, sr)
	}
	if back.Err != nil {
		t.Errorf("successful result grew an error: %v", back.Err)
	}
	if !back.Extrapolated || back.Windows != sr.Windows || back.FastForwarded != sr.FastForwarded ||
		back.TotalRetired != sr.TotalRetired || back.ExtrapolatedIPC != sr.ExtrapolatedIPC ||
		back.IPCErrorEst != sr.IPCErrorEst {
		t.Errorf("fidelity fields did not survive the wire:\n  got  %+v\n  want %+v", back, sr)
	}

	sr.Err = errors.New("deadline exceeded")
	sr.Stats = nil
	wr = api.ResultFromSim(sr, api.SourceRun)
	if wr.Error == "" {
		t.Error("failure not carried onto the wire")
	}
	if back := wr.Sim(); back.Err == nil || back.Err.Error() != "deadline exceeded" {
		t.Errorf("failure not restored from the wire: %v", back.Err)
	}
}
