// Package obs is the interval-telemetry engine: an allocation-free
// time-series sampler over the simulator's cumulative counters. Every N
// cycles the core snapshots its stats.Stats (plus the L1D/L2/DRAM
// counters of internal/mem) into a Snapshot; the Sampler differences
// consecutive snapshots into Interval records — per-window deltas with
// the derived rates (IPC, reuse hit rate, branch MPKI, L1D miss rate)
// the paper's whole-run aggregates hide: warmup, reuse-rate ramp after
// RGID resets, mispredict bursts.
//
// The Sampler preallocates a fixed ring of Interval records at
// construction and never allocates afterwards, so an attached sampler
// keeps the cycle loop's zero-allocation discipline (guarded by
// core.TestSteadyStateZeroAllocs). When a run outlives the ring, the
// oldest intervals are overwritten and Dropped reports how many; the
// absolute Index on each record keeps the gap visible downstream.
package obs

import "mssr/internal/stats"

// DefaultWindow is the interval-ring capacity used when a sampler is
// requested without an explicit window.
const DefaultWindow = 1024

// Snapshot is the cumulative counter state at one cycle boundary. It is
// a plain value: building one costs no allocation.
type Snapshot struct {
	Cycle             uint64
	Retired           uint64
	Fetched           uint64
	Flushes           uint64
	Branches          uint64
	BranchMispredicts uint64
	JumpMispredicts   uint64
	ReuseTests        uint64
	ReuseHits         uint64
	SquashedStreams   uint64
	Reconvergences    uint64
	RGIDResets        uint64
	L1DHits           uint64
	L1DMisses         uint64
	L2Hits            uint64
	L2Misses          uint64
	DRAMAccesses      uint64
}

// SnapshotOf builds the cumulative snapshot at cycle from st. The memory
// counters must already be mirrored into st (the core does this before
// every sample; see Core.syncMemStats).
func SnapshotOf(cycle uint64, st *stats.Stats) Snapshot {
	return Snapshot{
		Cycle:             cycle,
		Retired:           st.Retired,
		Fetched:           st.Fetched,
		Flushes:           st.Flushes,
		Branches:          st.Branches,
		BranchMispredicts: st.BranchMispredicts,
		JumpMispredicts:   st.JumpMispredicts,
		ReuseTests:        st.ReuseTests,
		ReuseHits:         st.ReuseHits,
		SquashedStreams:   st.SquashedStreams,
		Reconvergences:    st.Reconvergences,
		RGIDResets:        st.RGIDResets,
		L1DHits:           st.L1DHits,
		L1DMisses:         st.L1DMisses,
		L2Hits:            st.L2Hits,
		L2Misses:          st.L2Misses,
		DRAMAccesses:      st.DRAMAccesses,
	}
}

// Interval is the delta between two consecutive snapshots plus the rates
// derived from it. The struct is flat and self-describing so records
// serialize directly as NDJSON lines or CSV rows.
type Interval struct {
	// Index is the absolute interval number since the run began; gaps
	// against a record's position reveal ring overwrites.
	Index int `json:"index"`
	// Start and End bound the window in cycles: [Start, End).
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`

	// Counter deltas over the window.
	Retired           uint64 `json:"retired"`
	Fetched           uint64 `json:"fetched"`
	Flushes           uint64 `json:"flushes"`
	Branches          uint64 `json:"branches"`
	BranchMispredicts uint64 `json:"branch_mispredicts"`
	JumpMispredicts   uint64 `json:"jump_mispredicts"`
	ReuseTests        uint64 `json:"reuse_tests"`
	ReuseHits         uint64 `json:"reuse_hits"`
	SquashedStreams   uint64 `json:"squashed_streams"`
	Reconvergences    uint64 `json:"reconvergences"`
	RGIDResets        uint64 `json:"rgid_resets"`
	L1DHits           uint64 `json:"l1d_hits"`
	L1DMisses         uint64 `json:"l1d_misses"`
	L2Hits            uint64 `json:"l2_hits"`
	L2Misses          uint64 `json:"l2_misses"`
	DRAMAccesses      uint64 `json:"dram_accesses"`

	// Derived per-interval rates.
	IPC         float64 `json:"ipc"`
	ReuseRate   float64 `json:"reuse_rate"`
	MPKI        float64 `json:"mpki"`
	L1DMissRate float64 `json:"l1d_miss_rate"`

	// Execution-mode annotation, set by the multi-fidelity orchestration
	// (internal/sim): Mode names how the enclosing region was executed
	// (ModeDetail for a sampled detailed window) and Window is the
	// 1-based sample-period number the interval belongs to. Both stay
	// zero-valued — and absent from the JSON — for full-detail runs, so
	// their interval streams are byte-identical to earlier versions.
	Mode   string `json:"mode,omitempty"`
	Window int    `json:"window,omitempty"`
}

// ModeDetail annotates intervals recorded inside a detailed window of a
// multi-fidelity run.
const ModeDetail = "detail"

// Cycles returns the window length.
func (iv *Interval) Cycles() uint64 { return iv.End - iv.Start }

// intervalBetween differences prev and cur into the interval record at
// absolute index idx.
func intervalBetween(idx int, prev, cur Snapshot) Interval {
	iv := Interval{
		Index:             idx,
		Start:             prev.Cycle,
		End:               cur.Cycle,
		Retired:           cur.Retired - prev.Retired,
		Fetched:           cur.Fetched - prev.Fetched,
		Flushes:           cur.Flushes - prev.Flushes,
		Branches:          cur.Branches - prev.Branches,
		BranchMispredicts: cur.BranchMispredicts - prev.BranchMispredicts,
		JumpMispredicts:   cur.JumpMispredicts - prev.JumpMispredicts,
		ReuseTests:        cur.ReuseTests - prev.ReuseTests,
		ReuseHits:         cur.ReuseHits - prev.ReuseHits,
		SquashedStreams:   cur.SquashedStreams - prev.SquashedStreams,
		Reconvergences:    cur.Reconvergences - prev.Reconvergences,
		RGIDResets:        cur.RGIDResets - prev.RGIDResets,
		L1DHits:           cur.L1DHits - prev.L1DHits,
		L1DMisses:         cur.L1DMisses - prev.L1DMisses,
		L2Hits:            cur.L2Hits - prev.L2Hits,
		L2Misses:          cur.L2Misses - prev.L2Misses,
		DRAMAccesses:      cur.DRAMAccesses - prev.DRAMAccesses,
	}
	if cycles := iv.End - iv.Start; cycles > 0 {
		iv.IPC = float64(iv.Retired) / float64(cycles)
	}
	if iv.Retired > 0 {
		iv.ReuseRate = float64(iv.ReuseHits) / float64(iv.Retired)
		iv.MPKI = 1000 * float64(iv.BranchMispredicts+iv.JumpMispredicts) / float64(iv.Retired)
	}
	if accesses := iv.L1DHits + iv.L1DMisses; accesses > 0 {
		iv.L1DMissRate = float64(iv.L1DMisses) / float64(accesses)
	}
	return iv
}

// Sampler turns a stream of cumulative snapshots into interval records,
// holding the most recent window of them in a preallocated ring. The
// zero value is not usable; construct with NewSampler. Sampler is not
// safe for concurrent use — it belongs to one core.
type Sampler struct {
	every uint64
	ring  []Interval
	n     int // total intervals recorded since Reset
	prev  Snapshot
}

// NewSampler builds a sampler that expects a snapshot every `every`
// cycles and retains the last `window` intervals (DefaultWindow when
// window <= 0). every must be positive.
func NewSampler(every uint64, window int) *Sampler {
	if every == 0 {
		panic("obs: sampler interval must be positive")
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Sampler{every: every, ring: make([]Interval, window)}
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() uint64 { return s.every }

// Record closes the interval ending at snap, overwriting the oldest
// record if the ring is full. It never allocates.
func (s *Sampler) Record(snap Snapshot) {
	s.ring[s.n%len(s.ring)] = intervalBetween(s.n, s.prev, snap)
	s.n++
	s.prev = snap
}

// Flush records the trailing partial interval ending at snap, if any
// cycles elapsed since the last boundary, and reports whether a record
// was produced. Call it once when a run ends.
func (s *Sampler) Flush(snap Snapshot) bool {
	if snap.Cycle > s.prev.Cycle {
		s.Record(snap)
		return true
	}
	return false
}

// Last returns the most recently recorded interval, or nil when none
// has been recorded since Reset. The pointer aliases the ring: copy the
// record before the next Record/Reset if it must outlive them.
func (s *Sampler) Last() *Interval {
	if s.n == 0 {
		return nil
	}
	return &s.ring[(s.n-1)%len(s.ring)]
}

// Reset restores the pristine post-construction state in place, keeping
// the ring's backing array (the core's Resettable seam).
func (s *Sampler) Reset() {
	s.n = 0
	s.prev = Snapshot{}
}

// Len reports how many intervals are retained (at most the window).
func (s *Sampler) Len() int {
	if s.n < len(s.ring) {
		return s.n
	}
	return len(s.ring)
}

// Total reports how many intervals were recorded since Reset, including
// any the ring has since overwritten.
func (s *Sampler) Total() int { return s.n }

// Dropped reports how many early intervals the ring overwrote.
func (s *Sampler) Dropped() int {
	if d := s.n - len(s.ring); d > 0 {
		return d
	}
	return 0
}

// AppendTo appends the retained intervals to dst in recording order and
// returns the extended slice. The records are copies: they stay valid
// after the sampler is Reset or overwritten, which is what lets pooled
// cores hand intervals to a result without aliasing pooled state.
func (s *Sampler) AppendTo(dst []Interval) []Interval {
	if s.n <= len(s.ring) {
		return append(dst, s.ring[:s.n]...)
	}
	at := s.n % len(s.ring)
	dst = append(dst, s.ring[at:]...)
	return append(dst, s.ring[:at]...)
}

// Intervals returns the retained intervals in recording order (nil when
// none were recorded).
func (s *Sampler) Intervals() []Interval {
	if s.n == 0 {
		return nil
	}
	return s.AppendTo(make([]Interval, 0, s.Len()))
}
