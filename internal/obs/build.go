package obs

import "runtime/debug"

// BuildInfo reports the running binary's identity for the *_build_info
// gauges: module version, Go toolchain version, and VCS revision (empty
// when the binary was built outside a checkout, e.g. under `go test`).
func BuildInfo() (version, goVersion, revision string) {
	version, goVersion = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return
}
