package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mssr/internal/stats"
)

func snapAt(cycle, retired, hits uint64) Snapshot {
	return Snapshot{
		Cycle:     cycle,
		Retired:   retired,
		ReuseHits: hits,
		Branches:  retired / 4,
		L1DHits:   retired / 2,
		L1DMisses: retired / 8,
	}
}

func TestSamplerDeltasAndRates(t *testing.T) {
	s := NewSampler(100, 8)
	s.Record(snapAt(100, 80, 8))
	s.Record(snapAt(200, 240, 40))
	ivs := s.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	first, second := ivs[0], ivs[1]
	if first.Start != 0 || first.End != 100 || first.Retired != 80 || first.ReuseHits != 8 {
		t.Errorf("first interval wrong: %+v", first)
	}
	if second.Start != 100 || second.End != 200 || second.Retired != 160 || second.ReuseHits != 32 {
		t.Errorf("second interval wrong: %+v", second)
	}
	if got, want := second.IPC, 1.6; got != want {
		t.Errorf("IPC = %v, want %v", got, want)
	}
	if got, want := second.ReuseRate, 0.2; got != want {
		t.Errorf("ReuseRate = %v, want %v", got, want)
	}
	if second.L1DMissRate <= 0 || second.L1DMissRate >= 1 {
		t.Errorf("L1DMissRate = %v, want in (0,1)", second.L1DMissRate)
	}
}

func TestSamplerFlushPartial(t *testing.T) {
	s := NewSampler(100, 8)
	s.Record(snapAt(100, 80, 8))
	s.Flush(snapAt(137, 110, 11)) // 37-cycle tail
	ivs := s.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2 (boundary + partial tail)", len(ivs))
	}
	tail := ivs[1]
	if tail.Start != 100 || tail.End != 137 || tail.Retired != 30 {
		t.Errorf("partial tail wrong: %+v", tail)
	}
	// A flush exactly on a boundary must not add an empty interval.
	s.Flush(snapAt(137, 110, 11))
	if got := s.Total(); got != 2 {
		t.Errorf("boundary flush recorded an empty interval: total %d", got)
	}
}

func TestSamplerRingOverwrite(t *testing.T) {
	s := NewSampler(10, 4)
	for i := uint64(1); i <= 10; i++ {
		s.Record(snapAt(10*i, i, 0))
	}
	if s.Total() != 10 || s.Len() != 4 || s.Dropped() != 6 {
		t.Fatalf("total/len/dropped = %d/%d/%d, want 10/4/6", s.Total(), s.Len(), s.Dropped())
	}
	ivs := s.Intervals()
	for i, iv := range ivs {
		if want := 6 + i; iv.Index != want {
			t.Errorf("retained interval %d has index %d, want %d (oldest overwritten)", i, iv.Index, want)
		}
	}
	if ivs[0].Start != 60 || ivs[len(ivs)-1].End != 100 {
		t.Errorf("retained window [%d,%d), want [60,100)", ivs[0].Start, ivs[len(ivs)-1].End)
	}
}

func TestSamplerRecordDoesNotAllocate(t *testing.T) {
	s := NewSampler(100, 16)
	var cycle, retired uint64
	allocs := testing.AllocsPerRun(100, func() {
		cycle += 100
		retired += 73
		s.Record(snapAt(cycle, retired, retired/10))
	})
	if allocs != 0 {
		t.Errorf("Record allocated %.1f objects per call, want 0", allocs)
	}
}

func TestSamplerResetKeepsRing(t *testing.T) {
	s := NewSampler(10, 4)
	s.Record(snapAt(10, 5, 1))
	s.Reset()
	if s.Total() != 0 || s.Len() != 0 || s.Intervals() != nil {
		t.Fatalf("Reset left state behind: total=%d", s.Total())
	}
	s.Record(snapAt(10, 5, 1))
	if iv := s.Intervals()[0]; iv.Start != 0 || iv.Retired != 5 {
		t.Errorf("post-Reset interval not measured from zero: %+v", iv)
	}
}

func TestSnapshotOfMirrorsStats(t *testing.T) {
	st := &stats.Stats{
		Retired: 7, Fetched: 9, Flushes: 2,
		Branches: 3, BranchMispredicts: 1, JumpMispredicts: 1,
		ReuseTests: 5, ReuseHits: 4, SquashedStreams: 2, Reconvergences: 2, RGIDResets: 1,
		L1DHits: 6, L1DMisses: 2, L2Hits: 1, L2Misses: 1, DRAMAccesses: 1,
	}
	snap := SnapshotOf(42, st)
	if snap.Cycle != 42 || snap.Retired != 7 || snap.ReuseHits != 4 ||
		snap.L1DMisses != 2 || snap.DRAMAccesses != 1 || snap.RGIDResets != 1 {
		t.Errorf("snapshot does not mirror stats: %+v", snap)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	s := NewSampler(100, 8)
	s.Record(snapAt(100, 80, 8))
	s.Record(snapAt(200, 240, 40))
	ivs := s.Intervals()

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, ivs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(ivs) {
		t.Fatalf("wrote %d lines for %d intervals", len(lines), len(ivs))
	}
	for i, line := range lines {
		var got Interval
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if got != ivs[i] {
			t.Errorf("line %d round-trip mismatch:\nwant %+v\ngot  %+v", i, ivs[i], got)
		}
	}

	// Same intervals, same bytes.
	var buf2 bytes.Buffer
	if err := WriteNDJSON(&buf2, ivs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("NDJSON encoding is not deterministic")
	}
}

func TestCSVMatchesHeader(t *testing.T) {
	s := NewSampler(100, 8)
	s.Record(snapAt(100, 80, 8))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s.Intervals()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	cols := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(cols) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(cols), len(row))
	}
	if cols[0] != "index" || cols[len(cols)-1] != "window" {
		t.Errorf("unexpected column order: %v", cols)
	}
}
