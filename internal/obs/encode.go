package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteNDJSON writes one JSON object per interval, newline-delimited.
// The encoding is deterministic: identical intervals produce identical
// bytes, which the pooled-vs-fresh determinism tests rely on.
func WriteNDJSON(w io.Writer, ivs []Interval) error {
	enc := json.NewEncoder(w)
	for i := range ivs {
		if err := enc.Encode(&ivs[i]); err != nil {
			return fmt.Errorf("obs: encoding interval %d: %w", ivs[i].Index, err)
		}
	}
	return nil
}

// csvColumns is the CSV column order; it mirrors the Interval field
// order so the two encodings agree on what an interval is.
var csvColumns = []string{
	"index", "start_cycle", "end_cycle",
	"retired", "fetched", "flushes",
	"branches", "branch_mispredicts", "jump_mispredicts",
	"reuse_tests", "reuse_hits", "squashed_streams", "reconvergences", "rgid_resets",
	"l1d_hits", "l1d_misses", "l2_hits", "l2_misses", "dram_accesses",
	"ipc", "reuse_rate", "mpki", "l1d_miss_rate",
	"mode", "window",
}

// CSVHeader returns the comma-joined column names of CSVRow.
func CSVHeader() string { return strings.Join(csvColumns, ",") }

// CSVRow renders the interval as one CSV row matching CSVHeader. Floats
// use the shortest round-trippable representation, keeping rows
// byte-deterministic.
func (iv *Interval) CSVRow() string {
	var sb strings.Builder
	u := func(v uint64) {
		sb.WriteString(strconv.FormatUint(v, 10))
		sb.WriteByte(',')
	}
	u(uint64(iv.Index))
	u(iv.Start)
	u(iv.End)
	u(iv.Retired)
	u(iv.Fetched)
	u(iv.Flushes)
	u(iv.Branches)
	u(iv.BranchMispredicts)
	u(iv.JumpMispredicts)
	u(iv.ReuseTests)
	u(iv.ReuseHits)
	u(iv.SquashedStreams)
	u(iv.Reconvergences)
	u(iv.RGIDResets)
	u(iv.L1DHits)
	u(iv.L1DMisses)
	u(iv.L2Hits)
	u(iv.L2Misses)
	u(iv.DRAMAccesses)
	f := func(v float64) { sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64)) }
	f(iv.IPC)
	sb.WriteByte(',')
	f(iv.ReuseRate)
	sb.WriteByte(',')
	f(iv.MPKI)
	sb.WriteByte(',')
	f(iv.L1DMissRate)
	sb.WriteByte(',')
	sb.WriteString(iv.Mode) // bare token, never quoted ("", "detail")
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(iv.Window))
	return sb.String()
}

// WriteCSV writes a header line followed by one row per interval.
func WriteCSV(w io.Writer, ivs []Interval) error {
	if _, err := fmt.Fprintln(w, CSVHeader()); err != nil {
		return fmt.Errorf("obs: writing csv header: %w", err)
	}
	for i := range ivs {
		if _, err := fmt.Fprintln(w, ivs[i].CSVRow()); err != nil {
			return fmt.Errorf("obs: writing interval %d: %w", ivs[i].Index, err)
		}
	}
	return nil
}
