package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteNDJSON writes one JSON object per interval, newline-delimited.
// The encoding is deterministic: identical intervals produce identical
// bytes, which the pooled-vs-fresh determinism tests rely on.
func WriteNDJSON(w io.Writer, ivs []Interval) error {
	enc := json.NewEncoder(w)
	for i := range ivs {
		if err := enc.Encode(&ivs[i]); err != nil {
			return fmt.Errorf("obs: encoding interval %d: %w", ivs[i].Index, err)
		}
	}
	return nil
}

// csvColumns is the CSV column order; it mirrors the Interval field
// order so the two encodings agree on what an interval is.
var csvColumns = []string{
	"index", "start_cycle", "end_cycle",
	"retired", "fetched", "flushes",
	"branches", "branch_mispredicts", "jump_mispredicts",
	"reuse_tests", "reuse_hits", "squashed_streams", "reconvergences", "rgid_resets",
	"l1d_hits", "l1d_misses", "l2_hits", "l2_misses", "dram_accesses",
	"ipc", "reuse_rate", "mpki", "l1d_miss_rate",
	"mode", "window",
}

// CSVHeader returns the comma-joined column names of CSVRow.
func CSVHeader() string { return strings.Join(csvColumns, ",") }

// CSVRow renders the interval as one CSV row matching CSVHeader. Floats
// use the shortest round-trippable representation, keeping rows
// byte-deterministic.
func (iv *Interval) CSVRow() string {
	var sb strings.Builder
	u := func(v uint64) {
		sb.WriteString(strconv.FormatUint(v, 10))
		sb.WriteByte(',')
	}
	u(uint64(iv.Index))
	u(iv.Start)
	u(iv.End)
	u(iv.Retired)
	u(iv.Fetched)
	u(iv.Flushes)
	u(iv.Branches)
	u(iv.BranchMispredicts)
	u(iv.JumpMispredicts)
	u(iv.ReuseTests)
	u(iv.ReuseHits)
	u(iv.SquashedStreams)
	u(iv.Reconvergences)
	u(iv.RGIDResets)
	u(iv.L1DHits)
	u(iv.L1DMisses)
	u(iv.L2Hits)
	u(iv.L2Misses)
	u(iv.DRAMAccesses)
	f := func(v float64) { sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64)) }
	f(iv.IPC)
	sb.WriteByte(',')
	f(iv.ReuseRate)
	sb.WriteByte(',')
	f(iv.MPKI)
	sb.WriteByte(',')
	f(iv.L1DMissRate)
	sb.WriteByte(',')
	sb.WriteString(iv.Mode) // bare token, never quoted ("", "detail")
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(iv.Window))
	return sb.String()
}

// WriteCSV writes a header line followed by one row per interval.
func WriteCSV(w io.Writer, ivs []Interval) error {
	if _, err := fmt.Fprintln(w, CSVHeader()); err != nil {
		return fmt.Errorf("obs: writing csv header: %w", err)
	}
	for i := range ivs {
		if _, err := fmt.Fprintln(w, ivs[i].CSVRow()); err != nil {
			return fmt.Errorf("obs: writing interval %d: %w", ivs[i].Index, err)
		}
	}
	return nil
}

// AppendJSONFields appends the interval's fields as `"k":v` pairs —
// without enclosing braces — to dst and returns the extended slice. The
// field order matches the struct's JSON tags and floats use the shortest
// round-trippable representation, so identical intervals always produce
// identical bytes (the live event stream's golden pins rely on this).
// Mode and Window are omitted when zero, mirroring their omitempty tags.
// Mode never needs escaping ("" or "detail").
func (iv *Interval) AppendJSONFields(dst []byte) []byte {
	u := func(k string, v uint64) {
		dst = append(dst, '"')
		dst = append(dst, k...)
		dst = append(dst, '"', ':')
		dst = strconv.AppendUint(dst, v, 10)
		dst = append(dst, ',')
	}
	f := func(k string, v float64) {
		dst = append(dst, '"')
		dst = append(dst, k...)
		dst = append(dst, '"', ':')
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		dst = append(dst, ',')
	}
	u("index", uint64(iv.Index))
	u("start_cycle", iv.Start)
	u("end_cycle", iv.End)
	u("retired", iv.Retired)
	u("fetched", iv.Fetched)
	u("flushes", iv.Flushes)
	u("branches", iv.Branches)
	u("branch_mispredicts", iv.BranchMispredicts)
	u("jump_mispredicts", iv.JumpMispredicts)
	u("reuse_tests", iv.ReuseTests)
	u("reuse_hits", iv.ReuseHits)
	u("squashed_streams", iv.SquashedStreams)
	u("reconvergences", iv.Reconvergences)
	u("rgid_resets", iv.RGIDResets)
	u("l1d_hits", iv.L1DHits)
	u("l1d_misses", iv.L1DMisses)
	u("l2_hits", iv.L2Hits)
	u("l2_misses", iv.L2Misses)
	u("dram_accesses", iv.DRAMAccesses)
	f("ipc", iv.IPC)
	f("reuse_rate", iv.ReuseRate)
	f("mpki", iv.MPKI)
	f("l1d_miss_rate", iv.L1DMissRate)
	if iv.Mode != "" {
		dst = append(dst, `"mode":"`...)
		dst = append(dst, iv.Mode...)
		dst = append(dst, '"', ',')
	}
	if iv.Window != 0 {
		dst = append(dst, `"window":`...)
		dst = strconv.AppendInt(dst, int64(iv.Window), 10)
		dst = append(dst, ',')
	}
	return dst[:len(dst)-1] // drop the trailing comma
}

// AppendJSON appends the interval as one JSON object to dst and returns
// the extended slice. Byte-deterministic; see AppendJSONFields.
func (iv *Interval) AppendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	dst = iv.AppendJSONFields(dst)
	return append(dst, '}')
}
