package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default histogram upper bounds in seconds,
// spanning sub-millisecond cache hits (and health probes) to
// multi-minute SPEC-scale simulations.
var DurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120,
}

// Histogram is a Prometheus-style cumulative histogram of durations.
// Observations and scrapes are concurrent: per-bucket counts, the total
// and the sum are all atomics (the sum in integer nanoseconds, so no
// float CAS loop is needed). Rendered counts may be momentarily ahead of
// the rendered sum under concurrent observation, which Prometheus
// tolerates between scrapes.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound; observations beyond all bounds land in +Inf (total - sum of counts)
	total  atomic.Uint64
	sumNS  atomic.Int64
}

// NewHistogram builds a histogram with the given upper bounds in
// seconds (use DurationBuckets for the standard spread).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	for i, b := range h.bounds {
		if secs <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Write renders the histogram in Prometheus text exposition format:
// cumulative {name}_bucket{le="..."} series ending in le="+Inf", then
// {name}_sum and {name}_count.
func (h *Histogram) Write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total.Load())
	fmt.Fprintf(w, "%s_sum %.6f\n", name, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
}
