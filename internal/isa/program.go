package isa

import "fmt"

// DefaultCodeBase is the PC of the first instruction for programs that do
// not choose their own base. It is page-aligned so VPN-restricted
// reconvergence detection sees realistic page numbers.
const DefaultCodeBase uint64 = 0x0001_0000

// DataSegment is a contiguous run of initialized 64-bit words in data
// memory.
type DataSegment struct {
	Addr  uint64
	Words []uint64
}

// Program is a fully assembled program: decoded instructions starting at
// Base, plus initialized data segments. Instruction and data memory are
// disjoint (Harvard-style); the simulators never load or store code.
type Program struct {
	Name string
	Base uint64
	Code []Instruction
	Data []DataSegment
	// Symbols maps label names to PCs, for diagnostics and for tests that
	// want to assert control flow reached a particular label.
	Symbols map[string]uint64
}

// End returns the PC one past the last instruction.
func (p *Program) End() uint64 { return p.Base + uint64(len(p.Code))*InstrBytes }

// Contains reports whether pc addresses an instruction of the program.
func (p *Program) Contains(pc uint64) bool {
	return pc >= p.Base && pc < p.End() && (pc-p.Base)%InstrBytes == 0
}

// At returns the instruction at pc. The second result is false when pc is
// outside the program or misaligned; the timing core treats such fetches as
// wrong-path fetches of NOPs (they can only occur speculatively).
func (p *Program) At(pc uint64) (Instruction, bool) {
	if !p.Contains(pc) {
		return Instruction{Op: NOP}, false
	}
	return p.Code[(pc-p.Base)/InstrBytes], true
}

// MustAt returns the instruction at pc and panics when pc is invalid. It is
// used by the functional emulator, where an out-of-range PC is a program
// bug.
func (p *Program) MustAt(pc uint64) Instruction {
	in, ok := p.At(pc)
	if !ok {
		panic(fmt.Sprintf("isa: PC 0x%x outside program %q [0x%x, 0x%x)", pc, p.Name, p.Base, p.End()))
	}
	return in
}

// Validate checks structural well-formedness: direct control-flow targets
// must land on instruction boundaries inside the program, and the program
// must be non-empty. Workload constructors call this so malformed kernels
// fail loudly at build time rather than as mysterious wrong-path behaviour.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q has no code", p.Name)
	}
	if p.Base%InstrBytes != 0 {
		return fmt.Errorf("program %q base 0x%x misaligned", p.Name, p.Base)
	}
	for i, in := range p.Code {
		pc := p.Base + uint64(i)*InstrBytes
		switch in.Class() {
		case ClassBranch, ClassJump:
			if !p.Contains(in.Target) {
				return fmt.Errorf("program %q: %v at 0x%x targets 0x%x outside code", p.Name, in.Op, pc, in.Target)
			}
		}
	}
	return nil
}
