package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := NOP; op < numOps; op++ {
		if s := op.String(); s == "" || s[0] == 'o' && s != "or" && s != "ori" {
			t.Errorf("op %d has suspicious name %q", op, s)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op name = %q", got)
	}
}

func TestRegString(t *testing.T) {
	if Zero.String() != "zero" {
		t.Errorf("Zero.String() = %q", Zero.String())
	}
	if A0.String() != "x10" {
		t.Errorf("A0.String() = %q", A0.String())
	}
}

func TestClassAndPredicates(t *testing.T) {
	cases := []struct {
		in      Instruction
		class   Class
		control bool
		load    bool
		store   bool
		branch  bool
	}{
		{Instruction{Op: ADD, Rd: 1}, ClassALU, false, false, false, false},
		{Instruction{Op: MUL, Rd: 1}, ClassMul, false, false, false, false},
		{Instruction{Op: DIV, Rd: 1}, ClassDiv, false, false, false, false},
		{Instruction{Op: REM, Rd: 1}, ClassDiv, false, false, false, false},
		{Instruction{Op: LD, Rd: 1}, ClassLoad, false, true, false, false},
		{Instruction{Op: ST}, ClassStore, false, false, true, false},
		{Instruction{Op: BEQ}, ClassBranch, true, false, false, true},
		{Instruction{Op: JAL, Rd: 1}, ClassJump, true, false, false, false},
		{Instruction{Op: JALR, Rd: 1}, ClassJumpR, true, false, false, false},
		{Instruction{Op: HALT}, ClassHalt, true, false, false, false},
		{Instruction{Op: NOP}, ClassNop, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.in.Class(); got != c.class {
			t.Errorf("%v Class = %v, want %v", c.in.Op, got, c.class)
		}
		if got := c.in.IsControl(); got != c.control {
			t.Errorf("%v IsControl = %v", c.in.Op, got)
		}
		if got := c.in.IsLoad(); got != c.load {
			t.Errorf("%v IsLoad = %v", c.in.Op, got)
		}
		if got := c.in.IsStore(); got != c.store {
			t.Errorf("%v IsStore = %v", c.in.Op, got)
		}
		if got := c.in.IsBranch(); got != c.branch {
			t.Errorf("%v IsBranch = %v", c.in.Op, got)
		}
	}
}

func TestHasDest(t *testing.T) {
	if (Instruction{Op: ADD, Rd: Zero}).HasDest() {
		t.Error("write to x0 should have no destination")
	}
	if !(Instruction{Op: ADD, Rd: 5}).HasDest() {
		t.Error("add x5 should have a destination")
	}
	if (Instruction{Op: ST, Rd: 5}).HasDest() {
		t.Error("store has no register destination")
	}
	if (Instruction{Op: BEQ, Rd: 5}).HasDest() {
		t.Error("branch has no register destination")
	}
	if !(Instruction{Op: JAL, Rd: RA}).HasDest() {
		t.Error("jal ra links")
	}
}

func TestNumSourcesAndSrc(t *testing.T) {
	cases := []struct {
		op Op
		n  int
	}{
		{NOP, 0}, {HALT, 0}, {LI, 0}, {JAL, 0},
		{ADDI, 1}, {LD, 1}, {JALR, 1}, {SRAI, 1},
		{ADD, 2}, {ST, 2}, {BEQ, 2}, {MUL, 2},
	}
	for _, c := range cases {
		in := Instruction{Op: c.op, Rs1: 3, Rs2: 7}
		if got := in.NumSources(); got != c.n {
			t.Errorf("%v NumSources = %d, want %d", c.op, got, c.n)
		}
		if c.n >= 1 && in.Src(0) != 3 {
			t.Errorf("%v Src(0) = %v", c.op, in.Src(0))
		}
		if c.n >= 2 && in.Src(1) != 7 {
			t.Errorf("%v Src(1) = %v", c.op, in.Src(1))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Src out of range should panic")
		}
	}()
	(Instruction{Op: LI}).Src(0)
}

func TestEvaluateALU(t *testing.T) {
	cases := []struct {
		op       Op
		rs1, rs2 uint64
		imm      int64
		want     uint64
	}{
		{ADD, 5, 7, 0, 12},
		{SUB, 5, 7, 0, ^uint64(1)}, // -2
		{AND, 0xf0, 0x3c, 0, 0x30},
		{OR, 0xf0, 0x3c, 0, 0xfc},
		{XOR, 0xf0, 0x3c, 0, 0xcc},
		{SLL, 1, 65, 0, 2}, // shift amount masked to 6 bits
		{SRL, 0x8000000000000000, 63, 0, 1},
		{SRA, 0x8000000000000000, 63, 0, ^uint64(0)},
		{SLT, ^uint64(0), 0, 0, 1},
		{SLTU, ^uint64(0), 0, 0, 0},
		{MUL, 3, 5, 0, 15},
		{DIV, 10, 3, 0, 3},
		{DIV, 10, 0, 0, ^uint64(0)},
		{DIV, 1 << 63, ^uint64(0), 0, 1 << 63},
		{REM, 10, 3, 0, 1},
		{REM, 10, 0, 0, 10},
		{REM, 1 << 63, ^uint64(0), 0, 0},
		{MIN, 3, ^uint64(4), 0, ^uint64(4)},
		{MAX, 3, ^uint64(4), 0, 3},
		{ADDI, 5, 0, -3, 2},
		{ANDI, 0xff, 0, 0x0f, 0x0f},
		{ORI, 0xf0, 0, 0x0f, 0xff},
		{XORI, 0xff, 0, 0x0f, 0xf0},
		{SLLI, 1, 0, 4, 16},
		{SRLI, 16, 0, 4, 1},
		{SRAI, ^uint64(15), 0, 2, ^uint64(3)},
		{SLTI, ^uint64(0), 0, 0, 1},
		{LI, 0, 0, 42, 42},
	}
	for _, c := range cases {
		in := Instruction{Op: c.op, Imm: c.imm}
		got := Evaluate(in, 0x1000, c.rs1, c.rs2)
		if got.Result != c.want {
			t.Errorf("%v(%#x, %#x, imm=%d) = %#x, want %#x", c.op, c.rs1, c.rs2, c.imm, got.Result, c.want)
		}
		if got.Taken || got.Halt {
			t.Errorf("%v should not redirect or halt", c.op)
		}
	}
}

func TestEvaluateMemory(t *testing.T) {
	ld := Instruction{Op: LD, Rd: 1, Rs1: 2, Imm: 16}
	out := Evaluate(ld, 0, 0x100, 0)
	if out.MemAddr != 0x110 {
		t.Errorf("load address = %#x, want 0x110", out.MemAddr)
	}
	st := Instruction{Op: ST, Rs1: 2, Rs2: 3, Imm: -8}
	out = Evaluate(st, 0, 0x100, 0xdead)
	if out.MemAddr != 0xf8 || out.Result != 0xdead {
		t.Errorf("store addr/val = %#x/%#x", out.MemAddr, out.Result)
	}
}

func TestEvaluateControl(t *testing.T) {
	br := Instruction{Op: BLT, Target: 0x2000}
	if out := Evaluate(br, 0x1000, 1, 2); !out.Taken || out.Target != 0x2000 {
		t.Errorf("blt 1<2 should take to 0x2000, got %+v", out)
	}
	if out := Evaluate(br, 0x1000, 2, 1); out.Taken {
		t.Error("blt 2<1 should fall through")
	}
	jal := Instruction{Op: JAL, Rd: RA, Target: 0x3000}
	out := Evaluate(jal, 0x1000, 0, 0)
	if !out.Taken || out.Target != 0x3000 || out.Result != 0x1004 {
		t.Errorf("jal outcome %+v", out)
	}
	jalr := Instruction{Op: JALR, Rd: RA, Imm: 7}
	out = Evaluate(jalr, 0x1000, 0x2001, 0)
	if !out.Taken || out.Target != 0x2008&^3 || out.Result != 0x1004 {
		t.Errorf("jalr outcome %+v (target %#x)", out, out.Target)
	}
	if out := Evaluate(Instruction{Op: HALT}, 0, 0, 0); !out.Halt {
		t.Error("halt should halt")
	}
	// Branch comparison matrix.
	type bc struct {
		op    Op
		a, b  uint64
		taken bool
	}
	for _, c := range []bc{
		{BEQ, 4, 4, true}, {BEQ, 4, 5, false},
		{BNE, 4, 5, true}, {BNE, 4, 4, false},
		{BGE, 4, 4, true}, {BGE, 3, 4, false},
		{BGE, ^uint64(0), 0, false},
		{BLTU, ^uint64(0), 0, false}, {BLTU, 0, 1, true},
		{BGEU, ^uint64(0), 0, true}, {BGEU, 0, 1, false},
	} {
		in := Instruction{Op: c.op, Target: 0x40}
		if got := Evaluate(in, 0, c.a, c.b).Taken; got != c.taken {
			t.Errorf("%v(%d,%d).Taken = %v, want %v", c.op, int64(c.a), int64(c.b), got, c.taken)
		}
	}
}

func TestEvaluateDivProperties(t *testing.T) {
	// Property: for rs2 != 0 (and excluding the INT64_MIN/-1 overflow case),
	// rs1 == DIV*rs2 + REM and |REM| < |rs2|.
	f := func(a, b int64) bool {
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return true
		}
		q := int64(Evaluate(Instruction{Op: DIV}, 0, uint64(a), uint64(b)).Result)
		r := int64(Evaluate(Instruction{Op: REM}, 0, uint64(a), uint64(b)).Result)
		return a == q*b+r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageHelpers(t *testing.T) {
	pc := uint64(0x12345_678)
	if PageNumber(pc) != pc/4096 || PageOffset(pc) != pc%4096 {
		t.Errorf("page split wrong for %#x", pc)
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: NOP}, "nop"},
		{Instruction{Op: HALT}, "halt"},
		{Instruction{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add x1, x2, x3"},
		{Instruction{Op: ADDI, Rd: 1, Rs1: 2, Imm: -4}, "addi x1, x2, -4"},
		{Instruction{Op: LI, Rd: 1, Imm: 9}, "li x1, 9"},
		{Instruction{Op: LD, Rd: 1, Rs1: 2, Imm: 8}, "ld x1, 8(x2)"},
		{Instruction{Op: ST, Rs1: 2, Rs2: 3, Imm: 8}, "st x3, 8(x2)"},
		{Instruction{Op: BEQ, Rs1: 1, Rs2: 2, Target: 0x40}, "beq x1, x2, 0x40"},
		{Instruction{Op: JAL, Rd: 1, Target: 0x40}, "jal x1, 0x40"},
		{Instruction{Op: JALR, Rd: 1, Rs1: 2, Imm: 4}, "jalr x1, x2, 4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEvaluateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Evaluate of invalid op should panic")
		}
	}()
	Evaluate(Instruction{Op: numOps}, 0, 0, 0)
}
