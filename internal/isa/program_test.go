package isa

import "testing"

func testProgram() *Program {
	return &Program{
		Name: "t",
		Base: 0x1000,
		Code: []Instruction{
			{Op: LI, Rd: 1, Imm: 3},
			{Op: ADDI, Rd: 1, Rs1: 1, Imm: -1},
			{Op: BNE, Rs1: 1, Rs2: 0, Target: 0x1004},
			{Op: HALT},
		},
	}
}

func TestProgramBounds(t *testing.T) {
	p := testProgram()
	if p.End() != 0x1010 {
		t.Errorf("End = %#x", p.End())
	}
	if !p.Contains(0x1000) || !p.Contains(0x100c) {
		t.Error("Contains should accept in-range PCs")
	}
	if p.Contains(0x0fff) || p.Contains(0x1010) || p.Contains(0x1002) {
		t.Error("Contains should reject out-of-range or misaligned PCs")
	}
}

func TestProgramAt(t *testing.T) {
	p := testProgram()
	in, ok := p.At(0x1004)
	if !ok || in.Op != ADDI {
		t.Errorf("At(0x1004) = %v, %v", in, ok)
	}
	in, ok = p.At(0x2000)
	if ok || in.Op != NOP {
		t.Errorf("At(out of range) = %v, %v; want NOP, false", in, ok)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAt out of range should panic")
		}
	}()
	p.MustAt(0x2000)
}

func TestProgramValidate(t *testing.T) {
	p := testProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := testProgram()
	bad.Code[2].Target = 0x9000
	if bad.Validate() == nil {
		t.Error("out-of-range branch target accepted")
	}
	empty := &Program{Name: "e", Base: 0x1000}
	if empty.Validate() == nil {
		t.Error("empty program accepted")
	}
	misaligned := testProgram()
	misaligned.Base = 0x1001
	if misaligned.Validate() == nil {
		t.Error("misaligned base accepted")
	}
}
