// Package isa defines the instruction set architecture simulated by this
// repository: a 64-bit RISC-V-flavoured ISA with 32 integer registers,
// fixed 4-byte instructions and 32-byte fetch blocks (8 instructions), the
// fetch-block geometry assumed by the paper's frontend (Table 3).
//
// Instructions are kept in decoded form. The simulators never manipulate
// binary encodings: a program is a slice of Instruction values addressed by
// PC, with PCs advancing in steps of InstrBytes. This keeps the timing and
// functional models focused on microarchitecture rather than bit-fiddling,
// while preserving everything the paper's mechanisms care about (PC ranges,
// register names, memory addresses).
package isa

import "fmt"

// Geometry constants shared by the frontend and the fetch-block logic.
const (
	// InstrBytes is the size of every instruction in bytes.
	InstrBytes = 4
	// FetchBlockBytes is the maximum prediction-block size (Table 3).
	FetchBlockBytes = 32
	// FetchBlockInstrs is the maximum number of instructions per block.
	FetchBlockInstrs = FetchBlockBytes / InstrBytes
	// NumArchRegs is the number of integer architectural registers.
	NumArchRegs = 32
	// PageBytes is the virtual page size (sv48-style 4 KiB pages); the
	// optional VPN restriction in reconvergence detection compares
	// PC[47:12] separately from the in-page offset.
	PageBytes = 4096
)

// Reg names an architectural register. Register 0 is hardwired to zero, as
// in RISC-V.
type Reg uint8

// Zero is the hardwired zero register.
const Zero Reg = 0

// Conventional register aliases used by the workload kernels. They follow
// the RISC-V calling convention loosely; the simulator attaches no meaning
// to them beyond x0 == 0.
const (
	RA  Reg = 1 // return address
	SP  Reg = 2 // stack pointer
	GP  Reg = 3 // global pointer
	TP  Reg = 4 // thread pointer
	T0  Reg = 5
	T1  Reg = 6
	T2  Reg = 7
	S0  Reg = 8
	S1  Reg = 9
	A0  Reg = 10
	A1  Reg = 11
	A2  Reg = 12
	A3  Reg = 13
	A4  Reg = 14
	A5  Reg = 15
	A6  Reg = 16
	A7  Reg = 17
	S2  Reg = 18
	S3  Reg = 19
	S4  Reg = 20
	S5  Reg = 21
	S6  Reg = 22
	S7  Reg = 23
	S8  Reg = 24
	S9  Reg = 25
	S10 Reg = 26
	S11 Reg = 27
	T3  Reg = 28
	T4  Reg = 29
	T5  Reg = 30
	T6  Reg = 31
)

func (r Reg) String() string {
	if r == 0 {
		return "zero"
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// Op enumerates the operations of the ISA.
type Op uint8

// Operations. Register-register ALU ops read Rs1 and Rs2; immediate forms
// read Rs1 and Imm. Loads compute Rs1+Imm; stores write Rs2 to Rs1+Imm.
// Conditional branches compare Rs1 against Rs2 and jump to Target when the
// condition holds. JAL writes the link PC to Rd and jumps to Target. JALR
// jumps to (Rs1+Imm) aligned down to InstrBytes and links in Rd.
const (
	NOP Op = iota
	// ALU register-register.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	DIV
	REM
	MIN // min(rs1, rs2), signed; convenience op used by graph kernels
	MAX // max(rs1, rs2), signed
	// ALU register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LI // rd = imm (64-bit literal; replaces LUI+ADDI pairs)
	// Memory (8-byte, naturally aligned by construction of workloads).
	LD
	ST
	// Control flow.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL
	JALR
	// HALT stops the program; the emulator and the timing core both treat
	// it as the architectural end of execution.
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	MUL: "mul", DIV: "div", REM: "rem", MIN: "min", MAX: "max",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", LI: "li",
	LD: "ld", ST: "st",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups operations by the functional unit that executes them.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional direct jumps (JAL)
	ClassJumpR  // indirect jumps (JALR)
	ClassHalt
	ClassNop
)

// Instruction is a fully decoded instruction. Target is an absolute PC for
// direct control flow (BEQ..BGEU, JAL); it is ignored for all other ops.
type Instruction struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Target uint64
}

// classOf is the switch-based classifier the decode tables are built
// from; the hot-path helpers below read the tables instead.
func classOf(op Op) Class {
	switch op {
	case MUL:
		return ClassMul
	case DIV, REM:
		return ClassDiv
	case LD:
		return ClassLoad
	case ST:
		return ClassStore
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return ClassBranch
	case JAL:
		return ClassJump
	case JALR:
		return ClassJumpR
	case HALT:
		return ClassHalt
	case NOP:
		return ClassNop
	default:
		return ClassALU
	}
}

func numSourcesOf(op Op) uint8 {
	switch op {
	case NOP, HALT, LI, JAL:
		return 0
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LD, JALR:
		return 1
	default:
		return 2
	}
}

// Per-opcode decode tables. The classifiers run for every instruction
// in every pipeline stage of the timing core, several times each; a
// 256-entry table turns them into a single L1-resident load (Op is a
// uint8, so indexing needs no bounds check) with answers identical to
// the switches above, including the ALU/2-source defaults for opcode
// values outside the defined set.
var (
	opClassTab [256]Class
	opNSrcTab  [256]uint8
	opCtlTab   [256]bool
	opDestTab  [256]bool // the class allows a destination (Rd still decides)
)

func init() {
	for i := range opClassTab {
		c := classOf(Op(i))
		opClassTab[i] = c
		opNSrcTab[i] = numSourcesOf(Op(i))
		switch c {
		case ClassBranch, ClassJump, ClassJumpR, ClassHalt:
			opCtlTab[i] = true
		}
		switch c {
		case ClassStore, ClassBranch, ClassHalt, ClassNop:
		default:
			opDestTab[i] = true
		}
	}
}

// Class reports the functional-unit class of the instruction.
func (in Instruction) Class() Class { return opClassTab[in.Op] }

// IsBranch reports whether the instruction is a conditional branch.
func (in Instruction) IsBranch() bool { return opClassTab[in.Op] == ClassBranch }

// IsControl reports whether the instruction can redirect the PC.
func (in Instruction) IsControl() bool { return opCtlTab[in.Op] }

// IsLoad reports whether the instruction reads data memory.
func (in Instruction) IsLoad() bool { return in.Op == LD }

// IsStore reports whether the instruction writes data memory.
func (in Instruction) IsStore() bool { return in.Op == ST }

// HasDest reports whether the instruction architecturally writes Rd. Writes
// to the zero register are discarded and treated as having no destination.
func (in Instruction) HasDest() bool { return opDestTab[in.Op] && in.Rd != Zero }

// NumSources reports how many register sources the instruction reads.
// Sources always occupy Rs1 first: an instruction with one source reads
// Rs1 only.
func (in Instruction) NumSources() int { return int(opNSrcTab[in.Op]) }

// Src returns the i-th source register (0-based). It panics when i is out
// of range for the instruction; use NumSources to bound the iteration.
func (in Instruction) Src(i int) Reg {
	n := in.NumSources()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("isa: source %d out of range for %v", i, in.Op))
	}
	if i == 0 {
		return in.Rs1
	}
	return in.Rs2
}

func (in Instruction) String() string {
	switch in.Class() {
	case ClassNop, ClassHalt:
		return in.Op.String()
	case ClassBranch:
		return fmt.Sprintf("%v %v, %v, 0x%x", in.Op, in.Rs1, in.Rs2, in.Target)
	case ClassJump:
		return fmt.Sprintf("jal %v, 0x%x", in.Rd, in.Target)
	case ClassJumpR:
		return fmt.Sprintf("jalr %v, %v, %d", in.Rd, in.Rs1, in.Imm)
	case ClassLoad:
		return fmt.Sprintf("ld %v, %d(%v)", in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("st %v, %d(%v)", in.Rs2, in.Imm, in.Rs1)
	}
	switch in.Op {
	case LI:
		return fmt.Sprintf("li %v, %d", in.Rd, in.Imm)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return fmt.Sprintf("%v %v, %v, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%v %v, %v, %v", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Outcome is the architectural effect of executing one instruction, shared
// by the functional emulator and the timing core's execute stage so the two
// can never diverge on semantics.
type Outcome struct {
	// Result is the value written to Rd (when HasDest) or, for stores, the
	// value to be written to memory.
	Result uint64
	// MemAddr is the effective address for loads and stores.
	MemAddr uint64
	// Taken reports whether a control instruction redirects the PC.
	Taken bool
	// Target is the redirect PC when Taken.
	Target uint64
	// Halt reports that the program has architecturally finished.
	Halt bool
}

// Evaluate computes the architectural outcome of in at pc, given its source
// operand values. Loads receive their memory data separately (via memData);
// Evaluate only computes the address for them. The zero register reads as
// zero; callers are expected to feed operand values accordingly.
func Evaluate(in Instruction, pc uint64, rs1v, rs2v uint64) Outcome {
	var out Outcome
	switch in.Op {
	case NOP:
	case ADD:
		out.Result = rs1v + rs2v
	case SUB:
		out.Result = rs1v - rs2v
	case AND:
		out.Result = rs1v & rs2v
	case OR:
		out.Result = rs1v | rs2v
	case XOR:
		out.Result = rs1v ^ rs2v
	case SLL:
		out.Result = rs1v << (rs2v & 63)
	case SRL:
		out.Result = rs1v >> (rs2v & 63)
	case SRA:
		out.Result = uint64(int64(rs1v) >> (rs2v & 63))
	case SLT:
		if int64(rs1v) < int64(rs2v) {
			out.Result = 1
		}
	case SLTU:
		if rs1v < rs2v {
			out.Result = 1
		}
	case MUL:
		out.Result = rs1v * rs2v
	case DIV:
		if rs2v == 0 {
			out.Result = ^uint64(0) // RISC-V: division by zero yields all ones
		} else if int64(rs1v) == -1<<63 && int64(rs2v) == -1 {
			out.Result = rs1v // overflow case: result is the dividend
		} else {
			out.Result = uint64(int64(rs1v) / int64(rs2v))
		}
	case REM:
		if rs2v == 0 {
			out.Result = rs1v
		} else if int64(rs1v) == -1<<63 && int64(rs2v) == -1 {
			out.Result = 0
		} else {
			out.Result = uint64(int64(rs1v) % int64(rs2v))
		}
	case MIN:
		out.Result = rs1v
		if int64(rs2v) < int64(rs1v) {
			out.Result = rs2v
		}
	case MAX:
		out.Result = rs1v
		if int64(rs2v) > int64(rs1v) {
			out.Result = rs2v
		}
	case ADDI:
		out.Result = rs1v + uint64(in.Imm)
	case ANDI:
		out.Result = rs1v & uint64(in.Imm)
	case ORI:
		out.Result = rs1v | uint64(in.Imm)
	case XORI:
		out.Result = rs1v ^ uint64(in.Imm)
	case SLLI:
		out.Result = rs1v << (uint64(in.Imm) & 63)
	case SRLI:
		out.Result = rs1v >> (uint64(in.Imm) & 63)
	case SRAI:
		out.Result = uint64(int64(rs1v) >> (uint64(in.Imm) & 63))
	case SLTI:
		if int64(rs1v) < in.Imm {
			out.Result = 1
		}
	case LI:
		out.Result = uint64(in.Imm)
	case LD:
		out.MemAddr = rs1v + uint64(in.Imm)
	case ST:
		out.MemAddr = rs1v + uint64(in.Imm)
		out.Result = rs2v
	case BEQ:
		out.Taken = rs1v == rs2v
	case BNE:
		out.Taken = rs1v != rs2v
	case BLT:
		out.Taken = int64(rs1v) < int64(rs2v)
	case BGE:
		out.Taken = int64(rs1v) >= int64(rs2v)
	case BLTU:
		out.Taken = rs1v < rs2v
	case BGEU:
		out.Taken = rs1v >= rs2v
	case JAL:
		out.Result = pc + InstrBytes
		out.Taken = true
	case JALR:
		out.Result = pc + InstrBytes
		out.Taken = true
		out.Target = (rs1v + uint64(in.Imm)) &^ uint64(InstrBytes-1)
	case HALT:
		out.Halt = true
	default:
		panic(fmt.Sprintf("isa: cannot evaluate %v", in.Op))
	}
	if out.Taken && in.Op != JALR {
		out.Target = in.Target
	}
	return out
}

// PageNumber returns the virtual page number of pc (PC[47:12] in the
// paper's sv48 formulation).
func PageNumber(pc uint64) uint64 { return pc / PageBytes }

// PageOffset returns the in-page offset of pc (PC[11:0]).
func PageOffset(pc uint64) uint64 { return pc % PageBytes }
