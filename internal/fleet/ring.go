package fleet

import "hash/fnv"

// The coordinator shards specs onto workers with rendezvous (highest
// random weight) hashing: every (worker, key) pair gets a deterministic
// score and the key goes to the highest-scoring worker. Rendezvous
// hashing has the two properties the fleet needs without virtual-node
// bookkeeping: equal keys always land on the same worker while the
// worker set is stable (so worker-local caches and in-flight dedup
// compose into fleet-wide dedup), and removing a worker re-homes only
// that worker's keys (everyone else's argmax is unchanged) — the
// "re-hash" in the failure path moves the minimum possible work.

// score is the deterministic weight of placing key on worker.
func score(worker, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(worker))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// pick returns the rendezvous winner for key among workers ("" when the
// candidate set is empty). Ties break toward the lexically-later addr,
// keeping the choice deterministic across coordinators.
func pick(workers []string, key string) string {
	var (
		best      string
		bestScore uint64
		found     bool
	)
	for _, w := range workers {
		s := score(w, key)
		if !found || s > bestScore || (s == bestScore && w > best) {
			best, bestScore, found = w, s, true
		}
	}
	return best
}
