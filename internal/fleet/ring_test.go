package fleet

import (
	"fmt"
	"testing"
)

func workers(n int) []string {
	ws := make([]string, n)
	for i := range ws {
		ws[i] = fmt.Sprintf("http://10.0.0.%d:8371", i+1)
	}
	return ws
}

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("wl%d@s1/rgid-4x%d", i%7, 16<<uint(i%5))
	}
	return ks
}

// TestPickDeterministic pins that placement ignores candidate order —
// two coordinators with differently-ordered worker lists agree.
func TestPickDeterministic(t *testing.T) {
	ws := workers(5)
	rev := make([]string, len(ws))
	for i, w := range ws {
		rev[len(ws)-1-i] = w
	}
	for _, k := range keys(200) {
		if a, b := pick(ws, k), pick(rev, k); a != b {
			t.Fatalf("pick(%q) order-dependent: %q vs %q", k, a, b)
		}
	}
	if pick(nil, "anything") != "" {
		t.Error("pick on an empty ring should return \"\"")
	}
}

// TestPickMinimalDisruption pins the rendezvous property the failure
// path relies on: removing one worker re-homes only that worker's keys.
func TestPickMinimalDisruption(t *testing.T) {
	ws := workers(5)
	placed := make(map[string]string)
	for _, k := range keys(500) {
		placed[k] = pick(ws, k)
	}
	dead := ws[2]
	survivors := make([]string, 0, len(ws)-1)
	for _, w := range ws {
		if w != dead {
			survivors = append(survivors, w)
		}
	}
	for k, home := range placed {
		got := pick(survivors, k)
		if home == dead {
			if got == dead {
				t.Fatalf("key %q still placed on removed worker", k)
			}
			continue
		}
		if got != home {
			t.Fatalf("key %q moved from %q to %q although its worker survived", k, home, got)
		}
	}
}

// TestPickSpreads sanity-checks the distribution: with 500 keys over 5
// workers, no worker is starved or hoards a majority.
func TestPickSpreads(t *testing.T) {
	ws := workers(5)
	counts := make(map[string]int)
	for _, k := range keys(500) {
		counts[pick(ws, k)]++
	}
	for _, w := range ws {
		if counts[w] == 0 {
			t.Errorf("worker %s received no keys", w)
		}
		if counts[w] > 300 {
			t.Errorf("worker %s hoards %d/500 keys", w, counts[w])
		}
	}
}

// TestInjectLabel pins the exposition relabeller on both sample shapes.
func TestInjectLabel(t *testing.T) {
	cases := [][2]string{
		{"msrd_queue_depth 3", `msrd_queue_depth{worker="a:1"} 3`},
		{`msrd_request_duration_seconds{route="submit"} 0.5`, `msrd_request_duration_seconds{worker="a:1",route="submit"} 0.5`},
	}
	for _, c := range cases {
		if got := injectLabel(c[0], "a:1"); got != c[1] {
			t.Errorf("injectLabel(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}
