// Package fleet implements the msrd fleet coordinator: an HTTP daemon
// that shards simulation jobs across a set of msrd worker daemons and
// presents the union as one service speaking the same /v1 API a single
// daemon does, so every existing client (internal/client, msrbench
// -remote) points at a fleet unchanged.
//
// Sharding is content-addressed: each spec's shard key
// (sim.Spec.ShardKey — the canonical key, except that checkpointable
// multi-fidelity specs collapse to their program identity) is
// rendezvous-hashed onto the worker ring, so identical specs — across
// jobs, across clients — always land on the same worker, whose
// in-memory cache, persistent store and in-flight dedup then compose
// into fleet-wide dedup without any coordinator state, and every sweep
// over one program homes onto the worker whose checkpoint store that
// program has already warmed. The coordinator adds what a single daemon cannot provide:
//
//   - worker registration (static -workers list plus POST
//     /fleet/v1/workers, which restarted workers use to re-announce
//     themselves) and periodic liveness probing;
//   - failure handling: when a worker fails its health checks or breaks
//     mid-stream, its queued and unresolved specs are re-hashed across
//     the remaining ring and retried with backoff, bounded by a per-spec
//     attempt budget;
//   - work stealing: a worker whose shard queue runs dry takes queued
//     specs from the deepest backlog, so a hot shard (one workload
//     hashing many variants onto one worker) cannot idle the fleet;
//   - fleet observability: /metrics unions every worker's exposition
//     with a worker="addr" label plus coordinator-level series (queue
//     depths, shard balance, retries, steals).
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mssr/internal/api"
	"mssr/internal/client"
	"mssr/internal/events"
	"mssr/internal/obs"
	"mssr/internal/sim"
)

// Config tunes the coordinator. The zero value is usable but has no
// workers; add them via Workers or the registration endpoint.
type Config struct {
	// Workers is the static list of worker addresses known at startup.
	Workers []string
	// HealthInterval paces the liveness probes (0 = 1s).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures demote a
	// worker (0 = 2).
	HealthFailures int
	// ChunkSize bounds how many specs one dispatch submits to a worker
	// as a single sub-job (0 = 16). Larger chunks amortize HTTP overhead
	// and let the worker batch-execute; smaller chunks spread a sweep
	// wider and give work stealing finer grains.
	ChunkSize int
	// MaxAttempts bounds how many times one spec is dispatched before it
	// completes with an error (0 = 4).
	MaxAttempts int
	// RetryBackoff is the base delay before re-dispatching after a
	// worker failure, scaled by the spec's attempt count (0 = 100ms).
	RetryBackoff time.Duration
	// QueueLimit bounds specs admitted and not yet resolved; submissions
	// beyond it are shed with 429 (0 = 4096).
	QueueLimit int
	// RetryAfter is the backoff hint attached to 429 responses (0 = 1s).
	RetryAfter time.Duration
	// ReadyThreshold marks the fleet "saturated" on /readyz once this
	// many specs are pending (0 = QueueLimit). Load balancers use it to
	// rotate traffic away before submissions start bouncing with 429.
	ReadyThreshold int
	// RelayBackoff is the base delay between reconnect attempts when a
	// worker's event stream drops (0 = 200ms, capped at 2s).
	RelayBackoff time.Duration
	// Logger receives the coordinator's structured logs; nil discards.
	Logger *slog.Logger
	// NewClient overrides worker client construction (tests inject
	// fast-polling clients).
	NewClient func(addr string) *client.Client
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthFailures <= 0 {
		c.HealthFailures = 2
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 16
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ReadyThreshold <= 0 {
		c.ReadyThreshold = c.QueueLimit
	}
	if c.RelayBackoff <= 0 {
		c.RelayBackoff = 200 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	if c.NewClient == nil {
		c.NewClient = func(addr string) *client.Client { return client.New(addr) }
	}
	return c
}

// unit is one spec of one job on its way through the fleet.
type unit struct {
	job      *job
	idx      int // position in the job
	spec     api.Spec
	key      string // canonical key (result identity)
	shard    string // sim.Spec.ShardKey() (worker-placement identity)
	display  string // Label or canonical key, for error results
	attempts int
	lastErr  string
}

// worker is one msrd daemon in the ring.
type worker struct {
	addr string
	cl   *client.Client

	// Guarded by the coordinator's mu.
	healthy  bool
	failures int
	queue    []*unit
	inflight int

	dispatched atomic.Uint64
	completed  atomic.Uint64
}

// Coordinator is the fleet daemon. Create with New, serve with any
// http.Server, stop with Shutdown.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux
	log *slog.Logger
	met fleetMetrics

	// hub is the fleet-wide event bus: coordinator lifecycle events
	// (dispatch, retries, ring membership) plus telemetry frames relayed
	// from every worker's own /v1/ws stream, re-labeled worker="addr".
	hub      *events.Hub
	started  time.Time
	probeDur *obs.Histogram

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*worker
	jobs    map[string]*job
	orphans []*unit // units with no healthy worker to queue on
	pending int     // units admitted and not yet resolved
	closed  bool
	// subJobs maps "workerAddr subJobID" to the chunk's units, so the
	// relay can re-label a worker's job-scoped frames with the owning
	// fleet job. Entries are dropped (after a grace for in-flight frames)
	// when the dispatch that registered them returns.
	subJobs map[string][]*unit

	nextJob atomic.Uint64
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a Coordinator, starts its health prober and one dispatch
// loop per configured worker.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		log:      cfg.Logger,
		hub:      &events.Hub{},
		started:  time.Now(),
		probeDur: obs.NewHistogram(obs.DurationBuckets),
		workers:  make(map[string]*worker),
		jobs:     make(map[string]*job),
		subJobs:  make(map[string][]*unit),
	}
	c.met.version, c.met.goVersion, c.met.revision = obs.BuildInfo()
	c.cond = sync.NewCond(&c.mu)
	c.baseCtx, c.cancel = context.WithCancel(context.Background())
	c.mu.Lock()
	for _, addr := range cfg.Workers {
		c.addWorkerLocked(addr)
	}
	c.mu.Unlock()
	c.wg.Add(1)
	go c.healthLoop()

	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("GET /v1/jobs/{id}/stream", c.handleStream)
	c.mux.HandleFunc("GET /v1/jobs/{id}/intervals", c.handleIntervals)
	c.mux.HandleFunc("GET /v1/ws", c.handleWS)
	c.mux.HandleFunc("POST /fleet/v1/workers", c.handleRegister)
	c.mux.HandleFunc("GET /fleet/v1/workers", c.handleWorkers)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /readyz", c.handleReady)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	return c
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// normalizeAddr canonicalizes a worker address the same way client.New
// does ("host:port" -> "http://host:port"), so one worker announced two
// ways cannot join the ring twice.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// addWorkerLocked registers addr (idempotent) and starts its dispatch
// and event-relay loops. Callers hold c.mu.
func (c *Coordinator) addWorkerLocked(addr string) *worker {
	addr = normalizeAddr(addr)
	if w, ok := c.workers[addr]; ok {
		return w
	}
	w := &worker{addr: addr, cl: c.cfg.NewClient(addr), healthy: true}
	c.workers[addr] = w
	c.met.registrations.Add(1)
	c.hub.Publish(events.Event{Type: events.TypeWorkerRegistered, Worker: addr})
	c.wg.Add(2)
	go c.workerLoop(w)
	go c.relayLoop(w)
	c.cond.Broadcast()
	return w
}

// healthyAddrsLocked snapshots the healthy ring.
func (c *Coordinator) healthyAddrsLocked() []string {
	addrs := make([]string, 0, len(c.workers))
	for addr, w := range c.workers {
		if w.healthy {
			addrs = append(addrs, addr)
		}
	}
	return addrs
}

// enqueueLocked routes one unit onto its rendezvous worker, or parks it
// with the orphans until a worker is healthy.
func (c *Coordinator) enqueueLocked(u *unit) {
	addrs := c.healthyAddrsLocked()
	if len(addrs) == 0 {
		c.orphans = append(c.orphans, u)
		return
	}
	w := c.workers[pick(addrs, u.shard)]
	w.queue = append(w.queue, u)
}

// Shutdown stops the coordinator: no new submissions, in-flight
// dispatches are cancelled, loops joined (bounded by ctx), and every
// unresolved spec completes with a shutdown error so no stream blocks
// forever.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
	c.cancel()

	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	c.mu.Lock()
	leftovers := append([]*unit(nil), c.orphans...)
	c.orphans = nil
	for _, w := range c.workers {
		leftovers = append(leftovers, w.queue...)
		w.queue = nil
	}
	jobs := make([]*job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, u := range leftovers {
		c.completeUnit(u, errorResult(u, "coordinator shut down"), "")
	}
	for _, j := range jobs {
		for i := range j.wire {
			j.complete(i, api.Result{
				Index:    i,
				Key:      displayKey(j.wire[i], j.keys[i]),
				CacheKey: j.keys[i],
				Source:   api.SourceRun,
				Error:    "coordinator shut down",
			})
		}
	}
	return err
}

// ------------------------------------------------------------ dispatch ---

// workerLoop is one worker's dispatcher: it takes chunks from the
// worker's shard queue (or steals from a hot one), submits them as one
// sub-job, and feeds streamed completions back into the owning jobs.
func (c *Coordinator) workerLoop(w *worker) {
	defer c.wg.Done()
	for {
		units := c.take(w)
		if units == nil {
			return
		}
		c.dispatch(w, units)
		c.mu.Lock()
		w.inflight -= len(units)
		c.mu.Unlock()
		c.cond.Broadcast()
	}
}

// take blocks until the worker has work (own queue, orphans, or a steal)
// or the coordinator closes (nil).
func (c *Coordinator) take(w *worker) []*unit {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil
		}
		if w.healthy {
			if units := c.takeFromLocked(&c.orphans, w); units != nil {
				return units
			}
			if units := c.takeFromLocked(&w.queue, w); units != nil {
				return units
			}
			if units := c.stealLocked(w); units != nil {
				return units
			}
		}
		c.cond.Wait()
	}
}

// takeFromLocked pops up to a chunk from the head of q for w.
func (c *Coordinator) takeFromLocked(q *[]*unit, w *worker) []*unit {
	if len(*q) == 0 {
		return nil
	}
	n := len(*q)
	if n > c.cfg.ChunkSize {
		n = c.cfg.ChunkSize
	}
	units := append([]*unit(nil), (*q)[:n]...)
	*q = (*q)[n:]
	w.inflight += n
	return units
}

// stealLocked moves up to half of the deepest healthy queue (tail end —
// the work its owner would reach last) onto w.
func (c *Coordinator) stealLocked(w *worker) []*unit {
	var victim *worker
	for _, v := range c.workers {
		if v == w || !v.healthy || len(v.queue) < 2 {
			continue
		}
		if victim == nil || len(v.queue) > len(victim.queue) {
			victim = v
		}
	}
	if victim == nil {
		return nil
	}
	n := len(victim.queue) / 2
	if n > c.cfg.ChunkSize {
		n = c.cfg.ChunkSize
	}
	cut := len(victim.queue) - n
	units := append([]*unit(nil), victim.queue[cut:]...)
	victim.queue = victim.queue[:cut]
	w.inflight += n
	c.met.steals.Add(1)
	c.met.unitsStolen.Add(uint64(n))
	c.hub.Publish(events.Event{Type: events.TypeSteal, Worker: victim.addr, Specs: n})
	c.log.Info("work stolen", "thief", w.addr, "victim", victim.addr, "units", n, "victim_queue", len(victim.queue))
	return units
}

// dispatch submits one chunk to w as a single sub-job and resolves every
// unit from the worker's completion stream. Units the worker failed to
// resolve are retried on the re-hashed ring.
func (c *Coordinator) dispatch(w *worker, units []*unit) {
	specs := make([]api.Spec, len(units))
	for i, u := range units {
		specs[i] = u.spec
	}
	w.dispatched.Add(uint64(len(units)))
	c.met.unitsDispatched.Add(uint64(len(units)))

	resolved := make([]bool, len(units))
	var retry []*unit
	ctx := c.baseCtx
	settle := func(i int, r api.Result) {
		if resolved[i] {
			return
		}
		resolved[i] = true
		u := units[i]
		if r.Error != "" && u.attempts+1 < c.cfg.MaxAttempts {
			// A per-result error from a live worker is usually a
			// cancelled simulation (worker draining); give the spec its
			// remaining attempts elsewhere before surfacing it.
			u.lastErr = r.Error
			retry = append(retry, u)
			return
		}
		w.completed.Add(1)
		c.completeUnit(u, r, w.addr)
	}

	sub, err := w.cl.Submit(ctx, specs)
	if err == nil {
		// Register the sub-job so the relay can re-label this worker's
		// frames with the owning fleet jobs. The mapping outlives the
		// dispatch by a grace period: relay frames travel on their own
		// connection and may still be in flight when the result stream
		// ends.
		relayKey := w.addr + " " + sub.JobID
		c.mu.Lock()
		c.subJobs[relayKey] = units
		c.mu.Unlock()
		defer time.AfterFunc(5*time.Second, func() {
			c.mu.Lock()
			delete(c.subJobs, relayKey)
			c.mu.Unlock()
		})
		for _, u := range units {
			c.hub.Publish(events.Event{Type: events.TypeSpecDispatched, Job: u.job.id, Key: u.display, Worker: w.addr})
		}
		serr := w.cl.Stream(ctx, sub.JobID, func(r api.Result) error {
			if r.Index >= 0 && r.Index < len(units) {
				settle(r.Index, r)
			}
			return nil
		})
		allResolved := true
		for i := range resolved {
			if !resolved[i] {
				allResolved = false
				break
			}
		}
		if !allResolved {
			// Broken or truncated stream: one authoritative status fetch
			// picks up anything the worker did finish.
			if st, jerr := w.cl.Job(ctx, sub.JobID); jerr == nil && st.State == api.StateDone {
				for _, r := range st.Results {
					if r.Index >= 0 && r.Index < len(units) {
						settle(r.Index, r)
					}
				}
			} else if serr == nil {
				serr = jerr
			}
			err = serr
			if err == nil {
				err = errors.New("worker stream ended with unresolved specs")
			}
		}
	}

	var unresolved []*unit
	for i, u := range units {
		if !resolved[i] {
			unresolved = append(unresolved, u)
			if err != nil {
				u.lastErr = err.Error()
			}
		}
	}
	if err != nil && len(unresolved) > 0 {
		// The worker failed this dispatch outright: demote it (the
		// health prober revives it when it answers again) and re-hash
		// its unresolved specs across the rest of the ring.
		c.markDown(w, fmt.Sprintf("dispatch failed: %v", err))
	}
	retry = append(retry, unresolved...)
	if len(retry) > 0 {
		c.hub.Publish(events.Event{Type: events.TypeRetry, Worker: w.addr, Specs: len(retry)})
		c.requeue(retry)
	}
}

// requeue gives failed units another attempt (with backoff scaled by
// their attempt count) or completes them with their last error once the
// budget is spent.
func (c *Coordinator) requeue(units []*unit) {
	var again []*unit
	maxAttempt := 0
	for _, u := range units {
		u.attempts++
		if u.attempts >= c.cfg.MaxAttempts {
			c.met.unitFailures.Add(uint64(1))
			c.completeUnit(u, errorResult(u, fmt.Sprintf("dispatch failed after %d attempts: %s", u.attempts, u.lastErr)), "")
			continue
		}
		if u.attempts > maxAttempt {
			maxAttempt = u.attempts
		}
		again = append(again, u)
	}
	if len(again) == 0 {
		return
	}
	c.met.retries.Add(uint64(len(again)))
	// Backoff in the failing worker's loop: the units land on other
	// workers' queues afterwards, so only this loop pays the delay.
	select {
	case <-time.After(time.Duration(maxAttempt) * c.cfg.RetryBackoff):
	case <-c.baseCtx.Done():
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		for _, u := range again {
			c.completeUnit(u, errorResult(u, "coordinator shut down"), "")
		}
		return
	}
	for _, u := range again {
		c.enqueueLocked(u)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// completeUnit resolves one unit: the result is re-indexed into the
// owning job's positions and published. workerAddr labels the bus
// events with the worker that produced the result ("" for fleet-side
// completions such as shed or shutdown errors).
func (c *Coordinator) completeUnit(u *unit, r api.Result, workerAddr string) {
	r.Index = u.idx
	c.met.unitsCompleted.Add(1)
	c.mu.Lock()
	c.pending--
	c.mu.Unlock()
	first, jobDone := u.job.complete(u.idx, r)
	if first {
		c.hub.Publish(events.Event{
			Type: events.TypeSpecDone, Job: u.job.id, Key: r.Key, Worker: workerAddr,
			Source: r.Source, Done: u.job.doneCount(),
			WallMS: float64(r.WallNS) / 1e6, IPC: r.IPC,
			Extrapolated: r.Extrapolated, ExtrapolatedIPC: r.ExtrapolatedIPC, IPCErrorEst: r.IPCErrorEst,
			Error: r.Error,
		})
	}
	if jobDone {
		if u.job.failed() {
			c.met.jobsFailed.Add(1)
		} else {
			c.met.jobsCompleted.Add(1)
		}
		st := u.job.status()
		wallMS := float64(st.Finished.Sub(st.Submitted).Microseconds()) / 1000
		typ := events.TypeJobDone
		if st.Error != "" || u.job.failed() {
			typ = events.TypeJobFailed
		}
		c.hub.Publish(events.Event{Type: typ, Job: u.job.id, Specs: st.Total, Done: st.Done, WallMS: wallMS})
		c.log.Info("fleet job finish", "job_id", u.job.id,
			"specs", st.Total, "cache_hits", st.CacheHits, "dedup_joins", st.DedupJoins,
			"duration_ms", wallMS)
	}
	c.cond.Broadcast()
}

// errorResult builds the wire result for a unit the fleet failed.
func errorResult(u *unit, msg string) api.Result {
	return api.Result{
		Index:    u.idx,
		Key:      u.display,
		CacheKey: u.key,
		Source:   api.SourceRun,
		Error:    msg,
	}
}

func displayKey(ws api.Spec, canonical string) string {
	if ws.Label != "" {
		return ws.Label
	}
	return canonical
}

// -------------------------------------------------------------- health ---

// healthLoop probes every worker's liveness endpoint each interval.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	// Probes get a floor on their deadline independent of the probing
	// cadence: a dead worker fails instantly (connection refused), so a
	// generous timeout only affects hung-but-connected workers, while a
	// tight one would demote healthy workers on scheduler hiccups.
	probeTimeout := c.cfg.HealthInterval
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
		}
		c.mu.Lock()
		ws := make([]*worker, 0, len(c.workers))
		for _, w := range c.workers {
			ws = append(ws, w)
		}
		c.mu.Unlock()
		for _, w := range ws {
			pctx, cancel := context.WithTimeout(c.baseCtx, probeTimeout)
			t0 := time.Now()
			err := w.cl.Health(pctx)
			c.probeDur.Observe(time.Since(t0))
			cancel()
			c.noteProbe(w, err)
		}
	}
}

// noteProbe records one probe outcome and flips worker health at the
// configured thresholds.
func (c *Coordinator) noteProbe(w *worker, err error) {
	if err == nil {
		c.mu.Lock()
		w.failures = 0
		revived := !w.healthy
		w.healthy = true
		c.mu.Unlock()
		if revived {
			c.hub.Publish(events.Event{Type: events.TypeWorkerUp, Worker: w.addr})
			c.log.Info("worker healthy", "worker", w.addr)
			c.cond.Broadcast()
		}
		return
	}
	c.mu.Lock()
	w.failures++
	demote := w.healthy && w.failures >= c.cfg.HealthFailures
	c.mu.Unlock()
	if demote {
		c.markDown(w, fmt.Sprintf("health probe failed: %v", err))
	}
}

// markDown demotes a worker and re-homes its queued units.
func (c *Coordinator) markDown(w *worker, reason string) {
	c.mu.Lock()
	if !w.healthy {
		c.mu.Unlock()
		return
	}
	w.healthy = false
	w.failures = c.cfg.HealthFailures
	moved := w.queue
	w.queue = nil
	for _, u := range moved {
		c.enqueueLocked(u)
	}
	c.mu.Unlock()
	c.hub.Publish(events.Event{Type: events.TypeWorkerDown, Worker: w.addr, Specs: len(moved), Error: reason})
	c.log.Warn("worker down", "worker", w.addr, "reason", reason, "requeued", len(moved))
	c.cond.Broadcast()
}

// ------------------------------------------------------------ handlers ---

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		c.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		c.writeError(w, http.StatusBadRequest, errors.New("no specs submitted"))
		return
	}
	keys := make([]string, len(req.Specs))
	shards := make([]string, len(req.Specs))
	var verrs []error
	for i, ws := range req.Specs {
		sp, err := ws.Sim()
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			verrs = append(verrs, fmt.Errorf("spec %d: %w", i, err))
			continue
		}
		keys[i] = sp.CanonicalKey()
		shards[i] = sp.ShardKey()
	}
	if len(verrs) > 0 {
		c.writeError(w, http.StatusBadRequest, errors.Join(verrs...))
		return
	}

	j := newJob(fmt.Sprintf("f%d", c.nextJob.Add(1)), req.Specs, keys, time.Now())
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.writeError(w, http.StatusServiceUnavailable, errors.New("coordinator is draining"))
		return
	}
	if len(c.healthyAddrsLocked()) == 0 {
		c.mu.Unlock()
		c.met.jobsRejected.Add(1)
		c.writeError(w, http.StatusServiceUnavailable, errors.New("no healthy workers"))
		return
	}
	if c.pending+len(req.Specs) > c.cfg.QueueLimit {
		pending := c.pending
		c.mu.Unlock()
		c.met.jobsRejected.Add(1)
		c.log.Warn("fleet job rejected", "specs", len(req.Specs), "pending", pending, "queue_limit", c.cfg.QueueLimit)
		secs := int((c.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, api.Error{
			Error:        fmt.Sprintf("fleet queue full (%d specs pending)", pending),
			RetryAfterMS: c.cfg.RetryAfter.Milliseconds(),
		})
		return
	}
	c.jobs[j.id] = j
	c.pending += len(req.Specs)
	for i := range req.Specs {
		c.enqueueLocked(&unit{
			job:     j,
			idx:     i,
			spec:    req.Specs[i],
			key:     keys[i],
			shard:   shards[i],
			display: displayKey(req.Specs[i], keys[i]),
		})
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	c.met.jobsSubmitted.Add(1)
	// Fleet jobs run as soon as they are admitted (units go straight onto
	// shard queues), so queued and start publish back to back.
	c.hub.Publish(events.Event{Type: events.TypeJobQueued, Job: j.id, Specs: len(req.Specs)})
	c.hub.Publish(events.Event{Type: events.TypeJobStart, Job: j.id, Specs: len(req.Specs)})
	c.log.Info("fleet job submitted", "job_id", j.id, "specs", len(req.Specs))
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{JobID: j.id, Total: len(req.Specs)})
}

func (c *Coordinator) lookup(id string) *job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	j := c.lookup(r.PathValue("id"))
	if j == nil {
		c.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	j := c.lookup(r.PathValue("id"))
	if j == nil {
		c.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		e, ok := j.next(i, r.Context().Done())
		if !ok {
			return
		}
		if err := enc.Encode(e); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (c *Coordinator) handleIntervals(w http.ResponseWriter, r *http.Request) {
	j := c.lookup(r.PathValue("id"))
	if j == nil {
		c.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		e, ok := j.next(i, r.Context().Done())
		if !ok {
			return
		}
		for k := range e.Intervals {
			rec := api.IntervalRecord{Key: e.Key, Source: e.Source, Interval: e.Intervals[k]}
			if err := enc.Encode(&rec); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterWorkerRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		c.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Addr == "" {
		c.writeError(w, http.StatusBadRequest, errors.New("no worker addr"))
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.writeError(w, http.StatusServiceUnavailable, errors.New("coordinator is draining"))
		return
	}
	addr := normalizeAddr(req.Addr)
	_, known := c.workers[addr]
	c.addWorkerLocked(addr)
	c.mu.Unlock()
	if !known {
		c.log.Info("worker registered", "worker", addr)
	}
	writeJSON(w, http.StatusOK, c.workersResponse())
}

func (c *Coordinator) workersResponse() api.WorkersResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := api.WorkersResponse{Workers: make([]api.WorkerInfo, 0, len(c.workers))}
	for _, w := range c.workers {
		out.Workers = append(out.Workers, api.WorkerInfo{
			Addr:       w.addr,
			Healthy:    w.healthy,
			Queue:      len(w.queue),
			Inflight:   w.inflight,
			Dispatched: w.dispatched.Load(),
			Completed:  w.completed.Load(),
		})
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].Addr < out.Workers[j].Addr })
	return out
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.workersResponse())
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady: the fleet is ready when it is not draining, at least one
// worker is healthy, and the pending backlog sits below ReadyThreshold.
// "saturated" is a 503 distinct from rejection — submissions may still
// be admitted until QueueLimit, but balancers should rotate away.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	closed := c.closed
	healthy := len(c.healthyAddrsLocked())
	total := len(c.workers)
	pending := c.pending
	c.mu.Unlock()
	switch {
	case closed:
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"status": "draining"})
	case healthy == 0:
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"status": "no healthy workers", "workers": total})
	case pending >= c.cfg.ReadyThreshold:
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"status": "saturated", "pending": pending, "threshold": c.cfg.ReadyThreshold, "workers": total, "healthy": healthy})
	default:
		writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ready", "workers": total, "healthy": healthy, "pending": pending})
	}
}

// handleWS streams the fleet event bus over a WebSocket: coordinator
// lifecycle events plus worker telemetry frames relayed with
// worker="addr" labels. ?job=ID filters to one fleet job.
func (c *Coordinator) handleWS(w http.ResponseWriter, r *http.Request) {
	c.met.wsConns.Add(1)
	defer c.met.wsConns.Add(-1)
	if err := events.ServeWS(c.hub, w, r, events.ServeOptions{Job: r.URL.Query().Get("job")}); err != nil {
		c.met.streamErrors.Add(1)
		c.log.Warn("fleet event stream failed", "err", err)
	}
}

// Hub returns the fleet event bus (exported for CLIs/tests).
func (c *Coordinator) Hub() *events.Hub { return c.hub }

// ---------------------------------------------------------------- relay ---

// relayLoop maintains one worker's event-relay connection: it dials the
// worker's /v1/ws firehose, re-labels each telemetry frame with the
// owning fleet job and worker="addr", and republishes it on the fleet
// hub. Connection failures retry with bounded backoff — a worker
// without the endpoint (or down) costs one cheap dial per backoff and
// nothing else.
func (c *Coordinator) relayLoop(w *worker) {
	defer c.wg.Done()
	backoff := c.cfg.RelayBackoff
	for {
		if c.baseCtx.Err() != nil {
			return
		}
		conn, err := events.Dial(c.baseCtx, w.addr+"/v1/ws")
		if err != nil {
			select {
			case <-time.After(backoff):
			case <-c.baseCtx.Done():
				return
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = c.cfg.RelayBackoff
		// ReadMessage cannot watch a context, so a shutdown closes the
		// connection out from under it.
		connDone := make(chan struct{})
		go func() {
			select {
			case <-c.baseCtx.Done():
				conn.Close()
			case <-connDone:
			}
		}()
		c.relay(w, conn)
		close(connDone)
		conn.Close()
	}
}

// relay pumps one established worker event stream into the fleet hub
// until it breaks. Only telemetry frames are forwarded (interval,
// window, spec_start) — authoritative lifecycle events (dispatched,
// done, failed) come from the coordinator's own bookkeeping, so the
// fleet stream never carries duplicates. Frames that cannot be mapped
// to a fleet job (a client talking to the worker directly, or a frame
// arriving after its sub-job's grace period) are dropped.
func (c *Coordinator) relay(w *worker, conn *events.WSConn) {
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		var ev events.Event
		if json.Unmarshal(msg, &ev) != nil {
			continue
		}
		switch ev.Type {
		case events.TypeInterval, events.TypeWindow, events.TypeSpecStart:
		default:
			continue
		}
		c.mu.Lock()
		units := c.subJobs[w.addr+" "+ev.Job]
		var owner *job
		for _, u := range units {
			if u.display == ev.Key {
				owner = u.job
				break
			}
		}
		c.mu.Unlock()
		if owner == nil {
			continue
		}
		ev.Job = owner.id
		ev.Worker = w.addr
		c.hub.Publish(ev) // Publish re-stamps Seq and TimeNS for the fleet bus
	}
}

func (c *Coordinator) writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.Error{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Workers returns the current worker view (exported for CLIs/tests).
func (c *Coordinator) Workers() []api.WorkerInfo {
	return c.workersResponse().Workers
}

var _ sim.Backend = (*client.Remote)(nil) // the fleet serves Remote's contract
