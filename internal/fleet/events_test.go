package fleet_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mssr/internal/client"
	"mssr/internal/events"
	"mssr/internal/fleet"
	"mssr/internal/server"
)

// newWorkerWithServer is newWorker but keeps the *server.Server handle,
// so the test can observe the coordinator's relay attaching to the
// worker hub.
func newWorkerWithServer(t *testing.T, cfg server.Config) (string, *server.Server) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
	})
	return ts.URL, srv
}

// TestFleetEventsLifecycle runs the acceptance sweep through a 2-worker
// fleet while a typed WebSocket subscriber watches the coordinator's
// event bus, and asserts the per-job stream is ordered
// (queued → start → dispatched → … → spec_done ×N → done), every
// dispatch and completion carries a real worker address, and at least
// one interval telemetry frame was relayed up from a worker with its
// worker label rewritten.
func TestFleetEventsLifecycle(t *testing.T) {
	addrA, srvA := newWorkerWithServer(t, server.Config{})
	addrB, srvB := newWorkerWithServer(t, server.Config{})
	co, fc := newFleet(t, fleet.Config{Workers: []string{addrA, addrB}, ChunkSize: 16})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var got []events.Event
	errCh := make(chan error, 1)
	go func() {
		errCh <- fc.Events(ctx, "", func(ev events.Event) error {
			got = append(got, ev)
			if ev.Type == events.TypeJobDone || ev.Type == events.TypeJobFailed {
				return client.ErrStopEvents
			}
			return nil
		})
	}()

	// Wait for the test subscription on the fleet bus AND for the relay
	// loops to attach to both worker hubs, so no telemetry frame can slip
	// out before anyone listens.
	deadline := time.Now().Add(10 * time.Second)
	for co.Hub().Subscribers() == 0 || srvA.Hub().Subscribers() == 0 || srvB.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriptions never attached: fleet=%d workerA=%d workerB=%d",
				co.Hub().Subscribers(), srvA.Hub().Subscribers(), srvB.Hub().Subscribers())
		}
		time.Sleep(time.Millisecond)
	}

	specs := sweep12()
	sub, err := fc.Submit(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("event stream: %v", err)
	}

	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("seq not monotonic at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}

	workerAddrs := map[string]bool{addrA: true, addrB: true}
	var (
		queued, started, done          = -1, -1, -1
		firstDispatch, firstDone       = -1, -1
		dispatched, specDones, relayed int
		intervalIdx                    = -1
	)
	for i, ev := range got {
		if ev.Job != sub.JobID {
			continue
		}
		switch ev.Type {
		case events.TypeJobQueued:
			queued = i
		case events.TypeJobStart:
			started = i
		case events.TypeSpecDispatched:
			if firstDispatch < 0 {
				firstDispatch = i
			}
			dispatched++
			if !workerAddrs[ev.Worker] {
				t.Errorf("spec_dispatched %q carries unknown worker %q", ev.Key, ev.Worker)
			}
		case events.TypeSpecDone:
			if firstDone < 0 {
				firstDone = i
			}
			specDones++
			if !workerAddrs[ev.Worker] {
				t.Errorf("spec_done %q carries unknown worker %q", ev.Key, ev.Worker)
			}
			if ev.Error != "" {
				t.Errorf("spec %s failed: %s", ev.Key, ev.Error)
			}
			if ev.Done != specDones {
				t.Errorf("spec_done %d carries done=%d", specDones, ev.Done)
			}
		case events.TypeInterval:
			if intervalIdx < 0 {
				intervalIdx = i
			}
			relayed++
			if !workerAddrs[ev.Worker] {
				t.Errorf("relayed interval carries unknown worker %q", ev.Worker)
			}
			if ev.Interval.End <= ev.Interval.Start {
				t.Errorf("relayed interval window [%d,%d) is empty", ev.Interval.Start, ev.Interval.End)
			}
		case events.TypeJobDone:
			done = i
		case events.TypeJobFailed:
			t.Fatalf("fleet job failed: %+v", ev)
		}
	}
	if queued < 0 || started < 0 || done < 0 {
		t.Fatalf("lifecycle incomplete: queued=%d started=%d done=%d in %d events", queued, started, done, len(got))
	}
	if !(queued < started && started < firstDispatch && firstDispatch < firstDone && firstDone < done) {
		t.Errorf("lifecycle out of order: queued=%d started=%d dispatch=%d spec_done=%d done=%d",
			queued, started, firstDispatch, firstDone, done)
	}
	if dispatched != len(specs) {
		t.Errorf("saw %d spec_dispatched events, want %d", dispatched, len(specs))
	}
	if specDones != len(specs) {
		t.Errorf("saw %d spec_done events, want %d", specDones, len(specs))
	}
	if relayed == 0 {
		t.Error("no interval telemetry frame was relayed from any worker")
	}
	if fin := got[done]; fin.Done != len(specs) {
		t.Errorf("job_done carries done=%d, want %d", fin.Done, len(specs))
	}
}

// TestFleetReadyAndObservabilityMetrics pins /readyz's three states
// (ready, saturated, no-healthy-workers) and the coordinator's
// observability series: build info, uptime, probe-latency histogram,
// and the event-bus gauges.
func TestFleetReadyAndObservabilityMetrics(t *testing.T) {
	gate := newGatedBackend()
	addr, _ := newWorker(t, server.Config{Backend: gate})
	cfg := fleet.Config{
		Workers:        []string{addr},
		NewClient:      fastClient,
		HealthInterval: 20 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
		ReadyThreshold: 1,
	}
	co := fleet.New(cfg)
	ts := httptest.NewServer(co)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = co.Shutdown(ctx)
		ts.Close()
	})
	fc := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	readyz := func() (int, map[string]interface{}) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var m map[string]interface{}
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("readyz body %q: %v", body, err)
		}
		return resp.StatusCode, m
	}

	// Idle with one healthy worker: ready.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, m := readyz()
		if code == http.StatusOK && m["status"] == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never became ready: %d %v", code, m)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A submission pinned mid-simulation pushes pending past the
	// threshold: saturated, but still serving.
	sub, err := fc.Submit(ctx, sweep12()[:2])
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never started the gated sweep")
	}
	code, m := readyz()
	if code != http.StatusServiceUnavailable || m["status"] != "saturated" {
		t.Fatalf("readyz under load = %d %v, want 503 saturated", code, m)
	}
	if m["pending"].(float64) < 1 {
		t.Errorf("saturated response carries pending=%v", m["pending"])
	}

	close(gate.release)
	if _, err := fc.Wait(ctx, sub.JobID); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, m := readyz()
		if code == http.StatusOK && m["status"] == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never drained back to ready: %d %v", code, m)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Observability series on /metrics: build identity, uptime, the
	// probe-duration histogram (the health loop has run many times by
	// now) and the event-stream gauges.
	mtx, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mtx, "msrfleet_build_info{version=") {
		t.Error("metrics lack msrfleet_build_info")
	}
	if metricValue(t, mtx, "msrfleet_uptime_seconds") <= 0 {
		t.Error("msrfleet_uptime_seconds not positive")
	}
	if !strings.Contains(mtx, `msrfleet_probe_duration_seconds_bucket{le="+Inf"}`) {
		t.Error("metrics lack msrfleet_probe_duration_seconds buckets")
	}
	// The first probe may not have completed yet on a fast run; give the
	// health loop a moment to observe one.
	deadline = time.Now().Add(10 * time.Second)
	for metricValue(t, mtx, "msrfleet_probe_duration_seconds_count") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("probe-duration histogram saw no observations")
		}
		time.Sleep(10 * time.Millisecond)
		if mtx, err = fc.Metrics(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(mtx, "msrfleet_ws_connections") || !strings.Contains(mtx, "msrfleet_ws_dropped_total") {
		t.Error("metrics lack the event-bus series")
	}
}
