package fleet

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mssr/internal/obs"
)

// fleetMetrics are the coordinator's own counters, exposed as
// msrfleet_* series alongside the aggregated worker exposition.
type fleetMetrics struct {
	jobsSubmitted   atomic.Uint64
	jobsRejected    atomic.Uint64
	jobsCompleted   atomic.Uint64
	jobsFailed      atomic.Uint64
	unitsDispatched atomic.Uint64
	unitsCompleted  atomic.Uint64
	retries         atomic.Uint64
	unitFailures    atomic.Uint64
	steals          atomic.Uint64
	unitsStolen     atomic.Uint64
	registrations   atomic.Uint64
	wsConns         atomic.Int64
	streamErrors    atomic.Uint64

	// Build identity for msrfleet_build_info, set once at New.
	version, goVersion, revision string
}

// workerGauges is one worker's point-in-time shard state for exposition.
type workerGauges struct {
	addr     string
	healthy  bool
	queue    int
	inflight int
}

func (m *fleetMetrics) write(w io.Writer, workers []workerGauges, pending, orphans int, probe *obs.Histogram, hubDropped uint64, uptime float64) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP msrfleet_build_info Build identity of the running coordinator.\n# TYPE msrfleet_build_info gauge\nmsrfleet_build_info{version=%q,go_version=%q,revision=%q} 1\n",
		m.version, m.goVersion, m.revision)
	fmt.Fprintf(w, "# HELP msrfleet_uptime_seconds Seconds since the coordinator started.\n# TYPE msrfleet_uptime_seconds gauge\nmsrfleet_uptime_seconds %.3f\n", uptime)
	counter("msrfleet_jobs_submitted_total", "Jobs accepted by the coordinator.", m.jobsSubmitted.Load())
	counter("msrfleet_jobs_rejected_total", "Jobs shed (queue full or no healthy workers).", m.jobsRejected.Load())
	counter("msrfleet_jobs_completed_total", "Jobs finished with every spec resolved cleanly.", m.jobsCompleted.Load())
	counter("msrfleet_jobs_failed_total", "Jobs finished with at least one errored spec.", m.jobsFailed.Load())
	counter("msrfleet_units_dispatched_total", "Specs handed to workers (retries re-count).", m.unitsDispatched.Load())
	counter("msrfleet_units_completed_total", "Specs resolved (including fleet-side errors).", m.unitsCompleted.Load())
	counter("msrfleet_retries_total", "Specs re-queued after a worker failure.", m.retries.Load())
	counter("msrfleet_unit_failures_total", "Specs that exhausted their attempt budget.", m.unitFailures.Load())
	counter("msrfleet_steals_total", "Work-stealing events between shard queues.", m.steals.Load())
	counter("msrfleet_units_stolen_total", "Specs moved by work stealing.", m.unitsStolen.Load())
	counter("msrfleet_worker_registrations_total", "Workers added to the ring (static and dynamic).", m.registrations.Load())
	counter("msrfleet_ws_dropped_total", "Event frames dropped on full fleet subscriber buffers.", hubDropped)
	counter("msrfleet_stream_errors_total", "Fleet event streams torn down mid-write (slow consumers).", m.streamErrors.Load())

	fmt.Fprintf(w, "# HELP msrfleet_ws_connections Open fleet event-stream WebSockets.\n# TYPE msrfleet_ws_connections gauge\nmsrfleet_ws_connections %d\n", m.wsConns.Load())
	probe.Write(w, "msrfleet_probe_duration_seconds", "Worker health probe round-trip time.")

	fmt.Fprintf(w, "# HELP msrfleet_pending_units Specs admitted and not yet resolved.\n# TYPE msrfleet_pending_units gauge\nmsrfleet_pending_units %d\n", pending)
	fmt.Fprintf(w, "# HELP msrfleet_orphan_units Specs parked with no healthy worker to queue on.\n# TYPE msrfleet_orphan_units gauge\nmsrfleet_orphan_units %d\n", orphans)

	healthy := 0
	for _, wk := range workers {
		if wk.healthy {
			healthy++
		}
	}
	fmt.Fprintf(w, "# HELP msrfleet_workers Workers in the ring.\n# TYPE msrfleet_workers gauge\nmsrfleet_workers %d\n", len(workers))
	fmt.Fprintf(w, "# HELP msrfleet_workers_healthy Workers passing health checks.\n# TYPE msrfleet_workers_healthy gauge\nmsrfleet_workers_healthy %d\n", healthy)

	fmt.Fprintf(w, "# HELP msrfleet_worker_up Whether the worker passes health checks.\n# TYPE msrfleet_worker_up gauge\n")
	for _, wk := range workers {
		up := 0
		if wk.healthy {
			up = 1
		}
		fmt.Fprintf(w, "msrfleet_worker_up{worker=%q} %d\n", wk.addr, up)
	}
	fmt.Fprintf(w, "# HELP msrfleet_worker_queue_depth Specs queued on the worker's shard.\n# TYPE msrfleet_worker_queue_depth gauge\n")
	for _, wk := range workers {
		fmt.Fprintf(w, "msrfleet_worker_queue_depth{worker=%q} %d\n", wk.addr, wk.queue)
	}
	fmt.Fprintf(w, "# HELP msrfleet_worker_inflight Specs dispatched to the worker and unresolved.\n# TYPE msrfleet_worker_inflight gauge\n")
	for _, wk := range workers {
		fmt.Fprintf(w, "msrfleet_worker_inflight{worker=%q} %d\n", wk.addr, wk.inflight)
	}
}

// handleMetrics serves the fleet-wide exposition: the coordinator's own
// msrfleet_* series followed by every reachable worker's /metrics with a
// worker="addr" label injected into each sample, HELP/TYPE headers
// deduplicated across workers. One Prometheus scrape of the coordinator
// observes the whole fleet.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	workers := make([]*worker, 0, len(c.workers))
	gauges := make([]workerGauges, 0, len(c.workers))
	for _, wk := range c.workers {
		workers = append(workers, wk)
		gauges = append(gauges, workerGauges{addr: wk.addr, healthy: wk.healthy, queue: len(wk.queue), inflight: wk.inflight})
	}
	pending, orphans := c.pending, len(c.orphans)
	c.mu.Unlock()
	sort.Slice(workers, func(i, j int) bool { return workers[i].addr < workers[j].addr })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].addr < gauges[j].addr })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.met.write(w, gauges, pending, orphans, c.probeDur, c.hub.Dropped(), time.Since(c.started).Seconds())

	// Union the workers' expositions under per-worker labels. Fetch
	// concurrently (a down worker costs one timeout, not a serial stall)
	// but emit in stable address order.
	texts := make([]string, len(workers))
	var wg sync.WaitGroup
	for i, wk := range workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			if text, err := wk.cl.Metrics(ctx); err == nil {
				texts[i] = text
			}
		}(i, wk)
	}
	wg.Wait()

	seenHeader := make(map[string]bool)
	for i, wk := range workers {
		if texts[i] == "" {
			continue
		}
		relabelExposition(w, texts[i], wk.addr, seenHeader)
	}
}

// relabelExposition rewrites one worker's Prometheus text exposition,
// injecting worker="addr" into every sample and deduplicating HELP/TYPE
// headers across workers (Prometheus rejects repeated headers for a
// metric name).
func relabelExposition(w io.Writer, text, addr string, seenHeader map[string]bool) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# HELP name ..." / "# TYPE name ..." — keep the first
			// worker's copy only.
			fields := strings.Fields(line)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				key := fields[1] + " " + fields[2]
				if seenHeader[key] {
					continue
				}
				seenHeader[key] = true
			}
			fmt.Fprintln(w, line)
			continue
		}
		fmt.Fprintln(w, injectLabel(line, addr))
	}
}

// injectLabel adds worker="addr" to one exposition sample line:
// `name 3` -> `name{worker="addr"} 3`,
// `name{a="b"} 3` -> `name{worker="addr",a="b"} 3`.
func injectLabel(line, addr string) string {
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return line
	}
	series, rest := line[:sp], line[sp:]
	label := fmt.Sprintf("worker=%q", addr)
	if brace := strings.IndexByte(series, '{'); brace >= 0 {
		return series[:brace+1] + label + "," + series[brace+1:] + rest
	}
	return series + "{" + label + "}" + rest
}
