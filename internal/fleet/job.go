package fleet

import (
	"sync"
	"time"

	"mssr/internal/api"
)

// job is one submitted batch moving through the fleet. It mirrors the
// worker daemon's job bookkeeping — positional results, a
// completion-order event log for NDJSON streaming, a notify channel
// replaced on every publication — but its specs complete independently
// as sharded units resolve on different workers.
type job struct {
	id   string
	wire []api.Spec // validated wire specs, submit order
	keys []string   // canonical keys, aligned with wire

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	results   []api.Result
	filled    []bool
	done      int
	events    []api.Result
	cacheHits int
	dedup     int
	notify    chan struct{}
}

func newJob(id string, wire []api.Spec, keys []string, now time.Time) *job {
	return &job{
		id:        id,
		wire:      wire,
		keys:      keys,
		state:     api.StateRunning,
		submitted: now,
		started:   now,
		results:   make([]api.Result, len(wire)),
		filled:    make([]bool, len(wire)),
		notify:    make(chan struct{}),
	}
}

// complete records the result for spec index i and publishes it,
// finishing the job when it was the last outstanding spec. The first
// completion of a slot wins: first reports whether this call filled the
// slot (callers publish per-spec events on it), jobDone whether it
// finished the job.
func (j *job) complete(i int, r api.Result) (first, jobDone bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.filled[i] {
		return false, false
	}
	j.filled[i] = true
	j.results[i] = r
	j.done++
	switch r.Source {
	case api.SourceCache, api.SourceStore:
		j.cacheHits++
	case api.SourceDedup:
		j.dedup++
	}
	j.events = append(j.events, r)
	if j.done == len(j.wire) {
		j.state = api.StateDone
		j.finished = time.Now()
	}
	close(j.notify)
	j.notify = make(chan struct{})
	return true, j.done == len(j.wire)
}

// doneCount reports how many specs have resolved so far.
func (j *job) doneCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// failed reports whether any recorded result carries an error.
func (j *job) failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.results {
		if j.filled[i] && j.results[i].Error != "" {
			return true
		}
	}
	return false
}

// status snapshots the job as a wire JobStatus; results attach only once
// the job is done.
func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		ID:         j.id,
		State:      j.state,
		Total:      len(j.wire),
		Done:       j.done,
		CacheHits:  j.cacheHits,
		DedupJoins: j.dedup,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
	}
	if j.state == api.StateDone {
		st.Results = append([]api.Result(nil), j.results...)
	}
	return st
}

// next returns the completion-order event at position i, blocking until
// it exists, the job finishes, or cancel closes.
func (j *job) next(i int, cancel <-chan struct{}) (api.Result, bool) {
	for {
		j.mu.Lock()
		if i < len(j.events) {
			e := j.events[i]
			j.mu.Unlock()
			return e, true
		}
		if j.state == api.StateDone {
			j.mu.Unlock()
			return api.Result{}, false
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			return api.Result{}, false
		}
	}
}
