package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mssr/internal/api"
	"mssr/internal/client"
	"mssr/internal/fleet"
	"mssr/internal/server"
	"mssr/internal/sim"
)

// sweep12 is the acceptance sweep: 12 distinct configs (3 workloads x 4
// engine points, one of them sampled) at smoke scale.
func sweep12() []api.Spec {
	var specs []api.Spec
	for _, wl := range []string{"nested-mispred", "bfs", "mcf"} {
		specs = append(specs,
			api.Spec{Workload: wl, Scale: 0},
			api.Spec{Workload: wl, Scale: 0, Engine: "rgid", Streams: 4, Entries: 64},
			api.Spec{Workload: wl, Scale: 0, Engine: "ri", Streams: 2, Entries: 32},
			api.Spec{Workload: wl, Scale: 0, Engine: "rgid", Streams: 4, Entries: 64, SampleInterval: 2048},
		)
	}
	return specs
}

// countingBackend counts Run invocations while delegating to the real
// runner.
type countingBackend struct {
	runs atomic.Int64
}

func (b *countingBackend) Run(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	b.runs.Add(1)
	return (&sim.Runner{}).Run(ctx, specs)
}

// gatedBackend blocks every Run until released, closing started on the
// first call — the hook the worker-failure test uses to kill a worker
// that is provably mid-simulation.
type gatedBackend struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedBackend() *gatedBackend {
	return &gatedBackend{started: make(chan struct{}), release: make(chan struct{})}
}

func (b *gatedBackend) Run(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	b.once.Do(func() { close(b.started) })
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return (&sim.Runner{}).Run(ctx, specs)
}

// slowBackend delays every Run — a hot shard for the stealing test.
type slowBackend struct {
	delay time.Duration
}

func (b *slowBackend) Run(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	select {
	case <-time.After(b.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return (&sim.Runner{}).Run(ctx, specs)
}

func fastClient(addr string) *client.Client {
	c := client.New(addr)
	c.PollInterval = 2 * time.Millisecond
	return c
}

// newWorker spins up one msrd daemon over loopback and returns its addr.
// The daemon is shut down at cleanup.
func newWorker(t *testing.T, cfg server.Config) (string, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
	})
	return ts.URL, ts
}

// newFleet spins up a coordinator over loopback.
func newFleet(t *testing.T, cfg fleet.Config) (*fleet.Coordinator, *client.Client) {
	t.Helper()
	if cfg.NewClient == nil {
		cfg.NewClient = fastClient
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	co := fleet.New(cfg)
	ts := httptest.NewServer(co)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = co.Shutdown(ctx)
		ts.Close()
	})
	return co, fastClient(ts.URL)
}

// runSweep submits specs and waits for the final status.
func runSweep(t *testing.T, c *client.Client, specs []api.Spec) *api.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := c.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return st
}

// assertByteIdentical pins fleet results against a single-node baseline:
// same keys, byte-identical stats and intervals, position by position.
func assertByteIdentical(t *testing.T, baseline, got []api.Result) {
	t.Helper()
	if len(baseline) != len(got) {
		t.Fatalf("result count %d, want %d", len(got), len(baseline))
	}
	for i := range baseline {
		if got[i].Error != "" {
			t.Errorf("result %d errored: %s", i, got[i].Error)
			continue
		}
		if got[i].Key != baseline[i].Key {
			t.Errorf("result %d key = %q, want %q", i, got[i].Key, baseline[i].Key)
		}
		ws, _ := json.Marshal(baseline[i].Stats)
		gs, _ := json.Marshal(got[i].Stats)
		if string(ws) != string(gs) {
			t.Errorf("result %d stats diverged:\nsingle %s\nfleet  %s", i, ws, gs)
		}
		wi, _ := json.Marshal(baseline[i].Intervals)
		gi, _ := json.Marshal(got[i].Intervals)
		if string(wi) != string(gi) {
			t.Errorf("result %d intervals diverged:\nsingle %s\nfleet  %s", i, wi, gi)
		}
	}
}

// singleNodeBaseline runs the sweep on one standalone daemon.
func singleNodeBaseline(t *testing.T, specs []api.Spec) []api.Result {
	t.Helper()
	addr, _ := newWorker(t, server.Config{})
	st := runSweep(t, fastClient(addr), specs)
	for i, r := range st.Results {
		if r.Error != "" {
			t.Fatalf("baseline result %d errored: %s", i, r.Error)
		}
	}
	return st.Results
}

func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	return 0
}

// TestFleetSweepMatchesSingleNode pins the core fleet acceptance: a
// 12-config sweep through a 2-worker fleet completes with results
// byte-identical to a single daemon's.
func TestFleetSweepMatchesSingleNode(t *testing.T) {
	specs := sweep12()
	baseline := singleNodeBaseline(t, specs)

	ba, bb := &countingBackend{}, &countingBackend{}
	addrA, _ := newWorker(t, server.Config{Backend: ba})
	addrB, _ := newWorker(t, server.Config{Backend: bb})
	// ChunkSize >= the sweep lets each worker take its whole shard in
	// one dispatch, so no backlog lingers for work stealing to move off
	// its rendezvous home — the cache-homing assertions below depend on
	// every spec running on its own shard.
	_, fc := newFleet(t, fleet.Config{Workers: []string{addrA, addrB}, ChunkSize: 16})

	st := runSweep(t, fc, specs)
	if st.State != api.StateDone || st.Done != len(specs) {
		t.Fatalf("fleet job state %s done %d/%d", st.State, st.Done, st.Total)
	}
	assertByteIdentical(t, baseline, st.Results)

	// The sweep really was distributed: with 12 keys rendezvous-hashed
	// over two workers, both ran simulations (P[one-sided] ~ 2^-11; if
	// this ever fires, the hash broke, not the dice).
	if ba.runs.Load() == 0 || bb.runs.Load() == 0 {
		t.Errorf("sweep was not distributed: worker runs = %d / %d", ba.runs.Load(), bb.runs.Load())
	}

	// Re-submitting the sweep is served entirely from worker caches:
	// content-addressed sharding sends every key back to the worker that
	// computed it. A steal would have moved a spec off its home shard
	// and blurred the homing guarantee, so only assert strict hit counts
	// on steal-free runs (the chunk sizing above makes steals all but
	// impossible; this guard keeps a scheduler fluke from flaking).
	before := ba.runs.Load() + bb.runs.Load()
	st2 := runSweep(t, fc, specs)
	assertByteIdentical(t, baseline, st2.Results)
	ctx := context.Background()
	m, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if steals := metricValue(t, m, "msrfleet_steals_total"); steals == 0 {
		if after := ba.runs.Load() + bb.runs.Load(); after != before {
			t.Errorf("resubmitted sweep ran %d new backend batches; sharding should have hit every worker cache", after-before)
		}
		if st2.CacheHits != len(specs) {
			t.Errorf("resubmitted sweep cache hits = %d, want %d", st2.CacheHits, len(specs))
		}
	}
}

// TestFleetWorkerFailureMidSweep pins the failure path of the
// acceptance: one worker is killed while provably mid-simulation, and
// the sweep still completes byte-identical to single-node — the dead
// worker's specs are re-hashed onto the survivor and retried.
func TestFleetWorkerFailureMidSweep(t *testing.T) {
	specs := sweep12()
	baseline := singleNodeBaseline(t, specs)

	ba := &countingBackend{}
	addrA, _ := newWorker(t, server.Config{Backend: ba})

	// Worker B is built by hand (not newWorker) so the test controls the
	// kill and the cleanup ordering around the gated backend.
	bb := newGatedBackend()
	srvB := server.New(server.Config{Backend: bb})
	tsB := httptest.NewServer(srvB)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = srvB.Shutdown(ctx)
	})
	t.Cleanup(func() { bb.once.Do(func() { close(bb.started) }); close(bb.release) })

	co, fc := newFleet(t, fleet.Config{
		Workers:        []string{addrA, tsB.URL},
		ChunkSize:      2,
		HealthFailures: 2,
		MaxAttempts:    5,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub, err := fc.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Wait until worker B is inside a simulation, then kill it hard: no
	// graceful drain, every open connection (including the coordinator's
	// result stream) dies mid-flight.
	select {
	case <-bb.started:
	case <-ctx.Done():
		t.Fatal("worker B never started a simulation")
	}
	tsB.CloseClientConnections()
	tsB.Close()

	st, err := fc.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != api.StateDone || st.Done != len(specs) {
		t.Fatalf("fleet job state %s done %d/%d", st.State, st.Done, st.Total)
	}
	assertByteIdentical(t, baseline, st.Results)

	m, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if retries := metricValue(t, m, "msrfleet_retries_total"); retries < 1 {
		t.Errorf("msrfleet_retries_total = %v, want >= 1: the kill should have forced a retry", retries)
	}
	if failures := metricValue(t, m, "msrfleet_unit_failures_total"); failures != 0 {
		t.Errorf("msrfleet_unit_failures_total = %v, want 0: every spec must survive the kill", failures)
	}

	// The ring converged on the survivor.
	var healthy []api.WorkerInfo
	for _, w := range co.Workers() {
		if w.Healthy {
			healthy = append(healthy, w)
		}
	}
	if len(healthy) != 1 || healthy[0].Addr != addrA {
		t.Errorf("healthy ring = %+v, want only %s", healthy, addrA)
	}
}

// TestFleetWorkSteal pins the stealing path: a slow worker's shard
// backlog is drained by the idle fast worker instead of serializing the
// sweep behind the hot shard.
func TestFleetWorkSteal(t *testing.T) {
	var specs []api.Spec
	for _, wl := range []string{"nested-mispred", "bfs", "mcf", "pr"} {
		for e := 0; e < 8; e++ {
			specs = append(specs, api.Spec{Workload: wl, Scale: 0, Engine: "rgid", Streams: 2, Entries: 16 << uint(e%4), Sets: 1 << uint(e/4)})
		}
	}

	addrA, _ := newWorker(t, server.Config{})
	addrB, _ := newWorker(t, server.Config{Backend: &slowBackend{delay: 150 * time.Millisecond}, Workers: 1})
	_, fc := newFleet(t, fleet.Config{Workers: []string{addrA, addrB}, ChunkSize: 1})

	st := runSweep(t, fc, specs)
	if st.State != api.StateDone || st.Done != len(specs) {
		t.Fatalf("fleet job state %s done %d/%d", st.State, st.Done, st.Total)
	}
	for i, r := range st.Results {
		if r.Error != "" {
			t.Errorf("result %d errored: %s", i, r.Error)
		}
	}
	ctx := context.Background()
	m, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if steals := metricValue(t, m, "msrfleet_steals_total"); steals < 1 {
		t.Errorf("msrfleet_steals_total = %v, want >= 1: the fast worker should have stolen from the slow shard", steals)
	}
}

// TestFleetRegistration pins dynamic membership: a coordinator with no
// static workers is unready and sheds jobs; a registered worker makes it
// ready and serves a sweep; registration is idempotent.
func TestFleetRegistration(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, fc := newFleet(t, fleet.Config{})

	if err := fc.Ready(ctx); err == nil {
		t.Error("workerless coordinator reported ready")
	}
	if err := fc.Health(ctx); err != nil {
		t.Errorf("workerless coordinator reported dead: %v", err)
	}
	if _, err := fc.Submit(ctx, sweep12()[:1]); err == nil {
		t.Error("workerless coordinator accepted a job")
	}

	addr, _ := newWorker(t, server.Config{})
	if err := fc.RegisterWorker(ctx, addr); err != nil {
		t.Fatalf("RegisterWorker: %v", err)
	}
	if err := fc.RegisterWorker(ctx, addr); err != nil {
		t.Fatalf("re-RegisterWorker: %v", err)
	}
	ws, err := fc.Workers(ctx)
	if err != nil {
		t.Fatalf("Workers: %v", err)
	}
	if len(ws) != 1 || ws[0].Addr != addr || !ws[0].Healthy {
		t.Fatalf("workers = %+v, want one healthy %s", ws, addr)
	}
	if err := fc.Ready(ctx); err != nil {
		t.Errorf("coordinator with a healthy worker not ready: %v", err)
	}

	st := runSweep(t, fc, sweep12()[:3])
	for i, r := range st.Results {
		if r.Error != "" {
			t.Errorf("result %d errored: %s", i, r.Error)
		}
	}
}

// TestFleetMetricsAggregation pins the fleet /metrics union: msrfleet_*
// series plus every worker's msrd_* series labelled worker="addr", with
// HELP/TYPE headers deduplicated.
func TestFleetMetricsAggregation(t *testing.T) {
	addrA, _ := newWorker(t, server.Config{})
	addrB, _ := newWorker(t, server.Config{})
	_, fc := newFleet(t, fleet.Config{Workers: []string{addrA, addrB}})

	runSweep(t, fc, sweep12())

	ctx := context.Background()
	m, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if v := metricValue(t, m, "msrfleet_jobs_submitted_total"); v != 1 {
		t.Errorf("msrfleet_jobs_submitted_total = %v, want 1", v)
	}
	if v := metricValue(t, m, "msrfleet_units_completed_total"); v != 12 {
		t.Errorf("msrfleet_units_completed_total = %v, want 12", v)
	}
	if v := metricValue(t, m, "msrfleet_workers_healthy"); v != 2 {
		t.Errorf("msrfleet_workers_healthy = %v, want 2", v)
	}
	for _, addr := range []string{addrA, addrB} {
		want := fmt.Sprintf("msrd_jobs_submitted_total{worker=%q}", addr)
		if !strings.Contains(m, want) {
			t.Errorf("aggregated exposition lacks %s", want)
		}
	}
	if n := strings.Count(m, "# HELP msrd_jobs_submitted_total"); n != 1 {
		t.Errorf("HELP header for msrd_jobs_submitted_total appears %d times, want 1", n)
	}
	if strings.Contains(m, "\nmsrd_jobs_submitted_total ") {
		t.Error("aggregated exposition contains an unlabelled worker sample")
	}
}
