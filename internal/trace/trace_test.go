package trace

import (
	"strings"
	"testing"

	"mssr/internal/isa"
)

func ev(cycle uint64, kind Kind, fseq uint64) Event {
	return Event{
		Cycle: cycle, Kind: kind, Seq: fseq, Fseq: fseq,
		PC:    0x1000 + fseq*4,
		Instr: isa.Instruction{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1},
	}
}

func TestKindString(t *testing.T) {
	if KindFetch.String() != "fetch" || KindCommit.String() != "commit" || KindReconverge.String() != "reconverge" {
		t.Error("bad kind names")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should carry its number")
	}
}

func TestWriterEmit(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	w.Emit(ev(3, KindRename, 7))
	w.Emit(Event{Cycle: 9, Kind: KindRedirect, PC: 0x2000, Note: "mispredict"})
	out := sb.String()
	if !strings.Contains(out, "rename") || !strings.Contains(out, "seq=7") {
		t.Errorf("writer output missing fields:\n%s", out)
	}
	if !strings.Contains(out, "redirect") || !strings.Contains(out, "mispredict") {
		t.Errorf("frontend event missing:\n%s", out)
	}
}

func TestPipelineCollectsStages(t *testing.T) {
	p := NewPipeline(0)
	for _, e := range []Event{
		ev(1, KindFetch, 1), ev(5, KindRename, 1), ev(6, KindIssue, 1),
		ev(7, KindWriteback, 1), ev(9, KindCommit, 1),
		ev(2, KindFetch, 2), ev(6, KindRename, 2), ev(8, KindSquash, 2),
	} {
		p.Emit(e)
	}
	if p.Rows() != 2 {
		t.Fatalf("rows = %d", p.Rows())
	}
	out := p.Render(0)
	for _, want := range []string{"fseq", "squashed", "0x1004", "0x1008"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The committed instruction's row shows every stage cycle.
	line := lineWith(out, "0x1004")
	for _, cycle := range []string{"1", "5", "6", "7", "9"} {
		if !strings.Contains(line, cycle) {
			t.Errorf("row missing stage cycle %s: %q", cycle, line)
		}
	}
	// The squashed instruction never commits: dash in the commit column.
	if line := lineWith(out, "0x1008"); !strings.Contains(line, "-") {
		t.Errorf("squashed row should have missing stages: %q", line)
	}
}

func lineWith(s, sub string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			return l
		}
	}
	return ""
}

func TestPipelineReuseFlag(t *testing.T) {
	p := NewPipeline(0)
	p.Emit(ev(1, KindFetch, 1))
	p.Emit(ev(5, KindReuse, 1))
	if !strings.Contains(p.Render(0), "reused") {
		t.Error("reuse flag missing")
	}
}

func TestPipelineLimit(t *testing.T) {
	p := NewPipeline(4)
	for i := uint64(1); i <= 1000; i++ {
		p.Emit(ev(i, KindFetch, i))
	}
	// Retention is a multiple of the limit (speculation runs far ahead of
	// commit), but must stay bounded.
	if p.Rows() > 32*4 {
		t.Errorf("rows = %d, should be bounded", p.Rows())
	}
	out := p.Render(4)
	if strings.Contains(out, " 0x1004 ") {
		t.Error("old rows should have been evicted from the render window")
	}
	if !strings.Contains(out, "fseq") {
		t.Error("header missing")
	}
	if got := strings.Count(out, "\n"); got > 6 {
		t.Errorf("render window too large: %d lines", got)
	}
}

func TestPipelineNotesInterleaved(t *testing.T) {
	p := NewPipeline(0)
	p.Emit(ev(1, KindFetch, 1))
	p.Emit(Event{Cycle: 2, Kind: KindRedirect, Note: "mispredict -> 0x2000"})
	p.Emit(ev(5, KindFetch, 2))
	out := p.Render(0)
	ri := strings.Index(out, "mispredict")
	a := strings.Index(out, "0x1004")
	b := strings.Index(out, "0x1008")
	if !(a < ri && ri < b) {
		t.Errorf("redirect note not interleaved between rows:\n%s", out)
	}
}

func TestPipelineRenderSubset(t *testing.T) {
	p := NewPipeline(0)
	for i := uint64(1); i <= 10; i++ {
		p.Emit(ev(i, KindFetch, i))
	}
	out := p.Render(3)
	if strings.Contains(out, "0x1004\n") {
		t.Error("subset render should omit early rows")
	}
	if !strings.Contains(out, "0x1028") {
		t.Error("subset render should include the last row")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewPipeline(0), NewPipeline(0)
	m := Multi{a, b}
	m.Emit(ev(1, KindFetch, 1))
	if a.Rows() != 1 || b.Rows() != 1 {
		t.Error("multi did not fan out")
	}
}

func TestParseLineRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	events := []Event{
		ev(3, KindRename, 7),
		{Cycle: 12, Kind: KindRedirect, PC: 0x2040, Note: "target=0x1000"},
		ev(900, KindCommit, 123),
		{Cycle: 901, Kind: KindReconverge, PC: 0x1010, Note: "stream 2"},
	}
	for _, e := range events {
		w.Emit(e)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(events) {
		t.Fatalf("emitted %d lines for %d events", len(lines), len(events))
	}
	for i, line := range lines {
		got, err := ParseLine(line)
		if err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		want := events[i]
		if got.Cycle != want.Cycle || got.Kind != want.Kind || got.Seq != want.Seq || got.PC != want.PC {
			t.Errorf("line %d round-trip mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
		// Frontend-only events carry the note verbatim; seq lines append
		// the rendered instruction before it, so containment is the
		// strongest guarantee ParseLine makes for Note.
		if want.Note != "" && !strings.Contains(got.Note, want.Note) {
			t.Errorf("line %d note %q lost: got %q", i, want.Note, got.Note)
		}
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"notanumber fetch pc=0x1",
		"3 warp pc=0x1",
		"3 fetch seq=9",
		"3 fetch seq=x pc=0x1",
		"3 fetch pc=zzz",
	} {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) accepted garbage", line)
		}
	}
}
