// Package trace provides pipeline event tracing for the timing core: a
// low-overhead event stream plus collectors that render Konata-style
// per-instruction pipeline diagrams and flat event logs. Tracing is
// optional; a nil tracer costs one branch per event site.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mssr/internal/isa"
)

// Kind classifies pipeline events.
type Kind uint8

// Event kinds.
const (
	// KindFetch: the instruction left the frontend.
	KindFetch Kind = iota
	// KindRename: renamed and dispatched (or completed at rename).
	KindRename
	// KindReuse: completed at rename via squash reuse.
	KindReuse
	// KindIssue: selected for execution.
	KindIssue
	// KindWriteback: result written back.
	KindWriteback
	// KindCommit: retired.
	KindCommit
	// KindSquash: removed by a flush.
	KindSquash
	// KindRedirect: the frontend was redirected (mispredict/violation).
	KindRedirect
	// KindReconverge: a reconvergence point was detected.
	KindReconverge

	numKinds
)

var kindNames = [numKinds]string{
	"fetch", "rename", "reuse", "issue", "writeback", "commit",
	"squash", "redirect", "reconverge",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one pipeline occurrence. Seq is the rename-order sequence (0
// for frontend-only events); Fseq the fetch-order sequence.
type Event struct {
	Cycle uint64
	Kind  Kind
	Seq   uint64
	Fseq  uint64
	PC    uint64
	Instr isa.Instruction
	// Note carries event-specific detail (redirect target, reuse source).
	Note string
}

// Tracer consumes pipeline events.
type Tracer interface {
	Emit(Event)
}

// Writer streams events as text lines, one per event.
type Writer struct {
	W io.Writer
}

// Emit implements Tracer.
func (w *Writer) Emit(e Event) {
	if e.Seq != 0 {
		fmt.Fprintf(w.W, "%8d %-10s seq=%-6d pc=%#x %v %s\n", e.Cycle, e.Kind, e.Seq, e.PC, e.Instr, e.Note)
		return
	}
	fmt.Fprintf(w.W, "%8d %-10s pc=%#x %s\n", e.Cycle, e.Kind, e.PC, e.Note)
}

// ParseLine parses one line of Writer's event-log format back into an
// Event. The structured fields — cycle, kind, seq, pc — round-trip
// exactly; the free-text remainder (the rendered instruction and the
// note, which Writer does not delimit) is returned in Note verbatim.
func ParseLine(line string) (Event, error) {
	var e Event
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return e, fmt.Errorf("trace: short event line %q", line)
	}
	cycle, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return e, fmt.Errorf("trace: bad cycle in %q: %w", line, err)
	}
	e.Cycle = cycle
	kind := -1
	for k, name := range kindNames {
		if fields[1] == name {
			kind = k
			break
		}
	}
	if kind < 0 {
		return e, fmt.Errorf("trace: unknown event kind %q in %q", fields[1], line)
	}
	e.Kind = Kind(kind)
	i := 2
	if rest, ok := strings.CutPrefix(fields[i], "seq="); ok {
		seq, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return e, fmt.Errorf("trace: bad seq in %q: %w", line, err)
		}
		e.Seq = seq
		i++
	}
	if i >= len(fields) || !strings.HasPrefix(fields[i], "pc=") {
		return e, fmt.Errorf("trace: missing pc field in %q", line)
	}
	pc, err := strconv.ParseUint(strings.TrimPrefix(fields[i], "pc="), 0, 64)
	if err != nil {
		return e, fmt.Errorf("trace: bad pc in %q: %w", line, err)
	}
	e.PC = pc
	e.Note = strings.Join(fields[i+1:], " ")
	return e, nil
}

// Pipeline collects per-instruction stage timing and renders a
// Konata-style text diagram. It keeps the most recent Limit instructions
// (by fetch sequence); zero means unlimited.
type Pipeline struct {
	Limit int

	rows  map[uint64]*row // keyed by fseq
	order []uint64
	notes []Event // redirects/reconvergences, rendered interleaved
}

type row struct {
	fseq, seq uint64
	pc        uint64
	instr     isa.Instruction
	stages    [numKinds]uint64 // cycle+1 per kind; 0 = never
	squashed  bool
	reused    bool
}

// NewPipeline builds a collector bounded to limit instructions.
func NewPipeline(limit int) *Pipeline {
	return &Pipeline{Limit: limit, rows: make(map[uint64]*row)}
}

// Emit implements Tracer.
func (p *Pipeline) Emit(e Event) {
	switch e.Kind {
	case KindRedirect, KindReconverge:
		p.notes = append(p.notes, e)
		if p.Limit > 0 && len(p.notes) > 4*p.Limit {
			p.notes = p.notes[len(p.notes)-2*p.Limit:]
		}
		return
	}
	r, ok := p.rows[e.Fseq]
	if !ok {
		r = &row{fseq: e.Fseq, pc: e.PC, instr: e.Instr}
		p.rows[e.Fseq] = r
		p.order = append(p.order, e.Fseq)
		// Keep well beyond the render limit: speculation fetches far ahead
		// of commit, and evicting a row between its fetch and its commit
		// would lose the early stage cycles.
		if p.Limit > 0 && len(p.order) > 32*p.Limit {
			p.compact()
		}
	}
	if e.Seq != 0 {
		r.seq = e.Seq
	}
	r.stages[e.Kind] = e.Cycle + 1
	switch e.Kind {
	case KindSquash:
		r.squashed = true
	case KindReuse:
		r.reused = true
	}
}

func (p *Pipeline) compact() {
	keep := p.order[len(p.order)-16*p.Limit:]
	kept := make(map[uint64]*row, len(keep))
	for _, f := range keep {
		kept[f] = p.rows[f]
	}
	p.rows = kept
	p.order = append(p.order[:0], keep...)
}

// Rows reports how many instructions are recorded.
func (p *Pipeline) Rows() int { return len(p.rows) }

// Render prints the pipeline diagram of the most recent n instructions
// (all if n <= 0): one row per fetched instruction with the cycle of each
// stage, squash markers, and interleaved redirect annotations.
func (p *Pipeline) Render(n int) string {
	order := p.order
	if n > 0 && len(order) > n {
		order = order[len(order)-n:]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-7s %-10s %-26s %7s %7s %7s %7s %7s %s\n",
		"fseq", "pc", "instruction", "fetch", "rename", "issue", "wb", "commit", "flags")
	// Interleave notes by the fetch cycle of rows, dropping notes from
	// before the rendered window.
	notes := append([]Event(nil), p.notes...)
	sort.SliceStable(notes, func(i, j int) bool { return notes[i].Cycle < notes[j].Cycle })
	ni := 0
	if len(order) > 0 {
		first := p.rows[order[0]].stages[KindFetch]
		for ni < len(notes) && notes[ni].Cycle+1 < first {
			ni++
		}
	}
	for _, f := range order {
		r := p.rows[f]
		fetchCycle := r.stages[KindFetch]
		for ni < len(notes) && notes[ni].Cycle+1 <= fetchCycle {
			fmt.Fprintf(&sb, "------- cycle %d: %s %s\n", notes[ni].Cycle, notes[ni].Kind, notes[ni].Note)
			ni++
		}
		flags := ""
		if r.reused {
			flags += "reused "
		}
		if r.squashed {
			flags += "squashed"
		}
		fmt.Fprintf(&sb, "%-7d %-10s %-26s %7s %7s %7s %7s %7s %s\n",
			r.fseq, fmt.Sprintf("%#x", r.pc), clip(r.instr.String(), 26),
			cyc(r.stages[KindFetch]), cyc(r.stages[KindRename]),
			cyc(r.stages[KindIssue]), cyc(r.stages[KindWriteback]),
			cyc(r.stages[KindCommit]), flags)
	}
	for ni < len(notes) {
		fmt.Fprintf(&sb, "------- cycle %d: %s %s\n", notes[ni].Cycle, notes[ni].Kind, notes[ni].Note)
		ni++
	}
	return sb.String()
}

func cyc(v uint64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v-1)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Multi fans one event stream out to several tracers.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}
