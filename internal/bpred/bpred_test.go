package bpred

import (
	"math/rand"
	"testing"
)

// runPattern feeds the predictor a repeating direction pattern for a single
// branch PC and returns the accuracy over the last half of the run.
func runPattern(t *testing.T, u *Unit, pc uint64, pattern []bool, iters int) float64 {
	t.Helper()
	correct, total := 0, 0
	for i := 0; i < iters; i++ {
		taken := pattern[i%len(pattern)]
		s := u.Snapshot()
		pred := u.PredictBranch(pc, s)
		if pred != taken {
			// Mispredict: the core would flush and repair the history,
			// then re-shift the actual outcome.
			u.Restore(s)
			u.ShiftHistory(taken)
		}
		u.Train(pc, s, taken)
		if i >= iters/2 {
			total++
			if pred == taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestAlwaysTakenLearned(t *testing.T) {
	u := New(DefaultConfig())
	if acc := runPattern(t, u, 0x1000, []bool{true}, 200); acc < 0.99 {
		t.Errorf("always-taken accuracy = %.3f", acc)
	}
}

func TestAlternatingLearned(t *testing.T) {
	u := New(DefaultConfig())
	// T,NT alternation requires history; bimodal alone cannot learn it.
	if acc := runPattern(t, u, 0x1000, []bool{true, false}, 2000); acc < 0.95 {
		t.Errorf("alternating accuracy = %.3f", acc)
	}
}

func TestLongerPatternLearned(t *testing.T) {
	u := New(DefaultConfig())
	pattern := []bool{true, true, false, true, false, false, true, false}
	if acc := runPattern(t, u, 0x1000, pattern, 8000); acc < 0.90 {
		t.Errorf("period-8 pattern accuracy = %.3f", acc)
	}
}

func TestRandomBranchStaysHard(t *testing.T) {
	u := New(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	pattern := make([]bool, 8191) // prime-ish length, effectively random
	for i := range pattern {
		pattern[i] = rng.Intn(2) == 0
	}
	acc := runPattern(t, u, 0x1000, pattern, len(pattern))
	if acc > 0.75 {
		t.Errorf("random branch accuracy = %.3f; predictor is implausibly clairvoyant", acc)
	}
}

func TestTwoBranchesDoNotDestroyEachOther(t *testing.T) {
	u := New(DefaultConfig())
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		for _, b := range []struct {
			pc    uint64
			taken bool
		}{{0x1000, true}, {0x2000, false}} {
			s := u.Snapshot()
			pred := u.PredictBranch(b.pc, s)
			if pred != b.taken {
				u.Restore(s)
				u.ShiftHistory(b.taken)
			}
			u.Train(b.pc, s, b.taken)
			if i > 2000 {
				total++
				if pred == b.taken {
					correct++
				}
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Errorf("two static branches accuracy = %.3f", acc)
	}
}

func TestSnapshotRestore(t *testing.T) {
	u := New(DefaultConfig())
	u.ShiftHistory(true)
	u.ShiftHistory(false)
	s := u.Snapshot()
	u.ShiftHistory(true)
	u.ShiftHistory(true)
	u.PushRAS(0x1234)
	u.Restore(s)
	if got := u.Snapshot(); got != s {
		t.Errorf("restore mismatch: %+v vs %+v", got, s)
	}
}

func TestHistoryShiftsThroughBothWords(t *testing.T) {
	u := New(DefaultConfig())
	u.ShiftHistory(true)
	for i := 0; i < 64; i++ {
		u.ShiftHistory(false)
	}
	s := u.Snapshot()
	if s.HistHi&1 != 1 {
		t.Errorf("oldest bit should have migrated to HistHi: %+v", s)
	}
	if s.HistLo != 0 {
		t.Errorf("HistLo = %#x", s.HistLo)
	}
}

func TestRASPushPop(t *testing.T) {
	u := New(DefaultConfig())
	u.PushRAS(0x100)
	u.PushRAS(0x200)
	if got := u.PopRAS(); got != 0x200 {
		t.Errorf("pop1 = %#x", got)
	}
	if got := u.PopRAS(); got != 0x100 {
		t.Errorf("pop2 = %#x", got)
	}
}

func TestRASRepair(t *testing.T) {
	u := New(DefaultConfig())
	u.PushRAS(0x100)
	s := u.Snapshot()
	// Wrong path pushes garbage and pops twice.
	u.PushRAS(0xbad)
	u.PopRAS()
	u.PopRAS()
	u.Restore(s)
	if got := u.PopRAS(); got != 0x100 {
		t.Errorf("after repair pop = %#x, want 0x100", got)
	}
}

func TestRASWrapAround(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASSize = 4
	u := New(cfg)
	for i := 1; i <= 6; i++ {
		u.PushRAS(uint64(i * 0x10))
	}
	// Deepest two entries were overwritten; the newest four survive.
	for want := uint64(0x60); want >= 0x30; want -= 0x10 {
		if got := u.PopRAS(); got != want {
			t.Fatalf("pop = %#x, want %#x", got, want)
		}
	}
}

func TestIndirectPredictor(t *testing.T) {
	u := New(DefaultConfig())
	if _, ok := u.PredictIndirect(0x1000); ok {
		t.Error("cold indirect table should not predict")
	}
	u.TrainIndirect(0x1000, 0x4000)
	target, ok := u.PredictIndirect(0x1000)
	if !ok || target != 0x4000 {
		t.Errorf("indirect predict = %#x, %v", target, ok)
	}
	u.TrainIndirect(0x1000, 0x5000)
	if target, _ := u.PredictIndirect(0x1000); target != 0x5000 {
		t.Errorf("indirect retrain = %#x", target)
	}
}

func TestFoldedHistoryDistinguishesLongHistories(t *testing.T) {
	// Bit 70 set vs clear must yield different folds for a 128-bit table.
	a := foldedHistory(0, 1<<6, 128, 10)
	b := foldedHistory(0, 0, 128, 10)
	if a == b {
		t.Error("fold ignores bits in the high word")
	}
	// Lengths < 64 must mask the low word.
	if foldedHistory(1<<50, 0, 16, 10) != foldedHistory(0, 0, 16, 10) {
		t.Error("fold leaked bits beyond the history length")
	}
}

func TestUsefulnessDecayRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsefulResetPeriod = 64
	u := New(cfg)
	// Just exercise enough updates to trigger a decay sweep without
	// crashing; behaviour is covered by the pattern tests.
	for i := 0; i < 200; i++ {
		s := u.Snapshot()
		u.PredictBranch(0x1000, s)
		u.Train(0x1000, s, i%3 == 0)
	}
}
