// Package bpred implements the branch prediction substrate of the simulated
// frontend: a TAGE-style conditional direction predictor over a bimodal
// base (standing in for the paper's TAGE-SC-L 64K), a return address stack
// with single-entry repair, and a last-target indirect predictor. The
// predictor is deliberately good on pattern-following branches and poor on
// data-dependent ones — the property that creates the hard-to-predict
// branches the paper's mechanism exploits.
package bpred

// Config parameterizes the predictor. Use DefaultConfig unless a test needs
// something smaller.
type Config struct {
	// BimodalBits is log2 of the bimodal table size.
	BimodalBits int
	// TableBits is log2 of each tagged table's size.
	TableBits int
	// TagBits is the tag width of tagged-table entries.
	TagBits int
	// HistLengths is the geometric history-length series, shortest first
	// (one tagged table per entry, max 128 bits).
	HistLengths []int
	// RASSize is the return-address-stack depth.
	RASSize int
	// IndirectBits is log2 of the indirect target table size.
	IndirectBits int
	// UsefulResetPeriod is the number of updates between usefulness
	// counter decays.
	UsefulResetPeriod uint64
}

// DefaultConfig returns the configuration used by the evaluation.
func DefaultConfig() Config {
	return Config{
		BimodalBits:       13,
		TableBits:         10,
		TagBits:           9,
		HistLengths:       []int{4, 8, 16, 32, 64, 128},
		RASSize:           32,
		IndirectBits:      9,
		UsefulResetPeriod: 1 << 18,
	}
}

// Snapshot captures the speculative predictor state that must be repaired
// on a pipeline flush: the global history register and the RAS repair pair.
// It is also the key under which TAGE retraining recomputes its indices, so
// every in-flight control instruction carries the Snapshot taken just
// before it was predicted.
type Snapshot struct {
	HistLo, HistHi uint64
	RASTop         uint64
	RASSP          int32
}

type tagEntry struct {
	tag uint16
	ctr int8  // 3-bit signed counter, taken when >= 0
	u   uint8 // 2-bit usefulness
}

type tagTable struct {
	hist    int
	entries []tagEntry
}

// Unit is the branch prediction unit.
type Unit struct {
	cfg     Config
	bimodal []int8 // 2-bit counters, taken when >= 2
	tables  []tagTable

	histLo, histHi uint64 // global history, bit 0 = most recent

	ras     []uint64
	rasSP   int32
	rasMask int32 // len(ras)-1 when a power of two, else -1 (divide)

	indTags    []uint32
	indTargets []uint64

	updates uint64
	lfsr    uint32 // allocation tie-breaking

	candScratch []int // allocate()'s candidate list, reused across calls

	// Per-table index and tag of the most recent lookup descent. The
	// provider/alternate reads, Train's counter update and allocate all
	// address the same (pc, snapshot) the descent hashed; caching the
	// hashes avoids re-folding the history for each of those touches.
	// Only tables the descent visited (provider and above, plus the
	// alternate) are current — exactly the set the consumers read.
	idxScratch []int32
	tagScratch []uint16
}

// New builds a predictor.
func New(cfg Config) *Unit {
	u := &Unit{
		cfg:         cfg,
		bimodal:     make([]int8, 1<<cfg.BimodalBits),
		ras:         make([]uint64, cfg.RASSize),
		indTags:     make([]uint32, 1<<cfg.IndirectBits),
		indTargets:  make([]uint64, 1<<cfg.IndirectBits),
		lfsr:        0xace1,
		candScratch: make([]int, 0, len(cfg.HistLengths)),
		idxScratch:  make([]int32, len(cfg.HistLengths)),
		tagScratch:  make([]uint16, len(cfg.HistLengths)),
	}
	u.rasMask = -1
	if n := int32(cfg.RASSize); n > 0 && n&(n-1) == 0 {
		u.rasMask = n - 1
	}
	for i := range u.bimodal {
		u.bimodal[i] = 1 // weakly not-taken
	}
	for _, h := range cfg.HistLengths {
		u.tables = append(u.tables, tagTable{
			hist:    h,
			entries: make([]tagEntry, 1<<cfg.TableBits),
		})
	}
	return u
}

// Reset restores the pristine post-New state in place: all tables
// forgotten, history and RAS cleared, the allocation LFSR reseeded so a
// reset predictor replays identical tie-breaking decisions.
func (u *Unit) Reset() {
	for i := range u.bimodal {
		u.bimodal[i] = 1 // weakly not-taken
	}
	for t := range u.tables {
		clear(u.tables[t].entries)
	}
	u.histLo, u.histHi = 0, 0
	clear(u.ras)
	u.rasSP = 0
	clear(u.indTags)
	clear(u.indTargets)
	u.updates = 0
	u.lfsr = 0xace1
}

// Snapshot captures the current speculative state.
func (u *Unit) Snapshot() Snapshot {
	s := Snapshot{HistLo: u.histLo, HistHi: u.histHi, RASSP: u.rasSP}
	if len(u.ras) > 0 {
		s.RASTop = u.ras[u.topIndex()]
	}
	return s
}

// Restore rewinds the speculative state to s (on a flush) — the global
// history and the RAS pointer plus its top entry.
func (u *Unit) Restore(s Snapshot) {
	u.histLo, u.histHi = s.HistLo, s.HistHi
	u.rasSP = s.RASSP
	if len(u.ras) > 0 {
		u.ras[u.topIndex()] = s.RASTop
	}
}

func (u *Unit) topIndex() int {
	// For the power-of-two sizes used in practice the Euclidean modulus
	// is a two's-complement mask (identical for negative stack pointers
	// too); odd sizes keep the double-mod.
	if u.rasMask >= 0 {
		return int(uint32(u.rasSP-1) & uint32(u.rasMask))
	}
	n := int32(len(u.ras))
	return int(((u.rasSP-1)%n + n) % n)
}

// PushRAS records a call's return address.
func (u *Unit) PushRAS(ret uint64) {
	if u.rasMask >= 0 {
		u.ras[uint32(u.rasSP)&uint32(u.rasMask)] = ret
	} else {
		u.ras[int(u.rasSP)%len(u.ras)] = ret
	}
	u.rasSP++
}

// PopRAS predicts a return target.
func (u *Unit) PopRAS() uint64 {
	t := u.ras[u.topIndex()]
	u.rasSP--
	return t
}

// ShiftHistory appends a conditional-branch direction to the speculative
// global history. PredictBranch does this itself; Resolve re-applies the
// correct direction after a restore.
func (u *Unit) ShiftHistory(taken bool) {
	u.histHi = u.histHi<<1 | u.histLo>>63
	u.histLo <<= 1
	if taken {
		u.histLo |= 1
	}
}

// foldedHistory xor-folds the first length bits of the snapshot history
// into bits chunks.
func foldedHistory(lo, hi uint64, length, bits int) uint64 {
	var h uint64
	if length >= 64 {
		h = lo
		rest := hi
		if length < 128 {
			rest &= (1 << uint(length-64)) - 1
		}
		// Stagger the upper half so bit i of hi does not simply cancel
		// against bit i of lo under the fold.
		h ^= rest<<7 | rest>>(64-7)
	} else {
		h = lo & ((1 << uint(length)) - 1)
	}
	// Fold by doubling: after the passes s = bits, 2*bits, 4*bits, ...,
	// bit i of h is the xor of the original bits i, i+bits, i+2*bits, ...
	// across the whole word, so the masked low chunk equals the xor of
	// all bits-wide chunks — the same fold as shifting chunk by chunk,
	// in O(log) passes.
	for s := uint(bits); s < 64; s *= 2 {
		h ^= h >> s
	}
	return h & ((1 << uint(bits)) - 1)
}

func (u *Unit) tableIndex(t int, pc uint64, s Snapshot) int {
	bits := u.cfg.TableBits
	h := foldedHistory(s.HistLo, s.HistHi, u.tables[t].hist, bits)
	idx := (pc >> 2) ^ (pc >> uint(bits+2)) ^ h ^ uint64(t)*0x9e3779b1
	return int(idx & uint64(len(u.tables[t].entries)-1))
}

func (u *Unit) tableTag(t int, pc uint64, s Snapshot) uint16 {
	bits := u.cfg.TagBits
	h := foldedHistory(s.HistLo, s.HistHi, u.tables[t].hist, bits-1)
	tag := (pc >> 2) ^ (pc >> uint(bits+4)) ^ h<<1 ^ uint64(t)*0x85ebca6b
	return uint16(tag & ((1 << uint(bits)) - 1))
}

func (u *Unit) bimodalIndex(pc uint64) int {
	return int((pc >> 2) & uint64(len(u.bimodal)-1))
}

// lookup finds the provider (longest-history hit) and the alternate
// prediction for pc under snapshot s. provider == -1 means bimodal.
func (u *Unit) lookup(pc uint64, s Snapshot) (provider int, pred, altPred bool) {
	provider = -1
	alt := -1
	for t := len(u.tables) - 1; t >= 0; t-- {
		idx := u.tableIndex(t, pc, s)
		tag := u.tableTag(t, pc, s)
		u.idxScratch[t] = int32(idx)
		u.tagScratch[t] = tag
		e := &u.tables[t].entries[idx]
		if e.tag == tag {
			if provider < 0 {
				provider = t
			} else {
				alt = t
				break
			}
		}
	}
	bimodalPred := u.bimodal[u.bimodalIndex(pc)] >= 2
	altPred = bimodalPred
	if alt >= 0 {
		altPred = u.tables[alt].entries[u.idxScratch[alt]].ctr >= 0
	}
	pred = bimodalPred
	if provider >= 0 {
		pred = u.tables[provider].entries[u.idxScratch[provider]].ctr >= 0
	}
	return provider, pred, altPred
}

// PredictBranch predicts the direction of the conditional branch at pc and
// speculatively shifts the prediction into the global history. Callers must
// take a Snapshot first (for repair and training).
func (u *Unit) PredictBranch(pc uint64, s Snapshot) bool {
	_, pred, _ := u.lookup(pc, s)
	u.ShiftHistory(pred)
	return pred
}

// Train updates the predictor with the resolved direction of the branch at
// pc, using the history snapshot taken when it was predicted (the paper
// trains on retired/deallocated FTQ entries; the core calls this at
// retirement).
func (u *Unit) Train(pc uint64, s Snapshot, taken bool) {
	u.updates++
	if u.cfg.UsefulResetPeriod > 0 && u.updates%u.cfg.UsefulResetPeriod == 0 {
		for t := range u.tables {
			for i := range u.tables[t].entries {
				u.tables[t].entries[i].u >>= 1
			}
		}
	}

	provider, pred, altPred := u.lookup(pc, s)

	// Update the provider's counter (or the bimodal base).
	if provider >= 0 {
		e := &u.tables[provider].entries[u.idxScratch[provider]]
		e.ctr = bump3(e.ctr, taken)
		if pred != altPred {
			if pred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		// Keep the base table warm too when the provider is freshly
		// allocated and weak.
		if e.ctr == 0 || e.ctr == -1 {
			bi := u.bimodalIndex(pc)
			u.bimodal[bi] = bump2(u.bimodal[bi], taken)
		}
	} else {
		bi := u.bimodalIndex(pc)
		u.bimodal[bi] = bump2(u.bimodal[bi], taken)
	}

	// Allocate a longer-history entry on misprediction.
	if pred != taken && provider < len(u.tables)-1 {
		u.allocate(provider+1, pc, s, taken)
	}
}

func (u *Unit) allocate(from int, pc uint64, s Snapshot, taken bool) {
	// Gather candidate tables with a dead (u == 0) entry. The scratch
	// list never outgrows len(u.tables), so reusing it keeps this
	// mispredict-path routine allocation-free.
	candidates := u.candScratch[:0]
	for t := from; t < len(u.tables); t++ {
		e := &u.tables[t].entries[u.idxScratch[t]]
		if e.u == 0 {
			candidates = append(candidates, t)
		}
	}
	u.candScratch = candidates[:0]
	if len(candidates) == 0 {
		// Age everything so allocation succeeds eventually.
		for t := from; t < len(u.tables); t++ {
			e := &u.tables[t].entries[u.idxScratch[t]]
			if e.u > 0 {
				e.u--
			}
		}
		return
	}
	// Prefer shorter histories, with a pseudo-random skip so a single hot
	// branch does not always claim the same table.
	pick := candidates[0]
	if len(candidates) > 1 && u.nextRand()&3 == 0 {
		pick = candidates[1]
	}
	e := &u.tables[pick].entries[u.idxScratch[pick]]
	e.tag = u.tagScratch[pick]
	e.u = 0
	if taken {
		e.ctr = 0
	} else {
		e.ctr = -1
	}
}

func (u *Unit) nextRand() uint32 {
	// 16-bit Fibonacci LFSR; deterministic across runs.
	bit := (u.lfsr>>0 ^ u.lfsr>>2 ^ u.lfsr>>3 ^ u.lfsr>>5) & 1
	u.lfsr = u.lfsr>>1 | bit<<15
	return u.lfsr
}

func bump3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

func bump2(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// PredictIndirect predicts the target of an indirect jump at pc; ok is
// false when the table has never seen this PC.
func (u *Unit) PredictIndirect(pc uint64) (target uint64, ok bool) {
	i := int((pc >> 2) & uint64(len(u.indTargets)-1))
	if u.indTags[i] == uint32(pc>>2) && u.indTargets[i] != 0 {
		return u.indTargets[i], true
	}
	return 0, false
}

// TrainIndirect records the resolved target of the indirect jump at pc.
func (u *Unit) TrainIndirect(pc, target uint64) {
	i := int((pc >> 2) & uint64(len(u.indTargets)-1))
	u.indTags[i] = uint32(pc >> 2)
	u.indTargets[i] = target
}
