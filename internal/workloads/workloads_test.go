package workloads

import (
	"testing"

	"mssr/internal/emu"
)

// refChecksum computes the expected CheckAddr value for a workload at the
// given scale using the Go reference implementations.
func refChecksum(t *testing.T, name string, scale int) uint64 {
	t.Helper()
	n, deg := graphScale(scale)
	g := func() *Graph { return RandomGraph(n, deg, graphSeed) }
	switch name {
	case "nested-mispred":
		return Listing1Ref(VariantNested, microIters(scale))
	case "linear-mispred":
		return Listing1Ref(VariantLinear, microIters(scale))
	case "bfs":
		return checksumRef(bfsRef(g()))
	case "cc":
		return checksumRef(ccRef(g()))
	case "sssp":
		return checksumRef(ssspRef(g()))
	case "pr":
		return checksumRef(prRef(g()))
	case "tc":
		return checksumRef(tcRef(g()))
	case "bc":
		return checksumRef(bcRef(g()))
	case "astar":
		return astarRef(scale)
	case "gobmk":
		return gobmkRef(scale)
	case "mcf":
		return mcfRef(scale)
	case "sjeng":
		return sjengRef(scale)
	case "deepsjeng":
		return deepsjengRef(scale)
	case "bzip2":
		return bzip2Ref(scale)
	case "leela":
		return leelaRef(scale)
	case "omnetpp":
		return omnetppRef(scale)
	case "xz":
		return xzRef(scale)
	case "perlbench":
		return perlbenchRef(scale)
	case "exchange2":
		return exchange2Ref(scale)
	}
	t.Fatalf("no reference for %q", name)
	return 0
}

func TestAllWorkloadsMatchReference(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.BuildScaled(1)
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			e := emu.New(p)
			if err := e.Run(100_000_000); err != nil {
				t.Fatalf("emulation: %v", err)
			}
			got := e.Mem.Read(CheckAddr())
			want := refChecksum(t, w.Name, 1)
			if got != want {
				t.Fatalf("checksum = %#x, reference = %#x", got, want)
			}
			t.Logf("%-15s %8d dynamic instructions, checksum %#x", w.Name, e.Retired, got)
		})
	}
}

func TestWorkloadRegistry(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("expected 19 workloads, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" || w.Suite == "" || w.Build == nil {
			t.Errorf("workload %q incompletely described", w.Name)
		}
	}
	if len(Suite("gap")) != 6 {
		t.Errorf("gap suite = %d workloads", len(Suite("gap")))
	}
	if len(Suite("spec2006")) != 6 || len(Suite("spec2017")) != 5 {
		t.Errorf("spec suites = %d + %d", len(Suite("spec2006")), len(Suite("spec2017")))
	}
	if _, err := ByName("bfs"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRandomGraphProperties(t *testing.T) {
	g := RandomGraph(128, 8, 42)
	if g.N != 128 || len(g.Row) != 129 {
		t.Fatalf("bad geometry: n=%d rows=%d", g.N, len(g.Row))
	}
	if g.M() == 0 {
		t.Fatal("graph has no edges")
	}
	// Symmetric, sorted, deduplicated, no self loops.
	adj := make(map[[2]int]bool)
	for u := 0; u < g.N; u++ {
		var prev int64 = -1
		for e := g.Row[u]; e < g.Row[u+1]; e++ {
			v := int64(g.Col[e])
			if v == int64(u) {
				t.Fatalf("self loop at %d", u)
			}
			if v <= prev {
				t.Fatalf("adjacency of %d not strictly sorted", u)
			}
			prev = v
			adj[[2]int{u, int(v)}] = true
		}
	}
	for e := range adj {
		if !adj[[2]int{e[1], e[0]}] {
			t.Fatalf("edge %v not symmetric", e)
		}
	}
	// Determinism.
	h := RandomGraph(128, 8, 42)
	for i := range g.Col {
		if g.Col[i] != h.Col[i] {
			t.Fatal("graph generation not deterministic")
		}
	}
}

func TestVariantString(t *testing.T) {
	if VariantNested.String() != "nested-mispred" || VariantLinear.String() != "linear-mispred" {
		t.Error("bad variant names")
	}
}

func TestListing1VariantsDiffer(t *testing.T) {
	a := Listing1Ref(VariantNested, 500)
	b := Listing1Ref(VariantLinear, 500)
	if a == b {
		t.Error("variants should compute different checksums")
	}
}
