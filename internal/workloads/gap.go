package workloads

import (
	"mssr/internal/asm"
	"mssr/internal/isa"
)

// The GAP-style kernels run on a deterministic uniform-random undirected
// graph. Each kernel stores a checksum of its result arrays at CheckAddr,
// and each has a Go reference implementation that mirrors the assembly's
// evaluation order exactly.

const (
	graphSeed = 0x6170 // "ap"
	infDist   = uint64(1) << 40
	bcFix     = uint64(1) << 16
)

// emitChecksumLoop emits: acc = 0; for i in [0, n): acc = acc*2 + base[i];
// store acc at CheckAddr; halt. Clobbers T0, T1, A0 and acc.
func emitChecksumLoop(b *asm.Builder, base uint64, n int) {
	const (
		rAcc = isa.A1
		rI   = isa.A0
	)
	b.Li(rAcc, 0)
	b.Li(rI, 0)
	b.Li(isa.T1, int64(n))
	b.Li(isa.T2, int64(base))
	b.Label("cksum")
	b.Slli(isa.T0, rI, 3)
	b.Add(isa.T0, isa.T0, isa.T2)
	b.Ld(isa.T0, 0, isa.T0)
	b.Slli(rAcc, rAcc, 1)
	b.Add(rAcc, rAcc, isa.T0)
	b.Addi(rI, rI, 1)
	b.Blt(rI, isa.T1, "cksum")
	b.Li(isa.T0, int64(checkWord))
	b.St(rAcc, 0, isa.T0)
	b.Halt()
}

func checksumRef(vals []uint64) uint64 {
	var acc uint64
	for _, v := range vals {
		acc = acc*2 + v
	}
	return acc
}

// ---------------------------------------------------------------- bfs ---

func buildBFS(scale int) *isa.Program {
	n, deg := graphScale(scale)
	g := RandomGraph(n, deg, graphSeed)
	b := asm.NewBuilder("bfs")
	l := newLayout()
	rowB, colB := emitGraph(b, l, g)
	parentB := l.alloc(n)
	queueB := l.alloc(n)

	const (
		rRow, rCol, rParent, rQueue = isa.S0, isa.S2, isa.S3, isa.S4
		rHead, rTail                = isa.T3, isa.T4
		rU, rE, rEE, rV, rP         = isa.A0, isa.A1, isa.A2, isa.A3, isa.A4
	)
	b.Li(rRow, int64(rowB))
	b.Li(rCol, int64(colB))
	b.Li(rParent, int64(parentB))
	b.Li(rQueue, int64(queueB))
	// parent[0] = 1 (self, encoded +1); queue[0] = 0.
	b.Li(isa.T0, 1)
	b.St(isa.T0, 0, rParent)
	b.St(isa.Zero, 0, rQueue)
	b.Li(rHead, 0)
	b.Li(rTail, 1)
	b.Label("outer")
	b.Bge(rHead, rTail, "done")
	b.Slli(isa.T0, rHead, 3)
	b.Add(isa.T0, isa.T0, rQueue)
	b.Ld(rU, 0, isa.T0)
	b.Addi(rHead, rHead, 1)
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T0, isa.T0, rRow)
	b.Ld(rE, 0, isa.T0)
	b.Ld(rEE, 8, isa.T0)
	b.Label("inner")
	b.Bge(rE, rEE, "outer")
	b.Slli(isa.T0, rE, 3)
	b.Add(isa.T0, isa.T0, rCol)
	b.Ld(rV, 0, isa.T0)
	b.Slli(isa.T0, rV, 3)
	b.Add(isa.T0, isa.T0, rParent)
	b.Ld(rP, 0, isa.T0)
	b.Bnez(rP, "skip") // visited check: data dependent
	b.Addi(rP, rU, 1)
	b.St(rP, 0, isa.T0) // parent[v] = u+1
	b.Slli(isa.T1, rTail, 3)
	b.Add(isa.T1, isa.T1, rQueue)
	b.St(rV, 0, isa.T1)
	b.Addi(rTail, rTail, 1)
	b.Label("skip")
	b.Addi(rE, rE, 1)
	b.J("inner")
	b.Label("done")
	emitChecksumLoop(b, parentB, n)
	return b.MustProgram()
}

// bfsRef mirrors buildBFS.
func bfsRef(g *Graph) []uint64 {
	parent := make([]uint64, g.N)
	queue := make([]uint64, 0, g.N)
	parent[0] = 1
	queue = append(queue, 0)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for e := g.Row[u]; e < g.Row[u+1]; e++ {
			v := g.Col[e]
			if parent[v] == 0 {
				parent[v] = u + 1
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// ----------------------------------------------------------------- cc ---

func buildCC(scale int) *isa.Program {
	n, deg := graphScale(scale)
	g := RandomGraph(n, deg, graphSeed)
	b := asm.NewBuilder("cc")
	l := newLayout()
	rowB, colB := emitGraph(b, l, g)
	compB := l.alloc(n)
	ident := make([]uint64, n)
	for i := range ident {
		ident[i] = uint64(i)
	}
	emitArray(b, compB, ident)

	const (
		rRow, rCol, rComp, rN = isa.S0, isa.S2, isa.S3, isa.S5
		rChanged              = isa.T6
		rU, rE, rEE, rV       = isa.A0, isa.A1, isa.A2, isa.A3
		rCV, rCU              = isa.A4, isa.A5
		rCompU                = isa.T2
	)
	b.Li(rRow, int64(rowB))
	b.Li(rCol, int64(colB))
	b.Li(rComp, int64(compB))
	b.Li(rN, int64(n))
	b.Label("round")
	b.Li(rChanged, 0)
	b.Li(rU, 0)
	b.Label("uloop")
	b.Bge(rU, rN, "check")
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T1, isa.T0, rRow)
	b.Ld(rE, 0, isa.T1)
	b.Ld(rEE, 8, isa.T1)
	b.Add(rCompU, isa.T0, rComp)
	b.Label("eloop")
	b.Bge(rE, rEE, "unext")
	b.Slli(isa.T0, rE, 3)
	b.Add(isa.T0, isa.T0, rCol)
	b.Ld(rV, 0, isa.T0)
	b.Slli(isa.T0, rV, 3)
	b.Add(isa.T0, isa.T0, rComp)
	b.Ld(rCV, 0, isa.T0)
	b.Ld(rCU, 0, rCompU)
	b.Bge(rCV, rCU, "eskip") // label-improvement check: data dependent
	b.St(rCV, 0, rCompU)
	b.Li(rChanged, 1)
	b.Label("eskip")
	b.Addi(rE, rE, 1)
	b.J("eloop")
	b.Label("unext")
	b.Addi(rU, rU, 1)
	b.J("uloop")
	b.Label("check")
	b.Bnez(rChanged, "round")
	emitChecksumLoop(b, compB, n)
	return b.MustProgram()
}

func ccRef(g *Graph) []uint64 {
	comp := make([]uint64, g.N)
	for i := range comp {
		comp[i] = uint64(i)
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < g.N; u++ {
			for e := g.Row[u]; e < g.Row[u+1]; e++ {
				v := g.Col[e]
				if comp[v] < comp[u] {
					comp[u] = comp[v]
					changed = true
				}
			}
		}
	}
	return comp
}

// --------------------------------------------------------------- sssp ---

const ssspMaxRounds = 16

func buildSSSP(scale int) *isa.Program {
	n, deg := graphScale(scale)
	g := RandomGraph(n, deg, graphSeed)
	w := edgeWeights(g.M())
	b := asm.NewBuilder("sssp")
	l := newLayout()
	rowB, colB := emitGraph(b, l, g)
	wgtB := l.alloc(g.M() + 1)
	distB := l.alloc(n)
	emitArray(b, wgtB, w)
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = infDist
	}
	dist[0] = 0
	emitArray(b, distB, dist)

	const (
		rRow, rCol, rWgt, rDist, rN = isa.S0, isa.S2, isa.S4, isa.S3, isa.S5
		rChanged, rRound            = isa.T6, isa.T5
		rU, rE, rEE, rV             = isa.A0, isa.A1, isa.A2, isa.A3
		rDU, rND, rDV               = isa.A4, isa.A5, isa.A6
		rInf                        = isa.A7
	)
	b.Li(rRow, int64(rowB))
	b.Li(rCol, int64(colB))
	b.Li(rWgt, int64(wgtB))
	b.Li(rDist, int64(distB))
	b.Li(rN, int64(n))
	b.Li(rInf, int64(infDist))
	b.Li(rRound, 0)
	b.Label("round")
	b.Li(rChanged, 0)
	b.Li(rU, 0)
	b.Label("uloop")
	b.Bge(rU, rN, "check")
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T1, isa.T0, rDist)
	b.Ld(rDU, 0, isa.T1)
	b.Beq(rDU, rInf, "unext") // unreached vertices relax nothing
	b.Add(isa.T1, isa.T0, rRow)
	b.Ld(rE, 0, isa.T1)
	b.Ld(rEE, 8, isa.T1)
	b.Label("eloop")
	b.Bge(rE, rEE, "unext")
	b.Slli(isa.T0, rE, 3)
	b.Add(isa.T1, isa.T0, rCol)
	b.Ld(rV, 0, isa.T1)
	b.Add(isa.T1, isa.T0, rWgt)
	b.Ld(rND, 0, isa.T1)
	b.Add(rND, rND, rDU)
	b.Slli(isa.T0, rV, 3)
	b.Add(isa.T0, isa.T0, rDist)
	b.Ld(rDV, 0, isa.T0)
	b.Bge(rND, rDV, "eskip") // relaxation check: data dependent
	b.St(rND, 0, isa.T0)
	b.Li(rChanged, 1)
	b.Label("eskip")
	b.Addi(rE, rE, 1)
	b.J("eloop")
	b.Label("unext")
	b.Addi(rU, rU, 1)
	b.J("uloop")
	b.Label("check")
	b.Addi(rRound, rRound, 1)
	b.Li(isa.T0, ssspMaxRounds)
	b.Bge(rRound, isa.T0, "out")
	b.Bnez(rChanged, "round")
	b.Label("out")
	emitChecksumLoop(b, distB, n)
	return b.MustProgram()
}

func ssspRef(g *Graph) []uint64 {
	w := edgeWeights(g.M())
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = infDist
	}
	dist[0] = 0
	for round := 0; round < ssspMaxRounds; round++ {
		changed := false
		for u := 0; u < g.N; u++ {
			du := dist[u]
			if du == infDist {
				continue
			}
			for e := g.Row[u]; e < g.Row[u+1]; e++ {
				v := g.Col[e]
				nd := du + w[e]
				if nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// ----------------------------------------------------------------- pr ---

const (
	prRounds = 6
	prBase   = uint64(1) << 16
	prK      = 9830 // (1 - 0.85) * 2^16
	prAlpha  = 870  // 0.85 * 2^10
	prShift  = 10
)

func buildPR(scale int) *isa.Program {
	n, deg := graphScale(scale)
	g := RandomGraph(n, deg, graphSeed)
	b := asm.NewBuilder("pr")
	l := newLayout()
	rowB, colB := emitGraph(b, l, g)
	rankB := l.alloc(n)
	contribB := l.alloc(n)
	init := make([]uint64, n)
	for i := range init {
		init[i] = prBase
	}
	emitArray(b, rankB, init)

	const (
		rRow, rCol, rRank, rContrib, rN = isa.S0, isa.S2, isa.S3, isa.S4, isa.S5
		rRound                          = isa.T5
		rU, rE, rEE, rV, rSum, rDeg     = isa.A0, isa.A1, isa.A2, isa.A3, isa.A4, isa.A5
	)
	b.Li(rRow, int64(rowB))
	b.Li(rCol, int64(colB))
	b.Li(rRank, int64(rankB))
	b.Li(rContrib, int64(contribB))
	b.Li(rN, int64(n))
	b.Li(rRound, 0)
	b.Label("round")
	// contrib[v] = rank[v] / max(deg(v), 1)
	b.Li(rU, 0)
	b.Label("cloop")
	b.Bge(rU, rN, "accphase")
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T1, isa.T0, rRow)
	b.Ld(rE, 0, isa.T1)
	b.Ld(rEE, 8, isa.T1)
	b.Sub(rDeg, rEE, rE)
	b.Li(isa.T2, 1)
	b.Max(rDeg, rDeg, isa.T2)
	b.Add(isa.T1, isa.T0, rRank)
	b.Ld(rSum, 0, isa.T1)
	b.Div(rSum, rSum, rDeg)
	b.Add(isa.T1, isa.T0, rContrib)
	b.St(rSum, 0, isa.T1)
	b.Addi(rU, rU, 1)
	b.J("cloop")
	b.Label("accphase")
	b.Li(rU, 0)
	b.Label("uloop")
	b.Bge(rU, rN, "check")
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T1, isa.T0, rRow)
	b.Ld(rE, 0, isa.T1)
	b.Ld(rEE, 8, isa.T1)
	b.Li(rSum, 0)
	b.Label("eloop")
	b.Bge(rE, rEE, "store")
	b.Slli(isa.T1, rE, 3)
	b.Add(isa.T1, isa.T1, rCol)
	b.Ld(rV, 0, isa.T1)
	b.Slli(isa.T1, rV, 3)
	b.Add(isa.T1, isa.T1, rContrib)
	b.Ld(isa.T2, 0, isa.T1)
	b.Add(rSum, rSum, isa.T2)
	b.Addi(rE, rE, 1)
	b.J("eloop")
	b.Label("store")
	b.Li(isa.T2, prAlpha)
	b.Mul(rSum, rSum, isa.T2)
	b.Srli(rSum, rSum, prShift)
	b.Addi(rSum, rSum, prK)
	b.Add(isa.T1, isa.T0, rRank)
	b.St(rSum, 0, isa.T1)
	b.Addi(rU, rU, 1)
	b.J("uloop")
	b.Label("check")
	b.Addi(rRound, rRound, 1)
	b.Li(isa.T0, prRounds)
	b.Blt(rRound, isa.T0, "round")
	emitChecksumLoop(b, rankB, n)
	return b.MustProgram()
}

func prRef(g *Graph) []uint64 {
	rank := make([]uint64, g.N)
	contrib := make([]uint64, g.N)
	for i := range rank {
		rank[i] = prBase
	}
	for round := 0; round < prRounds; round++ {
		for v := 0; v < g.N; v++ {
			d := g.Deg(v)
			if d == 0 {
				d = 1
			}
			contrib[v] = rank[v] / d
		}
		for u := 0; u < g.N; u++ {
			var sum uint64
			for e := g.Row[u]; e < g.Row[u+1]; e++ {
				sum += contrib[g.Col[e]]
			}
			rank[u] = sum*prAlpha>>prShift + prK
		}
	}
	return rank
}

// ----------------------------------------------------------------- tc ---

func buildTC(scale int) *isa.Program {
	n, deg := graphScale(scale)
	g := RandomGraph(n, deg, graphSeed)
	b := asm.NewBuilder("tc")
	l := newLayout()
	rowB, colB := emitGraph(b, l, g)
	resultB := l.alloc(1)

	const (
		rRow, rCol, rN       = isa.S0, isa.S2, isa.S5
		rU, rE1, rE1E, rV    = isa.A0, isa.A1, isa.A2, isa.A3
		rA, rC, rCount       = isa.A4, isa.A5, isa.A7
		rI, rIEnd, rJ, rJEnd = isa.T3, isa.T4, isa.T5, isa.T6
	)
	b.Li(rRow, int64(rowB))
	b.Li(rCol, int64(colB))
	b.Li(rN, int64(n))
	b.Li(rCount, 0)
	b.Li(rU, 0)
	b.Label("uloop")
	b.Bge(rU, rN, "done")
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T0, isa.T0, rRow)
	b.Ld(rE1, 0, isa.T0)
	b.Ld(rE1E, 8, isa.T0)
	b.Label("e1loop")
	b.Bge(rE1, rE1E, "unext")
	b.Slli(isa.T0, rE1, 3)
	b.Add(isa.T0, isa.T0, rCol)
	b.Ld(rV, 0, isa.T0)
	b.Bge(rU, rV, "e1next") // consider each edge once (u < v)
	// Two-pointer intersection of adj(u) and adj(v), counting w > v.
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T0, isa.T0, rRow)
	b.Ld(rI, 0, isa.T0)
	b.Ld(rIEnd, 8, isa.T0)
	b.Slli(isa.T0, rV, 3)
	b.Add(isa.T0, isa.T0, rRow)
	b.Ld(rJ, 0, isa.T0)
	b.Ld(rJEnd, 8, isa.T0)
	b.Label("tp")
	b.Bge(rI, rIEnd, "e1next")
	b.Bge(rJ, rJEnd, "e1next")
	b.Slli(isa.T0, rI, 3)
	b.Add(isa.T0, isa.T0, rCol)
	b.Ld(rA, 0, isa.T0)
	b.Slli(isa.T0, rJ, 3)
	b.Add(isa.T0, isa.T0, rCol)
	b.Ld(rC, 0, isa.T0)
	b.Blt(rA, rC, "inci") // comparison chain: data dependent
	b.Blt(rC, rA, "incj")
	b.Slt(isa.T0, rV, rA) // common neighbour; count when w > v
	b.Add(rCount, rCount, isa.T0)
	b.Addi(rI, rI, 1)
	b.Addi(rJ, rJ, 1)
	b.J("tp")
	b.Label("inci")
	b.Addi(rI, rI, 1)
	b.J("tp")
	b.Label("incj")
	b.Addi(rJ, rJ, 1)
	b.J("tp")
	b.Label("e1next")
	b.Addi(rE1, rE1, 1)
	b.J("e1loop")
	b.Label("unext")
	b.Addi(rU, rU, 1)
	b.J("uloop")
	b.Label("done")
	b.Li(isa.T0, int64(resultB))
	b.St(rCount, 0, isa.T0)
	emitChecksumLoop(b, resultB, 1)
	return b.MustProgram()
}

func tcRef(g *Graph) []uint64 {
	var count uint64
	for u := 0; u < g.N; u++ {
		for e := g.Row[u]; e < g.Row[u+1]; e++ {
			v := g.Col[e]
			if uint64(u) >= v {
				continue
			}
			i, iend := g.Row[u], g.Row[u+1]
			j, jend := g.Row[v], g.Row[v+1]
			for i < iend && j < jend {
				a, c := g.Col[i], g.Col[j]
				switch {
				case a < c:
					i++
				case c < a:
					j++
				default:
					if a > v {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return []uint64{count}
}

// ----------------------------------------------------------------- bc ---

func buildBC(scale int) *isa.Program {
	n, deg := graphScale(scale)
	g := RandomGraph(n, deg, graphSeed)
	b := asm.NewBuilder("bc")
	l := newLayout()
	rowB, colB := emitGraph(b, l, g)
	depthB := l.alloc(n)
	sigmaB := l.alloc(n)
	deltaB := l.alloc(n)
	queueB := l.alloc(n)
	depth0 := make([]uint64, n)
	for i := range depth0 {
		depth0[i] = infDist
	}
	depth0[0] = 0
	emitArray(b, depthB, depth0)
	emitArray(b, sigmaB, append([]uint64{1}, make([]uint64, n-1)...))

	const (
		rRow, rCol, rDepth, rSigma = isa.S0, isa.S2, isa.S3, isa.S4
		rDelta, rQueue             = isa.S6, isa.S7
		rHead, rTail               = isa.T3, isa.T4
		rU, rE, rEE, rV            = isa.A0, isa.A1, isa.A2, isa.A3
		rDU, rDV, rAcc             = isa.A4, isa.A5, isa.A6
		rInf                       = isa.A7
	)
	b.Li(rRow, int64(rowB))
	b.Li(rCol, int64(colB))
	b.Li(rDepth, int64(depthB))
	b.Li(rSigma, int64(sigmaB))
	b.Li(rDelta, int64(deltaB))
	b.Li(rQueue, int64(queueB))
	b.Li(rInf, int64(infDist))
	b.St(isa.Zero, 0, rQueue)
	b.Li(rHead, 0)
	b.Li(rTail, 1)
	// Forward BFS computing depth and sigma (shortest-path counts).
	b.Label("fwd")
	b.Bge(rHead, rTail, "bwdinit")
	b.Slli(isa.T0, rHead, 3)
	b.Add(isa.T0, isa.T0, rQueue)
	b.Ld(rU, 0, isa.T0)
	b.Addi(rHead, rHead, 1)
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T1, isa.T0, rDepth)
	b.Ld(rDU, 0, isa.T1)
	b.Add(isa.T1, isa.T0, rRow)
	b.Ld(rE, 0, isa.T1)
	b.Ld(rEE, 8, isa.T1)
	b.Label("fedge")
	b.Bge(rE, rEE, "fwd")
	b.Slli(isa.T0, rE, 3)
	b.Add(isa.T0, isa.T0, rCol)
	b.Ld(rV, 0, isa.T0)
	b.Slli(isa.T2, rV, 3)
	b.Add(isa.T0, isa.T2, rDepth)
	b.Ld(rDV, 0, isa.T0)
	b.Bne(rDV, rInf, "notnew")
	// First visit: set depth, enqueue.
	b.Addi(rDV, rDU, 1)
	b.St(rDV, 0, isa.T0)
	b.Slli(isa.T1, rTail, 3)
	b.Add(isa.T1, isa.T1, rQueue)
	b.St(rV, 0, isa.T1)
	b.Addi(rTail, rTail, 1)
	b.Label("notnew")
	b.Addi(isa.T1, rDU, 1)
	b.Bne(rDV, isa.T1, "fnext")
	// Shortest-path edge: sigma[v] += sigma[u]. T2 still holds v*8.
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T0, isa.T0, rSigma)
	b.Ld(isa.T1, 0, isa.T0)
	b.Add(isa.T0, isa.T2, rSigma)
	b.Ld(isa.T5, 0, isa.T0)
	b.Add(isa.T5, isa.T5, isa.T1)
	b.St(isa.T5, 0, isa.T0)
	b.Label("fnext")
	b.Addi(rE, rE, 1)
	b.J("fedge")

	// Backward pass: walk the BFS queue in reverse order, accumulating
	// the Brandes dependency in 16.16 fixed point:
	// delta[u] = sum over depth-(du+1) neighbours v of
	//            sigma[u] * (FIX + delta[v]) / sigma[v].
	const rIdx = isa.T5
	b.Label("bwdinit")
	b.Addi(rIdx, rTail, -1)
	b.Label("bwd")
	b.Blt(rIdx, isa.Zero, "bdone")
	b.Slli(isa.T0, rIdx, 3)
	b.Add(isa.T0, isa.T0, rQueue)
	b.Ld(rU, 0, isa.T0)
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T1, isa.T0, rDepth)
	b.Ld(rDU, 0, isa.T1)
	b.Add(isa.T1, isa.T0, rRow)
	b.Ld(rE, 0, isa.T1)
	b.Ld(rEE, 8, isa.T1)
	b.Li(rAcc, 0)
	b.Label("bedge")
	b.Bge(rE, rEE, "bstore")
	b.Slli(isa.T0, rE, 3)
	b.Add(isa.T0, isa.T0, rCol)
	b.Ld(rV, 0, isa.T0)
	b.Slli(isa.T2, rV, 3)
	b.Add(isa.T0, isa.T2, rDepth)
	b.Ld(rDV, 0, isa.T0)
	b.Addi(isa.T1, rDU, 1)
	b.Bne(rDV, isa.T1, "bnext")
	b.Add(isa.T0, isa.T2, rDelta)
	b.Ld(isa.T6, 0, isa.T0) // delta[v]
	b.Li(isa.T1, int64(bcFix))
	b.Add(isa.T6, isa.T6, isa.T1)
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T0, isa.T0, rSigma)
	b.Ld(isa.T1, 0, isa.T0) // sigma[u]
	b.Mul(isa.T6, isa.T6, isa.T1)
	b.Add(isa.T0, isa.T2, rSigma)
	b.Ld(isa.T1, 0, isa.T0) // sigma[v]
	b.Div(isa.T6, isa.T6, isa.T1)
	b.Add(rAcc, rAcc, isa.T6)
	b.Label("bnext")
	b.Addi(rE, rE, 1)
	b.J("bedge")
	b.Label("bstore")
	b.Slli(isa.T0, rU, 3)
	b.Add(isa.T0, isa.T0, rDelta)
	b.St(rAcc, 0, isa.T0)
	b.Addi(rIdx, rIdx, -1)
	b.J("bwd")
	b.Label("bdone")
	emitChecksumLoop(b, deltaB, n)
	return b.MustProgram()
}

// bcRef mirrors buildBC: forward BFS with path counting, then the reverse
// fixed-point dependency accumulation.
func bcRef(g *Graph) []uint64 {
	depth := make([]uint64, g.N)
	sigma := make([]uint64, g.N)
	delta := make([]uint64, g.N)
	for i := range depth {
		depth[i] = infDist
	}
	depth[0] = 0
	sigma[0] = 1
	queue := []uint64{0}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := depth[u]
		for e := g.Row[u]; e < g.Row[u+1]; e++ {
			v := g.Col[e]
			if depth[v] == infDist {
				depth[v] = du + 1
				queue = append(queue, v)
			}
			if depth[v] == du+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for idx := len(queue) - 1; idx >= 0; idx-- {
		u := queue[idx]
		du := depth[u]
		var acc uint64
		for e := g.Row[u]; e < g.Row[u+1]; e++ {
			v := g.Col[e]
			if depth[v] == du+1 {
				acc += sigma[u] * (bcFix + delta[v]) / sigma[v]
			}
		}
		delta[u] = acc
	}
	return delta
}
