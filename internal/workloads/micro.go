package workloads

import (
	"mssr/internal/asm"
	"mssr/internal/isa"
)

// Variant selects the Listing 1 microbenchmark variation (§2.2.4).
type Variant int

// Microbenchmark variations.
const (
	// VariantNested: Br1 tests data1 (derived from data2, so available a
	// few cycles later) while the inner Br2 tests data2. The younger Br2
	// resolves first, so a spurious inner misprediction precedes the
	// overriding outer one — the paper's hardware-induced multi-stream
	// scenario.
	VariantNested Variant = iota
	// VariantLinear: the branch inputs are swapped, so Br1 resolves
	// before Br2 and mispredictions occur in program order — the
	// software-induced scenario.
	VariantLinear
)

func (v Variant) String() string {
	if v == VariantNested {
		return "nested-mispred"
	}
	return "linear-mispred"
}

const (
	microArrWords = 256
	// calc1Rounds/calc2Rounds size the paper's "compute-intensive"
	// kernels. They are deliberately large: the control-dependent regions
	// must be long enough that the corrected stream cannot refill past M2
	// before an overriding branch resolves (making older squashed streams
	// valuable), and the loop's static footprint must exceed the Register
	// Integration table so its low-associativity configurations conflict,
	// as in the paper's §2.2.4 study.
	calc1Rounds = 3
	calc2Rounds = 1
)

// emitMicroCalc1 inlines rd = calc1(rd): a long dependent ALU chain.
func emitMicroCalc1(b *asm.Builder, rd, tmp isa.Reg) {
	for r := 0; r < calc1Rounds; r++ {
		b.Slli(tmp, rd, int64(2+r%5))
		b.Add(rd, rd, tmp)
		b.Xori(rd, rd, int64(0x2a+r*17))
		b.Srli(tmp, rd, int64(3+r%7))
		b.Add(rd, rd, tmp)
	}
}

// microCalc1 is the Go reference of emitMicroCalc1.
func microCalc1(x uint64) uint64 {
	for r := 0; r < calc1Rounds; r++ {
		x += x << (2 + r%5)
		x ^= uint64(0x2a + r*17)
		x += x >> (3 + r%7)
	}
	return x
}

// emitMicroCalc2 inlines rd = calc2(rs): the CI-tail compute kernel whose
// multiplies give squash reuse real latency to save.
func emitMicroCalc2(b *asm.Builder, rd, rs, tmp isa.Reg) {
	b.Mul(rd, rs, rs)
	b.Add(rd, rd, rs)
	for r := 0; r < calc2Rounds; r++ {
		b.Srli(tmp, rd, int64(7+r*2))
		b.Xor(rd, rd, tmp)
		b.Li(tmp, k2+int64(r)*16)
		b.Mul(rd, rd, tmp)
	}
	b.Srli(tmp, rd, 9)
	b.Xor(rd, rd, tmp)
	b.Addi(rd, rd, 13)
}

// microCalc2 is the Go reference of emitMicroCalc2.
func microCalc2(x uint64) uint64 {
	y := x*x + x
	for r := 0; r < calc2Rounds; r++ {
		y ^= y >> (7 + r*2)
		y *= uint64(int64(k2) + int64(r)*16)
	}
	y ^= y >> 9
	return y + 13
}

// Listing1 builds the paper's Listing 1 microbenchmark:
//
//	for i in 0..iters:
//	    data2 = hash(i)
//	    data1 = mix(data2)            // short dependent derivation
//	    Br1: if cond1 & 1:
//	        Br2: if cond2 & 2:
//	            data2 = calc1(data2)  // compute-intensive kernel
//	        M1: data1 = calc1(data1)
//	    M2: t0 = calc2(i); t1 = calc2(data1); t2 = calc2(data2)
//	    arr[i % 256] = t0 + t1 + t2
//
// with (cond1, cond2) = (data1, data2) for nested-mispred and
// (data2, data1) for linear-mispred. The short data1 derivation makes Br1
// resolve only a few cycles after Br2, producing the out-of-order
// (nested) or in-order (linear) misprediction patterns of §2.2.4. The
// tail after M2 is the CI region: t0 is always CIDI, t2 is dynamically
// CIDI when Br2 falls through, and t1 is data dependent whenever Br1 was
// taken.
func Listing1(v Variant, iters int) *isa.Program {
	b := asm.NewBuilder(v.String())
	const (
		rI     = isa.S1
		rN     = isa.S2
		rSum   = isa.S3
		rArr   = isa.S0
		rData1 = isa.A1
		rData2 = isa.A2
		rT0    = isa.A3
		rT1    = isa.A4
		rT2    = isa.A5
		rC     = isa.A6
		rTmp   = isa.T5
		rTmp2  = isa.T6
	)
	b.Li(rArr, int64(dataBase))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Label("loop")
	emitHash(b, rData2, rI, rTmp)
	// data1 = mix(data2): a short dependent derivation, so Br1's input
	// arrives only ~5 cycles after Br2's.
	b.Li(rTmp, k1)
	b.Mul(rData1, rData2, rTmp)
	b.Srli(rTmp, rData1, 29)
	b.Xor(rData1, rData1, rTmp)
	// Br1.
	if v == VariantNested {
		b.Andi(rC, rData1, 0x1)
	} else {
		b.Andi(rC, rData2, 0x1)
	}
	b.Beqz(rC, "M2")
	// Br2.
	if v == VariantNested {
		b.Andi(rC, rData2, 0x2)
	} else {
		b.Andi(rC, rData1, 0x2)
	}
	b.Beqz(rC, "M1")
	emitMicroCalc1(b, rData2, rTmp)
	b.Label("M1")
	emitMicroCalc1(b, rData1, rTmp)
	b.Label("M2")
	// Potential CIDI operations.
	emitMicroCalc2(b, rT0, rI, rTmp)
	emitMicroCalc2(b, rT1, rData1, rTmp)
	emitMicroCalc2(b, rT2, rData2, rTmp)
	b.Add(rT0, rT0, rT1)
	b.Add(rT0, rT0, rT2)
	// arr[i % 256] = t0 + t1 + t2; the checksum folds every write.
	b.Andi(rTmp2, rI, microArrWords-1)
	b.Slli(rTmp2, rTmp2, 3)
	b.Add(rTmp2, rTmp2, rArr)
	b.St(rT0, 0, rTmp2)
	b.Xor(rSum, rSum, rT0)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	// Publish the checksum for the test suite.
	b.Li(rTmp, int64(checkWord))
	b.St(rSum, 0, rTmp)
	b.Halt()
	return b.MustProgram()
}

// microMix is the Go reference of the data1 derivation.
func microMix(x uint64) uint64 {
	y := x * 0x9e3779b97f4a7c15
	return y ^ y>>29
}

// Listing1Ref is the Go reference implementation; it returns the checksum
// the program stores at CheckAddr.
func Listing1Ref(v Variant, iters int) uint64 {
	var sum uint64
	for i := 0; i < iters; i++ {
		data2 := splitmix(uint64(i))
		data1 := microMix(data2)
		cond1, cond2 := data1, data2
		if v == VariantLinear {
			cond1, cond2 = data2, data1
		}
		if cond1&1 != 0 {
			if cond2&2 != 0 {
				data2 = microCalc1(data2)
			}
			data1 = microCalc1(data1)
		}
		t := microCalc2(uint64(i)) + microCalc2(data1) + microCalc2(data2)
		sum ^= t
	}
	return sum
}
