package workloads

import (
	"mssr/internal/asm"
	"mssr/internal/isa"
)

// This file adds the two SPECint behaviours the other synthetics do not
// cover: indirect-branch-heavy dispatch (perlbench: a bytecode
// interpreter whose jalr targets are data dependent) and deep recursion
// (exchange2: permutation enumeration stressing the return address stack
// and stack memory traffic).

// ---------------------------------------------------------- perlbench ---

const (
	perlCodeWords    = 1024
	perlHandlers     = 4
	perlHandlerInstr = 4 // instructions per handler (fixed stride)
)

// buildPerlbench builds a dispatch-loop interpreter: each iteration loads
// a pseudo-random opcode and jumps through a computed jalr into one of
// four fixed-stride handlers. The dispatch target is data dependent, so
// the indirect predictor mispredicts constantly — perlbench's signature
// bottleneck. Two-pass build: the first pass resolves the handler base.
func buildPerlbench(scale int) *isa.Program {
	iters := scaledIters(10000, scale)
	code := hashedWords(perlCodeWords, 0x9e71)
	for i := range code {
		code[i] &= perlHandlers - 1
	}
	build := func(handlerBase int64) *isa.Program {
		b := asm.NewBuilder("perlbench")
		l := newLayout()
		codeB := l.alloc(perlCodeWords)
		emitArray(b, codeB, code)
		const (
			rI, rN, rSum, rCode, rHB = isa.S1, isa.S2, isa.S3, isa.S0, isa.S4
			rOp                      = isa.A1
		)
		b.Li(rHB, handlerBase)
		b.Li(rCode, int64(codeB))
		b.Li(rI, 0)
		b.Li(rN, int64(iters))
		b.Li(rSum, 0)
		b.Label("loop")
		b.Andi(isa.T0, rI, perlCodeWords-1)
		b.Slli(isa.T0, isa.T0, 3)
		b.Add(isa.T0, isa.T0, rCode)
		b.Ld(rOp, 0, isa.T0)   // opcode: data dependent
		b.Slli(isa.T1, rOp, 4) // x16 bytes per handler
		b.Add(isa.T1, isa.T1, rHB)
		b.Jalr(isa.Zero, isa.T1, 0) // computed dispatch
		b.Label("h0")               // sum += i + 1
		b.Addi(rSum, rSum, 1)
		b.Add(rSum, rSum, rI)
		b.Nop()
		b.J("next")
		b.Label("h1") // sum ^= i<<1
		b.Slli(isa.T2, rI, 1)
		b.Xor(rSum, rSum, isa.T2)
		b.Nop()
		b.J("next")
		b.Label("h2") // sum += sum>>3
		b.Srli(isa.T2, rSum, 3)
		b.Add(rSum, rSum, isa.T2)
		b.Nop()
		b.J("next")
		b.Label("h3") // sum = sum*5
		b.Slli(isa.T2, rSum, 2)
		b.Add(rSum, rSum, isa.T2)
		b.Nop()
		b.J("next")
		b.Label("next")
		b.Addi(rI, rI, 1)
		b.Blt(rI, rN, "loop")
		emitStoreChecksum(b, rSum)
		return b.MustProgram()
	}
	p := build(0)
	p = build(int64(p.Symbols["h0"]))
	if got := p.Symbols["h1"] - p.Symbols["h0"]; got != perlHandlerInstr*isa.InstrBytes {
		panic("workloads: perlbench handler stride broken")
	}
	return p
}

func perlbenchRef(scale int) uint64 {
	iters := scaledIters(10000, scale)
	code := hashedWords(perlCodeWords, 0x9e71)
	for i := range code {
		code[i] &= perlHandlers - 1
	}
	var sum uint64
	for i := 0; i < iters; i++ {
		switch code[i&(perlCodeWords-1)] {
		case 0:
			sum += 1 + uint64(i)
		case 1:
			sum ^= uint64(i) << 1
		case 2:
			sum += sum >> 3
		case 3:
			sum += sum << 2
		}
	}
	return sum
}

// ---------------------------------------------------------- exchange2 ---

const (
	exchangeK     = 6
	exchangeStack = 0x0008_0000
)

// buildExchange2 enumerates all K! permutations recursively (swap, recurse,
// swap back), counting leaves whose fold satisfies a branchy predicate:
// deep call chains with spilled return addresses stress the RAS exactly
// the way exchange2's recursive digit placement does.
func buildExchange2(scale int) *isa.Program {
	rounds := scale * 3
	if scale < 1 {
		rounds = 1
	}
	b := asm.NewBuilder("exchange2")
	l := newLayout()
	arrB := l.alloc(exchangeK)
	init := make([]uint64, exchangeK)
	for i := range init {
		init[i] = uint64(i + 1)
	}
	emitArray(b, arrB, init)

	const (
		rArr, rK, rCount, rCk, rRounds = isa.S0, isa.S1, isa.S3, isa.S4, isa.S5
	)
	b.Li(isa.SP, exchangeStack)
	b.Li(rArr, int64(arrB))
	b.Li(rK, exchangeK)
	b.Li(rCount, 0)
	b.Li(rCk, 0)
	b.Li(rRounds, int64(rounds))
	b.Label("outer")
	b.Li(isa.A0, 0)
	b.Jal(isa.RA, "perm")
	b.Addi(rRounds, rRounds, -1)
	b.Bnez(rRounds, "outer")
	b.Xor(rCount, rCount, rCk)
	emitStoreChecksum(b, rCount)

	// perm(level in a0): enumerate permutations of arr[level..K).
	b.Label("perm")
	b.Beq(isa.A0, rK, "leaf")
	b.Addi(isa.SP, isa.SP, -24)
	b.St(isa.RA, 0, isa.SP)
	b.St(isa.A0, 16, isa.SP) // level
	b.Mv(isa.T0, isa.A0)     // j = level
	b.Label("floop")
	b.Bge(isa.T0, rK, "fend")
	b.St(isa.T0, 8, isa.SP) // save j
	// swap arr[level], arr[j]
	b.Ld(isa.T1, 16, isa.SP)
	b.Slli(isa.T2, isa.T1, 3)
	b.Add(isa.T2, isa.T2, rArr)
	b.Slli(isa.T3, isa.T0, 3)
	b.Add(isa.T3, isa.T3, rArr)
	b.Ld(isa.T4, 0, isa.T2)
	b.Ld(isa.T5, 0, isa.T3)
	b.St(isa.T5, 0, isa.T2)
	b.St(isa.T4, 0, isa.T3)
	// recurse
	b.Ld(isa.A0, 16, isa.SP)
	b.Addi(isa.A0, isa.A0, 1)
	b.Jal(isa.RA, "perm")
	// swap back
	b.Ld(isa.T0, 8, isa.SP)
	b.Ld(isa.T1, 16, isa.SP)
	b.Slli(isa.T2, isa.T1, 3)
	b.Add(isa.T2, isa.T2, rArr)
	b.Slli(isa.T3, isa.T0, 3)
	b.Add(isa.T3, isa.T3, rArr)
	b.Ld(isa.T4, 0, isa.T2)
	b.Ld(isa.T5, 0, isa.T3)
	b.St(isa.T5, 0, isa.T2)
	b.St(isa.T4, 0, isa.T3)
	b.Addi(isa.T0, isa.T0, 1)
	b.J("floop")
	b.Label("fend")
	b.Ld(isa.RA, 0, isa.SP)
	b.Addi(isa.SP, isa.SP, 24)
	b.Ret()

	// leaf: fold the permutation and count the branchy predicate.
	b.Label("leaf")
	b.Li(isa.T0, 0) // idx
	b.Li(isa.T1, 0) // fold
	b.Label("lloop")
	b.Bge(isa.T0, rK, "ldone")
	b.Slli(isa.T2, isa.T0, 3)
	b.Add(isa.T2, isa.T2, rArr)
	b.Ld(isa.T3, 0, isa.T2)
	b.Slli(isa.T4, isa.T1, 1)
	b.Add(isa.T1, isa.T4, isa.T3) // fold = fold*2 + v
	b.Addi(isa.T0, isa.T0, 1)
	b.J("lloop")
	b.Label("ldone")
	b.Andi(isa.T2, isa.T1, 3)
	b.Bnez(isa.T2, "lskip") // data-dependent count predicate
	b.Addi(rCount, rCount, 1)
	b.Label("lskip")
	b.Xor(rCk, rCk, isa.T1)
	b.Ret()
	return b.MustProgram()
}

func exchange2Ref(scale int) uint64 {
	rounds := scale * 3
	if scale < 1 {
		rounds = 1
	}
	arr := make([]uint64, exchangeK)
	for i := range arr {
		arr[i] = uint64(i + 1)
	}
	var count, ck uint64
	var perm func(level int)
	perm = func(level int) {
		if level == exchangeK {
			var fold uint64
			for _, v := range arr {
				fold = fold*2 + v
			}
			if fold&3 == 0 {
				count++
			}
			ck ^= fold
			return
		}
		for j := level; j < exchangeK; j++ {
			arr[level], arr[j] = arr[j], arr[level]
			perm(level + 1)
			arr[level], arr[j] = arr[j], arr[level]
		}
	}
	for r := 0; r < rounds; r++ {
		perm(0)
	}
	return count ^ ck
}
