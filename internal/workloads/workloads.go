// Package workloads provides the synthetic benchmark programs used by the
// evaluation, written in the repository's ISA via the asm builder:
//
//   - The two microbenchmark variations of the paper's Listing 1
//     (nested-mispred and linear-mispred) driving Table 1 and Figure 3.
//   - GAP-style graph kernels (bc, bfs, cc, pr, sssp, tc) over synthetic
//     uniform-random graphs, standing in for the GAP suite runs
//     (-g 12 -n 128, scaled down to simulation-friendly sizes).
//   - SPEC-like synthetic kernels that recreate the dominant behaviours of
//     the SPECint2006/2017 benchmarks the paper selects (>3% branch
//     misprediction rate), e.g. hash-driven hard-to-predict branches for
//     astar/gobmk/leela, pointer-chasing memory boundedness for
//     mcf/omnetpp, and store-load aliasing for xz.
//
// Every workload also has a Go reference function computing its expected
// result, used by the test suite to validate the assembly against an
// independent implementation.
package workloads

import (
	"fmt"
	"sort"

	"mssr/internal/isa"
)

// Workload is one runnable benchmark.
type Workload struct {
	// Name is the benchmark identifier (matches the paper's figures).
	Name string
	// Suite is one of "micro", "gap", "spec2006", "spec2017".
	Suite string
	// Description explains what behaviour of the original benchmark the
	// kernel recreates.
	Description string
	// Build constructs the program at the standard evaluation scale.
	Build func() *isa.Program
	// BuildScaled constructs the program at a custom scale factor
	// (1 = standard; tests use smaller).
	BuildScaled func(scale int) *isa.Program
}

// All returns every workload, ordered by suite then name.
func All() []Workload {
	ws := []Workload{
		{
			Name:  "nested-mispred",
			Suite: "micro",
			Description: "Listing 1 with Br1 dependent on data1=hash(data2): the inner " +
				"branch resolves first, producing hardware-induced nested mispredictions",
			BuildScaled: func(s int) *isa.Program { return Listing1(VariantNested, microIters(s)) },
		},
		{
			Name:  "linear-mispred",
			Suite: "micro",
			Description: "Listing 1 with swapped branch inputs so Br1 and Br2 resolve " +
				"in order (software-induced multi-stream reconvergence)",
			BuildScaled: func(s int) *isa.Program { return Listing1(VariantLinear, microIters(s)) },
		},
		{Name: "bc", Suite: "gap", Description: "betweenness-centrality-style BFS plus dependency accumulation", BuildScaled: buildBC},
		{Name: "bfs", Suite: "gap", Description: "breadth-first search with a data-dependent visited check", BuildScaled: buildBFS},
		{Name: "cc", Suite: "gap", Description: "connected components via label propagation", BuildScaled: buildCC},
		{Name: "pr", Suite: "gap", Description: "PageRank power iteration (fixed point); compute-regular, few mispredicts", BuildScaled: buildPR},
		{Name: "sssp", Suite: "gap", Description: "Bellman-Ford relaxations with a data-dependent improve check", BuildScaled: buildSSSP},
		{Name: "tc", Suite: "gap", Description: "triangle counting via sorted adjacency intersection", BuildScaled: buildTC},
		{Name: "astar", Suite: "spec2006", Description: "open-list minimum selection with hash-perturbed costs and a CI update tail", BuildScaled: buildAstar},
		{Name: "gobmk", Suite: "spec2006", Description: "board pattern matching with nested data-dependent condition chains", BuildScaled: buildGobmk},
		{Name: "mcf", Suite: "spec2006", Description: "pointer chasing over a large arc list; memory bound, so reuse helps little", BuildScaled: buildMcf},
		{Name: "perlbench", Suite: "spec2006", Description: "bytecode-interpreter dispatch loop via computed jumps; indirect-branch bound", BuildScaled: buildPerlbench},
		{Name: "sjeng", Suite: "spec2006", Description: "game-tree evaluation with nested hashed branches", BuildScaled: buildSjeng},
		{Name: "bzip2", Suite: "spec2006", Description: "run-length scanning with data-dependent match branches", BuildScaled: buildBzip2},
		{Name: "leela", Suite: "spec2017", Description: "MCTS-style random descent with hard-to-predict move choices", BuildScaled: buildLeela},
		{Name: "omnetpp", Suite: "spec2017", Description: "event-queue simulation; pointer heavy and memory bound", BuildScaled: buildOmnetpp},
		{Name: "xz", Suite: "spec2017", Description: "LZ-style match/store loop with store-load aliasing (memory-order violations)", BuildScaled: buildXz},
		{Name: "deepsjeng", Suite: "spec2017", Description: "deeper game-tree evaluation with correlated and uncorrelated branches", BuildScaled: buildDeepsjeng},
		{Name: "exchange2", Suite: "spec2017", Description: "recursive permutation enumeration; deep call chains stress the RAS", BuildScaled: buildExchange2},
	}
	for i := range ws {
		bs := ws[i].BuildScaled
		ws[i].Build = func() *isa.Program { return bs(1) }
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Suite != ws[j].Suite {
			return ws[i].Suite < ws[j].Suite
		}
		return ws[i].Name < ws[j].Name
	})
	return ws
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Build constructs the named workload at the given scale factor — the
// registry lookup every entrypoint shares via internal/sim.
func Build(name string, scale int) (*isa.Program, error) {
	w, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return w.BuildScaled(scale), nil
}

// Suite returns all workloads of one suite.
func Suite(suite string) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}

func microIters(scale int) int { return scaledIters(4000, scale) }

// scaledIters maps the workload scale factor to an iteration count: scale
// >= 1 multiplies the standard count; scale < 1 selects a tiny validation
// size used by the cross-engine equivalence tests.
func scaledIters(base, scale int) int {
	if scale < 1 {
		n := base / 16
		if n < 32 {
			n = 32
		}
		return n
	}
	return base * scale
}

// Memory layout bases shared by the kernels. Each kernel keeps its data in
// a private window so programs never overlap themselves.
const (
	dataBase uint64 = 0x0010_0000
)

// checkWord is the address where every workload stores its final checksum;
// the test suite compares it against the Go reference implementation.
const checkWord uint64 = 0x000f_0000

// CheckAddr reports where a workload stores its result checksum.
func CheckAddr() uint64 { return checkWord }

// splitmix is the Go reference of the in-ISA hash the kernels use for
// pseudo-random, branch-predictor-defeating data.
func splitmix(x uint64) uint64 {
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var _ = isa.NumArchRegs
