package workloads

import (
	"sort"

	"mssr/internal/asm"
)

// Graph is a CSR-format directed adjacency structure (symmetrized for the
// undirected kernels). It stands in for the GAP suite's generated graphs.
type Graph struct {
	N   int
	Row []uint64 // length N+1
	Col []uint64 // length M
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.Col) }

// Deg returns vertex u's out-degree.
func (g *Graph) Deg(u int) uint64 { return g.Row[u+1] - g.Row[u] }

// RandomGraph generates a uniform random undirected graph with n vertices
// and roughly n*degree/2 undirected edges (each stored in both
// directions), deduplicated and with sorted adjacency lists — the shape
// GAP's uniform-random generator produces. Deterministic in seed.
func RandomGraph(n, degree int, seed uint64) *Graph {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return splitmix(state)
	}
	edges := n * degree / 2
	for i := 0; i < edges; i++ {
		u := int(next() % uint64(n))
		v := int(next() % uint64(n))
		if u == v {
			continue
		}
		adj[u][v] = true
		adj[v][u] = true
	}
	g := &Graph{N: n, Row: make([]uint64, n+1)}
	for u := 0; u < n; u++ {
		ns := make([]int, 0, len(adj[u]))
		for v := range adj[u] {
			ns = append(ns, v)
		}
		sort.Ints(ns)
		for _, v := range ns {
			g.Col = append(g.Col, uint64(v))
		}
		g.Row[u+1] = uint64(len(g.Col))
	}
	return g
}

// layout assigns consecutive word-aligned array regions starting at
// dataBase, returning base addresses in order.
type layout struct {
	next uint64
}

func newLayout() *layout { return &layout{next: dataBase} }

// alloc reserves words 64-bit slots and returns the base address.
func (l *layout) alloc(words int) uint64 {
	base := l.next
	l.next += uint64(words) * 8
	// Keep regions line-aligned so kernels do not false-share cache lines.
	l.next = (l.next + 63) &^ 63
	return base
}

// emitArray writes vals to the builder's data image at base.
func emitArray(b *asm.Builder, base uint64, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	b.Data(base, vals...)
}

// emitGraph places the CSR arrays and returns their bases.
func emitGraph(b *asm.Builder, l *layout, g *Graph) (rowBase, colBase uint64) {
	rowBase = l.alloc(len(g.Row))
	colBase = l.alloc(len(g.Col) + 1) // +1 so zero-edge graphs still allocate
	emitArray(b, rowBase, g.Row)
	emitArray(b, colBase, g.Col)
	return rowBase, colBase
}

// edgeWeights derives deterministic per-edge weights 1..15 from the edge
// index, matching emitted data and Go references.
func edgeWeights(m int) []uint64 {
	w := make([]uint64, m)
	for i := range w {
		w[i] = splitmix(uint64(i)+0xabcd)%15 + 1
	}
	return w
}

// graphScale maps the workload scale factor to (vertices, degree); scale 1
// is the standard evaluation size (a scaled-down stand-in for GAP's
// -g 12 -n 128).
func graphScale(scale int) (n, degree int) {
	if scale < 1 {
		// Tiny validation size for cross-engine equivalence tests.
		return 48, 6
	}
	n = 256 * scale
	if n > 4096 {
		n = 4096
	}
	return n, 8
}
