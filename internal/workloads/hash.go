package workloads

import (
	"mssr/internal/asm"
	"mssr/internal/isa"
)

// Splitmix64 multiplier constants as signed literals for the li builder.
const (
	k1 = -0x61c8864680b583eb // 0x9e3779b97f4a7c15
	k2 = -0x40a7b892e31b1a47 // 0xbf58476d1ce4e5b9
	k3 = -0x6b2fb644ecceee15 // 0x94d049bb133111eb
)

// emitHash emits rd = splitmix(rs): three multiply-xorshift rounds whose
// low bits defeat the TAGE predictor, recreating the paper's `hash`
// primitive from Listing 1. Clobbers tmp (which must differ from rd).
func emitHash(b *asm.Builder, rd, rs, tmp isa.Reg) {
	if tmp == rd {
		panic("workloads: emitHash tmp must differ from rd")
	}
	b.Li(tmp, k1)
	b.Mul(rd, rs, tmp)
	b.Srli(tmp, rd, 30)
	b.Xor(rd, rd, tmp)
	b.Li(tmp, k2)
	b.Mul(rd, rd, tmp)
	b.Srli(tmp, rd, 27)
	b.Xor(rd, rd, tmp)
	b.Li(tmp, k3)
	b.Mul(rd, rd, tmp)
	b.Srli(tmp, rd, 31)
	b.Xor(rd, rd, tmp)
}

// emitCalc1 emits rd = calc1(rd), the paper's short compute kernel used
// inside the control-dependent regions. Clobbers tmp.
func emitCalc1(b *asm.Builder, rd, tmp isa.Reg) {
	b.Slli(tmp, rd, 2)
	b.Add(rd, rd, tmp)
	b.Xori(rd, rd, 0x2a)
	b.Srli(tmp, rd, 3)
	b.Add(rd, rd, tmp)
}

// calc1 is the Go reference of emitCalc1.
func calc1(x uint64) uint64 {
	x += x << 2
	x ^= 0x2a
	x += x >> 3
	return x
}

// emitCalc2 emits rd = calc2(rs), the compute-intensive kernel of the
// potential-CIDI tail (the multiply makes reuse worth real latency).
// Clobbers tmp; rd must differ from rs and tmp.
func emitCalc2(b *asm.Builder, rd, rs, tmp isa.Reg) {
	if rd == rs || rd == tmp {
		panic("workloads: emitCalc2 register clash")
	}
	b.Mul(rd, rs, rs)
	b.Add(rd, rd, rs)
	b.Srli(tmp, rd, 7)
	b.Xor(rd, rd, tmp)
	b.Addi(rd, rd, 13)
}

// calc2 is the Go reference of emitCalc2.
func calc2(x uint64) uint64 {
	y := x*x + x
	y ^= y >> 7
	return y + 13
}
