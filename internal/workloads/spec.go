package workloads

import (
	"mssr/internal/asm"
	"mssr/internal/isa"
)

// The SPEC-like synthetics recreate the dominant pipeline behaviours of
// the SPECint benchmarks the paper selects (branch misprediction rate
// above 3%): hash-driven hard-to-predict branches with reusable
// control-independent tails, pointer-chasing memory boundedness, and
// store-load aliasing. Each stores a checksum at CheckAddr and has an
// exact Go reference.

// emitStoreChecksum stores rSum to CheckAddr and halts.
func emitStoreChecksum(b *asm.Builder, rSum isa.Reg) {
	b.Li(isa.T0, int64(checkWord))
	b.St(rSum, 0, isa.T0)
	b.Halt()
}

// hashedWords produces n deterministic pseudo-random words.
func hashedWords(n int, salt uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = splitmix(uint64(i) + salt)
	}
	return out
}

// -------------------------------------------------------------- astar ---

const astarCostWords = 64

func buildAstar(scale int) *isa.Program {
	iters := scaledIters(5000, scale)
	b := asm.NewBuilder("astar")
	l := newLayout()
	costB := l.alloc(astarCostWords)
	costs := hashedWords(astarCostWords, 0xa57a)
	for i := range costs {
		costs[i] &= 0xffff
	}
	emitArray(b, costB, costs)

	const (
		rI, rN, rSum, rCost       = isa.S1, isa.S2, isa.S3, isa.S0
		rH, rBest, rBestA, rJ, rC = isa.A1, isa.A2, isa.A3, isa.A4, isa.A5
	)
	b.Li(rCost, int64(costB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Label("loop")
	emitHash(b, rH, rI, isa.T0)
	// Open-list scan: pick the minimum of 8 hashed candidates; each
	// comparison is data dependent and hard to predict.
	b.Li(rBest, 1<<30)
	b.Li(rBestA, 0)
	b.Li(rJ, 0)
	b.Label("scan")
	b.Slli(isa.T0, rJ, 1)
	b.Add(isa.T0, isa.T0, rJ) // j*3
	b.Srl(isa.T1, rH, isa.T0)
	b.Andi(isa.T1, isa.T1, astarCostWords-1)
	b.Slli(isa.T2, isa.T1, 3)
	b.Add(isa.T2, isa.T2, rCost)
	b.Ld(rC, 0, isa.T2)
	b.Bge(rC, rBest, "next") // min-selection: data dependent
	b.Mv(rBest, rC)
	b.Mv(rBestA, isa.T2)
	b.Label("next")
	b.Addi(rJ, rJ, 1)
	b.Slti(isa.T0, rJ, 8)
	b.Bnez(isa.T0, "scan")
	// Expand the chosen node: control-independent compute tail.
	emitCalc2(b, isa.A6, rI, isa.T0)
	b.Andi(isa.T1, isa.A6, 0xff)
	b.Addi(isa.T1, isa.T1, 1)
	b.Add(isa.T1, isa.T1, rBest)
	b.St(isa.T1, 0, rBestA)
	b.Add(rSum, rSum, rBest)
	b.Xor(rSum, rSum, isa.A6)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

func astarRef(scale int) uint64 {
	iters := scaledIters(5000, scale)
	cost := hashedWords(astarCostWords, 0xa57a)
	for i := range cost {
		cost[i] &= 0xffff
	}
	var sum uint64
	for i := 0; i < iters; i++ {
		h := splitmix(uint64(i))
		best := uint64(1 << 30)
		bestJ := 0
		for j := 0; j < 8; j++ {
			idx := int(h >> (j * 3) & (astarCostWords - 1))
			if cost[idx] < best {
				best = cost[idx]
				bestJ = idx
			}
		}
		t := calc2(uint64(i))
		cost[bestJ] = best + t&0xff + 1
		sum += best
		sum ^= t
	}
	return sum
}

// -------------------------------------------------------------- gobmk ---

const gobmkBoardWords = 256

func buildGobmk(scale int) *isa.Program {
	iters := scaledIters(8000, scale)
	b := asm.NewBuilder("gobmk")
	l := newLayout()
	boardB := l.alloc(gobmkBoardWords)
	emitArray(b, boardB, hashedWords(gobmkBoardWords, 0x60b0))

	const (
		rI, rN, rSum, rBoard = isa.S1, isa.S2, isa.S3, isa.S0
		rV, rT               = isa.A1, isa.A2
	)
	b.Li(rBoard, int64(boardB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Label("loop")
	b.Andi(isa.T0, rI, gobmkBoardWords-1)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, rBoard)
	b.Ld(rV, 0, isa.T0)
	b.Add(rV, rV, rI)
	emitHash(b, rV, rV, isa.T0)
	// Pattern-matching condition chain: three nested data-dependent
	// branches over the hashed cell value.
	b.Andi(isa.T0, rV, 1)
	b.Beqz(isa.T0, "p2")
	b.Andi(isa.T0, rV, 2)
	b.Beqz(isa.T0, "p1b")
	b.Addi(rSum, rSum, 3)
	b.J("merge1")
	b.Label("p1b")
	b.Xori(rSum, rSum, 0x55)
	b.Label("merge1")
	b.Srli(isa.T0, rSum, 2)
	b.Add(rSum, rSum, isa.T0)
	b.J("merge2")
	b.Label("p2")
	b.Andi(isa.T0, rV, 4)
	b.Beqz(isa.T0, "merge2")
	b.Addi(rSum, rSum, 7)
	b.Label("merge2")
	// Control-independent evaluation tail.
	emitCalc2(b, rT, rI, isa.T0)
	b.Xor(rSum, rSum, rT)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

func gobmkRef(scale int) uint64 {
	iters := scaledIters(8000, scale)
	board := hashedWords(gobmkBoardWords, 0x60b0)
	var sum uint64
	for i := 0; i < iters; i++ {
		v := splitmix(board[i&(gobmkBoardWords-1)] + uint64(i))
		if v&1 != 0 {
			if v&2 != 0 {
				sum += 3
			} else {
				sum ^= 0x55
			}
			sum += sum >> 2
		} else if v&4 != 0 {
			sum += 7
		}
		sum ^= calc2(uint64(i))
	}
	return sum
}

// ---------------------------------------------------------------- mcf ---

const mcfNodes = 1 << 15 // 32k nodes x 2 arrays x 8B = 512 KB: misses L1

func buildMcf(scale int) *isa.Program {
	iters := scaledIters(20000, scale)
	b := asm.NewBuilder("mcf")
	l := newLayout()
	nextB := l.alloc(mcfNodes)
	valB := l.alloc(mcfNodes)
	emitArray(b, nextB, mcfPermutation())
	emitArray(b, valB, hashedWords(mcfNodes, 0x3cf))

	const (
		rI, rN, rSum, rNext, rVal = isa.S1, isa.S2, isa.S3, isa.S0, isa.S4
		rP, rV                    = isa.A1, isa.A2
	)
	b.Li(rNext, int64(nextB))
	b.Li(rVal, int64(valB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Li(rP, 0)
	b.Label("loop")
	// Serialized pointer chase: the next node index is loaded from the
	// current one; the working set exceeds the L1.
	b.Slli(isa.T0, rP, 3)
	b.Add(isa.T0, isa.T0, rNext)
	b.Ld(rP, 0, isa.T0)
	b.Slli(isa.T0, rP, 3)
	b.Add(isa.T0, isa.T0, rVal)
	b.Ld(rV, 0, isa.T0)
	b.Andi(isa.T1, rV, 1)
	b.Beqz(isa.T1, "other") // arc-cost check: data dependent
	b.Add(rSum, rSum, rV)
	b.J("merge")
	b.Label("other")
	b.Xor(rSum, rSum, rV)
	b.Label("merge")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

// mcfPermutation builds a deterministic single-cycle permutation so the
// chase visits the whole working set.
func mcfPermutation() []uint64 {
	perm := make([]uint64, mcfNodes)
	order := make([]int, mcfNodes)
	for i := range order {
		order[i] = i
	}
	// Fisher-Yates with the deterministic hash.
	for i := mcfNodes - 1; i > 0; i-- {
		j := int(splitmix(uint64(i)+0x9d5) % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	for i := 0; i < mcfNodes; i++ {
		perm[order[i]] = uint64(order[(i+1)%mcfNodes])
	}
	return perm
}

func mcfRef(scale int) uint64 {
	iters := scaledIters(20000, scale)
	next := mcfPermutation()
	val := hashedWords(mcfNodes, 0x3cf)
	var sum uint64
	p := uint64(0)
	for i := 0; i < iters; i++ {
		p = next[p]
		v := val[p]
		if v&1 != 0 {
			sum += v
		} else {
			sum ^= v
		}
	}
	return sum
}

// -------------------------------------------------------------- sjeng ---

func buildSjeng(scale int) *isa.Program {
	return buildTreeEval("sjeng", scaledIters(8000, scale), 2, 0x57e6)
}

func sjengRef(scale int) uint64 { return treeEvalRef(scaledIters(8000, scale), 2, 0x57e6) }

func buildDeepsjeng(scale int) *isa.Program {
	return buildTreeEval("deepsjeng", scaledIters(6000, scale), 3, 0xdee6)
}

func deepsjengRef(scale int) uint64 { return treeEvalRef(scaledIters(6000, scale), 3, 0xdee6) }

// buildTreeEval models game-tree evaluation: `depth` levels of nested
// data-dependent branches over hashed position values, with a
// control-independent scoring tail.
func buildTreeEval(name string, iters, depth int, salt int64) *isa.Program {
	b := asm.NewBuilder(name)
	const (
		rI, rN, rSum = isa.S1, isa.S2, isa.S3
		rH, rT       = isa.A1, isa.A2
	)
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Label("loop")
	b.Add(rH, rI, isa.Zero)
	b.Addi(rH, rH, salt)
	emitHash(b, rH, rH, isa.T0)
	for d := 0; d < depth; d++ {
		lbl := func(s string, k int) string { return s + string(rune('a'+k)) }
		b.Andi(isa.T0, rH, int64(1)<<d)
		b.Beqz(isa.T0, lbl("alt", d))
		b.Addi(rSum, rSum, int64(d)*3+1)
		b.Slli(isa.T1, rSum, 1)
		b.Xor(rSum, rSum, isa.T1)
		b.J(lbl("mrg", d))
		b.Label(lbl("alt", d))
		b.Xori(rSum, rSum, salt&0xff)
		b.Label(lbl("mrg", d))
	}
	// Control-independent scoring.
	emitCalc2(b, rT, rI, isa.T0)
	b.Add(rSum, rSum, rT)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

func treeEvalRef(iters, depth int, salt int64) uint64 {
	var sum uint64
	for i := 0; i < iters; i++ {
		h := splitmix(uint64(i) + uint64(salt))
		for d := 0; d < depth; d++ {
			if h&(1<<d) != 0 {
				sum += uint64(d)*3 + 1
				sum ^= sum << 1
			} else {
				sum ^= uint64(salt) & 0xff
			}
		}
		sum += calc2(uint64(i))
	}
	return sum
}

// -------------------------------------------------------------- bzip2 ---

const bzip2DataWords = 4096

func buildBzip2(scale int) *isa.Program {
	iters := scaledIters(16000, scale)
	b := asm.NewBuilder("bzip2")
	l := newLayout()
	dataB := l.alloc(bzip2DataWords)
	data := hashedWords(bzip2DataWords, 0xb21b)
	for i := range data {
		data[i] &= 3 // small alphabet: runs occur
	}
	emitArray(b, dataB, data)

	const (
		rI, rN, rSum, rData = isa.S1, isa.S2, isa.S3, isa.S0
		rPrev, rRun, rV     = isa.A1, isa.A2, isa.A3
	)
	b.Li(rData, int64(dataB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Li(rPrev, 99) // sentinel: never matches
	b.Li(rRun, 0)
	b.Label("loop")
	b.Andi(isa.T0, rI, bzip2DataWords-1)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, rData)
	b.Ld(rV, 0, isa.T0)
	b.Bne(rV, rPrev, "newrun") // run-continuation check: data dependent
	b.Addi(rRun, rRun, 1)
	b.J("cont")
	b.Label("newrun")
	b.Mul(isa.T1, rRun, rPrev)
	b.Add(rSum, rSum, isa.T1)
	b.Li(rRun, 1)
	b.Mv(rPrev, rV)
	b.Label("cont")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Mul(isa.T1, rRun, rPrev)
	b.Add(rSum, rSum, isa.T1)
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

func bzip2Ref(scale int) uint64 {
	iters := scaledIters(16000, scale)
	data := hashedWords(bzip2DataWords, 0xb21b)
	for i := range data {
		data[i] &= 3
	}
	var sum uint64
	prev := uint64(99)
	run := uint64(0)
	for i := 0; i < iters; i++ {
		v := data[i&(bzip2DataWords-1)]
		if v == prev {
			run++
		} else {
			sum += run * prev
			run = 1
			prev = v
		}
	}
	sum += run * prev
	return sum
}

// -------------------------------------------------------------- leela ---

const leelaVisitWords = 256

func buildLeela(scale int) *isa.Program {
	iters := scaledIters(7000, scale)
	b := asm.NewBuilder("leela")
	l := newLayout()
	visitB := l.alloc(leelaVisitWords)

	const (
		rI, rN, rSum, rVisit = isa.S1, isa.S2, isa.S3, isa.S0
		rH, rNode, rT        = isa.A1, isa.A2, isa.A3
	)
	b.Li(rVisit, int64(visitB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Label("loop")
	emitHash(b, rH, rI, isa.T0)
	b.Li(rNode, 0)
	// MCTS-style descent: three hard-to-predict child choices.
	for d := 0; d < 3; d++ {
		left := "left" + string(rune('a'+d))
		merge := "mrg" + string(rune('a'+d))
		b.Andi(isa.T0, rH, int64(1)<<(d*2))
		b.Beqz(isa.T0, left)
		b.Slli(rNode, rNode, 1)
		b.Addi(rNode, rNode, 1)
		b.J(merge)
		b.Label(left)
		b.Slli(rNode, rNode, 1)
		b.Addi(rNode, rNode, 2)
		b.Label(merge)
	}
	// Visit-count update plus CI tail.
	b.Andi(isa.T0, rNode, leelaVisitWords-1)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, rVisit)
	b.Ld(isa.T1, 0, isa.T0)
	b.Addi(isa.T1, isa.T1, 1)
	b.St(isa.T1, 0, isa.T0)
	emitCalc2(b, rT, rI, isa.T2)
	b.Add(rSum, rSum, rT)
	b.Xor(rSum, rSum, isa.T1)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

func leelaRef(scale int) uint64 {
	iters := scaledIters(7000, scale)
	visits := make([]uint64, leelaVisitWords)
	var sum uint64
	for i := 0; i < iters; i++ {
		h := splitmix(uint64(i))
		node := uint64(0)
		for d := 0; d < 3; d++ {
			if h&(1<<(d*2)) != 0 {
				node = node*2 + 1
			} else {
				node = node*2 + 2
			}
		}
		visits[node&(leelaVisitWords-1)]++
		sum += calc2(uint64(i))
		sum ^= visits[node&(leelaVisitWords-1)]
	}
	return sum
}

// ------------------------------------------------------------ omnetpp ---

const omnetppEvents = 1 << 14 // 128 KB event array: beyond L1

func buildOmnetpp(scale int) *isa.Program {
	iters := scaledIters(12000, scale)
	b := asm.NewBuilder("omnetpp")
	l := newLayout()
	timeB := l.alloc(4)
	eventB := l.alloc(omnetppEvents)
	emitArray(b, timeB, []uint64{3, 5, 7, 11})
	emitArray(b, eventB, hashedWords(omnetppEvents, 0x03e7))

	const (
		rI, rN, rSum, rTimes, rEvents = isa.S1, isa.S2, isa.S3, isa.S0, isa.S4
		rBest, rBestK, rT, rK         = isa.A1, isa.A2, isa.A3, isa.A4
		rH                            = isa.A5
	)
	b.Li(rTimes, int64(timeB))
	b.Li(rEvents, int64(eventB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Label("loop")
	// Pick the earliest of four event queues: data-dependent compares.
	b.Li(rBest, -1) // max uint as signed -1; use unsigned compare below
	b.Li(rBestK, 0)
	b.Li(rK, 0)
	b.Label("scan")
	b.Slli(isa.T0, rK, 3)
	b.Add(isa.T0, isa.T0, rTimes)
	b.Ld(rT, 0, isa.T0)
	b.Bgeu(rT, rBest, "next")
	b.Mv(rBest, rT)
	b.Mv(rBestK, rK)
	b.Label("next")
	b.Addi(rK, rK, 1)
	b.Slti(isa.T0, rK, 4)
	b.Bnez(isa.T0, "scan")
	// Process the event: hashed access into a large event array.
	b.Add(rH, rBest, rI)
	emitHash(b, rH, rH, isa.T0)
	b.Andi(isa.T0, rH, omnetppEvents-1)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, rEvents)
	b.Ld(isa.T1, 0, isa.T0)
	b.Xor(rSum, rSum, isa.T1)
	b.Add(isa.T1, isa.T1, rBest)
	b.St(isa.T1, 0, isa.T0)
	// Reschedule the chosen queue.
	b.Andi(isa.T1, rH, 255)
	b.Addi(isa.T1, isa.T1, 1)
	b.Add(isa.T1, isa.T1, rBest)
	b.Slli(isa.T0, rBestK, 3)
	b.Add(isa.T0, isa.T0, rTimes)
	b.St(isa.T1, 0, isa.T0)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

func omnetppRef(scale int) uint64 {
	iters := scaledIters(12000, scale)
	times := []uint64{3, 5, 7, 11}
	events := hashedWords(omnetppEvents, 0x03e7)
	var sum uint64
	for i := 0; i < iters; i++ {
		best := ^uint64(0)
		bestK := 0
		for k := 0; k < 4; k++ {
			if times[k] < best {
				best = times[k]
				bestK = k
			}
		}
		h := splitmix(best + uint64(i))
		idx := h & (omnetppEvents - 1)
		sum ^= events[idx]
		events[idx] += best
		times[bestK] = best + h&255 + 1
	}
	return sum
}

// ----------------------------------------------------------------- xz ---

const xzWindowWords = 1024

func buildXz(scale int) *isa.Program {
	iters := scaledIters(14000, scale)
	b := asm.NewBuilder("xz")
	l := newLayout()
	windowB := l.alloc(xzWindowWords)
	emitArray(b, windowB, hashedWords(xzWindowWords, 0x7a7a))

	const (
		rI, rN, rSum, rWin = isa.S1, isa.S2, isa.S3, isa.S0
		rH, rV, rAddr      = isa.A1, isa.A2, isa.A3
	)
	b.Li(rWin, int64(windowB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Label("loop")
	emitHash(b, rH, rI, isa.T0)
	b.Andi(isa.T0, rH, xzWindowWords-1)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(rAddr, isa.T0, rWin)
	b.Ld(rV, 0, rAddr) // dictionary probe: candidate for (hazardous) reuse
	b.Andi(isa.T1, rV, 1)
	b.Beqz(isa.T1, "nomatch") // match check: data dependent
	// Match path: write back into the window one slot ahead, creating
	// store-load aliasing with later iterations' probes.
	b.Add(isa.T1, rV, rI)
	b.St(isa.T1, 8, rAddr)
	b.Add(rSum, rSum, rV)
	b.J("merge")
	b.Label("nomatch")
	b.Xor(rSum, rSum, rV)
	b.Label("merge")
	// Update the probed slot itself: every iteration stores near where
	// future (and squashed wrong-path) loads read.
	b.Addi(rV, rV, 1)
	b.St(rV, 0, rAddr)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	emitStoreChecksum(b, rSum)
	return b.MustProgram()
}

func xzRef(scale int) uint64 {
	iters := scaledIters(14000, scale)
	// One extra slot: the assembly's +8-byte store does not wrap, so a
	// match at the last index writes one word past the window. That slot
	// is never read back (probes are masked), but the layouts must agree.
	window := make([]uint64, xzWindowWords+1)
	copy(window, hashedWords(xzWindowWords, 0x7a7a))
	var sum uint64
	for i := 0; i < iters; i++ {
		h := splitmix(uint64(i))
		idx := h & (xzWindowWords - 1)
		v := window[idx]
		if v&1 != 0 {
			window[idx+1] = v + uint64(i)
			sum += v
		} else {
			sum ^= v
		}
		window[idx] = v + 1
	}
	return sum
}
