package randprog

import (
	"testing"

	"mssr/internal/emu"
	"mssr/internal/isa"
)

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, DefaultConfig())
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		if _, err := emu.RunProgram(p, 2_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if len(a.Code) != len(b.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Code[i], b.Code[i])
		}
	}
	ra, _ := emu.RunProgram(a, 2_000_000)
	rb, _ := emu.RunProgram(b, 2_000_000)
	if ra != rb {
		t.Error("same seed must produce identical results")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(1, DefaultConfig())
	b := Generate(2, DefaultConfig())
	same := len(a.Code) == len(b.Code)
	if same {
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsHaveInterestingStructure(t *testing.T) {
	// Across a batch of seeds we must see branches, loads and stores —
	// otherwise the property tests downstream are vacuous.
	var branches, loads, stores int
	for seed := int64(0); seed < 20; seed++ {
		p := Generate(seed, DefaultConfig())
		for _, in := range p.Code {
			switch {
			case in.IsBranch():
				branches++
			case in.IsLoad():
				loads++
			case in.IsStore():
				stores++
			}
		}
	}
	if branches < 20 || loads < 10 || stores < 5 {
		t.Errorf("structure too thin: branches=%d loads=%d stores=%d", branches, loads, stores)
	}
}

func TestZeroRegisterNeverWritten(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := Generate(seed, DefaultConfig())
		for i, in := range p.Code {
			if in.HasDest() && in.Rd == isa.Zero {
				t.Fatalf("seed %d insn %d writes x0: %v", seed, i, in)
			}
		}
	}
}

func TestLoopBoundsRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLoopIters = 2
	cfg.MaxDepth = 4
	for seed := int64(0); seed < 10; seed++ {
		p := Generate(seed, cfg)
		res, err := emu.RunProgram(p, 500_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Retired == 0 {
			t.Fatalf("seed %d retired nothing", seed)
		}
	}
}
