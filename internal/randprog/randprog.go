// Package randprog generates random, always-terminating programs for
// property-based testing. The generated programs stress exactly what the
// squash-reuse machinery must get right: nested data-dependent branches
// (control-dependent regions), loads and stores with computed addresses
// (memory-order hazards for reused loads), and reconvergent control flow.
//
// Termination is guaranteed by construction: every conditional branch is a
// forward branch, and every loop uses a dedicated counter register that is
// initialized to a small constant, decremented exactly once per iteration,
// and never otherwise written inside the loop body.
package randprog

import (
	"fmt"
	"math/rand"

	"mssr/internal/asm"
	"mssr/internal/isa"
)

// Config bounds the generated program.
type Config struct {
	// MaxDepth bounds the nesting of if/else and loop constructs.
	MaxDepth int
	// MaxStmts bounds the statements per block.
	MaxStmts int
	// MaxLoopIters bounds each loop's trip count.
	MaxLoopIters int
	// DataWords is the size of the addressable data region.
	DataWords int
}

// DefaultConfig returns generation bounds that produce programs of a few
// hundred to a few thousand dynamic instructions.
func DefaultConfig() Config {
	return Config{MaxDepth: 3, MaxStmts: 6, MaxLoopIters: 6, DataWords: 64}
}

// dataBase is where the addressable data region lives.
const dataBase uint64 = 0x0010_0000

// scratchRegs are the registers random statements may read and write.
// S0 (data base), S1 (loop counters are drawn from loopRegs), and the
// zero register are excluded from destinations.
var scratchRegs = []isa.Reg{
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6,
	isa.A0, isa.A1, isa.A2, isa.A3, isa.A4, isa.A5, isa.A6, isa.A7,
}

// loopRegs hold loop counters, one per nesting level.
var loopRegs = []isa.Reg{isa.S2, isa.S3, isa.S4, isa.S5}

type generator struct {
	cfg    Config
	rng    *rand.Rand
	b      *asm.Builder
	labels int
	depth  int
	loops  int
}

// Generate produces a random terminating program from seed.
func Generate(seed int64, cfg Config) *isa.Program {
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		b:   asm.NewBuilder(fmt.Sprintf("rand-%d", seed)),
	}
	// Initialize the data region with random words.
	words := make([]uint64, cfg.DataWords)
	for i := range words {
		words[i] = g.rng.Uint64() >> g.rng.Intn(32)
	}
	g.b.Data(dataBase, words...)
	// Initialize registers.
	g.b.Li(isa.S0, int64(dataBase))
	for _, r := range scratchRegs {
		g.b.Li(r, int64(g.rng.Intn(1<<16)))
	}
	g.block()
	// Fold the scratch registers into a0 so the final state depends on
	// everything that happened.
	for _, r := range scratchRegs[1:] {
		g.b.Xor(scratchRegs[0], scratchRegs[0], r)
	}
	g.b.Halt()
	return g.b.MustProgram()
}

func (g *generator) newLabel(kind string) string {
	g.labels++
	return fmt.Sprintf("%s%d", kind, g.labels)
}

func (g *generator) reg() isa.Reg { return scratchRegs[g.rng.Intn(len(scratchRegs))] }

// block emits 1..MaxStmts random statements.
func (g *generator) block() {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.statement()
	}
}

func (g *generator) statement() {
	// Weighted choice; structured statements only below the depth bound.
	max := 10
	if g.depth >= g.cfg.MaxDepth {
		max = 7
	}
	switch g.rng.Intn(max) {
	case 0, 1, 2:
		g.alu()
	case 3, 4:
		g.load()
	case 5:
		g.store()
	case 6:
		g.alu()
	case 7, 8:
		g.ifElse()
	default:
		if g.loops < len(loopRegs) {
			g.loop()
		} else {
			g.ifElse()
		}
	}
}

func (g *generator) alu() {
	rd, rs1, rs2 := g.reg(), g.reg(), g.reg()
	switch g.rng.Intn(8) {
	case 0:
		g.b.Add(rd, rs1, rs2)
	case 1:
		g.b.Sub(rd, rs1, rs2)
	case 2:
		g.b.Xor(rd, rs1, rs2)
	case 3:
		g.b.And(rd, rs1, rs2)
	case 4:
		g.b.Or(rd, rs1, rs2)
	case 5:
		g.b.Mul(rd, rs1, rs2)
	case 6:
		g.b.Addi(rd, rs1, int64(g.rng.Intn(64)-32))
	default:
		g.b.Slli(rd, rs1, int64(g.rng.Intn(4)))
	}
}

// addrInto computes a random in-bounds, data-dependent address in rd.
func (g *generator) addrInto(rd isa.Reg) {
	idx := g.reg()
	g.b.Andi(rd, idx, int64(g.cfg.DataWords-1))
	g.b.Slli(rd, rd, 3)
	g.b.Add(rd, rd, isa.S0)
}

func (g *generator) load() {
	addr := g.reg()
	g.addrInto(addr)
	g.b.Ld(g.reg(), 0, addr)
}

func (g *generator) store() {
	addr := g.reg()
	val := g.reg()
	g.addrInto(addr)
	g.b.St(val, 0, addr)
}

// ifElse emits a forward data-dependent branch with optional else arm,
// reconverging afterwards — the CI structure squash reuse feeds on.
func (g *generator) ifElse() {
	g.depth++
	defer func() { g.depth-- }()
	cond := g.reg()
	elseL := g.newLabel("else")
	endL := g.newLabel("end")
	// Condition on a low bit of a scratch register: effectively random
	// at simulation time, so frequently mispredicted.
	tmp := g.reg()
	g.b.Andi(tmp, cond, 1<<g.rng.Intn(3))
	hasElse := g.rng.Intn(2) == 0
	if hasElse {
		g.b.Beqz(tmp, elseL)
		g.block()
		g.b.J(endL)
		g.b.Label(elseL)
		g.block()
		g.b.Label(endL)
	} else {
		g.b.Beqz(tmp, endL)
		g.block()
		g.b.Label(endL)
	}
}

// loop emits a bounded counted loop.
func (g *generator) loop() {
	g.depth++
	g.loops++
	defer func() { g.depth--; g.loops-- }()
	ctr := loopRegs[g.loops-1]
	top := g.newLabel("loop")
	iters := 1 + g.rng.Intn(g.cfg.MaxLoopIters)
	g.b.Li(ctr, int64(iters))
	g.b.Label(top)
	g.block()
	g.b.Addi(ctr, ctr, -1)
	g.b.Bnez(ctr, top)
}
