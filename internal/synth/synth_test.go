package synth

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// within checks relative error.
func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/want <= tol
}

// TestModelReproducesPaperPoints verifies the calibrated model against all
// six published Table 4 configurations.
func TestModelReproducesPaperPoints(t *testing.T) {
	for _, pp := range PaperReconvergence() {
		var n, m int
		if _, err := fmt.Sscanf(pp.Config, "%dx%d", &n, &m); err != nil {
			t.Fatal(err)
		}
		r := Reconvergence(n, m)
		if d := r.LogicLevels - pp.Report.LogicLevels; d > 3 || d < -3 {
			t.Errorf("%s levels = %d, paper %d", pp.Config, r.LogicLevels, pp.Report.LogicLevels)
		}
		if !within(r.AreaUm2, pp.Report.AreaUm2, 0.05) {
			t.Errorf("%s area = %.0f, paper %.0f", pp.Config, r.AreaUm2, pp.Report.AreaUm2)
		}
		if !within(r.PowerMW, pp.Report.PowerMW, 0.05) {
			t.Errorf("%s power = %.3f, paper %.3f", pp.Config, r.PowerMW, pp.Report.PowerMW)
		}
	}
	for i, w := range []int{4, 6, 8} {
		pp := PaperReuseTest()[i]
		r := ReuseTest(w)
		if d := r.LogicLevels - pp.Report.LogicLevels; d > 3 || d < -3 {
			t.Errorf("%s levels = %d, paper %d", pp.Config, r.LogicLevels, pp.Report.LogicLevels)
		}
		if !within(r.AreaUm2, pp.Report.AreaUm2, 0.05) {
			t.Errorf("%s area = %.0f, paper %.0f", pp.Config, r.AreaUm2, pp.Report.AreaUm2)
		}
		if !within(r.PowerMW, pp.Report.PowerMW, 0.05) {
			t.Errorf("%s power = %.3f, paper %.3f", pp.Config, r.PowerMW, pp.Report.PowerMW)
		}
	}
}

// TestTrends verifies the qualitative shapes the paper reports: levels
// grow with the log of WPB size, area and power roughly linearly, and
// reuse-test depth grows with width.
func TestTrends(t *testing.T) {
	small := Reconvergence(4, 16)
	large := Reconvergence(4, 64)
	if large.LogicLevels <= small.LogicLevels {
		t.Error("levels must grow with WPB size")
	}
	if large.LogicLevels > 2*small.LogicLevels {
		t.Error("levels must grow sub-linearly (logarithmically)")
	}
	ratio := large.AreaUm2 / small.AreaUm2
	if ratio < 3.4 || ratio > 4.2 {
		t.Errorf("area should scale ~linearly with entries (4x): ratio %.2f", ratio)
	}
	if ReuseTest(8).LogicLevels <= ReuseTest(4).LogicLevels {
		t.Error("reuse test depth must grow with width")
	}
}

func TestStructuralDepthSanity(t *testing.T) {
	d := StructuralDepth(4, 16)
	if d < 10 || d > 30 {
		t.Errorf("structural depth = %d, implausible", d)
	}
	if StructuralDepth(4, 64) <= d {
		t.Error("structural depth must grow with entries")
	}
}

func TestTableRendering(t *testing.T) {
	s := Table()
	for _, want := range []string{"Reconvergence Detection", "Reuse Test", "4x64", "width 8"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
