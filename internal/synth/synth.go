// Package synth models the post-synthesis complexity of the paper's two
// critical logic components (Table 4): the reconvergence detection logic
// in the IFU and the reuse test logic in the Rename stage.
//
// The paper obtains these numbers from Synopsys Design Compiler at a 2 GHz
// constraint. That toolchain is not available here, so this package
// substitutes an analytical structural model: logic depth is estimated
// from the comparator trees, priority encoders and select networks the
// design instantiates, and area/power scale with the instantiated
// comparator count. The scaling coefficients are calibrated against the
// six configurations the paper publishes, so the model reproduces the
// published points and interpolates/extrapolates the trends between them
// (levels grow with the log of structure size; area and power grow
// linearly; reuse-test depth grows with pipeline width).
package synth

import (
	"fmt"
	"math"
	"strings"
)

// Report summarizes one component's synthesis estimate.
type Report struct {
	Config      string
	LogicLevels int
	AreaUm2     float64
	PowerMW     float64
}

// PaperPoint is one row published in the paper's Table 4.
type PaperPoint struct {
	Config string
	Report Report
}

// PaperReconvergence returns the published reconvergence-detection rows
// (WPB sized streams x entries).
func PaperReconvergence() []PaperPoint {
	return []PaperPoint{
		{"4x16", Report{"4x16", 13, 2682, 1.508}},
		{"4x32", Report{"4x32", 19, 5283, 2.984}},
		{"4x64", Report{"4x64", 20, 10369, 5.909}},
	}
}

// PaperReuseTest returns the published reuse-test rows (pipeline width,
// 64-entry squash log).
func PaperReuseTest() []PaperPoint {
	return []PaperPoint{
		{"width 4", Report{"width 4", 28, 3201, 3.039}},
		{"width 6", Report{"width 6", 32, 4803, 4.333}},
		{"width 8", Report{"width 8", 41, 6256, 5.509}},
	}
}

// Calibration constants: least-squares fits of the published points.
// Reconvergence detection scales with total WPB entries E = N*M:
//
//	levels ~ a + b*log2(E)   (comparator + priority-encode depth, after
//	                          the 3-stage pipelining the paper describes)
//	area   ~ c + d*E         (one range comparator pair per entry)
//	power  ~ e + f*E
const (
	rcLevelA = -7.17
	rcLevelB = 3.5
	rcAreaC  = 119.6
	rcAreaD  = 40.04
	rcPowerE = 0.041
	rcPowerF = 0.02292
)

// Reuse test scales with rename width W (the intra-bundle dependency
// resolution the paper identifies as the critical path):
//
//	levels ~ a + b*W
//	area   ~ c + d*W
//	power  ~ e + f*W
const (
	rtLevelA = 15.0
	rtLevelB = 3.25
	rtAreaC  = 146.0
	rtAreaD  = 763.75
	rtPowerE = 0.569
	rtPowerF = 0.6175
)

// Reconvergence estimates the IFU reconvergence detection logic for a WPB
// of streams x entriesPerStream fetch-block entries.
func Reconvergence(streams, entriesPerStream int) Report {
	e := float64(streams * entriesPerStream)
	return Report{
		Config:      fmt.Sprintf("%dx%d", streams, entriesPerStream),
		LogicLevels: int(math.Round(rcLevelA + rcLevelB*math.Log2(e))),
		AreaUm2:     rcAreaC + rcAreaD*e,
		PowerMW:     rcPowerE + rcPowerF*e,
	}
}

// ReuseTest estimates the Rename-stage reuse test logic for the given
// rename width (with the paper's 64-entry squash log stream).
func ReuseTest(width int) Report {
	w := float64(width)
	return Report{
		Config:      fmt.Sprintf("width %d", width),
		LogicLevels: int(math.Round(rtLevelA + rtLevelB*w)),
		AreaUm2:     rtAreaC + rtAreaD*w,
		PowerMW:     rtPowerE + rtPowerF*w,
	}
}

// StructuralDepth returns the un-pipelined combinational depth estimate of
// the reconvergence detection network, for documentation and sanity
// checks: an 11-bit range comparator pair (two compares + AND), the VPN
// match folded in parallel, a priority encoder over all entries and the
// final offset adder. The paper pipelines this across three stages.
func StructuralDepth(streams, entriesPerStream int) int {
	const cmp11 = 5 // ceil(log2(11)) + carry merge
	const and = 1
	prio := int(math.Ceil(math.Log2(float64(streams * entriesPerStream))))
	const offsetAdder = 6
	return cmp11 + and + prio + offsetAdder
}

// Table renders a Table 4-style report comparing the model at the
// published configurations with the paper's numbers.
func Table() string {
	var sb strings.Builder
	sb.WriteString("Table 4: post-synthesis complexity (analytical model calibrated to the paper)\n")
	sb.WriteString("Reconvergence Detection\n")
	fmt.Fprintf(&sb, "  %-10s %28s | %28s\n", "WPB Size", "model (levels/area/power)", "paper (levels/area/power)")
	for _, pp := range PaperReconvergence() {
		var n, m int
		fmt.Sscanf(pp.Config, "%dx%d", &n, &m)
		r := Reconvergence(n, m)
		fmt.Fprintf(&sb, "  %-10s %6d %9.0fum2 %6.3fmW | %6d %9.0fum2 %6.3fmW\n",
			pp.Config, r.LogicLevels, r.AreaUm2, r.PowerMW,
			pp.Report.LogicLevels, pp.Report.AreaUm2, pp.Report.PowerMW)
	}
	sb.WriteString("Reuse Test (64-entry Squash Log)\n")
	fmt.Fprintf(&sb, "  %-10s %28s | %28s\n", "Width", "model (levels/area/power)", "paper (levels/area/power)")
	for _, pp := range PaperReuseTest() {
		var w int
		fmt.Sscanf(pp.Config, "width %d", &w)
		r := ReuseTest(w)
		fmt.Fprintf(&sb, "  %-10s %6d %9.0fum2 %6.3fmW | %6d %9.0fum2 %6.3fmW\n",
			pp.Config, r.LogicLevels, r.AreaUm2, r.PowerMW,
			pp.Report.LogicLevels, pp.Report.AreaUm2, pp.Report.PowerMW)
	}
	return sb.String()
}
