package server_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mssr/internal/api"
	"mssr/internal/client"
	"mssr/internal/server"
	"mssr/internal/sim"
	"mssr/internal/store"
)

// countingBackend delegates to the real Runner while counting Run calls,
// so tests can prove a spec was served without simulating.
type countingBackend struct {
	runs  atomic.Int64
	specs atomic.Int64
}

func (b *countingBackend) Run(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	b.runs.Add(1)
	b.specs.Add(int64(len(specs)))
	return (&sim.Runner{}).Run(ctx, specs)
}

// newDaemonOver serves an already-constructed Server over loopback; the
// caller owns its shutdown (newTestDaemon's cleanup ordering would fight
// the store-close sequencing these tests pin).
func newDaemonOver(t *testing.T, srv *server.Server) *client.Client {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	c.PollInterval = 2 * time.Millisecond
	return c
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 64<<20, nil)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// TestStoreWarmRestart pins the restart-survival acceptance criterion:
// a daemon started over a populated store directory serves a previously
// computed spec as a hit — no simulation executes — and the stats and
// intervals are byte-identical to the original run's.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	specs := []api.Spec{
		{Workload: "nested-mispred", Scale: 0},
		// A sampled spec, so the byte-identity claim covers the interval
		// stream too.
		{Workload: "nested-mispred", Scale: 0, Engine: "rgid", Streams: 4, Entries: 64, SampleInterval: 1024},
	}

	// First life: run cold, let the results reach disk.
	st1 := openStore(t, dir)
	b1 := &countingBackend{}
	srv1 := server.New(server.Config{Backend: b1, Store: st1})
	ts1 := newDaemonOver(t, srv1)
	sub, err := ts1.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	cold, err := ts1.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatalf("cold wait: %v", err)
	}
	for i, r := range cold.Results {
		if r.Source != api.SourceRun || r.Error != "" {
			t.Fatalf("cold result %d not a clean run: %+v", i, r)
		}
	}
	shutCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st1.Close()

	// Second life: fresh process state, same directory.
	st2 := openStore(t, dir)
	t.Cleanup(st2.Close)
	if st2.Len() != len(specs) {
		t.Fatalf("reopened store holds %d results, want %d", st2.Len(), len(specs))
	}
	b2 := &countingBackend{}
	srv2 := server.New(server.Config{Backend: b2, Store: st2})
	ts2 := newDaemonOver(t, srv2)
	t.Cleanup(func() {
		c, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv2.Shutdown(c)
	})

	sub2, err := ts2.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	warm, err := ts2.Wait(ctx, sub2.JobID)
	if err != nil {
		t.Fatalf("warm wait: %v", err)
	}
	if b2.runs.Load() != 0 {
		t.Fatalf("restarted daemon executed %d backend runs; the store should have served everything", b2.runs.Load())
	}
	if warm.CacheHits != len(specs) {
		t.Errorf("warm job cache hits = %d, want %d", warm.CacheHits, len(specs))
	}
	for i, r := range warm.Results {
		if r.Source != api.SourceStore {
			t.Errorf("warm result %d source = %q, want %q", i, r.Source, api.SourceStore)
		}
		if r.WallNS != 0 {
			t.Errorf("store hit %d reports wall time %dns", i, r.WallNS)
		}
		wantStats, _ := json.Marshal(cold.Results[i].Stats)
		gotStats, _ := json.Marshal(r.Stats)
		if string(wantStats) != string(gotStats) {
			t.Errorf("result %d stats diverged across restart:\ncold %s\nwarm %s", i, wantStats, gotStats)
		}
		wantIv, _ := json.Marshal(cold.Results[i].Intervals)
		gotIv, _ := json.Marshal(r.Intervals)
		if string(wantIv) != string(gotIv) {
			t.Errorf("result %d intervals diverged across restart:\ncold %s\nwarm %s", i, wantIv, gotIv)
		}
	}

	m, err := ts2.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if hits := metricValue(t, m, "msrd_store_hits_total"); hits != float64(len(specs)) {
		t.Errorf("msrd_store_hits_total = %v, want %d", hits, len(specs))
	}
	if entries := metricValue(t, m, "msrd_store_entries"); entries != float64(len(specs)) {
		t.Errorf("msrd_store_entries = %v, want %d", entries, len(specs))
	}

	// The store hit promoted the result into memory: a repeat submission
	// is a plain cache hit.
	sub3, err := ts2.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("third submit: %v", err)
	}
	third, err := ts2.Wait(ctx, sub3.JobID)
	if err != nil {
		t.Fatalf("third wait: %v", err)
	}
	for i, r := range third.Results {
		if r.Source != api.SourceCache {
			t.Errorf("promoted result %d source = %q, want %q", i, r.Source, api.SourceCache)
		}
	}
}

// TestCacheEvictsIntoStore pins the write-behind eviction path: results
// pushed out of the bounded in-memory LRU land on disk and stay
// servable.
func TestCacheEvictsIntoStore(t *testing.T) {
	ctx := context.Background()
	st := openStore(t, t.TempDir())
	t.Cleanup(st.Close)
	b := &countingBackend{}
	srv := server.New(server.Config{Backend: b, Store: st, CacheEntries: 1})
	c := newDaemonOver(t, srv)
	t.Cleanup(func() {
		sc, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sc)
	})

	specs := []api.Spec{
		{Workload: "nested-mispred", Scale: 0},
		{Workload: "nested-mispred", Scale: 0, Engine: "rgid", Streams: 4, Entries: 64},
	}
	sub, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Wait(ctx, sub.JobID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st.Flush()
	// The 1-entry cache evicted at least one of the two results; both
	// must be on disk (write-behind covers completion and eviction).
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if ev := metricValue(t, m, "msrd_cache_evictions_total"); ev < 1 {
		t.Errorf("msrd_cache_evictions_total = %v, want >= 1", ev)
	}
	if st.Len() != len(specs) {
		t.Errorf("store holds %d results, want %d", st.Len(), len(specs))
	}

	// A resubmission completes with zero new simulations: one spec from
	// memory, one from disk.
	before := b.runs.Load()
	sub2, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	warm, err := c.Wait(ctx, sub2.JobID)
	if err != nil {
		t.Fatalf("rewait: %v", err)
	}
	if b.runs.Load() != before {
		t.Errorf("resubmission ran the backend (%d -> %d runs)", before, b.runs.Load())
	}
	if warm.CacheHits != len(specs) {
		t.Errorf("resubmission cache hits = %d, want %d", warm.CacheHits, len(specs))
	}
}

// TestReadyz pins the readiness endpoint: ready when serving, 503 while
// saturated, 503 while draining.
func TestReadyz(t *testing.T) {
	backend := newBlockingBackend()
	srv, ts, c := newTestDaemon(t, server.Config{Workers: 1, QueueLimit: 1, Backend: backend})
	ctx := context.Background()

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("idle daemon not ready: %v", err)
	}

	// Pin the worker, then fill the queue: readiness must flip while
	// liveness stays green.
	spec := func(entries int) []api.Spec {
		return []api.Spec{{Workload: "pr", Scale: 0, Engine: "rgid", Streams: 1, Entries: entries}}
	}
	if _, err := c.Submit(ctx, spec(16)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	backend.waitStarted(t)
	if _, err := c.Submit(ctx, spec(32)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := c.Ready(ctx); err == nil {
		t.Error("saturated daemon reported ready")
	}
	if err := c.Health(ctx); err != nil {
		t.Errorf("saturated daemon reported dead: %v", err)
	}

	close(backend.release)
	deadline := time.Now().Add(10 * time.Second)
	for c.Ready(ctx) != nil {
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready after draining its queue")
		}
		time.Sleep(2 * time.Millisecond)
	}

	go func() {
		sc, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sc)
	}()
	deadline = time.Now().Add(10 * time.Second)
	for c.Ready(ctx) == nil {
		if time.Now().After(deadline) {
			t.Fatal("draining daemon never reported not-ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = ts
}
