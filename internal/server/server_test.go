package server_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mssr/internal/api"
	"mssr/internal/client"
	"mssr/internal/server"
	"mssr/internal/sim"
	"mssr/internal/stats"
)

// blockingBackend holds every Run until release is closed (or the run
// context is cancelled), letting tests pin the daemon in the "worker
// busy" state deterministically. started receives one signal per Run.
type blockingBackend struct {
	started chan struct{}
	release chan struct{}

	mu    sync.Mutex
	runs  int
	specs []sim.Spec
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *blockingBackend) Run(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	b.mu.Lock()
	b.runs++
	b.specs = append(b.specs, specs...)
	b.mu.Unlock()
	b.started <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	out := make([]sim.Result, len(specs))
	for i, sp := range specs {
		out[i] = sim.Result{
			Index: i,
			Key:   sp.Key(),
			Spec:  sp,
			Stats: &stats.Stats{Cycles: 1000, Retired: 800},
			Wall:  time.Millisecond,
		}
	}
	return out, nil
}

func (b *blockingBackend) runCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs
}

func (b *blockingBackend) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-b.started:
	case <-time.After(10 * time.Second):
		t.Fatal("backend never started running")
	}
}

// newTestDaemon serves cfg over a loopback httptest server and returns a
// fast-polling client for it.
func newTestDaemon(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	c := client.New(ts.URL)
	c.PollInterval = 2 * time.Millisecond
	return srv, ts, c
}

// metricValue parses one un-labelled sample out of Prometheus text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed:\n%s", name, text)
	return 0
}

func microSpecs() []api.Spec {
	return []api.Spec{
		{Workload: "nested-mispred", Scale: 0},
		{Workload: "nested-mispred", Scale: 0, Engine: "rgid", Streams: 4, Entries: 64},
	}
}

func TestSubmitRunAndStatus(t *testing.T) {
	_, _, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	sub, err := c.Submit(ctx, microSpecs())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sub.Total != 2 {
		t.Errorf("Total = %d, want 2", sub.Total)
	}
	st, err := c.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != api.StateDone || st.Done != 2 || len(st.Results) != 2 {
		t.Fatalf("final status %+v, want done with 2 results", st)
	}
	if st.Error != "" {
		t.Fatalf("job error: %s", st.Error)
	}
	for i, r := range st.Results {
		if r.Index != i {
			t.Errorf("result %d has index %d: results must be in submit order", i, r.Index)
		}
		if r.Source != api.SourceRun {
			t.Errorf("cold result %d source = %q, want %q", i, r.Source, api.SourceRun)
		}
		if r.Error != "" || r.Cycles == 0 || r.WallNS <= 0 {
			t.Errorf("result %d incomplete: %+v", i, r)
		}
	}
	// The engine run must differ in key from the baseline run.
	if st.Results[0].CacheKey == st.Results[1].CacheKey {
		t.Errorf("distinct specs share cache key %q", st.Results[0].CacheKey)
	}
}

// TestBatchAdmissionMatchesUnbatched pins that enabling lockstep batch
// admission changes nothing on the wire: the same submission served by a
// batching daemon returns results in the same order, from the same
// source, with identical simulation counters.
func TestBatchAdmissionMatchesUnbatched(t *testing.T) {
	ctx := context.Background()
	_, _, plain := newTestDaemon(t, server.Config{})
	_, _, batched := newTestDaemon(t, server.Config{Batch: true})

	specs := []api.Spec{
		{Workload: "nested-mispred", Scale: 0},
		{Workload: "linear-mispred", Scale: 0},
		{Workload: "nested-mispred", Scale: 0, Engine: "rgid", Streams: 4, Entries: 64},
		{Workload: "linear-mispred", Scale: 0, Engine: "ri"},
	}
	run := func(c *client.Client) *api.JobStatus {
		sub, err := c.Submit(ctx, specs)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		st, err := c.Wait(ctx, sub.JobID)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if st.State != api.StateDone || st.Error != "" {
			t.Fatalf("job did not finish cleanly: %+v", st)
		}
		return st
	}
	want, got := run(plain), run(batched)
	if len(got.Results) != len(want.Results) {
		t.Fatalf("batched daemon returned %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if g.Index != i || g.CacheKey != w.CacheKey {
			t.Errorf("result %d: batched key/order (%d, %q) diverges from (%d, %q)",
				i, g.Index, g.CacheKey, w.Index, w.CacheKey)
		}
		if g.Cycles != w.Cycles || g.Retired != w.Retired {
			t.Errorf("result %d (%s): batched counters cycles=%d retired=%d, want cycles=%d retired=%d",
				i, w.CacheKey, g.Cycles, g.Retired, w.Cycles, w.Retired)
		}
		if g.Error != "" {
			t.Errorf("result %d: batched error %q", i, g.Error)
		}
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts, c := newTestDaemon(t, server.Config{})
	if _, err := c.Job(context.Background(), "nope"); err == nil {
		t.Error("fetching an unknown job succeeded")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	_, ts, c := newTestDaemon(t, server.Config{})
	_, err := c.Submit(context.Background(), []api.Spec{{Workload: "no-such-workload"}})
	if err == nil {
		t.Fatal("invalid workload accepted")
	}
	var re *client.RetryError
	if errors.As(err, &re) {
		t.Errorf("validation failure reported as overload: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"specs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty submission status = %d, want 400", resp.StatusCode)
	}
}

func TestCacheHitAccounting(t *testing.T) {
	ctx := context.Background()
	_, _, c := newTestDaemon(t, server.Config{})
	specs := microSpecs()

	sub1, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	st1, err := c.Wait(ctx, sub1.JobID)
	if err != nil {
		t.Fatalf("cold wait: %v", err)
	}

	sub2, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	st2, err := c.Wait(ctx, sub2.JobID)
	if err != nil {
		t.Fatalf("warm wait: %v", err)
	}
	if st2.CacheHits != len(specs) {
		t.Errorf("warm job cache hits = %d, want %d", st2.CacheHits, len(specs))
	}
	for i, r := range st2.Results {
		if r.Source != api.SourceCache {
			t.Errorf("warm result %d source = %q, want cache", i, r.Source)
		}
		if r.WallNS != 0 {
			t.Errorf("cache hit %d reports wall time %dns; hits cost no simulation time", i, r.WallNS)
		}
		if r.Cycles != st1.Results[i].Cycles {
			t.Errorf("cached cycles %d != cold cycles %d: the cache returned a different result", r.Cycles, st1.Results[i].Cycles)
		}
		if r.Key != st1.Results[i].Key || r.Index != i {
			t.Errorf("cached result %d not re-labelled for its request: %+v", i, r)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if hits := metricValue(t, m, "msrd_cache_hits_total"); hits != float64(len(specs)) {
		t.Errorf("msrd_cache_hits_total = %v, want %d", hits, len(specs))
	}
	if misses := metricValue(t, m, "msrd_cache_misses_total"); misses != float64(len(specs)) {
		t.Errorf("msrd_cache_misses_total = %v, want %d", misses, len(specs))
	}
	if runs := metricValue(t, m, "msrd_sims_run_total"); runs != float64(len(specs)) {
		t.Errorf("msrd_sims_run_total = %v, want %d (cache hits must not re-run)", runs, len(specs))
	}
	if entries := metricValue(t, m, "msrd_cache_entries"); entries != float64(len(specs)) {
		t.Errorf("msrd_cache_entries = %v, want %d", entries, len(specs))
	}
}

func TestQueueFullSheds429(t *testing.T) {
	backend := newBlockingBackend()
	retryAfter := 250 * time.Millisecond
	_, ts, c := newTestDaemon(t, server.Config{
		Workers:    1,
		QueueLimit: 1,
		RetryAfter: retryAfter,
		Backend:    backend,
	})
	ctx := context.Background()
	spec := func(entries int) []api.Spec {
		return []api.Spec{{Workload: "pr", Scale: 0, Engine: "rgid", Streams: 1, Entries: entries}}
	}

	// Fill the worker, then the queue.
	subA, err := c.Submit(ctx, spec(16))
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	backend.waitStarted(t)
	subB, err := c.Submit(ctx, spec(32))
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}

	// The next submission must be shed with 429 + Retry-After.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"specs":[{"workload":"pr","engine":"rgid","streams":1,"entries":64}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After header = %q, want %q (250ms rounded up to whole seconds)", ra, "1")
	}

	// The typed client surfaces exhaustion as *RetryError carrying the
	// server's millisecond-precision hint.
	noRetry := client.New(ts.URL)
	noRetry.SubmitRetries = -1
	_, err = noRetry.Submit(ctx, spec(64))
	var re *client.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("shed submission error = %v, want *client.RetryError", err)
	}
	if re.RetryAfter != retryAfter {
		t.Errorf("RetryAfter = %s, want %s from the JSON body", re.RetryAfter, retryAfter)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if rejected := metricValue(t, m, "msrd_jobs_rejected_total"); rejected != 2 {
		t.Errorf("msrd_jobs_rejected_total = %v, want 2", rejected)
	}
	if depth := metricValue(t, m, "msrd_queue_depth"); depth != 1 {
		t.Errorf("msrd_queue_depth = %v, want 1", depth)
	}

	// Releasing the backend drains both accepted jobs; a resubmission of
	// the shed spec is now admitted.
	close(backend.release)
	for _, id := range []string{subA.JobID, subB.JobID} {
		if st, err := c.Wait(ctx, id); err != nil || st.Error != "" {
			t.Fatalf("draining %s: err=%v status=%+v", id, err, st)
		}
	}
	sub, err := c.Submit(ctx, spec(64))
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	if _, err := c.Wait(ctx, sub.JobID); err != nil {
		t.Fatalf("post-drain wait: %v", err)
	}
}

func TestInFlightDedup(t *testing.T) {
	backend := newBlockingBackend()
	_, _, c := newTestDaemon(t, server.Config{Workers: 2, Backend: backend})
	ctx := context.Background()
	spec := []api.Spec{{Workload: "bfs", Scale: 0, Engine: "rgid", Streams: 2, Entries: 32}}

	sub1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	backend.waitStarted(t)
	sub2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	// The second job joins the first's flight; the join is counted before
	// it blocks, so poll for it while the leader is still pinned.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatalf("Metrics: %v", err)
		}
		if metricValue(t, m, "msrd_dedup_joins_total") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second identical submission never joined the in-flight simulation")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := backend.runCount(); got != 1 {
		t.Fatalf("backend ran %d times with an identical spec in flight, want 1", got)
	}

	close(backend.release)
	st1, err := c.Wait(ctx, sub1.JobID)
	if err != nil {
		t.Fatalf("wait 1: %v", err)
	}
	st2, err := c.Wait(ctx, sub2.JobID)
	if err != nil {
		t.Fatalf("wait 2: %v", err)
	}
	if st1.Results[0].Source != api.SourceRun {
		t.Errorf("leader source = %q, want run", st1.Results[0].Source)
	}
	if st2.Results[0].Source != api.SourceDedup || st2.DedupJoins != 1 {
		t.Errorf("follower not deduplicated: %+v", st2)
	}
	if st1.Results[0].Cycles != st2.Results[0].Cycles {
		t.Errorf("dedup returned different cycles: %d vs %d", st1.Results[0].Cycles, st2.Results[0].Cycles)
	}
	if got := backend.runCount(); got != 1 {
		t.Errorf("backend ran %d times in total, want exactly 1", got)
	}

	// The settled flight populated the cache: a third request hits it.
	sub3, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	st3, err := c.Wait(ctx, sub3.JobID)
	if err != nil {
		t.Fatalf("wait 3: %v", err)
	}
	if st3.Results[0].Source != api.SourceCache {
		t.Errorf("post-flight source = %q, want cache", st3.Results[0].Source)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	backend := newBlockingBackend()
	srv, ts, c := newTestDaemon(t, server.Config{Workers: 1, Backend: backend})
	ctx := context.Background()
	spec := []api.Spec{{Workload: "cc", Scale: 0}}

	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	backend.waitStarted(t)

	shutdownErr := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(dctx)
	}()

	// Draining: health flips to 503 and new submissions are refused.
	deadline := time.Now().Add(10 * time.Second)
	for c.Health(ctx) == nil {
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"specs":[{"workload":"cc"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission during drain = %d, want 503", resp.StatusCode)
	}

	// The in-flight job finishes cleanly and the drain completes.
	close(backend.release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown during clean drain = %v, want nil", err)
	}
	st, err := c.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatalf("Wait after drain: %v", err)
	}
	if st.State != api.StateDone || st.Results[0].Error != "" {
		t.Errorf("drained job not completed cleanly: %+v", st)
	}
}

func TestShutdownDeadlineCancelsRuns(t *testing.T) {
	// This backend only returns when its context is cancelled, modelling
	// a wedged simulation that the drain deadline must kill.
	started := make(chan struct{}, 1)
	wedged := backendFunc(func(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	srv, _, c := newTestDaemon(t, server.Config{Workers: 1, Backend: wedged})
	ctx := context.Background()

	sub, err := c.Submit(ctx, []api.Spec{{Workload: "tc", Scale: 0}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline = %v, want DeadlineExceeded", err)
	}
	st, err := c.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != api.StateDone || st.Results[0].Error == "" {
		t.Errorf("cancelled job should finish with an error result, got %+v", st)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if failed := metricValue(t, m, "msrd_jobs_failed_total"); failed != 1 {
		t.Errorf("msrd_jobs_failed_total = %v, want 1", failed)
	}
}

// backendFunc adapts a function to sim.Backend.
type backendFunc func(ctx context.Context, specs []sim.Spec) ([]sim.Result, error)

func (f backendFunc) Run(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	return f(ctx, specs)
}

func TestStreamDeliversCompletions(t *testing.T) {
	_, _, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	specs := []api.Spec{
		{Workload: "nested-mispred", Scale: 0},
		{Workload: "nested-mispred", Scale: 0, Engine: "rgid", Streams: 4, Entries: 64},
		{Workload: "nested-mispred", Scale: 0, Engine: "ri", Sets: 64, Ways: 4},
	}
	sub, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	var streamed []api.Result
	if err := c.Stream(ctx, sub.JobID, func(r api.Result) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(streamed) != len(specs) {
		t.Fatalf("streamed %d records, want %d", len(streamed), len(specs))
	}
	indexes := map[int]bool{}
	for _, r := range streamed {
		if r.Error != "" {
			t.Errorf("streamed failure: %+v", r)
		}
		indexes[r.Index] = true
	}
	if len(indexes) != len(specs) {
		t.Errorf("stream covered indexes %v, want every spec exactly once", indexes)
	}

	// Streaming a finished job replays the full completion log.
	var replayed []api.Result
	if err := c.Stream(ctx, sub.JobID, func(r api.Result) error {
		replayed = append(replayed, r)
		return nil
	}); err != nil {
		t.Fatalf("replay Stream: %v", err)
	}
	if len(replayed) != len(streamed) {
		t.Errorf("replay returned %d records, want %d", len(replayed), len(streamed))
	}
}

func TestRemoteBackendMatchesLocal(t *testing.T) {
	_, ts, _ := newTestDaemon(t, server.Config{})
	spec := sim.Spec{Workload: "linear-mispred", Scale: 0, Engine: sim.EngineRGID, Streams: 4, Entries: 64}

	local, err := (&sim.Runner{}).Run(context.Background(), []sim.Spec{spec})
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	var finishes int
	obs := observerFunc(func() { finishes++ })
	rc := client.New(ts.URL)
	rc.PollInterval = 2 * time.Millisecond
	remote := &client.Remote{Client: rc, Observer: obs}
	got, err := remote.Run(context.Background(), []sim.Spec{spec})
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("remote returned %d results, want 1", len(got))
	}
	if got[0].Stats.Cycles != local[0].Stats.Cycles {
		t.Errorf("remote cycles %d != local cycles %d: the daemon must be bit-identical to in-process runs",
			got[0].Stats.Cycles, local[0].Stats.Cycles)
	}
	if got[0].Key != spec.Key() || got[0].Index != 0 {
		t.Errorf("remote result mislabelled: %+v", got[0])
	}
	if finishes != 1 {
		t.Errorf("observer saw %d finishes, want 1", finishes)
	}
}

// observerFunc counts OnFinish callbacks.
type observerFunc func()

func (f observerFunc) OnStart(index, total int, key string)    {}
func (f observerFunc) OnFinish(index, total int, r sim.Result) { f() }
