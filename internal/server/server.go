// Package server implements msrd, the simulation-as-a-service daemon:
// an HTTP front end over the internal/sim orchestration layer with a
// content-addressed result cache, singleflight dedup of identical
// in-flight specs, a bounded admission queue that sheds load with 429,
// and live Prometheus metrics.
//
// API (JSON; see internal/api for the shapes):
//
//	POST /v1/jobs              submit a batch of specs -> job id
//	GET  /v1/jobs/{id}         job status; results once done
//	GET  /v1/jobs/{id}/stream  NDJSON of per-simulation completions
//	GET  /healthz              liveness ("draining" during shutdown)
//	GET  /metrics              Prometheus text format
//
// Results are cached and deduplicated by sim.Spec.CanonicalKey(): a wire
// spec names a registry workload plus engine geometry and policies, the
// registry builders are deterministic, so the canonical key fully
// determines the simulation's outcome. Two jobs asking for the same key
// share one simulation; a repeated sweep is served from cache.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mssr/internal/api"
	"mssr/internal/ckpt"
	"mssr/internal/events"
	"mssr/internal/obs"
	"mssr/internal/sim"
	"mssr/internal/store"
)

// Config tunes the daemon. The zero value is usable: NumCPU-parallel
// simulations, one job at a time, a 64-job queue and a 4096-entry cache.
type Config struct {
	// SimJobs bounds concurrently running simulations within a job
	// (<= 0 = NumCPU).
	SimJobs int
	// Workers is how many jobs execute concurrently (<= 0 = 1). Total
	// simulation parallelism is bounded by Workers*SimJobs.
	Workers int
	// QueueLimit bounds jobs queued behind the workers; submissions
	// beyond it are shed with 429 (<= 0 = 64).
	QueueLimit int
	// CacheEntries bounds the result cache (0 = 4096; < 0 disables).
	CacheEntries int
	// Store, when set, is the persistent content-addressed result store
	// backing the in-memory cache: completed results are written behind
	// asynchronously, in-memory evictions drain into it, and a spec that
	// misses the memory cache is served from disk (and promoted) before
	// any simulation runs — which is what keeps the daemon warm across
	// restarts. The server flushes the store's write-behind queue on
	// Shutdown; the owner (cmd/msrd) closes it.
	Store *store.Store
	// ReadyThreshold is the /readyz queue-depth bound: the daemon reports
	// not-ready once this many jobs are queued (0 = QueueLimit, i.e.
	// ready while a submission could still be admitted).
	ReadyThreshold int
	// DefaultTimeout bounds each simulation's wall time unless the spec
	// carries its own (0 = unbounded).
	DefaultTimeout time.Duration
	// JobTimeout bounds a whole job's execution (0 = unbounded).
	JobTimeout time.Duration
	// Batch enables lockstep batch admission: a job's leader specs that
	// share a workload+scale execute as one batch group over a shared
	// instruction stream (sim.Runner.Batching). Per-job accounting,
	// dedup/caching (keyed on CanonicalKey) and the interval endpoints
	// are unaffected on the wire — results are bit-identical to
	// unbatched execution, and each job still reports its own wall time
	// and MIPS.
	Batch bool
	// RetryAfter is the backoff hint attached to 429 responses
	// (0 = 1s).
	RetryAfter time.Duration
	// WSWriteTimeout bounds each /v1/ws frame write; a subscriber that
	// stalls longer is disconnected and counted against
	// msrd_stream_errors_total (0 = 10s).
	WSWriteTimeout time.Duration
	// Checkpoints, when set, is the checkpoint store every per-job
	// sim.Runner shares: architectural boundary states captured by one
	// job's multi-fidelity runs are restored by later jobs over the same
	// program, skipping their functional fast-forward entirely. nil gets
	// a daemon-owned in-memory store (default bound), so /metrics always
	// reports the store the runners actually use. The owner (cmd/msrd)
	// flushes and closes a disk-backed store.
	Checkpoints *ckpt.Store
	// Backend overrides how leader specs are executed. nil (the normal
	// case) builds a sim.Runner per job, wired with an observer that
	// publishes completions live; tests inject controllable fakes.
	Backend sim.Backend
	// Logger receives the daemon's structured logs: one line per HTTP
	// request (request id, method, path, status, duration) and the job
	// lifecycle (submit, start with queue latency, finish with outcome).
	// nil discards everything.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.ReadyThreshold <= 0 {
		c.ReadyThreshold = c.QueueLimit
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.WSWriteTimeout <= 0 {
		c.WSWriteTimeout = 10 * time.Second
	}
	if c.Checkpoints == nil {
		c.Checkpoints = ckpt.NewMemory(0)
	}
	if c.Logger == nil {
		// A handler at a level no record reaches; slog.DiscardHandler
		// needs go1.24 and the module declares 1.22.
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	return c
}

// flight is one in-progress simulation identified by its canonical key.
// Followers (identical specs from any job) wait on done and read res.
type flight struct {
	once sync.Once
	done chan struct{}
	res  api.Result
}

// Server is the daemon. Create with New, serve with any http.Server,
// stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics metrics
	cache   *resultCache
	hub     *events.Hub
	started time.Time

	mu     sync.Mutex // guards jobs, closed, queue sends
	jobs   map[string]*job
	closed bool
	queue  chan *job

	flightMu sync.Mutex
	flights  map[string]*flight

	nextID  atomic.Uint64
	nextReq atomic.Uint64
	log     *slog.Logger
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newResultCache(cfg.CacheEntries),
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueLimit),
		flights: make(map[string]*flight),
		hub:     &events.Hub{},
		started: time.Now(),
		log:     cfg.Logger,
	}
	s.metrics.init()
	s.cache.onEvict = func(key string, res api.Result) {
		s.metrics.cacheEvictions.Add(1)
		if cfg.Store != nil {
			cfg.Store.PutAsync(key, res)
		}
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/intervals", s.handleIntervals)
	s.mux.HandleFunc("GET /v1/ws", s.handleWS)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Hub exposes the live event bus, so an embedding process (the fleet
// coordinator relays from it; tests subscribe directly) can observe the
// daemon without going through the WebSocket endpoint.
func (s *Server) Hub() *events.Hub { return s.hub }

// statusWriter captures the response code for the request log and the
// latency histogram. It passes Flush through so the NDJSON stream
// handlers keep their incremental delivery behind the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack passes through so the /v1/ws upgrade works behind the wrapper;
// a hijacked connection leaves the status at the 101 the handshake wrote.
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := w.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, errors.New("server: underlying writer cannot hijack")
	}
	if w.status == 0 {
		w.status = http.StatusSwitchingProtocols
	}
	return hj.Hijack()
}

// ServeHTTP implements http.Handler: every request gets an id, a latency
// observation and one structured log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := fmt.Sprintf("r%d", s.nextReq.Add(1))
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(start)
	s.metrics.requestDur.Observe(dur)
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	s.log.Info("request",
		"request_id", rid,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"duration_ms", float64(dur.Microseconds())/1000)
}

// Shutdown drains the daemon: no new submissions are admitted, queued
// and running jobs are given until ctx's deadline to finish, then the
// remaining simulations are cancelled. It returns nil on a clean drain
// and ctx.Err() if the deadline forced cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.cancel()
		<-drained
		err = ctx.Err()
	}
	if s.cfg.Store != nil {
		// Every completed result has been queued behind PutAsync by now;
		// the flush makes them durable before the process exits.
		s.cfg.Store.Flush()
	}
	return err
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// ---------------------------------------------------------- execution ---

// runJob resolves every spec of the job: cache hit, join of an identical
// in-flight simulation, or a fresh run (as the flight leader for that
// canonical key).
func (s *Server) runJob(j *job) {
	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	started := time.Now()
	j.start(started)
	queueMS := float64(started.Sub(j.submitted).Microseconds()) / 1000
	s.hub.Publish(events.Event{Type: events.TypeJobStart, Job: j.id, Specs: len(j.specs), QueueMS: queueMS})
	s.log.Info("job start",
		"job_id", j.id,
		"specs", len(j.specs),
		"queue_ms", queueMS)

	type joined struct {
		idx int
		f   *flight
	}
	var (
		leaders       []sim.Spec
		leaderIdx     []int
		leaderFlights []*flight
		waits         []joined
	)
	for i := range j.specs {
		sp := &j.specs[i]
		ck := sp.CanonicalKey()
		if res, ok := s.cache.get(ck); ok {
			s.metrics.cacheHits.Add(1)
			res.Index, res.Key, res.Source, res.WallNS = i, sp.Key(), api.SourceCache, 0
			if j.complete(i, res) {
				s.publishSpecDone(j, res)
			}
			continue
		}
		s.metrics.cacheMisses.Add(1)
		if s.cfg.Store != nil {
			if res, ok := s.cfg.Store.Get(ck); ok {
				// A previous process (or an evicted memory entry) already
				// computed this spec: serve it from disk, promote it back
				// into memory, and run nothing.
				s.cache.put(ck, res)
				res.Index, res.Key, res.Source, res.WallNS = i, sp.Key(), api.SourceStore, 0
				if j.complete(i, res) {
					s.publishSpecDone(j, res)
				}
				continue
			}
		}
		s.flightMu.Lock()
		if f, ok := s.flights[ck]; ok {
			s.flightMu.Unlock()
			s.metrics.dedupJoins.Add(1)
			waits = append(waits, joined{i, f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[ck] = f
		s.flightMu.Unlock()
		leaders = append(leaders, *sp)
		leaderIdx = append(leaderIdx, i)
		leaderFlights = append(leaderFlights, f)
	}

	if len(leaders) > 0 {
		backend := s.cfg.Backend
		if backend == nil {
			backend = &sim.Runner{
				Jobs:        s.cfg.SimJobs,
				Timeout:     s.cfg.DefaultTimeout,
				Batching:    s.cfg.Batch,
				Checkpoints: s.cfg.Checkpoints,
				Observer: &flightObserver{
					s: s, j: j, idx: leaderIdx, flights: leaderFlights,
				},
				// Live telemetry taps: non-blocking hub publishes straight
				// from the simulation goroutines. With no subscribers each
				// is one atomic load, preserving the cycle loop's
				// zero-allocation discipline.
				OnInterval: func(index int, key string, iv obs.Interval) {
					s.hub.Publish(events.Event{Type: events.TypeInterval, Job: j.id, Key: key, Interval: iv})
				},
				OnWindow: func(index int, key string, window, windows int) {
					s.hub.Publish(events.Event{Type: events.TypeWindow, Job: j.id, Key: key, Window: window, Windows: windows})
				},
			}
		}
		results, _ := backend.Run(ctx, leaders)
		// The observer already completed everything it saw finish; this
		// sweep covers custom backends and jobs the cancellation kept
		// from dispatching (which get no observer callback).
		for k := range leaders {
			var r sim.Result
			if k < len(results) {
				r = results[k]
			} else {
				r = sim.Result{Index: k, Key: leaders[k].Key(), Spec: leaders[k], Err: ctx.Err()}
			}
			if r.Err == nil && r.Stats == nil && results == nil {
				r.Err = errors.New("backend returned no result")
			}
			s.finishLeader(j, leaderIdx[k], leaderFlights[k], r)
		}
	}

	for _, w := range waits {
		select {
		case <-w.f.done:
			r := w.f.res
			r.Index, r.Key, r.Source = w.idx, j.specs[w.idx].Key(), api.SourceDedup
			if j.complete(w.idx, r) {
				s.publishSpecDone(j, r)
			}
		case <-ctx.Done():
			res := api.Result{
				Index:    w.idx,
				Key:      j.specs[w.idx].Key(),
				CacheKey: j.specs[w.idx].CanonicalKey(),
				Source:   api.SourceDedup,
				Error:    ctx.Err().Error(),
			}
			if j.complete(w.idx, res) {
				s.publishSpecDone(j, res)
			}
		}
	}

	j.finish(time.Now(), nil)
	outcome := "completed"
	evType := events.TypeJobDone
	if j.failed() {
		s.metrics.jobsFailed.Add(1)
		outcome = "failed"
		evType = events.TypeJobFailed
	} else {
		s.metrics.jobsCompleted.Add(1)
	}
	st := j.status()
	s.hub.Publish(events.Event{Type: evType, Job: j.id, Specs: len(j.specs), Done: st.Done,
		WallMS: float64(st.Finished.Sub(st.Started).Microseconds()) / 1000})
	s.log.Info("job finish",
		"job_id", j.id,
		"outcome", outcome,
		"specs", len(j.specs),
		"ran", len(leaders),
		"cache_hits", st.CacheHits,
		"dedup_joins", st.DedupJoins,
		"duration_ms", float64(st.Finished.Sub(st.Started).Microseconds())/1000)
}

// finishLeader converts a leader's sim result, settles its flight
// (caching successes, waking followers) and records it on the job. Safe
// to call more than once per flight; only the first call takes effect.
func (s *Server) finishLeader(j *job, idx int, f *flight, r sim.Result) {
	res := api.ResultFromSim(r, api.SourceRun)
	res.Index = idx
	f.once.Do(func() {
		s.metrics.simsRun.Add(1)
		if r.Err != nil {
			s.metrics.simsFailed.Add(1)
			s.log.Warn("sim failed", "job_id", j.id, "spec_key", res.CacheKey, "error", r.Err.Error())
		} else {
			s.log.Debug("sim done", "job_id", j.id, "spec_key", res.CacheKey,
				"wall_ms", float64(r.Wall.Microseconds())/1000)
		}
		if r.Stats != nil {
			s.metrics.simCycles.Add(r.Stats.Cycles)
			s.metrics.simRetired.Add(r.Stats.Retired)
			s.metrics.l1dHits.Add(r.Stats.L1DHits)
			s.metrics.l1dMisses.Add(r.Stats.L1DMisses)
			s.metrics.l1dEvictions.Add(r.Stats.L1DEvictions)
			s.metrics.l2Hits.Add(r.Stats.L2Hits)
			s.metrics.l2Misses.Add(r.Stats.L2Misses)
			s.metrics.l2Evictions.Add(r.Stats.L2Evictions)
			s.metrics.dramAccesses.Add(r.Stats.DRAMAccesses)
		}
		s.metrics.simWallNS.Add(r.Wall.Nanoseconds())
		s.metrics.simDur.Observe(r.Wall)

		canonical := res
		canonical.Index = -1
		canonical.Key = res.CacheKey
		if res.Error == "" {
			s.cache.put(res.CacheKey, canonical)
			if s.cfg.Store != nil {
				// Write-behind: the result heads for disk immediately so a
				// restart stays warm even if the memory LRU never evicts it.
				s.cfg.Store.PutAsync(res.CacheKey, canonical)
			}
		}
		f.res = canonical
		s.flightMu.Lock()
		if s.flights[res.CacheKey] == f {
			delete(s.flights, res.CacheKey)
		}
		s.flightMu.Unlock()
		close(f.done)
	})
	if j.complete(idx, res) {
		s.publishSpecDone(j, res)
	}
}

// publishSpecDone broadcasts one completed spec on the event bus. Call
// it only after j.complete accepted the result, so the bus sees each
// slot resolve exactly once and Done counts monotonically.
func (s *Server) publishSpecDone(j *job, res api.Result) {
	ev := events.Event{
		Type:            events.TypeSpecDone,
		Job:             j.id,
		Key:             res.Key,
		Source:          res.Source,
		Done:            j.doneCount(),
		WallMS:          float64(res.WallNS) / 1e6,
		IPC:             res.IPC,
		Extrapolated:    res.Extrapolated,
		ExtrapolatedIPC: res.ExtrapolatedIPC,
		IPCErrorEst:     res.IPCErrorEst,
		Error:           res.Error,
	}
	s.hub.Publish(ev)
}

// flightObserver publishes leader completions as they happen, so stream
// subscribers and flight followers see results before the whole batch
// returns.
type flightObserver struct {
	s       *Server
	j       *job
	idx     []int
	flights []*flight
}

func (o *flightObserver) OnStart(index, total int, key string) {
	o.s.hub.Publish(events.Event{Type: events.TypeSpecStart, Job: o.j.id, Key: key})
}

func (o *flightObserver) OnFinish(index, total int, r sim.Result) {
	o.s.finishLeader(o.j, o.idx[index], o.flights[index], r)
}

// ----------------------------------------------------------- handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("no specs submitted"))
		return
	}
	specs := make([]sim.Spec, len(req.Specs))
	var verrs []error
	for i, ws := range req.Specs {
		sp, err := ws.Sim()
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			verrs = append(verrs, fmt.Errorf("spec %d: %w", i, err))
			continue
		}
		specs[i] = sp
	}
	if len(verrs) > 0 {
		s.writeError(w, http.StatusBadRequest, errors.Join(verrs...))
		return
	}

	j := newJob(fmt.Sprintf("j%d", s.nextID.Add(1)), specs, time.Now())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	admitted := false
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		admitted = true
	default:
	}
	s.mu.Unlock()

	if !admitted {
		s.metrics.jobsRejected.Add(1)
		s.log.Warn("job rejected", "specs", len(specs), "queue_limit", s.cfg.QueueLimit)
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, api.Error{
			Error:        fmt.Sprintf("admission queue full (%d jobs)", s.cfg.QueueLimit),
			RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
		})
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	s.hub.Publish(events.Event{Type: events.TypeJobQueued, Job: j.id, Specs: len(specs)})
	s.log.Info("job submitted", "job_id", j.id, "specs", len(specs))
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{JobID: j.id, Total: len(specs)})
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.metrics.streamConns.Add(1)
	defer s.metrics.streamConns.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		e, ok := j.next(i, r.Context().Done())
		if !ok {
			return
		}
		if err := enc.Encode(e); err != nil {
			s.streamError(j.id, "stream", err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleWS streams live events over a WebSocket (/v1/ws): the firehose
// by default, one job's stream with ?job={id}. One deterministic JSON
// text frame per event. Slow consumers are disconnected (and counted
// against msrd_stream_errors_total) rather than ever applying
// backpressure to publishers.
func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	s.metrics.wsConns.Add(1)
	defer s.metrics.wsConns.Add(-1)
	opt := events.ServeOptions{Job: r.URL.Query().Get("job"), WriteTimeout: s.cfg.WSWriteTimeout}
	if err := events.ServeWS(s.hub, w, r, opt); err != nil {
		s.streamError(opt.Job, "ws", err)
	}
}

// handleIntervals streams interval-telemetry records as NDJSON
// (api.IntervalRecord lines), incrementally: frames recorded by running
// leader simulations are forwarded from the event bus the moment the
// sampler produces them, flushed per frame, and each completed result
// contributes whatever the live path did not already deliver —
// everything, for cache/store/dedup results and for subscribers that
// attached after the run finished. Lines use the deterministic obs
// float formatting; per key the delivered records match the completed
// result's Intervals (plus any early frames a bounded ring would have
// overwritten, minus frames lost to a saturated subscriber buffer,
// which msrd_ws_dropped_total counts).
func (s *Server) handleIntervals(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.metrics.streamConns.Add(1)
	defer s.metrics.streamConns.Add(-1)
	// Subscribe before scanning completions so no frame falls between
	// "already completed" and "will arrive live".
	sub := s.hub.Subscribe(j.id, 4096)
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var buf []byte
	writeRec := func(key, source string, iv *obs.Interval) bool {
		buf = buf[:0]
		buf = append(buf, `{"key":`...)
		buf = events.AppendJSONString(buf, key)
		buf = append(buf, `,"source":`...)
		buf = events.AppendJSONString(buf, source)
		buf = append(buf, ',')
		buf = iv.AppendJSONFields(buf)
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			s.streamError(j.id, "intervals", err)
			return false
		}
		return true
	}
	// seen tracks the live high-water mark per key as a (window, index)
	// pair — multi-fidelity windows restart interval indices at zero —
	// so completion replay emits only the tail the live path missed.
	type mark struct {
		win, idx int
		any      bool
	}
	seen := make(map[string]*mark)
	live := func(ev events.Event) bool {
		if ev.Type != events.TypeInterval {
			return true
		}
		m := seen[ev.Key]
		if m == nil {
			m = &mark{}
			seen[ev.Key] = m
		}
		m.any = true
		if ev.Interval.Window > m.win || (ev.Interval.Window == m.win && ev.Interval.Index >= m.idx) {
			m.win, m.idx = ev.Interval.Window, ev.Interval.Index
		}
		if !writeRec(ev.Key, api.SourceRun, &ev.Interval) {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	done := r.Context().Done()
	for i := 0; ; i++ {
		for {
			e, ok, ch := j.peek(i)
			if ok {
				// A result's frames always precede its completion (the
				// sampler seals before the observer fires): drain what is
				// buffered so the tail computation sees the full live
				// prefix.
			drain:
				for {
					select {
					case ev, open := <-sub.C():
						if !open || !live(ev) {
							return
						}
					default:
						break drain
					}
				}
				m := seen[e.Key]
				for k := range e.Intervals {
					iv := &e.Intervals[k]
					if e.Source == api.SourceRun && m != nil && m.any &&
						(iv.Window < m.win || (iv.Window == m.win && iv.Index <= m.idx)) {
						continue // delivered live already
					}
					if !writeRec(e.Key, e.Source, iv) {
						return
					}
				}
				if flusher != nil {
					flusher.Flush()
				}
				break
			}
			if ch == nil {
				return // job done; the stream is complete
			}
			select {
			case ev, open := <-sub.C():
				if !open || !live(ev) {
					return
				}
			case <-ch:
			case <-done:
				return
			}
		}
	}
}

// streamError counts and logs one lost NDJSON stream record, so a
// truncated stream is visible on /metrics and in the logs rather than
// silent.
func (s *Server) streamError(jobID, endpoint string, err error) {
	s.metrics.streamErrors.Add(1)
	s.log.Warn("stream encode failed", "job_id", jobID, "endpoint", endpoint, "error", err.Error())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the orchestration readiness probe: 200 only when the
// daemon is not draining and its admission queue is below the readiness
// threshold. The fleet coordinator treats liveness (/healthz) and
// readiness separately — a saturated worker is alive but should not be
// handed new work.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	depth := len(s.queue)
	switch {
	case closed:
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"status": "draining"})
	case depth >= s.cfg.ReadyThreshold:
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"status": "saturated", "queue_depth": depth})
	default:
		writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ready", "queue_depth": depth})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var st storeStats
	if s.cfg.Store != nil {
		c := s.cfg.Store.Counters()
		st = storeStats{
			entries:   s.cfg.Store.Len(),
			bytes:     s.cfg.Store.Size(),
			hits:      c.Hits,
			misses:    c.Misses,
			evictions: c.Evictions,
			corrupt:   c.Corrupt,
		}
	}
	var ck ckptStats
	if s.cfg.Checkpoints != nil {
		c := s.cfg.Checkpoints.Counters()
		ck = ckptStats{
			entries:      s.cfg.Checkpoints.Len(),
			bytes:        s.cfg.Checkpoints.Size(),
			diskEntries:  s.cfg.Checkpoints.DiskLen(),
			diskBytes:    s.cfg.Checkpoints.DiskSize(),
			hits:         c.Hits,
			misses:       c.Misses,
			bytesRead:    c.BytesRead,
			bytesWritten: c.BytesWritten,
			evictions:    c.Evictions,
			corrupt:      c.Corrupt,
		}
	}
	s.metrics.write(w, len(s.queue), s.cache.len(), st, ck, s.hub.Dropped(), time.Since(s.started).Seconds())
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.Error{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
