// Package server implements msrd, the simulation-as-a-service daemon:
// an HTTP front end over the internal/sim orchestration layer with a
// content-addressed result cache, singleflight dedup of identical
// in-flight specs, a bounded admission queue that sheds load with 429,
// and live Prometheus metrics.
//
// API (JSON; see internal/api for the shapes):
//
//	POST /v1/jobs              submit a batch of specs -> job id
//	GET  /v1/jobs/{id}         job status; results once done
//	GET  /v1/jobs/{id}/stream  NDJSON of per-simulation completions
//	GET  /healthz              liveness ("draining" during shutdown)
//	GET  /metrics              Prometheus text format
//
// Results are cached and deduplicated by sim.Spec.CanonicalKey(): a wire
// spec names a registry workload plus engine geometry and policies, the
// registry builders are deterministic, so the canonical key fully
// determines the simulation's outcome. Two jobs asking for the same key
// share one simulation; a repeated sweep is served from cache.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mssr/internal/api"
	"mssr/internal/sim"
)

// Config tunes the daemon. The zero value is usable: NumCPU-parallel
// simulations, one job at a time, a 64-job queue and a 4096-entry cache.
type Config struct {
	// SimJobs bounds concurrently running simulations within a job
	// (<= 0 = NumCPU).
	SimJobs int
	// Workers is how many jobs execute concurrently (<= 0 = 1). Total
	// simulation parallelism is bounded by Workers*SimJobs.
	Workers int
	// QueueLimit bounds jobs queued behind the workers; submissions
	// beyond it are shed with 429 (<= 0 = 64).
	QueueLimit int
	// CacheEntries bounds the result cache (0 = 4096; < 0 disables).
	CacheEntries int
	// DefaultTimeout bounds each simulation's wall time unless the spec
	// carries its own (0 = unbounded).
	DefaultTimeout time.Duration
	// JobTimeout bounds a whole job's execution (0 = unbounded).
	JobTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses
	// (0 = 1s).
	RetryAfter time.Duration
	// Backend overrides how leader specs are executed. nil (the normal
	// case) builds a sim.Runner per job, wired with an observer that
	// publishes completions live; tests inject controllable fakes.
	Backend sim.Backend
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// flight is one in-progress simulation identified by its canonical key.
// Followers (identical specs from any job) wait on done and read res.
type flight struct {
	once sync.Once
	done chan struct{}
	res  api.Result
}

// Server is the daemon. Create with New, serve with any http.Server,
// stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics metrics
	cache   *resultCache

	mu     sync.Mutex // guards jobs, closed, queue sends
	jobs   map[string]*job
	closed bool
	queue  chan *job

	flightMu sync.Mutex
	flights  map[string]*flight

	nextID  atomic.Uint64
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newResultCache(cfg.CacheEntries),
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueLimit),
		flights: make(map[string]*flight),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the daemon: no new submissions are admitted, queued
// and running jobs are given until ctx's deadline to finish, then the
// remaining simulations are cancelled. It returns nil on a clean drain
// and ctx.Err() if the deadline forced cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-drained
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// ---------------------------------------------------------- execution ---

// runJob resolves every spec of the job: cache hit, join of an identical
// in-flight simulation, or a fresh run (as the flight leader for that
// canonical key).
func (s *Server) runJob(j *job) {
	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	j.start(time.Now())

	type joined struct {
		idx int
		f   *flight
	}
	var (
		leaders       []sim.Spec
		leaderIdx     []int
		leaderFlights []*flight
		waits         []joined
	)
	for i := range j.specs {
		sp := &j.specs[i]
		ck := sp.CanonicalKey()
		if res, ok := s.cache.get(ck); ok {
			s.metrics.cacheHits.Add(1)
			res.Index, res.Key, res.Source, res.WallNS = i, sp.Key(), api.SourceCache, 0
			j.complete(i, res)
			continue
		}
		s.metrics.cacheMisses.Add(1)
		s.flightMu.Lock()
		if f, ok := s.flights[ck]; ok {
			s.flightMu.Unlock()
			s.metrics.dedupJoins.Add(1)
			waits = append(waits, joined{i, f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[ck] = f
		s.flightMu.Unlock()
		leaders = append(leaders, *sp)
		leaderIdx = append(leaderIdx, i)
		leaderFlights = append(leaderFlights, f)
	}

	if len(leaders) > 0 {
		backend := s.cfg.Backend
		if backend == nil {
			backend = &sim.Runner{
				Jobs:    s.cfg.SimJobs,
				Timeout: s.cfg.DefaultTimeout,
				Observer: &flightObserver{
					s: s, j: j, idx: leaderIdx, flights: leaderFlights,
				},
			}
		}
		results, _ := backend.Run(ctx, leaders)
		// The observer already completed everything it saw finish; this
		// sweep covers custom backends and jobs the cancellation kept
		// from dispatching (which get no observer callback).
		for k := range leaders {
			var r sim.Result
			if k < len(results) {
				r = results[k]
			} else {
				r = sim.Result{Index: k, Key: leaders[k].Key(), Spec: leaders[k], Err: ctx.Err()}
			}
			if r.Err == nil && r.Stats == nil && results == nil {
				r.Err = errors.New("backend returned no result")
			}
			s.finishLeader(j, leaderIdx[k], leaderFlights[k], r)
		}
	}

	for _, w := range waits {
		select {
		case <-w.f.done:
			r := w.f.res
			r.Index, r.Key, r.Source = w.idx, j.specs[w.idx].Key(), api.SourceDedup
			j.complete(w.idx, r)
		case <-ctx.Done():
			j.complete(w.idx, api.Result{
				Index:    w.idx,
				Key:      j.specs[w.idx].Key(),
				CacheKey: j.specs[w.idx].CanonicalKey(),
				Source:   api.SourceDedup,
				Error:    ctx.Err().Error(),
			})
		}
	}

	j.finish(time.Now(), nil)
	if j.failed() {
		s.metrics.jobsFailed.Add(1)
	} else {
		s.metrics.jobsCompleted.Add(1)
	}
}

// finishLeader converts a leader's sim result, settles its flight
// (caching successes, waking followers) and records it on the job. Safe
// to call more than once per flight; only the first call takes effect.
func (s *Server) finishLeader(j *job, idx int, f *flight, r sim.Result) {
	res := api.ResultFromSim(r, api.SourceRun)
	res.Index = idx
	f.once.Do(func() {
		s.metrics.simsRun.Add(1)
		if r.Err != nil {
			s.metrics.simsFailed.Add(1)
		}
		if r.Stats != nil {
			s.metrics.simCycles.Add(r.Stats.Cycles)
			s.metrics.simRetired.Add(r.Stats.Retired)
		}
		s.metrics.simWallNS.Add(r.Wall.Nanoseconds())

		canonical := res
		canonical.Index = -1
		canonical.Key = res.CacheKey
		if res.Error == "" {
			s.cache.put(res.CacheKey, canonical)
		}
		f.res = canonical
		s.flightMu.Lock()
		if s.flights[res.CacheKey] == f {
			delete(s.flights, res.CacheKey)
		}
		s.flightMu.Unlock()
		close(f.done)
	})
	j.complete(idx, res)
}

// flightObserver publishes leader completions as they happen, so stream
// subscribers and flight followers see results before the whole batch
// returns.
type flightObserver struct {
	s       *Server
	j       *job
	idx     []int
	flights []*flight
}

func (o *flightObserver) OnStart(index, total int, key string) {}

func (o *flightObserver) OnFinish(index, total int, r sim.Result) {
	o.s.finishLeader(o.j, o.idx[index], o.flights[index], r)
}

// ----------------------------------------------------------- handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("no specs submitted"))
		return
	}
	specs := make([]sim.Spec, len(req.Specs))
	var verrs []error
	for i, ws := range req.Specs {
		sp, err := ws.Sim()
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			verrs = append(verrs, fmt.Errorf("spec %d: %w", i, err))
			continue
		}
		specs[i] = sp
	}
	if len(verrs) > 0 {
		s.writeError(w, http.StatusBadRequest, errors.Join(verrs...))
		return
	}

	j := newJob(fmt.Sprintf("j%d", s.nextID.Add(1)), specs, time.Now())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	admitted := false
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		admitted = true
	default:
	}
	s.mu.Unlock()

	if !admitted {
		s.metrics.jobsRejected.Add(1)
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, api.Error{
			Error:        fmt.Sprintf("admission queue full (%d jobs)", s.cfg.QueueLimit),
			RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
		})
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{JobID: j.id, Total: len(specs)})
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.metrics.streamConns.Add(1)
	defer s.metrics.streamConns.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		e, ok := j.next(i, r.Context().Done())
		if !ok {
			return
		}
		if err := enc.Encode(e); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, len(s.queue), s.cache.len())
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.Error{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
