package server

import (
	"sync"
	"time"

	"mssr/internal/api"
	"mssr/internal/sim"
)

// job is one submitted batch of specs moving through the daemon:
// queued -> running -> done. Results are recorded positionally (submit
// order) and additionally published in completion order to any NDJSON
// stream subscribers.
type job struct {
	id    string
	specs []sim.Spec

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	// results is positional (one slot per spec); filled marks which
	// slots hold a completed result.
	results []api.Result
	filled  []bool
	done    int
	// events is the completion-order log the stream endpoint replays.
	events     []api.Result
	cacheHits  int
	dedupJoins int
	err        error
	// notify is closed and replaced on every publication; stream
	// subscribers wait on it to pick up new events.
	notify chan struct{}
}

func newJob(id string, specs []sim.Spec, now time.Time) *job {
	return &job{
		id:        id,
		specs:     specs,
		state:     api.StateQueued,
		submitted: now,
		results:   make([]api.Result, len(specs)),
		filled:    make([]bool, len(specs)),
		notify:    make(chan struct{}),
	}
}

// start marks the job running.
func (j *job) start(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = api.StateRunning
	j.started = now
}

// complete records the result for spec index i and publishes it. A slot
// completes at most once: the flight observer and the post-run sweep may
// both attempt it, the second attempt is a no-op.
func (j *job) complete(i int, r api.Result) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.filled[i] {
		return false
	}
	j.filled[i] = true
	j.results[i] = r
	j.done++
	switch r.Source {
	case api.SourceCache, api.SourceStore:
		// Both tiers served the spec without running a simulation; the
		// wire JobStatus counts them together as cache hits.
		j.cacheHits++
	case api.SourceDedup:
		j.dedupJoins++
	}
	j.events = append(j.events, r)
	close(j.notify)
	j.notify = make(chan struct{})
	return true
}

// finish marks the job done with an optional job-level error.
func (j *job) finish(now time.Time, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = api.StateDone
	j.finished = now
	j.err = err
	close(j.notify)
	j.notify = make(chan struct{})
}

// failed reports whether any recorded result carries an error.
func (j *job) failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return true
	}
	for i := range j.results {
		if j.filled[i] && j.results[i].Error != "" {
			return true
		}
	}
	return false
}

// status snapshots the job as a wire JobStatus. Results are attached
// only once the job is done, so pollers never see a half-filled
// positional slice.
func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		ID:         j.id,
		State:      j.state,
		Total:      len(j.specs),
		Done:       j.done,
		CacheHits:  j.cacheHits,
		DedupJoins: j.dedupJoins,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == api.StateDone {
		st.Results = append([]api.Result(nil), j.results...)
	}
	return st
}

// doneCount reports how many specs have resolved so far.
func (j *job) doneCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// peek returns the completion-order event at position i if it already
// exists. When it does not, the third return is a channel closed at the
// next publication — nil when the job is done and no further events
// will come. The non-blocking half of next, for handlers that multiplex
// completions with a live event subscription.
func (j *job) peek(i int) (api.Result, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		return j.events[i], true, nil
	}
	if j.state == api.StateDone {
		return api.Result{}, false, nil
	}
	return api.Result{}, false, j.notify
}

// next returns the completion-order event at position i, blocking
// until it exists, the job finishes, or cancel is closed. The second
// return is false when no more events will come.
func (j *job) next(i int, cancel <-chan struct{}) (api.Result, bool) {
	for {
		j.mu.Lock()
		if i < len(j.events) {
			e := j.events[i]
			j.mu.Unlock()
			return e, true
		}
		if j.state == api.StateDone {
			j.mu.Unlock()
			return api.Result{}, false
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			return api.Result{}, false
		}
	}
}
