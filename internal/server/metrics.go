package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics holds the daemon's counters, exported in Prometheus text
// exposition format on /metrics. All fields are atomics: they are
// updated from job workers and read by the scrape handler concurrently.
type metrics struct {
	jobsSubmitted atomic.Uint64 // accepted into the queue
	jobsRejected  atomic.Uint64 // shed with 429 at admission
	jobsCompleted atomic.Uint64 // finished with every simulation ok
	jobsFailed    atomic.Uint64 // finished with >= 1 failed simulation
	jobsRunning   atomic.Int64  // gauge: currently executing

	cacheHits   atomic.Uint64 // specs served from the result cache
	cacheMisses atomic.Uint64 // specs that missed the cache
	dedupJoins  atomic.Uint64 // specs that joined an identical in-flight run

	simsRun     atomic.Uint64 // simulations actually executed
	simsFailed  atomic.Uint64 // executed simulations that returned an error
	simCycles   atomic.Uint64 // cumulative simulated cycles
	simRetired  atomic.Uint64 // cumulative retired instructions
	simWallNS   atomic.Int64  // cumulative simulation wall time
	streamConns atomic.Int64  // gauge: open NDJSON streams
}

// write renders every metric. queueDepth and cacheLen are sampled by the
// caller (they are gauges owned by other structures).
func (m *metrics) write(w io.Writer, queueDepth, cacheLen int) {
	emit := func(name, help, typ string, value interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
	}
	emit("msrd_jobs_submitted_total", "Jobs accepted into the admission queue.", "counter", m.jobsSubmitted.Load())
	emit("msrd_jobs_rejected_total", "Jobs shed with 429 because the queue was full.", "counter", m.jobsRejected.Load())
	emit("msrd_jobs_completed_total", "Jobs finished with every simulation successful.", "counter", m.jobsCompleted.Load())
	emit("msrd_jobs_failed_total", "Jobs finished with at least one failed simulation.", "counter", m.jobsFailed.Load())
	emit("msrd_jobs_running", "Jobs currently executing.", "gauge", m.jobsRunning.Load())
	emit("msrd_queue_depth", "Jobs queued and not yet executing.", "gauge", queueDepth)
	emit("msrd_cache_hits_total", "Specs served from the content-addressed result cache.", "counter", m.cacheHits.Load())
	emit("msrd_cache_misses_total", "Specs that missed the result cache.", "counter", m.cacheMisses.Load())
	emit("msrd_cache_entries", "Results currently cached.", "gauge", cacheLen)
	emit("msrd_dedup_joins_total", "Specs deduplicated onto an identical in-flight simulation.", "counter", m.dedupJoins.Load())
	emit("msrd_sims_run_total", "Simulations executed (cache hits and dedup joins excluded).", "counter", m.simsRun.Load())
	emit("msrd_sims_failed_total", "Executed simulations that returned an error.", "counter", m.simsFailed.Load())
	emit("msrd_sim_cycles_total", "Cumulative simulated cycles across executed simulations.", "counter", m.simCycles.Load())
	emit("msrd_sim_retired_total", "Cumulative retired instructions across executed simulations.", "counter", m.simRetired.Load())
	emit("msrd_sim_wall_seconds_total", "Cumulative simulation wall time in seconds.", "counter",
		fmt.Sprintf("%.6f", float64(m.simWallNS.Load())/1e9))
	mips := 0.0
	if wall := float64(m.simWallNS.Load()) / 1e9; wall > 0 {
		mips = float64(m.simRetired.Load()) / wall / 1e6
	}
	emit("msrd_sim_mips", "Aggregate simulated throughput: retired instructions per simulation wall second, in millions.", "gauge",
		fmt.Sprintf("%.6f", mips))
	emit("msrd_stream_connections", "Open NDJSON result streams.", "gauge", m.streamConns.Load())
}
