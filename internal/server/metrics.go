package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"mssr/internal/obs"
)

// metrics holds the daemon's counters, exported in Prometheus text
// exposition format on /metrics. All fields are atomics: they are
// updated from job workers and read by the scrape handler concurrently.
type metrics struct {
	jobsSubmitted atomic.Uint64 // accepted into the queue
	jobsRejected  atomic.Uint64 // shed with 429 at admission
	jobsCompleted atomic.Uint64 // finished with every simulation ok
	jobsFailed    atomic.Uint64 // finished with >= 1 failed simulation
	jobsRunning   atomic.Int64  // gauge: currently executing

	cacheHits      atomic.Uint64 // specs served from the in-memory result cache
	cacheMisses    atomic.Uint64 // specs that missed the in-memory cache
	cacheEvictions atomic.Uint64 // entries the in-memory LRU bound pushed out
	dedupJoins     atomic.Uint64 // specs that joined an identical in-flight run

	simsRun     atomic.Uint64 // simulations actually executed
	simsFailed  atomic.Uint64 // executed simulations that returned an error
	simCycles   atomic.Uint64 // cumulative simulated cycles
	simRetired  atomic.Uint64 // cumulative retired instructions
	simWallNS   atomic.Int64  // cumulative simulation wall time
	streamConns atomic.Int64  // gauge: open NDJSON streams

	streamErrors atomic.Uint64 // NDJSON stream records lost to encode/write failures
	wsConns      atomic.Int64  // gauge: open /v1/ws event subscriptions

	// Memory hierarchy totals, mirrored from executed simulations' stats.
	l1dHits      atomic.Uint64
	l1dMisses    atomic.Uint64
	l1dEvictions atomic.Uint64
	l2Hits       atomic.Uint64
	l2Misses     atomic.Uint64
	l2Evictions  atomic.Uint64
	dramAccesses atomic.Uint64

	requestDur *obs.Histogram // HTTP request handling latency
	simDur     *obs.Histogram // executed simulation wall time

	// Build identity, resolved once in init for the build_info gauge.
	version, goVersion, revision string
}

// init allocates the histograms and resolves the build identity; call
// once before serving.
func (m *metrics) init() {
	m.requestDur = obs.NewHistogram(obs.DurationBuckets)
	m.simDur = obs.NewHistogram(obs.DurationBuckets)
	m.version, m.goVersion, m.revision = obs.BuildInfo()
}

// storeStats is the persistent store's state sampled for one scrape;
// the zero value (store disabled) still emits every series at zero so
// dashboards see constant time series either way.
type storeStats struct {
	entries                          int
	bytes                            int64
	hits, misses, evictions, corrupt uint64
}

// ckptStats is the checkpoint store's state sampled for one scrape;
// like storeStats, the zero value still emits every series.
type ckptStats struct {
	entries                 int
	bytes                   int64
	diskEntries             int
	diskBytes               int64
	hits, misses            uint64
	bytesRead, bytesWritten uint64
	evictions, corrupt      uint64
}

// write renders every metric. queueDepth, cacheLen, st, ck, wsDropped
// and uptimeSec are sampled by the caller (they are gauges owned by
// other structures).
func (m *metrics) write(w io.Writer, queueDepth, cacheLen int, st storeStats, ck ckptStats, wsDropped uint64, uptimeSec float64) {
	emit := func(name, help, typ string, value interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
	}
	fmt.Fprintf(w, "# HELP msrd_build_info Build identity of the running daemon (constant 1).\n# TYPE msrd_build_info gauge\nmsrd_build_info{version=%q,go_version=%q,revision=%q} 1\n",
		m.version, m.goVersion, m.revision)
	emit("msrd_uptime_seconds", "Seconds since the daemon started serving.", "gauge",
		fmt.Sprintf("%.3f", uptimeSec))
	emit("msrd_jobs_submitted_total", "Jobs accepted into the admission queue.", "counter", m.jobsSubmitted.Load())
	emit("msrd_jobs_rejected_total", "Jobs shed with 429 because the queue was full.", "counter", m.jobsRejected.Load())
	emit("msrd_jobs_completed_total", "Jobs finished with every simulation successful.", "counter", m.jobsCompleted.Load())
	emit("msrd_jobs_failed_total", "Jobs finished with at least one failed simulation.", "counter", m.jobsFailed.Load())
	emit("msrd_jobs_running", "Jobs currently executing.", "gauge", m.jobsRunning.Load())
	emit("msrd_queue_depth", "Jobs queued and not yet executing.", "gauge", queueDepth)
	emit("msrd_cache_hits_total", "Specs served from the content-addressed result cache.", "counter", m.cacheHits.Load())
	emit("msrd_cache_misses_total", "Specs that missed the result cache.", "counter", m.cacheMisses.Load())
	emit("msrd_cache_entries", "Results currently cached.", "gauge", cacheLen)
	emit("msrd_cache_evictions_total", "Results the in-memory LRU bound evicted (written behind to the store when one is configured).", "counter", m.cacheEvictions.Load())
	emit("msrd_store_hits_total", "Specs served from the persistent content-addressed store.", "counter", st.hits)
	emit("msrd_store_misses_total", "Persistent-store lookups that missed.", "counter", st.misses)
	emit("msrd_store_evictions_total", "Results the persistent store's size bound evicted from disk.", "counter", st.evictions)
	emit("msrd_store_corrupt_total", "Persistent-store entries dropped after failing verification.", "counter", st.corrupt)
	emit("msrd_store_entries", "Results currently persisted on disk.", "gauge", st.entries)
	emit("msrd_store_bytes", "Total bytes of persisted result files.", "gauge", st.bytes)
	emit("msrd_ckpt_hits_total", "Architectural boundary states restored from the checkpoint store.", "counter", ck.hits)
	emit("msrd_ckpt_misses_total", "Checkpoint lookups that missed and fell back to functional emulation.", "counter", ck.misses)
	emit("msrd_ckpt_evictions_total", "Checkpoints the store's size bounds evicted.", "counter", ck.evictions)
	emit("msrd_ckpt_corrupt_total", "Persisted checkpoints dropped after failing verification.", "counter", ck.corrupt)
	emit("msrd_ckpt_bytes_read_total", "Bytes of checkpoint state served to restores.", "counter", ck.bytesRead)
	emit("msrd_ckpt_bytes_written_total", "Bytes of checkpoint state captured into the store.", "counter", ck.bytesWritten)
	emit("msrd_ckpt_entries", "Checkpoints currently held in memory.", "gauge", ck.entries)
	emit("msrd_ckpt_bytes", "Total bytes of in-memory checkpoint state.", "gauge", ck.bytes)
	emit("msrd_ckpt_disk_entries", "Checkpoints currently persisted on disk.", "gauge", ck.diskEntries)
	emit("msrd_ckpt_disk_bytes", "Total bytes of persisted checkpoint files.", "gauge", ck.diskBytes)
	emit("msrd_dedup_joins_total", "Specs deduplicated onto an identical in-flight simulation.", "counter", m.dedupJoins.Load())
	emit("msrd_sims_run_total", "Simulations executed (cache hits and dedup joins excluded).", "counter", m.simsRun.Load())
	emit("msrd_sims_failed_total", "Executed simulations that returned an error.", "counter", m.simsFailed.Load())
	emit("msrd_sim_cycles_total", "Cumulative simulated cycles across executed simulations.", "counter", m.simCycles.Load())
	emit("msrd_sim_retired_total", "Cumulative retired instructions across executed simulations.", "counter", m.simRetired.Load())
	emit("msrd_sim_wall_seconds_total", "Cumulative simulation wall time in seconds.", "counter",
		fmt.Sprintf("%.6f", float64(m.simWallNS.Load())/1e9))
	mips := 0.0
	if wall := float64(m.simWallNS.Load()) / 1e9; wall > 0 {
		mips = float64(m.simRetired.Load()) / wall / 1e6
	}
	emit("msrd_sim_mips", "Aggregate simulated throughput: retired instructions per simulation wall second, in millions.", "gauge",
		fmt.Sprintf("%.6f", mips))
	emit("msrd_stream_connections", "Open NDJSON result streams.", "gauge", m.streamConns.Load())
	emit("msrd_stream_errors_total", "NDJSON stream records or WebSocket subscribers lost to write failures or stalls.", "counter", m.streamErrors.Load())
	emit("msrd_ws_connections", "Open /v1/ws live-event subscriptions.", "gauge", m.wsConns.Load())
	emit("msrd_ws_dropped_total", "Live event frames dropped on full subscriber buffers.", "counter", wsDropped)
	emit("msrd_sim_l1d_hits_total", "Cumulative L1D cache hits across executed simulations.", "counter", m.l1dHits.Load())
	emit("msrd_sim_l1d_misses_total", "Cumulative L1D cache misses across executed simulations.", "counter", m.l1dMisses.Load())
	emit("msrd_sim_l1d_evictions_total", "Cumulative L1D cache evictions across executed simulations.", "counter", m.l1dEvictions.Load())
	emit("msrd_sim_l2_hits_total", "Cumulative L2 cache hits across executed simulations.", "counter", m.l2Hits.Load())
	emit("msrd_sim_l2_misses_total", "Cumulative L2 cache misses across executed simulations.", "counter", m.l2Misses.Load())
	emit("msrd_sim_l2_evictions_total", "Cumulative L2 cache evictions across executed simulations.", "counter", m.l2Evictions.Load())
	emit("msrd_sim_dram_accesses_total", "Cumulative DRAM accesses across executed simulations.", "counter", m.dramAccesses.Load())
	m.requestDur.Write(w, "msrd_request_duration_seconds", "HTTP request handling latency.")
	m.simDur.Write(w, "msrd_sim_duration_seconds", "Executed simulation wall time.")
}
