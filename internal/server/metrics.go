package server

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// durationBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond cache hits to multi-minute SPEC-scale simulations.
var durationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120,
}

// histogram is a Prometheus-style cumulative histogram of durations.
// Observations and scrapes are concurrent: per-bucket counts, the total
// and the sum are all atomics (the sum in integer nanoseconds, so no
// float CAS loop is needed). Rendered counts may be momentarily ahead of
// the rendered sum under concurrent observation, which Prometheus
// tolerates between scrapes.
type histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound; observations beyond all bounds land in +Inf (total - sum of counts)
	total  atomic.Uint64
	sumNS  atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	for i, b := range h.bounds {
		if secs <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// write renders the histogram in Prometheus text exposition format:
// cumulative {name}_bucket{le="..."} series ending in le="+Inf", then
// {name}_sum and {name}_count.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total.Load())
	fmt.Fprintf(w, "%s_sum %.6f\n", name, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
}

// metrics holds the daemon's counters, exported in Prometheus text
// exposition format on /metrics. All fields are atomics: they are
// updated from job workers and read by the scrape handler concurrently.
type metrics struct {
	jobsSubmitted atomic.Uint64 // accepted into the queue
	jobsRejected  atomic.Uint64 // shed with 429 at admission
	jobsCompleted atomic.Uint64 // finished with every simulation ok
	jobsFailed    atomic.Uint64 // finished with >= 1 failed simulation
	jobsRunning   atomic.Int64  // gauge: currently executing

	cacheHits      atomic.Uint64 // specs served from the in-memory result cache
	cacheMisses    atomic.Uint64 // specs that missed the in-memory cache
	cacheEvictions atomic.Uint64 // entries the in-memory LRU bound pushed out
	dedupJoins     atomic.Uint64 // specs that joined an identical in-flight run

	simsRun     atomic.Uint64 // simulations actually executed
	simsFailed  atomic.Uint64 // executed simulations that returned an error
	simCycles   atomic.Uint64 // cumulative simulated cycles
	simRetired  atomic.Uint64 // cumulative retired instructions
	simWallNS   atomic.Int64  // cumulative simulation wall time
	streamConns atomic.Int64  // gauge: open NDJSON streams

	streamErrors atomic.Uint64 // NDJSON stream records lost to encode/write failures

	// Memory hierarchy totals, mirrored from executed simulations' stats.
	l1dHits      atomic.Uint64
	l1dMisses    atomic.Uint64
	l1dEvictions atomic.Uint64
	l2Hits       atomic.Uint64
	l2Misses     atomic.Uint64
	l2Evictions  atomic.Uint64
	dramAccesses atomic.Uint64

	requestDur *histogram // HTTP request handling latency
	simDur     *histogram // executed simulation wall time
}

// init allocates the histograms; call once before serving.
func (m *metrics) init() {
	m.requestDur = newHistogram(durationBuckets)
	m.simDur = newHistogram(durationBuckets)
}

// storeStats is the persistent store's state sampled for one scrape;
// the zero value (store disabled) still emits every series at zero so
// dashboards see constant time series either way.
type storeStats struct {
	entries                          int
	bytes                            int64
	hits, misses, evictions, corrupt uint64
}

// write renders every metric. queueDepth, cacheLen and st are sampled by
// the caller (they are gauges owned by other structures).
func (m *metrics) write(w io.Writer, queueDepth, cacheLen int, st storeStats) {
	emit := func(name, help, typ string, value interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
	}
	emit("msrd_jobs_submitted_total", "Jobs accepted into the admission queue.", "counter", m.jobsSubmitted.Load())
	emit("msrd_jobs_rejected_total", "Jobs shed with 429 because the queue was full.", "counter", m.jobsRejected.Load())
	emit("msrd_jobs_completed_total", "Jobs finished with every simulation successful.", "counter", m.jobsCompleted.Load())
	emit("msrd_jobs_failed_total", "Jobs finished with at least one failed simulation.", "counter", m.jobsFailed.Load())
	emit("msrd_jobs_running", "Jobs currently executing.", "gauge", m.jobsRunning.Load())
	emit("msrd_queue_depth", "Jobs queued and not yet executing.", "gauge", queueDepth)
	emit("msrd_cache_hits_total", "Specs served from the content-addressed result cache.", "counter", m.cacheHits.Load())
	emit("msrd_cache_misses_total", "Specs that missed the result cache.", "counter", m.cacheMisses.Load())
	emit("msrd_cache_entries", "Results currently cached.", "gauge", cacheLen)
	emit("msrd_cache_evictions_total", "Results the in-memory LRU bound evicted (written behind to the store when one is configured).", "counter", m.cacheEvictions.Load())
	emit("msrd_store_hits_total", "Specs served from the persistent content-addressed store.", "counter", st.hits)
	emit("msrd_store_misses_total", "Persistent-store lookups that missed.", "counter", st.misses)
	emit("msrd_store_evictions_total", "Results the persistent store's size bound evicted from disk.", "counter", st.evictions)
	emit("msrd_store_corrupt_total", "Persistent-store entries dropped after failing verification.", "counter", st.corrupt)
	emit("msrd_store_entries", "Results currently persisted on disk.", "gauge", st.entries)
	emit("msrd_store_bytes", "Total bytes of persisted result files.", "gauge", st.bytes)
	emit("msrd_dedup_joins_total", "Specs deduplicated onto an identical in-flight simulation.", "counter", m.dedupJoins.Load())
	emit("msrd_sims_run_total", "Simulations executed (cache hits and dedup joins excluded).", "counter", m.simsRun.Load())
	emit("msrd_sims_failed_total", "Executed simulations that returned an error.", "counter", m.simsFailed.Load())
	emit("msrd_sim_cycles_total", "Cumulative simulated cycles across executed simulations.", "counter", m.simCycles.Load())
	emit("msrd_sim_retired_total", "Cumulative retired instructions across executed simulations.", "counter", m.simRetired.Load())
	emit("msrd_sim_wall_seconds_total", "Cumulative simulation wall time in seconds.", "counter",
		fmt.Sprintf("%.6f", float64(m.simWallNS.Load())/1e9))
	mips := 0.0
	if wall := float64(m.simWallNS.Load()) / 1e9; wall > 0 {
		mips = float64(m.simRetired.Load()) / wall / 1e6
	}
	emit("msrd_sim_mips", "Aggregate simulated throughput: retired instructions per simulation wall second, in millions.", "gauge",
		fmt.Sprintf("%.6f", mips))
	emit("msrd_stream_connections", "Open NDJSON result streams.", "gauge", m.streamConns.Load())
	emit("msrd_stream_errors_total", "NDJSON stream records lost to encode or write failures.", "counter", m.streamErrors.Load())
	emit("msrd_sim_l1d_hits_total", "Cumulative L1D cache hits across executed simulations.", "counter", m.l1dHits.Load())
	emit("msrd_sim_l1d_misses_total", "Cumulative L1D cache misses across executed simulations.", "counter", m.l1dMisses.Load())
	emit("msrd_sim_l1d_evictions_total", "Cumulative L1D cache evictions across executed simulations.", "counter", m.l1dEvictions.Load())
	emit("msrd_sim_l2_hits_total", "Cumulative L2 cache hits across executed simulations.", "counter", m.l2Hits.Load())
	emit("msrd_sim_l2_misses_total", "Cumulative L2 cache misses across executed simulations.", "counter", m.l2Misses.Load())
	emit("msrd_sim_l2_evictions_total", "Cumulative L2 cache evictions across executed simulations.", "counter", m.l2Evictions.Load())
	emit("msrd_sim_dram_accesses_total", "Cumulative DRAM accesses across executed simulations.", "counter", m.dramAccesses.Load())
	m.requestDur.write(w, "msrd_request_duration_seconds", "HTTP request handling latency.")
	m.simDur.write(w, "msrd_sim_duration_seconds", "Executed simulation wall time.")
}
