package server

import (
	"container/list"
	"sync"

	"mssr/internal/api"
)

// resultCache is the content-addressed result store: an LRU map from a
// spec's canonical key (sim.Spec.CanonicalKey) to its completed wire
// result. Only successful simulations are admitted — failures may be
// transient (timeouts, shutdown cancellation), and serving a stale
// failure for a now-healthy spec would be wrong, while serving a stale
// success is impossible: the canonical key fully determines the
// simulation, which is deterministic.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	// onEvict, when set, receives every entry the LRU bound pushes out.
	// The server points it at the persistent store's write-behind queue,
	// which makes the disk store a strict backing layer: nothing leaves
	// memory without a chance to land on disk.
	onEvict func(key string, res api.Result)
}

type cacheEntry struct {
	key string
	res api.Result
}

// newResultCache returns a cache bounded to cap entries; cap <= 0
// disables caching (every get misses, every put is dropped).
func newResultCache(cap int) *resultCache {
	return &resultCache{
		cap:     cap,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached result for the canonical key and marks it most
// recently used.
func (c *resultCache) get(key string) (api.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return api.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result under its canonical key, evicting the least
// recently used entries when the bound is exceeded.
func (c *resultCache) put(key string, res api.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	var evicted []*cacheEntry
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, e.key)
		evicted = append(evicted, e)
	}
	cb := c.onEvict
	c.mu.Unlock()
	// Deliver evictions outside the lock: the callback crosses into the
	// store layer and must not hold the hot-path cache mutex.
	if cb != nil {
		for _, e := range evicted {
			cb(e.key, e.res)
		}
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
