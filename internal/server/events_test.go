package server_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"mssr/internal/client"
	"mssr/internal/events"
	"mssr/internal/server"
)

// TestEventsLifecycle drives a sampled job through the daemon while a
// typed WebSocket subscriber (client.Events on the firehose) watches,
// and asserts the full lifecycle arrives in order: job_queued →
// job_start → spec_start → interval frames → spec_done per spec →
// job_done, with monotonically increasing sequence numbers.
func TestEventsLifecycle(t *testing.T) {
	srv, _, c := newTestDaemon(t, server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var got []events.Event
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.Events(ctx, "", func(ev events.Event) error {
			got = append(got, ev)
			if ev.Type == events.TypeJobDone || ev.Type == events.TypeJobFailed {
				return client.ErrStopEvents
			}
			return nil
		})
	}()

	// The subscription must be live before the submit, or the queued
	// event races past it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("event subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}

	sub, err := c.Submit(ctx, sampledSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("event stream: %v", err)
	}

	// Sequence numbers are strictly increasing across the whole stream.
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("seq not monotonic at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}

	pos := func(match func(events.Event) bool) int {
		for i, ev := range got {
			if match(ev) {
				return i
			}
		}
		return -1
	}
	isType := func(typ string) func(events.Event) bool {
		return func(ev events.Event) bool { return ev.Type == typ && ev.Job == sub.JobID }
	}
	queued := pos(isType(events.TypeJobQueued))
	started := pos(isType(events.TypeJobStart))
	specStart := pos(isType(events.TypeSpecStart))
	interval := pos(func(ev events.Event) bool { return ev.Type == events.TypeInterval && ev.Job == sub.JobID })
	specDone := pos(isType(events.TypeSpecDone))
	done := pos(isType(events.TypeJobDone))
	order := []struct {
		name string
		at   int
	}{
		{"job_queued", queued},
		{"job_start", started},
		{"spec_start", specStart},
		{"interval", interval},
		{"spec_done", specDone},
		{"job_done", done},
	}
	for i, o := range order {
		if o.at < 0 {
			t.Fatalf("no %s event for %s in stream of %d events", o.name, sub.JobID, len(got))
		}
		if i > 0 && o.at <= order[i-1].at {
			t.Errorf("%s (at %d) did not follow %s (at %d)", o.name, o.at, order[i-1].name, order[i-1].at)
		}
	}

	// Interval frames carry the sampler payload and the spec key.
	iv := got[interval]
	if iv.Key == "" {
		t.Error("interval frame carries no spec key")
	}
	if iv.Interval.End <= iv.Interval.Start {
		t.Errorf("interval frame window [%d,%d) is empty", iv.Interval.Start, iv.Interval.End)
	}
	// Every spec resolves exactly once, Done counting up to the total.
	var dones []events.Event
	for _, ev := range got {
		if ev.Type == events.TypeSpecDone && ev.Job == sub.JobID {
			dones = append(dones, ev)
		}
	}
	if len(dones) != len(sampledSpecs()) {
		t.Fatalf("saw %d spec_done events, want %d", len(dones), len(sampledSpecs()))
	}
	for i, ev := range dones {
		if ev.Done != i+1 {
			t.Errorf("spec_done %d carries done=%d, want %d", i, ev.Done, i+1)
		}
		if ev.Error != "" {
			t.Errorf("spec %s failed: %s", ev.Key, ev.Error)
		}
	}
	if fin := got[done]; fin.Done != len(sampledSpecs()) {
		t.Errorf("job_done carries done=%d, want %d", fin.Done, len(sampledSpecs()))
	}
}

// TestEventsJobFilter pins the ?job= subscription: a filtered subscriber
// sees only its own job's events while another job runs concurrently.
func TestEventsJobFilter(t *testing.T) {
	srv, _, c := newTestDaemon(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// First job exists only to pollute the firehose.
	if _, err := c.Submit(ctx, sampledSpecs()[:1]); err != nil {
		t.Fatal(err)
	}

	// A job id is only known after submit; submit the watched job, then
	// subscribe to it and replay nothing — the job may already be done,
	// so only assert the filter on whatever does arrive.
	sub2, err := c.Submit(ctx, sampledSpecs()[1:])
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
	sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
	defer scancel()
	err = c.Events(sctx, sub2.JobID, func(ev events.Event) error {
		if ev.Job != "" && ev.Job != sub2.JobID {
			t.Errorf("job filter leaked event for %q: %+v", ev.Job, ev)
		}
		if ev.Type == events.TypeJobDone || ev.Type == events.TypeJobFailed {
			return client.ErrStopEvents
		}
		return nil
	})
	// The watched job can finish before the subscription attaches, in
	// which case the deadline fires with no leak observed — also a pass.
	if err != nil && sctx.Err() == nil {
		t.Fatalf("event stream: %v", err)
	}
}

// TestWSSlowConsumerDisconnected: a subscriber that connects and then
// never reads is disconnected once a frame write stalls past
// WSWriteTimeout, counted on msrd_stream_errors_total, and its
// connection gauge returns to zero. Publishers are never blocked.
func TestWSSlowConsumerDisconnected(t *testing.T) {
	srv, ts, c := newTestDaemon(t, server.Config{WSWriteTimeout: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	wsURL := ts.URL + "/v1/ws"
	conn, err := events.Dial(ctx, wsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// Flood the hub with frames big enough to fill the socket buffers of
	// a reader that never reads. Each publish must return immediately;
	// the stalled writer goroutine hits its deadline and disconnects.
	payload := strings.Repeat("x", 32<<10)
	deadline = time.Now().Add(15 * time.Second)
	for {
		start := time.Now()
		for i := 0; i < 64; i++ {
			srv.Hub().Publish(events.Event{Type: events.TypeJobFailed, Job: "flood", Error: payload})
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("publishing to a stalled subscriber took %s; must not block", d)
		}
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if metricValue(t, m, "msrd_stream_errors_total") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow consumer was never disconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The handler exits after the disconnect: the gauge drains to zero.
	deadline = time.Now().Add(5 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if metricValue(t, m, "msrd_ws_connections") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ws connection gauge never drained after slow-consumer disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
