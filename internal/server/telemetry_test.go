package server_test

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mssr/internal/api"
	"mssr/internal/server"
)

// sampledSpecs is microSpecs with interval telemetry attached.
func sampledSpecs() []api.Spec {
	specs := microSpecs()
	for i := range specs {
		specs[i].SampleInterval = 64
	}
	return specs
}

// syncBuffer is a concurrency-safe log sink: the daemon logs from worker
// and handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestIntervalEndpointAndHistograms(t *testing.T) {
	var logBuf syncBuffer
	srv, _, c := newTestDaemon(t, server.Config{
		Logger: slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	ctx := context.Background()
	sub, err := c.Submit(ctx, sampledSpecs())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range st.Results {
		if r.Error != "" {
			t.Fatalf("%s: %s", r.Key, r.Error)
		}
		if len(r.Intervals) == 0 {
			t.Errorf("%s: sampled result carries no intervals", r.Key)
		}
		if r.Stats.L1DHits+r.Stats.L1DMisses == 0 {
			t.Errorf("%s: result stats carry no L1D counters", r.Key)
		}
	}

	// The intervals endpoint replays every result's telemetry as NDJSON.
	var recs []api.IntervalRecord
	if err := c.Intervals(ctx, sub.JobID, func(rec api.IntervalRecord) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("intervals endpoint returned no records")
	}
	var total int
	for _, r := range st.Results {
		total += len(r.Intervals)
	}
	if len(recs) != total {
		t.Errorf("intervals endpoint returned %d records, results carry %d", len(recs), total)
	}
	keys := map[string]bool{}
	for _, r := range st.Results {
		keys[r.Key] = true
	}
	for _, rec := range recs {
		if !keys[rec.Key] {
			t.Errorf("interval record carries unknown key %q", rec.Key)
		}
		if rec.End <= rec.Start {
			t.Errorf("interval record [%d,%d) is empty", rec.Start, rec.End)
		}
	}

	// Histograms and memory-hierarchy counters are on /metrics.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"msrd_request_duration_seconds", "msrd_sim_duration_seconds"} {
		if !strings.Contains(m, name+`_bucket{le="+Inf"}`) {
			t.Errorf("metrics lack %s +Inf bucket", name)
		}
		if !strings.Contains(m, name+`_bucket{le="0.001"}`) {
			t.Errorf("metrics lack %s finite buckets", name)
		}
		if metricValue(t, m, name+"_count") < 1 {
			t.Errorf("%s_count is zero", name)
		}
	}
	if metricValue(t, m, "msrd_sim_duration_seconds_count") != float64(len(st.Results)) {
		t.Errorf("sim duration histogram counts %v observations, ran %d sims",
			metricValue(t, m, "msrd_sim_duration_seconds_count"), len(st.Results))
	}
	if metricValue(t, m, "msrd_sim_l1d_hits_total") <= 0 {
		t.Error("msrd_sim_l1d_hits_total not populated")
	}
	if metricValue(t, m, "msrd_sim_dram_accesses_total") <= 0 {
		t.Error("msrd_sim_dram_accesses_total not populated")
	}

	// The structured log saw the whole lifecycle. Drain the workers
	// first so the job-finish line is guaranteed written.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	logs := logBuf.String()
	for _, want := range []string{"job submitted", "job start", "job finish", "request_id=", "queue_ms=", "spec_key="} {
		if !strings.Contains(logs, want) {
			t.Errorf("structured log lacks %q:\n%s", want, logs)
		}
	}
}

// TestCachedResultsCarryIntervals pins that interval telemetry survives
// the content-addressed cache: sampling parameters are part of the
// canonical key, so a cached sampled result must return the original
// run's stream.
func TestCachedResultsCarryIntervals(t *testing.T) {
	_, _, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	specs := sampledSpecs()[:1]

	sub, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Wait(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Wait(ctx, sub2.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 1 {
		t.Fatalf("resubmission was not a cache hit: %+v", second)
	}
	if len(second.Results[0].Intervals) != len(first.Results[0].Intervals) {
		t.Errorf("cached result carries %d intervals, original %d",
			len(second.Results[0].Intervals), len(first.Results[0].Intervals))
	}

	// An unsampled spec for the same workload must NOT hit the sampled
	// cache entry (different canonical keys).
	plain := microSpecs()[:1]
	sub3, err := c.Submit(ctx, plain)
	if err != nil {
		t.Fatal(err)
	}
	third, err := c.Wait(ctx, sub3.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHits != 0 {
		t.Error("unsampled spec was served from the sampled cache entry")
	}
	if len(third.Results[0].Intervals) != 0 {
		t.Error("unsampled result carries intervals")
	}
}

// failAfterHeader is a ResponseWriter whose body writes fail, modelling
// a client that vanished mid-stream.
type failAfterHeader struct {
	header http.Header
	status int
}

func (f *failAfterHeader) Header() http.Header {
	if f.header == nil {
		f.header = make(http.Header)
	}
	return f.header
}
func (f *failAfterHeader) WriteHeader(code int)      { f.status = code }
func (f *failAfterHeader) Write([]byte) (int, error) { return 0, errors.New("connection lost") }

func TestStreamEncodeFailuresCounted(t *testing.T) {
	srv, _, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	sub, err := c.Submit(ctx, sampledSpecs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.JobID); err != nil {
		t.Fatal(err)
	}

	// Drive both NDJSON endpoints against a write-failing connection.
	for _, path := range []string{"/stream", "/intervals"} {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+sub.JobID+path, nil)
		srv.ServeHTTP(&failAfterHeader{}, req)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, m, "msrd_stream_errors_total"); got != 2 {
		t.Errorf("msrd_stream_errors_total = %v, want 2 (one per endpoint)", got)
	}
}
