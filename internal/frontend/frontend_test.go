package frontend

import (
	"testing"

	"mssr/internal/asm"
	"mssr/internal/bpred"
	"mssr/internal/isa"
)

func unit(t *testing.T, src string) (*Unit, *isa.Program) {
	t.Helper()
	p := asm.MustAssemble("t", src)
	return New(p, bpred.New(bpred.DefaultConfig())), p
}

func TestStraightLineBlockEndsAtFetchLimit(t *testing.T) {
	u, p := unit(t, `
  addi x1, x1, 1
  addi x2, x2, 1
  addi x3, x3, 1
  addi x4, x4, 1
  addi x5, x5, 1
  addi x6, x6, 1
  addi x7, x7, 1
  addi x9, x9, 1
  addi x11, x11, 1
  halt
`)
	blk, ok := u.NextBlock()
	if !ok {
		t.Fatal("fetch stalled unexpectedly")
	}
	if len(blk.Instrs) != isa.FetchBlockInstrs {
		t.Fatalf("block size = %d, want %d", len(blk.Instrs), isa.FetchBlockInstrs)
	}
	if blk.StartPC != p.Base || blk.EndPC != p.Base+7*4 || blk.NextPC != p.Base+8*4 {
		t.Errorf("block range %#x..%#x next %#x", blk.StartPC, blk.EndPC, blk.NextPC)
	}
}

func TestJumpEndsBlock(t *testing.T) {
	u, p := unit(t, `
  addi x1, x1, 1
  j target
  addi x2, x2, 1
target:
  addi x3, x3, 1
  halt
`)
	blk, _ := u.NextBlock()
	if len(blk.Instrs) != 2 {
		t.Fatalf("block size = %d, want 2 (addi + j)", len(blk.Instrs))
	}
	if blk.NextPC != p.Symbols["target"] {
		t.Errorf("NextPC = %#x, want %#x", blk.NextPC, p.Symbols["target"])
	}
	blk2, _ := u.NextBlock()
	if blk2.StartPC != p.Symbols["target"] {
		t.Errorf("second block starts at %#x", blk2.StartPC)
	}
}

func TestNotTakenBranchDoesNotEndBlock(t *testing.T) {
	// A cold predictor predicts not-taken (bimodal initialized weakly
	// not-taken), so the branch should be fetched through.
	u, _ := unit(t, `
  beq x1, x2, far
  addi x3, x3, 1
  addi x4, x4, 1
  halt
far:
  halt
`)
	blk, _ := u.NextBlock()
	if len(blk.Instrs) < 3 {
		t.Fatalf("block size = %d; not-taken branch must not end the block", len(blk.Instrs))
	}
	if blk.Instrs[0].PredTaken {
		t.Error("cold branch predicted taken")
	}
}

func TestHaltStallsFetch(t *testing.T) {
	u, p := unit(t, "addi x1, x1, 1\nhalt")
	blk, ok := u.NextBlock()
	if !ok || len(blk.Instrs) != 2 {
		t.Fatalf("first block = %+v, %v", blk, ok)
	}
	if !u.Stalled() {
		t.Fatal("fetch should stall at HALT")
	}
	if _, ok := u.NextBlock(); ok {
		t.Fatal("stalled unit must not produce blocks")
	}
	u.Redirect(p.Base)
	if u.Stalled() {
		t.Fatal("redirect must clear the stall")
	}
	if _, ok := u.NextBlock(); !ok {
		t.Fatal("fetch should resume after redirect")
	}
}

func TestCallPushesRASAndReturnPops(t *testing.T) {
	u, p := unit(t, `
  jal fn
  halt
fn:
  addi x1, x1, 1
  ret
`)
	blk, _ := u.NextBlock() // jal
	if !blk.Instrs[0].IsCall {
		t.Error("jal ra should be marked a call")
	}
	if blk.NextPC != p.Symbols["fn"] {
		t.Fatalf("call target = %#x", blk.NextPC)
	}
	blk, _ = u.NextBlock() // fn body incl. ret
	last := blk.Instrs[len(blk.Instrs)-1]
	if !last.IsReturn {
		t.Fatal("ret should be marked a return")
	}
	if last.PredNextPC != p.Base+4 {
		t.Errorf("return predicted to %#x, want %#x", last.PredNextPC, p.Base+4)
	}
	if blk.NextPC != p.Base+4 {
		t.Errorf("block NextPC = %#x", blk.NextPC)
	}
}

func TestColdReturnFallsThrough(t *testing.T) {
	u, p := unit(t, `
  ret
  halt
`)
	blk, _ := u.NextBlock()
	if blk.Instrs[0].PredNextPC != p.Base+4 {
		t.Errorf("cold return predicted %#x, want fallthrough %#x", blk.Instrs[0].PredNextPC, p.Base+4)
	}
}

func TestIndirectJumpUsesPredictor(t *testing.T) {
	bp := bpred.New(bpred.DefaultConfig())
	p := asm.MustAssemble("ind", `
  jalr x5, x6, 0
  halt
  halt
`)
	u := New(p, bp)
	blk, _ := u.NextBlock()
	if blk.Instrs[0].PredNextPC != p.Base+4 {
		t.Errorf("cold indirect predicted %#x", blk.Instrs[0].PredNextPC)
	}
	// Train and refetch.
	bp.TrainIndirect(p.Base, p.Base+8)
	u.Redirect(p.Base)
	blk, _ = u.NextBlock()
	if blk.Instrs[0].PredNextPC != p.Base+8 {
		t.Errorf("trained indirect predicted %#x, want %#x", blk.Instrs[0].PredNextPC, p.Base+8)
	}
}

func TestWrongPathFetchesNOPs(t *testing.T) {
	u, p := unit(t, "addi x1, x1, 1\nhalt")
	u.Redirect(p.End() + 64) // off the program, as after a wild mispredict
	blk, ok := u.NextBlock()
	if !ok {
		t.Fatal("wrong-path fetch must proceed")
	}
	for _, fi := range blk.Instrs {
		if fi.OnPath {
			t.Fatalf("off-program instruction marked on-path at %#x", fi.PC)
		}
		if fi.Instr.Op != isa.NOP {
			t.Fatalf("off-program fetch produced %v", fi.Instr)
		}
	}
	if len(blk.Instrs) != isa.FetchBlockInstrs {
		t.Errorf("NOP block size = %d", len(blk.Instrs))
	}
}

func TestTakenBranchAfterTraining(t *testing.T) {
	bp := bpred.New(bpred.DefaultConfig())
	p := asm.MustAssemble("tb", `
top:
  beq x0, x0, top
  halt
`)
	// Train the always-taken branch.
	for i := 0; i < 64; i++ {
		s := bp.Snapshot()
		bp.PredictBranch(p.Base, s)
		bp.Train(p.Base, s, true)
	}
	u := New(p, bp)
	blk, _ := u.NextBlock()
	if !blk.Instrs[0].PredTaken {
		t.Fatal("trained always-taken branch predicted not-taken")
	}
	if len(blk.Instrs) != 1 || blk.NextPC != p.Base {
		t.Errorf("taken branch must end the block: len=%d next=%#x", len(blk.Instrs), blk.NextPC)
	}
}

func TestSnapshotsArePerInstruction(t *testing.T) {
	bp := bpred.New(bpred.DefaultConfig())
	p := asm.MustAssemble("snap", `
  beq x1, x2, a
  beq x3, x4, a
  addi x1, x1, 1
a:
  halt
`)
	// Seed the history so the first branch's not-taken shift changes it.
	bp.ShiftHistory(true)
	u := New(p, bp)
	blk, _ := u.NextBlock()
	if len(blk.Instrs) < 2 {
		t.Fatal("expected both branches in one block")
	}
	// The second branch's snapshot must reflect the first branch's
	// speculative history shift.
	if blk.Instrs[0].Snapshot == blk.Instrs[1].Snapshot {
		t.Error("snapshots should differ after a predicted branch")
	}
}
