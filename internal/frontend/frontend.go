// Package frontend models the decoupled instruction fetch unit: it forms
// prediction blocks (contiguous instruction runs ended by a predicted-taken
// control instruction or the 32-byte fetch limit, as in §3.3.1), predicts
// conditional branches through the branch prediction unit, and follows
// calls/returns through the RAS. The core redirects it on mispredictions
// and flushes; the multi-stream reuse engine observes the produced blocks
// for reconvergence detection.
package frontend

import (
	"mssr/internal/bpred"
	"mssr/internal/isa"
)

// FetchedInstr is one instruction leaving the IFU, carrying the prediction
// metadata the backend needs to verify control flow and repair the
// predictor.
type FetchedInstr struct {
	PC    uint64
	Instr isa.Instruction
	// OnPath reports whether the PC addressed real program code; false
	// means the frontend ran off the program on a wrong path and
	// fabricated a NOP.
	OnPath bool
	// PredNextPC is the predicted next PC after this instruction.
	PredNextPC uint64
	// PredTaken is the predicted direction for conditional branches.
	PredTaken bool
	// Snapshot is the predictor state captured immediately before this
	// instruction was predicted; the backend restores it on any flush at
	// this instruction and uses it to train TAGE at retirement.
	Snapshot bpred.Snapshot
	// IsCall and IsReturn mark RAS activity for repair at resolution.
	IsCall   bool
	IsReturn bool
}

// Block is one prediction block: a contiguous PC range fetched in a single
// cycle. StartPC and EndPC are inclusive, mirroring the paper's WPB entry
// format.
type Block struct {
	StartPC uint64
	EndPC   uint64
	Instrs  []FetchedInstr
	// NextPC is where fetch continues after this block.
	NextPC uint64
}

// Unit is the instruction fetch unit.
type Unit struct {
	prog *isa.Program
	bp   *bpred.Unit

	pc      uint64
	stalled bool // a HALT was fetched; wait for a redirect or the end

	// instrs backs Block.Instrs so block formation never allocates; the
	// returned slice is valid until the next NextBlock call. scratch is
	// the fill cursor handed out by scratchSlot.
	instrs  [isa.FetchBlockInstrs]FetchedInstr
	scratch int
	// scratchFn is the pre-bound scratchSlot method value, built once so
	// NextBlock never allocates a closure per block.
	scratchFn func() *FetchedInstr
}

// New builds a fetch unit starting at the program entry.
func New(prog *isa.Program, bp *bpred.Unit) *Unit {
	u := &Unit{prog: prog, bp: bp, pc: prog.Base}
	u.scratchFn = u.scratchSlot
	return u
}

// Reset restarts fetch at prog's entry. The attached branch predictor is
// reset separately by its owner.
func (u *Unit) Reset(prog *isa.Program) {
	u.prog = prog
	u.pc = prog.Base
	u.stalled = false
}

// PC reports the next fetch PC.
func (u *Unit) PC() uint64 { return u.pc }

// Stalled reports whether fetch has stopped at a HALT.
func (u *Unit) Stalled() bool { return u.stalled }

// Redirect restarts fetch at pc (after a misprediction or violation
// flush). The caller is responsible for repairing the predictor state
// first (bpred.Unit.Restore plus re-applying the resolved outcome).
func (u *Unit) Redirect(pc uint64) {
	u.pc = pc
	u.stalled = false
}

// NextBlock forms one prediction block, advancing the fetch PC. It returns
// ok=false when fetch is stalled at a HALT. The returned Block's Instrs
// slice aliases a scratch buffer on the Unit and is only valid until the
// next NextBlock call; callers must copy out what they keep.
//
// The block ends at a predicted-taken control instruction, at a HALT, or at
// the 32-byte fetch limit; predicted-not-taken branches do not end blocks
// (§3.3.1). Off-program wrong-path PCs fetch as NOPs so speculative fetch
// can run past program boundaries the way real hardware runs into arbitrary
// cache lines.
func (u *Unit) NextBlock() (Block, bool) {
	blk, n, ok := u.NextBlockInto(u.scratchFn)
	if !ok {
		return Block{}, false
	}
	blk.Instrs = u.instrs[:n]
	return blk, true
}

// scratchSlot hands NextBlockInto successive slots of the Unit's scratch
// buffer; u.scratch is reset by NextBlockInto before block formation.
func (u *Unit) scratchSlot() *FetchedInstr {
	fi := &u.instrs[u.scratch]
	u.scratch++
	return fi
}

// NextBlockInto forms one prediction block exactly like NextBlock, but
// writes each instruction directly into the destination returned by next —
// typically the core's fetch-queue slots — instead of the scratch buffer,
// eliminating the 96-byte copy-out per fetched instruction on the hot
// path. next is called once per instruction, in fetch order, at most
// isa.FetchBlockInstrs times; the destination's previous contents are
// fully overwritten. The returned Block carries the PC metadata only
// (Instrs stays nil); n is the number of instructions produced.
func (u *Unit) NextBlockInto(next func() *FetchedInstr) (blk Block, n int, ok bool) {
	if u.stalled {
		return Block{}, 0, false
	}
	u.scratch = 0
	blk = Block{StartPC: u.pc}
	pc := u.pc
	for n < isa.FetchBlockInstrs {
		in, onPath := u.prog.At(pc)
		fi := next()
		fi.PC = pc
		fi.Instr = in
		fi.OnPath = onPath
		fi.Snapshot = u.bp.Snapshot()
		fi.PredTaken = false
		fi.IsCall = false
		fi.IsReturn = false
		end := false
		switch in.Class() {
		case isa.ClassBranch:
			fi.PredTaken = u.bp.PredictBranch(pc, fi.Snapshot)
			if fi.PredTaken {
				fi.PredNextPC = in.Target
				end = true
			} else {
				fi.PredNextPC = pc + isa.InstrBytes
			}
		case isa.ClassJump:
			fi.PredTaken = true
			fi.PredNextPC = in.Target
			if in.Rd == isa.RA {
				fi.IsCall = true
				u.bp.PushRAS(pc + isa.InstrBytes)
			}
			end = true
		case isa.ClassJumpR:
			fi.PredTaken = true
			switch {
			case in.Rd == isa.Zero && in.Rs1 == isa.RA:
				fi.IsReturn = true
				fi.PredNextPC = u.bp.PopRAS()
			case in.Rd == isa.RA:
				fi.IsCall = true
				target, ok := u.bp.PredictIndirect(pc)
				if !ok {
					target = pc + isa.InstrBytes
				}
				fi.PredNextPC = target
				u.bp.PushRAS(pc + isa.InstrBytes)
			default:
				target, ok := u.bp.PredictIndirect(pc)
				if !ok {
					target = pc + isa.InstrBytes
				}
				fi.PredNextPC = target
			}
			if fi.PredNextPC == 0 {
				// A cold RAS predicts 0; fall through instead so the
				// frontend keeps fetching plausible instructions.
				fi.PredNextPC = pc + isa.InstrBytes
			}
			end = true
		case isa.ClassHalt:
			fi.PredNextPC = pc
			u.stalled = true
			end = true
		default:
			fi.PredNextPC = pc + isa.InstrBytes
		}
		n++
		blk.EndPC = pc
		pc = fi.PredNextPC
		if end {
			break
		}
	}
	blk.NextPC = pc
	u.pc = pc
	return blk, n, true
}
