package client

import (
	"context"
	"errors"
	"fmt"

	"mssr/internal/api"
	"mssr/internal/sim"
)

// Remote executes spec batches on an msrd daemon, implementing
// sim.Backend. The experiment drivers run against it unchanged: results
// come back positionally, the returned error joins every failed job
// wrapped with its key (mirroring sim.Runner), and an Observer, when
// set, is fed from the daemon's NDJSON completion stream so -progress
// and -json work remotely.
//
// Remote is the consumer the daemon's content-addressed cache was built
// for: repeated sweeps (regenerating a table twice, re-rendering a
// figure after a doc change) resolve to the same canonical keys and are
// served from cache instead of re-simulating.
type Remote struct {
	// Client is the daemon connection (required).
	Client *Client
	// Observer, when set, receives a notification per completed
	// simulation, in the daemon's completion order.
	Observer sim.Observer
}

// Run implements sim.Backend.
func (r *Remote) Run(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	// Mirror the local Runner's contract: validate everything up front
	// and run nothing if any spec is invalid or not remotable.
	var verrs []error
	wire := make([]api.Spec, len(specs))
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			verrs = append(verrs, err)
			continue
		}
		ws, err := api.FromSim(specs[i])
		if err != nil {
			verrs = append(verrs, err)
			continue
		}
		wire[i] = ws
	}
	if len(verrs) > 0 {
		return nil, errors.Join(verrs...)
	}

	sub, err := r.Client.Submit(ctx, wire)
	if err != nil {
		return nil, err
	}

	if r.Observer != nil {
		streamErr := r.Client.Stream(ctx, sub.JobID, func(e api.Result) error {
			sr := e.Sim()
			r.Observer.OnStart(e.Index, len(specs), e.Key)
			r.Observer.OnFinish(e.Index, len(specs), sr)
			return nil
		})
		if streamErr != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// A broken stream is not fatal: the final status below is the
		// authoritative result set.
	}

	st, err := r.Client.Wait(ctx, sub.JobID)
	if err != nil {
		return nil, err
	}
	if len(st.Results) != len(specs) {
		return nil, fmt.Errorf("client: daemon returned %d results for %d specs (job %s, error %q)",
			len(st.Results), len(specs), sub.JobID, st.Error)
	}
	results := make([]sim.Result, len(specs))
	var errs []error
	for i, e := range st.Results {
		sr := e.Sim()
		sr.Index = i
		sr.Spec = specs[i]
		results[i] = sr
		if sr.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", sr.Key, sr.Err))
		}
	}
	if st.Error != "" {
		errs = append(errs, fmt.Errorf("job %s: %s", sub.JobID, st.Error))
	}
	return results, errors.Join(errs...)
}
