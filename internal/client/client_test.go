package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mssr/internal/api"
)

func TestNewPromotesBareAddress(t *testing.T) {
	if got := New("127.0.0.1:8371").BaseURL; got != "http://127.0.0.1:8371" {
		t.Errorf("New promoted bare address to %q", got)
	}
	if got := New("https://msrd.example/").BaseURL; got != "https://msrd.example" {
		t.Errorf("New mangled explicit URL to %q", got)
	}
}

// shedServer responds 429 (with the given backoff hint) until `sheds`
// submissions have been rejected, then accepts.
func shedServer(t *testing.T, sheds int, hint api.Error) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/jobs" {
			http.NotFound(w, r)
			return
		}
		n := attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if int(n) <= sheds {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(hint)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.SubmitResponse{JobID: "j1", Total: 1})
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

func TestSubmitRetriesAfter429(t *testing.T) {
	ts, attempts := shedServer(t, 2, api.Error{Error: "queue full", RetryAfterMS: 1})
	c := New(ts.URL)
	sub, err := c.Submit(context.Background(), []api.Spec{{Workload: "bfs"}})
	if err != nil {
		t.Fatalf("Submit should have retried through the 429s: %v", err)
	}
	if sub.JobID != "j1" {
		t.Errorf("JobID = %q, want j1", sub.JobID)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("server saw %d submissions, want 3 (2 shed + 1 accepted)", got)
	}
}

func TestSubmitExhaustsRetryBudget(t *testing.T) {
	ts, attempts := shedServer(t, 1<<30, api.Error{Error: "queue full", RetryAfterMS: 1})
	c := New(ts.URL)
	c.SubmitRetries = 2
	_, err := c.Submit(context.Background(), []api.Spec{{Workload: "bfs"}})
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want *RetryError", err)
	}
	if re.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (initial + 2 retries)", re.Attempts)
	}
	if re.RetryAfter != time.Millisecond {
		t.Errorf("RetryAfter = %s, want the server's 1ms hint", re.RetryAfter)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("server saw %d submissions, want 3", got)
	}
}

func TestSubmitDisabledRetries(t *testing.T) {
	ts, attempts := shedServer(t, 1<<30, api.Error{Error: "queue full", RetryAfterMS: 1})
	c := New(ts.URL)
	c.SubmitRetries = -1
	_, err := c.Submit(context.Background(), []api.Spec{{Workload: "bfs"}})
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 1 {
		t.Fatalf("error = %v, want *RetryError after exactly one attempt", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("server saw %d submissions, want 1", got)
	}
}

func TestSubmitDoesNotRetryBadRequest(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(api.Error{Error: "spec 0: unknown workload"})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	_, err := c.Submit(context.Background(), []api.Spec{{Workload: "nope"}})
	if err == nil {
		t.Fatal("bad request accepted")
	}
	var re *RetryError
	if errors.As(err, &re) {
		t.Errorf("validation failure reported as overload: %v", err)
	}
	if !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("error %q lost the server's message", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("client retried a non-retryable failure: %d attempts", got)
	}
}

func TestRetryAfterPrefersBodyPrecision(t *testing.T) {
	mk := func(header, body string) *http.Response {
		resp := &http.Response{
			StatusCode: http.StatusTooManyRequests,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(body)),
		}
		if header != "" {
			resp.Header.Set("Retry-After", header)
		}
		return resp
	}
	if got := retryAfterOf(mk("3", `{"error":"full","retry_after_ms":120}`)); got != 120*time.Millisecond {
		t.Errorf("body hint ignored: got %s, want 120ms", got)
	}
	if got := retryAfterOf(mk("3", `{"error":"full"}`)); got != 3*time.Second {
		t.Errorf("header fallback broken: got %s, want 3s", got)
	}
	if got := retryAfterOf(mk("", "")); got != time.Second {
		t.Errorf("default backoff: got %s, want 1s", got)
	}
}

func TestWaitPollsUntilDone(t *testing.T) {
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := api.JobStatus{ID: "j1", State: api.StateRunning, Total: 1}
		if polls.Add(1) >= 3 {
			st.State = api.StateDone
			st.Done = 1
			st.Results = []api.Result{{Index: 0, Key: "bfs/none", Source: api.SourceRun}}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	c.PollInterval = time.Millisecond
	st, err := c.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != api.StateDone || len(st.Results) != 1 {
		t.Errorf("Wait returned %+v before the job was done", st)
	}
	if got := polls.Load(); got < 3 {
		t.Errorf("Wait polled %d times, want >= 3", got)
	}
}
