package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"

	"mssr/internal/events"
)

// ErrStopEvents is the sentinel fn returns from Events to end the
// subscription cleanly; Events then returns nil.
var ErrStopEvents = errors.New("client: stop event stream")

// Events subscribes to the daemon's (or fleet coordinator's) live event
// bus over WebSocket (GET /v1/ws), decoding each frame and calling fn in
// arrival order. jobID filters the stream to one job ("" = firehose:
// every event the service publishes). It returns nil when the server
// closes the stream or fn returns ErrStopEvents, ctx.Err() on
// cancellation, and fn's error otherwise. Gaps in Event.Seq mean the
// server dropped frames rather than stall the publisher — consumers
// needing a complete record should use Stream/Intervals, which replay.
func (c *Client) Events(ctx context.Context, jobID string, fn func(events.Event) error) error {
	target := c.BaseURL + "/v1/ws"
	if jobID != "" {
		target += "?job=" + url.QueryEscape(jobID)
	}
	conn, err := events.Dial(ctx, target)
	if err != nil {
		return fmt.Errorf("client: events: %w", err)
	}
	defer conn.Close()

	// ReadMessage cannot watch a context; cancellation closes the
	// connection out from under it.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) {
				return nil // clean close from the server
			}
			return fmt.Errorf("client: events: %w", err)
		}
		var ev events.Event
		if err := json.Unmarshal(msg, &ev); err != nil {
			return fmt.Errorf("client: decoding event frame: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, ErrStopEvents) {
				return nil
			}
			return err
		}
	}
}
