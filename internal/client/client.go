// Package client is the typed Go client for the msrd simulation daemon
// (internal/server). Client covers the raw /v1 API — submit, poll,
// stream — and Remote adapts it to the sim.Backend interface so the
// experiment drivers run against a daemon unchanged.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mssr/internal/api"
)

// Client talks to one msrd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8371".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// SubmitRetries is how many times Submit resubmits after a 429,
	// honouring the server's Retry-After each time (default 5; negative
	// disables retrying).
	SubmitRetries int
	// PollInterval paces Wait's status polls (default 50ms).
	PollInterval time.Duration
}

// New returns a client for the daemon at baseURL. A bare "host:port" is
// promoted to "http://host:port".
func New(baseURL string) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// RetryError is returned when the daemon sheds load and the retry budget
// is exhausted.
type RetryError struct {
	// RetryAfter is the server's last backoff hint.
	RetryAfter time.Duration
	// Attempts is how many submissions were shed.
	Attempts int
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("client: daemon overloaded: %d submissions shed with 429 (last Retry-After %s)", e.Attempts, e.RetryAfter)
}

// Submit posts a batch of specs and returns the daemon's job id. On 429
// it waits out the server's Retry-After hint and resubmits, up to
// SubmitRetries times; exhaustion returns a *RetryError.
func (c *Client) Submit(ctx context.Context, specs []api.Spec) (*api.SubmitResponse, error) {
	retries := c.SubmitRetries
	if retries == 0 {
		retries = 5
	}
	if retries < 0 {
		retries = 0
	}
	body, err := json.Marshal(api.SubmitRequest{Specs: specs})
	if err != nil {
		return nil, fmt.Errorf("client: encoding specs: %w", err)
	}
	var last *RetryError
	for attempt := 0; ; attempt++ {
		resp, retryAfter, err := c.trySubmit(ctx, body)
		if err == nil {
			return resp, nil
		}
		if retryAfter < 0 {
			return nil, err
		}
		last = &RetryError{RetryAfter: retryAfter, Attempts: attempt + 1}
		if attempt >= retries {
			return nil, last
		}
		select {
		case <-time.After(retryAfter):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// trySubmit performs one submission. A negative retryAfter means the
// failure is not retryable.
func (c *Client) trySubmit(ctx context.Context, body []byte) (*api.SubmitResponse, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		return nil, -1, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, -1, fmt.Errorf("client: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil, retryAfterOf(resp), fmt.Errorf("client: daemon shed submission: %s", apiError(resp))
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, -1, fmt.Errorf("client: submit: %s: %s", resp.Status, apiError(resp))
	}
	var out api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, -1, fmt.Errorf("client: decoding submit response: %w", err)
	}
	return &out, 0, nil
}

// retryAfterOf extracts the server's backoff hint, preferring the JSON
// body's millisecond precision over the whole-second header.
func retryAfterOf(resp *http.Response) time.Duration {
	var e api.Error
	if body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
		if json.Unmarshal(body, &e) == nil && e.RetryAfterMS > 0 {
			return time.Duration(e.RetryAfterMS) * time.Millisecond
		}
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls until the job is done and returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (*api.JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == api.StateDone {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Stream consumes the job's NDJSON completion stream, calling fn for
// every per-simulation result in completion order. It returns when the
// stream ends (job done) or fn returns an error.
func (c *Client) Stream(ctx context.Context, id string, fn func(api.Result) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: stream: %s: %s", resp.Status, apiError(resp))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r api.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return fmt.Errorf("client: decoding stream record: %w", err)
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: stream: %w", err)
	}
	return nil
}

// Intervals consumes the job's NDJSON interval-telemetry stream
// (GET /v1/jobs/{id}/intervals), calling fn for every interval record of
// every completed sampled result, in completion order. Like Stream, it
// returns when the job is done or fn returns an error.
func (c *Client) Intervals(ctx context.Context, id string, fn func(api.IntervalRecord) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/intervals", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: intervals: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: intervals: %s: %s", resp.Status, apiError(resp))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec api.IntervalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("client: decoding interval record: %w", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: intervals: %w", err)
	}
	return nil
}

// Health checks /healthz; nil means the daemon is serving.
func (c *Client) Health(ctx context.Context) error {
	return c.getJSON(ctx, "/healthz", &map[string]string{})
}

// Ready checks /readyz; nil means the daemon is accepting new work
// (not draining, admission queue below its readiness threshold).
func (c *Client) Ready(ctx context.Context) error {
	return c.getJSON(ctx, "/readyz", &map[string]interface{}{})
}

// Workers lists a fleet coordinator's workers (GET /fleet/v1/workers).
// Only coordinators serve this; a plain msrd daemon returns 404.
func (c *Client) Workers(ctx context.Context) ([]api.WorkerInfo, error) {
	var out api.WorkersResponse
	if err := c.getJSON(ctx, "/fleet/v1/workers", &out); err != nil {
		return nil, err
	}
	return out.Workers, nil
}

// RegisterWorker announces a worker daemon to a fleet coordinator
// (POST /fleet/v1/workers). The addr must be dialable from the
// coordinator; registration is idempotent, so workers re-announce
// themselves periodically to survive coordinator restarts.
func (c *Client) RegisterWorker(ctx context.Context, addr string) error {
	body, err := json.Marshal(api.RegisterWorkerRequest{Addr: addr})
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/fleet/v1/workers", strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: register: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: register: %s: %s", resp.Status, apiError(resp))
	}
	return nil
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", fmt.Errorf("client: metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: metrics: %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: metrics: %w", err)
	}
	return string(b), nil
}

func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: %s: %s: %s", path, resp.Status, apiError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s: %w", path, err)
	}
	return nil
}

// apiError extracts the server's JSON error body, falling back to the
// raw text.
func apiError(resp *http.Response) string {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil || len(body) == 0 {
		return "(no body)"
	}
	var e api.Error
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}
