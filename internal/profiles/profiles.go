// Package profiles wires the standard runtime/pprof file profiles into
// the CLI entrypoints (msrsim, msrbench) behind -cpuprofile/-memprofile
// flags, so hot-path regressions in the cycle loop can be diagnosed with
// `go tool pprof` without recompiling.
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. Either path may be empty. The
// returned stop function ends the CPU profile and writes the heap
// profile; callers must run it on every exit path (so mains should
// return an exit code to a wrapper rather than call os.Exit directly).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
