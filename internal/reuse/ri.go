package reuse

import (
	"fmt"

	"mssr/internal/rename"
	"mssr/internal/stats"
)

// RIConfig parameterizes the Register Integration baseline's
// set-associative reuse table. The paper's comparison uses 64 or 128 sets
// at 1, 2 and 4 ways (§2.2.4, §4.1.2).
type RIConfig struct {
	Sets int
	Ways int
	// LoadPolicy matches the reused-load protection used by the RGID
	// engine so comparisons are apples-to-apples.
	LoadPolicy LoadPolicy
	// BloomLogBits sizes the LoadBloom filter.
	BloomLogBits int
}

// DefaultRIConfig returns the 64-set 4-way configuration.
func DefaultRIConfig() RIConfig {
	return RIConfig{Sets: 64, Ways: 4, LoadPolicy: LoadVerify, BloomLogBits: 10}
}

type riEntry struct {
	valid    bool
	pc       uint64
	nsrc     int
	srcPregs [2]rename.PhysReg
	destPreg rename.PhysReg
	isLoad   bool
	memAddr  uint64
	lru      uint8
}

// RegisterIntegration is the table-based squash-reuse baseline: squashed
// instructions are stored in a PC-indexed set-associative table keyed by
// their source *physical register* names; an incoming instruction whose
// renamed sources match an entry integrates the entry's destination
// register (Roth & Sohi, MICRO 2000).
//
// The known costs the paper highlights are modelled faithfully: set
// conflicts cause replacements (tracked per set for Figure 3), and freeing
// any physical register transitively invalidates entries that reference it
// as a source (§3.7.2).
type RegisterIntegration struct {
	cfg  RIConfig
	k    Kernel
	st   *stats.Stats
	sets [][]riEntry

	// srcRefs[p] counts how many valid entries name physical register p
	// as a source (an entry naming p twice counts twice). The transitive
	// invalidation walk only scans the table when the freed register is
	// actually referenced — the common free touches nothing and returns
	// in O(1) — while the scan itself, when it runs, is unchanged, so the
	// modelled behaviour (which entries die, in which order, and every
	// counter) is bit-identical to the always-scan implementation.
	srcRefs  []uint32
	occupied int

	bloom *bloomFilter
}

// NewRegisterIntegration builds the baseline engine. st may be nil.
func NewRegisterIntegration(cfg RIConfig, k Kernel, st *stats.Stats) *RegisterIntegration {
	if cfg.Sets < 1 || cfg.Sets&(cfg.Sets-1) != 0 || cfg.Ways < 1 {
		panic(fmt.Sprintf("reuse: invalid RIConfig %+v", cfg))
	}
	r := &RegisterIntegration{cfg: cfg, k: k, st: statsOf(st), srcRefs: make([]uint32, 512)}
	r.sets = make([][]riEntry, cfg.Sets)
	for i := range r.sets {
		r.sets[i] = make([]riEntry, cfg.Ways)
	}
	if r.st.RIReplacements == nil {
		r.st.RIReplacements = make([]uint64, cfg.Sets)
	}
	if cfg.LoadPolicy == LoadBloom {
		r.bloom = newBloomFilter(cfg.BloomLogBits)
	}
	return r
}

// Name implements Engine.
func (r *RegisterIntegration) Name() string {
	return fmt.Sprintf("ri-%ds%dw", r.cfg.Sets, r.cfg.Ways)
}

func (r *RegisterIntegration) setIndex(pc uint64) int {
	return int((pc >> 2) & uint64(r.cfg.Sets-1))
}

// BeginStream implements Engine. RI has no stream notion; nothing to do.
func (r *RegisterIntegration) BeginStream(uint64) {}

// Capture implements Engine: insert each executed, reusable squashed
// instruction into the reuse table.
func (r *RegisterIntegration) Capture(si SquashedInstr) {
	if !si.Executed || si.DestPreg == rename.NoPreg || !Reusable(si.Instr) {
		return
	}
	set := r.setIndex(si.PC)
	ways := r.sets[set]
	victim := -1
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := range ways {
			if ways[w].lru < ways[victim].lru {
				victim = w
			}
		}
		r.st.RIReplacements[set]++
		r.evict(set, victim)
	}
	e := riEntry{
		valid:    true,
		pc:       si.PC,
		nsrc:     si.Instr.NumSources(),
		srcPregs: si.SrcPregs,
		destPreg: si.DestPreg,
		isLoad:   si.Instr.IsLoad(),
		memAddr:  si.MemAddr,
	}
	r.k.HoldPreg(e.destPreg)
	ways[victim] = e
	r.noteInsert(&ways[victim])
	r.touch(set, victim)
}

// noteInsert and noteDrop keep the source-reference counts and the
// occupancy in step with entry lifetimes. Every transition of an
// entry's valid flag goes through exactly one of them.
func (r *RegisterIntegration) noteInsert(e *riEntry) {
	r.occupied++
	for i := 0; i < e.nsrc; i++ {
		if p := e.srcPregs[i]; p != rename.NoPreg {
			if int(p) >= len(r.srcRefs) {
				grown := make([]uint32, int(p)+64)
				copy(grown, r.srcRefs)
				r.srcRefs = grown
			}
			r.srcRefs[p]++
		}
	}
}

func (r *RegisterIntegration) noteDrop(e *riEntry) {
	r.occupied--
	for i := 0; i < e.nsrc; i++ {
		if p := e.srcPregs[i]; p != rename.NoPreg {
			r.srcRefs[p]--
		}
	}
}

// EndStream implements Engine.
func (r *RegisterIntegration) EndStream() {}

// evict drops the entry at (set, way), releasing its register reservation
// and transitively invalidating any entry that used its destination
// register as a source — the expensive maintenance chain the paper
// contrasts with RGID's lazy invalidation (§3.7.2).
func (r *RegisterIntegration) evict(set, way int) {
	e := &r.sets[set][way]
	if !e.valid {
		return
	}
	dest := e.destPreg
	e.valid = false
	r.noteDrop(e)
	r.k.ReleasePreg(dest)
	r.invalidateSourceRefs(dest)
}

// invalidateSourceRefs evicts every entry whose sources reference p.
// The reference counts make the no-match case — almost every freed
// register — a constant-time return.
func (r *RegisterIntegration) invalidateSourceRefs(p rename.PhysReg) {
	if int(p) >= len(r.srcRefs) || r.srcRefs[p] == 0 {
		return
	}
	for set := range r.sets {
		for way := range r.sets[set] {
			e := &r.sets[set][way]
			if !e.valid {
				continue
			}
			for i := 0; i < e.nsrc; i++ {
				if e.srcPregs[i] == p {
					r.st.RIInvalidates++
					r.evict(set, way)
					break
				}
			}
		}
	}
}

func (r *RegisterIntegration) touch(set, way int) {
	ways := r.sets[set]
	old := ways[way].lru
	for i := range ways {
		if ways[i].lru > old {
			ways[i].lru--
		}
	}
	ways[way].lru = uint8(r.cfg.Ways - 1)
}

// ObserveBlock implements Engine; RI has no fetch-side component.
func (r *RegisterIntegration) ObserveBlock(uint64, uint64, uint64, int, uint64) {}

// TryReuse implements Engine: the integration test. An incoming
// instruction integrates a table entry when the PC and all renamed source
// physical registers match.
func (r *RegisterIntegration) TryReuse(req Request) (Grant, bool) {
	if !Reusable(req.Instr) {
		return Grant{}, false
	}
	set := r.setIndex(req.PC)
	ways := r.sets[set]
	for w := range ways {
		e := &ways[w]
		if !e.valid || e.pc != req.PC || e.nsrc != req.Instr.NumSources() {
			continue
		}
		match := true
		for i := 0; i < e.nsrc; i++ {
			if e.srcPregs[i] != req.SrcPregs[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		r.st.ReuseTests++
		if e.isLoad {
			switch r.cfg.LoadPolicy {
			case LoadNoReuse:
				r.st.ReuseFailKind++
				r.evict(set, w)
				return Grant{}, false
			case LoadBloom:
				if r.bloom.MayContain(e.memAddr) {
					r.st.BloomFilterRejects++
					r.evict(set, w)
					return Grant{}, false
				}
			}
		}
		if r.k.PregLive(e.destPreg) {
			r.st.ReuseFailKind++
			r.evict(set, w)
			return Grant{}, false
		}
		// Integrate: consume the entry, transferring the register
		// reservation to the core.
		g := Grant{DestPreg: e.destPreg, DestGen: rename.NullRGID, IsLoad: e.isLoad, MemAddr: e.memAddr}
		e.valid = false
		r.noteDrop(e)
		r.st.ReuseHits++
		r.st.RIHits++
		if e.isLoad {
			r.st.ReusedLoads++
		}
		return g, true
	}
	return Grant{}, false
}

// AbortWalk implements Engine; RI has no walk state.
func (r *RegisterIntegration) AbortWalk() {}

// NoteStore implements Engine (LoadBloom policy).
func (r *RegisterIntegration) NoteStore(addr uint64) {
	if r.bloom != nil {
		r.bloom.Insert(addr)
	}
}

// OnPregFreed implements Engine: a freed register may be reallocated to a
// new value, so entries that reference it as a source are stale and must
// be evicted eagerly, cascading transitively.
func (r *RegisterIntegration) OnPregFreed(p rename.PhysReg) {
	r.invalidateSourceRefs(p)
}

// Reclaim implements Engine: under free-list pressure, drop one valid
// entry (oldest-LRU of the first occupied set).
func (r *RegisterIntegration) Reclaim() bool {
	if r.occupied == 0 {
		return false
	}
	for set := range r.sets {
		for way := range r.sets[set] {
			if r.sets[set][way].valid {
				r.evict(set, way)
				return true
			}
		}
	}
	return false
}

// InvalidateAll implements Engine.
func (r *RegisterIntegration) InvalidateAll() {
	if r.occupied > 0 {
		for set := range r.sets {
			for way := range r.sets[set] {
				if r.sets[set][way].valid {
					e := &r.sets[set][way]
					e.valid = false
					r.noteDrop(e)
					r.k.ReleasePreg(e.destPreg)
				}
			}
		}
	}
	if r.bloom != nil {
		r.bloom.Reset()
	}
}

// Reset implements Engine: InvalidateAll releases the held registers,
// then every entry is zeroed fully so stale LRU residue cannot perturb
// victim selection on the next run.
func (r *RegisterIntegration) Reset() {
	r.InvalidateAll()
	for set := range r.sets {
		clear(r.sets[set])
	}
	clear(r.srcRefs)
	r.occupied = 0
}

// Occupied implements Engine.
func (r *RegisterIntegration) Occupied() bool { return r.occupied > 0 }
