package reuse

import (
	"fmt"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/stats"
)

// DIRScheme selects the Dynamic Instruction Reuse test (Sodani & Sohi,
// ISCA 1997), as characterized by the paper's §3.7.1.
type DIRScheme int

// DIR schemes.
const (
	// DIRValue (scheme Sv) stores operand values with each Reuse Buffer
	// entry; an instruction whose current operand values match reuses the
	// stored result. The test can only fire when the operands are already
	// available at rename — the scheme's well-known limitation.
	DIRValue DIRScheme = iota
	// DIRName (scheme Sn) stores architectural source register names; an
	// entry stays reusable until any of its source registers is
	// overwritten (write-after-write false dependencies invalidate
	// eagerly, the limitation §3.7.1 highlights).
	DIRName
)

func (s DIRScheme) String() string {
	if s == DIRValue {
		return "value"
	}
	return "name"
}

// DIRConfig parameterizes the Reuse Buffer.
type DIRConfig struct {
	Sets   int
	Ways   int
	Scheme DIRScheme
	// LoadPolicy matches the other engines' reused-load protection.
	LoadPolicy   LoadPolicy
	BloomLogBits int
}

// DefaultDIRConfig returns a 64-set 4-way value-scheme buffer.
func DefaultDIRConfig() DIRConfig {
	return DIRConfig{Sets: 64, Ways: 4, Scheme: DIRValue, LoadPolicy: LoadVerify, BloomLogBits: 10}
}

type dirEntry struct {
	valid   bool
	pc      uint64
	nsrc    int
	srcVals [2]uint64  // DIRValue
	srcRegs [2]isa.Reg // DIRName
	result  uint64
	isLoad  bool
	memAddr uint64
	lru     uint8
}

// DIR is the Dynamic Instruction Reuse baseline: squashed results are
// saved by value in a PC-indexed Reuse Buffer and reused when the test of
// the configured scheme passes. Unlike Register Integration and the RGID
// engine, DIR stores result *values*, so it holds no physical registers;
// grants are ByValue and the core writes the value into a fresh register.
//
// The paper's §3.7.1 critique is directly observable here: the buffer
// cannot distinguish temporal references (one entry per PC set/way, so a
// second dynamic instance of the same instruction overwrites the first),
// and the name scheme invalidates on every architectural overwrite of a
// source register.
type DIR struct {
	cfg  DIRConfig
	k    Kernel
	st   *stats.Stats
	sets [][]dirEntry

	// nameRefs[r] counts how many valid entries name architectural
	// register r as a source. The name scheme's eager invalidation runs
	// for every renamed destination; the count lets the overwhelmingly
	// common no-match case return in O(1) while a scan that does run is
	// unchanged — entry deaths, their order and every counter stay
	// bit-identical to the always-scan implementation.
	nameRefs [256]uint32
	occupied int

	bloom *bloomFilter
}

// noteInsert and noteDrop keep nameRefs and the occupancy in step with
// entry lifetimes. Every transition of an entry's valid flag goes
// through exactly one of them.
func (d *DIR) noteInsert(e *dirEntry) {
	d.occupied++
	for i := 0; i < e.nsrc; i++ {
		d.nameRefs[e.srcRegs[i]]++
	}
}

func (d *DIR) noteDrop(e *dirEntry) {
	d.occupied--
	for i := 0; i < e.nsrc; i++ {
		d.nameRefs[e.srcRegs[i]]--
	}
}

// NewDIR builds the engine. st may be nil.
func NewDIR(cfg DIRConfig, k Kernel, st *stats.Stats) *DIR {
	if cfg.Sets < 1 || cfg.Sets&(cfg.Sets-1) != 0 || cfg.Ways < 1 {
		panic(fmt.Sprintf("reuse: invalid DIRConfig %+v", cfg))
	}
	d := &DIR{cfg: cfg, k: k, st: statsOf(st)}
	d.sets = make([][]dirEntry, cfg.Sets)
	for i := range d.sets {
		d.sets[i] = make([]dirEntry, cfg.Ways)
	}
	if cfg.LoadPolicy == LoadBloom {
		d.bloom = newBloomFilter(cfg.BloomLogBits)
	}
	return d
}

// Name implements Engine.
func (d *DIR) Name() string {
	return fmt.Sprintf("dir-%s-%ds%dw", d.cfg.Scheme, d.cfg.Sets, d.cfg.Ways)
}

func (d *DIR) setIndex(pc uint64) int { return int((pc >> 2) & uint64(d.cfg.Sets-1)) }

// BeginStream implements Engine. The name scheme's validity argument
// ("no overwrite since insertion" implies "same value") only holds while
// no rollback intervenes: a flush can revert a source register to an
// older mapping without any rename the scheme could observe. Name-scheme
// entries therefore live only within one inter-flush window.
func (d *DIR) BeginStream(uint64) {
	if d.cfg.Scheme == DIRName {
		d.invalidateEntries()
	}
}

func (d *DIR) invalidateEntries() {
	if d.occupied == 0 {
		return
	}
	for set := range d.sets {
		for w := range d.sets[set] {
			if e := &d.sets[set][w]; e.valid {
				e.valid = false
				d.noteDrop(e)
			}
		}
	}
}

// Capture implements Engine: insert executed, reusable squashed results
// into the Reuse Buffer by value.
func (d *DIR) Capture(si SquashedInstr) {
	if !si.Executed || !Reusable(si.Instr) {
		return
	}
	nsrc := si.Instr.NumSources()
	e := dirEntry{
		valid:   true,
		pc:      si.PC,
		nsrc:    nsrc,
		result:  si.Result,
		isLoad:  si.Instr.IsLoad(),
		memAddr: si.MemAddr,
	}
	for i := 0; i < nsrc; i++ {
		e.srcRegs[i] = si.Instr.Src(i)
		if d.cfg.Scheme == DIRName && !si.SrcSurvives[i] {
			// The source mapping dies with the rollback: the register's
			// architectural value changes without an overwrite the name
			// scheme could observe. Unsafe to insert.
			return
		}
		if v, ok := d.k.PregValue(si.SrcPregs[i]); ok {
			e.srcVals[i] = v
		} else {
			// Source value no longer recoverable; skip the insertion.
			return
		}
	}
	set := d.setIndex(si.PC)
	ways := d.sets[set]
	victim := -1
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		// Temporal-reference collision (§3.7.1): a same-PC entry is
		// simply overwritten — only one execution context survives.
		if ways[w].pc == si.PC {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := range ways {
			if ways[w].lru < ways[victim].lru {
				victim = w
			}
		}
		if d.st.RIReplacements != nil {
			// Reuse the RI replacement counter array when sized; DIR and
			// RI never run together.
			d.st.RIReplacements[set%len(d.st.RIReplacements)]++
		}
	}
	if ways[victim].valid {
		d.noteDrop(&ways[victim])
	}
	ways[victim] = e
	d.noteInsert(&ways[victim])
	d.touch(set, victim)
}

// EndStream implements Engine.
func (d *DIR) EndStream() {}

func (d *DIR) touch(set, way int) {
	ways := d.sets[set]
	old := ways[way].lru
	for i := range ways {
		if ways[i].lru > old {
			ways[i].lru--
		}
	}
	ways[way].lru = uint8(d.cfg.Ways - 1)
}

// ObserveBlock implements Engine; DIR has no fetch-side component.
func (d *DIR) ObserveBlock(uint64, uint64, uint64, int, uint64) {}

// TryReuse implements Engine. Under the name scheme, every renamed
// instruction also invalidates entries whose sources it overwrites.
func (d *DIR) TryReuse(req Request) (Grant, bool) {
	if d.cfg.Scheme == DIRName && req.Instr.HasDest() {
		d.invalidateName(req.Instr.Rd)
	}
	if !Reusable(req.Instr) {
		return Grant{}, false
	}
	set := d.setIndex(req.PC)
	ways := d.sets[set]
	for w := range ways {
		e := &ways[w]
		if !e.valid || e.pc != req.PC || e.nsrc != req.Instr.NumSources() {
			continue
		}
		match := true
		for i := 0; i < e.nsrc; i++ {
			switch d.cfg.Scheme {
			case DIRValue:
				v, ready := d.k.PregValue(req.SrcPregs[i])
				if !ready || v != e.srcVals[i] {
					match = false
				}
			case DIRName:
				if req.Instr.Src(i) != e.srcRegs[i] {
					match = false
				}
			}
			if !match {
				break
			}
		}
		if !match {
			continue
		}
		d.st.ReuseTests++
		if e.isLoad {
			switch d.cfg.LoadPolicy {
			case LoadNoReuse:
				d.st.ReuseFailKind++
				e.valid = false
				d.noteDrop(e)
				return Grant{}, false
			case LoadBloom:
				if d.bloom.MayContain(e.memAddr) {
					d.st.BloomFilterRejects++
					e.valid = false
					d.noteDrop(e)
					return Grant{}, false
				}
			}
		}
		g := Grant{ByValue: true, Value: e.result, DestGen: rename.NullRGID, IsLoad: e.isLoad, MemAddr: e.memAddr}
		e.valid = false // consumed; the buffer stores one context per entry
		d.noteDrop(e)
		d.st.ReuseHits++
		if e.isLoad {
			d.st.ReusedLoads++
		}
		return g, true
	}
	return Grant{}, false
}

// invalidateName drops entries whose sources read rd (the name scheme's
// eager invalidation on architectural overwrite). The reference counts
// make the no-match case — almost every renamed destination — a
// constant-time return.
func (d *DIR) invalidateName(rd isa.Reg) {
	if d.nameRefs[rd] == 0 {
		return
	}
	for set := range d.sets {
		for w := range d.sets[set] {
			e := &d.sets[set][w]
			if !e.valid {
				continue
			}
			for i := 0; i < e.nsrc; i++ {
				if e.srcRegs[i] == rd {
					e.valid = false
					d.noteDrop(e)
					d.st.RIInvalidates++
					break
				}
			}
		}
	}
}

// AbortWalk implements Engine; DIR has no walk state, but the name scheme
// must drop its entries on any flush (see BeginStream).
func (d *DIR) AbortWalk() {
	if d.cfg.Scheme == DIRName {
		d.invalidateEntries()
	}
}

// NoteStore implements Engine (LoadBloom policy).
func (d *DIR) NoteStore(addr uint64) {
	if d.bloom != nil {
		d.bloom.Insert(addr)
	}
}

// OnPregFreed implements Engine. DIR stores values, not register names,
// so register recycling cannot stale its entries (the value scheme) —
// and the name scheme's invalidation is architectural, handled in
// TryReuse.
func (d *DIR) OnPregFreed(rename.PhysReg) {}

// Reclaim implements Engine; DIR holds no registers.
func (d *DIR) Reclaim() bool { return false }

// InvalidateAll implements Engine.
func (d *DIR) InvalidateAll() {
	d.invalidateEntries()
	if d.bloom != nil {
		d.bloom.Reset()
	}
}

// Reset implements Engine: DIR holds no registers, so Reset just zeroes
// every entry (including LRU residue, for run-to-run determinism) and
// the Bloom filter.
func (d *DIR) Reset() {
	for set := range d.sets {
		clear(d.sets[set])
	}
	clear(d.nameRefs[:])
	d.occupied = 0
	if d.bloom != nil {
		d.bloom.Reset()
	}
}

// Occupied implements Engine.
func (d *DIR) Occupied() bool { return d.occupied > 0 }
