package reuse

import (
	"testing"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/stats"
)

// fakeKernel tracks holds/releases and lets tests mark registers live and
// set register values.
type fakeKernel struct {
	holds    map[rename.PhysReg]int
	live     map[rename.PhysReg]bool
	values   map[rename.PhysReg]uint64
	notReady map[rename.PhysReg]bool
}

func newFakeKernel() *fakeKernel {
	return &fakeKernel{
		holds:    map[rename.PhysReg]int{},
		live:     map[rename.PhysReg]bool{},
		values:   map[rename.PhysReg]uint64{},
		notReady: map[rename.PhysReg]bool{},
	}
}

func (k *fakeKernel) HoldPreg(p rename.PhysReg) { k.holds[p]++ }
func (k *fakeKernel) ReleasePreg(p rename.PhysReg) {
	if k.holds[p] == 0 {
		panic("release without hold")
	}
	k.holds[p]--
}
func (k *fakeKernel) PregLive(p rename.PhysReg) bool { return k.live[p] }
func (k *fakeKernel) PregValue(p rename.PhysReg) (uint64, bool) {
	return k.values[p], !k.notReady[p]
}

func (k *fakeKernel) totalHolds() int {
	n := 0
	for _, c := range k.holds {
		n += c
	}
	return n
}

// addInstr builds an ALU SquashedInstr writing rd (preg dp, gen dg) reading
// rs (gen sg).
func addInstr(seq, pc uint64, dp rename.PhysReg, dg rename.RGID, sg rename.RGID) SquashedInstr {
	return SquashedInstr{
		Seq:      seq,
		PC:       pc,
		Instr:    isa.Instruction{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A1, Imm: 1},
		Executed: true,
		DestPreg: dp,
		DestGen:  dg,
		SrcGens:  [2]rename.RGID{sg, rename.NullRGID},
	}
}

// captureStream pushes a squashed stream of n contiguous ADDIs starting at
// (seq, pc) into the engine.
func captureStream(e Engine, branchSeq, seq, pc uint64, n int, firstPreg rename.PhysReg) {
	e.BeginStream(branchSeq)
	for i := 0; i < n; i++ {
		e.Capture(addInstr(seq+uint64(i), pc+uint64(i)*4, firstPreg+rename.PhysReg(i), rename.RGID(10+i), rename.RGID(i)))
	}
	e.EndStream()
}

func TestReusable(t *testing.T) {
	cases := []struct {
		in   isa.Instruction
		want bool
	}{
		{isa.Instruction{Op: isa.ADD, Rd: 1}, true},
		{isa.Instruction{Op: isa.LD, Rd: 1}, true},
		{isa.Instruction{Op: isa.MUL, Rd: 1}, true},
		{isa.Instruction{Op: isa.ST}, false},
		{isa.Instruction{Op: isa.BEQ}, false},
		{isa.Instruction{Op: isa.JAL, Rd: 1}, false}, // control must resolve
		{isa.Instruction{Op: isa.ADD, Rd: 0}, false}, // no destination
		{isa.Instruction{Op: isa.NOP}, false},
		{isa.Instruction{Op: isa.HALT}, false},
	}
	for _, c := range cases {
		if got := Reusable(c.in); got != c.want {
			t.Errorf("Reusable(%v) = %v, want %v", c.in.Op, got, c.want)
		}
	}
}

func TestNoneEngine(t *testing.T) {
	var e Engine = NewNone()
	e.BeginStream(1)
	e.Capture(addInstr(1, 0x1000, 5, 1, 0))
	e.EndStream()
	e.ObserveBlock(0x1000, 0x101c, 1, 8, 1)
	if _, ok := e.TryReuse(Request{PC: 0x1000}); ok {
		t.Error("None must never grant")
	}
	if e.Occupied() || e.Reclaim() {
		t.Error("None holds no state")
	}
}

func msEngine(st *stats.Stats, k Kernel, mod func(*MultiStreamConfig)) *MultiStream {
	cfg := DefaultMultiStreamConfig()
	cfg.VPNRestrict = false
	if mod != nil {
		mod(&cfg)
	}
	return NewMultiStream(cfg, k, st)
}

func TestMultiStreamBasicReuse(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)

	captureStream(m, 1, 10, 0x1000, 4, 100)
	if k.totalHolds() != 4 {
		t.Fatalf("holds after capture = %d, want 4", k.totalHolds())
	}
	// Corrected path fetches a block overlapping the squashed stream at
	// its second instruction.
	m.ObserveBlock(0x1004, 0x1010, 20, 4, 1)
	if st.Reconvergences != 1 {
		t.Fatalf("reconvergences = %d", st.Reconvergences)
	}
	// First lockstep instruction: matches entry 1 (pc 0x1004, src gen 1).
	g, ok := m.TryReuse(Request{
		Seq: 20, PC: 0x1004,
		Instr:   isa.Instruction{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A1, Imm: 1},
		SrcGens: [2]rename.RGID{1, rename.NullRGID},
	})
	if !ok {
		t.Fatal("reuse should hit")
	}
	if g.DestPreg != 101 || g.DestGen != 11 {
		t.Errorf("grant = %+v", g)
	}
	if st.ReuseHits != 1 {
		t.Errorf("ReuseHits = %d", st.ReuseHits)
	}
	// Ownership transferred: the engine must not have released the hold.
	if k.holds[101] != 1 {
		t.Errorf("hold on granted preg = %d, want 1", k.holds[101])
	}
}

func TestMultiStreamRGIDMismatch(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)
	captureStream(m, 1, 10, 0x1000, 2, 100)
	m.ObserveBlock(0x1000, 0x1004, 20, 2, 1)
	// Wrong source generation: the register was renamed in between.
	_, ok := m.TryReuse(Request{
		Seq: 20, PC: 0x1000,
		Instr:   isa.Instruction{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A1, Imm: 1},
		SrcGens: [2]rename.RGID{99, rename.NullRGID},
	})
	if ok {
		t.Fatal("mismatched RGID must not grant")
	}
	if st.ReuseFailRGID != 1 {
		t.Errorf("ReuseFailRGID = %d", st.ReuseFailRGID)
	}
	if k.holds[100] != 0 {
		t.Error("failed entry must release its register")
	}
}

func TestMultiStreamNullRGIDNeverMatches(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, nil)
	m.BeginStream(1)
	si := addInstr(10, 0x1000, 100, 5, rename.NullRGID) // source recorded as null
	m.Capture(si)
	m.EndStream()
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	_, ok := m.TryReuse(Request{
		Seq: 20, PC: 0x1000, Instr: si.Instr,
		SrcGens: [2]rename.RGID{rename.NullRGID, rename.NullRGID},
	})
	if ok {
		t.Fatal("null RGIDs must never pass the reuse test")
	}
}

func TestMultiStreamDivergence(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)
	captureStream(m, 1, 10, 0x1000, 4, 100)
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	// First instruction matches and hits.
	if _, ok := m.TryReuse(Request{Seq: 20, PC: 0x1000, Instr: addInstr(0, 0, 0, 0, 0).Instr, SrcGens: [2]rename.RGID{0, rename.NullRGID}}); !ok {
		t.Fatal("first should hit")
	}
	// Second diverges (different PC).
	if _, ok := m.TryReuse(Request{Seq: 21, PC: 0x2000, Instr: addInstr(0, 0, 0, 0, 0).Instr}); ok {
		t.Fatal("diverged walk must miss")
	}
	if st.Divergences != 1 {
		t.Errorf("Divergences = %d", st.Divergences)
	}
	// The stream survives divergence (multiple reconvergence points may
	// be detected within one WPB, §3.3.1): entry 0 was transferred, the
	// remaining three keep their holds.
	if k.totalHolds() != 4 {
		t.Errorf("holds after divergence = %d, want 4", k.totalHolds())
	}
	if !m.Occupied() {
		t.Fatal("diverged stream should stay valid for re-detection")
	}
	// Re-detect at a later point of the same stream and reuse entry 2.
	m.ObserveBlock(0x1008, 0x1008, 40, 1, 1)
	g, ok := m.TryReuse(Request{
		Seq: 40, PC: 0x1008,
		Instr:   addInstr(0, 0, 0, 0, 0).Instr,
		SrcGens: [2]rename.RGID{2, rename.NullRGID},
	})
	if !ok || g.DestPreg != 102 {
		t.Fatalf("re-detection reuse failed: %+v, %v", g, ok)
	}
}

func TestMultiStreamNotExecutedEntry(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)
	m.BeginStream(1)
	si := addInstr(10, 0x1000, 100, 5, 0)
	si.Executed = false
	si.DestPreg = rename.NoPreg
	m.Capture(si)
	m.EndStream()
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	if _, ok := m.TryReuse(Request{Seq: 20, PC: 0x1000, Instr: si.Instr, SrcGens: [2]rename.RGID{0, 0}}); ok {
		t.Fatal("unexecuted entry must not grant")
	}
	if st.ReuseFailNotDone != 1 {
		t.Errorf("ReuseFailNotDone = %d", st.ReuseFailNotDone)
	}
}

func TestMultiStreamLiveDestNotGranted(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, nil)
	captureStream(m, 1, 10, 0x1000, 1, 100)
	k.live[100] = true
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	if _, ok := m.TryReuse(Request{Seq: 20, PC: 0x1000, Instr: addInstr(0, 0, 0, 0, 0).Instr, SrcGens: [2]rename.RGID{0, 0}}); ok {
		t.Fatal("live destination register must not be granted")
	}
	if k.holds[100] != 0 {
		t.Error("rejected entry must release")
	}
}

func TestMultiStreamRoundRobinReplacement(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, func(c *MultiStreamConfig) { c.Streams = 2 })
	captureStream(m, 1, 10, 0x1000, 2, 100)
	captureStream(m, 2, 20, 0x2000, 2, 110)
	captureStream(m, 3, 30, 0x3000, 2, 120) // evicts stream 1
	// Stream 1's registers must be fully released.
	if k.holds[100] != 0 || k.holds[101] != 0 {
		t.Error("evicted stream must release its registers")
	}
	if k.holds[110] != 1 || k.holds[120] != 1 {
		t.Error("surviving streams must keep their holds")
	}
	// Reconvergence onto the replaced stream's range must now fail.
	m.ObserveBlock(0x1000, 0x1000, 40, 1, 3)
	if m.walking || m.armed {
		t.Error("no stream should cover 0x1000 anymore")
	}
}

func TestMultiStreamDistanceAndTypeClassification(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)
	captureStream(m, 5, 10, 0x1000, 2, 100) // event 1, branch seq 5
	captureStream(m, 9, 20, 0x2000, 2, 110) // event 2, branch seq 9
	// Corrected path of branch 9 reconverges onto branch 5's stream:
	// an elder branch -> software-induced, distance 1.
	m.ObserveBlock(0x1000, 0x1000, 30, 1, 9)
	if st.ReconvByType[stats.ReconvSoftware] != 1 {
		t.Errorf("software-induced = %d, types=%v", st.ReconvByType[stats.ReconvSoftware], st.ReconvByType)
	}
	if st.ReconvDistance[1] != 1 {
		t.Errorf("distance histogram = %v", st.ReconvDistance)
	}
	m.AbortWalk()
	// Corrected path of branch 9 onto branch 9's own stream: simple.
	m.ObserveBlock(0x2000, 0x2000, 40, 1, 9)
	if st.ReconvByType[stats.ReconvSimple] != 1 {
		t.Errorf("simple = %d", st.ReconvByType[stats.ReconvSimple])
	}
	m.AbortWalk()
	// Corrected path of branch 5 onto branch 9's stream: younger branch
	// -> hardware-induced.
	m.ObserveBlock(0x2000, 0x2000, 50, 1, 5)
	if st.ReconvByType[stats.ReconvHardware] != 1 {
		t.Errorf("hardware = %d", st.ReconvByType[stats.ReconvHardware])
	}
}

func TestMultiStreamPrefersMostRecentStream(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)
	// Two streams covering the same PC range.
	captureStream(m, 1, 10, 0x1000, 2, 100)
	captureStream(m, 2, 20, 0x1000, 2, 110)
	m.ObserveBlock(0x1000, 0x1000, 30, 1, 2)
	if !m.armed || m.armedStream != 1 {
		t.Fatalf("armed stream = %d (armed=%v), want the most recent (1)", m.armedStream, m.armed)
	}
	if st.ReconvDistance[0] != 1 {
		t.Errorf("distance should be 0 (neighbouring): %v", st.ReconvDistance)
	}
}

func TestMultiStreamTimeout(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, func(c *MultiStreamConfig) { c.TimeoutInstrs = 10 })
	captureStream(m, 1, 10, 0x1000, 2, 100)
	// Fetch 12 instructions that never overlap.
	m.ObserveBlock(0x9000, 0x901c, 20, 8, 1)
	m.ObserveBlock(0x9020, 0x902c, 28, 4, 1)
	if m.Occupied() {
		t.Error("stream should have timed out")
	}
	if st.StreamTimeouts != 1 {
		t.Errorf("StreamTimeouts = %d", st.StreamTimeouts)
	}
	if k.totalHolds() != 0 {
		t.Error("timeout must release registers")
	}
}

func TestMultiStreamVPNRestriction(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, func(c *MultiStreamConfig) { c.VPNRestrict = true })
	captureStream(m, 1, 10, 0x1000, 2, 100)
	// Block in a different page overlapping modulo the page: no match.
	m.ObserveBlock(0x1000+isa.PageBytes, 0x1004+isa.PageBytes, 20, 2, 1)
	if m.armed {
		t.Error("VPN-restricted detection must not match across pages")
	}
	m.ObserveBlock(0x1000, 0x1004, 30, 2, 1)
	if !m.armed {
		t.Error("same-page overlap should arm")
	}
}

func TestMultiStreamVPNCaptureStopsAtPageBoundary(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, func(c *MultiStreamConfig) { c.VPNRestrict = true })
	m.BeginStream(1)
	// First instruction near the page end, second in the next page with a
	// gap (non-contiguous, so it needs a fresh WPB entry in a new page).
	m.Capture(addInstr(10, isa.PageBytes-4, 100, 1, 0))
	m.Capture(addInstr(11, isa.PageBytes+64, 101, 2, 0))
	m.EndStream()
	if k.holds[101] != 0 {
		t.Error("capture must stop at the page boundary under VPN restriction")
	}
	if k.holds[100] != 1 {
		t.Error("first-page capture must survive")
	}
}

func TestMultiStreamCapacityCaps(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, func(c *MultiStreamConfig) { c.LogEntries = 3; c.WPBEntries = 8 })
	m.BeginStream(1)
	for i := 0; i < 6; i++ {
		m.Capture(addInstr(uint64(10+i), uint64(0x1000+i*4), rename.PhysReg(100+i), rename.RGID(i+1), 0))
	}
	m.EndStream()
	if k.totalHolds() != 3 {
		t.Errorf("holds = %d, want capped at 3", k.totalHolds())
	}
}

func TestMultiStreamWPBEntryCap(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, func(c *MultiStreamConfig) { c.WPBEntries = 2; c.LogEntries = 64 })
	m.BeginStream(1)
	// Three non-contiguous instructions need three WPB entries; only two fit.
	m.Capture(addInstr(10, 0x1000, 100, 1, 0))
	m.Capture(addInstr(11, 0x2000, 101, 2, 0))
	m.Capture(addInstr(12, 0x3000, 102, 3, 0))
	m.EndStream()
	if k.totalHolds() != 2 {
		t.Errorf("holds = %d, want 2 (third block discarded)", k.totalHolds())
	}
}

func TestMultiStreamReclaim(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, nil)
	captureStream(m, 1, 10, 0x1000, 2, 100)
	captureStream(m, 2, 20, 0x2000, 2, 110)
	if !m.Reclaim() {
		t.Fatal("reclaim should succeed")
	}
	// Oldest stream (event 1) dropped.
	if k.holds[100] != 0 || k.holds[110] != 1 {
		t.Errorf("reclaim dropped the wrong stream: holds=%v", k.holds)
	}
	m.Reclaim()
	if m.Reclaim() {
		t.Error("reclaim with nothing left should report false")
	}
}

func TestMultiStreamInvalidateAll(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, nil)
	captureStream(m, 1, 10, 0x1000, 4, 100)
	m.InvalidateAll()
	if m.Occupied() || k.totalHolds() != 0 {
		t.Error("InvalidateAll must clear everything")
	}
}

func TestMultiStreamLoadPolicies(t *testing.T) {
	ld := SquashedInstr{
		Seq: 10, PC: 0x1000,
		Instr:    isa.Instruction{Op: isa.LD, Rd: isa.A0, Rs1: isa.A1},
		Executed: true, DestPreg: 100, DestGen: 5,
		SrcGens: [2]rename.RGID{0, rename.NullRGID},
		MemAddr: 0x8000,
	}
	req := Request{Seq: 20, PC: 0x1000, Instr: ld.Instr, SrcGens: [2]rename.RGID{0, rename.NullRGID}}

	// Verify policy: grant with IsLoad set.
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)
	m.BeginStream(1)
	m.Capture(ld)
	m.EndStream()
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	g, ok := m.TryReuse(req)
	if !ok || !g.IsLoad || g.MemAddr != 0x8000 {
		t.Fatalf("verify policy grant = %+v, %v", g, ok)
	}

	// NoLoadReuse policy: always reject loads.
	k = newFakeKernel()
	m = msEngine(nil, k, func(c *MultiStreamConfig) { c.LoadPolicy = LoadNoReuse })
	m.BeginStream(1)
	m.Capture(ld)
	m.EndStream()
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	if _, ok := m.TryReuse(req); ok {
		t.Fatal("NoLoadReuse must reject loads")
	}

	// Bloom policy: reject after a conflicting store, allow otherwise.
	k = newFakeKernel()
	st = &stats.Stats{}
	m = msEngine(st, k, func(c *MultiStreamConfig) { c.LoadPolicy = LoadBloom })
	m.BeginStream(1)
	m.Capture(ld)
	m.EndStream()
	m.NoteStore(0x8000)
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	if _, ok := m.TryReuse(req); ok {
		t.Fatal("Bloom policy must reject a load whose address saw a store")
	}
	if st.BloomFilterRejects != 1 {
		t.Errorf("BloomFilterRejects = %d", st.BloomFilterRejects)
	}

	k = newFakeKernel()
	m = msEngine(nil, k, func(c *MultiStreamConfig) { c.LoadPolicy = LoadBloom })
	m.BeginStream(1)
	m.Capture(ld)
	m.EndStream()
	m.NoteStore(0x9000) // different address
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	if g, ok := m.TryReuse(req); !ok || g.IsLoad != true {
		t.Fatal("Bloom policy should allow a clean load")
	}
}

func TestMultiStreamAbortWalkKeepsArmedStreamValid(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, nil)
	captureStream(m, 1, 10, 0x1000, 2, 100)
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	if !m.armed {
		t.Fatal("should be armed")
	}
	m.AbortWalk() // flush before the reconvergent instruction renamed
	if !m.Occupied() {
		t.Error("armed-but-unwalked stream should survive a flush")
	}
	if k.totalHolds() != 2 {
		t.Errorf("holds = %d", k.totalHolds())
	}
	// It can be re-detected afterwards.
	m.ObserveBlock(0x1004, 0x1004, 30, 1, 1)
	if !m.armed {
		t.Error("re-detection after abort failed")
	}
}

func TestMultiStreamWalkExhaustionInvalidatesStream(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, nil)
	captureStream(m, 1, 10, 0x1000, 1, 100)
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	g, ok := m.TryReuse(Request{Seq: 20, PC: 0x1000, Instr: addInstr(0, 0, 0, 0, 0).Instr, SrcGens: [2]rename.RGID{0, 0}})
	if !ok || g.DestPreg != 100 {
		t.Fatalf("grant = %+v, %v", g, ok)
	}
	if m.Occupied() {
		t.Error("fully walked stream must be invalidated")
	}
	if m.walking {
		t.Error("walk must end at stream exhaustion")
	}
}

func TestEngineNamesAndMisc(t *testing.T) {
	k := newFakeKernel()
	if got := NewMultiStream(DefaultMultiStreamConfig(), k, nil).Name(); got != "rgid-4x64" {
		t.Errorf("MultiStream name = %q", got)
	}
	if got := NewRegisterIntegration(DefaultRIConfig(), k, nil).Name(); got != "ri-64s4w" {
		t.Errorf("RI name = %q", got)
	}
	if got := NewDIR(DefaultDIRConfig(), k, nil).Name(); got != "dir-value-64s4w" {
		t.Errorf("DIR name = %q", got)
	}
	cfg := DefaultDIRConfig()
	cfg.Scheme = DIRName
	if got := NewDIR(cfg, k, nil).Name(); got != "dir-name-64s4w" {
		t.Errorf("DIR name-scheme name = %q", got)
	}
	for _, p := range []LoadPolicy{LoadVerify, LoadBloom, LoadNoReuse, LoadPolicy(99)} {
		if p.String() == "" {
			t.Error("empty load-policy name")
		}
	}
	if DIRValue.String() != "value" || DIRName.String() != "name" {
		t.Error("bad DIR scheme names")
	}
	// No-op engine hooks must be callable.
	d := NewDIR(DefaultDIRConfig(), k, nil)
	d.ObserveBlock(0, 0, 0, 0, 0)
	d.OnPregFreed(5)
	d.EndStream()
	d.AbortWalk()
	m := NewMultiStream(DefaultMultiStreamConfig(), k, nil)
	m.OnPregFreed(5)
	m.EndStream()                           // without BeginStream: no-op
	m.Capture(addInstr(1, 0x1000, 9, 1, 0)) // not capturing: no-op
	if k.totalHolds() != 0 {
		t.Error("capture outside a stream must not hold")
	}
}

func TestMultiStreamBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config accepted")
		}
	}()
	NewMultiStream(MultiStreamConfig{Streams: 0, WPBEntries: 1, LogEntries: 1}, newFakeKernel(), nil)
}

func TestMultiStreamEmptyStreamDiscarded(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	m := msEngine(st, k, nil)
	m.BeginStream(1)
	m.EndStream() // nothing captured
	if m.Occupied() {
		t.Error("empty stream must be discarded")
	}
	if st.SquashedStreams != 0 {
		t.Error("empty stream must not be counted")
	}
}

func TestMultiStreamReclaimSacrificesBusyWalk(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, func(c *MultiStreamConfig) { c.Streams = 1 })
	captureStream(m, 1, 10, 0x1000, 4, 100)
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	// Begin walking so the only stream is busy.
	if _, ok := m.TryReuse(Request{Seq: 20, PC: 0x1000, Instr: addInstr(0, 0, 0, 0, 0).Instr, SrcGens: [2]rename.RGID{0, rename.NullRGID}}); !ok {
		t.Fatal("walk should start with a hit")
	}
	if !m.Reclaim() {
		t.Fatal("reclaim must sacrifice the walking stream under pressure")
	}
	if m.Occupied() {
		t.Error("sacrificed stream must be gone")
	}
}

func TestMultiStreamArmedSkippedWhenFseqPasses(t *testing.T) {
	k := newFakeKernel()
	m := msEngine(nil, k, nil)
	captureStream(m, 1, 10, 0x1000, 2, 100)
	m.ObserveBlock(0x1000, 0x1000, 20, 1, 1)
	if !m.armed {
		t.Fatal("should be armed")
	}
	// A request with a later fetch seq (the armed instruction never
	// arrived, e.g. consumed by an intervening redirect race) disarms.
	if _, ok := m.TryReuse(Request{Seq: 25, PC: 0x2000}); ok {
		t.Fatal("must miss")
	}
	if m.armed || m.walking {
		t.Error("stale armed state must clear")
	}
}
