// Package reuse implements the squash-reuse engines evaluated by the
// paper:
//
//   - MultiStream — the paper's contribution: RGID-based multi-stream
//     squash reuse with Wrong-Path Buffers, block-range reconvergence
//     detection and Squash Logs (§3).
//   - RegisterIntegration — the table-based baseline (Roth & Sohi, MICRO
//     2000) as characterized in §2.2.3 and §4.1.2, including transitive
//     invalidation and per-set replacement tracking.
//   - None — the no-reuse baseline.
//
// Dynamic Control Independence (DCI) is evaluated, as in the paper, by
// configuring MultiStream with a single stream.
//
// Engines plug into the out-of-order core through the Engine interface;
// the core feeds squashed streams, fetched prediction blocks, and rename
// requests, and honours grants by re-adopting held physical registers.
package reuse

import (
	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/stats"
)

// Kernel is the core-side interface engines use to reserve physical
// registers (the §3.3.2 delayed-freeing discipline) and to validate
// grants.
type Kernel interface {
	// HoldPreg adds a squash-reuse reservation on p, preventing it from
	// returning to the free list.
	HoldPreg(p rename.PhysReg)
	// ReleasePreg drops one reservation.
	ReleasePreg(p rename.PhysReg)
	// PregLive reports whether p is currently the destination of an
	// in-flight instruction or part of architectural state; a held
	// register that is live again must not be granted a second time.
	PregLive(p rename.PhysReg) bool
	// PregValue returns p's current value and whether it is ready. The
	// Dynamic Instruction Reuse engine needs operand values for its
	// value-matching scheme; the RGID and RI engines never read values.
	PregValue(p rename.PhysReg) (uint64, bool)
}

// SquashedInstr describes one squashed instruction captured into an
// engine's reuse structures, in program order, starting at the first
// instruction after the mispredicted branch.
type SquashedInstr struct {
	Seq      uint64
	PC       uint64
	Instr    isa.Instruction
	Executed bool
	// DestPreg/DestGen are the squashed destination mapping (NoPreg when
	// the instruction has no destination).
	DestPreg rename.PhysReg
	DestGen  rename.RGID
	// SrcGens/SrcPregs are the source mappings observed when the
	// instruction was renamed.
	SrcGens  [2]rename.RGID
	SrcPregs [2]rename.PhysReg
	// MemAddr is the effective address of an executed load.
	MemAddr uint64
	// Result is the executed result value (valid when Executed); used by
	// value-storing engines (DIR).
	Result uint64
	// SrcSurvives[i] reports whether source i's mapping survives the
	// squash rollback (its producer is older than the mispredicted
	// branch). Name-keyed reuse (DIR scheme Sn) must not insert entries
	// whose sources vanish with the rollback: architecturally those
	// registers change value without any subsequent overwrite.
	SrcSurvives [2]bool
}

// Request is a rename-time reuse test for one incoming instruction, with
// its source mappings resolved against the current RAT and the in-flight
// rename bundle.
type Request struct {
	Seq      uint64
	PC       uint64
	Instr    isa.Instruction
	SrcGens  [2]rename.RGID
	SrcPregs [2]rename.PhysReg
}

// Grant is a successful reuse: the core maps the instruction's destination
// to DestPreg (already holding the squashed execution's result), marks it
// complete, and — for the RGID engine — forwards DestGen as the new
// generation tag. Engines that do not manage generations return NullRGID
// and the core allocates a fresh tag.
type Grant struct {
	DestPreg rename.PhysReg
	DestGen  rename.RGID
	// IsLoad requests the core schedule value verification for the reused
	// load (§3.8.3).
	IsLoad  bool
	MemAddr uint64
	// ByValue grants carry the result as a value instead of a held
	// physical register (Dynamic Instruction Reuse stores results in its
	// Reuse Buffer rather than keeping registers alive); the core
	// allocates a fresh register and writes Value into it.
	ByValue bool
	Value   uint64
}

// Reusable reports whether an instruction's execution result is eligible
// for squash reuse at all: it must produce a register value and not be
// control flow (control instructions must still resolve to validate
// prediction, and stores must execute for hazard detection — §3.1).
func Reusable(in isa.Instruction) bool {
	return in.HasDest() && !in.IsControl()
}

// LoadPolicy selects how reused loads are protected against memory-order
// violations (§3.8.3).
type LoadPolicy int

// Load policies.
const (
	// LoadVerify re-executes reused loads and compares values, flushing
	// on mismatch (the NoSQ-style mechanism the paper evaluates).
	LoadVerify LoadPolicy = iota
	// LoadBloom blocks reuse of loads whose address hits a Bloom filter
	// of store addresses executed since the squash (the paper's proposed
	// alternative).
	LoadBloom
	// LoadNoReuse never reuses loads (conservative ablation).
	LoadNoReuse
)

func (p LoadPolicy) String() string {
	switch p {
	case LoadVerify:
		return "verify"
	case LoadBloom:
		return "bloom"
	case LoadNoReuse:
		return "no-load-reuse"
	}
	return "unknown"
}

// Engine is a squash-reuse mechanism. The core invokes it as follows:
//
//   - On a branch-misprediction squash: BeginStream, then Capture for each
//     squashed instruction in program order, then EndStream.
//   - On every prediction block fetched after a redirect: ObserveBlock.
//   - At rename, for every instruction in program order: TryReuse.
//   - On any pipeline flush (mispredict or memory violation): AbortWalk
//     before the new stream capture.
//   - When a store executes: NoteStore (Bloom-filter load protection).
//   - When a physical register returns to the free list: OnPregFreed
//     (Register Integration's transitive invalidation trigger).
//   - Under free-list pressure: Reclaim (§3.3.2 condition 5).
//   - On memory-order violation flushes and RGID resets: InvalidateAll.
type Engine interface {
	Name() string
	BeginStream(branchSeq uint64)
	Capture(si SquashedInstr)
	EndStream()
	// ObserveBlock feeds one fetched prediction block: its PC range, the
	// fetch sequence number of its first instruction, its instruction
	// count, and the branch that caused the most recent redirect.
	ObserveBlock(startPC, endPC uint64, firstFseq uint64, nInstrs int, redirectBranchSeq uint64)
	TryReuse(req Request) (Grant, bool)
	AbortWalk()
	NoteStore(addr uint64)
	OnPregFreed(p rename.PhysReg)
	Reclaim() bool
	InvalidateAll()
	// Occupied reports whether any reuse structure currently holds state
	// (drives the opportunistic RGID reset, §3.3.2).
	Occupied() bool
	// Reset restores the pristine post-construction state in place,
	// releasing every held physical register through the kernel. It must
	// run while the kernel's register tracker is still in the matching
	// state — i.e. before the tracker itself resets.
	Reset()
}

// None is the no-reuse baseline engine.
type None struct{}

// NewNone returns the baseline engine.
func NewNone() None { return None{} }

func (None) Name() string                                     { return "none" }
func (None) BeginStream(uint64)                               {}
func (None) Capture(SquashedInstr)                            {}
func (None) EndStream()                                       {}
func (None) ObserveBlock(uint64, uint64, uint64, int, uint64) {}
func (None) TryReuse(Request) (Grant, bool)                   { return Grant{}, false }
func (None) AbortWalk()                                       {}
func (None) NoteStore(uint64)                                 {}
func (None) OnPregFreed(rename.PhysReg)                       {}
func (None) Reclaim() bool                                    { return false }
func (None) InvalidateAll()                                   {}
func (None) Occupied() bool                                   { return false }
func (None) Reset()                                           {}

// statsOf returns st or a discardable sink, so engines can be used without
// stats plumbing in tests.
func statsOf(st *stats.Stats) *stats.Stats {
	if st == nil {
		return &stats.Stats{}
	}
	return st
}
