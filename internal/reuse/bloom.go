package reuse

// bloomFilter is a small Bloom filter over memory addresses, used by the
// LoadBloom policy to track store (and, in a multicore system, snoop)
// addresses between a squash and the reuse test (§3.8.3). Two hash
// functions over the cache-line-granular address index a fixed bit array.
type bloomFilter struct {
	bits []uint64
	mask uint64
}

// newBloomFilter builds a filter with 2^logBits bits.
func newBloomFilter(logBits int) *bloomFilter {
	n := 1 << logBits
	return &bloomFilter{bits: make([]uint64, n/64), mask: uint64(n - 1)}
}

func (b *bloomFilter) hashes(addr uint64) (uint64, uint64) {
	a := addr >> 3 // word granularity, matching the ISA's access size
	h1 := (a * 0x9e3779b97f4a7c15) >> 32 & b.mask
	h2 := (a*0xc2b2ae3d27d4eb4f ^ a>>17) & b.mask
	return h1, h2
}

// Insert records addr.
func (b *bloomFilter) Insert(addr uint64) {
	h1, h2 := b.hashes(addr)
	b.bits[h1/64] |= 1 << (h1 % 64)
	b.bits[h2/64] |= 1 << (h2 % 64)
}

// MayContain reports whether addr may have been inserted (false positives
// possible, false negatives not).
func (b *bloomFilter) MayContain(addr uint64) bool {
	h1, h2 := b.hashes(addr)
	return b.bits[h1/64]&(1<<(h1%64)) != 0 && b.bits[h2/64]&(1<<(h2%64)) != 0
}

// Reset clears the filter (performed together with squash-log
// invalidation, §3.8.3).
func (b *bloomFilter) Reset() {
	for i := range b.bits {
		b.bits[i] = 0
	}
}
