package reuse

import (
	"fmt"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/stats"
)

// MultiStreamConfig parameterizes the paper's mechanism. The paper's
// typical configuration (§3.6) is 4 streams, 16 WPB block entries and 64
// squash-log entries per stream.
type MultiStreamConfig struct {
	// Streams is N, the number of squashed streams tracked simultaneously.
	Streams int
	// WPBEntries is M, fetch-block entries per Wrong-Path Buffer stream.
	WPBEntries int
	// LogEntries is P, instruction entries per Squash Log stream.
	LogEntries int
	// TimeoutInstrs invalidates a stream after this many fetched
	// instructions without reconvergence (the paper uses 1024).
	TimeoutInstrs int
	// VPNRestrict confines each stream to a single virtual page so
	// reconvergence detection compares only PC[11:1] plus one VPN
	// register per stream (§3.4).
	VPNRestrict bool
	// LoadPolicy selects the reused-load protection mechanism.
	LoadPolicy LoadPolicy
	// BloomLogBits sizes the LoadBloom filter (2^n bits).
	BloomLogBits int
}

// DefaultMultiStreamConfig returns the paper's typical configuration.
func DefaultMultiStreamConfig() MultiStreamConfig {
	return MultiStreamConfig{
		Streams:       4,
		WPBEntries:    16,
		LogEntries:    64,
		TimeoutInstrs: 1024,
		VPNRestrict:   true,
		LoadPolicy:    LoadVerify,
		BloomLogBits:  10,
	}
}

// wpbEntry is one Wrong-Path Buffer entry: a contiguous fetch-block range
// (start/end inclusive).
type wpbEntry struct {
	start, end uint64
	count      int
}

type logEntry struct {
	SquashedInstr
	held bool
}

// msStream is one squashed stream: a WPB (block ranges, used by fetch-side
// reconvergence detection) and its mirrored Squash Log (instruction-grain
// rename metadata, used by the rename-side reuse test).
type msStream struct {
	valid     bool
	branchSeq uint64 // the mispredicted branch that created the stream
	eventIdx  uint64 // global squash-event number at creation
	vpn       uint64
	age       int // fetched instructions since creation
	wpb       []wpbEntry
	log       []logEntry
}

// MultiStream is the paper's Multi-Stream Squash Reuse engine.
type MultiStream struct {
	cfg MultiStreamConfig
	k   Kernel
	st  *stats.Stats

	streams  []msStream
	writePtr int
	events   uint64

	// orderScratch backs streamsByRecency's result so the per-block
	// recency sort never allocates.
	orderScratch []int

	// capture state (between BeginStream and EndStream)
	capturing bool
	capIdx    int
	capFull   bool

	// armed state: a reconvergence point detected in fetch, waiting for
	// the instruction to arrive at rename.
	armed       bool
	armedStream int
	armedPC     uint64
	armedOffset int
	armedFseq   uint64

	// walk state: the Squash Log is being compared in lockstep with the
	// incoming rename stream.
	walking    bool
	walkStream int
	walkIdx    int

	bloom *bloomFilter
}

// NewMultiStream builds the engine. st may be nil.
func NewMultiStream(cfg MultiStreamConfig, k Kernel, st *stats.Stats) *MultiStream {
	if cfg.Streams < 1 || cfg.WPBEntries < 1 || cfg.LogEntries < 1 {
		panic(fmt.Sprintf("reuse: invalid MultiStreamConfig %+v", cfg))
	}
	m := &MultiStream{
		cfg:          cfg,
		k:            k,
		st:           statsOf(st),
		streams:      make([]msStream, cfg.Streams),
		orderScratch: make([]int, 0, cfg.Streams),
	}
	for i := range m.streams {
		m.streams[i].wpb = make([]wpbEntry, 0, cfg.WPBEntries)
		m.streams[i].log = make([]logEntry, 0, cfg.LogEntries)
	}
	if cfg.LoadPolicy == LoadBloom {
		m.bloom = newBloomFilter(cfg.BloomLogBits)
	}
	return m
}

// Reset implements Engine: it releases every held register through the
// kernel and restores the post-construction state, keeping each stream's
// WPB and log capacity.
func (m *MultiStream) Reset() {
	m.InvalidateAll()
	m.writePtr = 0
	m.events = 0
}

// Name implements Engine.
func (m *MultiStream) Name() string {
	return fmt.Sprintf("rgid-%dx%d", m.cfg.Streams, m.cfg.LogEntries)
}

// BeginStream implements Engine: it opens capture of a new squashed
// stream, replacing the round-robin victim.
func (m *MultiStream) BeginStream(branchSeq uint64) {
	m.AbortWalk()
	idx := m.writePtr
	m.writePtr = (m.writePtr + 1) % m.cfg.Streams
	m.invalidateStream(idx)
	m.events++
	s := &m.streams[idx]
	s.valid = true
	s.branchSeq = branchSeq
	s.eventIdx = m.events
	s.vpn = 0
	s.age = 0
	m.capturing = true
	m.capIdx = idx
	m.capFull = false
}

// Capture implements Engine. Instructions arrive in program order starting
// just after the mispredicted branch; capture stops silently once either
// the WPB or the Squash Log stream is full (younger squashed instructions
// are discarded, §3.3.2) or the VPN restriction is violated.
func (m *MultiStream) Capture(si SquashedInstr) {
	if !m.capturing || m.capFull {
		return
	}
	s := &m.streams[m.capIdx]
	if len(s.log) >= m.cfg.LogEntries {
		m.capFull = true
		return
	}
	// Extend or open a WPB block entry.
	if n := len(s.wpb); n > 0 && s.wpb[n-1].end+isa.InstrBytes == si.PC && s.wpb[n-1].count < isa.FetchBlockInstrs {
		s.wpb[n-1].end = si.PC
		s.wpb[n-1].count++
	} else {
		if len(s.wpb) == 0 {
			s.vpn = isa.PageNumber(si.PC)
		}
		if m.cfg.VPNRestrict && isa.PageNumber(si.PC) != s.vpn {
			m.capFull = true
			return
		}
		if len(s.wpb) >= m.cfg.WPBEntries {
			m.capFull = true
			return
		}
		s.wpb = append(s.wpb, wpbEntry{start: si.PC, end: si.PC, count: 1})
	}
	e := logEntry{SquashedInstr: si}
	if si.Executed && si.DestPreg != rename.NoPreg && Reusable(si.Instr) {
		m.k.HoldPreg(si.DestPreg)
		e.held = true
	}
	s.log = append(s.log, e)
}

// EndStream implements Engine.
func (m *MultiStream) EndStream() {
	if !m.capturing {
		return
	}
	m.capturing = false
	s := &m.streams[m.capIdx]
	if len(s.log) == 0 {
		s.valid = false
		return
	}
	m.st.SquashedStreams++
}

// ObserveBlock implements Engine: fetch-side reconvergence detection. The
// block [startPC, endPC] was just fetched, its first instruction carries
// fetch sequence firstFseq, it contains nInstrs instructions, and the most
// recent pipeline redirect was caused by the branch with dynamic sequence
// redirectSeq.
//
// Detection performs the paper's range-overlap test
// (start_head <= end_wpb && end_head >= start_wpb) against every entry of
// every valid stream, preferring the most recently updated stream and the
// entry closest to the mispredicted branch (§3.3.1, §3.4).
func (m *MultiStream) ObserveBlock(startPC, endPC uint64, firstFseq uint64, nInstrs int, redirectSeq uint64) {
	// Age streams and apply the no-reconvergence timeout.
	for i := range m.streams {
		s := &m.streams[i]
		if !s.valid {
			continue
		}
		s.age += nInstrs
		if s.age > m.cfg.TimeoutInstrs && !m.streamBusy(i) {
			m.invalidateStream(i)
			m.st.StreamTimeouts++
		}
	}
	if m.armed || m.walking {
		return
	}
	// Most recently updated stream first.
	order := m.streamsByRecency()
	for _, i := range order {
		s := &m.streams[i]
		if m.cfg.VPNRestrict && isa.PageNumber(startPC) != s.vpn {
			continue
		}
		cum := 0
		for _, e := range s.wpb {
			if startPC <= e.end && endPC >= e.start {
				reconvPC := startPC
				if e.start > reconvPC {
					reconvPC = e.start
				}
				m.armed = true
				m.armedStream = i
				m.armedPC = reconvPC
				m.armedOffset = cum + int((reconvPC-e.start)/isa.InstrBytes)
				m.armedFseq = firstFseq + (reconvPC-startPC)/isa.InstrBytes
				m.classifyReconv(s, redirectSeq)
				return
			}
			cum += e.count
		}
	}
}

// streamsByRecency returns valid stream indices, most recent first. The
// returned slice aliases a scratch buffer and is valid until the next
// call.
func (m *MultiStream) streamsByRecency() []int {
	order := m.orderScratch[:0]
	for i := range m.streams {
		if m.streams[i].valid {
			order = append(order, i)
		}
	}
	// Insertion sort by descending eventIdx (N <= 8 in practice).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && m.streams[order[j]].eventIdx > m.streams[order[j-1]].eventIdx; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

func (m *MultiStream) classifyReconv(s *msStream, redirectSeq uint64) {
	distance := int(m.events - s.eventIdx) // 0 == neighbouring stream
	var kind stats.ReconvType
	switch {
	case s.branchSeq == redirectSeq:
		kind = stats.ReconvSimple
	case s.branchSeq < redirectSeq:
		kind = stats.ReconvSoftware
	default:
		kind = stats.ReconvHardware
	}
	m.st.AddReconv(kind, distance)
}

func (m *MultiStream) streamBusy(i int) bool {
	return (m.armed && m.armedStream == i) || (m.walking && m.walkStream == i)
}

// TryReuse implements Engine: the rename-side lockstep walk and RGID reuse
// test (§3.5).
func (m *MultiStream) TryReuse(req Request) (Grant, bool) {
	if m.armed && req.Seq >= m.armedFseq {
		if req.Seq == m.armedFseq && req.PC == m.armedPC {
			m.walking = true
			m.walkStream = m.armedStream
			m.walkIdx = m.armedOffset
		}
		// Either way the armed event has been consumed or skipped past.
		m.armed = false
	}
	if !m.walking {
		return Grant{}, false
	}
	s := &m.streams[m.walkStream]
	if m.walkIdx >= len(s.log) {
		m.endWalk(false)
		return Grant{}, false
	}
	e := &s.log[m.walkIdx]
	if e.PC != req.PC {
		// The corrected path diverged from the squashed stream: the IFU's
		// termination signal stops the reuse test. The stream itself
		// remains valid — the paper's IFU resumes monitoring once no
		// reconvergence point is identified, and multiple reconvergence
		// points may be detected within the same WPB (§3.3.1); unconsumed
		// registers are reclaimed when the stream dies (timeout,
		// replacement, pressure or exhaustion).
		m.st.Divergences++
		m.endWalk(true)
		return Grant{}, false
	}
	m.walkIdx++
	exhausted := m.walkIdx >= len(s.log)
	grant, ok := m.testEntry(req, e)
	if exhausted {
		m.endWalk(false)
	}
	return grant, ok
}

// testEntry applies the eligibility and RGID tests to one lockstep pair.
func (m *MultiStream) testEntry(req Request, e *logEntry) (Grant, bool) {
	if !Reusable(e.Instr) {
		return Grant{}, false
	}
	if !e.Executed {
		m.st.ReuseFailNotDone++
		return Grant{}, false
	}
	if !e.held {
		// Already consumed or released (should not happen for a valid
		// walk, but a reclaimed stream may race with the walk ending).
		return Grant{}, false
	}
	m.st.ReuseTests++
	if e.Instr.IsLoad() {
		switch m.cfg.LoadPolicy {
		case LoadNoReuse:
			m.st.ReuseFailKind++
			m.releaseEntry(e)
			return Grant{}, false
		case LoadBloom:
			if m.bloom.MayContain(e.MemAddr) {
				m.st.BloomFilterRejects++
				m.releaseEntry(e)
				return Grant{}, false
			}
		}
	}
	// The RGID reuse test: every source generation of the incoming
	// instruction must match its squashed counterpart's (§3.1, §3.5).
	for i := 0; i < req.Instr.NumSources(); i++ {
		if !rename.Match(req.SrcGens[i], e.SrcGens[i]) {
			m.st.ReuseFailRGID++
			m.releaseEntry(e)
			return Grant{}, false
		}
	}
	// A register that is live again already belongs to another in-flight
	// instruction; its content is the same but it cannot have two owners.
	if m.k.PregLive(e.DestPreg) {
		m.st.ReuseFailKind++
		m.releaseEntry(e)
		return Grant{}, false
	}
	// Grant: ownership of the held register transfers to the core (which
	// revives it and drops this entry's reservation).
	e.held = false
	m.st.ReuseHits++
	g := Grant{DestPreg: e.DestPreg, DestGen: e.DestGen}
	if e.Instr.IsLoad() {
		m.st.ReusedLoads++
		g.IsLoad = true
		g.MemAddr = e.MemAddr
	}
	return g, true
}

func (m *MultiStream) releaseEntry(e *logEntry) {
	if e.held {
		m.k.ReleasePreg(e.DestPreg)
		e.held = false
	}
}

// endWalk finishes the active walk. A fully exhausted stream is consumed
// and invalidated; a diverged (or flush-aborted) stream stays valid so a
// later reconvergence point within the same WPB can be detected.
func (m *MultiStream) endWalk(keepStream bool) {
	if !m.walking {
		return
	}
	if !keepStream {
		m.invalidateStream(m.walkStream)
	}
	m.walking = false
}

// AbortWalk implements Engine: any pipeline flush kills the in-flight
// reuse window (the instructions being walked are squashed) and disarms a
// pending reconvergence. The underlying stream survives for re-detection.
func (m *MultiStream) AbortWalk() {
	m.armed = false
	m.endWalk(true)
}

// NoteStore implements Engine (LoadBloom policy).
func (m *MultiStream) NoteStore(addr uint64) {
	if m.bloom != nil {
		m.bloom.Insert(addr)
	}
}

// OnPregFreed implements Engine. The RGID scheme needs no eager
// invalidation: stale entries fail their generation test lazily (§3.7.2).
func (m *MultiStream) OnPregFreed(rename.PhysReg) {}

// Reclaim implements Engine: under free-list pressure the least recent
// stream's Squash Log is freed and its registers reclaimed (§3.3.2
// condition 5).
func (m *MultiStream) Reclaim() bool {
	oldest := -1
	var oldestEvent uint64
	for i := range m.streams {
		if !m.streams[i].valid || m.streamBusy(i) {
			continue
		}
		if oldest < 0 || m.streams[i].eventIdx < oldestEvent {
			oldest = i
			oldestEvent = m.streams[i].eventIdx
		}
	}
	if oldest < 0 {
		// Only busy streams remain; sacrifice the walk.
		m.AbortWalk()
		for i := range m.streams {
			if m.streams[i].valid {
				m.invalidateStream(i)
				return true
			}
		}
		return false
	}
	m.invalidateStream(oldest)
	return true
}

// InvalidateAll implements Engine: clears every stream and the Bloom
// filter (performed on memory-order violation flushes and RGID resets).
func (m *MultiStream) InvalidateAll() {
	m.AbortWalk()
	m.capturing = false
	for i := range m.streams {
		m.invalidateStream(i)
	}
	if m.bloom != nil {
		m.bloom.Reset()
	}
}

// Occupied implements Engine.
func (m *MultiStream) Occupied() bool {
	for i := range m.streams {
		if m.streams[i].valid {
			return true
		}
	}
	return false
}

func (m *MultiStream) invalidateStream(i int) {
	s := &m.streams[i]
	if !s.valid {
		return
	}
	for j := range s.log {
		m.releaseEntry(&s.log[j])
	}
	s.valid = false
	s.log = s.log[:0]
	s.wpb = s.wpb[:0]
}
