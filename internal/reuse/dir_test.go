package reuse

import (
	"testing"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/stats"
)

// dirInstr builds an executed squashed ADD with source pregs s1/s2 and
// result res; both sources survive the rollback by default.
func dirInstr(pc uint64, s1, s2 rename.PhysReg, res uint64) SquashedInstr {
	return SquashedInstr{
		PC:          pc,
		Instr:       isa.Instruction{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2},
		Executed:    true,
		DestPreg:    200,
		SrcPregs:    [2]rename.PhysReg{s1, s2},
		Result:      res,
		SrcSurvives: [2]bool{true, true},
	}
}

func dirEngine(st *stats.Stats, k Kernel, scheme DIRScheme) *DIR {
	cfg := DefaultDIRConfig()
	cfg.Scheme = scheme
	return NewDIR(cfg, k, st)
}

func TestDIRValueBasicReuse(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	d := dirEngine(st, k, DIRValue)
	k.values[10], k.values[11] = 7, 9
	d.BeginStream(1)
	d.Capture(dirInstr(0x1000, 10, 11, 16))
	d.EndStream()
	// Current sources in different pregs but with the SAME VALUES: the
	// value scheme reuses across renaming, unlike RI.
	k.values[20], k.values[21] = 7, 9
	g, ok := d.TryReuse(Request{
		PC:       0x1000,
		Instr:    isa.Instruction{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2},
		SrcPregs: [2]rename.PhysReg{20, 21},
	})
	if !ok || !g.ByValue || g.Value != 16 {
		t.Fatalf("grant = %+v, %v", g, ok)
	}
	if st.ReuseHits != 1 {
		t.Errorf("hits = %d", st.ReuseHits)
	}
	// Entry consumed.
	if _, ok := d.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{20, 21}}); ok {
		t.Error("entry must be consumed")
	}
	// DIR never holds registers.
	if k.totalHolds() != 0 {
		t.Error("DIR must not hold registers")
	}
}

func TestDIRValueMismatchAndUnready(t *testing.T) {
	k := newFakeKernel()
	d := dirEngine(nil, k, DIRValue)
	k.values[10], k.values[11] = 7, 9
	d.BeginStream(1)
	d.Capture(dirInstr(0x1000, 10, 11, 16))
	d.EndStream()
	// Different operand value: no reuse.
	k.values[20], k.values[21] = 7, 10
	if _, ok := d.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{20, 21}}); ok {
		t.Error("different operand values must not reuse")
	}
	// Operand not ready at rename: the value test cannot fire.
	k.values[21] = 9
	k.notReady[21] = true
	if _, ok := d.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{20, 21}}); ok {
		t.Error("unready operand must not reuse")
	}
}

func TestDIRValueTemporalCollision(t *testing.T) {
	// Two dynamic instances of the same PC: the second overwrites the
	// first (the §3.7.1 temporal-reference limitation).
	k := newFakeKernel()
	d := dirEngine(nil, k, DIRValue)
	k.values[10], k.values[11] = 1, 2
	d.BeginStream(1)
	d.Capture(dirInstr(0x1000, 10, 11, 3))
	si := dirInstr(0x1000, 10, 11, 30)
	k.values[10], k.values[11] = 10, 20
	d.Capture(si)
	d.EndStream()
	// Only the second context survives.
	k.values[20], k.values[21] = 1, 2
	if _, ok := d.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{20, 21}}); ok {
		t.Error("first context should have been overwritten")
	}
	k.values[20], k.values[21] = 10, 20
	g, ok := d.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{20, 21}})
	if !ok || g.Value != 30 {
		t.Fatalf("second context grant = %+v, %v", g, ok)
	}
}

func TestDIRNameReuseAndInvalidation(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	d := dirEngine(st, k, DIRName)
	d.BeginStream(1)
	d.Capture(dirInstr(0x1000, 10, 11, 16))
	d.EndStream()
	// Matching architectural names: reuse.
	g, ok := d.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{20, 21}})
	if !ok || g.Value != 16 {
		t.Fatalf("grant = %+v, %v", g, ok)
	}
	// Re-insert, then overwrite a source register name: invalidated.
	d.BeginStream(2)
	d.Capture(dirInstr(0x1000, 10, 11, 16))
	d.EndStream()
	writer := Request{PC: 0x2000, Instr: isa.Instruction{Op: isa.ADDI, Rd: isa.A1, Rs1: isa.A3, Imm: 1}}
	if _, ok := d.TryReuse(writer); ok {
		t.Fatal("writer itself should not reuse")
	}
	if _, ok := d.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{20, 21}}); ok {
		t.Error("overwritten source name must invalidate the entry")
	}
}

func TestDIRNameFlushDropsEntries(t *testing.T) {
	k := newFakeKernel()
	d := dirEngine(nil, k, DIRName)
	d.BeginStream(1)
	d.Capture(dirInstr(0x1000, 10, 11, 16))
	d.EndStream()
	if !d.Occupied() {
		t.Fatal("entry should be present")
	}
	// A later flush (new stream) must drop name-scheme entries: a
	// rollback can change source values without an observable rename.
	d.BeginStream(2)
	d.EndStream()
	if d.Occupied() {
		t.Error("name-scheme entries must not survive a flush")
	}
}

func TestDIRNameRollbackUnsafeSourceNotInserted(t *testing.T) {
	k := newFakeKernel()
	d := dirEngine(nil, k, DIRName)
	si := dirInstr(0x1000, 10, 11, 16)
	si.SrcSurvives = [2]bool{true, false} // source 1 dies with the rollback
	d.BeginStream(1)
	d.Capture(si)
	d.EndStream()
	if d.Occupied() {
		t.Error("entry with rollback-dying source must not be inserted")
	}
}

func TestDIRValueSurvivesFlush(t *testing.T) {
	k := newFakeKernel()
	d := dirEngine(nil, k, DIRValue)
	k.values[10], k.values[11] = 7, 9
	d.BeginStream(1)
	d.Capture(dirInstr(0x1000, 10, 11, 16))
	d.EndStream()
	d.BeginStream(2) // another flush
	d.EndStream()
	if !d.Occupied() {
		t.Error("value-scheme entries are rollback-safe and should survive")
	}
}

func TestDIRLoadPolicies(t *testing.T) {
	ld := SquashedInstr{
		PC:          0x1000,
		Instr:       isa.Instruction{Op: isa.LD, Rd: isa.A0, Rs1: isa.A1},
		Executed:    true,
		SrcPregs:    [2]rename.PhysReg{10, 0},
		Result:      42,
		MemAddr:     0x8000,
		SrcSurvives: [2]bool{true, true},
	}
	req := Request{PC: 0x1000, Instr: ld.Instr, SrcPregs: [2]rename.PhysReg{20, 0}}

	k := newFakeKernel()
	cfg := DefaultDIRConfig()
	cfg.LoadPolicy = LoadBloom
	d := NewDIR(cfg, k, nil)
	d.BeginStream(1)
	d.Capture(ld)
	d.EndStream()
	d.NoteStore(0x8000)
	if _, ok := d.TryReuse(req); ok {
		t.Error("Bloom-hit load must not reuse")
	}

	k = newFakeKernel()
	cfg.LoadPolicy = LoadVerify
	d = NewDIR(cfg, k, nil)
	d.BeginStream(1)
	d.Capture(ld)
	d.EndStream()
	g, ok := d.TryReuse(req)
	if !ok || !g.IsLoad || g.MemAddr != 0x8000 || g.Value != 42 {
		t.Fatalf("verify-policy load grant = %+v, %v", g, ok)
	}
}

func TestDIRStoresAndControlNotInserted(t *testing.T) {
	k := newFakeKernel()
	d := dirEngine(nil, k, DIRValue)
	d.BeginStream(1)
	d.Capture(SquashedInstr{PC: 0x1000, Instr: isa.Instruction{Op: isa.ST, Rs1: 1, Rs2: 2}, Executed: true})
	d.Capture(SquashedInstr{PC: 0x1004, Instr: isa.Instruction{Op: isa.BEQ}, Executed: true})
	d.EndStream()
	if d.Occupied() {
		t.Error("stores and control flow must not enter the reuse buffer")
	}
}

func TestDIRInvalidateAllAndReclaim(t *testing.T) {
	k := newFakeKernel()
	d := dirEngine(nil, k, DIRValue)
	d.BeginStream(1)
	d.Capture(dirInstr(0x1000, 10, 11, 16))
	d.EndStream()
	if d.Reclaim() {
		t.Error("DIR holds nothing to reclaim")
	}
	d.InvalidateAll()
	if d.Occupied() {
		t.Error("InvalidateAll must clear the buffer")
	}
}

func TestDIRBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid geometry accepted")
		}
	}()
	NewDIR(DIRConfig{Sets: 5, Ways: 1}, newFakeKernel(), nil)
}
