package reuse

import (
	"testing"

	"mssr/internal/isa"
	"mssr/internal/rename"
	"mssr/internal/stats"
)

func riEngine(st *stats.Stats, k Kernel, sets, ways int) *RegisterIntegration {
	cfg := DefaultRIConfig()
	cfg.Sets, cfg.Ways = sets, ways
	return NewRegisterIntegration(cfg, k, st)
}

// riInstr builds an executed squashed ADD reading src pregs s1, s2 and
// writing preg d.
func riInstr(pc uint64, d, s1, s2 rename.PhysReg) SquashedInstr {
	return SquashedInstr{
		PC:       pc,
		Instr:    isa.Instruction{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2},
		Executed: true,
		DestPreg: d,
		SrcPregs: [2]rename.PhysReg{s1, s2},
	}
}

func TestRIBasicIntegration(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	r := riEngine(st, k, 64, 4)
	r.BeginStream(1)
	r.Capture(riInstr(0x1000, 100, 10, 11))
	r.EndStream()
	if k.holds[100] != 1 {
		t.Fatal("captured entry must hold its destination register")
	}
	g, ok := r.TryReuse(Request{
		PC:       0x1000,
		Instr:    isa.Instruction{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2},
		SrcPregs: [2]rename.PhysReg{10, 11},
	})
	if !ok || g.DestPreg != 100 {
		t.Fatalf("integration failed: %+v, %v", g, ok)
	}
	if g.DestGen != rename.NullRGID {
		t.Error("RI must not forward a generation tag")
	}
	if st.RIHits != 1 || st.ReuseHits != 1 {
		t.Errorf("hits = %d/%d", st.RIHits, st.ReuseHits)
	}
	// Consumed: a second integration of the same entry must fail.
	if _, ok := r.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{10, 11}}); ok {
		t.Error("entry must be consumed by integration")
	}
}

func g0ADD() isa.Instruction {
	return isa.Instruction{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2}
}

func TestRISourceMismatchNoIntegration(t *testing.T) {
	k := newFakeKernel()
	r := riEngine(nil, k, 64, 4)
	r.BeginStream(1)
	r.Capture(riInstr(0x1000, 100, 10, 11))
	r.EndStream()
	if _, ok := r.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{10, 12}}); ok {
		t.Error("different source preg must not integrate")
	}
	if _, ok := r.TryReuse(Request{PC: 0x1004, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{10, 11}}); ok {
		t.Error("different PC must not integrate")
	}
}

func TestRIConflictReplacement(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	r := riEngine(st, k, 4, 1) // 4 sets, direct mapped
	r.BeginStream(1)
	// Two PCs mapping to the same set (stride = sets*4 bytes).
	r.Capture(riInstr(0x1000, 100, 10, 11))
	r.Capture(riInstr(0x1000+4*4, 101, 12, 13))
	r.EndStream()
	set := int((0x1000 >> 2) & 3)
	if st.RIReplacements[set] != 1 {
		t.Errorf("replacements[%d] = %d, want 1", set, st.RIReplacements[set])
	}
	if k.holds[100] != 0 {
		t.Error("victim must release its register")
	}
	if k.holds[101] != 1 {
		t.Error("winner must keep its register")
	}
	// Only the newer entry integrates.
	if _, ok := r.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{10, 11}}); ok {
		t.Error("evicted entry must not integrate")
	}
	if _, ok := r.TryReuse(Request{PC: 0x1010, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{12, 13}}); !ok {
		t.Error("surviving entry must integrate")
	}
}

func TestRIHigherAssociativityAvoidsConflict(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	r := riEngine(st, k, 4, 2)
	r.BeginStream(1)
	r.Capture(riInstr(0x1000, 100, 10, 11))
	r.Capture(riInstr(0x1010, 101, 12, 13))
	r.EndStream()
	for s := range st.RIReplacements {
		if st.RIReplacements[s] != 0 {
			t.Fatalf("2-way table should absorb both entries, replacements=%v", st.RIReplacements)
		}
	}
	if _, ok := r.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{10, 11}}); !ok {
		t.Error("first entry should integrate")
	}
}

func TestRITransitiveInvalidation(t *testing.T) {
	k := newFakeKernel()
	st := &stats.Stats{}
	r := riEngine(st, k, 64, 4)
	r.BeginStream(1)
	// Chain: A(dest 100) <- B(src 100, dest 101) <- C(src 101, dest 102).
	r.Capture(riInstr(0x1000, 100, 10, 11))
	r.Capture(riInstr(0x1004, 101, 100, 11))
	r.Capture(riInstr(0x1008, 102, 101, 11))
	r.EndStream()
	// Freeing preg 100 (e.g. remapped elsewhere) must evict B, and then C.
	r.OnPregFreed(100)
	if st.RIInvalidates != 2 {
		t.Errorf("RIInvalidates = %d, want 2 (chain)", st.RIInvalidates)
	}
	if k.holds[101] != 0 || k.holds[102] != 0 {
		t.Error("chained entries must release their registers")
	}
	// Only A survives: wait, A's dest is 100 which was held... A holds 100
	// itself, so freeing it externally cannot happen while tabled; here we
	// simulate the notification anyway, and A must survive because its
	// sources (10, 11) are unaffected.
	if _, ok := r.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{10, 11}}); !ok {
		t.Error("entry A should survive")
	}
}

func TestRILiveDestNotGranted(t *testing.T) {
	k := newFakeKernel()
	r := riEngine(nil, k, 64, 4)
	r.BeginStream(1)
	r.Capture(riInstr(0x1000, 100, 10, 11))
	r.EndStream()
	k.live[100] = true
	if _, ok := r.TryReuse(Request{PC: 0x1000, Instr: g0ADD(), SrcPregs: [2]rename.PhysReg{10, 11}}); ok {
		t.Error("live destination must not integrate")
	}
	if k.holds[100] != 0 {
		t.Error("rejected entry must release")
	}
}

func TestRISkipsNonReusable(t *testing.T) {
	k := newFakeKernel()
	r := riEngine(nil, k, 64, 4)
	r.BeginStream(1)
	r.Capture(SquashedInstr{PC: 0x1000, Instr: isa.Instruction{Op: isa.ST, Rs1: 1, Rs2: 2}, Executed: true, DestPreg: rename.NoPreg})
	r.Capture(SquashedInstr{PC: 0x1004, Instr: isa.Instruction{Op: isa.BEQ}, Executed: true, DestPreg: rename.NoPreg})
	nonExec := riInstr(0x1008, 103, 10, 11)
	nonExec.Executed = false
	r.Capture(nonExec)
	r.EndStream()
	if r.Occupied() {
		t.Error("no entry should have been inserted")
	}
}

func TestRILoadPolicies(t *testing.T) {
	ld := SquashedInstr{
		PC:       0x1000,
		Instr:    isa.Instruction{Op: isa.LD, Rd: isa.A0, Rs1: isa.A1},
		Executed: true, DestPreg: 100,
		SrcPregs: [2]rename.PhysReg{10, 0},
		MemAddr:  0x8000,
	}
	req := Request{PC: 0x1000, Instr: ld.Instr, SrcPregs: [2]rename.PhysReg{10, 0}}

	k := newFakeKernel()
	cfg := DefaultRIConfig()
	cfg.LoadPolicy = LoadBloom
	r := NewRegisterIntegration(cfg, k, nil)
	r.BeginStream(1)
	r.Capture(ld)
	r.EndStream()
	r.NoteStore(0x8000)
	if _, ok := r.TryReuse(req); ok {
		t.Error("Bloom-hit load must not integrate")
	}

	k = newFakeKernel()
	cfg.LoadPolicy = LoadNoReuse
	r = NewRegisterIntegration(cfg, k, nil)
	r.BeginStream(1)
	r.Capture(ld)
	r.EndStream()
	if _, ok := r.TryReuse(req); ok {
		t.Error("NoLoadReuse must reject loads")
	}
}

func TestRIReclaimAndInvalidateAll(t *testing.T) {
	k := newFakeKernel()
	r := riEngine(nil, k, 64, 4)
	r.BeginStream(1)
	r.Capture(riInstr(0x1000, 100, 10, 11))
	r.Capture(riInstr(0x2000, 101, 12, 13))
	r.EndStream()
	if !r.Reclaim() {
		t.Fatal("reclaim should drop one entry")
	}
	if k.totalHolds() != 1 {
		t.Errorf("holds after reclaim = %d", k.totalHolds())
	}
	r.InvalidateAll()
	if r.Occupied() || k.totalHolds() != 0 {
		t.Error("InvalidateAll must clear the table")
	}
	if r.Reclaim() {
		t.Error("reclaim on empty table should report false")
	}
}

func TestRIBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets accepted")
		}
	}()
	NewRegisterIntegration(RIConfig{Sets: 3, Ways: 1}, newFakeKernel(), nil)
}

func TestBloomFilter(t *testing.T) {
	b := newBloomFilter(10)
	if b.MayContain(0x1000) {
		t.Error("empty filter must not contain anything")
	}
	b.Insert(0x1000)
	if !b.MayContain(0x1000) {
		t.Error("no false negatives allowed")
	}
	// Same word, different byte offset: word-granular.
	if !b.MayContain(0x1007) {
		t.Error("filter should be word-granular")
	}
	b.Reset()
	if b.MayContain(0x1000) {
		t.Error("reset must clear")
	}
	// False positive rate sanity: insert 64, probe 1000 others.
	for i := uint64(0); i < 64; i++ {
		b.Insert(0x4000 + i*8)
	}
	fp := 0
	for i := uint64(0); i < 1000; i++ {
		if b.MayContain(0x100000 + i*8) {
			fp++
		}
	}
	if fp > 100 {
		t.Errorf("false positive rate too high: %d/1000", fp)
	}
}
