package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func blob(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestMemoryRoundTrip(t *testing.T) {
	s := NewMemory(-1)
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	want := blob(1, 100)
	s.Put("k1", want)
	got, ok := s.Get("k1")
	if !ok || string(got) != string(want) {
		t.Fatalf("Get after Put: ok=%v blob mismatch=%v", ok, string(got) != string(want))
	}
	if !s.Contains("k1") || s.Contains("k2") {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 1 || s.Size() != 100 {
		t.Fatalf("Len=%d Size=%d, want 1/100", s.Len(), s.Size())
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.BytesRead != 100 || c.BytesWritten != 100 {
		t.Fatalf("counters %+v", c)
	}
	// Overwrite with a different size adjusts accounting.
	s.Put("k1", blob(2, 40))
	if s.Len() != 1 || s.Size() != 40 {
		t.Fatalf("after overwrite Len=%d Size=%d, want 1/40", s.Len(), s.Size())
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	s := NewMemory(250) // room for two 100-byte blobs, not three
	s.Put("a", blob(1, 100))
	s.Put("b", blob(2, 100))
	s.Get("a") // make "b" the LRU
	s.Put("c", blob(3, 100))
	if s.Contains("b") {
		t.Fatal("LRU entry b survived eviction")
	}
	if !s.Contains("a") || !s.Contains("c") {
		t.Fatal("recently used entries evicted")
	}
	if got := s.Counters().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	// A blob larger than the bound is still kept (never evict the entry
	// just inserted), everything else goes.
	s.Put("huge", blob(4, 400))
	if !s.Contains("huge") {
		t.Fatal("oversized insert was evicted immediately")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after oversized insert, want 1", s.Len())
	}
}

func TestDiskPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("mcf@s2+ff4505+dw287#%d", i)
		s.Put(keys[i], blob(byte(i), 64+i))
	}
	s.Close()
	if got := s.DiskLen(); got != 20 {
		t.Fatalf("DiskLen after Close = %d, want 20", got)
	}

	// A fresh store over the same directory serves every blob (warm
	// restart), promoting disk hits into memory.
	s2, err := Open(dir, -1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.DiskLen(); got != 20 {
		t.Fatalf("reloaded DiskLen = %d, want 20", got)
	}
	if s2.Len() != 0 {
		t.Fatalf("reloaded memory tier holds %d entries, want 0", s2.Len())
	}
	for i, k := range keys {
		got, ok := s2.Get(k)
		if !ok || string(got) != string(blob(byte(i), 64+i)) {
			t.Fatalf("reloaded Get(%q): ok=%v", k, ok)
		}
	}
	if s2.Len() != 20 {
		t.Fatalf("disk hits not promoted: memory Len = %d", s2.Len())
	}
	c := s2.Counters()
	if c.Hits != 20 || c.Misses != 0 || c.Corrupt != 0 {
		t.Fatalf("reloaded counters %+v", c)
	}
}

func TestDiskCorruptionDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("good", blob(1, 64))
	s.Put("bad", blob(2, 64))
	s.Close()

	// Flip a payload byte in "bad"'s file.
	var badPath string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, fileExt) {
			if _, blob, e := readEnvelope(path); e == nil && blob[0] == 2 {
				badPath = path
			}
		}
		return nil
	})
	if badPath == "" {
		t.Fatal("could not locate bad's checkpoint file")
	}
	b, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(badPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, -1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Counters().Corrupt; got != 1 {
		t.Fatalf("Corrupt = %d after reload over tampered file, want 1", got)
	}
	if s2.Contains("bad") {
		t.Fatal("corrupt entry still indexed")
	}
	if _, err := os.Stat(badPath); !os.IsNotExist(err) {
		t.Fatal("corrupt file not removed")
	}
	if _, ok := s2.Get("good"); !ok {
		t.Fatal("intact entry lost")
	}
}

func TestDiskBoundEvicts(t *testing.T) {
	dir := t.TempDir()
	// Envelope overhead is ~90 bytes on top of each 100-byte blob; a
	// 450-byte bound keeps about two entries.
	s, err := Open(dir, -1, 450, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), blob(byte(i), 100))
	}
	s.Flush()
	if got := s.DiskSize(); got > 450 {
		t.Fatalf("DiskSize = %d exceeds 450-byte bound", got)
	}
	if s.DiskLen() >= 5 {
		t.Fatalf("DiskLen = %d, expected evictions", s.DiskLen())
	}
	if s.Counters().Evictions == 0 {
		t.Fatal("no evictions counted")
	}
	// Evicted files are really gone.
	n := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, fileExt) {
			n++
		}
		return nil
	})
	if n != s.DiskLen() {
		t.Fatalf("%d files on disk, index holds %d", n, s.DiskLen())
	}
}

func TestFlushBarrier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), blob(byte(i), 32))
	}
	s.Flush()
	if got := s.DiskLen(); got != 50 {
		t.Fatalf("DiskLen = %d after Flush, want 50", got)
	}
}

func TestCloseIdempotentAndGetAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", blob(9, 16))
	s.Close()
	s.Close()
	s.Flush() // no-op, must not hang
	if _, ok := s.Get("k"); !ok {
		t.Fatal("Get after Close lost the entry")
	}
	s.Put("late", blob(1, 16)) // memory insert still works, persist dropped
	if _, ok := s.Get("late"); !ok {
		t.Fatal("post-Close Put not visible in memory tier")
	}
	if s.Counters().Dropped == 0 {
		t.Fatal("post-Close Put persist not counted as dropped")
	}
}

func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i%20)
				s.Put(k, blob(byte(g), 64))
				if got, ok := s.Get(k); ok && got[0] != byte(g) {
					t.Errorf("cross-goroutine blob under %q", k)
				}
				s.Contains(k)
			}
		}(g)
	}
	wg.Wait()
	s.Flush()
}

// TestGetZeroCopy pins the warm-restore property: a memory-tier Get
// must not copy the blob.
func TestGetZeroCopy(t *testing.T) {
	s := NewMemory(-1)
	s.Put("k", blob(1, 1<<16))
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := s.Get("k"); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Errorf("memory-tier Get allocates %.1f times", allocs)
	}
}
