// Package ckpt is the content-addressed checkpoint store behind
// checkpoint-accelerated multi-fidelity sampling: a bounded in-memory
// blob cache, optionally backed by a disk tier, mapping checkpoint keys
// (a spec's sim.Spec.CheckpointKey plus a sample-period suffix) to
// serialized architectural states (emu.ArchState.AppendBinary) and phase
// profiles. Any sweep over the same program and fidelity geometry —
// every config of a batch, every re-run, every fleet worker the spec
// rendezvous-homes to — restores a boundary in O(state) instead of
// re-emulating O(instructions) of functional prefix.
//
// The memory tier is an LRU bounded by total blob bytes; Get returns the
// stored slice without copying (blobs are immutable by contract — the
// emu encoding is consumed read-only). The disk tier mirrors
// internal/store's proven shape: each blob lives in its own file under a
// two-level fanout of the key's SHA-256, written temp-file-then-rename
// so readers never observe a partial write, framed in a self-describing
// envelope (magic, version, key, FNV-1a payload checksum) so Open can
// rebuild the index without a manifest and any corruption is counted,
// logged and deleted rather than restored. Writes go through a bounded
// write-behind queue drained by a single writer goroutine: capturing a
// checkpoint never blocks a simulation, and a full queue drops the write
// (counted) instead of stalling.
package ckpt

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMemBytes bounds the in-memory tier when the caller passes 0:
// enough for the checkpoint sets of several standard-scale sweeps.
const DefaultMemBytes = 256 << 20

const (
	envelopeVersion = 1
	fileExt         = ".ckpt"
	tmpPattern      = "ckpt-*.tmp"
)

var envelopeMagic = [4]byte{'m', 's', 'r', 'K'}

// Counters is a snapshot of the store's activity counters.
type Counters struct {
	// Hits and Misses count Get outcomes across both tiers (a disk hit
	// promoted to memory is one hit).
	Hits, Misses uint64
	// BytesRead and BytesWritten total the blob bytes served by Get and
	// accepted by Put.
	BytesRead, BytesWritten uint64
	// Evictions counts blobs dropped by either tier's size bound.
	Evictions uint64
	// Corrupt counts disk entries dropped because their envelope failed
	// verification (at Open or at read time).
	Corrupt uint64
	// Dropped counts PutAsync writes discarded because the write-behind
	// queue was full.
	Dropped uint64
	// WriteErrors counts disk write failures (disk full, permissions).
	WriteErrors uint64
}

type entry struct {
	key  string
	blob []byte // nil for disk-index entries not resident in memory
	size int64
}

// Store is a bounded checkpoint blob store, safe for concurrent use.
type Store struct {
	dir      string // "" = memory-only
	memBytes int64
	dskBytes int64
	log      *slog.Logger

	mu      sync.Mutex
	order   *list.List // memory tier LRU; front = most recent
	entries map[string]*list.Element
	memSize int64
	// disk tier index (nil when memory-only)
	dorder   *list.List
	dentries map[string]*list.Element
	dskSize  int64

	hits, misses, evictions, corrupt atomic.Uint64
	bytesRead, bytesWritten          atomic.Uint64
	dropped, writeErrors             atomic.Uint64

	qmu       sync.Mutex
	qclosed   bool
	wq        chan writeReq
	writerWG  sync.WaitGroup
	closeOnce sync.Once
}

type writeReq struct {
	key   string
	blob  []byte
	flush chan struct{} // non-nil: a flush barrier, not a write
}

// NewMemory returns a memory-only store bounded to maxBytes of blobs
// (0 = DefaultMemBytes, < 0 = unbounded).
func NewMemory(maxBytes int64) *Store {
	s, _ := open("", maxBytes, 0, nil)
	return s
}

// Open loads (or creates) a disk-backed store rooted at dir, holding up
// to memBytes of blobs in memory (0 = DefaultMemBytes, < 0 = unbounded)
// and diskBytes on disk (<= 0 = unbounded). The disk index is rebuilt by
// walking the fanout tree: entries failing verification are counted as
// corrupt and removed, stale temp files are cleaned up, and the disk LRU
// order is seeded from file mtimes.
func Open(dir string, memBytes, diskBytes int64, logger *slog.Logger) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: Open needs a directory (use NewMemory)")
	}
	return open(dir, memBytes, diskBytes, logger)
}

func open(dir string, memBytes, diskBytes int64, logger *slog.Logger) (*Store, error) {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	if memBytes == 0 {
		memBytes = DefaultMemBytes
	}
	s := &Store{
		dir:      dir,
		memBytes: memBytes,
		dskBytes: diskBytes,
		log:      logger,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		s.dorder = list.New()
		s.dentries = make(map[string]*list.Element)
		if err := s.load(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.enforceDiskBoundLocked(nil)
		s.mu.Unlock()
		s.wq = make(chan writeReq, 256)
		s.writerWG.Add(1)
		go s.writer()
	}
	return s, nil
}

// load walks the fanout tree and rebuilds the disk index.
func (s *Store) load() error {
	type found struct {
		e     entry
		mtime int64
	}
	var all []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			_ = os.Remove(path) // interrupted write; nothing references it
			return nil
		}
		if !strings.HasSuffix(path, fileExt) {
			return nil
		}
		key, blob, verr := readEnvelope(path)
		if verr != nil || s.path(key) != path {
			s.corrupt.Add(1)
			s.log.Warn("ckpt: dropping corrupt checkpoint", "path", path, "key", key, "error", fmt.Sprint(verr))
			_ = os.Remove(path)
			return nil
		}
		info, ierr := d.Info()
		var mtime int64
		if ierr == nil {
			mtime = info.ModTime().UnixNano()
		}
		all = append(all, found{entry{key: key, size: int64(len(blob))}, mtime})
		return nil
	})
	if err != nil {
		return fmt.Errorf("ckpt: indexing %s: %w", s.dir, err)
	}
	// Oldest first, so the most recently written checkpoints end up at
	// the front of the disk LRU order.
	sort.Slice(all, func(i, j int) bool { return all[i].mtime < all[j].mtime })
	for i := range all {
		e := all[i].e
		s.dentries[e.key] = s.dorder.PushFront(&entry{key: e.key, size: e.size})
		s.dskSize += e.size
	}
	return nil
}

// path maps a checkpoint key onto its fanout file path.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:4], h+fileExt)
}

// encodeEnvelope frames a blob for disk: magic, version, key, FNV-1a
// payload checksum, payload length, payload.
func encodeEnvelope(key string, blob []byte) []byte {
	h := fnv.New64a()
	h.Write(blob)
	b := make([]byte, 0, 4+4+4+len(key)+8+8+len(blob))
	b = append(b, envelopeMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, envelopeVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint64(b, h.Sum64())
	b = binary.LittleEndian.AppendUint64(b, uint64(len(blob)))
	return append(b, blob...)
}

// readEnvelope reads and verifies one checkpoint file, returning its key
// and payload.
func readEnvelope(path string) (string, []byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(b) < 4+4+4 {
		return "", nil, fmt.Errorf("truncated envelope (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != envelopeMagic {
		return "", nil, fmt.Errorf("bad envelope magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != envelopeVersion {
		return "", nil, fmt.Errorf("unknown envelope version %d", v)
	}
	klen := int(binary.LittleEndian.Uint32(b[8:]))
	if len(b) < 12+klen+16 {
		return "", nil, fmt.Errorf("truncated envelope key")
	}
	key := string(b[12 : 12+klen])
	sum := binary.LittleEndian.Uint64(b[12+klen:])
	plen := binary.LittleEndian.Uint64(b[12+klen+8:])
	blob := b[12+klen+16:]
	if uint64(len(blob)) != plen {
		return key, nil, fmt.Errorf("payload length %d, envelope declares %d", len(blob), plen)
	}
	h := fnv.New64a()
	h.Write(blob)
	if h.Sum64() != sum {
		return key, nil, fmt.Errorf("payload checksum mismatch")
	}
	return key, blob, nil
}

// Get returns the blob stored under key, or (nil, false). The returned
// slice is the store's copy and must be treated as read-only. A disk hit
// is promoted into the memory tier; a corrupt disk entry is counted,
// logged and removed (a miss).
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		blob := el.Value.(*entry).blob
		s.mu.Unlock()
		s.hits.Add(1)
		s.bytesRead.Add(uint64(len(blob)))
		return blob, true
	}
	if s.dentries == nil {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	del, onDisk := s.dentries[key]
	s.mu.Unlock()
	if !onDisk {
		s.misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	gotKey, blob, err := readEnvelope(path)
	if err == nil && gotKey != key {
		err = fmt.Errorf("envelope key %q does not match requested key", gotKey)
	}
	if err != nil {
		s.mu.Lock()
		if cur, ok := s.dentries[key]; ok && cur == del {
			s.removeDiskLocked(cur)
		}
		s.mu.Unlock()
		_ = os.Remove(path)
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.log.Warn("ckpt: corrupt checkpoint read", "key", key, "error", err.Error())
		return nil, false
	}
	s.mu.Lock()
	if cur, ok := s.dentries[key]; ok {
		s.dorder.MoveToFront(cur)
	}
	s.insertMemLocked(key, blob)
	s.mu.Unlock()
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(blob)))
	// Persist the recency so a restart's mtime-seeded LRU order stays
	// close to the live one. Best-effort: a failure only skews eviction.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return blob, true
}

// Contains reports whether key is present in either tier, without
// touching recency or counters.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return true
	}
	if s.dentries != nil {
		if _, ok := s.dentries[key]; ok {
			return true
		}
	}
	return false
}

// Put stores blob under key in the memory tier and, when a disk tier
// exists, queues a write-behind persist. The store keeps the slice:
// the caller must not mutate it afterwards (checkpoint captures hand
// over a freshly encoded buffer).
func (s *Store) Put(key string, blob []byte) {
	s.mu.Lock()
	s.insertMemLocked(key, blob)
	alreadyOnDisk := false
	if s.dentries != nil {
		_, alreadyOnDisk = s.dentries[key]
	}
	s.mu.Unlock()
	s.bytesWritten.Add(uint64(len(blob)))
	if s.dir == "" || alreadyOnDisk {
		// Checkpoint contents are deterministic per key; rewriting an
		// entry already on disk is pure churn.
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.qclosed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.wq <- writeReq{key: key, blob: blob}:
	default:
		s.dropped.Add(1)
	}
}

// insertMemLocked installs (or refreshes) a memory-tier entry and
// enforces the memory bound.
func (s *Store) insertMemLocked(key string, blob []byte) {
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*entry)
		s.memSize += int64(len(blob)) - e.size
		e.blob, e.size = blob, int64(len(blob))
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&entry{key: key, blob: blob, size: int64(len(blob))})
		s.memSize += int64(len(blob))
	}
	if s.memBytes < 0 {
		return
	}
	keep := s.entries[key]
	for s.memSize > s.memBytes && s.order.Len() > 0 {
		oldest := s.order.Back()
		if oldest == keep {
			break
		}
		e := oldest.Value.(*entry)
		s.order.Remove(oldest)
		delete(s.entries, e.key)
		s.memSize -= e.size
		s.evictions.Add(1)
	}
}

// writeDisk performs one durable write: envelope, temp file, rename.
func (s *Store) writeDisk(key string, blob []byte) {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.writeErrors.Add(1)
		s.log.Warn("ckpt: write-behind failed", "key", key, "error", err.Error())
		return
	}
	b := encodeEnvelope(key, blob)
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPattern)
	if err == nil {
		if _, werr := tmp.Write(b); werr != nil {
			err = werr
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
		if err != nil {
			_ = os.Remove(tmp.Name())
		}
	}
	if err != nil {
		s.writeErrors.Add(1)
		s.log.Warn("ckpt: write-behind failed", "key", key, "error", err.Error())
		return
	}
	s.mu.Lock()
	if el, ok := s.dentries[key]; ok {
		e := el.Value.(*entry)
		s.dskSize += int64(len(b)) - e.size
		e.size = int64(len(b))
		s.dorder.MoveToFront(el)
	} else {
		s.dentries[key] = s.dorder.PushFront(&entry{key: key, size: int64(len(b))})
		s.dskSize += int64(len(b))
	}
	s.enforceDiskBoundLocked(s.dentries[key])
	s.mu.Unlock()
}

// enforceDiskBoundLocked evicts least-recently-used disk entries until
// the size bound holds, never evicting keep.
func (s *Store) enforceDiskBoundLocked(keep *list.Element) {
	if s.dskBytes <= 0 || s.dorder == nil {
		return
	}
	for s.dskSize > s.dskBytes && s.dorder.Len() > 0 {
		oldest := s.dorder.Back()
		if oldest == keep {
			break
		}
		e := oldest.Value.(*entry)
		s.removeDiskLocked(oldest)
		_ = os.Remove(s.path(e.key))
		s.evictions.Add(1)
	}
}

// removeDiskLocked drops one entry from the disk index (not the file).
func (s *Store) removeDiskLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.dorder.Remove(el)
	delete(s.dentries, e.key)
	s.dskSize -= e.size
}

// writer is the single write-behind goroutine.
func (s *Store) writer() {
	defer s.writerWG.Done()
	for req := range s.wq {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		s.writeDisk(req.key, req.blob)
	}
}

// Flush blocks until every Put accepted before the call has been
// written to disk. A no-op on a memory-only or closed store.
func (s *Store) Flush() {
	if s.dir == "" {
		return
	}
	done := make(chan struct{})
	s.qmu.Lock()
	if s.qclosed {
		s.qmu.Unlock()
		return
	}
	s.wq <- writeReq{flush: done}
	s.qmu.Unlock()
	<-done
}

// Close flushes the write-behind queue and stops the writer. Further
// Put persists and Flushes are no-ops; Get keeps serving both tiers.
func (s *Store) Close() {
	if s.dir == "" {
		return
	}
	s.closeOnce.Do(func() {
		s.Flush()
		s.qmu.Lock()
		s.qclosed = true
		close(s.wq)
		s.qmu.Unlock()
		s.writerWG.Wait()
	})
}

// Len returns the number of memory-resident checkpoints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Size returns the total bytes of memory-resident checkpoints.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memSize
}

// DiskLen returns the number of checkpoints on disk (0 when
// memory-only).
func (s *Store) DiskLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dorder == nil {
		return 0
	}
	return s.dorder.Len()
}

// DiskSize returns the total bytes of checkpoint files on disk.
func (s *Store) DiskSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dskSize
}

// Dir returns the disk tier's root directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// Counters snapshots the activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Evictions:    s.evictions.Load(),
		Corrupt:      s.corrupt.Load(),
		Dropped:      s.dropped.Load(),
		WriteErrors:  s.writeErrors.Load(),
	}
}
