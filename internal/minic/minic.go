// Package minic is a small structured-programming layer over the
// assembler: variables, expression trees, arrays, if/else and while
// compile to the repository's ISA. It exists so workloads and tests can
// be written at statement level instead of hand-allocating registers —
// the authoring surface a downstream user of the simulator reaches for
// first.
//
//	p := minic.NewProgram("sum")
//	i := p.Var("i")
//	sum := p.Var("sum")
//	arr := p.Array(0x8000, []uint64{3, 1, 4, 1, 5})
//	p.Assign(i, minic.Int(0))
//	p.While(minic.Lt(i, minic.Int(5)), func() {
//	    p.Assign(sum, minic.Add(sum, arr.At(i)))
//	    p.Assign(i, minic.Add(i, minic.Int(1)))
//	})
//	p.Return(sum)            // stores the result at ResultAddr and halts
//	prog, err := p.Build()
//
// The compiler is deliberately simple: variables live in callee-saved
// registers (no spilling — Build fails beyond the register budget), and
// expression temporaries use a bounded stack of caller-saved registers.
package minic

import (
	"fmt"

	"mssr/internal/asm"
	"mssr/internal/isa"
)

// ResultAddr is where Return stores its value, so callers (and tests) can
// read the program's result from data memory.
const ResultAddr uint64 = 0x000e_0000

// Expr is an expression tree node.
type Expr interface{ isExpr() }

// intLit is a 64-bit constant.
type intLit struct{ v int64 }

// Var is a named program variable bound to a register.
type Var struct {
	name string
	reg  isa.Reg
}

type binOp struct {
	op   isa.Op
	l, r Expr
}

// cmpOp is a comparison producing 0/1; If and While fold it into a branch.
type cmpOp struct {
	kind cmpKind
	l, r Expr
}

type cmpKind int

const (
	cmpEq cmpKind = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
	cmpLtU
	cmpGeU
)

type loadOp struct{ addr Expr }

func (intLit) isExpr() {}
func (*Var) isExpr()   {}
func (binOp) isExpr()  {}
func (cmpOp) isExpr()  {}
func (loadOp) isExpr() {}

// Int builds a constant expression.
func Int(v int64) Expr { return intLit{v} }

// Arithmetic and logic constructors.

func bin(op isa.Op, l, r Expr) Expr { return binOp{op, l, r} }

// Add returns l + r.
func Add(l, r Expr) Expr { return bin(isa.ADD, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return bin(isa.SUB, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return bin(isa.MUL, l, r) }

// Div returns l / r (signed, RISC-V semantics on zero/overflow).
func Div(l, r Expr) Expr { return bin(isa.DIV, l, r) }

// Rem returns l % r (signed).
func Rem(l, r Expr) Expr { return bin(isa.REM, l, r) }

// And returns l & r.
func And(l, r Expr) Expr { return bin(isa.AND, l, r) }

// Or returns l | r.
func Or(l, r Expr) Expr { return bin(isa.OR, l, r) }

// Xor returns l ^ r.
func Xor(l, r Expr) Expr { return bin(isa.XOR, l, r) }

// Shl returns l << r.
func Shl(l, r Expr) Expr { return bin(isa.SLL, l, r) }

// Shr returns l >> r (logical).
func Shr(l, r Expr) Expr { return bin(isa.SRL, l, r) }

// Comparisons (value 0/1; folded into branches by If/While).

// Eq returns l == r.
func Eq(l, r Expr) Expr { return cmpOp{cmpEq, l, r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return cmpOp{cmpNe, l, r} }

// Lt returns l < r (signed).
func Lt(l, r Expr) Expr { return cmpOp{cmpLt, l, r} }

// Le returns l <= r (signed).
func Le(l, r Expr) Expr { return cmpOp{cmpLe, l, r} }

// Gt returns l > r (signed).
func Gt(l, r Expr) Expr { return cmpOp{cmpGt, l, r} }

// Ge returns l >= r (signed).
func Ge(l, r Expr) Expr { return cmpOp{cmpGe, l, r} }

// LtU returns l < r (unsigned).
func LtU(l, r Expr) Expr { return cmpOp{cmpLtU, l, r} }

// GeU returns l >= r (unsigned).
func GeU(l, r Expr) Expr { return cmpOp{cmpGeU, l, r} }

// Deref loads the 64-bit word at the address addr evaluates to.
func Deref(addr Expr) Expr { return loadOp{addr} }

// Array is a word array in data memory.
type Array struct {
	Base uint64
}

// At returns the expression loading a[idx].
func (a Array) At(idx Expr) Expr {
	return Deref(Add(Int(int64(a.Base)), Shl(idx, Int(3))))
}

// Addr returns the address expression of a[idx].
func (a Array) Addr(idx Expr) Expr {
	return Add(Int(int64(a.Base)), Shl(idx, Int(3)))
}

// varRegs are the registers available for program variables.
var varRegs = []isa.Reg{
	isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7,
	isa.S8, isa.S9, isa.S10, isa.S11, isa.A4, isa.A5, isa.A6, isa.A7,
}

// tmpRegs are the expression-temporary stack.
var tmpRegs = []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.A0, isa.A1, isa.A2, isa.A3}

// Program accumulates statements and compiles them on Build.
type Program struct {
	b       *asm.Builder
	vars    map[string]*Var
	nvars   int
	tmpSP   int
	labels  int
	dataPtr uint64
	errs    []error
}

// NewProgram starts an empty program.
func NewProgram(name string) *Program {
	return &Program{
		b:       asm.NewBuilder(name),
		vars:    map[string]*Var{},
		dataPtr: 0x0010_0000,
	}
}

func (p *Program) errf(format string, args ...interface{}) {
	p.errs = append(p.errs, fmt.Errorf(format, args...))
}

// Var declares (or returns the existing) variable name.
func (p *Program) Var(name string) *Var {
	if v, ok := p.vars[name]; ok {
		return v
	}
	if p.nvars >= len(varRegs) {
		p.errf("too many variables (max %d): %q", len(varRegs), name)
		return &Var{name: name, reg: varRegs[0]}
	}
	v := &Var{name: name, reg: varRegs[p.nvars]}
	p.nvars++
	p.vars[name] = v
	return v
}

// Array allocates and initializes a word array in data memory. Passing a
// nil slice with n elements is done via make([]uint64, n).
func (p *Program) Array(base uint64, init []uint64) Array {
	if base == 0 {
		base = p.dataPtr
		p.dataPtr += uint64(len(init)+1) * 8
	}
	if len(init) > 0 {
		p.b.Data(base, init...)
	}
	return Array{Base: base}
}

func (p *Program) label(kind string) string {
	p.labels++
	return fmt.Sprintf("%s_%d", kind, p.labels)
}

// acquireTmp pops a temporary register. On exhaustion it records an error
// (surfaced by Build) but keeps the acquire/release bookkeeping balanced.
func (p *Program) acquireTmp() isa.Reg {
	r := tmpRegs[len(tmpRegs)-1]
	if p.tmpSP >= len(tmpRegs) {
		p.errf("expression too deep (max %d temporaries)", len(tmpRegs))
	} else {
		r = tmpRegs[p.tmpSP]
	}
	p.tmpSP++
	return r
}

func (p *Program) releaseTmp() { p.tmpSP-- }

// eval compiles e into dst.
func (p *Program) eval(e Expr, dst isa.Reg) {
	switch n := e.(type) {
	case intLit:
		p.b.Li(dst, n.v)
	case *Var:
		p.b.Mv(dst, n.reg)
	case binOp:
		p.eval(n.l, dst)
		t := p.acquireTmp()
		p.eval(n.r, t)
		p.emitBin(n.op, dst, dst, t)
		p.releaseTmp()
	case cmpOp:
		p.eval(n.l, dst)
		t := p.acquireTmp()
		p.eval(n.r, t)
		p.emitCmp(n.kind, dst, dst, t)
		p.releaseTmp()
	case loadOp:
		p.eval(n.addr, dst)
		p.b.Ld(dst, 0, dst)
	default:
		p.errf("unknown expression %T", e)
	}
}

func (p *Program) emitBin(op isa.Op, rd, rs1, rs2 isa.Reg) {
	switch op {
	case isa.ADD:
		p.b.Add(rd, rs1, rs2)
	case isa.SUB:
		p.b.Sub(rd, rs1, rs2)
	case isa.MUL:
		p.b.Mul(rd, rs1, rs2)
	case isa.DIV:
		p.b.Div(rd, rs1, rs2)
	case isa.REM:
		p.b.Rem(rd, rs1, rs2)
	case isa.AND:
		p.b.And(rd, rs1, rs2)
	case isa.OR:
		p.b.Or(rd, rs1, rs2)
	case isa.XOR:
		p.b.Xor(rd, rs1, rs2)
	case isa.SLL:
		p.b.Sll(rd, rs1, rs2)
	case isa.SRL:
		p.b.Srl(rd, rs1, rs2)
	default:
		p.errf("unsupported binary op %v", op)
	}
}

// emitCmp materializes a comparison as 0/1.
func (p *Program) emitCmp(k cmpKind, rd, a, b isa.Reg) {
	switch k {
	case cmpEq:
		p.b.Xor(rd, a, b)
		p.b.Sltu(rd, isa.Zero, rd)
		p.b.Xori(rd, rd, 1)
	case cmpNe:
		p.b.Xor(rd, a, b)
		p.b.Sltu(rd, isa.Zero, rd)
	case cmpLt:
		p.b.Slt(rd, a, b)
	case cmpGe:
		p.b.Slt(rd, a, b)
		p.b.Xori(rd, rd, 1)
	case cmpGt:
		p.b.Slt(rd, b, a)
	case cmpLe:
		p.b.Slt(rd, b, a)
		p.b.Xori(rd, rd, 1)
	case cmpLtU:
		p.b.Sltu(rd, a, b)
	case cmpGeU:
		p.b.Sltu(rd, a, b)
		p.b.Xori(rd, rd, 1)
	}
}

// branchIfFalse compiles cond, jumping to target when it is false. Direct
// comparisons fold into a single branch instruction.
func (p *Program) branchIfFalse(cond Expr, target string) {
	if c, ok := cond.(cmpOp); ok {
		a := p.acquireTmp()
		p.eval(c.l, a)
		b := p.acquireTmp()
		p.eval(c.r, b)
		switch c.kind {
		case cmpEq:
			p.b.Bne(a, b, target)
		case cmpNe:
			p.b.Beq(a, b, target)
		case cmpLt:
			p.b.Bge(a, b, target)
		case cmpGe:
			p.b.Blt(a, b, target)
		case cmpGt:
			p.b.Bge(b, a, target)
		case cmpLe:
			p.b.Blt(b, a, target)
		case cmpLtU:
			p.b.Bgeu(a, b, target)
		case cmpGeU:
			p.b.Bltu(a, b, target)
		}
		p.releaseTmp()
		p.releaseTmp()
		return
	}
	t := p.acquireTmp()
	p.eval(cond, t)
	p.b.Beqz(t, target)
	p.releaseTmp()
}

// Assign evaluates e into v. The value is materialized in a temporary
// first so expressions that read v itself (e.g. v = y - v) see the old
// value throughout.
func (p *Program) Assign(v *Var, e Expr) {
	t := p.acquireTmp()
	p.eval(e, t)
	p.b.Mv(v.reg, t)
	p.releaseTmp()
}

// Store writes val to the address addr evaluates to.
func (p *Program) Store(addr, val Expr) {
	a := p.acquireTmp()
	p.eval(addr, a)
	v := p.acquireTmp()
	p.eval(val, v)
	p.b.St(v, 0, a)
	p.releaseTmp()
	p.releaseTmp()
}

// SetAt writes val to arr[idx].
func (p *Program) SetAt(arr Array, idx, val Expr) {
	p.Store(arr.Addr(idx), val)
}

// If compiles a conditional without an else arm.
func (p *Program) If(cond Expr, then func()) {
	end := p.label("endif")
	p.branchIfFalse(cond, end)
	then()
	p.b.Label(end)
}

// IfElse compiles a conditional with both arms.
func (p *Program) IfElse(cond Expr, then, els func()) {
	elseL := p.label("else")
	end := p.label("endif")
	p.branchIfFalse(cond, elseL)
	then()
	p.b.J(end)
	p.b.Label(elseL)
	els()
	p.b.Label(end)
}

// While compiles a pre-tested loop.
func (p *Program) While(cond Expr, body func()) {
	top := p.label("while")
	end := p.label("endwhile")
	p.b.Label(top)
	p.branchIfFalse(cond, end)
	body()
	p.b.J(top)
	p.b.Label(end)
}

// For compiles for v = from; v < to; v++ { body }.
func (p *Program) For(v *Var, from, to Expr, body func()) {
	p.Assign(v, from)
	p.While(Lt(v, to), func() {
		body()
		p.Assign(v, Add(v, Int(1)))
	})
}

// Return stores e at ResultAddr and halts.
func (p *Program) Return(e Expr) {
	t := p.acquireTmp()
	p.eval(e, t)
	a := p.acquireTmp()
	p.b.Li(a, int64(ResultAddr))
	p.b.St(t, 0, a)
	p.releaseTmp()
	p.releaseTmp()
	p.b.Halt()
}

// Build compiles the accumulated program.
func (p *Program) Build() (*isa.Program, error) {
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return p.b.Program()
}

// MustBuild is Build but panics on error.
func (p *Program) MustBuild() *isa.Program {
	prog, err := p.Build()
	if err != nil {
		panic(err)
	}
	return prog
}
