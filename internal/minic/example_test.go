package minic_test

import (
	"fmt"

	"mssr/internal/emu"
	"mssr/internal/minic"
)

// Write a structured kernel, compile it to the ISA and execute it.
func Example() {
	p := minic.NewProgram("dot")
	a := p.Array(0, []uint64{1, 2, 3, 4})
	b := p.Array(0, []uint64{10, 20, 30, 40})
	i := p.Var("i")
	sum := p.Var("sum")
	p.Assign(sum, minic.Int(0))
	p.For(i, minic.Int(0), minic.Int(4), func() {
		p.Assign(sum, minic.Add(sum, minic.Mul(a.At(i), b.At(i))))
	})
	p.Return(sum)

	e := emu.New(p.MustBuild())
	if err := e.Run(10_000); err != nil {
		panic(err)
	}
	fmt.Println("dot product =", e.Mem.Read(minic.ResultAddr))
	// Output: dot product = 300
}
