package minic

import (
	"testing"
	"testing/quick"

	"mssr/internal/emu"
)

// run compiles and executes a program, returning the Return value.
func run(t *testing.T, p *Program) uint64 {
	t.Helper()
	prog, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(prog)
	if err := e.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return e.Mem.Read(ResultAddr)
}

func TestArithmetic(t *testing.T) {
	p := NewProgram("arith")
	x := p.Var("x")
	p.Assign(x, Add(Mul(Int(6), Int(7)), Sub(Int(10), Int(3))))
	p.Return(x)
	if got := run(t, p); got != 49 {
		t.Errorf("6*7 + (10-3) = %d, want 49", got)
	}
}

func TestAssignReadsOldValue(t *testing.T) {
	p := NewProgram("alias")
	x := p.Var("x")
	p.Assign(x, Int(5))
	p.Assign(x, Sub(Int(100), x)) // x = 100 - x: must read the old x
	p.Return(x)
	if got := run(t, p); got != 95 {
		t.Errorf("x = %d, want 95", got)
	}
}

func TestWhileLoopSum(t *testing.T) {
	p := NewProgram("sum")
	i := p.Var("i")
	sum := p.Var("sum")
	p.Assign(sum, Int(0))
	p.Assign(i, Int(1))
	p.While(Le(i, Int(10)), func() {
		p.Assign(sum, Add(sum, i))
		p.Assign(i, Add(i, Int(1)))
	})
	p.Return(sum)
	if got := run(t, p); got != 55 {
		t.Errorf("sum 1..10 = %d, want 55", got)
	}
}

func TestForLoopAndArray(t *testing.T) {
	p := NewProgram("array")
	arr := p.Array(0, []uint64{3, 1, 4, 1, 5, 9, 2, 6})
	i := p.Var("i")
	sum := p.Var("sum")
	p.Assign(sum, Int(0))
	p.For(i, Int(0), Int(8), func() {
		p.Assign(sum, Add(sum, arr.At(i)))
	})
	p.Return(sum)
	if got := run(t, p); got != 31 {
		t.Errorf("array sum = %d, want 31", got)
	}
}

func TestIfElse(t *testing.T) {
	for _, c := range []struct {
		in   int64
		want uint64
	}{{5, 1}, {-5, 2}, {0, 2}} {
		p := NewProgram("ifelse")
		x := p.Var("x")
		r := p.Var("r")
		p.Assign(x, Int(c.in))
		p.IfElse(Gt(x, Int(0)),
			func() { p.Assign(r, Int(1)) },
			func() { p.Assign(r, Int(2)) })
		p.Return(r)
		if got := run(t, p); got != c.want {
			t.Errorf("sign(%d) branch = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStoreAndDeref(t *testing.T) {
	p := NewProgram("store")
	arr := p.Array(0x9000, make([]uint64, 4))
	i := p.Var("i")
	p.For(i, Int(0), Int(4), func() {
		p.SetAt(arr, i, Mul(i, i))
	})
	p.Return(Add(arr.At(Int(3)), Deref(Int(0x9000))))
	if got := run(t, p); got != 9 {
		t.Errorf("arr[3] + arr[0] = %d, want 9", got)
	}
}

// TestComparisonMatrix checks every comparison against Go semantics.
func TestComparisonMatrix(t *testing.T) {
	type mk func(a, b Expr) Expr
	cases := []struct {
		name string
		mk   mk
		ref  func(a, b int64) bool
	}{
		{"eq", Eq, func(a, b int64) bool { return a == b }},
		{"ne", Ne, func(a, b int64) bool { return a != b }},
		{"lt", Lt, func(a, b int64) bool { return a < b }},
		{"le", Le, func(a, b int64) bool { return a <= b }},
		{"gt", Gt, func(a, b int64) bool { return a > b }},
		{"ge", Ge, func(a, b int64) bool { return a >= b }},
		{"ltu", LtU, func(a, b int64) bool { return uint64(a) < uint64(b) }},
		{"geu", GeU, func(a, b int64) bool { return uint64(a) >= uint64(b) }},
	}
	vals := []int64{-3, -1, 0, 1, 2, 1 << 40, -(1 << 40)}
	for _, c := range cases {
		for _, a := range vals {
			for _, b := range vals {
				// As a materialized value.
				p := NewProgram("cmp")
				p.Return(c.mk(Int(a), Int(b)))
				want := uint64(0)
				if c.ref(a, b) {
					want = 1
				}
				if got := run(t, p); got != want {
					t.Fatalf("%s(%d,%d) = %d, want %d", c.name, a, b, got, want)
				}
				// As a folded branch.
				p2 := NewProgram("cmpbr")
				r := p2.Var("r")
				p2.IfElse(c.mk(Int(a), Int(b)),
					func() { p2.Assign(r, Int(1)) },
					func() { p2.Assign(r, Int(0)) })
				p2.Return(r)
				if got := run(t, p2); got != want {
					t.Fatalf("branch %s(%d,%d) = %d, want %d", c.name, a, b, got, want)
				}
			}
		}
	}
}

// TestExpressionProperty cross-checks compiled arithmetic against Go for
// random operand pairs.
func TestExpressionProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			b = 1
		}
		p := NewProgram("prop")
		x := p.Var("x")
		y := p.Var("y")
		p.Assign(x, Int(a))
		p.Assign(y, Int(b))
		// ((x*3 + y) ^ (x >> 5)) % 1000th-ish mix
		p.Return(Xor(Add(Mul(x, Int(3)), y), Shr(x, Int(5))))
		want := (uint64(a)*3 + uint64(b)) ^ (uint64(a) >> 5)
		return runQuick(p) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func runQuick(p *Program) uint64 {
	prog, err := p.Build()
	if err != nil {
		return ^uint64(0)
	}
	e := emu.New(prog)
	if err := e.Run(1_000_000); err != nil {
		return ^uint64(0)
	}
	return e.Mem.Read(ResultAddr)
}

func TestNestedControlFlow(t *testing.T) {
	// Count primes below 50 by trial division: nested loops, if, rem.
	p := NewProgram("primes")
	n := p.Var("n")
	d := p.Var("d")
	isP := p.Var("isP")
	count := p.Var("count")
	p.Assign(count, Int(0))
	p.For(n, Int(2), Int(50), func() {
		p.Assign(isP, Int(1))
		p.For(d, Int(2), n, func() {
			p.If(Eq(Rem(n, d), Int(0)), func() {
				p.Assign(isP, Int(0))
			})
		})
		p.If(Ne(isP, Int(0)), func() {
			p.Assign(count, Add(count, Int(1)))
		})
	})
	p.Return(count)
	if got := run(t, p); got != 15 {
		t.Errorf("primes below 50 = %d, want 15", got)
	}
}

func TestErrors(t *testing.T) {
	p := NewProgram("toomany")
	for i := 0; i < 40; i++ {
		p.Var(string(rune('a' + i)))
	}
	p.Return(Int(0))
	if _, err := p.Build(); err == nil {
		t.Error("variable overflow should fail Build")
	}

	deep := NewProgram("deep")
	e := Expr(Int(1))
	for i := 0; i < 20; i++ {
		e = Add(Int(1), e) // right-leaning chain exhausts temporaries
	}
	deep.Return(e)
	if _, err := deep.Build(); err == nil {
		t.Error("temporary exhaustion should fail Build")
	}

	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on error")
		}
	}()
	bad := NewProgram("bad")
	for i := 0; i < 40; i++ {
		bad.Var(string(rune('a' + i)))
	}
	bad.Return(Int(0))
	bad.MustBuild()
}

func TestVarIsStable(t *testing.T) {
	p := NewProgram("stable")
	a := p.Var("a")
	b := p.Var("a")
	if a != b {
		t.Error("Var must return the same binding for the same name")
	}
}
