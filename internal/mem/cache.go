// Package mem models the data-side memory hierarchy of the simulated core:
// a set-associative L1D backed by an L2 backed by fixed-latency DRAM, with
// the geometry and latencies of the paper's Table 3. The model is a timing
// model only — data values live in the core's committed memory plus the
// store queue; the hierarchy decides how many cycles an access costs and
// tracks the usual hit/miss/eviction bookkeeping (including wrong-path
// pollution, which an execution-driven model naturally produces).
package mem

import "fmt"

// Cache is one level of set-associative cache with true-LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	latency   uint64

	tags  [][]uint64 // [set][way], valid encoded separately
	valid [][]bool
	lru   [][]uint8 // smaller = older

	Hits, Misses, Evictions uint64
}

// NewCache builds a cache of sizeBytes with the given associativity,
// 64-byte lines, and access latency in cycles. sizeBytes must be divisible
// by ways*64 and the resulting set count must be a power of two.
func NewCache(name string, sizeBytes, ways int, latency uint64) *Cache {
	const lineBytes = 64
	if sizeBytes%(ways*lineBytes) != 0 {
		panic(fmt.Sprintf("mem: %s size %d not divisible by %d ways x %d-byte lines", name, sizeBytes, ways, lineBytes))
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: %s set count %d not a power of two", name, sets))
	}
	c := &Cache{name: name, sets: sets, ways: ways, lineShift: 6, latency: latency}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint8, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint8, ways)
	}
	return c
}

// Latency returns the access latency of this level.
func (c *Cache) Latency() uint64 { return c.latency }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	return int(line) & (c.sets - 1), line >> uint(log2(c.sets))
}

// Lookup probes the cache, updating LRU state and counters on hit.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.touch(set, w)
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert fills the line containing addr, evicting the LRU way if needed.
func (c *Cache) Insert(addr uint64) {
	set, tag := c.index(addr)
	// Already present (e.g. two misses to the same line in flight)?
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.touch(set, w)
			return
		}
	}
	victim := 0
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	if c.valid[set][victim] {
		c.Evictions++
	}
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.touch(set, victim)
}

// touch makes way w the most recently used in set.
func (c *Cache) touch(set, w int) {
	old := c.lru[set][w]
	for i := 0; i < c.ways; i++ {
		if c.lru[set][i] > old {
			c.lru[set][i]--
		}
	}
	c.lru[set][w] = uint8(c.ways - 1)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
			c.lru[s][w] = 0
		}
	}
	c.Hits, c.Misses, c.Evictions = 0, 0, 0
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// Config parameterizes a hierarchy; the zero value is invalid — use
// DefaultConfig (Table 3).
type Config struct {
	L1Size    int
	L1Ways    int
	L1Latency uint64
	L2Size    int
	L2Ways    int
	L2Latency uint64
	DRAMLat   uint64
}

// DefaultConfig is the paper's Table 3 memory configuration: 64 KB 4-way
// L1D at 3 cycles, 2 MB 8-way L2 at 12 cycles, 120-cycle DRAM.
func DefaultConfig() Config {
	return Config{
		L1Size: 64 << 10, L1Ways: 4, L1Latency: 3,
		L2Size: 2 << 20, L2Ways: 8, L2Latency: 12,
		DRAMLat: 120,
	}
}

// Hierarchy is the L1/L2/DRAM stack.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache

	dramLat      uint64
	DRAMAccesses uint64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		L1:      NewCache("L1D", cfg.L1Size, cfg.L1Ways, cfg.L1Latency),
		L2:      NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Latency),
		dramLat: cfg.DRAMLat,
	}
}

// Access performs a demand access (load or committed store) to addr and
// returns its latency in cycles, filling lines on the way back up.
func (h *Hierarchy) Access(addr uint64) uint64 {
	lat := h.L1.Latency()
	if h.L1.Lookup(addr) {
		return lat
	}
	lat += h.L2.Latency()
	if h.L2.Lookup(addr) {
		h.L1.Insert(addr)
		return lat
	}
	h.DRAMAccesses++
	lat += h.dramLat
	h.L2.Insert(addr)
	h.L1.Insert(addr)
	return lat
}

// Reset clears both levels and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.DRAMAccesses = 0
}
