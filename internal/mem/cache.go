// Package mem models the data-side memory hierarchy of the simulated core:
// a set-associative L1D backed by an L2 backed by fixed-latency DRAM, with
// the geometry and latencies of the paper's Table 3. The model is a timing
// model only — data values live in the core's committed memory plus the
// store queue; the hierarchy decides how many cycles an access costs and
// tracks the usual hit/miss/eviction bookkeeping (including wrong-path
// pollution, which an execution-driven model naturally produces).
package mem

import "fmt"

// Cache is one level of set-associative cache with true-LRU replacement.
//
// The tag, valid and LRU state live in flat backing slices indexed by
// set*ways+way (valid bits packed one word per set), with the set mask
// and tag shift precomputed at construction — an access is a handful of
// masked loads on contiguous memory, with no per-access log2 and no
// per-set slice headers to chase.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	tagShift  uint   // lineShift + log2(sets), precomputed
	setMask   uint64 // sets - 1
	latency   uint64

	tags  []uint64 // sets*ways, flat; row base = set*ways
	lru   []uint8  // sets*ways, flat; smaller = older
	valid []uint64 // per-set way bitmask (bit w = way w valid)

	Hits, Misses, Evictions uint64
}

// NewCache builds a cache of sizeBytes with the given associativity,
// 64-byte lines, and access latency in cycles. sizeBytes must be divisible
// by ways*64, the resulting set count must be a power of two, and ways
// must fit the per-set valid mask (<= 64).
func NewCache(name string, sizeBytes, ways int, latency uint64) *Cache {
	const lineBytes = 64
	if sizeBytes%(ways*lineBytes) != 0 {
		panic(fmt.Sprintf("mem: %s size %d not divisible by %d ways x %d-byte lines", name, sizeBytes, ways, lineBytes))
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: %s set count %d not a power of two", name, sets))
	}
	if ways > 64 {
		panic(fmt.Sprintf("mem: %s associativity %d exceeds the 64-way valid mask", name, ways))
	}
	setBits := uint(0)
	for 1<<setBits < sets {
		setBits++
	}
	c := &Cache{
		name: name, sets: sets, ways: ways,
		lineShift: 6, tagShift: 6 + setBits, setMask: uint64(sets - 1),
		latency: latency,
	}
	c.tags = make([]uint64, sets*ways)
	c.lru = make([]uint8, sets*ways)
	c.valid = make([]uint64, sets)
	return c
}

// Latency returns the access latency of this level.
func (c *Cache) Latency() uint64 { return c.latency }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	return int((addr >> c.lineShift) & c.setMask), addr >> c.tagShift
}

// Lookup probes the cache, updating LRU state and counters on hit.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	vm, base := c.valid[set], set*c.ways
	for w := 0; w < c.ways; w++ {
		if vm&(1<<uint(w)) != 0 && c.tags[base+w] == tag {
			c.touch(base, w)
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert fills the line containing addr, evicting the LRU way if needed.
func (c *Cache) Insert(addr uint64) {
	set, tag := c.index(addr)
	vm, base := c.valid[set], set*c.ways
	// Already present (e.g. two misses to the same line in flight)?
	for w := 0; w < c.ways; w++ {
		if vm&(1<<uint(w)) != 0 && c.tags[base+w] == tag {
			c.touch(base, w)
			return
		}
	}
	victim := 0
	for w := 0; w < c.ways; w++ {
		if vm&(1<<uint(w)) == 0 {
			victim = w
			break
		}
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	if vm&(1<<uint(victim)) != 0 {
		c.Evictions++
	}
	c.valid[set] = vm | 1<<uint(victim)
	c.tags[base+victim] = tag
	c.touch(base, victim)
}

// touch makes way w the most recently used in the set whose row starts at
// base.
func (c *Cache) touch(base, w int) {
	row := c.lru[base : base+c.ways : base+c.ways]
	old := row[w]
	for i := range row {
		if row[i] > old {
			row[i]--
		}
	}
	row[w] = uint8(c.ways - 1)
}

// Reset clears contents and counters. Invalidating the packed valid words
// is enough to drop every line; tags become unreachable and the LRU ages
// are re-zeroed for the fresh==Reset contract.
func (c *Cache) Reset() {
	clear(c.valid)
	clear(c.lru)
	c.Hits, c.Misses, c.Evictions = 0, 0, 0
}

// Config parameterizes a hierarchy; the zero value is invalid — use
// DefaultConfig (Table 3).
type Config struct {
	L1Size    int
	L1Ways    int
	L1Latency uint64
	L2Size    int
	L2Ways    int
	L2Latency uint64
	DRAMLat   uint64
}

// DefaultConfig is the paper's Table 3 memory configuration: 64 KB 4-way
// L1D at 3 cycles, 2 MB 8-way L2 at 12 cycles, 120-cycle DRAM.
func DefaultConfig() Config {
	return Config{
		L1Size: 64 << 10, L1Ways: 4, L1Latency: 3,
		L2Size: 2 << 20, L2Ways: 8, L2Latency: 12,
		DRAMLat: 120,
	}
}

// Hierarchy is the L1/L2/DRAM stack.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache

	dramLat      uint64
	DRAMAccesses uint64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		L1:      NewCache("L1D", cfg.L1Size, cfg.L1Ways, cfg.L1Latency),
		L2:      NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Latency),
		dramLat: cfg.DRAMLat,
	}
}

// Access performs a demand access (load or committed store) to addr and
// returns its latency in cycles, filling lines on the way back up.
func (h *Hierarchy) Access(addr uint64) uint64 {
	lat := h.L1.Latency()
	if h.L1.Lookup(addr) {
		return lat
	}
	lat += h.L2.Latency()
	if h.L2.Lookup(addr) {
		h.L1.Insert(addr)
		return lat
	}
	h.DRAMAccesses++
	lat += h.dramLat
	h.L2.Insert(addr)
	h.L1.Insert(addr)
	return lat
}

// ResetCounters zeroes the hit/miss/eviction/DRAM counters of both levels
// while keeping every cached line. After functional warming has primed the
// tag arrays, this draws the statistics baseline at the start of a detailed
// window so warm-up traffic is not attributed to the measured region.
func (h *Hierarchy) ResetCounters() {
	h.L1.Hits, h.L1.Misses, h.L1.Evictions = 0, 0, 0
	h.L2.Hits, h.L2.Misses, h.L2.Evictions = 0, 0, 0
	h.DRAMAccesses = 0
}

// Reset clears both levels and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.DRAMAccesses = 0
}
