package mem

import "testing"

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 4096, 2, 3) // 32 sets x 2 ways x 64B
	if c.Lookup(0x1000) {
		t.Error("cold cache should miss")
	}
	c.Insert(0x1000)
	if !c.Lookup(0x1000) {
		t.Error("inserted line should hit")
	}
	if !c.Lookup(0x103f) {
		t.Error("same 64-byte line should hit")
	}
	if c.Lookup(0x1040) {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 4096, 2, 3) // 32 sets
	setStride := uint64(32 * 64)   // same set every stride
	a, b, d := uint64(0), setStride, 2*setStride
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a) // make a MRU
	c.Insert(d) // must evict b
	if !c.Lookup(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Lookup(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Lookup(d) {
		t.Error("d should be present")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
}

func TestCacheReinsertIsIdempotent(t *testing.T) {
	c := NewCache("t", 4096, 2, 3)
	c.Insert(0)
	c.Insert(0)
	if c.Evictions != 0 {
		t.Error("reinsert must not evict")
	}
	if !c.Lookup(0) {
		t.Error("line lost on reinsert")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("t", 4096, 2, 3)
	c.Insert(0)
	c.Lookup(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("counters not reset")
	}
	if c.Lookup(0) {
		t.Error("contents not reset")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache("bad", 1000, 3, 1) },   // not divisible
		func() { NewCache("bad", 64*3*2, 2, 1) }, // sets not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	// Cold: L1 miss + L2 miss + DRAM.
	if lat := h.Access(0x1_0000); lat != 3+12+120 {
		t.Errorf("cold access latency = %d", lat)
	}
	// Now hot in L1.
	if lat := h.Access(0x1_0000); lat != 3 {
		t.Errorf("L1 hit latency = %d", lat)
	}
	if h.DRAMAccesses != 1 {
		t.Errorf("DRAM accesses = %d", h.DRAMAccesses)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Size = 4 << 10 // tiny L1 so we can evict easily
	cfg.L1Ways = 1
	h := NewHierarchy(cfg)
	h.Access(0)       // cold fill
	h.Access(4 << 10) // conflicts in L1 (same set), evicts 0 from L1
	if lat := h.Access(0); lat != 3+12 {
		t.Errorf("L2 hit latency = %d, want 15", lat)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(0)
	h.Reset()
	if h.DRAMAccesses != 0 || h.L1.Hits+h.L1.Misses != 0 {
		t.Error("reset incomplete")
	}
	if lat := h.Access(0); lat != 135 {
		t.Errorf("post-reset access should be cold, lat = %d", lat)
	}
}
