package mem

import "testing"

// BenchmarkHierarchyAccessHit models the common case: a working set that
// fits in L1, so every access is a tag match in one flattened set.
func BenchmarkHierarchyAccessHit(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	const workingSet = 8 * 1024 // bytes, well inside L1
	for a := uint64(0); a < workingSet; a += 64 {
		h.Access(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += h.Access(uint64(i*64) % workingSet)
	}
	_ = sink
}

// BenchmarkHierarchyAccessStream strides through a range larger than L2,
// exercising the miss/evict/insert path at every level.
func BenchmarkHierarchyAccessStream(b *testing.B) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	span := uint64(4 * cfg.L2Size)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += h.Access(uint64(i*64) % span)
	}
	_ = sink
}
