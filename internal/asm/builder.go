// Package asm provides two ways to construct isa.Programs: a fluent Builder
// API used by the synthetic workloads, and a small text assembler (see
// Assemble) for hand-written kernels and examples. Both resolve symbolic
// labels to absolute PCs and validate the result.
package asm

import (
	"fmt"
	"sort"

	"mssr/internal/isa"
)

// fixup records a forward reference from the instruction at index to a
// label that sets Instruction.Target once resolved.
type fixup struct {
	index int
	label string
}

// Builder incrementally assembles a program. Methods append instructions;
// Label defines a target at the current position; Program resolves labels
// and returns the finished program. All errors are deferred and reported by
// Program so call sites stay unconditional.
type Builder struct {
	name   string
	base   uint64
	code   []isa.Instruction
	labels map[string]int // label -> instruction index
	fixups []fixup
	data   []isa.DataSegment
	errs   []error
}

// NewBuilder returns a Builder for a program named name based at
// isa.DefaultCodeBase.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, base: isa.DefaultCodeBase, labels: make(map[string]int)}
}

// SetBase overrides the code base address. It must be called before any
// instruction is appended.
func (b *Builder) SetBase(base uint64) *Builder {
	if len(b.code) > 0 {
		b.errs = append(b.errs, fmt.Errorf("SetBase after code emitted"))
		return b
	}
	b.base = base
	return b
}

// PC returns the address the next appended instruction will occupy.
func (b *Builder) PC() uint64 { return b.base + uint64(len(b.code))*isa.InstrBytes }

// Label defines name at the current position. Redefinition is an error.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("label %q redefined", name))
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

// Data initializes a run of 64-bit words at addr in data memory.
func (b *Builder) Data(addr uint64, words ...uint64) *Builder {
	seg := isa.DataSegment{Addr: addr, Words: append([]uint64(nil), words...)}
	b.data = append(b.data, seg)
	return b
}

func (b *Builder) emit(in isa.Instruction) *Builder {
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitTo(in isa.Instruction, label string) *Builder {
	b.fixups = append(b.fixups, fixup{index: len(b.code), label: label})
	return b.emit(in)
}

// R-type ALU operations.

func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.ADD, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.SUB, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.AND, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) *Builder   { return b.op3(isa.OR, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.XOR, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.SLL, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.SRL, rd, rs1, rs2) }
func (b *Builder) Sra(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.SRA, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.SLT, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) *Builder { return b.op3(isa.SLTU, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.MUL, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.DIV, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.REM, rd, rs1, rs2) }
func (b *Builder) Min(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.MIN, rd, rs1, rs2) }
func (b *Builder) Max(rd, rs1, rs2 isa.Reg) *Builder  { return b.op3(isa.MAX, rd, rs1, rs2) }

func (b *Builder) op3(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// I-type ALU operations.

func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) *Builder { return b.opi(isa.ADDI, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) *Builder { return b.opi(isa.ANDI, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) *Builder  { return b.opi(isa.ORI, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) *Builder { return b.opi(isa.XORI, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) *Builder { return b.opi(isa.SLLI, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) *Builder { return b.opi(isa.SRLI, rd, rs1, imm) }
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int64) *Builder { return b.opi(isa.SRAI, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) *Builder { return b.opi(isa.SLTI, rd, rs1, imm) }

func (b *Builder) opi(op isa.Op, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li loads a 64-bit literal into rd.
func (b *Builder) Li(rd isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.LI, Rd: rd, Imm: imm})
}

// Mv copies rs into rd.
func (b *Builder) Mv(rd, rs isa.Reg) *Builder { return b.Addi(rd, rs, 0) }

// Nop appends a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.Instruction{Op: isa.NOP}) }

// Memory operations.

// Ld loads the 64-bit word at off(base) into rd.
func (b *Builder) Ld(rd isa.Reg, off int64, base isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: isa.LD, Rd: rd, Rs1: base, Imm: off})
}

// St stores src to off(base).
func (b *Builder) St(src isa.Reg, off int64, base isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: isa.ST, Rs1: base, Rs2: src, Imm: off})
}

// Control flow. Branches target labels resolved by Program.

func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.BEQ, rs1, rs2, label)
}
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.BNE, rs1, rs2, label)
}
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.BLT, rs1, rs2, label)
}
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.BGE, rs1, rs2, label)
}
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.BLTU, rs1, rs2, label)
}
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.BGEU, rs1, rs2, label)
}

func (b *Builder) br(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitTo(isa.Instruction{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Beqz branches to label when rs == 0.
func (b *Builder) Beqz(rs isa.Reg, label string) *Builder { return b.Beq(rs, isa.Zero, label) }

// Bnez branches to label when rs != 0.
func (b *Builder) Bnez(rs isa.Reg, label string) *Builder { return b.Bne(rs, isa.Zero, label) }

// J jumps unconditionally to label without linking.
func (b *Builder) J(label string) *Builder { return b.Jal(isa.Zero, label) }

// Jal jumps to label, writing the return address to rd.
func (b *Builder) Jal(rd isa.Reg, label string) *Builder {
	return b.emitTo(isa.Instruction{Op: isa.JAL, Rd: rd}, label)
}

// Jalr jumps to (rs1+imm), writing the return address to rd.
func (b *Builder) Jalr(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.JALR, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ret returns via the RA register.
func (b *Builder) Ret() *Builder { return b.Jalr(isa.Zero, isa.RA, 0) }

// Halt appends the architectural end of the program.
func (b *Builder) Halt() *Builder { return b.emit(isa.Instruction{Op: isa.HALT}) }

// Program resolves all labels and returns the validated program.
func (b *Builder) Program() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &isa.Program{
		Name:    b.name,
		Base:    b.base,
		Code:    append([]isa.Instruction(nil), b.code...),
		Data:    b.data,
		Symbols: make(map[string]uint64, len(b.labels)),
	}
	for name, idx := range b.labels {
		p.Symbols[name] = b.base + uint64(idx)*isa.InstrBytes
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q", b.name, f.label)
		}
		p.Code[f.index].Target = b.base + uint64(idx)*isa.InstrBytes
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program but panics on error; workload constructors use it
// because a build failure there is a programming bug in this repository.
func (b *Builder) MustProgram() *isa.Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// Listing renders the program as annotated assembly text, one instruction
// per line with PCs and label names, for debugging and documentation.
func Listing(p *isa.Program) string {
	byPC := make(map[uint64][]string)
	for name, pc := range p.Symbols {
		byPC[pc] = append(byPC[pc], name)
	}
	for _, names := range byPC {
		sort.Strings(names)
	}
	var out []byte
	for i, in := range p.Code {
		pc := p.Base + uint64(i)*isa.InstrBytes
		for _, name := range byPC[pc] {
			out = append(out, fmt.Sprintf("%s:\n", name)...)
		}
		out = append(out, fmt.Sprintf("  0x%06x  %v\n", pc, in)...)
	}
	return string(out)
}
