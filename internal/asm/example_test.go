package asm_test

import (
	"fmt"

	"mssr/internal/asm"
	"mssr/internal/emu"
	"mssr/internal/isa"
)

// Assemble a small loop and execute it on the functional emulator.
func ExampleAssemble() {
	prog, err := asm.Assemble("triangle", `
    li   t0, 10      # n
    li   a0, 0       # sum
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    halt
`)
	if err != nil {
		panic(err)
	}
	res, err := emu.RunProgram(prog, 1000)
	if err != nil {
		panic(err)
	}
	fmt.Println("sum(1..10) =", res.Regs[isa.A0])
	// Output: sum(1..10) = 55
}

// Build the same program through the fluent Builder API.
func ExampleBuilder() {
	b := asm.NewBuilder("triangle")
	b.Li(isa.T0, 10)
	b.Li(isa.A0, 0)
	b.Label("loop")
	b.Add(isa.A0, isa.A0, isa.T0)
	b.Addi(isa.T0, isa.T0, -1)
	b.Bnez(isa.T0, "loop")
	b.Halt()
	res, err := emu.RunProgram(b.MustProgram(), 1000)
	if err != nil {
		panic(err)
	}
	fmt.Println("sum(1..10) =", res.Regs[isa.A0])
	// Output: sum(1..10) = 55
}
