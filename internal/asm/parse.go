package asm

import (
	"fmt"
	"strconv"
	"strings"

	"mssr/internal/isa"
)

// Assemble parses assembly text into a program. The dialect is a small
// RISC-V-like syntax:
//
//	# comment
//	.base 0x10000          # optional, before any instruction
//	.data 0x2000 1 2 3     # initialize words at an address
//	loop:                  # labels end with a colon
//	  addi x1, x1, -1
//	  ld   x2, 8(x3)
//	  st   x2, 0(x4)
//	  bne  x1, zero, loop
//	  halt
//
// Registers are written x0..x31 or by ABI name (zero, ra, sp, t0..t6,
// a0..a7, s0..s11). Immediates accept decimal and 0x hex.
func Assemble(name, src string) (*isa.Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := assembleLine(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo+1, err)
		}
	}
	return b.Program()
}

// MustAssemble is Assemble but panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func assembleLine(b *Builder, line string) error {
	// Labels, possibly followed by an instruction on the same line.
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(line[:i])
		if label == "" || strings.ContainsAny(label, " \t,()") {
			return fmt.Errorf("bad label %q", label)
		}
		b.Label(label)
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	args := splitArgs(strings.TrimSpace(line[len(fields[0]):]))

	switch mnemonic {
	case ".base":
		v, err := parseImm(args, 0)
		if err != nil {
			return err
		}
		b.SetBase(uint64(v))
		return nil
	case ".data":
		if len(args) < 1 {
			return fmt.Errorf(".data needs an address")
		}
		addr, err := parseImm(args, 0)
		if err != nil {
			return err
		}
		words := make([]uint64, 0, len(args)-1)
		for i := 1; i < len(args); i++ {
			w, err := parseImm(args, i)
			if err != nil {
				return err
			}
			words = append(words, uint64(w))
		}
		b.Data(uint64(addr), words...)
		return nil
	}

	if op, ok := r3ops[mnemonic]; ok {
		if len(args) != 3 {
			return fmt.Errorf("%s needs rd, rs1, rs2", mnemonic)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return err
		}
		b.op3(op, rd, rs1, rs2)
		return nil
	}
	if op, ok := iops[mnemonic]; ok {
		if len(args) != 3 {
			return fmt.Errorf("%s needs rd, rs1, imm", mnemonic)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args, 2)
		if err != nil {
			return err
		}
		b.opi(op, rd, rs1, imm)
		return nil
	}
	if op, ok := brops[mnemonic]; ok {
		if len(args) != 3 {
			return fmt.Errorf("%s needs rs1, rs2, label", mnemonic)
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.br(op, rs1, rs2, args[2])
		return nil
	}

	switch mnemonic {
	case "nop":
		b.Nop()
	case "halt":
		b.Halt()
	case "li":
		if len(args) != 2 {
			return fmt.Errorf("li needs rd, imm")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args, 1)
		if err != nil {
			return err
		}
		b.Li(rd, imm)
	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("mv needs rd, rs")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Mv(rd, rs)
	case "ld", "st":
		if len(args) != 2 {
			return fmt.Errorf("%s needs reg, off(base)", mnemonic)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		if mnemonic == "ld" {
			b.Ld(r, off, base)
		} else {
			b.St(r, off, base)
		}
	case "beqz", "bnez":
		if len(args) != 2 {
			return fmt.Errorf("%s needs rs, label", mnemonic)
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if mnemonic == "beqz" {
			b.Beqz(rs, args[1])
		} else {
			b.Bnez(rs, args[1])
		}
	case "j":
		if len(args) != 1 {
			return fmt.Errorf("j needs a label")
		}
		b.J(args[0])
	case "jal":
		switch len(args) {
		case 1:
			b.Jal(isa.RA, args[0])
		case 2:
			rd, err := parseReg(args[0])
			if err != nil {
				return err
			}
			b.Jal(rd, args[1])
		default:
			return fmt.Errorf("jal needs [rd,] label")
		}
	case "jalr":
		if len(args) != 3 {
			return fmt.Errorf("jalr needs rd, rs1, imm")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args, 2)
		if err != nil {
			return err
		}
		b.Jalr(rd, rs1, imm)
	case "ret":
		b.Ret()
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

var r3ops = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "and": isa.AND, "or": isa.OR,
	"xor": isa.XOR, "sll": isa.SLL, "srl": isa.SRL, "sra": isa.SRA,
	"slt": isa.SLT, "sltu": isa.SLTU, "mul": isa.MUL, "div": isa.DIV,
	"rem": isa.REM, "min": isa.MIN, "max": isa.MAX,
}

var iops = map[string]isa.Op{
	"addi": isa.ADDI, "andi": isa.ANDI, "ori": isa.ORI, "xori": isa.XORI,
	"slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI, "slti": isa.SLTI,
}

var brops = map[string]isa.Op{
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"bltu": isa.BLTU, "bgeu": isa.BGEU,
}

var abiRegs = map[string]isa.Reg{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
	"a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
	"s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	args := make([]string, 0, len(parts))
	for _, p := range parts {
		for _, f := range strings.Fields(p) {
			args = append(args, f)
		}
	}
	return args
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := abiRegs[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumArchRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing immediate")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(args[i]), 0, 64)
	if err != nil {
		// Allow full-range unsigned hex literals.
		u, uerr := strconv.ParseUint(strings.TrimSpace(args[i]), 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", args[i])
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMem parses "off(base)" operands.
func parseMem(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var off int64
	if t := strings.TrimSpace(s[:open]); t != "" {
		v, err := strconv.ParseInt(t, 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
		off = v
	}
	base, err := parseReg(s[open+1 : close])
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}
